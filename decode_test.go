package eclipse

import (
	"strings"
	"testing"

	"eclipse/internal/media"
)

// encodeSequence produces a test bitstream plus the source frames.
func encodeSequence(t *testing.T, w, h, frames int, cfg func(*media.CodecConfig)) ([]byte, []*media.Frame) {
	t.Helper()
	cc := media.DefaultCodec(w, h)
	if cfg != nil {
		cfg(&cc)
	}
	src := media.NewSource(media.DefaultSource(w, h))
	fr := src.Frames(frames)
	stream, _, _, err := media.Encode(cc, fr)
	if err != nil {
		t.Fatal(err)
	}
	return stream, fr
}

func TestDecodeAppMatchesReference(t *testing.T) {
	stream, _ := encodeSequence(t, 64, 48, 8, nil)
	sys := NewSystem(Fig8())
	app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := sys.Run(200_000_000)
	if err != nil {
		t.Fatalf("Run after %d cycles: %v", sys.K.Now(), err)
	}
	if cycles == 0 {
		t.Fatal("no cycles elapsed")
	}
	if err := app.VerifyAgainstReference(stream); err != nil {
		t.Fatal(err)
	}
	t.Logf("decoded %d frames in %d cycles", app.Seq.Frames, cycles)
}

func TestDecodeAppIPPPOnly(t *testing.T) {
	stream, _ := encodeSequence(t, 48, 32, 6, func(c *media.CodecConfig) {
		c.GOPM = 1
		c.GOPN = 3
	})
	sys := NewSystem(Fig8())
	app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	if err := app.VerifyAgainstReference(stream); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeAppSingleIntraFrame(t *testing.T) {
	stream, _ := encodeSequence(t, 32, 32, 1, nil)
	sys := NewSystem(Fig8())
	app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if err := app.VerifyAgainstReference(stream); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeAppDeterministic(t *testing.T) {
	stream, _ := encodeSequence(t, 48, 32, 5, nil)
	run := func() uint64 {
		sys := NewSystem(Fig8())
		app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := sys.Run(200_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.VerifyAgainstReference(stream); err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic cycle count: %d vs %d", a, b)
	}
}

func TestDualDecodeSharesCoprocessors(t *testing.T) {
	// Two independent streams decoded simultaneously on one instance:
	// every coprocessor time-shares two tasks of the same function
	// (Section 4.2's multi-tasking flexibility).
	streamA, _ := encodeSequence(t, 48, 32, 5, nil)
	streamB, _ := encodeSequence(t, 64, 48, 4, func(c *media.CodecConfig) { c.Q = 10 })
	sys := NewSystem(Fig8())
	appA, err := sys.AddDecodeApp("a", streamA, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	appB, err := sys.AddDecodeApp("b", streamB, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	if err := appA.VerifyAgainstReference(streamA); err != nil {
		t.Fatalf("app a: %v", err)
	}
	if err := appB.VerifyAgainstReference(streamB); err != nil {
		t.Fatalf("app b: %v", err)
	}
	// Each coprocessor shell must have seen two tasks switching.
	for _, name := range []string{"vld", "rlsq", "dct", "mc"} {
		stA, err := sys.TaskStats("a-" + taskForCopro(name))
		if err != nil {
			t.Fatal(err)
		}
		stB, err := sys.TaskStats("b-" + taskForCopro(name))
		if err != nil {
			t.Fatal(err)
		}
		if stA.Steps == 0 || stB.Steps == 0 {
			t.Fatalf("%s: steps a=%d b=%d", name, stA.Steps, stB.Steps)
		}
		if stA.Switches == 0 || stB.Switches == 0 {
			t.Fatalf("%s: no task switches (a=%d b=%d)", name, stA.Switches, stB.Switches)
		}
	}
}

// taskForCopro maps a Figure 8 coprocessor to its decode-graph task name.
func taskForCopro(name string) string {
	if name == "dct" {
		return "idct"
	}
	return name
}

func TestDecodeTooSmallBufferFailsCleanly(t *testing.T) {
	// A token buffer smaller than the largest token record can never
	// satisfy the RLSQ's GetSpace and must be reported, not hang.
	stream, _ := encodeSequence(t, 48, 32, 3, func(c *media.CodecConfig) { c.Q = 1 })
	bufs := DefaultDecodeBuffers()
	bufs.Tok = 128
	sys := NewSystem(Fig8())
	if _, err := sys.AddDecodeApp("dec", stream, DecodeOptions{Buffers: &bufs}); err != nil {
		t.Fatal(err)
	}
	_, err := sys.Run(50_000_000)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "exceeds buffer size") && !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeProbesRecordBufferFilling(t *testing.T) {
	stream, _ := encodeSequence(t, 64, 48, 6, nil)
	sys := NewSystem(Fig8())
	if _, err := sys.AddDecodeApp("dec", stream, DecodeOptions{Probes: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(200_000_000); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"dec/rlsq.in", "dec/dct.in", "dec/mc.in"} {
		s := sys.Collector.Series(name)
		if s == nil || len(s.X) == 0 {
			t.Fatalf("series %s missing", name)
		}
		if s.Max() == 0 {
			t.Fatalf("series %s never saw data", name)
		}
	}
}

func TestDecodeRemapRLSQOntoDCTCopro(t *testing.T) {
	// The mapping is configuration, not hardware: run the RLSQ function
	// as a second task on the DCT coprocessor (a legal, if slower,
	// mapping) and verify output is unchanged — Kahn determinism across
	// mappings.
	stream, _ := encodeSequence(t, 48, 32, 4, nil)
	mapping := map[string]string{}
	for k, v := range DefaultDecodeMapping {
		mapping[k] = v
	}
	mapping["rlsq"] = "dct"
	sys := NewSystem(Fig8())
	app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{Mapping: mapping})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	if err := app.VerifyAgainstReference(stream); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGraphValidates(t *testing.T) {
	g := DecodeGraph("x", DefaultDecodeBuffers())
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 6 || len(g.Streams) != 6 {
		t.Fatalf("graph has %d tasks, %d streams", len(g.Tasks), len(g.Streams))
	}
}
