package eclipse

import (
	"fmt"
	"sort"

	"eclipse/internal/copro"
	"eclipse/internal/media"
	"eclipse/internal/trace"
)

// This file implements the paper's experiments as reusable runners shared
// by the test suite, the benchmark harness (bench_test.go), and the
// cmd/eclipse-bench tool. See EXPERIMENTS.md for the experiment index.

// Fig10Config parameterizes the Figure 10 reproduction: decoding one
// MPEG-style stream while sampling the available data in the RLSQ, DCT,
// and MC input stream buffers.
type Fig10Config struct {
	W, H   int
	Frames int
	Q      int
	GOPN   int
	GOPM   int
	Seed   int64
}

// DefaultFig10 uses a QCIF-class picture and the paper's IPBB GOP
// structure.
func DefaultFig10() Fig10Config {
	return Fig10Config{W: 176, H: 144, Frames: 12, Q: 6, GOPN: 12, GOPM: 3, Seed: 1}
}

// FrameWindow is the analysis of one coded frame's time interval: the
// mean normalized filling of each monitored input buffer while that frame
// moved through the pipeline, and the inferred bottleneck task.
type FrameWindow struct {
	Coded      int
	TRef       uint16
	Type       media.FrameType
	Start, End uint64
	MeanFill   map[string]float64 // stage → mean fill fraction of its input buffer
	Bottleneck string             // stage whose input stayed fullest
}

// Fig10Result is the outcome of a Figure 10 run.
type Fig10Result struct {
	Seq       media.SeqHeader
	Cycles    uint64
	Events    uint64 // kernel events executed (engine-throughput metric)
	Windows   []FrameWindow
	Collector *trace.Collector
	BufSizes  map[string]int // stage → input buffer size (for normalizing)
	Stream    []byte
	App       *DecodeApp
}

// fig10Stages maps analysis stage names to their probe series.
var fig10Stages = []string{"rlsq", "dct", "mc"}

// RunFig10 encodes a synthetic sequence, decodes it on the Figure 8
// instance with buffer-filling probes, and attributes each coded frame's
// interval to its pipeline bottleneck.
func RunFig10(cfg Fig10Config) (*Fig10Result, error) {
	srcCfg := media.DefaultSource(cfg.W, cfg.H)
	srcCfg.Seed = cfg.Seed
	frames := media.NewSource(srcCfg).Frames(cfg.Frames)
	ccfg := media.DefaultCodec(cfg.W, cfg.H)
	ccfg.Q = cfg.Q
	ccfg.GOPN = cfg.GOPN
	ccfg.GOPM = cfg.GOPM
	stream, _, _, err := media.Encode(ccfg, frames)
	if err != nil {
		return nil, err
	}
	return RunFig10Stream(stream)
}

// RunFig10Stream runs the Figure 10 measurement on an existing bitstream.
func RunFig10Stream(stream []byte) (*Fig10Result, error) {
	sys := NewSystem(Fig8())
	defer sys.Shutdown() // release parked procs if the cycle limit pauses the run
	bufs := DefaultDecodeBuffers()
	app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{Probes: true, Buffers: &bufs})
	if err != nil {
		return nil, err
	}
	cycles, err := sys.Run(10_000_000_000)
	if err != nil {
		return nil, err
	}
	if err := app.VerifyAgainstReference(stream); err != nil {
		return nil, fmt.Errorf("fig10 run produced wrong output: %w", err)
	}
	res := &Fig10Result{
		Seq:       app.Seq,
		Cycles:    cycles,
		Events:    sys.K.Events(),
		Collector: sys.Collector,
		BufSizes:  map[string]int{"rlsq": bufs.Tok, "dct": bufs.Coef, "mc": bufs.Resid},
		Stream:    stream,
		App:       app,
	}
	res.Windows = analyzeWindows(app.Sink.Timeline, sys.Collector, res.BufSizes)
	return res, nil
}

// analyzeWindows slices the sampled buffer fillings at frame completion
// boundaries and picks each window's fullest input buffer.
func analyzeWindows(timeline []copro.FrameEvent, col *trace.Collector, bufs map[string]int) []FrameWindow {
	var out []FrameWindow
	var start uint64
	for i, ev := range timeline {
		w := FrameWindow{
			Coded: i, TRef: ev.TRef, Type: ev.Type,
			Start: start, End: ev.Cycle,
			MeanFill: map[string]float64{},
		}
		for _, stage := range fig10Stages {
			s := col.Series("dec/" + stage + ".in")
			if s == nil {
				continue
			}
			sum, n := 0.0, 0
			for k := range s.X {
				if s.X[k] >= w.Start && s.X[k] < w.End {
					sum += s.Y[k]
					n++
				}
			}
			fill := 0.0
			if n > 0 {
				fill = sum / float64(n) / float64(bufs[stage])
			}
			w.MeanFill[stage] = fill
		}
		// Backpressure fills every buffer upstream of the bottleneck, so
		// the bottleneck is the most-downstream congested stage: the last
		// stage in pipeline order whose input is substantially fuller
		// than its successor's, or the fullest stage if none stands out.
		w.Bottleneck = classifyBottleneck(w.MeanFill)
		out = append(out, w)
		start = ev.Cycle
	}
	return out
}

// classifyBottleneck picks the most-downstream stage (pipeline order
// rlsq → dct → mc) whose input buffer is congested. A stage counts as
// congested when its input fill exceeds a threshold; upstream buffers
// fill up behind a congested stage, so the last congested stage is the
// true bottleneck.
func classifyBottleneck(fill map[string]float64) string {
	const congested = 0.45
	for i := len(fig10Stages) - 1; i >= 0; i-- {
		if fill[fig10Stages[i]] >= congested {
			return fig10Stages[i]
		}
	}
	best, bestV := "", -1.0
	for _, stage := range fig10Stages {
		if fill[stage] > bestV {
			best, bestV = stage, fill[stage]
		}
	}
	return best
}

// RotationSummary counts, per frame type, how often each stage was the
// bottleneck — the paper's qualitative Figure 10 finding is that the
// majority bottleneck rotates I→RLSQ, P→DCT, B→MC.
func (r *Fig10Result) RotationSummary() map[media.FrameType]map[string]int {
	out := map[media.FrameType]map[string]int{}
	for _, w := range r.Windows {
		m := out[w.Type]
		if m == nil {
			m = map[string]int{}
			out[w.Type] = m
		}
		m[w.Bottleneck]++
	}
	return out
}

// MajorityBottleneck returns the most frequent bottleneck for a frame
// type, or "" if the type never occurred.
func (r *Fig10Result) MajorityBottleneck(t media.FrameType) string {
	counts := r.RotationSummary()[t]
	best, bestN := "", 0
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if counts[n] > bestN {
			best, bestN = n, counts[n]
		}
	}
	return best
}

// UtilizationReport summarizes coprocessor busy fractions (the
// architecture view of Figure 9).
type UtilizationReport struct {
	Name string
	Busy float64
}

// Utilizations returns the busy fraction of every instantiated
// coprocessor, sorted by name.
func (s *System) Utilizations() []UtilizationReport {
	names := s.CoproNames()
	sort.Strings(names)
	out := make([]UtilizationReport, 0, len(names))
	for _, n := range names {
		out = append(out, UtilizationReport{Name: n, Busy: s.Shell(n).Utilization()})
	}
	return out
}
