package eclipse

import (
	"fmt"
	"io"
	"sort"

	"eclipse/internal/trace"
	"eclipse/internal/viz"
)

// WriteReport prints the Figure 9 style performance views of a finished
// run: the architecture view (coprocessor utilization, bus occupancy,
// cache behaviour) and the application view (per-task steps/switches/
// stalls and per-stream traffic).
func (s *System) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "== architecture view (cycle %d) ==\n\n", s.K.Now())
	var bars []viz.BarItem
	for _, u := range s.Utilizations() {
		bars = append(bars, viz.BarItem{Label: u.Name + " busy", Value: u.Busy})
	}
	bars = append(bars,
		viz.BarItem{Label: "sram read bus", Value: s.SRAM.ReadPort().Utilization()},
		viz.BarItem{Label: "sram write bus", Value: s.SRAM.WritePort().Utilization()},
		viz.BarItem{Label: "system bus", Value: s.DRAM.ReadPort().Utilization()},
	)
	io.WriteString(w, viz.RenderBars(bars))

	fmt.Fprintf(w, "\ncaches:\n")
	fmt.Fprintf(w, "  %-5s %22s %8s %8s %10s %10s %9s\n",
		"", "read hits/misses", "hit-rate", "invalid", "wr-flushes", "evictions", "prefetch")
	names := s.CoproNames()
	sort.Strings(names)
	for _, n := range names {
		sh := s.Shell(n)
		r, wr := sh.ReadCacheStats(), sh.WriteCacheStats()
		ts := sh.TransportStats()
		pref := "-"
		if ts.PrefetchesIssued > 0 {
			pref = fmt.Sprintf("%d/%d", ts.PrefetchesIssued-ts.PrefetchesDropped, ts.PrefetchesIssued)
		}
		fmt.Fprintf(w, "  %-5s %12d/%-9d %7.1f%% %8d %10d %10d %9s\n",
			n, r.Hits, r.Misses, r.HitRate()*100, r.Invalidations,
			wr.Flushes, r.Evictions+wr.Evictions, pref)
	}

	fmt.Fprintf(w, "\n== application view ==\n\n")
	fmt.Fprintf(w, "%-14s %10s %9s %9s %12s %8s %10s\n", "task", "steps", "switches", "denied", "run-cycles", "share", "step-p50")
	taskNames := make([]string, 0, len(s.tasks))
	for n := range s.tasks {
		taskNames = append(taskNames, n)
	}
	sort.Strings(taskNames)
	now := s.K.Now()
	for _, n := range taskNames {
		st, _ := s.TaskStats(n)
		share := 0.0
		if now > 0 {
			share = float64(st.RunCycles) / float64(now)
		}
		fmt.Fprintf(w, "%-14s %10d %9d %9d %12d %7.1f%% %10d\n",
			n, st.Steps, st.Switches, st.DeniedSteps, st.RunCycles, share*100, st.StepPercentile(0.5))
	}
}

// WriteCharts renders every collected trace series as an ASCII chart
// (the Figure 10 style application view).
func (s *System) WriteCharts(w io.Writer) {
	c := viz.DefaultChart()
	for _, name := range s.Collector.Names() {
		io.WriteString(w, c.Render(s.Collector.Series(name), ""))
		io.WriteString(w, "\n")
	}
}

// WriteTraceCSV exports all collected series in long-form CSV.
func (s *System) WriteTraceCSV(w io.Writer) error {
	return s.Collector.WriteCSV(w)
}

// ChartSeries renders one named series with an annotation line.
func (s *System) ChartSeries(w io.Writer, name, annot string) error {
	series := s.Collector.Series(name)
	if series == nil {
		return fmt.Errorf("eclipse: no trace series %q (have %v)", name, s.Collector.Names())
	}
	_, err := io.WriteString(w, viz.DefaultChart().Render(series, annot))
	return err
}

// Series exposes a collected trace series by name (nil if absent).
func (s *System) Series(name string) *trace.Series { return s.Collector.Series(name) }
