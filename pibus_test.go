package eclipse

import (
	"testing"
)

func TestPIMonitorCollectsSamples(t *testing.T) {
	stream, _ := encodeSequence(t, 64, 48, 6, nil)
	sys := NewSystem(Fig8())
	app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mon := sys.AddPIMonitor(2048)
	cycles, err := sys.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := app.VerifyAgainstReference(stream); err != nil {
		t.Fatal(err)
	}
	if len(mon.Samples) < 2 {
		t.Fatalf("%d samples over %d cycles", len(mon.Samples), cycles)
	}
	// Step counters read over the PI bus must be monotone.
	key := ""
	for k := range mon.Samples[0].Values {
		if len(k) > 5 && k[len(k)-5:] == "steps" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatalf("no step register in %v", mon.Samples[0].Values)
	}
	var prev uint64
	grew := false
	for _, s := range mon.Samples {
		v := s.Values[key]
		if v < prev {
			t.Fatalf("register %s went backwards: %d -> %d", key, prev, v)
		}
		if v > prev {
			grew = true
		}
		prev = v
	}
	if !grew {
		t.Fatalf("register %s never advanced", key)
	}
	// The control bus has a visible, modest cost.
	reads, busy := mon.Bus.Stats()
	if reads == 0 || busy == 0 {
		t.Fatal("no PI bus traffic")
	}
	if u := mon.Bus.Utilization(); u <= 0 || u > 0.5 {
		t.Fatalf("PI utilization %.3f out of plausible range", u)
	}
}

func TestPIMonitorAggressiveSamplingCosts(t *testing.T) {
	// The paper's point in Section 5.4: collecting every few cycles over
	// the control bus is expensive. A very short interval must raise PI
	// utilization well above a coarse one.
	run := func(interval uint64) float64 {
		stream, _ := encodeSequence(t, 48, 32, 3, nil)
		sys := NewSystem(Fig8())
		if _, err := sys.AddDecodeApp("dec", stream, DecodeOptions{}); err != nil {
			t.Fatal(err)
		}
		mon := sys.AddPIMonitor(interval)
		if _, err := sys.Run(0); err != nil {
			t.Fatal(err)
		}
		return mon.Bus.Utilization()
	}
	fine, coarse := run(128), run(8192)
	if fine <= coarse {
		t.Fatalf("fine sampling (%.4f) not costlier than coarse (%.4f)", fine, coarse)
	}
}

// TestProcessingStepGranularity verifies the paper's Section 5.3 target:
// coprocessor processing steps fall in the 10–1000 cycle range (software
// tasks and frame-boundary micro-steps may sit below it; the histogram's
// median for the hardware pipeline tasks must be inside).
func TestProcessingStepGranularity(t *testing.T) {
	stream, _ := encodeSequence(t, 96, 80, 6, nil)
	sys := NewSystem(Fig8())
	app, err := sys.AddDecodeApp("dec", stream, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0); err != nil {
		t.Fatal(err)
	}
	if err := app.VerifyAgainstReference(stream); err != nil {
		t.Fatal(err)
	}
	for _, task := range []string{"vld", "rlsq", "idct", "mc"} {
		st, err := sys.TaskStats("dec-" + task)
		if err != nil {
			t.Fatal(err)
		}
		p50 := st.StepPercentile(0.5)
		p95 := st.StepPercentile(0.95)
		if p50 < 8 || p50 > 1024 {
			t.Errorf("%s: median step %d cycles outside the paper's 10-1000 target", task, p50)
		}
		if p95 > 4096 {
			t.Errorf("%s: p95 step %d cycles implausibly long", task, p95)
		}
		t.Logf("%-5s steps=%5d p50=%4d p95=%4d cycles", task, st.Steps, p50, p95)
	}
}
