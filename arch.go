// Package eclipse is the public API of the Eclipse architecture model: a
// reproduction of "Eclipse: A Heterogeneous Multiprocessor Architecture
// for Flexible Media Processing" (Rutten et al., IPPS 2002).
//
// An Eclipse instance is assembled from an Arch description (memories,
// shell template parameters, cost calibration). Applications are Kahn
// process-network graphs (package kpn) mapped onto the instance's
// multi-tasking coprocessors; the same graph can also execute
// functionally (untimed, goroutines and channels) for reference output.
//
// Typical use:
//
//	sys := eclipse.NewSystem(eclipse.Fig8())
//	app, err := sys.AddDecodeApp("dec", bitstream, eclipse.DecodeOptions{})
//	cycles, err := sys.Run(0)
//	frames := app.Sink.Frames
package eclipse

import (
	"eclipse/internal/copro"
	"eclipse/internal/mem"
	"eclipse/internal/shell"
)

// Arch describes an Eclipse instance: the template parameters of paper
// Section 3 plus the cost calibration of the coprocessor models.
type Arch struct {
	// SRAM is the on-chip communication memory holding stream buffers.
	SRAM mem.Config
	// DRAM is the off-chip memory behind the system bus (bit-streams,
	// reference frames).
	DRAM mem.Config
	// Shell is the shell template; every coprocessor's shell is derived
	// from it (Name is overridden per instance).
	Shell shell.Config
	// ShellOverride customizes individual coprocessors' shells by name.
	ShellOverride map[string]shell.Config
	// Costs calibrates the coprocessor computation models.
	Costs copro.Costs
	// SampleInterval is the measurement sampling period in cycles
	// (Section 5.4); 0 uses a default.
	SampleInterval uint64
	// DistributedStreams selects the distributed communication-memory
	// organization of the paper's Section 6 tradeoff: every stream buffer
	// gets a dedicated local bank (latency 1, no cross-stream contention)
	// instead of living in the shared central SRAM. More performant and
	// scalable, less flexible (capacity fixed per stream at design time).
	DistributedStreams bool
}

// Fig8 returns the paper's first instance (Figure 8): VLD, RLSQ, DCT and
// MC/ME coprocessors plus a media-processor (CPU) shell, a 32 kB wide
// dual-bus stream SRAM, and off-chip memory behind a high-latency system
// bus. All cycle figures are in 150 MHz coprocessor cycles.
func Fig8() Arch {
	return Arch{
		SRAM:           mem.Fig8SRAM(),
		DRAM:           mem.Fig8DRAM(),
		Shell:          shell.DefaultConfig(""),
		Costs:          copro.DefaultCosts(),
		SampleInterval: 256,
	}
}

// CoproNames lists the computation resources of the Figure 8 instance.
// "cpu" is the programmable media processor executing software tasks.
var CoproNames = []string{"vld", "rlsq", "dct", "mc", "cpu"}

// shellConfig derives the shell configuration for a named coprocessor.
func (a *Arch) shellConfig(name string) shell.Config {
	cfg := a.Shell
	if ov, ok := a.ShellOverride[name]; ok {
		cfg = ov
	}
	cfg.Name = name
	return cfg
}

// DefaultDecodeMapping maps the decode graph's Kahn functions onto the
// Figure 8 coprocessors (Figure 3's application-to-architecture mapping).
var DefaultDecodeMapping = map[string]string{
	"bitsrc": "cpu",
	"vld":    "vld",
	"rlsq":   "rlsq",
	"idct":   "dct",
	"mc":     "mc",
	"sink":   "cpu",
}

// DefaultEncodeMapping maps the encode graph's Kahn functions onto the
// same coprocessors: the DCT coprocessor time-shares forward and inverse
// transforms, the RLSQ quantization and dequantization, and the MC/ME
// coprocessor estimation and reconstruction — the reuse flexibility the
// paper motivates in Section 2.1.
var DefaultEncodeMapping = map[string]string{
	"me":   "mc",
	"fdct": "dct",
	"q":    "rlsq",
	"iq":   "rlsq",
	"idct": "dct",
	"mcr":  "mc",
	"vle":  "cpu",
}
