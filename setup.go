package eclipse

import (
	"fmt"
	"io"
	"strings"

	"eclipse/internal/config"
	"eclipse/internal/media"
	"eclipse/internal/shell"
)

// SetupApp is one application instantiated from a setup file.
type SetupApp struct {
	Name   string
	Kind   string // "decode" or "encode"
	Decode *DecodeApp
	Encode *EncodeApp
	// Verify checks the application's output against its reference
	// implementation after the run.
	Verify func() error
}

// LoadSetup parses a setup file (see internal/config.Example), assembles
// the described Eclipse instance, generates the described workloads, and
// maps the applications. Run the returned system and then Verify each
// app.
func LoadSetup(r io.Reader) (*System, []*SetupApp, error) {
	f, err := config.Parse(r)
	if err != nil {
		return nil, nil, err
	}
	arch := Fig8()
	if err := applyArch(f, &arch); err != nil {
		return nil, nil, err
	}
	sys := NewSystem(arch)
	var apps []*SetupApp
	for _, s := range f.Find("app") {
		s := s
		if len(s.Args) != 2 {
			return nil, nil, fmt.Errorf("config: line %d: want [app decode|encode NAME]", s.Line)
		}
		app, err := buildApp(sys, &s)
		if err != nil {
			return nil, nil, err
		}
		apps = append(apps, app)
	}
	if len(apps) == 0 {
		return nil, nil, fmt.Errorf("config: no [app ...] sections")
	}
	return sys, apps, nil
}

// applyArch folds [arch], [shell], [shell NAME], and [costs] sections
// into the architecture description.
func applyArch(f *config.File, arch *Arch) error {
	for _, s := range f.Find("arch") {
		s := s
		d := config.NewDecoder(&s)
		sramKB := arch.SRAM.Size / 1024
		d.Int("sram_kb", &sramKB)
		d.Int("sram_width", &arch.SRAM.Width)
		d.Uint64("sram_read_latency", &arch.SRAM.ReadLatency)
		d.Uint64("sram_write_latency", &arch.SRAM.WriteLatency)
		d.Uint64("dram_read_latency", &arch.DRAM.ReadLatency)
		d.Uint64("dram_write_latency", &arch.DRAM.WriteLatency)
		d.Uint64("sample_interval", &arch.SampleInterval)
		d.Bool("distributed_streams", &arch.DistributedStreams)
		if err := d.Finish(); err != nil {
			return err
		}
		arch.SRAM.Size = sramKB * 1024
	}
	decodeShell := func(s *config.Section, cfg *shell.Config) error {
		d := config.NewDecoder(s)
		d.Int("read_cache_lines", &cfg.ReadCacheLines)
		d.Int("write_cache_lines", &cfg.WriteCacheLines)
		d.Int("prefetch_depth", &cfg.PrefetchDepth)
		d.Uint64("msg_latency", &cfg.MsgLatency)
		d.Uint64("gettask_cycles", &cfg.GetTaskCycles)
		d.Uint64("getspace_cycles", &cfg.GetSpaceCycles)
		d.Uint64("putspace_cycles", &cfg.PutSpaceCycles)
		d.Uint64("switch_cycles", &cfg.SwitchCycles)
		d.Uint64("access_cycles", &cfg.AccessCycles)
		d.Bool("naive_scheduler", &cfg.NaiveScheduler)
		return d.Finish()
	}
	for _, s := range f.Find("shell") {
		s := s
		switch len(s.Args) {
		case 0:
			if err := decodeShell(&s, &arch.Shell); err != nil {
				return err
			}
		case 1:
			cfg := arch.Shell
			if prev, ok := arch.ShellOverride[s.Args[0]]; ok {
				cfg = prev
			}
			if err := decodeShell(&s, &cfg); err != nil {
				return err
			}
			if arch.ShellOverride == nil {
				arch.ShellOverride = map[string]shell.Config{}
			}
			arch.ShellOverride[s.Args[0]] = cfg
		default:
			return fmt.Errorf("config: line %d: want [shell] or [shell NAME]", s.Line)
		}
	}
	for _, s := range f.Find("costs") {
		s := s
		d := config.NewDecoder(&s)
		d.Uint64("vld_base", &arch.Costs.VLDBase)
		d.Uint64("vld_per_bit", &arch.Costs.VLDPerBit)
		d.Uint64("rlsq_base", &arch.Costs.RLSQBase)
		d.Uint64("rlsq_per_token", &arch.Costs.RLSQPerToken)
		d.Uint64("rlsq_per_block", &arch.Costs.RLSQPerBlock)
		d.Uint64("dct_per_block", &arch.Costs.DCTPerBlock)
		d.Bool("dct_pipelined", &arch.Costs.DCTPipelined)
		d.Uint64("mc_recon", &arch.Costs.MCRecon)
		d.Uint64("mc_bi_extra", &arch.Costs.MCBiExtra)
		d.Uint64("me_per_candidate", &arch.Costs.MEPerCandidate)
		d.Uint64("sw_chunk", &arch.Costs.SWChunk)
		d.Uint64("sw_per_mb", &arch.Costs.SWPerMB)
		if err := d.Finish(); err != nil {
			return err
		}
	}
	return nil
}

// appSpec is the workload description shared by decode and encode apps.
type appSpec struct {
	w, h, frames  int
	q, gopN, gopM int
	seed          int64
	probes        bool
	budget        uint64
	halfPel       bool
}

func decodeAppSpec(s *config.Section) (appSpec, error) {
	spec := appSpec{w: 96, h: 80, frames: 8, q: 6, gopN: 12, gopM: 3, seed: 1}
	d := config.NewDecoder(s)
	d.Int("width", &spec.w)
	d.Int("height", &spec.h)
	d.Int("frames", &spec.frames)
	d.Int("q", &spec.q)
	d.Int("gop_n", &spec.gopN)
	d.Int("gop_m", &spec.gopM)
	d.Int64("seed", &spec.seed)
	d.Bool("probes", &spec.probes)
	d.Uint64("budget", &spec.budget)
	d.Bool("half_pel", &spec.halfPel)
	return spec, d.Finish()
}

func (spec *appSpec) codec() media.CodecConfig {
	cfg := media.DefaultCodec(spec.w, spec.h)
	cfg.Q = spec.q
	cfg.GOPN = spec.gopN
	cfg.GOPM = spec.gopM
	cfg.HalfPel = spec.halfPel
	return cfg
}

func (spec *appSpec) video() []*media.Frame {
	src := media.DefaultSource(spec.w, spec.h)
	src.Seed = spec.seed
	return media.NewSource(src).Frames(spec.frames)
}

// buildApp instantiates one [app ...] section on the system.
func buildApp(sys *System, s *config.Section) (*SetupApp, error) {
	kind, name := s.Args[0], s.Args[1]
	spec, err := decodeAppSpec(s)
	if err != nil {
		return nil, err
	}
	cfg := spec.codec()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("config: app %s: %w", name, err)
	}
	frames := spec.video()
	switch kind {
	case "decode":
		stream, _, _, err := media.Encode(cfg, frames)
		if err != nil {
			return nil, err
		}
		app, err := sys.AddDecodeApp(name, stream, DecodeOptions{Probes: spec.probes, Budget: spec.budget})
		if err != nil {
			return nil, err
		}
		return &SetupApp{
			Name: name, Kind: kind, Decode: app,
			Verify: func() error { return app.VerifyAgainstReference(stream) },
		}, nil
	case "encode":
		app, err := sys.AddEncodeApp(name, cfg, frames, EncodeOptions{Probes: spec.probes, Budget: spec.budget})
		if err != nil {
			return nil, err
		}
		return &SetupApp{
			Name: name, Kind: kind, Encode: app,
			Verify: func() error { return app.VerifyAgainstReference(cfg, frames) },
		}, nil
	default:
		return nil, fmt.Errorf("config: line %d: unknown app kind %q", s.Line, kind)
	}
}

// LoadSetupString is LoadSetup over an in-memory setup file.
func LoadSetupString(text string) (*System, []*SetupApp, error) {
	return LoadSetup(strings.NewReader(text))
}

// ExampleSetup is the annotated example setup file.
const ExampleSetup = config.Example
