package eclipse

import (
	"testing"
)

// sweepStream returns a small shared test bitstream.
func sweepStream(t *testing.T) []byte {
	t.Helper()
	stream, _ := encodeSequence(t, 64, 48, 6, nil)
	return stream
}

// TestDecodeGoldenCycles pins the simulated cycle count of a reference
// decode run. The constant was recorded on the original closure-per-event
// kernel; the typed-event/timing-wheel kernel (and any future kernel
// change) must reproduce it exactly — simulated time is part of the
// model's semantics, and any drift means event ordering changed.
func TestDecodeGoldenCycles(t *testing.T) {
	const goldenCycles = 32471 // 64x48, 6 frames, default arch, seed kernel
	cycles, _, err := runDecodeWith(sweepStream(t), nil, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cycles != goldenCycles {
		t.Fatalf("decode took %d simulated cycles, golden value is %d — "+
			"kernel event ordering changed", cycles, goldenCycles)
	}
}

func TestCacheSweepShape(t *testing.T) {
	pts, err := RunCacheSweep(sweepStream(t), []int{1, 4, 16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("%d points", len(pts))
	}
	// Bigger caches must never hurt much and must help overall.
	if pts[3].Cycles >= pts[0].Cycles {
		t.Errorf("64-line cache (%d) not faster than 1-line (%d)", pts[3].Cycles, pts[0].Cycles)
	}
	// Diminishing returns: the first growth step helps more than the last.
	gain1 := float64(pts[0].Cycles) - float64(pts[1].Cycles)
	gain3 := float64(pts[2].Cycles) - float64(pts[3].Cycles)
	if gain3 > gain1 {
		t.Errorf("no diminishing returns: first gain %.0f, last %.0f", gain1, gain3)
	}
	// Hit rate must grow with capacity.
	if pts[3].Extra["rlsq_read_hit_rate"] <= pts[0].Extra["rlsq_read_hit_rate"] {
		t.Errorf("hit rate did not improve: %v vs %v", pts[3].Extra, pts[0].Extra)
	}
}

func TestPrefetchSweepShape(t *testing.T) {
	pts, err := RunPrefetchSweep(sweepStream(t), []int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Cycles >= pts[0].Cycles {
		t.Errorf("prefetch depth 2 (%d) not faster than none (%d)", pts[1].Cycles, pts[0].Cycles)
	}
}

func TestBusWidthSweepShape(t *testing.T) {
	pts, err := RunBusWidthSweep(sweepStream(t), []int{4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	// Narrower buses must cost cycles; wide buses saturate.
	if pts[0].Cycles <= pts[2].Cycles {
		t.Errorf("32-bit bus (%d) not slower than 128-bit (%d)", pts[0].Cycles, pts[2].Cycles)
	}
	// Once the bus stops being the bottleneck the gain flattens: going
	// 128→256 bit helps less than 32→64 bit.
	gainNarrow := float64(pts[0].Cycles) - float64(pts[1].Cycles)
	gainWide := float64(pts[2].Cycles) - float64(pts[3].Cycles)
	if gainWide > gainNarrow {
		t.Errorf("no saturation: narrow gain %.0f, wide gain %.0f", gainNarrow, gainWide)
	}
	// Bus utilization must fall with width.
	if pts[0].Extra["read_bus_util"] <= pts[3].Extra["read_bus_util"] {
		t.Errorf("read bus utilization did not fall with width: %v vs %v",
			pts[0].Extra, pts[3].Extra)
	}
}

func TestBusLatencySweepShape(t *testing.T) {
	pts, err := RunBusLatencySweep(sweepStream(t), []uint64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if pts[2].Cycles <= pts[0].Cycles {
		t.Errorf("16-cycle latency (%d) not slower than 1 (%d)", pts[2].Cycles, pts[0].Cycles)
	}
}

func TestBufferScaleSweepShape(t *testing.T) {
	pts, err := RunBufferScaleSweep(sweepStream(t), []float64{0.05, 0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// 0.05x cannot hold one token record: must fail.
	if pts[0].Extra["failed"] != 1 {
		t.Errorf("0.05x buffers unexpectedly worked")
	}
	// 0.5x through 2x must work; bigger buffers must not be slower.
	for _, p := range pts[1:] {
		if p.Extra["failed"] == 1 {
			t.Errorf("%s failed", p.Label)
		}
	}
	if pts[3].Cycles > pts[1].Cycles {
		t.Errorf("2x buffers (%d) slower than 0.5x (%d)", pts[3].Cycles, pts[1].Cycles)
	}
}

func TestSchedulerBestGuessBeatsNaive(t *testing.T) {
	a, _ := encodeSequence(t, 64, 48, 5, nil)
	b, _ := encodeSequence(t, 48, 32, 5, nil)
	best, err := RunSchedulerExperiment(a, b, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := RunSchedulerExperiment(a, b, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if naive.DeniedSteps <= best.DeniedSteps {
		t.Errorf("naive denied steps %d not above best-guess %d", naive.DeniedSteps, best.DeniedSteps)
	}
	// The best-guess policy must waste a small fraction of steps; naive
	// wastes many.
	bestWaste := float64(best.DeniedSteps) / float64(best.Steps)
	naiveWaste := float64(naive.DeniedSteps) / float64(naive.Steps)
	if naiveWaste < 2*bestWaste {
		t.Errorf("waste: naive %.3f vs best %.3f", naiveWaste, bestWaste)
	}
	t.Logf("best-guess: %d cycles, %.1f%% wasted steps; naive: %d cycles, %.1f%% wasted steps",
		best.Cycles, bestWaste*100, naive.Cycles, naiveWaste*100)
}

func TestSchedulerBudgetControlsSwitchRate(t *testing.T) {
	a, _ := encodeSequence(t, 64, 48, 5, nil)
	b, _ := encodeSequence(t, 48, 32, 5, nil)
	small, err := RunSchedulerExperiment(a, b, false, 500)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunSchedulerExperiment(a, b, false, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if large.Switches >= small.Switches {
		t.Errorf("budget 20000 switches %d not below budget 500 switches %d",
			large.Switches, small.Switches)
	}
}

func TestCouplingExperimentShape(t *testing.T) {
	pts, err := RunCouplingExperiment(16384, []int{16, 64, 256}, []int{64, 256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[[2]int]CouplingPoint{}
	for _, p := range pts {
		byKey[[2]int{p.Grain, p.BufBytes}] = p
	}
	// Granularity larger than the buffer deadlocks.
	if !byKey[[2]int{256, 64}].Deadlock {
		t.Error("grain 256 through 64-byte buffer should deadlock")
	}
	// Fine granularity works through a small buffer.
	if byKey[[2]int{16, 64}].Deadlock {
		t.Error("grain 16 through 64-byte buffer deadlocked")
	}
	// Coarser sync sends fewer messages for the same data.
	if f, c := byKey[[2]int{16, 1024}], byKey[[2]int{256, 1024}]; f.Msgs <= c.Msgs {
		t.Errorf("msgs: fine %d, coarse %d", f.Msgs, c.Msgs)
	}
	// With a roomy buffer, coarser sync is at least as fast (less
	// synchronization overhead).
	if f, c := byKey[[2]int{16, 1024}], byKey[[2]int{256, 1024}]; c.Cycles > f.Cycles {
		t.Errorf("coarse sync slower: %d vs %d", c.Cycles, f.Cycles)
	}
}

func TestThroughputReport(t *testing.T) {
	a, _ := encodeSequence(t, 64, 48, 5, nil)
	b, _ := encodeSequence(t, 64, 48, 5, func(c *CodecConfig) { c.Q = 10 })
	r, err := RunThroughput(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops == 0 || r.OpsPerCycle <= 0 || r.GopsAt150MHz <= 0 {
		t.Fatalf("report %+v", r)
	}
	if r.BusReadUtil <= 0 || r.BusReadUtil > 1 {
		t.Fatalf("bus utilization %v", r.BusReadUtil)
	}
}

func TestOpsEstimate(t *testing.T) {
	small, _ := encodeSequence(t, 32, 32, 2, nil)
	big, _ := encodeSequence(t, 64, 64, 6, nil)
	so, err := OpsEstimate(small)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := OpsEstimate(big)
	if err != nil {
		t.Fatal(err)
	}
	if bo <= so {
		t.Fatalf("ops: big %d <= small %d", bo, so)
	}
	if _, err := OpsEstimate([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestMsgLatencySweepShape(t *testing.T) {
	pts, err := RunMsgLatencySweep(sweepStream(t), []uint64{0, 8, 32})
	if err != nil {
		t.Fatal(err)
	}
	if pts[2].Cycles <= pts[0].Cycles {
		t.Errorf("32-cycle messages (%d) not slower than instant (%d)", pts[2].Cycles, pts[0].Cycles)
	}
}
