package eclipse

import (
	"eclipse/internal/shell"
)

// Additional instances of the Eclipse template, demonstrating the
// scalability story of paper Section 2.3: the same coprocessor and shell
// designs recur across instances that differ in memory sizing, cache
// provisioning, and how many physical coprocessors the Kahn functions
// are folded onto.

// Lite returns a cost-reduced instance: half the stream memory, minimal
// shell caches, no prefetching. Applications map unchanged; they just
// run slower — the template guarantees functional equivalence.
func Lite() Arch {
	a := Fig8()
	a.SRAM.Size = 16 * 1024
	a.Shell.ReadCacheLines = 4
	a.Shell.WriteCacheLines = 4
	a.Shell.PrefetchDepth = 0
	return a
}

// HD returns a scaled-up instance for higher-rate workloads: four times
// the stream memory, larger caches, deeper prefetch, and a faster
// putspace network.
func HD() Arch {
	a := Fig8()
	a.SRAM.Size = 128 * 1024
	a.Shell.ReadCacheLines = 64
	a.Shell.WriteCacheLines = 64
	a.Shell.PrefetchDepth = 4
	a.Shell.MsgLatency = 2
	return a
}

// LiteDecodeMapping folds the whole decode pipeline onto two physical
// resources: one "xform" coprocessor time-sharing the VLD, RLSQ, and DCT
// functions, and the MC/ME coprocessor (which keeps its system-bus
// connection); software tasks stay on the CPU. This is the paper's
// medium-grain flexibility taken to its cheap extreme — fewer
// coprocessors, same application graphs, same outputs.
var LiteDecodeMapping = map[string]string{
	"bitsrc": "cpu",
	"vld":    "xform",
	"rlsq":   "xform",
	"idct":   "xform",
	"mc":     "mc",
	"sink":   "cpu",
}

// ShellConfigFor exposes the derived shell configuration of a named
// coprocessor under this architecture (for tests and tooling).
func (a *Arch) ShellConfigFor(name string) shell.Config { return a.shellConfig(name) }
