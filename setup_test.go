package eclipse

import (
	"strings"
	"testing"
)

func TestLoadSetupExampleRuns(t *testing.T) {
	sys, apps, err := LoadSetup(strings.NewReader(ExampleSetup))
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 2 {
		t.Fatalf("%d apps", len(apps))
	}
	if _, err := sys.Run(50_000_000_000); err != nil {
		t.Fatal(err)
	}
	for _, app := range apps {
		if err := app.Verify(); err != nil {
			t.Errorf("app %s: %v", app.Name, err)
		}
	}
	// The dct shell override must have taken effect.
	if got := sys.Shell("dct").Config().ReadCacheLines; got != 32 {
		t.Errorf("dct read cache lines = %d, want 32", got)
	}
	// Probed decode app must have series.
	if s := sys.Collector.Series("dec0/rlsq.in"); s == nil || len(s.X) == 0 {
		t.Error("missing probe series from setup")
	}
}

func TestLoadSetupErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"no apps", "[arch]\nsram_kb = 32\n"},
		{"bad key", "[arch]\nbogus = 1\n[app decode d]\n"},
		{"bad value", "[arch]\nsram_kb = banana\n[app decode d]\n"},
		{"bad app kind", "[app transmogrify x]\nwidth=32\n"},
		{"bad app args", "[app decode]\n"},
		{"key outside section", "width = 32\n"},
		{"unterminated header", "[arch\n"},
		{"duplicate key", "[arch]\nsram_kb = 1\nsram_kb = 2\n[app decode d]\n"},
		{"bad shell args", "[shell a b]\nmsg_latency = 1\n[app decode d]\n"},
		{"bad codec", "[app decode d]\nq = 99\n"},
	}
	for _, c := range cases {
		if _, _, err := LoadSetup(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSetupNaiveSchedulerKey(t *testing.T) {
	text := `
[shell]
naive_scheduler = true
[app decode d]
width = 48
height = 32
frames = 3
`
	sys, apps, err := LoadSetup(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Shell("vld").Config().NaiveScheduler {
		t.Fatal("naive_scheduler not applied")
	}
	if _, err := sys.Run(50_000_000_000); err != nil {
		t.Fatal(err)
	}
	if err := apps[0].Verify(); err != nil {
		t.Fatal(err)
	}
}
