package eclipse

import (
	"bytes"
	"fmt"

	"eclipse/internal/copro"
	"eclipse/internal/coproc"
	"eclipse/internal/kpn"
	"eclipse/internal/media"
)

// EncodeBuffers sets the stream buffer sizes (bytes) of an encode
// application.
type EncodeBuffers struct {
	Resid, Info, Coef, Tok, Rq, Qz, ICoef, Resid2, Fb int
}

// DefaultEncodeBuffers sizes an encode application at roughly 12.5 kB of
// stream memory, leaving room for simultaneous decoding in the 32 kB
// Figure 8 SRAM (the time-shift use case).
func DefaultEncodeBuffers() EncodeBuffers {
	return EncodeBuffers{
		Resid:  2048,
		Info:   512,
		Coef:   2048,
		Tok:    1536,
		Rq:     256,
		Qz:     2048,
		ICoef:  2048,
		Resid2: 2048,
		Fb:     16,
	}
}

// EncodeGraph builds the encoder process network: motion estimation →
// forward DCT → quantization, fanning out to the software VLE and to the
// reconstruction loop (inverse quantization → inverse DCT → motion-
// compensated reconstruction), closed by a frame-done feedback stream
// back to the ME. The decision stream is broadcast to both the quantizer
// and the VLE.
func EncodeGraph(name string, buf EncodeBuffers) *kpn.Graph {
	g := kpn.NewGraph(name)
	p := func(s string) string { return name + "-" + s }
	g.AddTask(p("me"), "me").AddOut("resid").AddOut("info").AddIn("fb")
	g.AddTask(p("fdct"), "fdct").AddIn("resid").AddOut("coef")
	g.AddTask(p("q"), "q").AddIn("coef").AddIn("info").AddOut("tok").AddOut("rq").AddOut("qz")
	g.AddTask(p("iq"), "iq").AddIn("qz").AddOut("icoef")
	g.AddTask(p("idct"), "idct").AddIn("icoef").AddOut("resid")
	g.AddTask(p("mcr"), "mcr").AddIn("rq").AddIn("resid").AddOut("fb")
	g.AddTask(p("vle"), "vle").AddIn("info").AddIn("tok")
	g.MustConnect(p("me")+".resid", buf.Resid, p("fdct")+".resid")
	g.MustConnect(p("me")+".info", buf.Info, p("q")+".info", p("vle")+".info")
	g.MustConnect(p("fdct")+".coef", buf.Coef, p("q")+".coef")
	g.MustConnect(p("q")+".tok", buf.Tok, p("vle")+".tok")
	g.MustConnect(p("q")+".rq", buf.Rq, p("mcr")+".rq")
	g.MustConnect(p("q")+".qz", buf.Qz, p("iq")+".qz")
	g.MustConnect(p("iq")+".icoef", buf.ICoef, p("idct")+".icoef")
	g.MustConnect(p("idct")+".resid", buf.Resid2, p("mcr")+".resid")
	g.MustConnect(p("mcr")+".fb", buf.Fb, p("me")+".fb")
	return g
}

// EncodeOptions customizes an encode application instance.
type EncodeOptions struct {
	Buffers *EncodeBuffers    // nil for defaults
	Mapping map[string]string // fn → coprocessor; nil for DefaultEncodeMapping
	Budget  uint64
	Probes  bool
}

// EncodeApp is one encode application mapped onto the instance.
type EncodeApp struct {
	Name  string
	Seq   media.SeqHeader
	Graph *kpn.Graph
	VLE   *copro.VLE
}

// Bitstream returns the coded output (valid after Run).
func (a *EncodeApp) Bitstream() []byte { return a.VLE.Bitstream() }

// VerifyAgainstReference encodes the same input with the monolithic
// reference encoder and requires bit-identical output — the strongest
// possible check that the staged, multi-tasking, cycle-accurate pipeline
// implements the same function.
func (a *EncodeApp) VerifyAgainstReference(cfg media.CodecConfig, frames []*media.Frame) error {
	want, _, _, err := media.Encode(cfg, frames)
	if err != nil {
		return err
	}
	got := a.Bitstream()
	if !bytes.Equal(got, want) {
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		at := n
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				at = i
				break
			}
		}
		return fmt.Errorf("eclipse: encoded stream differs from reference at byte %d (lengths %d vs %d)",
			at, len(got), len(want))
	}
	return nil
}

// AddEncodeApp loads raw video into off-chip memory, builds the encoder
// process network, and maps it onto the instance. The same coprocessors
// can simultaneously run decode applications (transcoding / time-shift).
func (s *System) AddEncodeApp(name string, cfg media.CodecConfig, frames []*media.Frame, opt EncodeOptions) (*EncodeApp, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("eclipse: %s: no input frames", name)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("eclipse: %s: %w", name, err)
	}
	seq := media.SeqHeader{
		MBCols: cfg.W / media.MBSize, MBRows: cfg.H / media.MBSize,
		Q: cfg.Q, GOPN: cfg.GOPN, GOPM: cfg.GOPM, Frames: len(frames),
		HalfPel: cfg.HalfPel,
	}
	bufs := DefaultEncodeBuffers()
	if opt.Buffers != nil {
		bufs = *opt.Buffers
	}
	mapping := DefaultEncodeMapping
	if opt.Mapping != nil {
		mapping = opt.Mapping
	}
	g := EncodeGraph(name, bufs)

	rawBase, err := s.AllocDRAM(len(frames) * cfg.W * cfg.H)
	if err != nil {
		return nil, err
	}
	raw, err := copro.NewRawStore(s.DRAM, rawBase, frames)
	if err != nil {
		return nil, err
	}
	fsBase, err := s.AllocDRAM(3 * cfg.W * cfg.H)
	if err != nil {
		return nil, err
	}
	fs, err := copro.NewFramestore(s.DRAM, cfg.W, cfg.H, fsBase)
	if err != nil {
		return nil, err
	}

	costs := &s.Arch.Costs
	blocks := len(frames) * seq.MBCount() * media.BlocksPerMB
	vle := &copro.VLE{Costs: costs, Seq: seq}
	p := func(n string) string { return name + "-" + n }
	impls := map[string]coproc.Task{
		p("me"):   &copro.ME{Costs: costs, Cfg: cfg, Raw: raw, FS: fs},
		p("fdct"): &copro.FDCT{Costs: costs, Blocks: blocks},
		p("q"):    &copro.Q{Costs: costs, Seq: seq},
		p("iq"):   &copro.IQ{Costs: costs, QParam: cfg.Q, Blocks: blocks},
		p("idct"): &copro.IDCT{Costs: costs, Blocks: blocks},
		p("mcr"):  &copro.MCR{Costs: costs, Seq: seq, FS: fs},
		p("vle"):  vle,
	}
	if err := s.MapGraph(g, mapping, impls, opt.Budget); err != nil {
		return nil, err
	}
	if opt.Probes {
		if err := s.ProbeSpace(name+"/fdct.in", p("fdct"), 0); err != nil {
			return nil, err
		}
		if err := s.ProbeSpace(name+"/q.in", p("q"), 0); err != nil {
			return nil, err
		}
		if err := s.ProbeSpace(name+"/mcr.in", p("mcr"), 1); err != nil {
			return nil, err
		}
	}
	return &EncodeApp{Name: name, Seq: seq, Graph: g, VLE: vle}, nil
}
