package eclipse

import (
	"eclipse/internal/copro"
	"eclipse/internal/kpn"
	"eclipse/internal/media"
)

// Re-exports of the codec substrate so applications built on this module
// (examples, tools) program against the single public package.

// Frame is a single-component picture (alias of the internal codec type).
type Frame = media.Frame

// SeqHeader carries sequence-level codec parameters.
type SeqHeader = media.SeqHeader

// CodecConfig parameterizes the encoder.
type CodecConfig = media.CodecConfig

// SourceConfig parameterizes the synthetic video generator.
type SourceConfig = media.SourceConfig

// EncodeStats summarizes an encode run.
type EncodeStats = media.EncodeStats

// NewFrame allocates a zeroed frame (dimensions in pixels, multiples of 16).
func NewFrame(w, h int) *Frame { return media.NewFrame(w, h) }

// DefaultCodec returns MPEG-like encoder settings (GOP IBBPBBP..., N=12,
// M=3) for the given frame size.
func DefaultCodec(w, h int) CodecConfig { return media.DefaultCodec(w, h) }

// DefaultSource returns a synthetic video source configuration with
// trackable motion and natural-like texture.
func DefaultSource(w, h int) SourceConfig { return media.DefaultSource(w, h) }

// GenerateVideo produces n frames of deterministic synthetic video.
func GenerateVideo(cfg SourceConfig, n int) []*Frame {
	return media.NewSource(cfg).Frames(n)
}

// Encode compresses frames (display order) with the reference encoder and
// returns the bitstream, the decoder-exact reconstructions, and stats.
func Encode(cfg CodecConfig, frames []*Frame) ([]byte, []*Frame, *EncodeStats, error) {
	return media.Encode(cfg, frames)
}

// DecodeReference runs the monolithic reference decoder and returns the
// frames in display order.
func DecodeReference(stream []byte) ([]*Frame, error) {
	res, err := media.Decode(stream)
	if err != nil {
		return nil, err
	}
	return res.DisplayFrames(), nil
}

// ParseSeq reads the sequence header of a bitstream.
func ParseSeq(stream []byte) (SeqHeader, error) {
	return media.ParseSeqHeader(media.NewBitReader(stream))
}

// RunFunctionalDecode executes the decode process network untimed, with
// every task as a software goroutine and streams as bounded channels —
// the Kahn reference semantics against which the Eclipse mapping is
// verified. It returns the decoded frames in display order.
func RunFunctionalDecode(stream []byte, bufs DecodeBuffers) ([]*Frame, error) {
	seq, err := ParseSeq(stream)
	if err != nil {
		return nil, err
	}
	g := DecodeGraph("fdec", bufs)
	var out copro.FunctionalSink
	funcs := copro.FunctionalDecodeFuncs(stream, seq, &out)
	if err := kpn.Run(g, funcs); err != nil {
		return nil, err
	}
	return out.Frames, nil
}
