package copro

import (
	"errors"
	"fmt"
	"io"

	"eclipse/internal/kpn"
	"eclipse/internal/media"
)

// Functional (untimed) software implementations of the decode-pipeline
// Kahn functions, for the kpn executor. These are the "software tasks on
// the media processor" variant of the same functions the coprocessors
// implement: different control structure (blocking Kahn reads instead of
// processing steps with GetSpace/PutSpace), same stream contents — which
// is exactly what Kahn determinism promises and what the equivalence
// tests verify.

// FunctionalSink collects the decoded frames of a functional run.
type FunctionalSink struct {
	Seq    media.SeqHeader
	Frames []*media.Frame
}

// FunctionalDecodeFuncs returns the task functions for a decode graph
// built by eclipse.DecodeGraph, keyed by Kahn function name.
func FunctionalDecodeFuncs(stream []byte, seq media.SeqHeader, out *FunctionalSink) map[string]kpn.TaskFunc {
	return FunctionalDecodeFuncsPooled(stream, seq, out, nil)
}

// FunctionalDecodeFuncsPooled is FunctionalDecodeFuncs drawing every
// frame (the MC's per-GOP temporaries and the sink's output frames) from
// a shared concurrency-safe pool, so a server running many decode jobs
// reuses pixel storage across requests instead of allocating per job.
// The caller owns out.Frames afterwards and is responsible for returning
// them to the pool once consumed. A nil pool falls back to per-run
// allocation.
func FunctionalDecodeFuncsPooled(stream []byte, seq media.SeqHeader, out *FunctionalSink, pool *media.SyncFramePool) map[string]kpn.TaskFunc {
	out.Seq = seq
	out.Frames = make([]*media.Frame, seq.Frames)
	return map[string]kpn.TaskFunc{
		"bitsrc": func(c *kpn.TaskCtx) error {
			const chunk = 64
			for off := 0; off < len(stream); off += chunk {
				end := off + chunk
				if end > len(stream) {
					end = len(stream)
				}
				if err := c.Write("bits", stream[off:end]); err != nil {
					return err
				}
			}
			return nil
		},
		"vld":  functionalVLD,
		"rlsq": functionalRLSQ(seq),
		"idct": functionalIDCT,
		"mc":   functionalMC(seq, pool),
		"sink": functionalSink(seq, out, pool),
	}
}

// framePool abstracts media.FramePool (single-goroutine) and
// media.SyncFramePool (shared across requests) behind the two calls the
// functional tasks need.
type framePool interface {
	Get(w, h int) *media.Frame
	Put(f *media.Frame)
}

func functionalVLD(c *kpn.TaskCtx) error {
	parser := media.NewStreamVLD()
	buf := make([]byte, 64)
	var tokBuf, hdrBuf []byte // reused record staging (the FIFO copies)
	for {
		ev, err := parser.Next()
		if errors.Is(err, media.ErrNeedData) {
			n, rerr := c.ReadSome("bits", buf)
			if rerr == io.EOF {
				return fmt.Errorf("vld: bitstream ended at %s", parser.Progress())
			}
			if rerr != nil {
				return rerr
			}
			parser.Extend(buf[:n])
			parser.Compact()
			continue
		}
		if err != nil {
			return err
		}
		switch ev.Kind {
		case media.EventSeq:
			// configuration only
		case media.EventFrame:
			tokBuf = media.AppendFrameRec(tokBuf[:0], media.FrameRecTok, ev.Frame)
			hdrBuf = media.AppendFrameRec(hdrBuf[:0], media.FrameRecHdr, ev.Frame)
			if err := c.Write("tok", tokBuf); err != nil {
				return err
			}
			if err := c.Write("hdr", hdrBuf); err != nil {
				return err
			}
		case media.EventMB:
			tokBuf = media.AppendTokenMB(tokBuf[:0], &ev.Tok)
			hdrBuf = media.AppendMBHeader(hdrBuf[:0], ev.MB)
			if err := c.Write("tok", tokBuf); err != nil {
				return err
			}
			if err := c.Write("hdr", hdrBuf); err != nil {
				return err
			}
		case media.EventEnd:
			return nil
		}
	}
}

func functionalRLSQ(seq media.SeqHeader) kpn.TaskFunc {
	return func(c *kpn.TaskCtx) error {
		var (
			frameB [media.FrameRecSize]byte
			rec    []byte
			tok    media.TokenMB // reused (event arena)
			outBuf []byte
			coef   [media.BlocksPerMB]media.Block
		)
		for f := 0; f < seq.Frames; f++ {
			if err := c.Read("tok", frameB[:]); err != nil {
				return err
			}
			if _, err := media.ParseFrameRec(frameB[:], media.FrameRecTok); err != nil {
				return err
			}
			for mb := 0; mb < seq.MBCount(); mb++ {
				var lenBuf [media.TokenLenSize]byte
				if err := c.Read("tok", lenBuf[:]); err != nil {
					return err
				}
				body := int(lenBuf[0]) | int(lenBuf[1])<<8
				rec = growBytes(rec, media.TokenLenSize+body)
				copy(rec, lenBuf[:])
				if err := c.Read("tok", rec[media.TokenLenSize:]); err != nil {
					return err
				}
				if _, err := media.ParseTokenMBInto(rec, &tok); err != nil {
					return err
				}
				if err := media.RLSQDecodeMB(&tok, seq.Q, &coef); err != nil {
					return err
				}
				outBuf = media.AppendMBBlocks(outBuf[:0], &coef)
				if err := c.Write("coef", outBuf); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func functionalIDCT(c *kpn.TaskCtx) error {
	buf := make([]byte, media.BlockBytes)
	var outBuf []byte
	for {
		err := c.Read("coef", buf)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		var in, out media.Block
		if err := media.ParseBlock(buf, &in); err != nil {
			return err
		}
		media.IDCT(&in, &out)
		outBuf = media.AppendBlock(outBuf[:0], &out)
		if err := c.Write("resid", outBuf); err != nil {
			return err
		}
	}
}

func functionalMC(seq media.SeqHeader, shared *media.SyncFramePool) kpn.TaskFunc {
	return func(c *kpn.TaskCtx) error {
		var refs media.RefChain
		var (
			frameB [media.FrameRecSize]byte
			hbuf   [media.MBHeaderSize]byte
			rbuf   [media.MBCoefBytes]byte
		)
		var pool framePool = media.NewFramePool()
		if shared != nil {
			pool = shared
		}
		// The MC's frames are internal temporaries; on exit the reference
		// chain still holds the last two, so hand them back to the pool.
		defer func() {
			pool.Put(refs.A)
			pool.Put(refs.B)
		}()
		for f := 0; f < seq.Frames; f++ {
			if err := c.Read("hdr", frameB[:]); err != nil {
				return err
			}
			hdr, err := media.ParseFrameRec(frameB[:], media.FrameRecHdr)
			if err != nil {
				return err
			}
			// Frames cycle through a free list: the MC only ever needs the
			// current frame plus the two references, so older frames are
			// recycled instead of garbage-collected (per-GOP temporaries).
			frame := pool.Get(seq.W(), seq.H())
			fwd, bwd := refs.Refs(hdr.Type)
			for mb := 0; mb < seq.MBCount(); mb++ {
				if err := c.Read("hdr", hbuf[:]); err != nil {
					return err
				}
				dec, err := media.ParseMBHeader(hbuf[:])
				if err != nil {
					return err
				}
				if err := c.Read("resid", rbuf[:]); err != nil {
					return err
				}
				var resid [media.BlocksPerMB]media.Block
				if err := media.ParseMBBlocks(rbuf[:], &resid); err != nil {
					return err
				}
				mbx, mby := mb%seq.MBCols, mb/seq.MBCols
				x, y := mbx*media.MBSize, mby*media.MBSize
				var pred, pix media.MBPixels
				media.PredictHP(&pred, dec.Mode, fwd, bwd, x, y, dec.FMV, dec.BMV, seq.HalfPel)
				media.Reconstruct(&pix, &pred, &resid)
				frame.SetMB(mbx, mby, &pix)
				if err := c.Write("pix", pix[:]); err != nil {
					return err
				}
			}
			if hdr.Type == media.FrameB {
				pool.Put(frame) // B frames never become references
			} else {
				dropped := refs.A // evicted by Advance below
				refs.Advance(frame, hdr.Type)
				pool.Put(dropped)
			}
		}
		return nil
	}
}

func functionalSink(seq media.SeqHeader, out *FunctionalSink, shared *media.SyncFramePool) kpn.TaskFunc {
	return func(c *kpn.TaskCtx) error {
		newFrame := media.NewFrame
		if shared != nil {
			newFrame = func(w, h int) *media.Frame { return shared.Get(w, h) }
		}
		for f := 0; f < seq.Frames; f++ {
			rec := make([]byte, media.FrameRecSize)
			if err := c.Read("hdr", rec); err != nil {
				return err
			}
			hdr, err := media.ParseFrameRec(rec, media.FrameRecHdr)
			if err != nil {
				return err
			}
			frame := newFrame(seq.W(), seq.H())
			for mb := 0; mb < seq.MBCount(); mb++ {
				var hbuf [media.MBHeaderSize]byte
				if err := c.Read("hdr", hbuf[:]); err != nil {
					return err
				}
				var pix media.MBPixels
				if err := c.Read("pix", pix[:]); err != nil {
					return err
				}
				frame.SetMB(mb%seq.MBCols, mb/seq.MBCols, &pix)
			}
			if int(hdr.TRef) < len(out.Frames) && out.Frames[hdr.TRef] == nil {
				out.Frames[hdr.TRef] = frame
			} else if shared != nil {
				shared.Put(frame) // malformed tref: recycle instead of leaking
			}
		}
		return nil
	}
}
