package copro

import (
	"fmt"

	"eclipse/internal/media"
	"eclipse/internal/mem"
	"eclipse/internal/sim"
)

// Framestore models the off-chip reference-frame storage behind the MC/ME
// coprocessor's dedicated system-bus connection (Figure 8). Pixel values
// are mirrored in media.Frame structures for exact computation, while
// every access is charged against the off-chip memory model, so timing
// reflects DRAM latency and bus contention.
type Framestore struct {
	dram *mem.Memory
	w, h int
	base uint32 // first byte of the frame slots in off-chip memory
	// Three rotating slots: older reference, newer reference, current.
	slots  [3]*media.Frame
	slotOf map[*media.Frame]int
	refs   media.RefChain
	pool   *media.FramePool // recycles frames evicted from the slots

	// fetchFree recycles prediction-fetch contexts (signal + completion
	// closure + row buffer). FetchRegion blocks until its fetch
	// completes, so a context is back on the free list before the same
	// task can fetch again; the list only grows past one entry if
	// several tasks share a framestore and overlap fetches.
	fetchFree []*fetchCtx
}

// fetchCtx is the per-FetchRegion completion state, pooled so the
// steady-state prediction path does not allocate a signal and sixteen
// callback closures per macroblock.
type fetchCtx struct {
	sig  *sim.Signal
	done int
	cb   func()
	row  [media.MBSize]byte
}

// NewFramestore reserves three frame slots in off-chip memory starting at
// base.
func NewFramestore(dram *mem.Memory, w, h int, base uint32) (*Framestore, error) {
	need := int(base) + 3*w*h
	if need > dram.Size() {
		return nil, fmt.Errorf("copro: framestore needs %d bytes, off-chip memory has %d", need, dram.Size())
	}
	return &Framestore{dram: dram, w: w, h: h, base: base, slotOf: map[*media.Frame]int{}}, nil
}

// slotAddr returns the off-chip address of pixel (x, y) in a slot.
func (fs *Framestore) slotAddr(slot, x, y int) uint32 {
	return fs.base + uint32(slot*fs.w*fs.h+y*fs.w+x)
}

// BeginFrame allocates the slot for a new frame being reconstructed,
// reusing the slot of the frame that just fell out of the reference
// chain.
func (fs *Framestore) BeginFrame() *media.Frame {
	if fs.pool == nil {
		fs.pool = media.NewFramePool()
	}
	var used [3]bool
	if fs.refs.A != nil {
		used[fs.slotOf[fs.refs.A]] = true
	}
	if fs.refs.B != nil {
		used[fs.slotOf[fs.refs.B]] = true
	}
	for s := 0; s < 3; s++ {
		if !used[s] {
			// Reclaim the slot from whichever old frame held it; the
			// evicted frame's pixel storage is recycled through the pool.
			for old, os := range fs.slotOf {
				if os == s {
					delete(fs.slotOf, old)
					fs.pool.Put(old)
				}
			}
			f := fs.pool.Get(fs.w, fs.h)
			fs.slotOf[f] = s
			return f
		}
	}
	panic("copro: no free frame slot")
}

// EndFrame records a completed frame in the reference chain.
func (fs *Framestore) EndFrame(f *media.Frame, ftype media.FrameType) {
	fs.refs.Advance(f, ftype)
}

// Refs returns the prediction references for a frame type.
func (fs *Framestore) Refs(ftype media.FrameType) (fwd, bwd *media.Frame) {
	return fs.refs.Refs(ftype)
}

// StoreMB writes a reconstructed macroblock into both the mirror frame
// and the off-chip model (asynchronously — the coprocessor does not wait
// for the writeback, but the bus occupancy is real).
func (fs *Framestore) StoreMB(f *media.Frame, mbx, mby int, pix *media.MBPixels) {
	f.SetMB(mbx, mby, pix)
	slot := fs.slotOf[f]
	x, y := mbx*media.MBSize, mby*media.MBSize
	for row := 0; row < media.MBSize; row++ {
		fs.dram.WriteAsync(fs.slotAddr(slot, x, y+row), pix[row*media.MBSize:(row+1)*media.MBSize], nil)
	}
}

// FetchRegion charges the off-chip reads for a 16×16 prediction fetch at
// (x, y) (clamped to the frame), blocking the coprocessor until the last
// row arrives; the row reads are issued together so their latencies
// overlap, as a burst-capable system-bus port would.
func (fs *Framestore) FetchRegion(p *sim.Proc, f *media.Frame, x, y int) {
	slot, ok := fs.slotOf[f]
	if !ok {
		panic("copro: prediction fetch from an unstored frame")
	}
	cx, cy := clampRegion(x, fs.w), clampRegion(y, fs.h)
	fc := popFetchCtx(&fs.fetchFree, p, "mcfetch")
	for r := 0; r < media.MBSize; r++ {
		fs.dram.ReadAsync(fs.slotAddr(slot, cx, cy+rowClamp(r, cy, fs.h)), fc.row[:], fc.cb)
	}
	p.Wait(fc.sig)
	fs.fetchFree = append(fs.fetchFree, fc)
}

// popFetchCtx pops (or creates) a pooled fetch context with its signal
// and completion closure pre-bound, and arms it for one 16-row fetch.
// The free list is caller-owned so the framestore (prediction fetches)
// and the raw store (ME input fetches) each keep their own pool.
func popFetchCtx(free *[]*fetchCtx, p *sim.Proc, name string) *fetchCtx {
	var fc *fetchCtx
	if n := len(*free); n > 0 {
		fc = (*free)[n-1]
		(*free)[n-1] = nil
		*free = (*free)[:n-1]
	} else {
		fc = &fetchCtx{sig: p.Kernel().NewSignal(name)}
		fc.cb = func() {
			fc.done++
			if fc.done == media.MBSize {
				fc.sig.Fire()
			}
		}
	}
	fc.done = 0
	return fc
}

// clampRegion clamps a region origin so a 16-pixel span stays in frame.
func clampRegion(v, limit int) int {
	if v < 0 {
		return 0
	}
	if v > limit-media.MBSize {
		return limit - media.MBSize
	}
	return v
}

// rowClamp keeps row offsets inside the frame for clamped fetches.
func rowClamp(row, cy, h int) int {
	if cy+row >= h {
		return h - 1 - cy
	}
	return row
}
