package copro

import (
	"fmt"

	"eclipse/internal/coproc"
	"eclipse/internal/media"
	"eclipse/internal/mem"
	"eclipse/internal/sim"
)

// Encode-direction task models. The encode application reuses the same
// coprocessors as decoding (Section 2.1's reuse argument): the DCT
// coprocessor time-shares forward and inverse transforms, the RLSQ
// quantization and dequantization, and the MC/ME coprocessor motion
// estimation and reference reconstruction. Canonical port orders:
//
//	me:   0 out resid | 1 out info | 2 in fb
//	fdct: 0 in resid  | 1 out coef          (same model as idct)
//	q:    0 in coef   | 1 in info | 2 out tok | 3 out rq | 4 out qz
//	iq:   0 in qz     | 1 out icoef
//	mcr:  0 in rq     | 1 in resid | 2 out fb
//	vle:  0 in info   | 1 in tok
//
// The mcr→me feedback stream closes the reconstruction loop: the ME
// starts a frame only after the previous coded frame is fully
// reconstructed, so its reference frames are bit-exact with a decoder's.

// RecInfoSize is the byte size of the Q→MCR reconstruction record:
// final mode (after the skip rule), motion vectors, and cbp.
const RecInfoSize = media.MBHeaderSize + 1

// appendRecInfo serializes a reconstruction record.
func appendRecInfo(dst []byte, dec media.MBDecision, cbp byte) []byte {
	dst = media.AppendMBHeader(dst, dec)
	return append(dst, cbp)
}

// parseRecInfo decodes a reconstruction record.
func parseRecInfo(src []byte) (media.MBDecision, byte, error) {
	dec, err := media.ParseMBHeader(src)
	if err != nil {
		return dec, 0, err
	}
	return dec, src[media.MBHeaderSize] & 0x0F, nil
}

// FrameDoneSize is the byte size of the mcr→me feedback token.
const FrameDoneSize = 4

// RawStore holds the uncompressed input video in off-chip memory: pixel
// values mirrored in frames, access timing charged against the memory
// model (the camera/capture buffer the ME reads over the system bus).
type RawStore struct {
	dram   *mem.Memory
	base   uint32
	frames []*media.Frame

	fetchFree []*fetchCtx // recycled FetchMB completion contexts
}

// NewRawStore registers raw frames at the given off-chip base address.
func NewRawStore(dram *mem.Memory, base uint32, frames []*media.Frame) (*RawStore, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("copro: raw store with no frames")
	}
	need := int(base) + len(frames)*frames[0].W*frames[0].H
	if need > dram.Size() {
		return nil, fmt.Errorf("copro: raw store needs %d bytes, off-chip memory has %d", need, dram.Size())
	}
	return &RawStore{dram: dram, base: base, frames: frames}, nil
}

// FetchMB charges the off-chip reads for loading one raw macroblock and
// returns its pixels.
func (rs *RawStore) FetchMB(p *sim.Proc, frame, mbx, mby int, dst *media.MBPixels) {
	f := rs.frames[frame]
	f.GetMB(mbx, mby, dst)
	addr := rs.base + uint32(frame*f.W*f.H+(mby*media.MBSize)*f.W+mbx*media.MBSize)
	fc := popFetchCtx(&rs.fetchFree, p, "mefetch")
	for r := 0; r < media.MBSize; r++ {
		rs.dram.ReadAsync(addr+uint32(r*f.W), fc.row[:], fc.cb)
	}
	p.Wait(fc.sig)
	rs.fetchFree = append(rs.fetchFree, fc)
}

// ME is the motion-estimation task on the MC/ME coprocessor: it walks the
// input video in coded order, decides each macroblock's prediction mode
// against the shared framestore references, and emits the residual and
// decision streams. It waits on the feedback stream before starting each
// new frame so the reconstruction loop stays closed.
type ME struct {
	Costs *Costs
	Cfg   media.CodecConfig
	Raw   *RawStore
	FS    *Framestore // shared with the MCR task on the same coprocessor

	types   []media.FrameType
	order   []int
	frame   int // index into order (coded position)
	mbIdx   int
	inFrame bool
	fbWait  int // feedback tokens still outstanding before the next frame

	recBuf, hdrBuf []byte // reused record staging (the shell cache copies)
}

const (
	mePortResid = 0
	mePortInfo  = 1
	mePortFb    = 2
)

// Step emits one frame record or one macroblock's residual and decision.
func (m *ME) Step(c *coproc.Ctx) bool {
	if m.types == nil {
		n := len(m.Raw.frames)
		m.types = media.GOPTypes(n, m.Cfg.GOPN, m.Cfg.GOPM)
		m.order = media.CodedOrder(m.types)
	}
	if !m.inFrame {
		// Close the reconstruction loop: consume one feedback token per
		// previously issued frame.
		if m.fbWait > 0 {
			if !c.GetSpace(mePortFb, FrameDoneSize) {
				return false
			}
			var tok [FrameDoneSize]byte
			c.Read(mePortFb, 0, tok[:])
			c.PutSpace(mePortFb, FrameDoneSize)
			m.fbWait--
			return false
		}
		if m.frame == len(m.order) {
			return true
		}
		di := m.order[m.frame]
		m.recBuf = media.AppendFrameRec(m.recBuf[:0], 0xFC, media.FrameHdr{Type: m.types[di], TRef: uint16(di)})
		rec := m.recBuf
		if !c.GetSpace(mePortInfo, uint32(len(rec))) {
			return false
		}
		c.Write(mePortInfo, 0, rec)
		c.PutSpace(mePortInfo, uint32(len(rec)))
		c.Compute(4)
		m.inFrame = true
		m.mbIdx = 0
		return false
	}

	// One macroblock: decide, predict, emit residual + decision.
	di := m.order[m.frame]
	ftype := m.types[di]
	cols := m.Raw.frames[di].MBCols()
	mbx, mby := m.mbIdx%cols, m.mbIdx/cols
	x, y := mbx*media.MBSize, mby*media.MBSize

	if !c.GetSpace(mePortResid, media.MBCoefBytes) {
		return false
	}
	if !c.GetSpace(mePortInfo, media.MBHeaderSize) {
		return false
	}

	var mb media.MBPixels
	m.Raw.FetchMB(c.Proc(), di, mbx, mby, &mb)
	fwd, bwd := m.FS.Refs(ftype)
	dec, ops := media.DecideMB(&mb, ftype, x, y, fwd, bwd, m.Cfg.SearchRange, m.Cfg.HalfPel)
	c.Compute(uint64(ops) * m.Costs.MEPerCandidate)

	var pred media.MBPixels
	media.PredictHP(&pred, dec.Mode, fwd, bwd, x, y, dec.FMV, dec.BMV, m.Cfg.HalfPel)
	var resid [media.BlocksPerMB]media.Block
	media.Residual(&mb, &pred, &resid)
	c.Compute(m.Costs.MCRecon) // residual datapath

	m.recBuf = media.AppendMBBlocks(m.recBuf[:0], &resid)
	c.Write(mePortResid, 0, m.recBuf)
	c.PutSpace(mePortResid, media.MBCoefBytes)
	m.hdrBuf = media.AppendMBHeader(m.hdrBuf[:0], dec)
	c.Write(mePortInfo, 0, m.hdrBuf)
	c.PutSpace(mePortInfo, media.MBHeaderSize)

	m.mbIdx++
	if m.mbIdx == m.Raw.frames[di].MBCount() {
		m.inFrame = false
		m.frame++
		m.fbWait++
	}
	return false
}

// FDCT is the DCT coprocessor task in the encode direction (forward
// transform, one block per processing step).
type FDCT struct {
	Costs  *Costs
	Blocks int
	done   int

	inBuf  [media.BlockBytes]byte
	outBuf []byte
}

// Step transforms one block.
func (d *FDCT) Step(c *coproc.Ctx) bool {
	if !c.GetSpace(dctPortIn, media.BlockBytes) {
		return false
	}
	if !c.GetSpace(dctPortOut, media.BlockBytes) {
		return false
	}
	c.Read(dctPortIn, 0, d.inBuf[:])
	var in, out media.Block
	if err := media.ParseBlock(d.inBuf[:], &in); err != nil {
		panic("fdct: " + err.Error())
	}
	media.FDCT(&in, &out)
	c.Compute(d.Costs.DCTCost())
	d.outBuf = media.AppendBlock(d.outBuf[:0], &out)
	c.Write(dctPortOut, 0, d.outBuf)
	c.PutSpace(dctPortOut, media.BlockBytes)
	c.PutSpace(dctPortIn, media.BlockBytes)
	d.done++
	return d.done == d.Blocks
}

// Q is the RLSQ coprocessor task in the encode direction: zigzag scan,
// quantization, run-length coding, the skip-macroblock rule, and fan-out
// to the VLE (tokens), the reconstruction path (quantized blocks), and
// the MCR (final decisions).
type Q struct {
	Costs *Costs
	Seq   media.SeqHeader

	inFrame bool
	ftype   media.FrameType
	mbIdx   int
	frames  int

	// Reused per-step staging (the shell cache copies on Write, and
	// mid-step GetSpace retries re-read and recompute deterministically).
	frameB               [media.FrameRecSize]byte
	hdrB                 [media.MBHeaderSize]byte
	coefB                [media.MBCoefBytes]byte
	tok                  media.TokenMB // event arena, reused across macroblocks
	qz                   [media.BlocksPerMB]media.Block
	tokRec, rqRec, qzRec []byte
}

const (
	qPortCoef = 0
	qPortInfo = 1
	qPortTok  = 2
	qPortRq   = 3
	qPortQz   = 4
)

// Step processes one frame record or one macroblock.
func (q *Q) Step(c *coproc.Ctx) bool {
	if !q.inFrame {
		if !c.GetSpace(qPortInfo, media.FrameRecSize) {
			return false
		}
		c.Read(qPortInfo, 0, q.frameB[:])
		hdr, err := media.ParseFrameRec(q.frameB[:], 0xFC)
		if err != nil {
			panic("q: " + err.Error())
		}
		// Forward the frame boundary to the token and recon streams.
		q.tokRec = media.AppendFrameRec(q.tokRec[:0], media.FrameRecTok, hdr)
		q.rqRec = media.AppendFrameRec(q.rqRec[:0], media.FrameRecHdr, hdr)
		tokRec, rqRec := q.tokRec, q.rqRec
		if !c.GetSpace(qPortTok, uint32(len(tokRec))) {
			return false
		}
		if !c.GetSpace(qPortRq, uint32(len(rqRec))) {
			return false
		}
		c.PutSpace(qPortInfo, media.FrameRecSize)
		c.Write(qPortTok, 0, tokRec)
		c.PutSpace(qPortTok, uint32(len(tokRec)))
		c.Write(qPortRq, 0, rqRec)
		c.PutSpace(qPortRq, uint32(len(rqRec)))
		c.Compute(2)
		q.ftype = hdr.Type
		q.inFrame = true
		q.mbIdx = 0
		return false
	}

	if !c.GetSpace(qPortInfo, media.MBHeaderSize) {
		return false
	}
	if !c.GetSpace(qPortCoef, media.MBCoefBytes) {
		return false
	}
	c.Read(qPortInfo, 0, q.hdrB[:])
	dec, err := media.ParseMBHeader(q.hdrB[:])
	if err != nil {
		panic("q: " + err.Error())
	}
	c.Read(qPortCoef, 0, q.coefB[:])
	var coef [media.BlocksPerMB]media.Block
	if err := media.ParseMBBlocks(q.coefB[:], &coef); err != nil {
		panic("q: " + err.Error())
	}

	tok := &q.tok
	tok.Reset()
	intra := dec.Mode == media.PredIntra
	tokens := 0
	for b := 0; b < media.BlocksPerMB; b++ {
		q.qz[b] = media.RLSQEncodeBlockInto(&coef[b], intra, q.Seq.Q, tok, b)
		if n := len(tok.Events[b]); n > 0 {
			tok.CBP |= 1 << b
			tokens += n
		}
	}
	final := dec
	if media.IsSkipMB(q.ftype, dec, tok.CBP) {
		final = media.MBDecision{Mode: media.PredSkip}
		tok.Reset()
		q.qz = [media.BlocksPerMB]media.Block{}
	}

	q.tokRec = media.AppendTokenMB(q.tokRec[:0], tok)
	if !c.GetSpace(qPortTok, uint32(len(q.tokRec))) {
		return false
	}
	if !c.GetSpace(qPortRq, RecInfoSize) {
		return false
	}
	if !c.GetSpace(qPortQz, media.MBCoefBytes) {
		return false
	}
	c.Compute(q.Costs.RLSQCost(tokens, media.BlocksPerMB))
	c.Write(qPortTok, 0, q.tokRec)
	c.PutSpace(qPortTok, uint32(len(q.tokRec)))
	q.rqRec = appendRecInfo(q.rqRec[:0], final, tok.CBP)
	c.Write(qPortRq, 0, q.rqRec)
	c.PutSpace(qPortRq, RecInfoSize)
	q.qzRec = media.AppendMBBlocks(q.qzRec[:0], &q.qz)
	c.Write(qPortQz, 0, q.qzRec)
	c.PutSpace(qPortQz, media.MBCoefBytes)
	c.PutSpace(qPortInfo, media.MBHeaderSize)
	c.PutSpace(qPortCoef, media.MBCoefBytes)

	q.mbIdx++
	if q.mbIdx == q.Seq.MBCount() {
		q.inFrame = false
		q.frames++
	}
	return q.frames == q.Seq.Frames
}

// IQ is the RLSQ coprocessor task performing inverse quantization and
// inverse zigzag scan in the encoder's reconstruction path, one block per
// processing step.
type IQ struct {
	Costs  *Costs
	QParam int
	Blocks int
	done   int

	inBuf  [media.BlockBytes]byte
	outBuf []byte
}

const (
	iqPortIn  = 0
	iqPortOut = 1
)

// Step dequantizes one block.
func (d *IQ) Step(c *coproc.Ctx) bool {
	if !c.GetSpace(iqPortIn, media.BlockBytes) {
		return false
	}
	if !c.GetSpace(iqPortOut, media.BlockBytes) {
		return false
	}
	c.Read(iqPortIn, 0, d.inBuf[:])
	var zz, dzz, out media.Block
	if err := media.ParseBlock(d.inBuf[:], &zz); err != nil {
		panic("iq: " + err.Error())
	}
	media.Dequantize(&zz, &dzz, d.QParam)
	media.InverseZigzag(&dzz, &out)
	c.Compute(d.Costs.RLSQPerBlock * 2)
	d.outBuf = media.AppendBlock(d.outBuf[:0], &out)
	c.Write(iqPortOut, 0, d.outBuf)
	c.PutSpace(iqPortOut, media.BlockBytes)
	c.PutSpace(iqPortIn, media.BlockBytes)
	d.done++
	return d.done == d.Blocks
}

// MCR is the MC/ME coprocessor task reconstructing reference frames in
// the encoder (prediction + residual, framestore writeback) and emitting
// the frame-done feedback tokens that pace the ME.
type MCR struct {
	Costs *Costs
	Seq   media.SeqHeader
	FS    *Framestore

	inFrame bool
	hdr     media.FrameHdr
	cur     *media.Frame
	mbIdx   int
	frames  int

	frameB [media.FrameRecSize]byte
	rqB    [RecInfoSize]byte
	residB [media.MBCoefBytes]byte
}

const (
	mcrPortRq    = 0
	mcrPortResid = 1
	mcrPortFb    = 2
)

// Step processes one frame record or one macroblock.
func (m *MCR) Step(c *coproc.Ctx) bool {
	if !m.inFrame {
		if !c.GetSpace(mcrPortRq, media.FrameRecSize) {
			return false
		}
		c.Read(mcrPortRq, 0, m.frameB[:])
		hdr, err := media.ParseFrameRec(m.frameB[:], media.FrameRecHdr)
		if err != nil {
			panic("mcr: " + err.Error())
		}
		c.PutSpace(mcrPortRq, media.FrameRecSize)
		c.Compute(2)
		m.hdr = hdr
		m.cur = m.FS.BeginFrame()
		m.inFrame = true
		m.mbIdx = 0
		return false
	}

	if !c.GetSpace(mcrPortRq, RecInfoSize) {
		return false
	}
	if !c.GetSpace(mcrPortResid, media.MBCoefBytes) {
		return false
	}
	c.Read(mcrPortRq, 0, m.rqB[:])
	dec, _, err := parseRecInfo(m.rqB[:])
	if err != nil {
		panic("mcr: " + err.Error())
	}
	c.Read(mcrPortResid, 0, m.residB[:])
	var resid [media.BlocksPerMB]media.Block
	if err := media.ParseMBBlocks(m.residB[:], &resid); err != nil {
		panic("mcr: " + err.Error())
	}

	mbx, mby := m.mbIdx%m.Seq.MBCols, m.mbIdx/m.Seq.MBCols
	x, y := mbx*media.MBSize, mby*media.MBSize
	fwd, bwd := m.FS.Refs(m.hdr.Type)
	switch dec.Mode {
	case media.PredFwd:
		m.FS.FetchRegion(c.Proc(), fwd, x+int(dec.FMV.X), y+int(dec.FMV.Y))
	case media.PredSkip:
		m.FS.FetchRegion(c.Proc(), fwd, x, y)
	case media.PredBwd:
		m.FS.FetchRegion(c.Proc(), bwd, x+int(dec.BMV.X), y+int(dec.BMV.Y))
	case media.PredBi:
		m.FS.FetchRegion(c.Proc(), fwd, x+int(dec.FMV.X), y+int(dec.FMV.Y))
		m.FS.FetchRegion(c.Proc(), bwd, x+int(dec.BMV.X), y+int(dec.BMV.Y))
	}
	var pred, out media.MBPixels
	media.PredictHP(&pred, dec.Mode, fwd, bwd, x, y, dec.FMV, dec.BMV, m.Seq.HalfPel)
	media.Reconstruct(&out, &pred, &resid)
	c.Compute(m.Costs.MCRecon)
	if dec.Mode == media.PredBi {
		c.Compute(m.Costs.MCBiExtra)
	}
	if m.Seq.HalfPel && (dec.FMV.X&1 != 0 || dec.FMV.Y&1 != 0 || dec.BMV.X&1 != 0 || dec.BMV.Y&1 != 0) {
		c.Compute(m.Costs.MCHalfPelExtra)
	}
	m.FS.StoreMB(m.cur, mbx, mby, &out)
	c.PutSpace(mcrPortRq, RecInfoSize)
	c.PutSpace(mcrPortResid, media.MBCoefBytes)

	m.mbIdx++
	if m.mbIdx == m.Seq.MBCount() {
		m.FS.EndFrame(m.cur, m.hdr.Type)
		m.inFrame = false
		m.frames++
		if !c.GetSpace(mcrPortFb, FrameDoneSize) {
			panic("mcr: feedback stream full") // sized for one token per frame in flight
		}
		var tok [FrameDoneSize]byte
		c.Write(mcrPortFb, 0, tok[:])
		c.PutSpace(mcrPortFb, FrameDoneSize)
	}
	return m.frames == m.Seq.Frames
}

// VLE is the software variable-length encoder on the media processor
// (Figure 8 runs variable-length *encoding* in software): it assembles
// the final bitstream from the decision and token streams using the same
// syntax writer as the monolithic encoder, so the output is bit-exact.
type VLE struct {
	Costs *Costs
	Seq   media.SeqHeader

	w       *media.BitWriter
	inFrame bool
	ftype   media.FrameType
	mvp     media.MVPredictor
	mbIdx   int
	frames  int
	out     []byte

	frameB [media.FrameRecSize]byte
	hdrB   [media.MBHeaderSize]byte
	rec    []byte
	tok    media.TokenMB // reused across macroblocks (event arena)
}

const (
	vlePortInfo = 0
	vlePortTok  = 1
)

// Bitstream returns the assembled stream (valid after the run finishes).
func (v *VLE) Bitstream() []byte { return v.out }

// Step consumes one frame record or one macroblock.
func (v *VLE) Step(c *coproc.Ctx) bool {
	if v.w == nil {
		v.w = media.NewBitWriter()
		media.WriteSeqHeader(v.w, &v.Seq)
	}
	if !v.inFrame {
		if !c.GetSpace(vlePortInfo, media.FrameRecSize) {
			return false
		}
		if !c.GetSpace(vlePortTok, media.FrameRecSize) {
			return false
		}
		c.Read(vlePortInfo, 0, v.frameB[:])
		hdr, err := media.ParseFrameRec(v.frameB[:], 0xFC)
		if err != nil {
			panic("vle: " + err.Error())
		}
		// The token stream carries a matching frame boundary record
		// (hdr is already a value copy, so the buffer can be reused).
		c.Read(vlePortTok, 0, v.frameB[:])
		if _, err := media.ParseFrameRec(v.frameB[:], media.FrameRecTok); err != nil {
			panic("vle: " + err.Error())
		}
		c.PutSpace(vlePortInfo, media.FrameRecSize)
		c.PutSpace(vlePortTok, media.FrameRecSize)
		c.Compute(v.Costs.SWChunk)
		media.WriteFrameHdr(v.w, hdr)
		v.ftype = hdr.Type
		v.inFrame = true
		v.mbIdx = 0
		return false
	}

	// One macroblock: original decision + token record, re-applying the
	// skip rule exactly as the Q task did.
	if !c.GetSpace(vlePortInfo, media.MBHeaderSize) {
		return false
	}
	c.Read(vlePortInfo, 0, v.hdrB[:])
	dec, err := media.ParseMBHeader(v.hdrB[:])
	if err != nil {
		panic("vle: " + err.Error())
	}
	if !c.GetSpace(vlePortTok, media.TokenLenSize) {
		return false
	}
	var lenBuf [media.TokenLenSize]byte
	c.Read(vlePortTok, 0, lenBuf[:])
	pos := uint32(media.TokenLenSize) + (uint32(lenBuf[0]) | uint32(lenBuf[1])<<8)
	if !c.GetSpace(vlePortTok, pos) {
		return false // re-execute the step (nothing committed)
	}
	v.rec = growBytes(v.rec, int(pos))
	c.Read(vlePortTok, 0, v.rec)
	if _, err := media.ParseTokenMBInto(v.rec, &v.tok); err != nil {
		panic("vle: " + err.Error())
	}
	tok := &v.tok

	if v.mbIdx%v.Seq.MBCols == 0 {
		v.mvp.RowStart()
	}
	if media.IsSkipMB(v.ftype, dec, tok.CBP) {
		dec = media.MBDecision{Mode: media.PredSkip}
	}
	var qzz [media.BlocksPerMB]media.Block
	for blk := 0; blk < media.BlocksPerMB; blk++ {
		if tok.CBP&(1<<blk) == 0 {
			continue
		}
		if !media.RunLengthExpand(tok.Events[blk], &qzz[blk]) {
			panic("vle: bad token events")
		}
	}
	c.Compute(v.Costs.SWPerMB)
	media.EncodeMBSyntax(v.w, v.ftype, dec, &v.mvp, tok.CBP, &qzz)
	c.PutSpace(vlePortInfo, media.MBHeaderSize)
	c.PutSpace(vlePortTok, pos)

	v.mbIdx++
	if v.mbIdx == v.Seq.MBCount() {
		v.inFrame = false
		v.frames++
		if v.frames == v.Seq.Frames {
			v.out = v.w.Bytes()
			return true
		}
	}
	return false
}
