package copro

// Per-task scratch buffer reuse.
//
// Every coprocessor Step used to allocate its staging buffers fresh
// (record parse buffers, serialized output records) — one or more heap
// allocations per macroblock per stage. Tasks now keep their scratch
// slices across steps and resize with growBytes. This is safe because
// Ctx.Read fills the buffer synchronously and Ctx.Write copies the data
// into the shell cache before returning: a task's scratch is never
// retained by the transport layer, so reusing it on the next step
// cannot alias in-flight data.

// growBytes returns a slice of length n, reusing b's backing array when
// its capacity suffices and allocating a fresh one (with slack) when it
// does not. Contents are unspecified.
func growBytes(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n+n/2)[:n]
	}
	return b[:n]
}
