package copro

import (
	"errors"
	"fmt"

	"eclipse/internal/coproc"
	"eclipse/internal/media"
	"eclipse/internal/mem"
)

// Decode-direction task models. Canonical port orders (the mapping layer
// must connect ports in this order):
//
//	bitsrc: 0 out bits
//	vld:    0 in bits | 1 out tok | 2 out hdr
//	idct:   0 in coef | 1 out resid        (RLSQ decode: 0 in tok | 1 out coef)
//	mc:     0 in hdr  | 1 in resid | 2 out pix
//	sink:   0 in hdr  | 1 in pix

// BitSource streams a compressed bitstream from off-chip memory into the
// VLD's input stream — the DMA-like software task standing in for the
// VLD's dedicated system-bus connection of Figure 8.
type BitSource struct {
	Costs      *Costs
	DRAM       *mem.Memory
	Addr       uint32 // bitstream location in off-chip memory
	Len        int
	Chunk      int // transfer unit in bytes
	sent       int
	StartDelay uint64 // cycles to wait before the first chunk (arrival model)
	started    bool
	scratch    []byte // reused chunk staging buffer
}

// Step transfers one chunk per processing step.
func (b *BitSource) Step(c *coproc.Ctx) bool {
	if !b.started {
		b.started = true
		if b.StartDelay > 0 {
			c.Compute(b.StartDelay)
		}
	}
	if b.Chunk <= 0 {
		b.Chunk = 64
	}
	n := b.Chunk
	if b.sent+n > b.Len {
		n = b.Len - b.sent
	}
	if n == 0 {
		return true
	}
	if !c.GetSpace(0, uint32(n)) {
		return false
	}
	b.scratch = growBytes(b.scratch, n)
	buf := b.scratch[:n]
	b.DRAM.ReadAccess(c.Proc(), b.Addr+uint32(b.sent), buf)
	c.Compute(b.Costs.SWChunk)
	c.Write(0, 0, buf)
	c.PutSpace(0, uint32(n))
	b.sent += n
	return b.sent == b.Len
}

// VLD is the variable-length decoder coprocessor task: it parses the
// bitstream incrementally (data-dependent input) and emits token records
// to the RLSQ and header records to the MC. A processing step handles one
// parser event; output records that do not fit are kept as pending state
// and retried, so a task switch can happen between parse and emit.
type VLD struct {
	Costs *Costs
	Chunk int // input transfer unit

	parser   *media.StreamVLD
	pendTok  []byte
	pendHdr  []byte
	pendCost uint64
	srcDone  bool // the input stream carries exactly the whole sequence

	// Reused backing storage: pendTok/pendHdr are rebuilt into these
	// after every flush, and inBuf stages input transfers (the parser
	// copies extended bytes, so the staging buffer is reusable).
	tokBuf []byte
	hdrBuf []byte
	inBuf  []byte
}

const (
	vldPortIn  = 0
	vldPortTok = 1
	vldPortHdr = 2
)

// Step advances the VLD by one event (or one input transfer, or one
// pending-output flush).
func (v *VLD) Step(c *coproc.Ctx) bool {
	if v.parser == nil {
		v.parser = media.NewStreamVLD()
	}
	if v.Chunk <= 0 {
		v.Chunk = 64
	}
	// Flush pending output first; abort the step if space is denied.
	if v.pendTok != nil || v.pendHdr != nil {
		if !v.flushPending(c) {
			return false
		}
	}
	ev, err := v.parser.Next()
	if errors.Is(err, media.ErrNeedData) {
		return v.fetchInput(c)
	}
	if err != nil {
		panic(fmt.Sprintf("vld: corrupt bitstream at %s: %v", v.parser.Progress(), err))
	}
	switch ev.Kind {
	case media.EventSeq:
		// Sequence parameters are configuration, propagated at setup;
		// nothing flows downstream. Commit the consumed header bytes.
		v.commitInput(c)
		c.Compute(4)
	case media.EventFrame:
		v.tokBuf = media.AppendFrameRec(v.tokBuf[:0], media.FrameRecTok, ev.Frame)
		v.hdrBuf = media.AppendFrameRec(v.hdrBuf[:0], media.FrameRecHdr, ev.Frame)
		v.pendTok, v.pendHdr = v.tokBuf, v.hdrBuf
		v.pendCost = 4
		v.commitInput(c)
		v.flushPending(c)
	case media.EventMB:
		v.tokBuf = media.AppendTokenMB(v.tokBuf[:0], &ev.Tok)
		v.hdrBuf = media.AppendMBHeader(v.hdrBuf[:0], ev.MB)
		v.pendTok, v.pendHdr = v.tokBuf, v.hdrBuf
		v.pendCost = v.Costs.VLDCost(ev.Bits)
		v.commitInput(c)
		v.flushPending(c)
	case media.EventEnd:
		v.commitInput(c)
		return true
	}
	return false
}

// fetchInput pulls more bitstream bytes into the parser; near the stream
// tail (where a full chunk will never arrive) it degrades to single
// bytes — the data-dependent input pattern of Section 4.2.
func (v *VLD) fetchInput(c *coproc.Ctx) bool {
	n := uint32(v.Chunk)
	if !c.GetSpace(vldPortIn, n) {
		n = 1
		if !c.GetSpace(vldPortIn, 1) {
			return false // abort step; scheduler re-dispatches when data arrives
		}
	}
	v.inBuf = growBytes(v.inBuf, int(n))
	buf := v.inBuf
	c.Read(vldPortIn, 0, buf)
	v.parser.Extend(buf)
	c.PutSpace(vldPortIn, n)
	return false
}

// commitInput releases fully consumed input bytes. The parser retains
// unconsumed bytes internally, so the stream buffer space can be released
// as soon as the bytes crossed the interface.
func (v *VLD) commitInput(c *coproc.Ctx) {
	v.parser.Compact()
}

// flushPending tries to emit the pending records; returns false (leaving
// the remainder pending) when output space is denied.
func (v *VLD) flushPending(c *coproc.Ctx) bool {
	if v.pendTok != nil {
		if !c.GetSpace(vldPortTok, uint32(len(v.pendTok))) {
			return false
		}
	}
	if v.pendHdr != nil {
		if !c.GetSpace(vldPortHdr, uint32(len(v.pendHdr))) {
			return false
		}
	}
	if v.pendCost > 0 {
		c.Compute(v.pendCost)
		v.pendCost = 0
	}
	if v.pendTok != nil {
		c.Write(vldPortTok, 0, v.pendTok)
		c.PutSpace(vldPortTok, uint32(len(v.pendTok)))
		v.pendTok = nil
	}
	if v.pendHdr != nil {
		c.Write(vldPortHdr, 0, v.pendHdr)
		c.PutSpace(vldPortHdr, uint32(len(v.pendHdr)))
		v.pendHdr = nil
	}
	return true
}

// RLSQ is the run-length/scan/quantization coprocessor task in the decode
// direction: token records in, dequantized coefficient macroblocks out.
// Its input records are variable length, so it reads the coded-block
// pattern and events through a growing GetSpace window; on any denial it
// aborts and re-executes the whole processing step later (the two-exit
// control structure of Section 4.2 — nothing was committed).
type RLSQ struct {
	Costs *Costs
	Seq   media.SeqHeader

	inFrame bool
	mbIdx   int
	frames  int

	rec    []byte        // reused token-record staging buffer
	tok    media.TokenMB // reused token (event arena)
	outBuf []byte        // reused serialized coefficient record
	frameB [media.FrameRecSize]byte
}

const (
	rlsqPortIn  = 0
	rlsqPortOut = 1
)

// Step processes one frame record or one macroblock.
func (r *RLSQ) Step(c *coproc.Ctx) bool {
	if !r.inFrame {
		if !c.GetSpace(rlsqPortIn, media.FrameRecSize) {
			return false
		}
		buf := r.frameB[:]
		c.Read(rlsqPortIn, 0, buf)
		if _, err := media.ParseFrameRec(buf, media.FrameRecTok); err != nil {
			panic("rlsq: " + err.Error())
		}
		c.PutSpace(rlsqPortIn, media.FrameRecSize)
		c.Compute(2)
		r.inFrame = true
		r.mbIdx = 0
		return false
	}

	// Parse one token record with the two-phase data-dependent input
	// pattern of Section 4.2: acquire the length prefix, then grow the
	// window to the whole record. Nothing is committed until the output
	// is written, so aborting on any denied GetSpace re-executes the
	// step from the start at no cost in correctness.
	if !c.GetSpace(rlsqPortIn, media.TokenLenSize) {
		return false
	}
	var lenBuf [media.TokenLenSize]byte
	c.Read(rlsqPortIn, 0, lenBuf[:])
	body := uint32(lenBuf[0]) | uint32(lenBuf[1])<<8
	total := media.TokenLenSize + body
	if !c.GetSpace(rlsqPortIn, total) {
		return false // re-execute: length will be re-read
	}
	r.rec = growBytes(r.rec, int(total))
	rec := r.rec
	c.Read(rlsqPortIn, 0, rec)
	n, err := media.ParseTokenMBInto(rec, &r.tok)
	if err != nil || uint32(n) != total {
		panic(fmt.Sprintf("rlsq: bad token record: %v", err))
	}
	tok := &r.tok
	pos := total
	tokens := tok.TokenCount()
	codedBlocks := 0
	for blk := 0; blk < media.BlocksPerMB; blk++ {
		if tok.CBP&(1<<blk) != 0 {
			codedBlocks++
		}
	}

	// Output space, then compute and emit.
	if !c.GetSpace(rlsqPortOut, media.MBCoefBytes) {
		return false
	}
	var coef [media.BlocksPerMB]media.Block
	if err := media.RLSQDecodeMB(tok, r.Seq.Q, &coef); err != nil {
		panic("rlsq: " + err.Error())
	}
	c.Compute(r.Costs.RLSQCost(tokens, codedBlocks))
	r.outBuf = media.AppendMBBlocks(r.outBuf[:0], &coef)
	c.Write(rlsqPortOut, 0, r.outBuf)
	c.PutSpace(rlsqPortOut, media.MBCoefBytes)
	c.PutSpace(rlsqPortIn, pos)

	r.mbIdx++
	if r.mbIdx == r.Seq.MBCount() {
		r.inFrame = false
		r.frames++
	}
	return r.frames == r.Seq.Frames
}

// IDCT is the DCT coprocessor task in the decode direction: one 8×8
// block per processing step (the paper's example of a near-stateless
// packet-granularity coprocessor).
type IDCT struct {
	Costs  *Costs
	Blocks int // total blocks to process (frames × MBs × 4)
	done   int

	inBuf  [media.BlockBytes]byte // reused block staging buffers
	outBuf []byte
}

const (
	dctPortIn  = 0
	dctPortOut = 1
)

// Step transforms one block.
func (d *IDCT) Step(c *coproc.Ctx) bool {
	if !c.GetSpace(dctPortIn, media.BlockBytes) {
		return false
	}
	if !c.GetSpace(dctPortOut, media.BlockBytes) {
		return false
	}
	buf := d.inBuf[:]
	c.Read(dctPortIn, 0, buf)
	var in, out media.Block
	if err := media.ParseBlock(buf, &in); err != nil {
		panic("idct: " + err.Error())
	}
	media.IDCT(&in, &out)
	c.Compute(d.Costs.DCTCost())
	d.outBuf = media.AppendBlock(d.outBuf[:0], &out)
	c.Write(dctPortOut, 0, d.outBuf)
	c.PutSpace(dctPortOut, media.BlockBytes)
	c.PutSpace(dctPortIn, media.BlockBytes)
	d.done++
	return d.done == d.Blocks
}

// MC is the motion-compensation coprocessor task in the decode direction:
// header and residual records in, reconstructed pixels out, with
// prediction fetches and reconstruction writebacks against the off-chip
// framestore over its dedicated system-bus connection.
type MC struct {
	Costs *Costs
	Seq   media.SeqHeader
	FS    *Framestore

	inFrame bool
	hdr     media.FrameHdr
	cur     *media.Frame
	mbIdx   int
	frames  int

	hdrB   [media.MBHeaderSize]byte // reused header staging buffer
	residB [media.MBCoefBytes]byte  // reused residual staging buffer
	frameB [media.FrameRecSize]byte
}

const (
	mcPortHdr   = 0
	mcPortResid = 1
	mcPortPix   = 2
)

// Step processes one frame record or one macroblock.
func (m *MC) Step(c *coproc.Ctx) bool {
	if !m.inFrame {
		if !c.GetSpace(mcPortHdr, media.FrameRecSize) {
			return false
		}
		buf := m.frameB[:]
		c.Read(mcPortHdr, 0, buf)
		hdr, err := media.ParseFrameRec(buf, media.FrameRecHdr)
		if err != nil {
			panic("mc: " + err.Error())
		}
		c.PutSpace(mcPortHdr, media.FrameRecSize)
		c.Compute(2)
		m.hdr = hdr
		m.cur = m.FS.BeginFrame()
		m.inFrame = true
		m.mbIdx = 0
		return false
	}

	if !c.GetSpace(mcPortHdr, media.MBHeaderSize) {
		return false
	}
	if !c.GetSpace(mcPortResid, media.MBCoefBytes) {
		return false
	}
	if !c.GetSpace(mcPortPix, media.MBPixBytes) {
		return false
	}
	hbuf := m.hdrB[:]
	c.Read(mcPortHdr, 0, hbuf)
	dec, err := media.ParseMBHeader(hbuf)
	if err != nil {
		panic("mc: " + err.Error())
	}
	rbuf := m.residB[:]
	c.Read(mcPortResid, 0, rbuf)
	var resid [media.BlocksPerMB]media.Block
	if err := media.ParseMBBlocks(rbuf, &resid); err != nil {
		panic("mc: " + err.Error())
	}

	mbx, mby := m.mbIdx%m.Seq.MBCols, m.mbIdx/m.Seq.MBCols
	x, y := mbx*media.MBSize, mby*media.MBSize
	fwd, bwd := m.FS.Refs(m.hdr.Type)

	// Charge the off-chip prediction fetches (one region per used
	// reference — two for bi-directional prediction, the Figure 10 cause
	// of the B-frame MC bottleneck).
	switch dec.Mode {
	case media.PredFwd:
		m.FS.FetchRegion(c.Proc(), fwd, x+int(dec.FMV.X), y+int(dec.FMV.Y))
	case media.PredSkip:
		m.FS.FetchRegion(c.Proc(), fwd, x, y)
	case media.PredBwd:
		m.FS.FetchRegion(c.Proc(), bwd, x+int(dec.BMV.X), y+int(dec.BMV.Y))
	case media.PredBi:
		m.FS.FetchRegion(c.Proc(), fwd, x+int(dec.FMV.X), y+int(dec.FMV.Y))
		m.FS.FetchRegion(c.Proc(), bwd, x+int(dec.BMV.X), y+int(dec.BMV.Y))
	}

	var pred, out media.MBPixels
	media.PredictHP(&pred, dec.Mode, fwd, bwd, x, y, dec.FMV, dec.BMV, m.Seq.HalfPel)
	media.Reconstruct(&out, &pred, &resid)
	c.Compute(m.Costs.MCRecon)
	if dec.Mode == media.PredBi {
		c.Compute(m.Costs.MCBiExtra)
	}
	if m.Seq.HalfPel && (dec.FMV.X&1 != 0 || dec.FMV.Y&1 != 0 || dec.BMV.X&1 != 0 || dec.BMV.Y&1 != 0) {
		c.Compute(m.Costs.MCHalfPelExtra)
	}
	m.FS.StoreMB(m.cur, mbx, mby, &out)

	c.Write(mcPortPix, 0, out[:])
	c.PutSpace(mcPortPix, media.MBPixBytes)
	c.PutSpace(mcPortHdr, media.MBHeaderSize)
	c.PutSpace(mcPortResid, media.MBCoefBytes)

	m.mbIdx++
	if m.mbIdx == m.Seq.MBCount() {
		m.FS.EndFrame(m.cur, m.hdr.Type)
		m.inFrame = false
		m.frames++
	}
	return m.frames == m.Seq.Frames
}

// FrameEvent records the completion of one coded frame at the sink, for
// experiment timelines (attributing trace intervals to frames, as the
// GOP annotation above the paper's Figure 10 does).
type FrameEvent struct {
	TRef  uint16
	Type  media.FrameType
	Cycle uint64
}

// Sink is the software task collecting decoded pixels into display-order
// frames (the consumer end of the application). It consumes the header
// stream (a second consumer of the VLD's broadcast) to learn frame
// boundaries and display indices.
type Sink struct {
	Costs *Costs
	Seq   media.SeqHeader

	Frames   []*media.Frame // display order, filled as frames complete
	Timeline []FrameEvent   // coded order, one event per completed frame

	inFrame bool
	hdr     media.FrameHdr
	cur     *media.Frame
	mbIdx   int
	frames  int
}

const (
	sinkPortHdr = 0
	sinkPortPix = 1
)

// Step consumes one frame record or one macroblock.
func (s *Sink) Step(c *coproc.Ctx) bool {
	if s.Frames == nil {
		s.Frames = make([]*media.Frame, s.Seq.Frames)
	}
	if !s.inFrame {
		if !c.GetSpace(sinkPortHdr, media.FrameRecSize) {
			return false
		}
		var frameB [media.FrameRecSize]byte
		buf := frameB[:]
		c.Read(sinkPortHdr, 0, buf)
		hdr, err := media.ParseFrameRec(buf, media.FrameRecHdr)
		if err != nil {
			panic("sink: " + err.Error())
		}
		c.PutSpace(sinkPortHdr, media.FrameRecSize)
		s.hdr = hdr
		s.cur = media.NewFrame(s.Seq.W(), s.Seq.H())
		s.inFrame = true
		s.mbIdx = 0
		return false
	}
	if !c.GetSpace(sinkPortHdr, media.MBHeaderSize) {
		return false
	}
	if !c.GetSpace(sinkPortPix, media.MBPixBytes) {
		return false
	}
	var pix media.MBPixels
	c.Read(sinkPortPix, 0, pix[:])
	c.PutSpace(sinkPortHdr, media.MBHeaderSize) // header content unused here
	c.PutSpace(sinkPortPix, media.MBPixBytes)
	c.Compute(s.Costs.SWChunk)
	s.cur.SetMB(s.mbIdx%s.Seq.MBCols, s.mbIdx/s.Seq.MBCols, &pix)
	s.mbIdx++
	if s.mbIdx == s.Seq.MBCount() {
		if int(s.hdr.TRef) < len(s.Frames) {
			s.Frames[s.hdr.TRef] = s.cur
		}
		s.Timeline = append(s.Timeline, FrameEvent{TRef: s.hdr.TRef, Type: s.hdr.Type, Cycle: c.Now()})
		s.inFrame = false
		s.frames++
	}
	return s.frames == s.Seq.Frames
}
