package copro

import (
	"testing"

	"eclipse/internal/media"
	"eclipse/internal/mem"
	"eclipse/internal/sim"
)

func TestCostsCalibration(t *testing.T) {
	c := DefaultCosts()
	// The Figure 10 calibration contract: per-macroblock compute costs
	// must order RLSQ(P) < DCT < RLSQ(I), with DCT between the MC single-
	// and double-fetch costs once memory time is added (see DESIGN.md).
	dct := 4 * c.DCTCost()
	rlsqP := c.RLSQCost(8, 2)
	rlsqI := c.RLSQCost(60, 4)
	if !(rlsqP < dct && dct < rlsqI) {
		t.Fatalf("calibration broken: rlsqP=%d dct=%d rlsqI=%d", rlsqP, dct, rlsqI)
	}
	if c.VLDCost(100) <= c.VLDCost(10) {
		t.Fatal("VLD cost not data dependent")
	}
}

func TestCostsPipelinedDCT(t *testing.T) {
	c := DefaultCosts()
	base := c.DCTCost()
	c.DCTPipelined = true
	if c.DCTCost() != base/2 {
		t.Fatalf("pipelined cost %d, want %d", c.DCTCost(), base/2)
	}
}

func TestFramestoreSlotRotation(t *testing.T) {
	k := sim.NewKernel()
	dram := mem.New(k, mem.Fig8DRAM())
	fs, err := NewFramestore(dram, 32, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	// I P B B P: the B frames reuse the third slot; references persist.
	i0 := fs.BeginFrame()
	fs.EndFrame(i0, media.FrameI)
	p1 := fs.BeginFrame()
	fs.EndFrame(p1, media.FrameP)
	b1 := fs.BeginFrame()
	fs.EndFrame(b1, media.FrameB)
	b2 := fs.BeginFrame()
	fs.EndFrame(b2, media.FrameB)
	if fwd, bwd := fs.Refs(media.FrameB); fwd != i0 || bwd != p1 {
		t.Fatal("references lost during B frames")
	}
	p2 := fs.BeginFrame()
	fs.EndFrame(p2, media.FrameP)
	if fwd, bwd := fs.Refs(media.FrameB); fwd != p1 || bwd != p2 {
		t.Fatal("reference chain did not advance")
	}
	// i0 fell out; its slot must be reusable without panicking.
	for i := 0; i < 6; i++ {
		f := fs.BeginFrame()
		fs.EndFrame(f, media.FrameP)
	}
}

func TestFramestoreTooSmall(t *testing.T) {
	k := sim.NewKernel()
	cfg := mem.Fig8DRAM()
	cfg.Size = 1024
	dram := mem.New(k, cfg)
	if _, err := NewFramestore(dram, 64, 64, 0); err == nil {
		t.Fatal("oversized framestore accepted")
	}
}

func TestFramestoreStoreAndFetchTiming(t *testing.T) {
	k := sim.NewKernel()
	dram := mem.New(k, mem.Fig8DRAM())
	fs, err := NewFramestore(dram, 32, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := fs.BeginFrame()
	var pix media.MBPixels
	for i := range pix {
		pix[i] = byte(i)
	}
	var fetchTook uint64
	k.NewProc("mc", 0, func(p *sim.Proc) {
		fs.StoreMB(f, 0, 0, &pix)
		fs.EndFrame(f, media.FrameI)
		t0 := p.Now()
		fs.FetchRegion(p, f, 0, 0)
		fetchTook = p.Now() - t0
	})
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	// Mirror content must round-trip.
	var back media.MBPixels
	f.GetMB(0, 0, &back)
	if back != pix {
		t.Fatal("mirror content lost")
	}
	// A 16-row fetch must cost at least the DRAM latency but overlap the
	// row requests (well under 16 sequential accesses).
	lat := mem.Fig8DRAM().ReadLatency
	if fetchTook < lat {
		t.Fatalf("fetch took %d, below latency %d", fetchTook, lat)
	}
	if fetchTook > 16*(lat+2) {
		t.Fatalf("fetch took %d: rows not overlapped", fetchTook)
	}
}

func TestFramestoreFetchClamps(t *testing.T) {
	k := sim.NewKernel()
	dram := mem.New(k, mem.Fig8DRAM())
	fs, err := NewFramestore(dram, 32, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := fs.BeginFrame()
	fs.EndFrame(f, media.FrameI)
	k.NewProc("mc", 0, func(p *sim.Proc) {
		fs.FetchRegion(p, f, -20, -20) // off-frame: must clamp, not panic
		fs.FetchRegion(p, f, 31, 31)
	})
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestRawStore(t *testing.T) {
	k := sim.NewKernel()
	dram := mem.New(k, mem.Fig8DRAM())
	frames := []*media.Frame{media.NewFrame(32, 32), media.NewFrame(32, 32)}
	frames[1].Pix[5] = 99
	rs, err := NewRawStore(dram, 4096, frames)
	if err != nil {
		t.Fatal(err)
	}
	var got media.MBPixels
	k.NewProc("me", 0, func(p *sim.Proc) {
		rs.FetchMB(p, 1, 0, 0, &got)
	})
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got[5] != 99 {
		t.Fatal("wrong frame fetched")
	}
	if _, err := NewRawStore(dram, 0, nil); err == nil {
		t.Fatal("empty raw store accepted")
	}
}

func TestRecInfoRoundTrip(t *testing.T) {
	dec := media.MBDecision{Mode: media.PredBi, FMV: media.MV{X: -3, Y: 7}, BMV: media.MV{X: 2, Y: -5}}
	buf := appendRecInfo(nil, dec, 0x0B)
	if len(buf) != RecInfoSize {
		t.Fatalf("size %d", len(buf))
	}
	gotDec, cbp, err := parseRecInfo(buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotDec != dec || cbp != 0x0B {
		t.Fatalf("got %+v cbp %x", gotDec, cbp)
	}
}
