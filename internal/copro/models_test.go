package copro

import (
	"bytes"
	"errors"
	"testing"

	"eclipse/internal/coproc"
	"eclipse/internal/media"
	"eclipse/internal/mem"
	"eclipse/internal/shell"
	"eclipse/internal/sim"
)

// rig is a mini-fabric for driving one model task with scripted
// producers/consumers on the opposite ends of its streams.
type rig struct {
	k    *sim.Kernel
	fab  *shell.Fabric
	dram *mem.Memory
}

func newRig() *rig {
	k := sim.NewKernel()
	return &rig{
		k:    k,
		fab:  shell.NewFabric(k, mem.New(k, mem.Fig8SRAM())),
		dram: mem.New(k, mem.Fig8DRAM()),
	}
}

// feeder writes a byte slice into its single output port in chunks.
type feeder struct {
	data  []byte
	chunk int
	sent  int
}

func (f *feeder) Step(c *coproc.Ctx) bool {
	n := f.chunk
	if f.sent+n > len(f.data) {
		n = len(f.data) - f.sent
	}
	if n == 0 {
		return true
	}
	if !c.GetSpace(0, uint32(n)) {
		return false
	}
	c.Write(0, 0, f.data[f.sent:f.sent+n])
	c.PutSpace(0, uint32(n))
	f.sent += n
	return f.sent == len(f.data)
}

// drain consumes everything from its single input port until the target
// byte count arrives.
type drain struct {
	want  int
	chunk int
	got   bytes.Buffer
}

func (d *drain) Step(c *coproc.Ctx) bool {
	n := d.chunk
	if rem := d.want - d.got.Len(); n > rem {
		n = rem
	}
	if n == 0 {
		return true
	}
	if !c.GetSpace(0, uint32(n)) {
		return false
	}
	buf := make([]byte, n)
	c.Read(0, 0, buf)
	c.PutSpace(0, uint32(n))
	d.got.Write(buf)
	return d.got.Len() == d.want
}

// start wires a single-task coprocessor for each installed model.
func (r *rig) start(models map[string]coproc.Task, streams []struct {
	from, to string
	buf      uint32
}) map[string]*shell.Shell {
	shells := map[string]*shell.Shell{}
	tasks := map[string]int{}
	copros := map[string]*coproc.Coprocessor{}
	ports := map[string]int{} // next port id per task
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	// Deterministic order.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, n := range names {
		sh := r.fab.NewShell(shell.DefaultConfig(n))
		shells[n] = sh
		tasks[n] = sh.AddTask(n, 0, 0)
		cp := coproc.New(sh)
		cp.Install(tasks[n], models[n])
		copros[n] = cp
	}
	for _, st := range streams {
		prod := shell.Endpoint{Shell: shells[st.from], Task: tasks[st.from], Port: ports[st.from]}
		ports[st.from]++
		cons := shell.Endpoint{Shell: shells[st.to], Task: tasks[st.to], Port: ports[st.to]}
		ports[st.to]++
		if err := r.fab.Connect(prod, []shell.Endpoint{cons}, st.buf); err != nil {
			panic(err)
		}
	}
	for _, n := range names {
		copros[n].Start(r.k)
	}
	return shells
}

func TestIDCTModelTransformsBlocks(t *testing.T) {
	r := newRig()
	costs := DefaultCosts()

	// Two blocks of known coefficients.
	var b1, b2 media.Block
	b1[0] = 400 // DC
	b2[1] = 123
	var payload []byte
	payload = media.AppendBlock(payload, &b1)
	payload = media.AppendBlock(payload, &b2)

	idct := &IDCT{Costs: &costs, Blocks: 2}
	sink := &drain{want: 2 * media.BlockBytes, chunk: media.BlockBytes}
	r.start(map[string]coproc.Task{
		"feed": &feeder{data: payload, chunk: media.BlockBytes},
		"idct": idct,
		"sink": sink,
	}, []struct {
		from, to string
		buf      uint32
	}{
		{"feed", "idct", 512},
		{"idct", "sink", 512},
	})
	if err := r.k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	var want1, want2, got media.Block
	media.IDCT(&b1, &want1)
	media.IDCT(&b2, &want2)
	if err := media.ParseBlock(sink.got.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got != want1 {
		t.Fatal("block 1 mismatch")
	}
	if err := media.ParseBlock(sink.got.Bytes()[media.BlockBytes:], &got); err != nil {
		t.Fatal(err)
	}
	if got != want2 {
		t.Fatal("block 2 mismatch")
	}
}

func TestFDCTAndIQModelsInverts(t *testing.T) {
	// feeder → fdct → iq-like chain is exercised in the encode app; here
	// check FDCT output directly.
	r := newRig()
	costs := DefaultCosts()
	var src media.Block
	for i := range src {
		src[i] = int16(i - 32)
	}
	fdct := &FDCT{Costs: &costs, Blocks: 1}
	sink := &drain{want: media.BlockBytes, chunk: media.BlockBytes}
	r.start(map[string]coproc.Task{
		"feed": &feeder{data: media.AppendBlock(nil, &src), chunk: media.BlockBytes},
		"fdct": fdct,
		"sink": sink,
	}, []struct {
		from, to string
		buf      uint32
	}{
		{"feed", "fdct", 256},
		{"fdct", "sink", 256},
	})
	if err := r.k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	var want, got media.Block
	media.FDCT(&src, &want)
	if err := media.ParseBlock(sink.got.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("FDCT mismatch")
	}
}

// TestVLDModelEmitsHostParsedRecords drives the VLD coprocessor with a
// real bitstream through a tiny input buffer and compares its two output
// streams record-for-record with host-side parsing.
func TestVLDModelEmitsHostParsedRecords(t *testing.T) {
	cfg := media.DefaultCodec(48, 32)
	src := media.NewSource(media.DefaultSource(48, 32))
	stream, _, _, err := media.Encode(cfg, src.Frames(3))
	if err != nil {
		t.Fatal(err)
	}
	// Host-side expectation.
	var wantTok, wantHdr []byte
	v := media.NewStreamVLD()
	v.Extend(stream)
	for {
		ev, err := v.Next()
		if err != nil {
			t.Fatal(err)
		}
		done := false
		switch ev.Kind {
		case media.EventFrame:
			wantTok = media.AppendFrameRec(wantTok, media.FrameRecTok, ev.Frame)
			wantHdr = media.AppendFrameRec(wantHdr, media.FrameRecHdr, ev.Frame)
		case media.EventMB:
			wantTok = media.AppendTokenMB(wantTok, &ev.Tok)
			wantHdr = media.AppendMBHeader(wantHdr, ev.MB)
		case media.EventEnd:
			done = true
		}
		if done {
			break
		}
	}

	costs := DefaultCosts()
	r := newRig()
	vld := &VLD{Costs: &costs, Chunk: 32}
	tokSink := &drain{want: len(wantTok), chunk: 64}
	hdrSink := &drain{want: len(wantHdr), chunk: 13}
	r.start(map[string]coproc.Task{
		"feed": &feeder{data: stream, chunk: 48},
		"vld":  vld,
		"tok":  tokSink,
		"hdr":  hdrSink,
	}, []struct {
		from, to string
		buf      uint32
	}{
		{"feed", "vld", 128}, // port 0: bits in
		{"vld", "tok", 1024}, // port 1: tok out
		{"vld", "hdr", 128},  // port 2: hdr out
	})
	if err := r.k.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tokSink.got.Bytes(), wantTok) {
		t.Fatal("token stream differs from host parsing")
	}
	if !bytes.Equal(hdrSink.got.Bytes(), wantHdr) {
		t.Fatal("header stream differs from host parsing")
	}
}

// TestBitSourceTail checks the short final chunk and completion.
func TestBitSourceTail(t *testing.T) {
	r := newRig()
	costs := DefaultCosts()
	data := make([]byte, 100) // not a multiple of the 32-byte chunk
	for i := range data {
		data[i] = byte(i)
	}
	r.dram.Poke(64, data)
	src := &BitSource{Costs: &costs, DRAM: r.dram, Addr: 64, Len: len(data), Chunk: 32}
	sink := &drain{want: len(data), chunk: 10}
	r.start(map[string]coproc.Task{"src": src, "sink": sink}, []struct {
		from, to string
		buf      uint32
	}{{"src", "sink", 64}})
	if err := r.k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.got.Bytes(), data) {
		t.Fatal("bitstream content mangled")
	}
}

// TestRLSQModelReexecutesOnDeniedOutput forces the RLSQ to abort its
// processing step on a full output buffer and re-execute later without
// duplicating or losing records.
func TestRLSQModelReexecutesOnDeniedOutput(t *testing.T) {
	cfg := media.DefaultCodec(32, 32)
	src := media.NewSource(media.DefaultSource(32, 32))
	stream, _, _, err := media.Encode(cfg, src.Frames(2))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := media.ParseSeqHeader(media.NewBitReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	// Host-side tok stream and expected coef stream.
	var tokBytes []byte
	var wantCoef []byte
	v := media.NewStreamVLD()
	v.Extend(stream)
	for {
		ev, verr := v.Next()
		if verr != nil {
			t.Fatal(verr)
		}
		stop := false
		switch ev.Kind {
		case media.EventFrame:
			tokBytes = media.AppendFrameRec(tokBytes, media.FrameRecTok, ev.Frame)
		case media.EventMB:
			tokBytes = media.AppendTokenMB(tokBytes, &ev.Tok)
			var coef [media.BlocksPerMB]media.Block
			if err := media.RLSQDecodeMB(&ev.Tok, seq.Q, &coef); err != nil {
				t.Fatal(err)
			}
			wantCoef = media.AppendMBBlocks(wantCoef, &coef)
		case media.EventEnd:
			stop = true
		}
		if stop {
			break
		}
	}

	costs := DefaultCosts()
	r := newRig()
	rlsq := &RLSQ{Costs: &costs, Seq: seq}
	// A coef buffer of exactly one record guarantees output denials while
	// the previous record is still unconsumed.
	sink := &drain{want: len(wantCoef), chunk: media.MBCoefBytes}
	r.start(map[string]coproc.Task{
		"feed": &feeder{data: tokBytes, chunk: 96},
		"rlsq": rlsq,
		"sink": sink,
	}, []struct {
		from, to string
		buf      uint32
	}{
		{"feed", "rlsq", 1024},
		{"rlsq", "sink", media.MBCoefBytes},
	})
	if err := r.k.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sink.got.Bytes(), wantCoef) {
		t.Fatal("coefficient stream differs after re-executed steps")
	}
	// The point of the test: denials must actually have occurred.
	// (They are visible in the rlsq shell's stream stats.)
}

// TestVLDModelCorruptStreamFailsLoudly ensures garbage input surfaces as
// a simulation failure (coprocessor panic → kernel error), not silence.
func TestVLDModelCorruptStreamFailsLoudly(t *testing.T) {
	costs := DefaultCosts()
	r := newRig()
	garbage := bytes.Repeat([]byte{0xDE, 0xAD}, 64)
	vld := &VLD{Costs: &costs, Chunk: 16}
	tokSink := &drain{want: 1 << 20, chunk: 16}
	hdrSink := &drain{want: 1 << 20, chunk: 16}
	r.start(map[string]coproc.Task{
		"feed": &feeder{data: garbage, chunk: 16},
		"vld":  vld,
		"tok":  tokSink,
		"hdr":  hdrSink,
	}, []struct {
		from, to string
		buf      uint32
	}{
		{"feed", "vld", 64},
		{"vld", "tok", 256},
		{"vld", "hdr", 64},
	})
	err := r.k.Run(10_000_000)
	if err == nil {
		t.Fatal("corrupt stream went unnoticed")
	}
	var limit *sim.LimitError
	if errors.As(err, &limit) {
		t.Fatalf("corrupt stream only hit the cycle limit: %v", err)
	}
}
