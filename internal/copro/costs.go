// Package copro implements the Eclipse coprocessor models of the paper's
// first instance (Figure 8): VLD, RLSQ, DCT, and MC/ME, plus the software
// tasks (bit-stream source/DMA, sink, variable-length encoder) that run
// on the media processor. Each model performs the *actual* media
// computation via package media and charges a cycle cost model to the
// simulation, so workloads are genuinely data dependent — the property
// behind the paper's Figure 10.
package copro

// Costs parameterizes the per-model cycle cost of one processing step's
// computation (data transport and synchronization costs come from the
// shell and memory models, not from these constants). Defaults are tuned
// to the paper's stated processing-step granularity of 10–1000 cycles.
type Costs struct {
	// VLD: bit-serial variable-length decoding.
	VLDBase   uint64 // per macroblock
	VLDPerBit uint64 // per 2 bitstream bits (c = base + bits*VLDPerBit/2)

	// RLSQ: run-length decode + inverse scan + inverse quantization.
	RLSQBase     uint64 // per macroblock
	RLSQPerToken uint64 // per run/level event
	RLSQPerBlock uint64 // per coded block (scan + quant pass)

	// DCT: fixed per 8×8 block; a pipelined DCT (the improvement the
	// paper adopted after the Figure 10 analysis) halves it.
	DCTPerBlock  uint64
	DCTPipelined bool

	// MC: reconstruction datapath per macroblock (prediction fetch time
	// comes from the off-chip memory model), plus the interpolation pass
	// bi-directional prediction needs on top of its second fetch.
	MCRecon        uint64
	MCBiExtra      uint64
	MCHalfPelExtra uint64 // bilinear interpolation pass for fractional vectors

	// ME: motion estimation, per SAD candidate evaluated.
	MEPerCandidate uint64

	// Software tasks on the media processor are slower per action.
	SWChunk uint64 // per source/sink chunk handled
	SWPerMB uint64 // per macroblock handled in software (e.g. VLE)
}

// DefaultCosts returns the calibration used by the repository's
// experiments. With these constants the Figure 10 phenomena emerge:
// RLSQ-bound I frames, DCT-bound P frames, MC-bound B frames.
func DefaultCosts() Costs {
	return Costs{
		VLDBase:        8,
		VLDPerBit:      1, // applied per 2 bits
		RLSQBase:       16,
		RLSQPerToken:   5,
		RLSQPerBlock:   8,
		DCTPerBlock:    64,
		MCRecon:        64,
		MCBiExtra:      64,
		MCHalfPelExtra: 32,
		MEPerCandidate: 4,
		SWChunk:        16,
		SWPerMB:        40,
	}
}

// DCTCost returns the per-block DCT cost honoring the pipelining option.
func (c *Costs) DCTCost() uint64 {
	if c.DCTPipelined {
		return c.DCTPerBlock / 2
	}
	return c.DCTPerBlock
}

// VLDCost returns the VLD computation cost for a macroblock that
// consumed the given number of bitstream bits.
func (c *Costs) VLDCost(bits int) uint64 {
	return c.VLDBase + uint64(bits)*c.VLDPerBit/2
}

// RLSQCost returns the RLSQ computation cost for a macroblock with the
// given token and coded-block counts.
func (c *Costs) RLSQCost(tokens, codedBlocks int) uint64 {
	return c.RLSQBase + uint64(tokens)*c.RLSQPerToken + uint64(codedBlocks)*c.RLSQPerBlock
}
