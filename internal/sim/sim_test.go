package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(10, func() { got = append(got, 2) })
	k.Schedule(5, func() { got = append(got, 1) })
	k.Schedule(10, func() { got = append(got, 3) }) // same cycle: schedule order
	k.Schedule(20, func() { got = append(got, 4) })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 20 {
		t.Fatalf("Now = %d, want 20", k.Now())
	}
}

func TestZeroDelayRunsAfterPendingSameCycleWork(t *testing.T) {
	k := NewKernel()
	var got []string
	k.Schedule(3, func() {
		got = append(got, "a")
		k.Schedule(0, func() { got = append(got, "c") })
	})
	k.Schedule(3, func() { got = append(got, "b") })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s := strings.Join(got, ""); s != "abc" {
		t.Fatalf("order = %q, want abc", s)
	}
}

func TestEventDeterminism(t *testing.T) {
	// The same randomized scheduling program must produce the identical
	// trace on every run.
	run := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var sb strings.Builder
		var spawn func(depth int)
		n := 0
		spawn = func(depth int) {
			if depth > 4 || n > 200 {
				return
			}
			for i := 0; i < rng.Intn(4); i++ {
				id := n
				n++
				k.Schedule(uint64(rng.Intn(10)), func() {
					fmt.Fprintf(&sb, "%d@%d;", id, k.Now())
					spawn(depth + 1)
				})
			}
		}
		spawn(0)
		if err := k.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sb.String()
	}
	for seed := int64(1); seed < 6; seed++ {
		a, b := run(seed), run(seed)
		if a != b {
			t.Fatalf("seed %d: nondeterministic trace:\n%s\n%s", seed, a, b)
		}
	}
}

func TestProcDelayAdvancesTime(t *testing.T) {
	k := NewKernel()
	var at []uint64
	k.NewProc("p", 0, func(p *Proc) {
		at = append(at, p.Now())
		p.Delay(7)
		at = append(at, p.Now())
		p.Delay(3)
		at = append(at, p.Now())
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []uint64{0, 7, 10}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("at = %v, want %v", at, want)
		}
	}
}

func TestProcStartOffset(t *testing.T) {
	k := NewKernel()
	var start uint64
	k.NewProc("late", 42, func(p *Proc) { start = p.Now() })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if start != 42 {
		t.Fatalf("start = %d, want 42", start)
	}
}

func TestStrictHandoff(t *testing.T) {
	// Two processes interleave deterministically: only one runs at a time,
	// and wakeups at the same cycle run in schedule order.
	k := NewKernel()
	var trace []string
	mk := func(name string, period uint64) {
		k.NewProc(name, 0, func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, fmt.Sprintf("%s%d@%d", name, i, p.Now()))
				p.Delay(period)
			}
		})
	}
	mk("a", 2)
	mk("b", 3)
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "a0@0 b0@0 a1@2 b1@3 a2@4 b2@6"
	if got := strings.Join(trace, " "); got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	k := NewKernel()
	sig := k.NewSignal("go")
	var woke []string
	for _, n := range []string{"x", "y"} {
		n := n
		k.NewProc(n, 0, func(p *Proc) {
			p.Wait(sig)
			woke = append(woke, fmt.Sprintf("%s@%d", n, p.Now()))
		})
	}
	k.Schedule(9, func() { sig.Fire() })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := strings.Join(woke, " "); got != "x@9 y@9" {
		t.Fatalf("woke = %q", got)
	}
}

func TestSignalFireWithNoWaiters(t *testing.T) {
	k := NewKernel()
	sig := k.NewSignal("none")
	k.Schedule(1, func() { sig.Fire() })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	sig := k.NewSignal("never")
	k.NewProc("stuck", 0, func(p *Proc) { p.Wait(sig) })
	err := k.Run(0)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || !strings.Contains(dl.Blocked[0], "stuck") {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
}

func TestCycleLimit(t *testing.T) {
	k := NewKernel()
	k.NewProc("spin", 0, func(p *Proc) {
		for {
			p.Delay(100)
		}
	})
	err := k.Run(1000)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LimitError", err)
	}
}

func TestStopEndsRun(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.NewProc("p", 0, func(p *Proc) {
		for {
			ran++
			if ran == 5 {
				k.Stop()
			}
			p.Delay(1)
		}
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 5 {
		t.Fatalf("ran = %d, want 5", ran)
	}
}

func TestFailPropagatesError(t *testing.T) {
	k := NewKernel()
	boom := errors.New("boom")
	k.Schedule(4, func() { k.Fail(boom) })
	k.Schedule(9, func() { t.Fatal("event after Fail must not run") })
	if err := k.Run(0); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestProcPanicBecomesError(t *testing.T) {
	k := NewKernel()
	k.NewProc("bad", 0, func(p *Proc) {
		p.Delay(2)
		panic("oops")
	})
	err := k.Run(0)
	if err == nil || !strings.Contains(err.Error(), "oops") {
		t.Fatalf("err = %v, want panic error", err)
	}
}

func TestShutdownReleasesBlockedProcs(t *testing.T) {
	// After Run returns with a deadlock, the blocked goroutines must have
	// been unwound; a subsequent kernel must work normally.
	for i := 0; i < 3; i++ {
		k := NewKernel()
		sig := k.NewSignal("never")
		for j := 0; j < 4; j++ {
			k.NewProc(fmt.Sprintf("w%d", j), 0, func(p *Proc) {
				p.Wait(sig)
				t.Error("waiter must not resume normally")
			})
		}
		var dl *DeadlockError
		if err := k.Run(0); !errors.As(err, &dl) {
			t.Fatalf("err = %v", err)
		}
	}
}

func TestManyProcsInterleaveDeterministically(t *testing.T) {
	run := func() string {
		k := NewKernel()
		var sb strings.Builder
		for i := 0; i < 16; i++ {
			i := i
			k.NewProc(fmt.Sprintf("p%d", i), uint64(i%4), func(p *Proc) {
				for j := 0; j < 8; j++ {
					p.Delay(uint64(1 + (i+j)%5))
				}
				fmt.Fprintf(&sb, "%d@%d;", i, p.Now())
			})
		}
		if err := k.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sb.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic:\n%s\n%s", a, b)
	}
}

func TestQuickDelaySumsToNow(t *testing.T) {
	// Property: a process performing arbitrary delays finishes at exactly
	// the sum of its delays (when started at 0 and alone in the kernel).
	f := func(delays []uint16) bool {
		k := NewKernel()
		var sum, end uint64
		k.NewProc("p", 0, func(p *Proc) {
			for _, d := range delays {
				sum += uint64(d)
				p.Delay(uint64(d))
			}
			end = p.Now()
		})
		if err := k.Run(0); err != nil {
			return false
		}
		return end == sum && k.Now() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitOutsideProcPanics(t *testing.T) {
	k := NewKernel()
	sig := k.NewSignal("s")
	var p *Proc
	p = k.NewProc("p", 0, func(pp *Proc) { pp.Delay(1) })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Wait(sig)
}

func TestRunResumesAfterLimit(t *testing.T) {
	// A LimitError is a pause: no event may be lost, and a later Run call
	// must continue exactly where the previous one stopped. (Regression:
	// the kernel used to pop-and-discard the first over-limit event.)
	k := NewKernel()
	var at []uint64
	k.NewProc("p", 0, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Delay(100)
			at = append(at, p.Now())
		}
	})
	err := k.Run(250)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("first Run: err = %v, want LimitError", err)
	}
	if want := []uint64{100, 200}; len(at) != len(want) {
		t.Fatalf("progress before limit = %v, want %v", at, want)
	}
	if err := k.Run(0); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	want := []uint64{100, 200, 300, 400, 500}
	if len(at) != len(want) {
		t.Fatalf("at = %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("at = %v, want %v", at, want)
		}
	}
	if k.Now() != 500 {
		t.Fatalf("Now = %d, want 500", k.Now())
	}
}

func TestRunLimitDoesNotDiscardPlainEvents(t *testing.T) {
	// Same regression for plain callbacks, including a far-future (heap
	// path) event that straddles the limit.
	k := NewKernel()
	var got []int
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(300, func() { got = append(got, 2) }) // beyond wheel span and limit
	err := k.Run(100)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LimitError", err)
	}
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got = %v, want [1]", got)
	}
	if n := k.Pending(); n != 1 {
		t.Fatalf("Pending = %d, want 1", n)
	}
	if err := k.Run(0); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("got = %v, want [1 2]", got)
	}
	if k.Now() != 300 {
		t.Fatalf("Now = %d, want 300", k.Now())
	}
}

func TestRunLimitRepeatedResume(t *testing.T) {
	// Stepping a simulation through many small limit windows must visit
	// exactly the same states as one unbounded run.
	run := func(step uint64) string {
		k := NewKernel()
		var sb strings.Builder
		for i := 0; i < 10; i++ {
			i := i
			k.Schedule(uint64(i)*37, func() { fmt.Fprintf(&sb, "%d@%d;", i, k.Now()) })
		}
		var err error
		if step == 0 {
			err = k.Run(0)
		} else {
			for limit := step; ; limit += step {
				err = k.Run(limit)
				var le *LimitError
				if !errors.As(err, &le) {
					break
				}
			}
		}
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sb.String()
	}
	want := run(0)
	for _, step := range []uint64{1, 7, 50, 1000} {
		if got := run(step); got != want {
			t.Fatalf("step %d: trace %q, want %q", step, got, want)
		}
	}
}

func TestShutdownAfterAbandonedLimit(t *testing.T) {
	// A caller that gives up on a paused kernel releases its goroutines
	// with Shutdown; Shutdown must be idempotent.
	k := NewKernel()
	k.NewProc("spin", 0, func(p *Proc) {
		for {
			p.Delay(10)
		}
	})
	var le *LimitError
	if err := k.Run(100); !errors.As(err, &le) {
		t.Fatalf("err = %v, want LimitError", err)
	}
	k.Shutdown()
	k.Shutdown()
}

func TestSignalWakeupOrderIsRegistrationOrder(t *testing.T) {
	// Multiple waiters on one signal must resume in the order they called
	// Wait, identically on every run.
	run := func() string {
		k := NewKernel()
		sig := k.NewSignal("go")
		var order []string
		// Stagger registration: procs register in a deterministic order
		// fixed by their start cycles and creation order.
		names := []string{"a", "b", "c", "d", "e"}
		for i, n := range names {
			n := n
			k.NewProc(n, uint64(i%2), func(p *Proc) {
				p.Wait(sig)
				order = append(order, fmt.Sprintf("%s@%d", n, p.Now()))
			})
		}
		k.Schedule(5, func() { sig.Fire() })
		if err := k.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return strings.Join(order, " ")
	}
	// Registration order: start-cycle 0 procs (a, c, e) register at cycle
	// 0 in creation order, then start-cycle 1 procs (b, d) at cycle 1.
	want := "a@5 c@5 e@5 b@5 d@5"
	for i := 0; i < 5; i++ {
		if got := run(); got != want {
			t.Fatalf("run %d: wakeup order %q, want %q", i, got, want)
		}
	}
}

func TestSignalReuseAfterFire(t *testing.T) {
	// The waiter slice is reused across fires; re-waiting after a wakeup
	// must work and preserve order.
	k := NewKernel()
	sig := k.NewSignal("tick")
	var got []string
	for _, n := range []string{"x", "y"} {
		n := n
		k.NewProc(n, 0, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Wait(sig)
				got = append(got, fmt.Sprintf("%s%d@%d", n, i, p.Now()))
			}
		})
	}
	k.NewProc("firer", 0, func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Delay(10)
			sig.Fire()
		}
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "x0@10 y0@10 x1@20 y1@20 x2@30 y2@30"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("got %q, want %q", s, want)
	}
}

func TestWheelHeapMergeOrdering(t *testing.T) {
	// A far-future event (heap path) and a later-scheduled near event
	// (wheel path) landing on the same cycle must run in schedule order:
	// the heap event was scheduled first, so it runs first.
	k := NewKernel()
	var got []string
	k.Schedule(100, func() { got = append(got, "heap-first") }) // seq 1, heap
	k.Schedule(99, func() {                                     // seq 2
		k.Schedule(1, func() { got = append(got, "wheel-second") }) // seq 3, wheel, same cycle 100
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s := strings.Join(got, ","); s != "heap-first,wheel-second" {
		t.Fatalf("order = %q, want heap-first,wheel-second", s)
	}
}

func TestWheelBoundaryDelays(t *testing.T) {
	// Delays straddling the wheel span (wheelSize-1, wheelSize,
	// wheelSize+1, and multiples) must all execute in global time order.
	k := NewKernel()
	var got []uint64
	delays := []uint64{wheelSize - 1, wheelSize, wheelSize + 1, 0, 1,
		2 * wheelSize, 2*wheelSize - 1, 3 * wheelSize, 7, 63, 64, 65, 127, 128, 129}
	for _, d := range delays {
		d := d
		k.Schedule(d, func() { got = append(got, k.Now()) })
	}
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != len(delays) {
		t.Fatalf("executed %d of %d events", len(got), len(delays))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("time went backwards: %v", got)
		}
	}
	if k.Now() != 3*wheelSize {
		t.Fatalf("Now = %d, want %d", k.Now(), 3*wheelSize)
	}
}

func TestGlobalEventOrderProperty(t *testing.T) {
	// Property: for an arbitrary nested scheduling program, events execute
	// in (cycle, scheduling-sequence) order — the exact contract a single
	// global priority queue would give, regardless of how events are split
	// between the timing wheel and the fallback heap.
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		type rec struct{ at, idx uint64 }
		var sched, exec []rec
		var idx uint64
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 5 || idx > 500 {
				return
			}
			for i := 0; i < rng.Intn(5); i++ {
				// Mix near (wheel) and far (heap) delays.
				var d uint64
				if rng.Intn(2) == 0 {
					d = uint64(rng.Intn(wheelSize))
				} else {
					d = uint64(rng.Intn(1000))
				}
				id := idx
				idx++
				at := k.Now() + d
				sched = append(sched, rec{at, id})
				k.Schedule(d, func() {
					exec = append(exec, rec{k.Now(), id})
					spawn(depth + 1)
				})
			}
		}
		spawn(0)
		if err := k.Run(0); err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		if len(exec) != len(sched) {
			t.Fatalf("seed %d: executed %d of %d", seed, len(exec), len(sched))
		}
		for i := 1; i < len(exec); i++ {
			a, b := exec[i-1], exec[i]
			if a.at > b.at || (a.at == b.at && a.idx > b.idx) {
				t.Fatalf("seed %d: out of order at %d: %v then %v", seed, i, a, b)
			}
		}
	}
}

func TestEventsCounter(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 10; i++ {
		k.Schedule(uint64(i), func() {})
	}
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if k.Events() != 10 {
		t.Fatalf("Events = %d, want 10", k.Events())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", k.Pending())
	}
}
