package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(10, func() { got = append(got, 2) })
	k.Schedule(5, func() { got = append(got, 1) })
	k.Schedule(10, func() { got = append(got, 3) }) // same cycle: schedule order
	k.Schedule(20, func() { got = append(got, 4) })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 20 {
		t.Fatalf("Now = %d, want 20", k.Now())
	}
}

func TestZeroDelayRunsAfterPendingSameCycleWork(t *testing.T) {
	k := NewKernel()
	var got []string
	k.Schedule(3, func() {
		got = append(got, "a")
		k.Schedule(0, func() { got = append(got, "c") })
	})
	k.Schedule(3, func() { got = append(got, "b") })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if s := strings.Join(got, ""); s != "abc" {
		t.Fatalf("order = %q, want abc", s)
	}
}

func TestEventDeterminism(t *testing.T) {
	// The same randomized scheduling program must produce the identical
	// trace on every run.
	run := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var sb strings.Builder
		var spawn func(depth int)
		n := 0
		spawn = func(depth int) {
			if depth > 4 || n > 200 {
				return
			}
			for i := 0; i < rng.Intn(4); i++ {
				id := n
				n++
				k.Schedule(uint64(rng.Intn(10)), func() {
					fmt.Fprintf(&sb, "%d@%d;", id, k.Now())
					spawn(depth + 1)
				})
			}
		}
		spawn(0)
		if err := k.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sb.String()
	}
	for seed := int64(1); seed < 6; seed++ {
		a, b := run(seed), run(seed)
		if a != b {
			t.Fatalf("seed %d: nondeterministic trace:\n%s\n%s", seed, a, b)
		}
	}
}

func TestProcDelayAdvancesTime(t *testing.T) {
	k := NewKernel()
	var at []uint64
	k.NewProc("p", 0, func(p *Proc) {
		at = append(at, p.Now())
		p.Delay(7)
		at = append(at, p.Now())
		p.Delay(3)
		at = append(at, p.Now())
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []uint64{0, 7, 10}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("at = %v, want %v", at, want)
		}
	}
}

func TestProcStartOffset(t *testing.T) {
	k := NewKernel()
	var start uint64
	k.NewProc("late", 42, func(p *Proc) { start = p.Now() })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if start != 42 {
		t.Fatalf("start = %d, want 42", start)
	}
}

func TestStrictHandoff(t *testing.T) {
	// Two processes interleave deterministically: only one runs at a time,
	// and wakeups at the same cycle run in schedule order.
	k := NewKernel()
	var trace []string
	mk := func(name string, period uint64) {
		k.NewProc(name, 0, func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, fmt.Sprintf("%s%d@%d", name, i, p.Now()))
				p.Delay(period)
			}
		})
	}
	mk("a", 2)
	mk("b", 3)
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := "a0@0 b0@0 a1@2 b1@3 a2@4 b2@6"
	if got := strings.Join(trace, " "); got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
}

func TestSignalWakesAllWaiters(t *testing.T) {
	k := NewKernel()
	sig := k.NewSignal("go")
	var woke []string
	for _, n := range []string{"x", "y"} {
		n := n
		k.NewProc(n, 0, func(p *Proc) {
			p.Wait(sig)
			woke = append(woke, fmt.Sprintf("%s@%d", n, p.Now()))
		})
	}
	k.Schedule(9, func() { sig.Fire() })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := strings.Join(woke, " "); got != "x@9 y@9" {
		t.Fatalf("woke = %q", got)
	}
}

func TestSignalFireWithNoWaiters(t *testing.T) {
	k := NewKernel()
	sig := k.NewSignal("none")
	k.Schedule(1, func() { sig.Fire() })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	sig := k.NewSignal("never")
	k.NewProc("stuck", 0, func(p *Proc) { p.Wait(sig) })
	err := k.Run(0)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || !strings.Contains(dl.Blocked[0], "stuck") {
		t.Fatalf("blocked = %v", dl.Blocked)
	}
}

func TestCycleLimit(t *testing.T) {
	k := NewKernel()
	k.NewProc("spin", 0, func(p *Proc) {
		for {
			p.Delay(100)
		}
	})
	err := k.Run(1000)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want LimitError", err)
	}
}

func TestStopEndsRun(t *testing.T) {
	k := NewKernel()
	ran := 0
	k.NewProc("p", 0, func(p *Proc) {
		for {
			ran++
			if ran == 5 {
				k.Stop()
			}
			p.Delay(1)
		}
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran != 5 {
		t.Fatalf("ran = %d, want 5", ran)
	}
}

func TestFailPropagatesError(t *testing.T) {
	k := NewKernel()
	boom := errors.New("boom")
	k.Schedule(4, func() { k.Fail(boom) })
	k.Schedule(9, func() { t.Fatal("event after Fail must not run") })
	if err := k.Run(0); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestProcPanicBecomesError(t *testing.T) {
	k := NewKernel()
	k.NewProc("bad", 0, func(p *Proc) {
		p.Delay(2)
		panic("oops")
	})
	err := k.Run(0)
	if err == nil || !strings.Contains(err.Error(), "oops") {
		t.Fatalf("err = %v, want panic error", err)
	}
}

func TestShutdownReleasesBlockedProcs(t *testing.T) {
	// After Run returns with a deadlock, the blocked goroutines must have
	// been unwound; a subsequent kernel must work normally.
	for i := 0; i < 3; i++ {
		k := NewKernel()
		sig := k.NewSignal("never")
		for j := 0; j < 4; j++ {
			k.NewProc(fmt.Sprintf("w%d", j), 0, func(p *Proc) {
				p.Wait(sig)
				t.Error("waiter must not resume normally")
			})
		}
		var dl *DeadlockError
		if err := k.Run(0); !errors.As(err, &dl) {
			t.Fatalf("err = %v", err)
		}
	}
}

func TestManyProcsInterleaveDeterministically(t *testing.T) {
	run := func() string {
		k := NewKernel()
		var sb strings.Builder
		for i := 0; i < 16; i++ {
			i := i
			k.NewProc(fmt.Sprintf("p%d", i), uint64(i%4), func(p *Proc) {
				for j := 0; j < 8; j++ {
					p.Delay(uint64(1 + (i+j)%5))
				}
				fmt.Fprintf(&sb, "%d@%d;", i, p.Now())
			})
		}
		if err := k.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return sb.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic:\n%s\n%s", a, b)
	}
}

func TestQuickDelaySumsToNow(t *testing.T) {
	// Property: a process performing arbitrary delays finishes at exactly
	// the sum of its delays (when started at 0 and alone in the kernel).
	f := func(delays []uint16) bool {
		k := NewKernel()
		var sum, end uint64
		k.NewProc("p", 0, func(p *Proc) {
			for _, d := range delays {
				sum += uint64(d)
				p.Delay(uint64(d))
			}
			end = p.Now()
		})
		if err := k.Run(0); err != nil {
			return false
		}
		return end == sum && k.Now() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitOutsideProcPanics(t *testing.T) {
	k := NewKernel()
	sig := k.NewSignal("s")
	var p *Proc
	p = k.NewProc("p", 0, func(pp *Proc) { pp.Delay(1) })
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Wait(sig)
}
