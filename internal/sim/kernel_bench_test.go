package sim

import "testing"

// Pure-kernel microbenchmarks exercising the event hot paths in
// isolation: Delay (typed evDispatch via the timing wheel), Signal.Fire
// (typed wakeups), Schedule (callback events, wheel and heap paths), and
// a mixed workload shaped like the decode pipeline's event profile.
// Regenerate with:
//
//	go test -bench=BenchmarkKernel -benchmem ./internal/sim
//
// Each reports Mevents/s (millions of executed kernel events per
// wall-clock second) alongside the standard allocs/op.

// reportMevents converts an executed-event total into the Mevents/s metric.
func reportMevents(b *testing.B, events uint64) {
	b.ReportMetric(float64(events)/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

// BenchmarkKernelDelay measures the dominant operation: processes doing
// short Delays through the timing wheel, with strict handoffs.
func BenchmarkKernelDelay(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for p := 0; p < 4; p++ {
			period := uint64(1 + p)
			k.NewProc("p", 0, func(p *Proc) {
				for j := 0; j < 2000; j++ {
					p.Delay(period)
				}
			})
		}
		if err := k.Run(0); err != nil {
			b.Fatal(err)
		}
		events += k.Events()
	}
	reportMevents(b, events)
}

// BenchmarkKernelDelayFar measures long delays that take the heap
// fallback path (delay >= wheelSize).
func BenchmarkKernelDelayFar(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for p := 0; p < 4; p++ {
			period := uint64(wheelSize * (2 + p))
			k.NewProc("p", 0, func(p *Proc) {
				for j := 0; j < 2000; j++ {
					p.Delay(period)
				}
			})
		}
		if err := k.Run(0); err != nil {
			b.Fatal(err)
		}
		events += k.Events()
	}
	reportMevents(b, events)
}

// BenchmarkKernelSignal measures producer/consumer style wakeups:
// one firer, several waiters, typed evDispatch per wakeup.
func BenchmarkKernelSignal(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		sig := k.NewSignal("tick")
		const rounds = 2000
		for w := 0; w < 4; w++ {
			k.NewProc("w", 0, func(p *Proc) {
				for j := 0; j < rounds; j++ {
					p.Wait(sig)
				}
			})
		}
		k.NewProc("firer", 0, func(p *Proc) {
			for j := 0; j < rounds; j++ {
				p.Delay(3)
				sig.Fire()
			}
		})
		if err := k.Run(0); err != nil {
			b.Fatal(err)
		}
		events += k.Events()
	}
	reportMevents(b, events)
}

// BenchmarkKernelSchedule measures plain callback events across a mix of
// wheel-path and heap-path delays.
func BenchmarkKernelSchedule(b *testing.B) {
	b.ReportAllocs()
	delays := [8]uint64{0, 1, 3, 17, wheelSize - 1, wheelSize, 300, 1000}
	var events uint64
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		n := 0
		var tick func()
		tick = func() {
			if n >= 10000 {
				return
			}
			n++
			k.Schedule(delays[n&7], tick)
		}
		k.Schedule(0, tick)
		if err := k.Run(0); err != nil {
			b.Fatal(err)
		}
		events += k.Events()
	}
	reportMevents(b, events)
}

// BenchmarkKernelMixed approximates the decode pipeline's event profile:
// mostly short Delays, frequent signal wakeups, occasional far events.
func BenchmarkKernelMixed(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		sig := k.NewSignal("data")
		k.NewProc("producer", 0, func(p *Proc) {
			for j := 0; j < 3000; j++ {
				p.Delay(uint64(1 + j%7))
				sig.Fire()
				if j%64 == 0 {
					p.Delay(200) // refill stall: heap path
				}
			}
		})
		for c := 0; c < 3; c++ {
			k.NewProc("consumer", 0, func(p *Proc) {
				for j := 0; j < 3000; j++ {
					p.Wait(sig)
					p.Delay(uint64(1 + j%5))
				}
			})
		}
		err := k.Run(0)
		if err != nil {
			if _, ok := err.(*DeadlockError); !ok {
				b.Fatal(err)
			}
		}
		events += k.Events()
	}
	reportMevents(b, events)
}
