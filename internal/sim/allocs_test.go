package sim

// Allocation guard for the simulation kernel's construction and
// steady-state paths.
//
// History: the eclipse-bench kernel-stress allocs/run figure crept from
// 231 to 232 when the direct-handoff rewrite added a driver channel to
// NewKernel without reclaiming an allocation elsewhere. This test pins
// the per-run allocation count of a miniature version of that stress
// mix so the next creep fails a test instead of surfacing two PRs later
// in a benchmark diff. The budget is deliberately exact: if you add an
// allocation to NewKernel / NewProc / the run loop on purpose, re-count
// and update the constant alongside the justification.

import (
	"testing"
)

// stressRun is a scaled-down replica of eclipse-bench's kernel-stress
// workload: one producer firing a signal with mixed short/far delays
// (wheel and heap paths both exercised), three consumers on the signal.
func stressRun(rounds int) {
	k := NewKernel()
	sig := k.NewSignal("data")
	k.NewProc("producer", 0, func(p *Proc) {
		for j := 0; j < rounds; j++ {
			p.Delay(uint64(1 + j%7))
			sig.Fire()
			if j%64 == 0 {
				p.Delay(200)
			}
		}
	})
	for c := 0; c < 3; c++ {
		k.NewProc("consumer", 0, func(p *Proc) {
			for j := 0; j < rounds; j++ {
				p.Wait(sig)
				p.Delay(uint64(1 + j%5))
			}
		})
	}
	if err := k.Run(0); err != nil {
		if _, ok := err.(*DeadlockError); !ok {
			panic(err)
		}
	}
}

// kernelStressAllocBudget is the full allocation budget of one stress
// run: kernel construction (Kernel, driver channel), one signal, four
// processes (Proc + rendezvous channel + goroutine closure each), the
// producer/consumer body closures, warm-up growth of the wheel buckets
// and far-event heap, and the terminal DeadlockError report (name and
// wait-state strings for the three blocked consumers). The run loop
// itself (Delay, Wait, Fire, park, direct handoff) must contribute
// nothing once warm — that is what keeps this number independent of
// `rounds`, which TestKernelStressAllocsScaleFree checks explicitly.
//
// 228 = the 232 measured by eclipse-bench at pr4 minus the four yield
// channels reclaimed by merging each Proc's resume/yield pair into one
// rendezvous channel.
const kernelStressAllocBudget = 228

// TestKernelStressAllocs pins the allocation count of the stress mix.
// A failure here means a construction- or hot-path allocation was added
// (or removed — tighten the budget if so).
func TestKernelStressAllocs(t *testing.T) {
	got := testing.AllocsPerRun(10, func() { stressRun(512) })
	if got > kernelStressAllocBudget {
		t.Errorf("kernel stress run allocates %.0f times, budget %d — a construction or hot-path allocation crept in", got, kernelStressAllocBudget)
	}
	if got < kernelStressAllocBudget-20 {
		t.Logf("kernel stress run allocates only %.0f times (budget %d); consider tightening the budget", got, kernelStressAllocBudget)
	}
}

// TestKernelStressAllocsScaleFree verifies the budget is round-count
// independent: quadrupling the rounds must not add allocations, proving
// Delay/Wait/Fire and the handoff machinery are allocation-free in
// steady state.
func TestKernelStressAllocsScaleFree(t *testing.T) {
	small := testing.AllocsPerRun(5, func() { stressRun(512) })
	large := testing.AllocsPerRun(5, func() { stressRun(2048) })
	if large > small+2 { // tiny slack for map/GC noise
		t.Errorf("allocations scale with rounds: %.0f at 512 rounds vs %.0f at 2048 — the hot path allocates", small, large)
	}
}
