package sim

import (
	"fmt"
	"strconv"
)

// Proc is a simulated hardware process: an independent thread of control
// such as a coprocessor, a prefetch engine, or a memory port server.
//
// A Proc runs on its own goroutine, but the kernel guarantees that at most
// one Proc executes at any instant (strict handoff), so Proc bodies may
// freely touch shared model state without locking. Time only advances when
// the body calls Delay or Wait.
type Proc struct {
	name string
	k    *Kernel
	// ch is the process's single rendezvous channel. In normal operation
	// the kernel sends on it to hand the baton to the process (resume). In
	// the Shutdown handshake the roles flip once: the killer sends the kill
	// resume, and the dying goroutine sends back on the same channel to
	// acknowledge unwinding. One channel instead of a resume/yield pair
	// keeps NewProc at two allocations (Proc + channel), which the
	// kernel-stress allocation guard pins.
	ch      chan struct{}
	body    func(*Proc)
	started bool
	done    bool
	kill    bool

	// Wait-state bookkeeping for deadlock reports. Stored as tag + args
	// rather than a formatted string so parking never allocates (Delay is
	// the hottest operation in the simulator).
	waitKind   waitKind
	waitCycles uint64  // valid when waitKind == waitDelay
	waitSig    *Signal // valid when waitKind == waitSignal
}

// waitKind tags what a parked process is blocked on.
type waitKind uint8

const (
	waitNone waitKind = iota
	waitDelay
	waitSignal
)

// waitDesc formats the wait state for deadlock reports. Only called on
// the cold error path.
func (p *Proc) waitDesc() string {
	switch p.waitKind {
	case waitDelay:
		return "delay " + strconv.FormatUint(p.waitCycles, 10)
	case waitSignal:
		return "wait " + p.waitSig.name
	default:
		return ""
	}
}

// killProc is the panic value used to unwind a process goroutine when the
// kernel shuts down before the process body has returned.
type killProc struct{}

// NewProc registers a process with the kernel. The body starts running at
// cycle `start`. The name is used in deadlock reports and traces.
func (k *Kernel) NewProc(name string, start uint64, body func(*Proc)) *Proc {
	p := &Proc{
		name: name,
		k:    k,
		ch:   make(chan struct{}),
		body: body,
	}
	k.procs = append(k.procs, p)
	k.push(start, evLaunch, p, nil)
	return p
}

// start creates the process goroutine, parked on its first resume. The
// kernel's evLaunch handler transfers the baton to it immediately after.
func (p *Proc) start() {
	p.started = true
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killProc); ok {
					// Shutdown handshake: the killer waits for this ack on the
					// same channel it sent the kill resume on.
					p.done = true
					p.ch <- struct{}{}
					return
				}
				p.done = true
				p.k.failure = fmt.Errorf("sim: process %s panicked: %v", p.name, r)
				p.k.stopped = true
				p.k.release() // stopped: goes straight to the driver
				return
			}
			// Body returned: this goroutine holds the baton and is about to
			// die, so it keeps the event loop going on the way out.
			p.done = true
			p.k.release()
		}()
		<-p.ch
		if p.kill {
			panic(killProc{})
		}
		p.body(p)
	}()
}

// park yields control and blocks until dispatched again. The caller has
// already recorded the wait state and scheduled any wakeup event. The
// parking goroutine itself carries the event loop forward: if the next
// dispatch is its own it simply continues (no channel operation); if the
// baton goes to another process or the driver it blocks on resume.
func (p *Proc) park() {
	switch p.k.advance(p) {
	case advSelf:
		// Inline continuation: our own wakeup was the next event.
	case advDone:
		// Terminal/pause condition while we hold the baton: wake the
		// driver, then wait like any parked process (the next Run — or
		// Shutdown — will resume or kill us).
		p.k.driver <- struct{}{}
		<-p.ch
	default: // advTransferred
		<-p.ch
	}
	if p.kill {
		panic(killProc{})
	}
	p.waitKind = waitNone
	p.waitSig = nil
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulation cycle.
func (p *Proc) Now() uint64 { return p.k.now }

// Delay advances simulated time by the given number of cycles, modelling
// the process being busy (or idle) for that long. Delay(0) re-schedules
// the process at the current cycle behind already-pending work.
// Delay allocates nothing: it enqueues a typed evDispatch event.
func (p *Proc) Delay(cycles uint64) {
	if p.k.running != p {
		panic("sim: Delay called from outside the process")
	}
	p.k.push(cycles, evDispatch, p, nil)
	p.waitKind = waitDelay
	p.waitCycles = cycles
	p.park()
}

// Wait blocks the process until the signal fires. If the signal fires
// multiple times before the process runs again, the wakeups coalesce.
func (p *Proc) Wait(s *Signal) {
	if p.k.running != p {
		panic("sim: Wait called from outside the process")
	}
	s.waiters = append(s.waiters, p)
	p.waitKind = waitSignal
	p.waitSig = s
	p.park()
}

// Signal is a broadcast wakeup primitive. Processes block on it with
// Proc.Wait; Fire wakes all current waiters at the present cycle.
// The zero value is not usable; create signals with NewSignal.
type Signal struct {
	k       *Kernel
	name    string
	waiters []*Proc
}

// NewSignal creates a signal. The name appears in deadlock reports.
func (k *Kernel) NewSignal(name string) *Signal {
	return &Signal{k: k, name: name}
}

// Fire wakes every process currently waiting on the signal. The waiters
// resume within the current cycle, after all previously scheduled work,
// in the order they registered (deterministic across runs). Fire
// allocates nothing: each wakeup is a typed evDispatch event, and the
// waiter slice's capacity is retained for reuse.
func (s *Signal) Fire() {
	for _, p := range s.waiters {
		s.k.push(0, evDispatch, p, nil)
	}
	// Truncate but keep capacity; also drop *Proc references so finished
	// processes are not pinned by the backing array.
	for i := range s.waiters {
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
}
