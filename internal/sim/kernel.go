// Package sim implements a deterministic discrete-event simulation kernel
// with cycle granularity, used as the substrate for the cycle-accurate
// Eclipse architecture model.
//
// The kernel advances a single global cycle counter (one cycle corresponds
// to one coprocessor clock cycle, 150 MHz in the paper's first instance).
// Two kinds of activity exist:
//
//   - Events: plain callbacks scheduled at an absolute cycle. Events
//     scheduled for the same cycle run in scheduling order, so simulation
//     is fully deterministic.
//   - Processes: hardware threads of control (one per coprocessor, per
//     prefetch engine, per memory port, ...). Each process runs on its own
//     goroutine but the kernel resumes exactly one process at a time with a
//     strict channel handoff, so process code may use ordinary sequential
//     control flow (like the paper's coprocessor pseudo-code) without any
//     data races or nondeterminism.
//
// The kernel is not safe for concurrent use from outside its processes.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Kernel is a discrete-event simulator instance. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now     uint64
	seq     uint64
	events  eventHeap
	procs   []*Proc
	running *Proc // process currently executing, nil inside plain events
	stopped bool
	failure error
}

type event struct {
	at  uint64
	seq uint64 // tie-breaker: schedule order
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulation cycle.
func (k *Kernel) Now() uint64 { return k.now }

// Schedule registers fn to run at the current cycle plus delay.
// A delay of 0 runs fn later within the current cycle, after all
// previously scheduled work for this cycle.
func (k *Kernel) Schedule(delay uint64, fn func()) {
	k.seq++
	heap.Push(&k.events, event{at: k.now + delay, seq: k.seq, fn: fn})
}

// Stop terminates the simulation after the current event completes.
// Pending events are discarded. Stop is typically called by a sink
// process once the application has produced all of its output.
func (k *Kernel) Stop() { k.stopped = true }

// Fail terminates the simulation and makes Run return err.
func (k *Kernel) Fail(err error) {
	k.failure = err
	k.stopped = true
}

// ErrDeadlock is returned by Run when processes remain blocked but no
// events are pending, i.e. the modeled system has deadlocked (for
// example because a stream buffer is too small for the application's
// communication pattern).
type DeadlockError struct {
	Cycle   uint64
	Blocked []string // names and wait states of the blocked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d, blocked: %v", e.Cycle, e.Blocked)
}

// LimitError is returned by Run when the cycle limit was reached before
// the simulation finished.
type LimitError struct {
	Limit uint64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("sim: cycle limit %d reached", e.Limit)
}

// Run executes events until no work remains, Stop or Fail is called, or
// the cycle counter exceeds limit (limit 0 means no limit). It returns
// nil on a clean finish (all processes terminated or Stop called), a
// *DeadlockError if blocked processes remain with no pending events, a
// *LimitError on limit exhaustion, or the error passed to Fail.
func (k *Kernel) Run(limit uint64) error {
	defer k.shutdown()
	for !k.stopped {
		if len(k.events) == 0 {
			if blocked := k.blockedProcs(); len(blocked) > 0 {
				return &DeadlockError{Cycle: k.now, Blocked: blocked}
			}
			return nil // all quiet: clean finish
		}
		e := heap.Pop(&k.events).(event)
		if limit != 0 && e.at > limit {
			return &LimitError{Limit: limit}
		}
		if e.at < k.now {
			panic("sim: event scheduled in the past")
		}
		k.now = e.at
		e.fn()
	}
	return k.failure
}

// blockedProcs reports the names of live processes that are waiting on a
// signal (not terminated, not scheduled).
func (k *Kernel) blockedProcs() []string {
	var out []string
	for _, p := range k.procs {
		if !p.done && p.started {
			out = append(out, p.name+" ["+p.waitState+"]")
		}
	}
	sort.Strings(out)
	return out
}

// shutdown unblocks any still-parked process goroutines so they can
// terminate, preventing goroutine leaks across repeated simulations in
// one Go process (e.g. during tests and benchmarks).
func (k *Kernel) shutdown() {
	for _, p := range k.procs {
		if !p.done && p.started {
			p.kill = true
			p.resume <- struct{}{}
			<-p.yield
		}
	}
}
