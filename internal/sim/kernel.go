// Package sim implements a deterministic discrete-event simulation kernel
// with cycle granularity, used as the substrate for the cycle-accurate
// Eclipse architecture model.
//
// The kernel advances a single global cycle counter (one cycle corresponds
// to one coprocessor clock cycle, 150 MHz in the paper's first instance).
// Two kinds of activity exist:
//
//   - Events: callbacks scheduled at an absolute cycle. Events scheduled
//     for the same cycle run in scheduling order, so simulation is fully
//     deterministic.
//   - Processes: hardware threads of control (one per coprocessor, per
//     prefetch engine, per memory port, ...). Each process runs on its own
//     goroutine but the kernel resumes exactly one process at a time with a
//     strict channel handoff, so process code may use ordinary sequential
//     control flow (like the paper's coprocessor pseudo-code) without any
//     data races or nondeterminism.
//
// # Direct handoff (hot path)
//
// The run loop is not pinned to the goroutine that called Run. It is a
// baton carried by whichever goroutine currently has control: when a
// process parks (Delay/Wait), its own goroutine keeps executing the event
// loop — callbacks run inline, and on the next dispatch event the baton
// passes straight to the target process with a single channel send. The
// old shape (park → wake the driver goroutine → driver dispatches the
// next process) cost two goroutine switches per simulated event; direct
// handoff costs one, and when the next event is the parking process's own
// wakeup (common under Delay) it costs none at all — park returns inline
// with no channel operation. The Run caller ("driver") only regains
// control when the simulation finishes, fails, deadlocks, or pauses at a
// cycle limit. Event pop order is untouched, so execution remains
// bit-identical to the single-driver loop; only the goroutine executing
// each event differs, which the model cannot observe.
//
// # Event representation (hot path)
//
// Events are typed values, not closures: an event carries a kind tag
// (evCallback, evDispatch, evLaunch) plus a *Proc target, so the dominant
// operations — Proc.Delay, Signal.Fire, and process launch — schedule
// events without allocating. Only Kernel.Schedule (arbitrary callbacks,
// the cold path) carries a func() payload supplied by the caller.
//
// Pending events live in one of two structures:
//
//   - a timing wheel of wheelSize per-cycle buckets for near events
//     (delay < wheelSize — bus latencies, message latencies, coprocessor
//     cycle budgets all land here), giving O(1) insertion with no
//     comparisons, and
//   - a value-based binary min-heap (no interface{} boxing) ordered by
//     (cycle, seq) for far-future events.
//
// The run loop merges the two sources by (cycle, seq), so the execution
// order is bit-identical to a single global priority queue: same-cycle
// events run in scheduling order regardless of which structure holds them.
//
// The kernel is not safe for concurrent use from outside its processes;
// independent kernels on independent goroutines are fine (that is how the
// parallel design-space sweeps run).
package sim

import (
	"fmt"
	"sort"
)

// wheelSize is the span of the short-delay timing wheel in cycles. It must
// be a power of two. Delays in [0, wheelSize) take the O(1) bucket path;
// longer delays fall back to the heap. All pending wheel events satisfy
// at ∈ [now, now+wheelSize), so each bucket holds at most one distinct
// cycle at any time.
const wheelSize = 64

// evKind tags a typed event with the action the kernel performs when the
// event's cycle arrives.
type evKind uint8

const (
	// evCallback runs an arbitrary func() (Kernel.Schedule).
	evCallback evKind = iota
	// evDispatch resumes a parked process (Proc.Delay, Signal.Fire).
	evDispatch
	// evLaunch starts a process body for the first time (Kernel.NewProc).
	evLaunch
)

// event is a typed, value-stored simulation event. For evDispatch and
// evLaunch only p is set; for evCallback only fn is set.
type event struct {
	at   uint64
	seq  uint64 // tie-breaker: schedule order
	p    *Proc
	fn   func()
	kind evKind
}

// eventHeap is a value-based binary min-heap ordered by (at, seq). It
// deliberately avoids container/heap, whose interface{}-typed Push/Pop
// box every element and defeat the zero-alloc fast path.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release *Proc / func() references
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// Kernel is a discrete-event simulator instance. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now      uint64
	seq      uint64
	executed uint64 // total events executed, for events/sec reporting

	// wheel buckets hold near events (at - now < wheelSize) keyed by
	// at % wheelSize; wheelLen counts events across all buckets so the
	// run loop can skip the slot scan entirely when the wheel is empty.
	wheel    [wheelSize][]event
	wheelLen int
	// events is the far-future fallback heap.
	events eventHeap

	procs   []*Proc
	running *Proc // process currently executing, nil inside plain events
	stopped bool
	failure error

	// Direct-handoff state. curIdx is the consumed prefix of the current
	// cycle's wheel bucket; it lives on the kernel (not a run-loop stack
	// frame) because the loop migrates between goroutines. driver is the
	// channel on which the Run caller waits while a process goroutine
	// carries the event loop; limit is the active Run cycle limit.
	curIdx int
	driver chan struct{}
	limit  uint64
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{driver: make(chan struct{})}
}

// Now returns the current simulation cycle.
func (k *Kernel) Now() uint64 { return k.now }

// Events returns the total number of events the kernel has executed since
// creation. Dividing by wall-clock time gives the engine's events/sec
// throughput (the denominator of the Mevents/sec benchmark metric).
func (k *Kernel) Events() uint64 { return k.executed }

// Pending returns the number of scheduled events not yet executed.
func (k *Kernel) Pending() int { return k.wheelLen + len(k.events) }

// push enqueues a typed event at now+delay, choosing the wheel bucket for
// near events and the heap otherwise. This is the single scheduling
// chokepoint; it allocates only when a bucket or the heap must grow.
func (k *Kernel) push(delay uint64, kind evKind, p *Proc, fn func()) {
	k.seq++
	e := event{at: k.now + delay, seq: k.seq, p: p, fn: fn, kind: kind}
	if delay < wheelSize {
		slot := e.at & (wheelSize - 1)
		k.wheel[slot] = append(k.wheel[slot], e)
		k.wheelLen++
	} else {
		k.events.push(e)
	}
}

// Schedule registers fn to run at the current cycle plus delay.
// A delay of 0 runs fn later within the current cycle, after all
// previously scheduled work for this cycle.
func (k *Kernel) Schedule(delay uint64, fn func()) {
	k.push(delay, evCallback, nil, fn)
}

// Stop terminates the simulation after the current event completes.
// Pending events are discarded. Stop is typically called by a sink
// process once the application has produced all of its output.
func (k *Kernel) Stop() { k.stopped = true }

// Fail terminates the simulation and makes Run return err.
func (k *Kernel) Fail(err error) {
	k.failure = err
	k.stopped = true
}

// DeadlockError is returned by Run when processes remain blocked but no
// events are pending, i.e. the modeled system has deadlocked (for
// example because a stream buffer is too small for the application's
// communication pattern).
type DeadlockError struct {
	Cycle   uint64
	Blocked []string // names and wait states of the blocked processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at cycle %d, blocked: %v", e.Cycle, e.Blocked)
}

// LimitError is returned by Run when the cycle limit was reached before
// the simulation finished.
type LimitError struct {
	Limit uint64
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("sim: cycle limit %d reached", e.Limit)
}

// Run executes events until no work remains, Stop or Fail is called, or
// the next pending event lies beyond limit (limit 0 means no limit). It
// returns nil on a clean finish (all processes terminated or Stop
// called), a *DeadlockError if blocked processes remain with no pending
// events, a *LimitError on limit exhaustion, or the error passed to Fail.
//
// A *LimitError is a pause, not a termination: no pending event is
// consumed or discarded, and process goroutines stay parked, so calling
// Run again with a higher (or zero) limit resumes exactly where the
// previous call stopped. A caller that abandons a kernel after a
// LimitError should call Shutdown to release its goroutines. Every other
// return value is terminal and shuts the kernel down automatically.
func (k *Kernel) Run(limit uint64) error {
	k.limit = limit
	paused := false
	defer func() {
		// Terminal returns (and panics escaping an event callback) release
		// the parked process goroutines; a LimitError pause keeps them.
		if !paused {
			k.Shutdown()
		}
	}()
	for {
		if k.advance(nil) == advTransferred {
			// A process goroutine carries the event loop now; it hands the
			// baton back here only when a terminal/pause condition holds.
			<-k.driver
		}
		// The driver holds the baton: no process is executing, so the
		// outside-process guards in Delay/Wait must see a nil running.
		k.running = nil
		if k.stopped {
			k.dropConsumed()
			return k.failure
		}
		at, ok := k.nextAt()
		if !ok {
			if blocked := k.blockedProcs(); len(blocked) > 0 {
				return &DeadlockError{Cycle: k.now, Blocked: blocked}
			}
			return nil // all quiet: clean finish
		}
		if limit != 0 && at > limit {
			// Peek-only: the event stays queued so a later Run resumes it.
			paused = true
			return &LimitError{Limit: limit}
		}
	}
}

// Baton-transfer outcomes of advance.
const (
	// advTransferred: the baton was handed to a process goroutine with a
	// channel send; the caller must wait for its own wakeup.
	advTransferred = iota
	// advSelf: the next event was the calling process's own dispatch; it
	// continues inline with no channel operation at all.
	advSelf
	// advDone: stopped, out of events, or at the cycle limit; the driver
	// must evaluate the terminal condition.
	advDone
)

// advance is the event loop, executed by whichever goroutine holds the
// control baton (the Run caller, a process inside park, or an exiting
// process goroutine releasing control). It pops events in exactly the
// (cycle, seq) order of the single-driver loop — callbacks run inline;
// a dispatch or launch transfers the baton and returns. self is the
// process whose goroutine is executing the loop (nil for the driver and
// for exiting processes): a dispatch event for self returns control
// inline instead of round-tripping through channels.
func (k *Kernel) advance(self *Proc) int {
	for !k.stopped {
		slot := k.now & (wheelSize - 1)
		bucket := k.wheel[slot] // re-read each pass: may have grown or moved
		hasW := k.curIdx < len(bucket)
		hasH := len(k.events) > 0 && k.events[0].at == k.now
		if !hasW && !hasH {
			// Current cycle drained: reset the bucket (keeping its capacity
			// for the steady-state zero-alloc path) and advance the clock.
			if k.curIdx > 0 {
				clearEvents(bucket)
				k.wheel[slot] = bucket[:0]
				k.curIdx = 0
			}
			at, ok := k.nextAt()
			if !ok {
				return advDone // finish or deadlock: driver decides
			}
			if k.limit != 0 && at > k.limit {
				return advDone // pause: the event stays queued
			}
			k.now = at
			continue
		}
		var e event
		switch {
		case hasW && hasH:
			if bucket[k.curIdx].seq < k.events[0].seq {
				e = bucket[k.curIdx]
				k.curIdx++
				k.wheelLen--
			} else {
				e = k.events.pop()
			}
		case hasW:
			e = bucket[k.curIdx]
			k.curIdx++
			k.wheelLen--
		default:
			e = k.events.pop()
		}
		k.executed++
		switch e.kind {
		case evDispatch:
			if e.p == self {
				k.running = self
				return advSelf
			}
			k.running = e.p
			e.p.ch <- struct{}{}
			return advTransferred
		case evLaunch:
			e.p.start()
			k.running = e.p
			e.p.ch <- struct{}{}
			return advTransferred
		default:
			k.running = nil
			e.fn()
		}
	}
	return advDone
}

// release is called by a goroutine that holds the baton but cannot take
// it back (a process whose body returned, or a process parking when no
// further event can reach it before a terminal condition): it keeps the
// loop going, handing the baton to the next process or to the driver.
func (k *Kernel) release() {
	if k.advance(nil) == advDone {
		k.driver <- struct{}{}
	}
}

// dropConsumed discards the consumed prefix of the current cycle's wheel
// bucket after a mid-cycle Stop/Fail, so Pending stays honest.
func (k *Kernel) dropConsumed() {
	if k.curIdx == 0 {
		return
	}
	slot := k.now & (wheelSize - 1)
	bucket := k.wheel[slot]
	n := copy(bucket, bucket[k.curIdx:])
	clearEvents(bucket[n:])
	k.wheel[slot] = bucket[:n]
	k.curIdx = 0
}

// nextAt reports the cycle of the earliest pending event across the wheel
// and the heap. The wheel scan starts at the current cycle and walks at
// most wheelSize buckets; since all wheel events lie in [now,
// now+wheelSize), the first non-empty bucket it meets is the earliest.
func (k *Kernel) nextAt() (uint64, bool) {
	at := uint64(0)
	ok := false
	if k.wheelLen > 0 {
		for d := uint64(0); d < wheelSize; d++ {
			t := k.now + d
			if len(k.wheel[t&(wheelSize-1)]) > 0 {
				at, ok = t, true
				break
			}
		}
	}
	if len(k.events) > 0 {
		if h := k.events[0].at; !ok || h < at {
			at, ok = h, true
		}
	}
	return at, ok
}

// clearEvents zeroes event values so consumed buckets do not pin process
// or closure references until the bucket's capacity is reused.
func clearEvents(s []event) {
	for j := range s {
		s[j] = event{}
	}
}

// blockedProcs reports the names of live processes that are waiting on a
// signal (not terminated, not scheduled).
func (k *Kernel) blockedProcs() []string {
	var out []string
	for _, p := range k.procs {
		if !p.done && p.started {
			out = append(out, p.name+" ["+p.waitDesc()+"]")
		}
	}
	sort.Strings(out)
	return out
}

// Shutdown unblocks any still-parked process goroutines so they can
// terminate, preventing goroutine leaks across repeated simulations in
// one Go process (e.g. during tests and benchmarks). Run calls it on
// every terminal return; callers only need it when abandoning a kernel
// after a *LimitError pause. Shutdown is idempotent.
func (k *Kernel) Shutdown() {
	for _, p := range k.procs {
		if !p.done && p.started {
			p.kill = true
			p.ch <- struct{}{}
			<-p.ch
		}
	}
}
