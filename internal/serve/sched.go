package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Config parameterizes the serving subsystem.
type Config struct {
	// Workers is the size of the fixed executor pool — the software
	// analogue of the instance's coprocessor set. Default 2.
	Workers int
	// BaseSlice is the wall-clock budget of one scheduling slice for a
	// weight-1 tenant (the Section 5.3 cycle budget, in time). A tenant
	// of weight w gets w×BaseSlice per turn. Default 5ms.
	BaseSlice time.Duration
	// QueueCap bounds each tenant's admitted-but-unfinished jobs
	// (waiting + running). A full queue rejects new work — the
	// GetSpace-failure path. Default 8.
	QueueCap int
	// DefaultWeight is the weight of tenants not listed in Tenants.
	// Default 1.
	DefaultWeight int
	// MaxBodyBytes caps HTTP request bodies. Default 64 MiB.
	MaxBodyBytes int64
	// FramePoolCap bounds the shared frame pool (frames retained across
	// requests). Default 256.
	FramePoolCap int
	// DecodeWorkers is the default decode worker count for tenants that
	// do not declare one. 1 selects the six-task KPN pipeline; above 1
	// the pipeline-parallel decoder overlaps entropy parse with per-row
	// reconstruction on that many workers. Default 1.
	DecodeWorkers int
	// EncodeWorkers bounds each encode/transcode job's per-frame
	// analysis fan-out (macroblock rows processed concurrently). 0 keeps
	// the media.EncodeWorkers process default (NumCPU); lower it to trade
	// single-job encode latency for cross-job isolation.
	EncodeWorkers int
	// CacheBytes is the result cache's total byte budget. 0 selects the
	// default (256 MiB); negative disables the cache entirely.
	CacheBytes int64
	// CacheMaxAge is the freshness window advertised on cached responses
	// via Cache-Control max-age: how long a downstream tier (the gateway
	// L1) may serve the bytes without an If-None-Match coherency check.
	// Content-addressed bytes never change, so the window bounds staleness
	// of residency (liveness, eviction), not of content. Default 60s.
	CacheMaxAge time.Duration
	// TranscodeSegments is the default segment fan-out for transcode
	// jobs: clips long enough and with usable closed-GOP cuts run up to
	// this many independent decode→encode pipelines in parallel and the
	// bitstreams are stitched back together. 1 disables segmentation
	// (the single fused pipeline); 0 selects min(NumCPU, 8).
	TranscodeSegments int
	// Tenants pre-declares tenants with non-default weight or capacity.
	Tenants []TenantConfig
}

// CacheMode is a tenant's result-cache override.
type CacheMode int

const (
	CacheDefault CacheMode = iota // follow the server-wide setting
	CacheOn
	CacheOff
)

// String names the mode for /varz.
func (m CacheMode) String() string {
	switch m {
	case CacheOn:
		return "on"
	case CacheOff:
		return "off"
	}
	return "default"
}

// TenantConfig declares one tenant's scheduling parameters.
type TenantConfig struct {
	Name              string
	Weight            int       // scheduling-slice multiplier; ≥1
	QueueCap          int       // admission bound; ≥1
	DecodeWorkers     int       // decode engine width; 0 → Config.DecodeWorkers
	Cache             CacheMode // per-tenant result-cache override
	TranscodeSegments int       // segment fan-out; 0 → Config.TranscodeSegments
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.BaseSlice <= 0 {
		c.BaseSlice = 5 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 8
	}
	if c.DefaultWeight <= 0 {
		c.DefaultWeight = 1
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.FramePoolCap <= 0 {
		c.FramePoolCap = 256
	}
	if c.DecodeWorkers <= 0 {
		c.DecodeWorkers = 1
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.CacheMaxAge <= 0 {
		c.CacheMaxAge = 60 * time.Second
	}
	if c.TranscodeSegments <= 0 {
		c.TranscodeSegments = runtime.NumCPU()
		if c.TranscodeSegments > 8 {
			c.TranscodeSegments = 8
		}
	}
	return c
}

// ErrDraining rejects submissions while the scheduler shuts down.
var ErrDraining = errors.New("serve: shutting down")

// QueueFullError is the admission-control rejection: the tenant's
// bounded queue has no space (GetSpace failed). RetryAfter estimates
// when space should free up, for the 429 Retry-After header.
type QueueFullError struct {
	Tenant     string
	Cap        int
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("serve: tenant %q queue full (cap %d)", e.Tenant, e.Cap)
}

type schedState int

const (
	stateRunning schedState = iota
	stateDraining
	stateStopped
)

// tenant is one row of the scheduler's task table.
type tenant struct {
	name          string
	weight        int
	cap           int
	decodeWorkers int
	cacheMode     CacheMode
	xcodeSegments int

	q        []*Job // admitted, waiting (including preempted jobs)
	admitted int    // waiting + running, not yet finished

	// Counters, guarded by the scheduler mutex.
	rejects   uint64
	completed uint64
	errored   uint64
	preempts  uint64
	serviceNs int64   // cumulative wall-clock execution time
	ewmaJobNs float64 // smoothed per-job service time, for Retry-After
}

// Scheduler admits jobs into bounded per-tenant queues and executes them
// on a fixed worker pool. Each worker independently runs a weighted
// round-robin loop over the tenant table with per-job time-slice budgets
// — the paper's distributed task scheduling (Section 5.3) with workers
// in place of coprocessor shells and wall-clock budgets in place of
// cycle budgets.
type Scheduler struct {
	cfg Config
	met *Metrics

	mu       sync.Mutex
	cond     *sync.Cond
	tenants  []*tenant // stable rotation order
	byName   map[string]*tenant
	state    schedState
	admitted int // jobs in the system across all tenants

	workers sync.WaitGroup
}

// NewScheduler starts the worker pool.
func NewScheduler(cfg Config, met *Metrics) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, met: met, byName: map[string]*tenant{}}
	s.cond = sync.NewCond(&s.mu)
	for _, tc := range cfg.Tenants {
		s.tenantLocked(tc.Name, tc.Weight, tc.QueueCap, tc.DecodeWorkers, tc.TranscodeSegments, tc.Cache)
	}
	s.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	return s
}

// tenantLocked returns the named tenant, creating it with the given (or
// default) parameters. Caller holds s.mu or is the constructor.
func (s *Scheduler) tenantLocked(name string, weight, qcap, dworkers, xsegs int, cache CacheMode) *tenant {
	if t, ok := s.byName[name]; ok {
		return t
	}
	if weight <= 0 {
		weight = s.cfg.DefaultWeight
	}
	if qcap <= 0 {
		qcap = s.cfg.QueueCap
	}
	if dworkers <= 0 {
		dworkers = s.cfg.DecodeWorkers
	}
	if xsegs <= 0 {
		xsegs = s.cfg.TranscodeSegments
	}
	t := &tenant{name: name, weight: weight, cap: qcap, decodeWorkers: dworkers, cacheMode: cache, xcodeSegments: xsegs}
	s.tenants = append(s.tenants, t)
	s.byName[name] = t
	return t
}

// DecodeWorkersFor reports the decode worker count for a tenant: its
// declared value if pre-registered, else the config default. Handlers
// call this before building decode/transcode jobs so each tenant's
// requests run on its configured engine.
func (s *Scheduler) DecodeWorkersFor(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.byName[name]; ok {
		return t.decodeWorkers
	}
	return s.cfg.DecodeWorkers
}

// TranscodeSegmentsFor reports the segment fan-out for a tenant's
// transcode jobs: its declared value if pre-registered, else the config
// default. 1 means the single fused pipeline.
func (s *Scheduler) TranscodeSegmentsFor(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.byName[name]; ok {
		return t.xcodeSegments
	}
	return s.cfg.TranscodeSegments
}

// EncodeWorkers reports the server-wide per-job encode analysis
// fan-out (0 = the media.EncodeWorkers process default). Handlers pass
// it into encode and transcode jobs.
func (s *Scheduler) EncodeWorkers() int { return s.cfg.EncodeWorkers }

// CacheEnabledFor reports whether the result cache applies to a
// tenant's requests: the server-wide setting (CacheBytes > 0) unless
// the tenant declared an explicit on/off override.
func (s *Scheduler) CacheEnabledFor(name string) bool {
	s.mu.Lock()
	mode := CacheDefault
	if t, ok := s.byName[name]; ok {
		mode = t.cacheMode
	}
	s.mu.Unlock()
	switch mode {
	case CacheOn:
		return true
	case CacheOff:
		return false
	}
	return s.cfg.CacheBytes > 0
}

// Submit admits a job or rejects it: ErrDraining during shutdown, or a
// *QueueFullError when the tenant's bounded queue has no space.
func (s *Scheduler) Submit(j *Job) error {
	s.mu.Lock()
	if s.state != stateRunning {
		s.mu.Unlock()
		return ErrDraining
	}
	t := s.tenantLocked(j.Tenant, 0, 0, 0, 0, CacheDefault)
	if t.admitted >= t.cap {
		t.rejects++
		ra := s.retryAfterLocked(t)
		s.mu.Unlock()
		s.met.Rejects.Add(1)
		return &QueueFullError{Tenant: t.name, Cap: t.cap, RetryAfter: ra}
	}
	t.admitted++
	s.admitted++
	j.enq = time.Now()
	t.q = append(t.q, j)
	s.mu.Unlock()
	s.met.Requests[j.Kind].Add(1)
	s.cond.Broadcast()
	return nil
}

// retryAfterLocked estimates when the tenant's queue will have space:
// the queue's worth of smoothed per-job service time, shared across the
// worker pool, floored at one second.
func (s *Scheduler) retryAfterLocked(t *tenant) time.Duration {
	est := time.Duration(t.ewmaJobNs) * time.Duration(t.admitted) / time.Duration(s.cfg.Workers)
	if est < time.Second {
		est = time.Second
	}
	return est.Round(time.Second)
}

// worker is one executor: repeatedly pick the next tenant in weighted
// round-robin order, run its head job for one budget slice, then either
// retire or preempt it.
func (s *Scheduler) worker(id int) {
	defer s.workers.Done()
	cursor := id // stagger the rotation start per worker
	for {
		j, t := s.next(&cursor)
		if j == nil {
			return
		}
		s.runSlice(j, t)
	}
}

// next blocks until a job is available (returning it and its tenant) or
// the scheduler is done (nil). The cursor implements this worker's
// round-robin position over the shared tenant table.
func (s *Scheduler) next(cursor *int) (*Job, *tenant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if n := len(s.tenants); n > 0 {
			for i := 0; i < n; i++ {
				t := s.tenants[(*cursor+i)%n]
				if len(t.q) == 0 {
					continue
				}
				*cursor = (*cursor + i + 1) % n
				j := t.q[0]
				t.q[0] = nil
				t.q = t.q[1:]
				return j, t
			}
		}
		if s.state == stateStopped || (s.state == stateDraining && s.admitted == 0) {
			return nil, nil
		}
		s.cond.Wait()
	}
}

// runSlice executes one scheduling turn: open the job's gate for up to
// weight×BaseSlice, then retire it (finished) or preempt it (gate
// closed at the next KPN step boundary, job requeued behind its
// tenant's other work).
func (s *Scheduler) runSlice(j *Job, t *tenant) {
	budget := time.Duration(t.weight) * s.cfg.BaseSlice
	if !j.started {
		j.started = true
		j.firstRun = time.Now()
		go j.run()
	}
	sliceStart := time.Now()
	j.gate.Open()
	timer := time.NewTimer(budget)
	select {
	case <-j.done:
		timer.Stop()
		s.finish(j, t, time.Since(sliceStart))
	case <-timer.C:
		j.gate.Close()
		select {
		case <-j.done: // finished right at the budget boundary
			s.finish(j, t, time.Since(sliceStart))
		default:
			s.preempt(j, t, time.Since(sliceStart))
		}
	}
}

// finish retires a completed job: release its admission space, record
// service and latency, and wake waiters (blocked submitters see space;
// draining workers see the count drop).
func (s *Scheduler) finish(j *Job, t *tenant, slice time.Duration) {
	j.serviceNs += int64(slice)
	latency := time.Since(j.enq)
	_, jerr := j.Result()
	s.met.Latency[j.Kind].Observe(latency)
	if jerr != nil {
		s.met.Errors[j.Kind].Add(1)
	}

	s.mu.Lock()
	t.admitted--
	s.admitted--
	t.serviceNs += j.serviceNs
	if jerr != nil {
		t.errored++
	} else {
		t.completed++
	}
	const alpha = 0.3
	if t.ewmaJobNs == 0 {
		t.ewmaJobNs = float64(j.serviceNs)
	} else {
		t.ewmaJobNs = alpha*float64(j.serviceNs) + (1-alpha)*t.ewmaJobNs
	}
	s.mu.Unlock()
	s.cond.Broadcast()
}

// preempt puts a budget-exhausted job back at the tail of its tenant's
// queue. If the scheduler was hard-stopped meanwhile, the job is
// cancelled and drained instead of requeued.
func (s *Scheduler) preempt(j *Job, t *tenant, slice time.Duration) {
	j.serviceNs += int64(slice)
	j.preempts.Add(1)
	s.mu.Lock()
	if s.state == stateStopped {
		s.mu.Unlock()
		j.Cancel()
		<-j.done
		s.finish(j, t, 0)
		return
	}
	t.preempts++
	t.q = append(t.q, j)
	s.mu.Unlock()
	s.met.Preemptions.Add(1)
	s.cond.Broadcast()
}

// Drain stops admission and waits for in-flight and queued jobs to
// complete. If ctx expires first, remaining queued jobs are failed,
// running jobs are cancelled, and Drain returns ctx.Err(). Always stops
// the worker pool before returning.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.state == stateRunning {
		s.state = stateDraining
	}
	s.mu.Unlock()
	s.cond.Broadcast()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.state = stateStopped
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
	}

	// Hard stop: fail everything still queued, cancel everything running.
	s.mu.Lock()
	s.state = stateStopped
	var orphans []*Job
	for _, t := range s.tenants {
		for _, j := range t.q {
			orphans = append(orphans, j)
			t.admitted--
			t.errored++
			s.admitted--
		}
		t.q = nil
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	for _, j := range orphans {
		if j.started {
			// Preempted mid-run: poison its network; run() closes done.
			j.Cancel()
		} else {
			// Never started: fail directly so its submitter unblocks.
			j.err = ErrDraining
			close(j.done)
		}
		s.met.Errors[j.Kind].Add(1)
	}
	<-done // workers notice stateStopped (running jobs cancelled in preempt)
	return ctx.Err()
}

// SnapshotTenants returns a consistent copy of the tenant table for
// /varz and /metrics.
func (s *Scheduler) SnapshotTenants() []TenantSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, TenantSnapshot{
			Name:              t.name,
			Weight:            t.weight,
			QueueCap:          t.cap,
			DecodeWorkers:     t.decodeWorkers,
			CacheMode:         t.cacheMode.String(),
			TranscodeSegments: t.xcodeSegments,
			QueueDepth:        len(t.q),
			Admitted:          t.admitted,
			Completed:         t.completed,
			Errors:            t.errored,
			Rejects:           t.rejects,
			Preempts:          t.preempts,
			ServiceSec:        float64(t.serviceNs) / 1e9,
			EwmaJobMs:         t.ewmaJobNs / 1e6,
		})
	}
	return out
}

// Running reports whether the scheduler still admits work. The cached
// serving path checks it so a draining server refuses new requests with
// 503 even when the answer is resident.
func (s *Scheduler) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == stateRunning
}

// Admitted reports jobs currently in the system.
func (s *Scheduler) Admitted() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.admitted
}

// StateString names the lifecycle state for /varz and /healthz.
func (s *Scheduler) StateString() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case stateRunning:
		return "running"
	case stateDraining:
		return "draining"
	}
	return "stopped"
}
