package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"eclipse/internal/media"
)

// offlineDecode is the reference for byte-identity checks: the offline
// codec's display-order luma planes.
func offlineDecode(t *testing.T, stream []byte) []byte {
	t.Helper()
	ref, err := media.Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, f := range ref.DisplayFrames() {
		want = append(want, f.Pix...)
	}
	return want
}

// TestHTTPCacheHitAndETag drives the full hit lifecycle over HTTP:
// cold miss, warm hit (byte-identical, same strong ETag), and an
// If-None-Match revalidation answered 304 with no body.
func TestHTTPCacheHitAndETag(t *testing.T) {
	srv := New(Config{Workers: 2, BaseSlice: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	stream, _, _ := testStream(t, 96, 80, 5, nil)
	want := offlineDecode(t, stream)

	r1 := post(t, ts.URL+"/v1/decode", "alice", stream, nil)
	b1 := readAll(t, r1)
	if r1.StatusCode != 200 || r1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold request: %d X-Cache=%q", r1.StatusCode, r1.Header.Get("X-Cache"))
	}
	etag := r1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("miss response missing ETag")
	}
	if !bytes.Equal(b1, want) {
		t.Fatal("miss body differs from the offline decoder")
	}

	r2 := post(t, ts.URL+"/v1/decode", "bob", stream, nil)
	b2 := readAll(t, r2)
	if r2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("warm request X-Cache=%q, want hit", r2.Header.Get("X-Cache"))
	}
	if r2.Header.Get("ETag") != etag {
		t.Fatal("hit ETag differs from miss ETag")
	}
	if !bytes.Equal(b2, want) {
		t.Fatal("hit body differs from the offline decoder")
	}

	r3 := post(t, ts.URL+"/v1/decode", "alice", stream, map[string]string{"If-None-Match": etag})
	b3 := readAll(t, r3)
	if r3.StatusCode != http.StatusNotModified || len(b3) != 0 {
		t.Fatalf("revalidation: %d with %d body bytes, want 304 empty", r3.StatusCode, len(b3))
	}
	if r3.Header.Get("X-Cache") != "revalidated" {
		t.Fatalf("revalidation X-Cache=%q", r3.Header.Get("X-Cache"))
	}

	snap := srv.Cache().Snapshot()
	if snap.Hits < 1 || snap.Misses < 1 || snap.NotModified != 1 {
		t.Fatalf("cache counters hits=%d misses=%d 304=%d", snap.Hits, snap.Misses, snap.NotModified)
	}
	if !strings.Contains(metricsText(t, ts.URL), `eclipse_serve_cache_hits_total{tenant="bob"} 1`) {
		t.Fatal("/metrics missing bob's cache hit")
	}
}

func metricsText(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	return string(readAll(t, resp))
}

// TestHTTPCacheStorm fires many concurrent identical decodes at a cold
// key: the scheduler must admit exactly one underlying job, and every
// response must carry the full correct body.
func TestHTTPCacheStorm(t *testing.T) {
	const n = 24
	srv := New(Config{Workers: 2, BaseSlice: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	stream, _, _ := testStream(t, 96, 80, 6, nil)
	want := offlineDecode(t, stream)

	var wg sync.WaitGroup
	outcomes := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			resp := post(t, ts.URL+"/v1/decode", tenant, stream, nil)
			body := readAll(t, resp)
			if resp.StatusCode != 200 {
				t.Errorf("storm request: %d", resp.StatusCode)
				return
			}
			if !bytes.Equal(body, want) {
				t.Error("storm response differs from the offline decoder")
				return
			}
			outcomes <- resp.Header.Get("X-Cache")
		}(fmt.Sprintf("tenant-%d", i%3))
	}
	wg.Wait()
	close(outcomes)

	counts := map[string]int{}
	for o := range outcomes {
		counts[o]++
	}
	if got := srv.Metrics().Requests[KindDecode].Load(); got != 1 {
		t.Fatalf("scheduler admitted %d decodes for %d identical requests (outcomes %v), want exactly 1", got, n, counts)
	}
	if counts["miss"] != 1 || counts["miss"]+counts["hit"]+counts["collapsed"] != n {
		t.Fatalf("outcome mix %v, want 1 miss and the rest hit/collapsed", counts)
	}
}

// TestHTTPCacheTenantModes checks the per-tenant override and the
// server-wide kill switch.
func TestHTTPCacheTenantModes(t *testing.T) {
	stream, _, _ := testStream(t, 48, 32, 3, nil)

	srv := New(Config{
		Workers:   1,
		BaseSlice: time.Millisecond,
		Tenants:   []TenantConfig{{Name: "raw", Cache: CacheOff}},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	for i := 0; i < 2; i++ {
		resp := post(t, ts.URL+"/v1/decode", "raw", stream, nil)
		readAll(t, resp)
		if got := resp.Header.Get("X-Cache"); got != "bypass" {
			t.Fatalf("CacheOff tenant request %d: X-Cache=%q, want bypass", i, got)
		}
		if resp.Header.Get("ETag") != "" {
			t.Fatal("bypass response must not claim an ETag")
		}
	}
	if got := srv.Metrics().Requests[KindDecode].Load(); got != 2 {
		t.Fatalf("bypass tenant admitted %d jobs, want 2 (no caching)", got)
	}

	off := New(Config{Workers: 1, BaseSlice: time.Millisecond, CacheBytes: -1})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	defer off.Shutdown(context.Background())
	if off.Cache() != nil {
		t.Fatal("negative CacheBytes must disable the cache")
	}
	resp := post(t, tsOff.URL+"/v1/decode", "anyone", stream, nil)
	readAll(t, resp)
	if got := resp.Header.Get("X-Cache"); got != "bypass" {
		t.Fatalf("disabled-cache server: X-Cache=%q, want bypass", got)
	}
}

// TestHTTPCacheOnOffByteIdentical replays the same request mix against
// a cache-enabled and a cache-disabled server and requires bit-equal
// responses — the cache must be invisible in the payload.
func TestHTTPCacheOnOffByteIdentical(t *testing.T) {
	on := New(Config{Workers: 2, BaseSlice: time.Millisecond})
	off := New(Config{Workers: 2, BaseSlice: time.Millisecond, CacheBytes: -1})
	tsOn := httptest.NewServer(on.Handler())
	tsOff := httptest.NewServer(off.Handler())
	defer tsOn.Close()
	defer tsOff.Close()
	defer on.Shutdown(context.Background())
	defer off.Shutdown(context.Background())

	stream, _, frames := testStream(t, 96, 80, 6, nil)
	var raw []byte
	for _, f := range frames {
		raw = append(raw, f.Pix...)
	}
	reqs := []struct {
		path string
		body []byte
	}{
		{"/v1/decode", stream},
		{"/v1/decode", stream}, // second pass: warm on the cached server
		{"/v1/transcode?q=9", stream},
		{"/v1/transcode?q=9", stream},
		{"/v1/encode?w=96&h=80&q=8", raw},
		{"/v1/encode?w=96&h=80&q=8", raw},
	}
	for i, rq := range reqs {
		a := post(t, tsOn.URL+rq.path, "x", rq.body, nil)
		b := post(t, tsOff.URL+rq.path, "x", rq.body, nil)
		ba, bb := readAll(t, a), readAll(t, b)
		if a.StatusCode != 200 || b.StatusCode != 200 {
			t.Fatalf("req %d %s: status %d vs %d", i, rq.path, a.StatusCode, b.StatusCode)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("req %d %s: cache-on response differs from cache-off (%d vs %d bytes)",
				i, rq.path, len(ba), len(bb))
		}
	}
}
