package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"strings"

	"eclipse/internal/media"
)

// CacheKey is the content address of a response: the SHA-256 of the
// canonical preimage built from the operation kind, the codec
// parameters, and the input payload. Two requests share a key exactly
// when the codec is guaranteed to produce byte-identical output for
// them. Decode/encode worker counts are deliberately NOT part of the
// key: output is proven bit-identical across worker counts (the
// parallel-parity guards in internal/media), so tenants on different
// engines share cache entries.
type CacheKey [sha256.Size]byte

// ETag renders the key as a strong HTTP entity tag. Because the key is
// the content address of the request, the tag is valid forever: a
// client that presents it in If-None-Match gets 304 without the server
// even needing a cache entry.
func (k CacheKey) ETag() string { return `"` + hex.EncodeToString(k[:]) + `"` }

// ETagMatches reports whether an If-None-Match header value matches the
// key's entity tag. Exported because the gateway tier answers client
// revalidations locally and revalidates its own L1 entries against the
// backends using the same content-address tags (internal/cluster).
func ETagMatches(header string, k CacheKey) bool { return etagMatches(header, k) }

// etagMatches reports whether an If-None-Match header value matches the
// key's entity tag: a comma-separated list of (possibly weak) tags or
// the wildcard "*".
func etagMatches(header string, k CacheKey) bool {
	want := k.ETag()
	for _, part := range strings.Split(header, ",") {
		tag := strings.TrimSpace(part)
		if tag == "*" {
			return true
		}
		tag = strings.TrimPrefix(tag, "W/")
		if tag == want || tag == strings.Trim(want, `"`) {
			return true
		}
	}
	return false
}

// keyParam is one named codec parameter of the canonical preimage.
type keyParam struct {
	name string
	val  uint64
}

// canonMagic versions the preimage layout; bump it if the schema ever
// changes so stale ETags can never alias new content.
const canonMagic = "eclipse-serve-key/1\x00"

// writeCanonicalKey writes the canonical preimage of a cache key. The
// layout is injective by construction: a fixed magic, the kind byte, a
// parameter count, each parameter as a length-prefixed name plus a
// fixed-width value, and the length-prefixed payload. Any difference in
// kind, parameter schema, parameter value, or payload therefore yields
// a different byte stream (FuzzCacheKeyCanonical pins this).
func writeCanonicalKey(w io.Writer, kind Kind, params []keyParam, payload []byte) {
	var buf [binary.MaxVarintLen64]byte
	uv := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		w.Write(buf[:n])
	}
	io.WriteString(w, canonMagic)
	w.Write([]byte{byte(kind)})
	uv(uint64(len(params)))
	for _, p := range params {
		uv(uint64(len(p.name)))
		io.WriteString(w, p.name)
		binary.BigEndian.PutUint64(buf[:8], p.val)
		w.Write(buf[:8])
	}
	uv(uint64(len(payload)))
	w.Write(payload)
}

// computeCacheKey hashes the canonical preimage without materializing it.
func computeCacheKey(kind Kind, params []keyParam, payload []byte) CacheKey {
	h := sha256.New()
	writeCanonicalKey(h, kind, params, payload)
	var k CacheKey
	h.Sum(k[:0])
	return k
}

// DecodeKey addresses a decode response: output depends only on the
// bitstream. Exported because the gateway tier routes by the same
// content address the cache stores under — identical requests land on
// the backend whose LRU already holds the result (internal/cluster).
func DecodeKey(stream []byte) CacheKey {
	return computeCacheKey(KindDecode, nil, stream)
}

// TranscodeKey addresses a transcode response: the bitstream plus the
// target quantizer (GOP structure and dimensions are inherited from
// the stream itself, so they are already covered by the payload).
func TranscodeKey(q int, stream []byte) CacheKey {
	return computeCacheKey(KindTranscode, []keyParam{{"q", uint64(int64(q))}}, stream)
}

// EncodeKey addresses an encode response: the raw planes plus every
// codec parameter that shapes the bitstream. EncodeWorkers is excluded
// — the two-phase encoder emits the same bits for any count.
func EncodeKey(cfg media.CodecConfig, raw []byte) CacheKey {
	b := uint64(0)
	if cfg.HalfPel {
		b = 1
	}
	return computeCacheKey(KindEncode, []keyParam{
		{"w", uint64(int64(cfg.W))},
		{"h", uint64(int64(cfg.H))},
		{"q", uint64(int64(cfg.Q))},
		{"gopn", uint64(int64(cfg.GOPN))},
		{"gopm", uint64(int64(cfg.GOPM))},
		{"search", uint64(int64(cfg.SearchRange))},
		{"halfpel", b},
	}, raw)
}
