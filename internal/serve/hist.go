// Package serve is the production media-serving subsystem: an HTTP
// front end that admits decode / encode / transcode jobs into bounded
// per-tenant queues and executes them on the goroutine KPN runtime under
// an Eclipse-style scheduler (see DESIGN.md §"Serving" for the full
// mapping). The paper's concepts translate as:
//
//   - worker ⇔ coprocessor: a fixed pool of workers each runs a
//     weighted round-robin loop over the tenant queues (Section 5.3's
//     distributed task scheduling);
//   - tenant queue ⇔ task-table row: the unit the round-robin rotates
//     over, with a per-tenant weight;
//   - time slice ⇔ cycle budget: a job runs for weight×BaseSlice of
//     wall clock, then is preempted at a KPN step boundary (gate) and
//     requeued behind its tenant's other jobs;
//   - 429 ⇔ GetSpace failure: admission is a bounded space claim; a
//     full tenant queue rejects instead of buffering unboundedly, and
//     the client retries later (Retry-After), exactly like a producer
//     blocked on PutSpace backpressure.
package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets. Bucket 0
// holds sub-microsecond observations; bucket i holds durations in
// (2^(i-1), 2^i] microseconds; the last bucket is a catch-all (≈9 min
// and beyond at 39 buckets).
const histBuckets = 40

// Hist is a lock-free latency histogram: fixed power-of-two buckets over
// microseconds, updated with a single atomic add per observation. It is
// safe for concurrent Observe and Snapshot; quantiles are approximate
// (bucket-midpoint), which is all a /metrics endpoint needs.
type Hist struct {
	count atomic.Uint64
	sumNs atomic.Int64
	b     [histBuckets]atomic.Uint64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	i := bits.Len64(uint64(us))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// BucketUpperUS returns bucket i's inclusive upper bound in microseconds.
func BucketUpperUS(i int) uint64 {
	if i <= 0 {
		return 1
	}
	return 1 << uint(i)
}

// Observe records one latency sample.
func (h *Hist) Observe(d time.Duration) {
	h.b[bucketFor(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of samples recorded.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Mean returns the mean latency, or 0 with no samples.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sumNs.Load()) / n)
}

// Quantile returns an approximation of the q-quantile (0 < q ≤ 1): the
// midpoint of the bucket containing the q·count-th sample.
func (h *Hist) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.b[i].Load()
		if cum >= rank {
			hi := BucketUpperUS(i)
			lo := hi / 2
			if i == 0 {
				lo = 0
			}
			return time.Duration((lo + hi) / 2 * uint64(time.Microsecond))
		}
	}
	return time.Duration(BucketUpperUS(histBuckets-1)) * time.Microsecond
}

// HistSnapshot is a consistent-enough copy for rendering: buckets are
// read individually, so a snapshot taken under load may be off by the
// samples that landed mid-read — fine for monitoring.
type HistSnapshot struct {
	Count   uint64
	SumNs   int64
	Buckets [histBuckets]uint64
}

// Snapshot copies the histogram state.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.b[i].Load()
	}
	return s
}
