package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eclipse/internal/kpn"
	"eclipse/internal/media"
)

// testStream encodes a synthetic sequence and returns the bitstream and
// the exact config used, so tests can reproduce server output offline.
func testStream(t *testing.T, w, h, frames int, mut func(*media.CodecConfig)) ([]byte, media.CodecConfig, []*media.Frame) {
	t.Helper()
	src := media.DefaultSource(w, h)
	src.Seed = 7
	fr := media.NewSource(src).Frames(frames)
	cfg := media.DefaultCodec(w, h)
	if mut != nil {
		mut(&cfg)
	}
	stream, _, _, err := media.Encode(cfg, fr)
	if err != nil {
		t.Fatal(err)
	}
	return stream, cfg, fr
}

// ctxGateBody adapts a plain loop body to the scheduler's contract the
// same way kpn.RunContext does: a watcher poisons the gate when the job
// context dies, so a job parked at a closed gate still unwinds on
// Cancel / hard-stop.
func ctxGateBody(step func() (bool, error)) func(ctx context.Context, gate *kpn.Gate) (Result, error) {
	return func(ctx context.Context, gate *kpn.Gate) (Result, error) {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				gate.Fail(ctx.Err())
			case <-stop:
			}
		}()
		for {
			if err := gate.Wait(); err != nil {
				return Result{}, err
			}
			select {
			case <-ctx.Done():
				return Result{}, ctx.Err()
			default:
			}
			done, err := step()
			if err != nil {
				return Result{}, err
			}
			if done {
				return Result{Body: []byte("ok")}, nil
			}
		}
	}
}

// slowJob needs roughly d of service time, preemptible every ~1ms.
func slowJob(tenant string, d time.Duration) *Job {
	deadline := time.Now().Add(d)
	return NewJob(tenant, KindDecode, context.Background(), ctxGateBody(func() (bool, error) {
		time.Sleep(time.Millisecond)
		return !time.Now().Before(deadline), nil
	}))
}

// blockedJob parks (preemptibly) until release is closed.
func blockedJob(tenant string, release <-chan struct{}) *Job {
	return NewJob(tenant, KindDecode, context.Background(), ctxGateBody(func() (bool, error) {
		select {
		case <-release:
			return true, nil
		case <-time.After(time.Millisecond):
			return false, nil
		}
	}))
}

// TestAdmissionTable is the GetSpace table test: with the queue held
// full by blocked jobs, exactly cap submissions are admitted and the
// rest are rejected with 429-shaped QueueFullErrors.
func TestAdmissionTable(t *testing.T) {
	cases := []struct {
		name        string
		cap         int
		submit      int
		wantRejects int
	}{
		{"full-plus-one", 2, 3, 1},
		{"exactly-full", 3, 3, 0},
		{"heavily-over", 1, 5, 4},
		{"deep-queue", 4, 6, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			met := NewMetrics()
			s := NewScheduler(Config{
				Workers:   1,
				BaseSlice: time.Millisecond,
				Tenants:   []TenantConfig{{Name: "bulk", Weight: 1, QueueCap: tc.cap}},
			}, met)
			release := make(chan struct{})
			var rejects int
			for i := 0; i < tc.submit; i++ {
				err := s.Submit(blockedJob("bulk", release))
				if err == nil {
					continue
				}
				qf, ok := err.(*QueueFullError)
				if !ok {
					t.Fatalf("submit %d: got %v, want *QueueFullError", i, err)
				}
				if qf.Tenant != "bulk" || qf.Cap != tc.cap {
					t.Fatalf("reject carries %q/%d, want bulk/%d", qf.Tenant, qf.Cap, tc.cap)
				}
				if qf.RetryAfter < time.Second {
					t.Fatalf("RetryAfter %v below the 1s floor", qf.RetryAfter)
				}
				rejects++
			}
			if rejects != tc.wantRejects {
				t.Fatalf("got %d rejects, want %d", rejects, tc.wantRejects)
			}
			if got := met.Rejects.Load(); got != uint64(tc.wantRejects) {
				t.Fatalf("metrics counted %d rejects, want %d", got, tc.wantRejects)
			}
			close(release)
			if err := s.Drain(context.Background()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNoStarvation checks the weighted-round-robin guarantee: a short
// interactive job admitted behind a saturated bulk tenant completes long
// before the bulk backlog, because the worker preempts bulk slices.
func TestNoStarvation(t *testing.T) {
	met := NewMetrics()
	s := NewScheduler(Config{
		Workers:   1,
		BaseSlice: 2 * time.Millisecond,
		Tenants:   []TenantConfig{{Name: "bulk", Weight: 1, QueueCap: 2}},
	}, met)
	b1 := slowJob("bulk", 100*time.Millisecond)
	b2 := slowJob("bulk", 100*time.Millisecond)
	for _, j := range []*Job{b1, b2} {
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	// Queue is at capacity: a third bulk job is rejected.
	if err := s.Submit(slowJob("bulk", time.Millisecond)); err == nil {
		t.Fatal("third bulk job admitted past the queue cap")
	}
	// The idle tenant's short job must complete while 200ms of bulk
	// backlog is still in flight.
	short := slowJob("interactive", 4*time.Millisecond)
	if err := s.Submit(short); err != nil {
		t.Fatal(err)
	}
	select {
	case <-short.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("interactive job starved behind the bulk backlog")
	}
	if _, err := short.Result(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b2.Done():
		t.Fatal("bulk backlog finished before the interactive job: preemption untested")
	default:
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if b1.Preempts()+b2.Preempts() == 0 {
		t.Fatal("bulk jobs were never preempted")
	}
	for _, ts := range s.SnapshotTenants() {
		if ts.Name == "bulk" && ts.Preempts == 0 {
			t.Fatal("tenant table recorded no bulk preemptions")
		}
	}
}

// TestGracefulDrain checks the soft path: Drain with no deadline lets
// every admitted job finish, then stops the workers; later submissions
// are refused with ErrDraining.
func TestGracefulDrain(t *testing.T) {
	met := NewMetrics()
	s := NewScheduler(Config{Workers: 2, BaseSlice: 2 * time.Millisecond}, met)
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j := slowJob(fmt.Sprintf("t%d", i%2), 10*time.Millisecond)
		jobs = append(jobs, j)
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Fatalf("job %d not finished after drain", i)
		}
		if _, err := j.Result(); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	if err := s.Submit(slowJob("late", time.Millisecond)); err != ErrDraining {
		t.Fatalf("post-drain submit = %v, want ErrDraining", err)
	}
	if got := s.StateString(); got != "stopped" {
		t.Fatalf("state %q after drain, want stopped", got)
	}
}

// TestDrainHardStop checks the deadline path: when the drain budget
// expires, queued jobs fail with ErrDraining and running jobs are
// cancelled — nothing hangs, every submitter unblocks.
func TestDrainHardStop(t *testing.T) {
	met := NewMetrics()
	s := NewScheduler(Config{
		Workers:   1,
		BaseSlice: time.Millisecond,
		Tenants:   []TenantConfig{{Name: "stuck", Weight: 1, QueueCap: 4}},
	}, met)
	release := make(chan struct{}) // never closed: jobs block forever
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j := blockedJob("stuck", release)
		jobs = append(jobs, j)
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Drain = %v, want context.DeadlineExceeded", err)
	}
	for i, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(5 * time.Second):
			t.Fatalf("job %d still hung after hard stop", i)
		}
		if _, err := j.Result(); err == nil {
			t.Fatalf("job %d reported success after hard stop", i)
		}
	}
	if s.Admitted() != 0 {
		t.Fatalf("%d jobs still admitted after hard stop", s.Admitted())
	}
}

// post sends a request with the given tenant and returns the response.
func post(t *testing.T, url, tenant string, body []byte, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHTTPEndToEnd drives the three media endpoints over HTTP and
// verifies the responses are bit-identical to the offline codec.
func TestHTTPEndToEnd(t *testing.T) {
	srv := New(Config{Workers: 2, BaseSlice: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	stream, _, frames := testStream(t, 96, 80, 9, nil)

	t.Run("decode", func(t *testing.T) {
		resp := post(t, ts.URL+"/v1/decode", "alice", stream, nil)
		body := readAll(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("decode: %d %s", resp.StatusCode, body)
		}
		ref, err := media.Decode(stream)
		if err != nil {
			t.Fatal(err)
		}
		var want []byte
		for _, f := range ref.DisplayFrames() {
			want = append(want, f.Pix...)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("decode body differs from the reference decoder (%d vs %d bytes)", len(body), len(want))
		}
		if got := resp.Header.Get("X-Seq-Frames"); got != "9" {
			t.Fatalf("X-Seq-Frames = %q, want 9", got)
		}
	})

	t.Run("encode", func(t *testing.T) {
		var raw []byte
		for _, f := range frames {
			raw = append(raw, f.Pix...)
		}
		resp := post(t, ts.URL+"/v1/encode?w=96&h=80&q=8&gopm=3", "alice", raw, nil)
		body := readAll(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("encode: %d %s", resp.StatusCode, body)
		}
		cfg := media.DefaultCodec(96, 80)
		cfg.Q = 8
		want, _, _, err := media.Encode(cfg, frames)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("encode body differs from the batch encoder (%d vs %d bytes)", len(body), len(want))
		}
	})

	t.Run("transcode", func(t *testing.T) {
		resp := post(t, ts.URL+"/v1/transcode?q=9", "bob", stream, nil)
		body := readAll(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("transcode: %d %s", resp.StatusCode, body)
		}
		ref, err := media.Decode(stream)
		if err != nil {
			t.Fatal(err)
		}
		cfg := TranscodeConfig(ref.Seq, 9)
		want, _, _, err := media.Encode(cfg, ref.DisplayFrames())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("transcode body differs from the offline re-encode (%d vs %d bytes)", len(body), len(want))
		}
		if got := resp.Header.Get("X-Seq-Q"); got != "9" {
			t.Fatalf("X-Seq-Q = %q, want 9", got)
		}
	})
}

// TestHTTPAdmission saturates one tenant's queue and checks the 429 path
// (with Retry-After) while another tenant's request still succeeds.
func TestHTTPAdmission(t *testing.T) {
	srv := New(Config{
		Workers:   1,
		BaseSlice: time.Millisecond,
		Tenants:   []TenantConfig{{Name: "bulk", Weight: 1, QueueCap: 1}},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	release := make(chan struct{})
	if err := srv.Scheduler().Submit(blockedJob("bulk", release)); err != nil {
		t.Fatal(err)
	}
	defer close(release)

	stream, _, _ := testStream(t, 48, 32, 3, nil)
	resp := post(t, ts.URL+"/v1/decode", "bulk", stream, nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated tenant got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	resp = post(t, ts.URL+"/v1/decode", "fast", stream, nil)
	body := readAll(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("idle tenant got %d %s, want 200", resp.StatusCode, body)
	}
}

// TestHTTPErrors covers the client-error mapping: malformed bitstreams,
// bad parameters, and deadline overruns.
func TestHTTPErrors(t *testing.T) {
	srv := New(Config{Workers: 1, BaseSlice: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	stream, _, _ := testStream(t, 96, 80, 24, nil)
	cases := []struct {
		name string
		url  string
		body []byte
		hdr  map[string]string
		want int
	}{
		{"bad-magic", "/v1/decode", []byte("not a bitstream"), nil, 400},
		{"encode-no-dims", "/v1/encode", make([]byte, 96*80), nil, 400},
		{"encode-bad-plane", "/v1/encode?w=96&h=80", make([]byte, 100), nil, 400},
		{"transcode-no-q", "/v1/transcode", stream, nil, 400},
		{"transcode-bad-q", "/v1/transcode?q=99", stream, nil, 400},
		{"bad-timeout-header", "/v1/decode", stream, map[string]string{"X-Timeout-Ms": "soon"}, 400},
		{"deadline", "/v1/decode", stream, map[string]string{"X-Timeout-Ms": "1"}, 504},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+tc.url, "", tc.body, tc.hdr)
			body := readAll(t, resp)
			if resp.StatusCode != tc.want {
				t.Fatalf("got %d %s, want %d", resp.StatusCode, body, tc.want)
			}
		})
	}
}

// TestHTTPObservability smoke-tests /healthz, /varz and /metrics, then
// verifies shutdown flips readiness and refuses new work with 503.
func TestHTTPObservability(t *testing.T) {
	srv := New(Config{Workers: 1, BaseSlice: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stream, _, _ := testStream(t, 48, 32, 3, nil)
	resp := post(t, ts.URL+"/v1/decode", "alice", stream, nil)
	readAll(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("warmup decode: %d", resp.StatusCode)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, hz); hz.StatusCode != 200 || !strings.Contains(string(body), "running") {
		t.Fatalf("healthz: %d %q", hz.StatusCode, body)
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, rz); rz.StatusCode != 200 || !strings.Contains(string(body), "running") {
		t.Fatalf("readyz: %d %q", rz.StatusCode, body)
	}
	if rz.Header.Get(DrainingHeader) != "" {
		t.Fatalf("running readyz must not carry %s", DrainingHeader)
	}

	vz, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(readAll(t, vz), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != "running" || snap.Workers != 1 {
		t.Fatalf("varz snapshot %+v", snap)
	}
	var decoded *KindSnapshot
	for i := range snap.Kinds {
		if snap.Kinds[i].Kind == "decode" {
			decoded = &snap.Kinds[i]
		}
	}
	if decoded == nil || decoded.Requests != 1 || decoded.P50Ms <= 0 {
		t.Fatalf("varz decode row %+v", decoded)
	}

	mz, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtext := string(readAll(t, mz))
	for _, want := range []string{
		`eclipse_serve_requests_total{kind="decode"} 1`,
		`eclipse_serve_latency_seconds_count{kind="decode"} 1`,
		`eclipse_serve_queue_depth{tenant="alice"} 0`,
		"eclipse_serve_uptime_seconds",
	} {
		if !strings.Contains(mtext, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, mtext)
		}
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Liveness stays 200 through (and past) the drain; readiness flips to
	// 503 with the draining marker so a gateway stops routing here.
	hz2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, hz2)
	if hz2.StatusCode != 200 {
		t.Fatalf("healthz after shutdown: %d, want 200 (liveness, not readiness)", hz2.StatusCode)
	}
	rz2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, rz2)
	if rz2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d, want 503", rz2.StatusCode)
	}
	if rz2.Header.Get(DrainingHeader) != "1" {
		t.Fatalf("draining readyz must carry %s: 1, got %q", DrainingHeader, rz2.Header.Get(DrainingHeader))
	}
	if rz2.Header.Get("Retry-After") == "" {
		t.Fatal("draining readyz must carry Retry-After")
	}
	resp = post(t, ts.URL+"/v1/decode", "alice", stream, nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("decode after shutdown: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(DrainingHeader) != "1" {
		t.Fatalf("draining 503 must carry %s: 1", DrainingHeader)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 must carry Retry-After")
	}
}

// TestHistogram checks the lock-free histogram's bucketing, mean, and
// quantile approximation.
func TestHistogram(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zero")
	}
	// 100 samples at ~1ms, 10 at ~100ms: p50 lands in the 1ms bucket
	// (bucket (512µs,1024µs], midpoint 768µs), p99 near 100ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if h.Count() != 110 {
		t.Fatalf("count %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Fatalf("p50 %v outside the 1ms bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 50*time.Millisecond || p99 > 200*time.Millisecond {
		t.Fatalf("p99 %v outside the 100ms bucket", p99)
	}
	if p50 > p99 {
		t.Fatal("quantiles not monotone")
	}
	mean := h.Mean()
	want := (100*time.Millisecond*10 + time.Millisecond*100) / 110
	if mean < want/2 || mean > want*2 {
		t.Fatalf("mean %v, want ≈%v", mean, want)
	}
	snap := h.Snapshot()
	var total uint64
	for _, b := range snap.Buckets {
		total += b
	}
	if total != snap.Count || snap.Count != 110 {
		t.Fatalf("snapshot buckets sum %d, count %d", total, snap.Count)
	}
	// Extremes.
	if bucketFor(0) != 0 || bucketFor(-time.Second) != 0 {
		t.Fatal("non-positive durations must land in bucket 0")
	}
	if bucketFor(365*24*time.Hour) != histBuckets-1 {
		t.Fatal("huge durations must land in the catch-all bucket")
	}
}
