package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eclipse/internal/media"
)

// TestCacheKeyDistinct pins the injectivity the keying schema promises:
// any difference in kind, parameter, or payload must change the key,
// and worker count must NOT be part of it.
func TestCacheKeyDistinct(t *testing.T) {
	stream := []byte("fake-bitstream-bytes")
	cfg := media.DefaultCodec(48, 32)
	keys := map[CacheKey]string{}
	add := func(name string, k CacheKey) {
		if prev, ok := keys[k]; ok {
			t.Fatalf("key collision: %s vs %s", prev, name)
		}
		keys[k] = name
	}
	add("decode", DecodeKey(stream))
	add("decode-other-stream", DecodeKey([]byte("fake-bitstream-bytes2")))
	add("transcode-q4", TranscodeKey(4, stream))
	add("transcode-q5", TranscodeKey(5, stream))
	add("encode", EncodeKey(cfg, stream))
	cq := cfg
	cq.Q++
	add("encode-q", EncodeKey(cq, stream))
	ch := cfg
	ch.HalfPel = !ch.HalfPel
	add("encode-halfpel", EncodeKey(ch, stream))
	cg := cfg
	cg.GOPM++
	add("encode-gopm", EncodeKey(cg, stream))

	if DecodeKey(stream) != DecodeKey(append([]byte(nil), stream...)) {
		t.Fatal("identical inputs must produce identical keys")
	}
	// Worker counts must not affect the key: output is bit-identical
	// across engine widths, so tenants on different engines share entries.
	old := media.EncodeWorkers
	media.EncodeWorkers = 7
	k7 := EncodeKey(cfg, stream)
	media.EncodeWorkers = old
	if EncodeKey(cfg, stream) != k7 {
		t.Fatal("worker count leaked into the cache key")
	}
}

// TestETagMatches covers the If-None-Match grammar against the key's
// strong tag.
func TestETagMatches(t *testing.T) {
	k := DecodeKey([]byte("x"))
	for _, tc := range []struct {
		header string
		want   bool
	}{
		{k.ETag(), true},
		{"*", true},
		{`"nope", ` + k.ETag(), true},
		{"W/" + k.ETag(), true},
		{`"nope"`, false},
		{"", false},
	} {
		if got := etagMatches(tc.header, k); got != tc.want {
			t.Errorf("etagMatches(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// stormKeys builds n distinct keys that all land in the given shard, so
// eviction tests can exercise one LRU list deterministically.
func shardKeys(c *Cache, shard, n int) []CacheKey {
	var out []CacheKey
	for i := 0; len(out) < n; i++ {
		k := DecodeKey([]byte(fmt.Sprintf("key-%d", i)))
		if int(k[0])&(cacheShardCount-1) == shard {
			out = append(out, k)
		}
	}
	return out
}

// TestCacheLRUEviction fills one shard past its budget and checks the
// oldest entries leave first, byte accounting stays exact, and the
// counters attribute evictions to the filling tenant.
func TestCacheLRUEviction(t *testing.T) {
	const bodyLen = 1000
	entrySize := int64(bodyLen + entryOverhead)
	// Budget for exactly 3 entries per shard.
	c := NewCache(3 * entrySize * cacheShardCount)
	keys := shardKeys(c, 0, 5)
	body := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, bodyLen) }
	for i := 0; i < 4; i++ {
		c.put(keys[i], "alice", Result{Body: body(i)})
	}
	// 4 fills into a 3-entry shard: keys[0] (LRU tail) must be gone.
	if _, ok := c.lookup(keys[0], "alice", false); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if got := c.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := c.ResidentBytes(); got != 3*entrySize {
		t.Fatalf("resident bytes %d, want %d", got, 3*entrySize)
	}
	// Touch keys[1] so keys[2] becomes the tail, then overflow again.
	if e, ok := c.lookup(keys[1], "alice", false); !ok {
		t.Fatal("keys[1] should be resident")
	} else {
		e.release(c)
	}
	c.put(keys[4], "bob", Result{Body: body(4)})
	if _, ok := c.lookup(keys[2], "alice", false); ok {
		t.Fatal("LRU order ignored the recency touch")
	}
	if e, ok := c.lookup(keys[1], "alice", false); !ok {
		t.Fatal("recently touched entry evicted")
	} else {
		e.release(c)
	}
	snap := c.Snapshot()
	if snap.Entries != 3 || snap.Evictions != 2 {
		t.Fatalf("snapshot entries=%d evictions=%d, want 3/2", snap.Entries, snap.Evictions)
	}
	var alice *CacheTenantSnapshot
	for i := range snap.Tenants {
		if snap.Tenants[i].Name == "alice" {
			alice = &snap.Tenants[i]
		}
	}
	if alice == nil || alice.Evictions != 2 {
		t.Fatalf("alice eviction attribution: %+v", alice)
	}
}

// TestCacheTooLarge checks oversized results are skipped, not force-fed
// through a shard wipe.
func TestCacheTooLarge(t *testing.T) {
	c := NewCache(cacheShardCount * 1024)
	k := DecodeKey([]byte("big"))
	c.put(k, "a", Result{Body: make([]byte, 4096)})
	if _, ok := c.lookup(k, "a", false); ok {
		t.Fatal("oversized entry was cached")
	}
	if c.tooLarge.Load() != 1 {
		t.Fatal("too-large fill not counted")
	}
}

// TestSlabPool checks class rounding and buffer identity on reuse.
func TestSlabPool(t *testing.T) {
	var p slabPool
	b := p.get(1000)
	if len(b) != 1000 || cap(b) != 1024 {
		t.Fatalf("len/cap = %d/%d, want 1000/1024", len(b), cap(b))
	}
	p.put(b)
	b2 := p.get(700) // same class: must reuse the recycled slab
	if &b2[:1][0] != &b[:1][0] {
		t.Fatal("slab not recycled within its class")
	}
	if len(b2) != 700 {
		t.Fatalf("recycled slab len %d, want 700", len(b2))
	}
	p.put(make([]byte, 1000)) // non-power-of-two cap: dropped
	b3 := p.get(1000)
	if cap(b3) != 1024 {
		t.Fatalf("mis-sized slab entered the pool (cap %d)", cap(b3))
	}
}

// flightWaiters polls the key's flight until it has n parked followers;
// tests use it to make promotion scenarios deterministic.
func (c *Cache) flightWaiters(key CacheKey, n int) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c.flights.mu.Lock()
		f := c.flights.m[key]
		ok := f != nil && f.waiters >= n
		c.flights.mu.Unlock()
		if ok {
			return true
		}
		time.Sleep(100 * time.Microsecond)
	}
	return false
}

// TestCacheStormSingleRun is the collapse guarantee: N concurrent
// fetches of one cold key execute the runner exactly once, and every
// request gets the full body.
func TestCacheStormSingleRun(t *testing.T) {
	const n = 64
	c := NewCache(1 << 20)
	key := DecodeKey([]byte("storm"))
	want := bytes.Repeat([]byte{0xAB}, 4096)
	var runs atomic.Int32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, release, _, err := c.Fetch(context.Background(), key, "t", func() (Result, error) {
				runs.Add(1)
				time.Sleep(5 * time.Millisecond) // hold the flight open
				return Result{Body: want}, nil
			})
			if err != nil {
				errs <- err
				return
			}
			defer release()
			if !bytes.Equal(res.Body, want) {
				errs <- errors.New("wrong body")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("runner executed %d times, want exactly 1", got)
	}
	snap := c.Snapshot()
	if snap.Misses+snap.Hits != n || snap.Misses < 1 {
		t.Fatalf("hits %d + misses %d != %d requests", snap.Hits, snap.Misses, n)
	}
	if snap.Collapsed+snap.Hits != n-1 {
		t.Fatalf("collapsed %d + hits %d, want %d non-leaders", snap.Collapsed, snap.Hits, n-1)
	}
}

// TestCacheLeaderFailurePromotion kills the leader with a
// leader-specific error while followers are parked: exactly one
// follower must be promoted, rerun the work, and feed everyone else.
func TestCacheLeaderFailurePromotion(t *testing.T) {
	const n = 8
	c := NewCache(1 << 20)
	key := DecodeKey([]byte("promote"))
	want := []byte("recovered")
	var runs atomic.Int32
	run := func() (Result, error) {
		if runs.Add(1) == 1 {
			// First leader: wait for all followers to park, then die the
			// way a disconnected client does.
			if !c.flightWaiters(key, n-1) {
				return Result{}, errors.New("followers never parked")
			}
			return Result{}, context.Canceled
		}
		return Result{Body: want}, nil
	}
	var wg sync.WaitGroup
	var canceled, served atomic.Int32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, release, _, err := c.Fetch(context.Background(), key, "t", run)
			switch {
			case errors.Is(err, context.Canceled):
				canceled.Add(1)
			case err != nil:
				t.Error(err)
			default:
				defer release()
				if !bytes.Equal(res.Body, want) {
					t.Error("wrong body after promotion")
				}
				served.Add(1)
			}
		}()
	}
	wg.Wait()
	if canceled.Load() != 1 || served.Load() != n-1 {
		t.Fatalf("canceled=%d served=%d, want 1/%d", canceled.Load(), served.Load(), n-1)
	}
	if runs.Load() != 2 {
		t.Fatalf("runner executed %d times, want 2 (failed leader + promoted follower)", runs.Load())
	}
	if c.promotions.Load() != 1 {
		t.Fatalf("promotions = %d, want 1", c.promotions.Load())
	}
}

// TestCacheDeterministicErrorBroadcast checks that an input-determined
// failure (a malformed bitstream fails for every requester) is
// broadcast to all followers instead of promoting them into rerunning
// doomed work.
func TestCacheDeterministicErrorBroadcast(t *testing.T) {
	const n = 8
	c := NewCache(1 << 20)
	key := DecodeKey([]byte("bad"))
	wantErr := fmt.Errorf("parse: %w", media.ErrBitstream)
	var runs atomic.Int32
	run := func() (Result, error) {
		runs.Add(1)
		if !c.flightWaiters(key, n-1) {
			return Result{}, errors.New("followers never parked")
		}
		return Result{}, wantErr
	}
	var wg sync.WaitGroup
	var failed atomic.Int32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, err := c.Fetch(context.Background(), key, "t", run)
			if errors.Is(err, media.ErrBitstream) {
				failed.Add(1)
			} else {
				t.Errorf("got %v, want bitstream error", err)
			}
		}()
	}
	wg.Wait()
	if failed.Load() != n || runs.Load() != 1 {
		t.Fatalf("failed=%d runs=%d, want %d/1", failed.Load(), runs.Load(), n)
	}
	if _, ok := c.lookup(key, "t", false); ok {
		t.Fatal("failed result must not be cached")
	}
}

// TestCacheFollowerContextDeath checks a follower whose own context
// dies leaves the flight without stranding the key, and the last leaver
// of a leaderless flight retires it.
func TestCacheFollowerContextDeath(t *testing.T) {
	c := NewCache(1 << 20)
	key := DecodeKey([]byte("leave"))
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // leader: blocks until released
		defer wg.Done()
		_, rel, _, err := c.Fetch(context.Background(), key, "t", func() (Result, error) {
			<-release
			return Result{Body: []byte("ok")}, nil
		})
		if err != nil {
			t.Error(err)
		} else {
			rel()
		}
	}()
	go func() { // follower: cancelled while parked
		defer wg.Done()
		if !c.flightWaiters(key, 0) { // flight exists once leader joined
			t.Error("flight never appeared")
		}
		_, _, _, err := c.Fetch(ctx, key, "t", func() (Result, error) {
			return Result{}, errors.New("follower must not run")
		})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Error(err)
		}
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	time.Sleep(2 * time.Millisecond)
	close(release)
	wg.Wait()
	c.flights.mu.Lock()
	left := len(c.flights.m)
	c.flights.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d flights leaked", left)
	}
}

// TestCacheEvictionAliasingStress is the ownership-discipline stress:
// heavy fills force constant eviction and slab recycling while readers
// hold and verify entry bodies. Any aliasing of a recycled slab into a
// held entry corrupts the byte pattern and fails the test (run under
// -race via make race).
func TestCacheEvictionAliasingStress(t *testing.T) {
	const (
		nKeys   = 64
		bodyLen = 2048
		workers = 8
	)
	// Budget small enough that only a handful of entries fit: maximum
	// eviction churn.
	c := NewCache(int64(cacheShardCount * 3 * (bodyLen + entryOverhead)))
	keyOf := make([]CacheKey, nKeys)
	for i := range keyOf {
		keyOf[i] = DecodeKey([]byte(fmt.Sprintf("stress-%d", i)))
	}
	bodyOf := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, bodyLen) }

	var wg sync.WaitGroup
	stop := time.Now().Add(200 * time.Millisecond)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(stop) {
				i := rng.Intn(nKeys)
				res, release, _, err := c.Fetch(context.Background(), keyOf[i], "t", func() (Result, error) {
					return Result{Body: bodyOf(i)}, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if len(res.Body) != bodyLen {
					t.Errorf("truncated body: %d bytes", len(res.Body))
					release()
					return
				}
				for _, b := range res.Body {
					if b != byte(i) {
						t.Errorf("aliased body for key %d: found byte %d", i, b)
						release()
						return
					}
				}
				release()
			}
		}(int64(w))
	}
	wg.Wait()
	if c.evictions.Load() == 0 {
		t.Fatal("stress produced no evictions; budget too large to test aliasing")
	}
	// All readers released: resident bytes must match the shard sums and
	// per-tenant attribution.
	snap := c.Snapshot()
	var tenantResident int64
	for _, ts := range snap.Tenants {
		tenantResident += ts.ResidentBytes
	}
	if tenantResident != snap.ResidentBytes {
		t.Fatalf("tenant resident %d != shard resident %d", tenantResident, snap.ResidentBytes)
	}
}

// FuzzCacheKeyCanonical fuzzes the canonical preimage: two parameter
// tuples that differ anywhere must never serialize to the same bytes
// (and therefore can never collide as keys, short of SHA-256 breaking).
func FuzzCacheKeyCanonical(f *testing.F) {
	f.Add(byte(0), "q", uint64(4), []byte("s"), byte(1), "q", uint64(5), []byte("s"))
	f.Add(byte(0), "a", uint64(1), []byte(""), byte(0), "aa", uint64(1), []byte(""))
	f.Add(byte(2), "w", uint64(48), []byte("xy"), byte(2), "w", uint64(48), []byte("xy"))
	f.Fuzz(func(t *testing.T, k1 byte, n1 string, v1 uint64, p1 []byte, k2 byte, n2 string, v2 uint64, p2 []byte) {
		var b1, b2 bytes.Buffer
		writeCanonicalKey(&b1, Kind(k1%byte(nKinds)), []keyParam{{n1, v1}}, p1)
		writeCanonicalKey(&b2, Kind(k2%byte(nKinds)), []keyParam{{n2, v2}}, p2)
		same := k1%byte(nKinds) == k2%byte(nKinds) && n1 == n2 && v1 == v2 && bytes.Equal(p1, p2)
		if same != bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("canonical preimage not injective: same=%v for (%d,%q,%d,%q) vs (%d,%q,%d,%q)",
				same, k1, n1, v1, p1, k2, n2, v2, p2)
		}
		if same && computeCacheKey(Kind(k1%byte(nKinds)), []keyParam{{n1, v1}}, p1) !=
			computeCacheKey(Kind(k2%byte(nKinds)), []keyParam{{n2, v2}}, p2) {
			t.Fatal("equal tuples must produce equal keys")
		}
	})
}
