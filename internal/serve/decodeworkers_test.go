package serve

// End-to-end coverage for the per-tenant decode-engine selection: a
// tenant configured with DecodeWorkers > 1 runs its decode and
// transcode requests on the pipeline-parallel decoder while a
// DecodeWorkers = 1 tenant stays on the six-task KPN pipeline — and
// both must produce responses bit-identical to the reference decoder,
// concurrently, under one scheduler and one shared frame pool.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"eclipse/internal/media"
)

// TestDecodeWorkersPlumbing checks the config plumbing: per-tenant
// declarations override the server default, undeclared tenants inherit
// it, and the value lands in the tenant snapshot.
func TestDecodeWorkersPlumbing(t *testing.T) {
	met := NewMetrics()
	s := NewScheduler(Config{
		Workers:       1,
		DecodeWorkers: 3,
		Tenants: []TenantConfig{
			{Name: "gold", Weight: 4, DecodeWorkers: 4},
			{Name: "bronze", Weight: 1, DecodeWorkers: 1},
			{Name: "plain", Weight: 1}, // inherits the config default
		},
	}, met)
	defer s.Drain(context.Background())

	cases := map[string]int{
		"gold":    4,
		"bronze":  1,
		"plain":   3,
		"unknown": 3, // not registered: config default
	}
	for name, want := range cases {
		if got := s.DecodeWorkersFor(name); got != want {
			t.Errorf("DecodeWorkersFor(%q) = %d, want %d", name, got, want)
		}
	}
	for _, snap := range s.SnapshotTenants() {
		if want := cases[snap.Name]; snap.DecodeWorkers != want {
			t.Errorf("snapshot %q decode_workers = %d, want %d", snap.Name, snap.DecodeWorkers, want)
		}
	}
}

// TestHTTPTwoTenantDecodeWorkers runs two tenants with different decode
// engines concurrently against one server and requires every response —
// decode and transcode, from either engine — to be bit-identical to the
// offline reference.
func TestHTTPTwoTenantDecodeWorkers(t *testing.T) {
	srv := New(Config{
		Workers:   2,
		BaseSlice: time.Millisecond,
		Tenants: []TenantConfig{
			{Name: "gold", Weight: 4, QueueCap: 16, DecodeWorkers: 4},
			{Name: "bronze", Weight: 1, QueueCap: 16, DecodeWorkers: 1},
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	stream, _, _ := testStream(t, 96, 80, 9, func(c *media.CodecConfig) {
		c.GOPM = 3
		c.HalfPel = true
	})

	// Offline references.
	ref, err := media.Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	var wantRaw []byte
	for _, f := range ref.DisplayFrames() {
		wantRaw = append(wantRaw, f.Pix...)
	}
	xcfg := TranscodeConfig(ref.Seq, 9)
	wantXcode, _, _, err := media.Encode(xcfg, ref.DisplayFrames())
	if err != nil {
		t.Fatal(err)
	}

	const perTenant = 6
	var wg sync.WaitGroup
	errs := make(chan error, 4*perTenant)
	hit := func(tenant, url string, want []byte) {
		defer wg.Done()
		resp := post(t, url, tenant, stream, nil)
		body := readAll(t, resp)
		if resp.StatusCode != 200 {
			errs <- fmt.Errorf("%s %s: status %d: %s", tenant, url, resp.StatusCode, body)
			return
		}
		if !bytes.Equal(body, want) {
			errs <- fmt.Errorf("%s %s: body differs from reference (%d vs %d bytes)", tenant, url, len(body), len(want))
		}
	}
	for i := 0; i < perTenant; i++ {
		for _, tenant := range []string{"gold", "bronze"} {
			wg.Add(2)
			go hit(tenant, ts.URL+"/v1/decode", wantRaw)
			go hit(tenant, ts.URL+"/v1/transcode?q=9", wantXcode)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
