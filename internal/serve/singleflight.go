package serve

import (
	"context"
	"errors"
	"sync"
)

// Singleflight collapse: concurrent requests for the same cache key
// cost one decode. The first requester becomes the flight's leader and
// submits the real job through admission control; followers park on the
// leader's completion channel without consuming scheduler slices or
// admission space. The interaction with admission is deliberate — a
// 1000-request storm on one key admits exactly one job, so the tenant
// queues (the GetSpace analogue) see popular content as a single unit
// of work.
//
// Leadership is not sticky: a leader that fails for reasons specific to
// its own request — its client disconnected, its deadline expired, its
// tenant's queue was full, the server is draining — abdicates, and one
// parked follower is promoted to lead a fresh attempt instead of the
// key being stranded. Deterministic failures (a malformed bitstream
// produces the same error for every requester) are broadcast to all
// followers instead.

// cacheFlight is one in-flight key. All state transitions happen under
// the flightTable mutex; doneCh/promoteCh carry the cross-goroutine
// signals. Invariant: at most one promotion token is outstanding,
// because only the current leader can abdicate and abdication clears
// hasLeader until a follower claims it.
type cacheFlight struct {
	doneCh    chan struct{} // closed on terminal completion
	promoteCh chan struct{} // cap 1; a token transfers leadership
	res       Result
	err       error
	waiters   int
	hasLeader bool
}

// flightTable maps keys to their in-flight state. A single mutex is
// enough: it is touched only on cache misses, and a same-key storm
// serializes on its flight either way.
type flightTable struct {
	mu sync.Mutex
	m  map[CacheKey]*cacheFlight
}

// join returns the key's flight and whether the caller leads it.
func (t *flightTable) join(key CacheKey) (*cacheFlight, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.m[key]; ok {
		f.waiters++
		return f, false
	}
	f := &cacheFlight{
		doneCh:    make(chan struct{}),
		promoteCh: make(chan struct{}, 1),
		hasLeader: true,
	}
	t.m[key] = f
	return f, true
}

// complete publishes the terminal result, removes the flight, and wakes
// every follower.
func (t *flightTable) complete(key CacheKey, f *cacheFlight, res Result, err error) {
	t.mu.Lock()
	f.res, f.err = res, err
	if t.m[key] == f {
		delete(t.m, key)
	}
	t.mu.Unlock()
	close(f.doneCh)
}

// abdicate hands leadership to one parked follower, or retires the
// flight if nobody is waiting.
func (t *flightTable) abdicate(key CacheKey, f *cacheFlight) {
	t.mu.Lock()
	f.hasLeader = false
	if f.waiters > 0 {
		// Buffered send cannot block: a token is outstanding only while
		// hasLeader is false, and we just cleared it.
		f.promoteCh <- struct{}{}
		t.mu.Unlock()
		return
	}
	if t.m[key] == f {
		delete(t.m, key)
	}
	t.mu.Unlock()
}

// claim records that a follower took the promotion token.
func (t *flightTable) claim(f *cacheFlight) {
	t.mu.Lock()
	f.waiters--
	f.hasLeader = true
	t.mu.Unlock()
}

// leave removes a follower whose own context died. The last leaver of a
// leaderless flight drains any unclaimed promotion token and retires
// the flight so the key is never stranded.
func (t *flightTable) leave(key CacheKey, f *cacheFlight) {
	t.mu.Lock()
	f.waiters--
	if f.waiters == 0 && !f.hasLeader {
		select {
		case <-f.promoteCh:
		default:
		}
		if t.m[key] == f {
			delete(t.m, key)
		}
	}
	t.mu.Unlock()
}

// errFlightRetry is the internal completion sentinel for "the leader
// found the key already cached": followers re-read the cache (each
// acquiring its own entry reference) instead of sharing an unrefcounted
// body.
var errFlightRetry = errors.New("serve: flight retry")

// leaderSpecificErr classifies failures that condemn only the leader's
// own request, not the key: follower promotion is the right response.
func leaderSpecificErr(err error) bool {
	var qf *QueueFullError
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrDraining) ||
		errors.As(err, &qf)
}

// CacheOutcome classifies how a request was served, for the X-Cache
// header and the hit/miss latency histograms.
type CacheOutcome int

const (
	CacheBypass      CacheOutcome = iota // caching disabled for the tenant
	CacheHit                             // served from a resident entry
	CacheMiss                            // led the decode (possibly after promotion)
	CacheCollapsed                       // parked on another request's flight
	CacheRevalidated                     // If-None-Match matched: 304
)

// String names the outcome for the X-Cache response header.
func (o CacheOutcome) String() string {
	switch o {
	case CacheHit:
		return "hit"
	case CacheMiss:
		return "miss"
	case CacheCollapsed:
		return "collapsed"
	case CacheRevalidated:
		return "revalidated"
	}
	return "bypass"
}

// Fetch serves key from the cache or produces it via run, collapsing
// concurrent identical requests into one execution. release must be
// called after the returned body has been consumed (it pins the entry's
// slab on the hit path; elsewhere it is a no-op). run executes on the
// calling goroutine, at most once per Fetch.
func (c *Cache) Fetch(ctx context.Context, key CacheKey, tenant string, run func() (Result, error)) (res Result, release func(), outcome CacheOutcome, err error) {
	noop := func() {}
	countMiss := true
attempt:
	for {
		if e, ok := c.lookup(key, tenant, countMiss); ok {
			return Result{Body: e.body, Meta: e.meta}, func() { e.release(c) }, CacheHit, nil
		}
		countMiss = false
		f, leader := c.flights.join(key)
		for !leader {
			select {
			case <-f.doneCh:
				if f.err == errFlightRetry {
					// The previous leader found a fresh fill; re-read it
					// under our own entry reference.
					continue attempt
				}
				if f.err != nil {
					return Result{}, noop, CacheCollapsed, f.err
				}
				c.collapsed.Add(1)
				c.tstats(tenant).collapsed.Add(1)
				return f.res, noop, CacheCollapsed, nil
			case <-f.promoteCh:
				c.flights.claim(f)
				c.promotions.Add(1)
				leader = true
			case <-ctx.Done():
				c.flights.leave(key, f)
				return Result{}, noop, CacheCollapsed, ctx.Err()
			}
		}
		// Leader. Re-check the cache first: a previous flight may have
		// filled the key between our lookup and join, and a promoted
		// leader inherits that window too. This recheck is what makes
		// "N identical requests, exactly one decode" airtight.
		if e, ok := c.lookup(key, tenant, false); ok {
			c.flights.complete(key, f, Result{}, errFlightRetry)
			return Result{Body: e.body, Meta: e.meta}, func() { e.release(c) }, CacheHit, nil
		}
		finished := false
		defer func() {
			// Panic safety: a leader that unwinds without completing
			// abdicates so followers are promoted, never stranded.
			if !finished {
				c.flights.abdicate(key, f)
			}
		}()
		res, err = run()
		if err != nil && leaderSpecificErr(err) {
			finished = true
			c.flights.abdicate(key, f)
			return Result{}, noop, CacheMiss, err
		}
		if err == nil {
			c.put(key, tenant, res)
		}
		finished = true
		c.flights.complete(key, f, res, err)
		return res, noop, CacheMiss, err
	}
}
