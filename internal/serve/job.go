package serve

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"eclipse"
	"eclipse/internal/copro"
	"eclipse/internal/kpn"
	"eclipse/internal/media"
)

// Kind classifies a job.
type Kind uint8

const (
	KindDecode Kind = iota
	KindEncode
	KindTranscode
	nKinds
)

// String names the kind for metrics labels.
func (k Kind) String() string {
	switch k {
	case KindDecode:
		return "decode"
	case KindEncode:
		return "encode"
	case KindTranscode:
		return "transcode"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Result is a completed job's response payload.
type Result struct {
	Body []byte
	Meta map[string]string // response headers (X-Seq-*)
}

// Job is one admitted unit of work. Its body executes on the KPN runtime
// under the job's gate, so the scheduler can pause and resume the whole
// network at stream-operation boundaries; the context carries the
// request deadline end-to-end through the KPN task bodies.
type Job struct {
	Tenant string
	Kind   Kind

	ctx    context.Context
	cancel context.CancelFunc
	gate   *kpn.Gate
	body   func(ctx context.Context, gate *kpn.Gate) (Result, error)
	done   chan struct{}
	res    Result
	err    error

	// Scheduler-owned state: guarded by the scheduler's mutex or by the
	// single worker holding the job. preempts is atomic because a worker
	// may record a preemption in the same instant the body finishes and
	// the submitter reads the count.
	started   bool
	preempts  atomic.Int32
	serviceNs int64
	enq       time.Time
	firstRun  time.Time
}

// NewJob wraps a body as a schedulable job. The gate starts closed; the
// first scheduling slice opens it.
func NewJob(tenant string, kind Kind, ctx context.Context,
	body func(ctx context.Context, gate *kpn.Gate) (Result, error)) *Job {
	jctx, cancel := context.WithCancel(ctx)
	return &Job{
		Tenant: tenant,
		Kind:   kind,
		ctx:    jctx,
		cancel: cancel,
		gate:   kpn.NewGate(false),
		body:   body,
		done:   make(chan struct{}),
	}
}

// run executes the body; spawned once, by the first worker slice.
func (j *Job) run() {
	defer func() {
		if r := recover(); r != nil {
			j.err = fmt.Errorf("serve: job panicked: %v", r)
		}
		close(j.done)
	}()
	j.res, j.err = j.body(j.ctx, j.gate)
}

// Done is closed when the job has finished (successfully or not).
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel aborts the job: its KPN network is poisoned and unwinds even if
// currently descheduled.
func (j *Job) Cancel() { j.cancel() }

// Result returns the outcome; valid only after Done is closed.
func (j *Job) Result() (Result, error) { return j.res, j.err }

// Preempts reports how many times the scheduler preempted the job.
func (j *Job) Preempts() int { return int(j.preempts.Load()) }

// serveDecodeBuffers sizes the decode pipeline's FIFO buffers for a
// software server: the cycle model's defaults emulate a 32 kB on-chip
// SRAM and would force a task switch every few hundred bytes; here the
// buffers only bound memory per in-flight job (~26 kB each), so larger
// ones cut goroutine ping-pong.
func serveDecodeBuffers() eclipse.DecodeBuffers {
	return eclipse.DecodeBuffers{
		Bits:  4096,
		Tok:   8192,
		Hdr:   2048,
		Coef:  8192,
		Resid: 8192,
		Pix:   8192,
	}
}

// rawChunk is the transfer unit for streaming raw frames into an encode
// pipeline.
const rawChunk = 8192

// dispPool recycles the display-order scratch slices the response path
// fills via DecodeResult.DisplayFramesInto, so serializing a response
// does not allocate a fresh []*Frame per request.
var dispPool = sync.Pool{New: func() any { return new([]*media.Frame) }}

// runParallelDecode executes the pipeline-parallel decoder as a single
// Kahn task under the job's gate: the entropy front-end checkpoints at
// every frame header, so the scheduler can preempt (and cancellation can
// poison) the whole decode — reconstruction workers and all — at frame
// boundaries. Frames are drawn from and, on failure, returned to the
// shared pool.
func runParallelDecode(ctx context.Context, gate *kpn.Gate, stream []byte, pool *media.SyncFramePool, workers int) (*media.DecodeResult, error) {
	g := kpn.NewGraph("pardec")
	g.AddTask("dec", "decode")
	var res *media.DecodeResult
	funcs := map[string]kpn.TaskFunc{
		"decode": func(c *kpn.TaskCtx) error {
			var err error
			res, err = media.DecodeWithOptions(stream, media.DecodeOptions{
				Workers:  workers,
				NewFrame: pool.Get,
				Recycle:  pool.Put,
				OnFrame:  func(int) error { return c.Checkpoint() },
			})
			return err
		},
	}
	if err := kpn.RunContext(ctx, g, funcs, kpn.WithGate(gate)); err != nil {
		return nil, err
	}
	return res, nil
}

// decodeFrames runs the decode phase shared by decode and transcode
// jobs and returns the display-order frames, every entry non-nil and
// drawn from pool (the caller takes ownership). workers selects the
// engine: the six-task KPN pipeline at <= 1 (bulk tenants keep the
// fine-grained coprocessor-shaped network), the pipeline-parallel
// decoder above that (interactive tenants overlap entropy parse with
// per-row reconstruction). putSlice returns the slice's backing storage
// to a shared pool; call it once the frames have been consumed.
func decodeFrames(ctx context.Context, gate *kpn.Gate, stream []byte, seq media.SeqHeader, pool *media.SyncFramePool, workers int) (frames []*media.Frame, putSlice func(), err error) {
	if workers > 1 {
		res, err := runParallelDecode(ctx, gate, stream, pool, workers)
		if err != nil {
			return nil, nil, err
		}
		sp := dispPool.Get().(*[]*media.Frame)
		disp := res.DisplayFramesInto(*sp)
		release := func() {
			for i := range disp {
				disp[i] = nil // don't retain frames through the slice pool
			}
			*sp = disp[:0]
			dispPool.Put(sp)
		}
		for i, f := range disp {
			if f == nil { // malformed tref (out of range or duplicate)
				for _, df := range res.Coded {
					pool.Put(df.Frame)
				}
				release()
				return nil, nil, fmt.Errorf("serve: decoded stream missing frame %d", i)
			}
		}
		return disp, release, nil
	}
	var sink copro.FunctionalSink
	g := eclipse.DecodeGraph("job", serveDecodeBuffers())
	funcs := copro.FunctionalDecodeFuncsPooled(stream, seq, &sink, pool)
	if err := kpn.RunContext(ctx, g, funcs, kpn.WithGate(gate)); err != nil {
		pool.PutAll(sink.Frames)
		return nil, nil, err
	}
	for i, f := range sink.Frames {
		if f == nil {
			pool.PutAll(sink.Frames)
			return nil, nil, fmt.Errorf("serve: decoded stream missing frame %d", i)
		}
	}
	return sink.Frames, func() {}, nil
}

// NewDecodeJob builds a job that decodes an ECL1 bitstream and returns
// the display-order frames concatenated as raw 8-bit luma planes. With
// workers <= 1 the decode runs on the six-task KPN pipeline
// (src→vld→rlsq→idct→mc→sink); above that it runs the pipeline-parallel
// decoder with `workers` reconstruction workers (see decodeFrames).
// The sequence header is validated synchronously so malformed requests
// fail before admission.
func NewDecodeJob(ctx context.Context, tenant string, stream []byte, pool *media.SyncFramePool, workers int) (*Job, error) {
	seq, err := media.ParseSeqHeader(media.NewBitReader(stream))
	if err != nil {
		return nil, err
	}
	body := func(ctx context.Context, gate *kpn.Gate) (Result, error) {
		frames, putSlice, err := decodeFrames(ctx, gate, stream, seq, pool, workers)
		if err != nil {
			return Result{}, err
		}
		plane := seq.W() * seq.H()
		// Pooled response body: recycled by the uncached HTTP tail once
		// written (see bufpool.go for the ownership rules).
		out := getRespBuf(len(frames) * plane)
		off := 0
		for _, f := range frames {
			off += copy(out[off:], f.Pix)
		}
		n := len(frames)
		pool.PutAll(frames)
		putSlice()
		return Result{Body: out, Meta: seqMeta(seq, n)}, nil
	}
	return NewJob(tenant, KindDecode, ctx, body), nil
}

// NewEncodeJob builds a job that encodes raw display-order luma frames
// (len(raw) must be frames×W×H bytes) into an ECL1 bitstream. The raw
// plane is streamed through a two-task KPN graph (rawsrc→enc) so the
// job is preemptible at frame granularity; the encode itself is the
// push-based StreamEncoder, bit-identical to the batch encoder.
// encWorkers bounds the per-frame analysis fan-out (0 = the
// media.EncodeWorkers default).
func NewEncodeJob(ctx context.Context, tenant string, cfg media.CodecConfig, raw []byte, pool *media.SyncFramePool, encWorkers int) (*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plane := cfg.W * cfg.H
	if len(raw) == 0 || len(raw)%plane != 0 {
		return nil, fmt.Errorf("serve: raw payload %d bytes is not a multiple of the %dx%d frame plane", len(raw), cfg.W, cfg.H)
	}
	frames := len(raw) / plane
	body := func(ctx context.Context, gate *kpn.Gate) (Result, error) {
		g := kpn.NewGraph("encjob")
		g.AddTask("src", "rawsrc").AddOut("raw")
		g.AddTask("enc", "encode").AddIn("raw")
		g.MustConnect("src.raw", 2*rawChunk, "enc.raw")
		var (
			stream []byte
			stats  *media.EncodeStats
		)
		funcs := map[string]kpn.TaskFunc{
			"rawsrc": func(c *kpn.TaskCtx) error {
				for off := 0; off < len(raw); off += rawChunk {
					end := off + rawChunk
					if end > len(raw) {
						end = len(raw)
					}
					if err := c.Write("raw", raw[off:end]); err != nil {
						return err
					}
				}
				return nil
			},
			"encode": func(c *kpn.TaskCtx) error {
				se, err := media.NewStreamEncoder(cfg, frames)
				if err != nil {
					return err
				}
				se.Workers = encWorkers
				se.Recycle = pool.Put
				for i := 0; i < frames; i++ {
					f := pool.Get(cfg.W, cfg.H)
					if err := c.Read("raw", f.Pix); err != nil {
						pool.Put(f)
						return fmt.Errorf("frame %d: %w", i, err)
					}
					if err := se.Push(f); err != nil {
						pool.Put(f)
						return err
					}
				}
				stream, stats, err = se.Close()
				return err
			},
		}
		if err := kpn.RunContext(ctx, g, funcs, kpn.WithGate(gate)); err != nil {
			return Result{}, err
		}
		meta := map[string]string{
			"X-Seq-Width":  strconv.Itoa(cfg.W),
			"X-Seq-Height": strconv.Itoa(cfg.H),
			"X-Seq-Frames": strconv.Itoa(frames),
			"X-Seq-Bits":   strconv.Itoa(stats.TotalBits()),
		}
		return Result{Body: stream, Meta: meta}, nil
	}
	return NewJob(tenant, KindEncode, ctx, body), nil
}

// fusedHandoffDepth bounds the display-order frames buffered between
// the fused transcode's decode task (delivery hook) and encode task.
// Deliberately small: the decoder's own reorder window already absorbs
// GOP reordering, so the handoff only needs enough slack to ride out
// scheduling jitter between the two stages.
const fusedHandoffDepth = 2

// frameRefs counts the joint owners of frames crossing the fused
// decoder→encoder handoff. A delivered frame has two stakes: the
// decoder's (it may keep reading the frame as a motion-compensation
// reference long after delivery; released by the Retire hook) and the
// encoder's (released once the frame is coded, or by the unwind paths).
// Only when the last stake drops may the frame return to the shared
// pool — Get zeroes pixels, so recycling earlier would corrupt
// in-flight prediction.
type frameRefs struct {
	mu sync.Mutex
	n  map[*media.Frame]int
}

func (r *frameRefs) add(f *media.Frame, n int) {
	r.mu.Lock()
	r.n[f] += n
	r.mu.Unlock()
}

// release drops one stake and hands the frame to put when none remain.
// Frames that never went through add (undelivered ones the decoder
// recycles directly) bypass the table entirely.
func (r *frameRefs) release(f *media.Frame, put func(*media.Frame)) {
	if f == nil {
		return
	}
	r.mu.Lock()
	n, tracked := r.n[f]
	if tracked {
		n--
		if n == 0 {
			delete(r.n, f)
		} else {
			r.n[f] = n
		}
	}
	r.mu.Unlock()
	if !tracked || n == 0 {
		put(f)
	}
}

// inflightFrames instruments one job's traffic through the shared frame
// pool with a current/peak gauge — the measurable form of the fused
// pipeline's bounded-memory claim (peak stays O(GOP M + reconstruction
// window) instead of O(frames)).
type inflightFrames struct {
	pool *media.SyncFramePool
	cur  atomic.Int64
	peak atomic.Int64
}

func (t *inflightFrames) get(w, h int) *media.Frame {
	cur := t.cur.Add(1)
	for {
		p := t.peak.Load()
		if cur <= p || t.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	return t.pool.Get(w, h)
}

func (t *inflightFrames) put(f *media.Frame) {
	if f == nil {
		return
	}
	t.cur.Add(-1)
	t.pool.Put(f)
}

// NewTranscodeJob builds a job that decodes a bitstream and re-encodes
// it at quantizer q (GOP structure, dimensions, and half-pel mode
// inherited from the source sequence header) as one fused streaming
// pipeline: a two-task Kahn network where the decode task delivers
// display-order frames through a bounded channel straight into the
// encode task's StreamEncoder. Both tasks checkpoint once per frame, so
// preemption and cancellation land at frame boundaries in either stage;
// frames are jointly owned (see frameRefs) and recycled into pool the
// moment both stages are done with them, keeping in-flight memory
// bounded by the GOP reorder distance rather than the clip length. The
// output is bit-identical to decoding everything first and batch
// re-encoding. encWorkers bounds the encoder's per-frame analysis
// fan-out (0 = the media.EncodeWorkers default); met, when non-nil,
// receives the peak-in-flight gauge and handoff stall counters.
func NewTranscodeJob(ctx context.Context, tenant string, stream []byte, q int, pool *media.SyncFramePool, workers, encWorkers int, met *Metrics) (*Job, error) {
	seq, err := media.ParseSeqHeader(media.NewBitReader(stream))
	if err != nil {
		return nil, err
	}
	cfg := TranscodeConfig(seq, q)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	body := fusedTranscodeBody(stream, seq, cfg, q, pool, workers, encWorkers, met)
	return NewJob(tenant, KindTranscode, ctx, body), nil
}

// fusedTranscodeBody builds the fused two-task transcode body shared by
// NewTranscodeJob and the segmented job's fallback path (clips too short
// or without usable closed-GOP cuts).
func fusedTranscodeBody(stream []byte, seq media.SeqHeader, cfg media.CodecConfig, q int, pool *media.SyncFramePool, workers, encWorkers int, met *Metrics) func(ctx context.Context, gate *kpn.Gate) (Result, error) {
	return func(ctx context.Context, gate *kpn.Gate) (Result, error) {
		track := &inflightFrames{pool: pool}
		refs := &frameRefs{n: make(map[*media.Frame]int)}
		release := func(f *media.Frame) { refs.release(f, track.put) }

		// Decoder→encoder handoff. `dead` breaks the decode side's
		// blocking send once the encode task has failed (a Go-channel
		// block is invisible to the KPN deadlock detector, so the handoff
		// must unwind itself); encFailure carries the encoder's root
		// cause so both tasks report the same error regardless of which
		// one the executor records first.
		handoff := make(chan *media.Frame, fusedHandoffDepth)
		dead := make(chan struct{})
		var deadOnce sync.Once
		var encFailure error
		encFailed := func(err error) {
			deadOnce.Do(func() {
				encFailure = err
				close(dead)
			})
		}

		g := kpn.NewGraph("xcode")
		g.AddTask("dec", "decode")
		g.AddTask("enc", "encode")
		var out []byte
		var stats *media.EncodeStats
		funcs := map[string]kpn.TaskFunc{
			"decode": func(c *kpn.TaskCtx) error {
				defer close(handoff)
				_, err := media.DecodeWithOptions(stream, media.DecodeOptions{
					Workers:  workers,
					NewFrame: track.get,
					Recycle:  track.put, // undelivered frames: decoder is sole owner
					OnFrame:  func(int) error { return c.Checkpoint() },
					OnDisplayFrame: func(di int, f *media.Frame) error {
						refs.add(f, 2) // decoder stake (until Retire) + encoder stake
						select {
						case handoff <- f:
							return nil
						default:
						}
						if met != nil {
							met.XcodePushStalls.Add(1)
						}
						select {
						case handoff <- f:
							return nil
						case <-dead:
							release(f) // the encoder's stake; Retire still covers the decoder's
							return encFailure
						}
					},
					Retire: release,
				})
				return err
			},
			"encode": func(c *kpn.TaskCtx) error {
				se, err := media.NewStreamEncoder(cfg, seq.Frames)
				if err != nil {
					encFailed(err)
					return err
				}
				se.Workers = encWorkers
				se.Recycle = release
				got := 0
				for {
					var f *media.Frame
					var ok bool
					select {
					case f, ok = <-handoff:
					default:
						if met != nil {
							met.XcodePullStalls.Add(1)
						}
						f, ok = <-handoff
					}
					if !ok {
						break
					}
					got++
					if err := c.Checkpoint(); err != nil {
						release(f)
						encFailed(err)
						se.Abort()
						return err
					}
					if err := se.Push(f); err != nil {
						release(f) // Push failed before taking custody
						encFailed(err)
						se.Abort()
						return err
					}
				}
				if got < seq.Frames {
					// The decoder aborted mid-stream; report success here so
					// its failure (the root cause) becomes the job error.
					se.Abort()
					return nil
				}
				out, stats, err = se.Close()
				if err != nil {
					encFailed(err)
					return err
				}
				return nil
			},
		}
		err := kpn.RunContext(ctx, g, funcs, kpn.WithGate(gate))
		// Both tasks have returned: frames still sitting in the handoff
		// were delivered (decoder stake already retired on unwind) but
		// never reached the encoder — drop their encoder stake here.
		for f := range handoff {
			release(f)
		}
		if met != nil {
			met.recordXcodePeak(track.peak.Load())
		}
		if err != nil {
			return Result{}, err
		}
		meta := seqMeta(seq, seq.Frames)
		meta["X-Seq-Q"] = strconv.Itoa(q)
		meta["X-Seq-Bits"] = strconv.Itoa(stats.TotalBits())
		meta["X-Transcode-Peak-Frames"] = strconv.FormatInt(track.peak.Load(), 10)
		return Result{Body: out, Meta: meta}, nil
	}
}

// NewTranscodeJobTwoPhase is the pre-fusion reference implementation:
// fully decode into pooled display-order frames, then re-encode as a
// single checkpointed Kahn task. It materializes every display frame at
// once (O(frames) pool traffic) and is retained as the baseline that
// parity tests and BenchmarkTranscode measure the fused pipeline
// against.
func NewTranscodeJobTwoPhase(ctx context.Context, tenant string, stream []byte, q int, pool *media.SyncFramePool, workers, encWorkers int) (*Job, error) {
	seq, err := media.ParseSeqHeader(media.NewBitReader(stream))
	if err != nil {
		return nil, err
	}
	cfg := TranscodeConfig(seq, q)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	body := func(ctx context.Context, gate *kpn.Gate) (Result, error) {
		// Phase 1: decode into pooled display-order frames.
		frames, putSlice, err := decodeFrames(ctx, gate, stream, seq, pool, workers)
		if err != nil {
			return Result{}, err
		}
		defer putSlice()
		// Phase 2: re-encode as a single checkpointed Kahn task under the
		// same gate, recycling each source frame once coded.
		eg := kpn.NewGraph("xcode")
		eg.AddTask("enc", "encode")
		var out []byte
		var stats *media.EncodeStats
		efuncs := map[string]kpn.TaskFunc{
			"encode": func(c *kpn.TaskCtx) error {
				se, err := media.NewStreamEncoder(cfg, len(frames))
				if err != nil {
					return err
				}
				se.Workers = encWorkers
				se.Recycle = pool.Put
				for i, f := range frames {
					if err := c.Checkpoint(); err != nil {
						se.Abort() // recycle frames buffered in the reorder window
						return err
					}
					frames[i] = nil // ownership moves to the encoder
					if err := se.Push(f); err != nil {
						pool.Put(f)
						se.Abort()
						return err
					}
				}
				out, stats, err = se.Close()
				return err
			},
		}
		if err := kpn.RunContext(ctx, eg, efuncs, kpn.WithGate(gate)); err != nil {
			pool.PutAll(frames) // frames not yet handed to the encoder
			return Result{}, err
		}
		meta := seqMeta(seq, seq.Frames)
		meta["X-Seq-Q"] = strconv.Itoa(q)
		meta["X-Seq-Bits"] = strconv.Itoa(stats.TotalBits())
		return Result{Body: out, Meta: meta}, nil
	}
	return NewJob(tenant, KindTranscode, ctx, body), nil
}

// TranscodeConfig derives the re-encode configuration for a source
// sequence at a new quantizer: dimensions, GOP structure, and half-pel
// mode follow the source; the motion search radius is the codec default.
// Exported so offline reference checks (loadgen, tests) reproduce the
// server's output bit-exactly.
func TranscodeConfig(seq media.SeqHeader, q int) media.CodecConfig {
	cfg := media.DefaultCodec(seq.W(), seq.H())
	cfg.Q = q
	cfg.GOPN = seq.GOPN
	cfg.GOPM = seq.GOPM
	cfg.HalfPel = seq.HalfPel
	return cfg
}

// seqMeta renders sequence parameters as response headers.
func seqMeta(seq media.SeqHeader, frames int) map[string]string {
	return map[string]string{
		"X-Seq-Width":  strconv.Itoa(seq.W()),
		"X-Seq-Height": strconv.Itoa(seq.H()),
		"X-Seq-Frames": strconv.Itoa(frames),
	}
}
