package serve

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"eclipse"
	"eclipse/internal/copro"
	"eclipse/internal/kpn"
	"eclipse/internal/media"
)

// Kind classifies a job.
type Kind uint8

const (
	KindDecode Kind = iota
	KindEncode
	KindTranscode
	nKinds
)

// String names the kind for metrics labels.
func (k Kind) String() string {
	switch k {
	case KindDecode:
		return "decode"
	case KindEncode:
		return "encode"
	case KindTranscode:
		return "transcode"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Result is a completed job's response payload.
type Result struct {
	Body []byte
	Meta map[string]string // response headers (X-Seq-*)
}

// Job is one admitted unit of work. Its body executes on the KPN runtime
// under the job's gate, so the scheduler can pause and resume the whole
// network at stream-operation boundaries; the context carries the
// request deadline end-to-end through the KPN task bodies.
type Job struct {
	Tenant string
	Kind   Kind

	ctx    context.Context
	cancel context.CancelFunc
	gate   *kpn.Gate
	body   func(ctx context.Context, gate *kpn.Gate) (Result, error)
	done   chan struct{}
	res    Result
	err    error

	// Scheduler-owned state: guarded by the scheduler's mutex or by the
	// single worker holding the job. preempts is atomic because a worker
	// may record a preemption in the same instant the body finishes and
	// the submitter reads the count.
	started   bool
	preempts  atomic.Int32
	serviceNs int64
	enq       time.Time
	firstRun  time.Time
}

// NewJob wraps a body as a schedulable job. The gate starts closed; the
// first scheduling slice opens it.
func NewJob(tenant string, kind Kind, ctx context.Context,
	body func(ctx context.Context, gate *kpn.Gate) (Result, error)) *Job {
	jctx, cancel := context.WithCancel(ctx)
	return &Job{
		Tenant: tenant,
		Kind:   kind,
		ctx:    jctx,
		cancel: cancel,
		gate:   kpn.NewGate(false),
		body:   body,
		done:   make(chan struct{}),
	}
}

// run executes the body; spawned once, by the first worker slice.
func (j *Job) run() {
	defer func() {
		if r := recover(); r != nil {
			j.err = fmt.Errorf("serve: job panicked: %v", r)
		}
		close(j.done)
	}()
	j.res, j.err = j.body(j.ctx, j.gate)
}

// Done is closed when the job has finished (successfully or not).
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel aborts the job: its KPN network is poisoned and unwinds even if
// currently descheduled.
func (j *Job) Cancel() { j.cancel() }

// Result returns the outcome; valid only after Done is closed.
func (j *Job) Result() (Result, error) { return j.res, j.err }

// Preempts reports how many times the scheduler preempted the job.
func (j *Job) Preempts() int { return int(j.preempts.Load()) }

// serveDecodeBuffers sizes the decode pipeline's FIFO buffers for a
// software server: the cycle model's defaults emulate a 32 kB on-chip
// SRAM and would force a task switch every few hundred bytes; here the
// buffers only bound memory per in-flight job (~26 kB each), so larger
// ones cut goroutine ping-pong.
func serveDecodeBuffers() eclipse.DecodeBuffers {
	return eclipse.DecodeBuffers{
		Bits:  4096,
		Tok:   8192,
		Hdr:   2048,
		Coef:  8192,
		Resid: 8192,
		Pix:   8192,
	}
}

// rawChunk is the transfer unit for streaming raw frames into an encode
// pipeline.
const rawChunk = 8192

// dispPool recycles the display-order scratch slices the response path
// fills via DecodeResult.DisplayFramesInto, so serializing a response
// does not allocate a fresh []*Frame per request.
var dispPool = sync.Pool{New: func() any { return new([]*media.Frame) }}

// runParallelDecode executes the pipeline-parallel decoder as a single
// Kahn task under the job's gate: the entropy front-end checkpoints at
// every frame header, so the scheduler can preempt (and cancellation can
// poison) the whole decode — reconstruction workers and all — at frame
// boundaries. Frames are drawn from and, on failure, returned to the
// shared pool.
func runParallelDecode(ctx context.Context, gate *kpn.Gate, stream []byte, pool *media.SyncFramePool, workers int) (*media.DecodeResult, error) {
	g := kpn.NewGraph("pardec")
	g.AddTask("dec", "decode")
	var res *media.DecodeResult
	funcs := map[string]kpn.TaskFunc{
		"decode": func(c *kpn.TaskCtx) error {
			var err error
			res, err = media.DecodeWithOptions(stream, media.DecodeOptions{
				Workers:  workers,
				NewFrame: pool.Get,
				Recycle:  pool.Put,
				OnFrame:  func(int) error { return c.Checkpoint() },
			})
			return err
		},
	}
	if err := kpn.RunContext(ctx, g, funcs, kpn.WithGate(gate)); err != nil {
		return nil, err
	}
	return res, nil
}

// decodeFrames runs the decode phase shared by decode and transcode
// jobs and returns the display-order frames, every entry non-nil and
// drawn from pool (the caller takes ownership). workers selects the
// engine: the six-task KPN pipeline at <= 1 (bulk tenants keep the
// fine-grained coprocessor-shaped network), the pipeline-parallel
// decoder above that (interactive tenants overlap entropy parse with
// per-row reconstruction). putSlice returns the slice's backing storage
// to a shared pool; call it once the frames have been consumed.
func decodeFrames(ctx context.Context, gate *kpn.Gate, stream []byte, seq media.SeqHeader, pool *media.SyncFramePool, workers int) (frames []*media.Frame, putSlice func(), err error) {
	if workers > 1 {
		res, err := runParallelDecode(ctx, gate, stream, pool, workers)
		if err != nil {
			return nil, nil, err
		}
		sp := dispPool.Get().(*[]*media.Frame)
		disp := res.DisplayFramesInto(*sp)
		release := func() {
			for i := range disp {
				disp[i] = nil // don't retain frames through the slice pool
			}
			*sp = disp[:0]
			dispPool.Put(sp)
		}
		for i, f := range disp {
			if f == nil { // malformed tref (out of range or duplicate)
				for _, df := range res.Coded {
					pool.Put(df.Frame)
				}
				release()
				return nil, nil, fmt.Errorf("serve: decoded stream missing frame %d", i)
			}
		}
		return disp, release, nil
	}
	var sink copro.FunctionalSink
	g := eclipse.DecodeGraph("job", serveDecodeBuffers())
	funcs := copro.FunctionalDecodeFuncsPooled(stream, seq, &sink, pool)
	if err := kpn.RunContext(ctx, g, funcs, kpn.WithGate(gate)); err != nil {
		pool.PutAll(sink.Frames)
		return nil, nil, err
	}
	for i, f := range sink.Frames {
		if f == nil {
			pool.PutAll(sink.Frames)
			return nil, nil, fmt.Errorf("serve: decoded stream missing frame %d", i)
		}
	}
	return sink.Frames, func() {}, nil
}

// NewDecodeJob builds a job that decodes an ECL1 bitstream and returns
// the display-order frames concatenated as raw 8-bit luma planes. With
// workers <= 1 the decode runs on the six-task KPN pipeline
// (src→vld→rlsq→idct→mc→sink); above that it runs the pipeline-parallel
// decoder with `workers` reconstruction workers (see decodeFrames).
// The sequence header is validated synchronously so malformed requests
// fail before admission.
func NewDecodeJob(ctx context.Context, tenant string, stream []byte, pool *media.SyncFramePool, workers int) (*Job, error) {
	seq, err := media.ParseSeqHeader(media.NewBitReader(stream))
	if err != nil {
		return nil, err
	}
	body := func(ctx context.Context, gate *kpn.Gate) (Result, error) {
		frames, putSlice, err := decodeFrames(ctx, gate, stream, seq, pool, workers)
		if err != nil {
			return Result{}, err
		}
		plane := seq.W() * seq.H()
		out := make([]byte, 0, len(frames)*plane)
		for _, f := range frames {
			out = append(out, f.Pix...)
		}
		n := len(frames)
		pool.PutAll(frames)
		putSlice()
		return Result{Body: out, Meta: seqMeta(seq, n)}, nil
	}
	return NewJob(tenant, KindDecode, ctx, body), nil
}

// NewEncodeJob builds a job that encodes raw display-order luma frames
// (len(raw) must be frames×W×H bytes) into an ECL1 bitstream. The raw
// plane is streamed through a two-task KPN graph (rawsrc→enc) so the
// job is preemptible at frame granularity; the encode itself is the
// push-based StreamEncoder, bit-identical to the batch encoder.
func NewEncodeJob(ctx context.Context, tenant string, cfg media.CodecConfig, raw []byte, pool *media.SyncFramePool) (*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plane := cfg.W * cfg.H
	if len(raw) == 0 || len(raw)%plane != 0 {
		return nil, fmt.Errorf("serve: raw payload %d bytes is not a multiple of the %dx%d frame plane", len(raw), cfg.W, cfg.H)
	}
	frames := len(raw) / plane
	body := func(ctx context.Context, gate *kpn.Gate) (Result, error) {
		g := kpn.NewGraph("encjob")
		g.AddTask("src", "rawsrc").AddOut("raw")
		g.AddTask("enc", "encode").AddIn("raw")
		g.MustConnect("src.raw", 2*rawChunk, "enc.raw")
		var (
			stream []byte
			stats  *media.EncodeStats
		)
		funcs := map[string]kpn.TaskFunc{
			"rawsrc": func(c *kpn.TaskCtx) error {
				for off := 0; off < len(raw); off += rawChunk {
					end := off + rawChunk
					if end > len(raw) {
						end = len(raw)
					}
					if err := c.Write("raw", raw[off:end]); err != nil {
						return err
					}
				}
				return nil
			},
			"encode": func(c *kpn.TaskCtx) error {
				se, err := media.NewStreamEncoder(cfg, frames)
				if err != nil {
					return err
				}
				se.Recycle = pool.Put
				for i := 0; i < frames; i++ {
					f := pool.Get(cfg.W, cfg.H)
					if err := c.Read("raw", f.Pix); err != nil {
						pool.Put(f)
						return fmt.Errorf("frame %d: %w", i, err)
					}
					if err := se.Push(f); err != nil {
						pool.Put(f)
						return err
					}
				}
				stream, stats, err = se.Close()
				return err
			},
		}
		if err := kpn.RunContext(ctx, g, funcs, kpn.WithGate(gate)); err != nil {
			return Result{}, err
		}
		meta := map[string]string{
			"X-Seq-Width":  strconv.Itoa(cfg.W),
			"X-Seq-Height": strconv.Itoa(cfg.H),
			"X-Seq-Frames": strconv.Itoa(frames),
			"X-Seq-Bits":   strconv.Itoa(stats.TotalBits()),
		}
		return Result{Body: stream, Meta: meta}, nil
	}
	return NewJob(tenant, KindEncode, ctx, body), nil
}

// NewTranscodeJob builds a job that decodes a bitstream (see
// decodeFrames for the workers-selected engine) and re-encodes it at
// quantizer q (GOP structure, dimensions, and half-pel mode inherited
// from the source sequence header). The encode phase runs as a single
// Kahn task checkpointing once per frame, so both phases are
// preemptible and share the job's gate and deadline.
func NewTranscodeJob(ctx context.Context, tenant string, stream []byte, q int, pool *media.SyncFramePool, workers int) (*Job, error) {
	seq, err := media.ParseSeqHeader(media.NewBitReader(stream))
	if err != nil {
		return nil, err
	}
	cfg := TranscodeConfig(seq, q)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	body := func(ctx context.Context, gate *kpn.Gate) (Result, error) {
		// Phase 1: decode into pooled display-order frames.
		frames, putSlice, err := decodeFrames(ctx, gate, stream, seq, pool, workers)
		if err != nil {
			return Result{}, err
		}
		defer putSlice()
		// Phase 2: re-encode as a single checkpointed Kahn task under the
		// same gate, recycling each source frame once coded.
		eg := kpn.NewGraph("xcode")
		eg.AddTask("enc", "encode")
		var out []byte
		var stats *media.EncodeStats
		efuncs := map[string]kpn.TaskFunc{
			"encode": func(c *kpn.TaskCtx) error {
				se, err := media.NewStreamEncoder(cfg, len(frames))
				if err != nil {
					return err
				}
				se.Recycle = pool.Put
				for i, f := range frames {
					if err := c.Checkpoint(); err != nil {
						return err
					}
					frames[i] = nil // ownership moves to the encoder
					if err := se.Push(f); err != nil {
						pool.Put(f)
						return err
					}
				}
				out, stats, err = se.Close()
				return err
			},
		}
		if err := kpn.RunContext(ctx, eg, efuncs, kpn.WithGate(gate)); err != nil {
			pool.PutAll(frames) // frames not yet handed to the encoder
			return Result{}, err
		}
		meta := seqMeta(seq, seq.Frames)
		meta["X-Seq-Q"] = strconv.Itoa(q)
		meta["X-Seq-Bits"] = strconv.Itoa(stats.TotalBits())
		return Result{Body: out, Meta: meta}, nil
	}
	return NewJob(tenant, KindTranscode, ctx, body), nil
}

// TranscodeConfig derives the re-encode configuration for a source
// sequence at a new quantizer: dimensions, GOP structure, and half-pel
// mode follow the source; the motion search radius is the codec default.
// Exported so offline reference checks (loadgen, tests) reproduce the
// server's output bit-exactly.
func TranscodeConfig(seq media.SeqHeader, q int) media.CodecConfig {
	cfg := media.DefaultCodec(seq.W(), seq.H())
	cfg.Q = q
	cfg.GOPN = seq.GOPN
	cfg.GOPM = seq.GOPM
	cfg.HalfPel = seq.HalfPel
	return cfg
}

// seqMeta renders sequence parameters as response headers.
func seqMeta(seq media.SeqHeader, frames int) map[string]string {
	return map[string]string{
		"X-Seq-Width":  strconv.Itoa(seq.W()),
		"X-Seq-Height": strconv.Itoa(seq.H()),
		"X-Seq-Frames": strconv.Itoa(frames),
	}
}
