package serve

// Response-body buffer pool. Decode responses are large (frames × W×H
// bytes of raw luma) and short-lived, so NewDecodeJob draws them from a
// size-classed pool — the same power-of-two slab scheme as the result
// cache's entry bodies — instead of allocating a fresh slice per
// request.
//
// Ownership rules (who may call putRespBuf):
//
//   - The job body owns the buffer until it returns it as Result.Body.
//   - On the UNCACHED tail (submitAndWait) exactly one handler writes
//     the body and nothing else retains it, so the handler recycles it
//     after the write.
//   - On the CACHED tail the buffer must NOT be recycled: cache.put
//     copies the body into the cache's own slab (the cache never aliases
//     it), but singleflight hands the leader's Result — same Body slice —
//     to every collapsed follower, and followers may still be writing it
//     out after the leader finishes. Those bodies are left to the GC.
//
// Violating the rule hands the pool a buffer another handler is reading;
// a later getRespBuf would then scribble over an in-flight response.
var respBufs slabPool

// getRespBuf returns a length-n buffer from the pool (capacity rounded
// up to its power-of-two class). Contents are NOT zeroed; callers must
// overwrite all n bytes.
func getRespBuf(n int) []byte { return respBufs.get(n) }

// putRespBuf recycles a response body. Callers must be the sole owner —
// see the ownership rules above. Buffers with non-power-of-two or
// oversized capacity are dropped silently, so it is safe to feed it any
// Result.Body whose provenance satisfies the ownership rule.
func putRespBuf(b []byte) { respBufs.put(b) }
