package serve

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteReport prints a drain-time summary of the serving run in the
// style of the simulator's Figure 9 report: per-kind traffic and
// latency, the tenant table, and the result-cache view.
func (s *Server) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "== serving view (uptime %s) ==\n\n", time.Since(s.met.Start).Round(time.Millisecond))

	fmt.Fprintf(w, "%-10s %10s %8s %10s %10s %10s\n", "kind", "requests", "errors", "p50", "p99", "mean")
	for _, k := range s.met.kindSnapshots() {
		if k.Requests == 0 {
			continue
		}
		fmt.Fprintf(w, "%-10s %10d %8d %9.1fms %9.1fms %9.1fms\n",
			k.Kind, k.Requests, k.Errors, k.P50Ms, k.P99Ms, k.MeanMs)
	}
	fmt.Fprintf(w, "\nrejects %d · preemptions %d · bytes in %d · bytes out %d\n",
		s.met.Rejects.Load(), s.met.Preemptions.Load(), s.met.BytesIn.Load(), s.met.BytesOut.Load())

	tenants := s.sched.SnapshotTenants()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Name < tenants[j].Name })
	fmt.Fprintf(w, "\n%-12s %6s %5s %7s %9s %7s %8s %8s %11s %7s\n",
		"tenant", "weight", "dec", "cache", "completed", "errors", "rejects", "preempts", "service", "ewma")
	for _, t := range tenants {
		fmt.Fprintf(w, "%-12s %6d %5d %7s %9d %7d %8d %8d %10.2fs %5.1fms\n",
			t.Name, t.Weight, t.DecodeWorkers, t.CacheMode, t.Completed, t.Errors,
			t.Rejects, t.Preempts, t.ServiceSec, t.EwmaJobMs)
	}

	if s.cache == nil {
		fmt.Fprintf(w, "\nresult cache: disabled\n")
		return
	}
	cs := s.cache.Snapshot()
	total := cs.Hits + cs.Misses
	rate := 0.0
	if total > 0 {
		rate = float64(cs.Hits) / float64(total)
	}
	fmt.Fprintf(w, "\n== result cache ==\n\n")
	fmt.Fprintf(w, "hit-rate %.1f%% (%d/%d) · collapsed %d · 304s %d · promotions %d\n",
		rate*100, cs.Hits, total, cs.Collapsed, cs.NotModified, cs.Promotions)
	fmt.Fprintf(w, "resident %d/%d bytes in %d entries · fills %d · evictions %d · too-large %d\n",
		cs.ResidentBytes, cs.BudgetBytes, cs.Entries, cs.Fills, cs.Evictions, cs.TooLarge)
	fmt.Fprintf(w, "hit  p50 %.2fms p99 %.2fms\nmiss p50 %.2fms p99 %.2fms\n",
		cs.HitP50Ms, cs.HitP99Ms, cs.MissP50Ms, cs.MissP99Ms)
	if len(cs.Tenants) > 0 {
		fmt.Fprintf(w, "\n%-12s %9s %9s %10s %6s %10s %14s\n",
			"tenant", "hits", "misses", "collapsed", "304s", "evictions", "resident")
		for _, t := range cs.Tenants {
			fmt.Fprintf(w, "%-12s %9d %9d %10d %6d %10d %14d\n",
				t.Name, t.Hits, t.Misses, t.Collapsed, t.NotModified, t.Evictions, t.ResidentBytes)
		}
	}
}
