package serve

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The result cache is the serving layer's answer to the popular-content
// shape: thousands of identical requests should cost one decode plus N
// byte-copies, not N decodes. It is the same locality argument the
// paper makes for the coprocessor shells — exploit reuse at the layer
// that can see it — lifted one level, from stream windows to whole
// responses.
//
// Ownership discipline (the FramePool/dispPool rules, applied to cached
// bytes): an entry's body is an immutable snapshot copied into a
// slab-pooled buffer at fill time — never aliased into live frame
// arenas or a job's Result. The cache holds one reference; every hit
// acquires another under the shard lock before the entry can be
// evicted, and the slab returns to the pool only when the last
// reference drops. Eviction under byte pressure therefore can never
// truncate or recycle a buffer a response writer is still reading.

// cacheShardCount is the number of independently locked shards; a
// power of two so the shard index is a bit mask over the key hash.
const cacheShardCount = 16

// entryOverhead approximates an entry's bookkeeping bytes (struct, map
// header, LRU links) for budget accounting.
const entryOverhead = 160

// cacheEntry is one immutable cached response. prev/next are the
// intrusive LRU links of its shard (head = most recently used).
type cacheEntry struct {
	key    CacheKey
	body   []byte // slab-backed; len is the exact body size
	meta   map[string]string
	tenant string // the tenant whose leader filled the entry
	size   int64
	refs   atomic.Int32 // cache's own reference counts as 1
	prev   *cacheEntry
	next   *cacheEntry
}

// release drops one reference; the last one returns the slab.
func (e *cacheEntry) release(c *Cache) {
	if e.refs.Add(-1) == 0 {
		c.slabs.put(e.body)
	}
}

// cacheShard is one lock domain: a key map plus an intrusive LRU list
// under a byte budget.
type cacheShard struct {
	mu         sync.Mutex
	m          map[CacheKey]*cacheEntry
	head, tail *cacheEntry
	bytes      int64
	budget     int64
}

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// tenantCacheStats are one tenant's cache counters. Hits/misses/
// collapses are attributed to the requesting tenant; resident bytes and
// evictions to the tenant whose leader filled the entry.
type tenantCacheStats struct {
	hits, misses, collapsed, evictions, notModified atomic.Uint64
	resident                                        atomic.Int64
}

// Cache is the sharded, byte-budgeted, content-addressed result cache
// with an integrated singleflight table (singleflight.go). Concurrency:
// the hot hit path takes exactly one shard mutex; all counters are
// atomics; the flight table has its own mutex and is touched only on
// misses.
type Cache struct {
	shards  [cacheShardCount]cacheShard
	slabs   slabPool
	flights flightTable
	budget  int64

	hits        atomic.Uint64
	misses      atomic.Uint64
	collapsed   atomic.Uint64
	fills       atomic.Uint64
	evictions   atomic.Uint64
	promotions  atomic.Uint64
	notModified atomic.Uint64
	tooLarge    atomic.Uint64

	hitLat  Hist
	missLat Hist

	tmu     sync.Mutex
	tenants map[string]*tenantCacheStats
}

// NewCache builds a cache with the given total byte budget, split
// evenly across the shards.
func NewCache(budgetBytes int64) *Cache {
	if budgetBytes < cacheShardCount {
		budgetBytes = cacheShardCount
	}
	c := &Cache{budget: budgetBytes, tenants: map[string]*tenantCacheStats{}}
	for i := range c.shards {
		c.shards[i].m = map[CacheKey]*cacheEntry{}
		c.shards[i].budget = budgetBytes / cacheShardCount
	}
	c.flights.m = map[CacheKey]*cacheFlight{}
	return c
}

// shardOf maps a key to its shard by the hash's first bytes.
func (c *Cache) shardOf(key CacheKey) *cacheShard {
	return &c.shards[int(key[0])&(cacheShardCount-1)]
}

// tstats returns (creating if needed) a tenant's counter block.
func (c *Cache) tstats(name string) *tenantCacheStats {
	c.tmu.Lock()
	s := c.tenants[name]
	if s == nil {
		s = &tenantCacheStats{}
		c.tenants[name] = s
	}
	c.tmu.Unlock()
	return s
}

// lookup finds a live entry and acquires a reader reference under the
// shard lock, so eviction cannot recycle the slab while the caller
// holds it. countMiss selects whether an absent key counts as a miss
// (the leader's post-join recheck passes false to keep the counters
// one-per-request).
func (c *Cache) lookup(key CacheKey, tenant string, countMiss bool) (*cacheEntry, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	e := sh.m[key]
	if e == nil {
		sh.mu.Unlock()
		if countMiss {
			c.misses.Add(1)
			c.tstats(tenant).misses.Add(1)
		}
		return nil, false
	}
	sh.moveToFront(e)
	e.refs.Add(1)
	sh.mu.Unlock()
	c.hits.Add(1)
	c.tstats(tenant).hits.Add(1)
	return e, true
}

// put copies a successful result into a slab-backed immutable entry and
// inserts it, evicting from the LRU tail until the shard is back under
// budget. Oversized results are skipped rather than wiping the shard.
func (c *Cache) put(key CacheKey, tenant string, res Result) {
	size := int64(len(res.Body)) + entryOverhead
	for k, v := range res.Meta {
		size += int64(len(k) + len(v))
	}
	sh := c.shardOf(key)
	if size > sh.budget {
		c.tooLarge.Add(1)
		return
	}
	body := c.slabs.get(len(res.Body))
	copy(body, res.Body)
	meta := make(map[string]string, len(res.Meta))
	for k, v := range res.Meta {
		meta[k] = v
	}
	e := &cacheEntry{key: key, body: body, meta: meta, tenant: tenant, size: size}
	e.refs.Store(1)

	var evicted []*cacheEntry
	sh.mu.Lock()
	if sh.m[key] != nil {
		// A racing leader filled the key first (possible only across
		// flight generations); keep the resident entry.
		sh.mu.Unlock()
		c.slabs.put(body)
		return
	}
	sh.m[key] = e
	sh.pushFront(e)
	sh.bytes += size
	for sh.bytes > sh.budget && sh.tail != e {
		t := sh.tail
		sh.unlink(t)
		delete(sh.m, t.key)
		sh.bytes -= t.size
		evicted = append(evicted, t)
	}
	sh.mu.Unlock()

	c.fills.Add(1)
	c.tstats(tenant).resident.Add(size)
	for _, t := range evicted {
		c.evictions.Add(1)
		ts := c.tstats(t.tenant)
		ts.evictions.Add(1)
		ts.resident.Add(-t.size)
		t.release(c)
	}
}

// recordNotModified counts an If-None-Match revalidation (304).
// recordNotModified counts an If-None-Match revalidation answered 304.
// 304s are tracked separately from hits so the per-tenant hit counters
// always sum to the global one.
func (c *Cache) recordNotModified(tenant string) {
	c.notModified.Add(1)
	c.tstats(tenant).notModified.Add(1)
}

// ResidentBytes reports the bytes held across all shards.
func (c *Cache) ResidentBytes() int64 {
	var n int64
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].bytes
		c.shards[i].mu.Unlock()
	}
	return n
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// CacheTenantSnapshot is one tenant's cache row in /varz and /metrics.
type CacheTenantSnapshot struct {
	Name          string `json:"name"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Collapsed     uint64 `json:"collapsed"`
	NotModified   uint64 `json:"not_modified"`
	Evictions     uint64 `json:"evictions"`
	ResidentBytes int64  `json:"resident_bytes"`
}

// CacheSnapshot is the cache section of the /varz document.
type CacheSnapshot struct {
	BudgetBytes   int64                 `json:"budget_bytes"`
	ResidentBytes int64                 `json:"resident_bytes"`
	Entries       int                   `json:"entries"`
	Hits          uint64                `json:"hits_total"`
	Misses        uint64                `json:"misses_total"`
	Collapsed     uint64                `json:"collapsed_total"`
	NotModified   uint64                `json:"not_modified_total"`
	Fills         uint64                `json:"fills_total"`
	Evictions     uint64                `json:"evictions_total"`
	Promotions    uint64                `json:"promotions_total"`
	TooLarge      uint64                `json:"too_large_total"`
	HitP50Ms      float64               `json:"hit_p50_ms"`
	HitP99Ms      float64               `json:"hit_p99_ms"`
	MissP50Ms     float64               `json:"miss_p50_ms"`
	MissP99Ms     float64               `json:"miss_p99_ms"`
	Tenants       []CacheTenantSnapshot `json:"tenants"`
}

// Snapshot assembles a consistent-enough view for /varz, /metrics, and
// the drain report (counters are read individually, like HistSnapshot).
func (c *Cache) Snapshot() CacheSnapshot {
	s := CacheSnapshot{
		BudgetBytes:   c.budget,
		ResidentBytes: c.ResidentBytes(),
		Entries:       c.Len(),
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Collapsed:     c.collapsed.Load(),
		NotModified:   c.notModified.Load(),
		Fills:         c.fills.Load(),
		Evictions:     c.evictions.Load(),
		Promotions:    c.promotions.Load(),
		TooLarge:      c.tooLarge.Load(),
		HitP50Ms:      ms(c.hitLat.Quantile(0.50)),
		HitP99Ms:      ms(c.hitLat.Quantile(0.99)),
		MissP50Ms:     ms(c.missLat.Quantile(0.50)),
		MissP99Ms:     ms(c.missLat.Quantile(0.99)),
	}
	c.tmu.Lock()
	for name, ts := range c.tenants {
		s.Tenants = append(s.Tenants, CacheTenantSnapshot{
			Name:          name,
			Hits:          ts.hits.Load(),
			Misses:        ts.misses.Load(),
			Collapsed:     ts.collapsed.Load(),
			NotModified:   ts.notModified.Load(),
			Evictions:     ts.evictions.Load(),
			ResidentBytes: ts.resident.Load(),
		})
	}
	c.tmu.Unlock()
	sort.Slice(s.Tenants, func(i, j int) bool { return s.Tenants[i].Name < s.Tenants[j].Name })
	return s
}

// ObserveHit/ObserveMiss record the request wall time of the two paths;
// the handler calls them so the histograms measure what the client saw.
func (c *Cache) ObserveHit(d time.Duration)  { c.hitLat.Observe(d) }
func (c *Cache) ObserveMiss(d time.Duration) { c.missLat.Observe(d) }

// slabPool recycles entry bodies in power-of-two size classes with a
// bounded free list per class, the cache-side sibling of the shell's
// bufPool: fills under eviction churn reuse recycled slabs instead of
// allocating. Slabs above maxPooledSlab go straight to the GC.
type slabPool struct {
	mu      sync.Mutex
	classes [slabClasses][][]byte
}

const (
	slabClasses      = 23      // classes up to 1<<22 = 4 MiB
	maxPooledSlab    = 1 << 22 // bigger bodies are not worth retaining
	slabsPerClassCap = 8
)

// slabClass returns the class whose capacity 1<<class fits n.
func slabClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get returns a slab of length n (capacity rounded up to the class).
func (p *slabPool) get(n int) []byte {
	if n == 0 {
		return nil
	}
	cl := slabClass(n)
	if n <= maxPooledSlab {
		p.mu.Lock()
		if l := p.classes[cl]; len(l) > 0 {
			s := l[len(l)-1]
			p.classes[cl] = l[:len(l)-1]
			p.mu.Unlock()
			return s[:n]
		}
		p.mu.Unlock()
	}
	return make([]byte, n, 1<<cl)
}

// put returns a slab to its class; mis-sized or surplus slabs are
// dropped for the GC.
func (p *slabPool) put(b []byte) {
	cp := cap(b)
	if cp == 0 || cp > maxPooledSlab || cp&(cp-1) != 0 {
		return
	}
	cl := slabClass(cp)
	p.mu.Lock()
	if len(p.classes[cl]) < slabsPerClassCap {
		p.classes[cl] = append(p.classes[cl], b[:0])
	}
	p.mu.Unlock()
}
