package serve

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Metrics holds the subsystem's global counters: per-kind request /
// error counts and latency histograms, admission rejects, scheduler
// preemptions, and byte totals. Everything is atomic — the hot path
// (Submit, finish) never takes a metrics lock.
type Metrics struct {
	Start       time.Time
	Requests    [nKinds]atomic.Uint64
	Errors      [nKinds]atomic.Uint64
	Latency     [nKinds]Hist
	Rejects     atomic.Uint64
	Preemptions atomic.Uint64
	BytesIn     atomic.Uint64
	BytesOut    atomic.Uint64

	// Fused-transcode pipeline instrumentation. XcodePeakFrames is the
	// high-water mark of frames simultaneously in flight inside any
	// single transcode job — the observable form of the bounded-memory
	// claim (O(GOP M + reconstruction window), not O(frames)). The stall
	// counters record which side of the decoder→encoder handoff blocked:
	// push stalls mean the encoder was the bottleneck, pull stalls the
	// decoder.
	XcodePeakFrames atomic.Int64
	XcodePushStalls atomic.Uint64
	XcodePullStalls atomic.Uint64

	// Segment-parallel transcode instrumentation. XcodeSegJobs counts
	// transcode jobs that actually ran segmented (≥2 closed-GOP
	// segments); XcodeSegments counts the segments they ran;
	// XcodeStitchBytes the bytes spliced by the bitstream stitcher.
	// XcodeSegSkewNs is the high-water mark of the per-job wall-clock
	// spread between its slowest and fastest segment — persistent skew
	// means the closed-GOP cuts are partitioning the clip unevenly.
	XcodeSegJobs     atomic.Uint64
	XcodeSegments    atomic.Uint64
	XcodeStitchBytes atomic.Uint64
	XcodeSegSkewNs   atomic.Int64
}

// recordXcodeSegSkew folds one segmented job's fastest/slowest segment
// spread into the global high-water mark.
func (m *Metrics) recordXcodeSegSkew(skewNs int64) {
	for {
		cur := m.XcodeSegSkewNs.Load()
		if skewNs <= cur || m.XcodeSegSkewNs.CompareAndSwap(cur, skewNs) {
			return
		}
	}
}

// recordXcodePeak folds one job's peak in-flight frame count into the
// global high-water mark.
func (m *Metrics) recordXcodePeak(peak int64) {
	for {
		cur := m.XcodePeakFrames.Load()
		if peak <= cur || m.XcodePeakFrames.CompareAndSwap(cur, peak) {
			return
		}
	}
}

// NewMetrics returns a zeroed registry stamped with the start time.
func NewMetrics() *Metrics { return &Metrics{Start: time.Now()} }

// TenantSnapshot is one tenant's row in /varz and /metrics.
type TenantSnapshot struct {
	Name              string  `json:"name"`
	Weight            int     `json:"weight"`
	QueueCap          int     `json:"queue_cap"`
	DecodeWorkers     int     `json:"decode_workers"`
	CacheMode         string  `json:"cache_mode"`
	TranscodeSegments int     `json:"transcode_segments"`
	QueueDepth        int     `json:"queue_depth"`
	Admitted          int     `json:"admitted"`
	Completed         uint64  `json:"completed"`
	Errors            uint64  `json:"errors"`
	Rejects           uint64  `json:"rejects"`
	Preempts          uint64  `json:"preempts"`
	ServiceSec        float64 `json:"service_sec"`
	EwmaJobMs         float64 `json:"ewma_job_ms"`
}

// KindSnapshot is one job kind's latency/traffic row.
type KindSnapshot struct {
	Kind     string  `json:"kind"`
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// Snapshot is the /varz document.
type Snapshot struct {
	State       string           `json:"state"`
	UptimeSec   float64          `json:"uptime_sec"`
	Workers     int              `json:"workers"`
	BaseSliceMs float64          `json:"base_slice_ms"`
	Admitted    int              `json:"admitted"`
	Rejects     uint64           `json:"rejects_total"`
	Preemptions uint64           `json:"preemptions_total"`
	BytesIn     uint64           `json:"bytes_in_total"`
	BytesOut    uint64           `json:"bytes_out_total"`
	Kinds       []KindSnapshot   `json:"kinds"`
	Tenants     []TenantSnapshot `json:"tenants"`
	PooledFrame int              `json:"frame_pool_retained"`
	Cache       *CacheSnapshot   `json:"cache,omitempty"`

	// Fused-transcode pipeline gauges/counters (see Metrics).
	XcodePeakFrames int64  `json:"transcode_inflight_frames_peak"`
	XcodePushStalls uint64 `json:"transcode_push_stalls_total"`
	XcodePullStalls uint64 `json:"transcode_pull_stalls_total"`

	// Segment-parallel transcode counters (see Metrics).
	XcodeSegJobs     uint64  `json:"transcode_segmented_jobs_total"`
	XcodeSegments    uint64  `json:"transcode_segments_total"`
	XcodeStitchBytes uint64  `json:"transcode_stitch_bytes_total"`
	XcodeSegSkewMs   float64 `json:"transcode_segment_skew_ms_peak"`
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// kindSnapshots collects the per-kind rows.
func (m *Metrics) kindSnapshots() []KindSnapshot {
	out := make([]KindSnapshot, 0, int(nKinds))
	for k := Kind(0); k < nKinds; k++ {
		h := &m.Latency[k]
		out = append(out, KindSnapshot{
			Kind:     k.String(),
			Requests: m.Requests[k].Load(),
			Errors:   m.Errors[k].Load(),
			P50Ms:    ms(h.Quantile(0.50)),
			P90Ms:    ms(h.Quantile(0.90)),
			P99Ms:    ms(h.Quantile(0.99)),
			MeanMs:   ms(h.Mean()),
		})
	}
	return out
}

// WritePrometheus renders the Prometheus text exposition format
// (counters, gauges, and the per-kind latency histograms) without any
// external dependency.
func (m *Metrics) WritePrometheus(w io.Writer, sched *Scheduler, poolRetained int, cache *Cache) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP eclipse_serve_uptime_seconds Time since server start.\n")
	p("# TYPE eclipse_serve_uptime_seconds gauge\n")
	p("eclipse_serve_uptime_seconds %g\n", time.Since(m.Start).Seconds())

	p("# HELP eclipse_serve_requests_total Admitted jobs by kind.\n")
	p("# TYPE eclipse_serve_requests_total counter\n")
	for k := Kind(0); k < nKinds; k++ {
		p("eclipse_serve_requests_total{kind=%q} %d\n", k.String(), m.Requests[k].Load())
	}
	p("# HELP eclipse_serve_errors_total Failed jobs by kind.\n")
	p("# TYPE eclipse_serve_errors_total counter\n")
	for k := Kind(0); k < nKinds; k++ {
		p("eclipse_serve_errors_total{kind=%q} %d\n", k.String(), m.Errors[k].Load())
	}

	p("# HELP eclipse_serve_admission_rejects_total Jobs rejected by full tenant queues (the GetSpace-failure path).\n")
	p("# TYPE eclipse_serve_admission_rejects_total counter\n")
	p("eclipse_serve_admission_rejects_total %d\n", m.Rejects.Load())

	p("# HELP eclipse_serve_preemptions_total Scheduling slices that ended in preemption.\n")
	p("# TYPE eclipse_serve_preemptions_total counter\n")
	p("eclipse_serve_preemptions_total %d\n", m.Preemptions.Load())

	p("# HELP eclipse_serve_bytes_in_total Request payload bytes accepted.\n")
	p("# TYPE eclipse_serve_bytes_in_total counter\n")
	p("eclipse_serve_bytes_in_total %d\n", m.BytesIn.Load())
	p("# HELP eclipse_serve_bytes_out_total Response payload bytes sent.\n")
	p("# TYPE eclipse_serve_bytes_out_total counter\n")
	p("eclipse_serve_bytes_out_total %d\n", m.BytesOut.Load())

	p("# HELP eclipse_serve_frame_pool_retained Frames held by the shared cross-request pool.\n")
	p("# TYPE eclipse_serve_frame_pool_retained gauge\n")
	p("eclipse_serve_frame_pool_retained %d\n", poolRetained)

	p("# HELP eclipse_serve_transcode_inflight_frames Peak frames simultaneously in flight inside a single fused transcode job.\n")
	p("# TYPE eclipse_serve_transcode_inflight_frames gauge\n")
	p("eclipse_serve_transcode_inflight_frames %d\n", m.XcodePeakFrames.Load())
	p("# HELP eclipse_serve_transcode_stalls_total Fused-pipeline handoff stalls by side (push = decoder waited on encoder, pull = encoder waited on decoder).\n")
	p("# TYPE eclipse_serve_transcode_stalls_total counter\n")
	p("eclipse_serve_transcode_stalls_total{side=\"push\"} %d\n", m.XcodePushStalls.Load())
	p("eclipse_serve_transcode_stalls_total{side=\"pull\"} %d\n", m.XcodePullStalls.Load())

	p("# HELP eclipse_serve_transcode_segments_jobs_total Transcode jobs that ran segment-parallel (two or more closed-GOP segments).\n")
	p("# TYPE eclipse_serve_transcode_segments_jobs_total counter\n")
	p("eclipse_serve_transcode_segments_jobs_total %d\n", m.XcodeSegJobs.Load())
	p("# HELP eclipse_serve_transcode_segments_total Closed-GOP segments executed by segment-parallel transcode jobs.\n")
	p("# TYPE eclipse_serve_transcode_segments_total counter\n")
	p("eclipse_serve_transcode_segments_total %d\n", m.XcodeSegments.Load())
	p("# HELP eclipse_serve_transcode_segments_stitch_bytes_total Bytes produced by the bitstream stitcher.\n")
	p("# TYPE eclipse_serve_transcode_segments_stitch_bytes_total counter\n")
	p("eclipse_serve_transcode_segments_stitch_bytes_total %d\n", m.XcodeStitchBytes.Load())
	p("# HELP eclipse_serve_transcode_segments_skew_seconds Peak slowest-minus-fastest segment wall time within one segmented job.\n")
	p("# TYPE eclipse_serve_transcode_segments_skew_seconds gauge\n")
	p("eclipse_serve_transcode_segments_skew_seconds %g\n", float64(m.XcodeSegSkewNs.Load())/1e9)

	tenants := sched.SnapshotTenants()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].Name < tenants[j].Name })
	p("# HELP eclipse_serve_queue_depth Jobs waiting in the tenant queue.\n")
	p("# TYPE eclipse_serve_queue_depth gauge\n")
	for _, t := range tenants {
		p("eclipse_serve_queue_depth{tenant=%q} %d\n", t.Name, t.QueueDepth)
	}
	p("# HELP eclipse_serve_tenant_admitted Jobs admitted and unfinished (waiting + running).\n")
	p("# TYPE eclipse_serve_tenant_admitted gauge\n")
	for _, t := range tenants {
		p("eclipse_serve_tenant_admitted{tenant=%q} %d\n", t.Name, t.Admitted)
	}
	p("# HELP eclipse_serve_tenant_completed_total Jobs finished successfully.\n")
	p("# TYPE eclipse_serve_tenant_completed_total counter\n")
	for _, t := range tenants {
		p("eclipse_serve_tenant_completed_total{tenant=%q} %d\n", t.Name, t.Completed)
	}
	p("# HELP eclipse_serve_tenant_rejects_total Admission rejects per tenant.\n")
	p("# TYPE eclipse_serve_tenant_rejects_total counter\n")
	for _, t := range tenants {
		p("eclipse_serve_tenant_rejects_total{tenant=%q} %d\n", t.Name, t.Rejects)
	}
	p("# HELP eclipse_serve_tenant_preemptions_total Slice preemptions per tenant.\n")
	p("# TYPE eclipse_serve_tenant_preemptions_total counter\n")
	for _, t := range tenants {
		p("eclipse_serve_tenant_preemptions_total{tenant=%q} %d\n", t.Name, t.Preempts)
	}
	p("# HELP eclipse_serve_tenant_service_seconds_total Wall-clock execution time per tenant.\n")
	p("# TYPE eclipse_serve_tenant_service_seconds_total counter\n")
	for _, t := range tenants {
		p("eclipse_serve_tenant_service_seconds_total{tenant=%q} %g\n", t.Name, t.ServiceSec)
	}

	p("# HELP eclipse_serve_latency_seconds End-to-end job latency (admission to completion).\n")
	p("# TYPE eclipse_serve_latency_seconds histogram\n")
	for k := Kind(0); k < nKinds; k++ {
		snap := m.Latency[k].Snapshot()
		var cum uint64
		for i := 0; i < histBuckets; i++ {
			cum += snap.Buckets[i]
			le := float64(BucketUpperUS(i)) / 1e6
			p("eclipse_serve_latency_seconds_bucket{kind=%q,le=%q} %d\n", k.String(), fmt.Sprintf("%g", le), cum)
		}
		p("eclipse_serve_latency_seconds_bucket{kind=%q,le=\"+Inf\"} %d\n", k.String(), snap.Count)
		p("eclipse_serve_latency_seconds_sum{kind=%q} %g\n", k.String(), float64(snap.SumNs)/1e9)
		p("eclipse_serve_latency_seconds_count{kind=%q} %d\n", k.String(), snap.Count)
	}

	if cache != nil {
		writeCachePrometheus(w, cache)
	}
}

// writeCachePrometheus renders the result-cache metric families.
func writeCachePrometheus(w io.Writer, cache *Cache) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	cs := cache.Snapshot()

	p("# HELP eclipse_serve_cache_budget_bytes Result cache byte budget.\n")
	p("# TYPE eclipse_serve_cache_budget_bytes gauge\n")
	p("eclipse_serve_cache_budget_bytes %d\n", cs.BudgetBytes)
	p("# HELP eclipse_serve_cache_resident_bytes Bytes held by resident cache entries.\n")
	p("# TYPE eclipse_serve_cache_resident_bytes gauge\n")
	p("eclipse_serve_cache_resident_bytes %d\n", cs.ResidentBytes)
	p("# HELP eclipse_serve_cache_entries Resident cache entries.\n")
	p("# TYPE eclipse_serve_cache_entries gauge\n")
	p("eclipse_serve_cache_entries %d\n", cs.Entries)

	p("# HELP eclipse_serve_cache_fills_total Successful results copied into the cache.\n")
	p("# TYPE eclipse_serve_cache_fills_total counter\n")
	p("eclipse_serve_cache_fills_total %d\n", cs.Fills)
	p("# HELP eclipse_serve_cache_promotions_total Singleflight followers promoted to leader after a leader-specific failure.\n")
	p("# TYPE eclipse_serve_cache_promotions_total counter\n")
	p("eclipse_serve_cache_promotions_total %d\n", cs.Promotions)
	p("# HELP eclipse_serve_cache_not_modified_total If-None-Match revalidations answered 304.\n")
	p("# TYPE eclipse_serve_cache_not_modified_total counter\n")
	p("eclipse_serve_cache_not_modified_total %d\n", cs.NotModified)
	p("# HELP eclipse_serve_cache_too_large_total Results skipped because they exceed a shard budget.\n")
	p("# TYPE eclipse_serve_cache_too_large_total counter\n")
	p("eclipse_serve_cache_too_large_total %d\n", cs.TooLarge)

	p("# HELP eclipse_serve_cache_hits_total Cache hits by requesting tenant.\n")
	p("# TYPE eclipse_serve_cache_hits_total counter\n")
	for _, t := range cs.Tenants {
		p("eclipse_serve_cache_hits_total{tenant=%q} %d\n", t.Name, t.Hits)
	}
	p("# HELP eclipse_serve_cache_misses_total Cache misses by requesting tenant.\n")
	p("# TYPE eclipse_serve_cache_misses_total counter\n")
	for _, t := range cs.Tenants {
		p("eclipse_serve_cache_misses_total{tenant=%q} %d\n", t.Name, t.Misses)
	}
	p("# HELP eclipse_serve_cache_collapsed_total Requests served by parking on another request's in-flight decode.\n")
	p("# TYPE eclipse_serve_cache_collapsed_total counter\n")
	for _, t := range cs.Tenants {
		p("eclipse_serve_cache_collapsed_total{tenant=%q} %d\n", t.Name, t.Collapsed)
	}
	p("# HELP eclipse_serve_cache_evictions_total Entries evicted under byte pressure, by filling tenant.\n")
	p("# TYPE eclipse_serve_cache_evictions_total counter\n")
	for _, t := range cs.Tenants {
		p("eclipse_serve_cache_evictions_total{tenant=%q} %d\n", t.Name, t.Evictions)
	}
	p("# HELP eclipse_serve_cache_tenant_resident_bytes Resident bytes attributed to the filling tenant.\n")
	p("# TYPE eclipse_serve_cache_tenant_resident_bytes gauge\n")
	for _, t := range cs.Tenants {
		p("eclipse_serve_cache_tenant_resident_bytes{tenant=%q} %d\n", t.Name, t.ResidentBytes)
	}

	for _, h := range []struct {
		name string
		hist *Hist
	}{{"hit", &cache.hitLat}, {"miss", &cache.missLat}} {
		snap := h.hist.Snapshot()
		p("# HELP eclipse_serve_cache_%s_latency_seconds Request wall time on the %s path.\n", h.name, h.name)
		p("# TYPE eclipse_serve_cache_%s_latency_seconds histogram\n", h.name)
		var cum uint64
		for i := 0; i < histBuckets; i++ {
			cum += snap.Buckets[i]
			le := float64(BucketUpperUS(i)) / 1e6
			p("eclipse_serve_cache_%s_latency_seconds_bucket{le=%q} %d\n", h.name, fmt.Sprintf("%g", le), cum)
		}
		p("eclipse_serve_cache_%s_latency_seconds_bucket{le=\"+Inf\"} %d\n", h.name, snap.Count)
		p("eclipse_serve_cache_%s_latency_seconds_sum %g\n", h.name, float64(snap.SumNs)/1e9)
		p("eclipse_serve_cache_%s_latency_seconds_count %d\n", h.name, snap.Count)
	}
}
