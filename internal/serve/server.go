package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"eclipse/internal/media"
)

// Server is the HTTP front end: it owns the scheduler, the metrics
// registry, and the shared cross-request frame pool, and exposes the
// media endpoints plus /healthz, /varz, and /metrics.
type Server struct {
	cfg   Config
	sched *Scheduler
	met   *Metrics
	pool  *media.SyncFramePool
	cache *Cache // nil when CacheBytes < 0 disables caching entirely
	mux   *http.ServeMux
}

// New builds a server (and starts its scheduler workers).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	met := NewMetrics()
	s := &Server{
		cfg:   cfg,
		met:   met,
		sched: NewScheduler(cfg, met),
		pool:  media.NewSyncFramePool(cfg.FramePoolCap),
		mux:   http.NewServeMux(),
	}
	if cfg.CacheBytes > 0 {
		s.cache = NewCache(cfg.CacheBytes)
	}
	s.mux.HandleFunc("POST /v1/decode", s.handleDecode)
	s.mux.HandleFunc("POST /v1/encode", s.handleEncode)
	s.mux.HandleFunc("POST /v1/transcode", s.handleTranscode)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /varz", s.handleVarz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Scheduler exposes the scheduler for tests and the load generator.
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Metrics exposes the metrics registry.
func (s *Server) Metrics() *Metrics { return s.met }

// Cache exposes the result cache (nil when disabled).
func (s *Server) Cache() *Cache { return s.cache }

// Shutdown drains the scheduler: admission stops (Submit and the HTTP
// handlers return 503), queued and running jobs complete, workers exit.
// If ctx expires first, the remainder is cancelled.
func (s *Server) Shutdown(ctx context.Context) error { return s.sched.Drain(ctx) }

// tenantOf extracts the tenant name from the request.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// requestCtx derives the job context: the client's disconnect context,
// tightened by an optional X-Timeout-Ms deadline.
func requestCtx(r *http.Request) (context.Context, context.CancelFunc, error) {
	ctx := r.Context()
	h := r.Header.Get("X-Timeout-Ms")
	if h == "" {
		return ctx, func() {}, nil
	}
	ms, err := strconv.Atoi(h)
	if err != nil || ms <= 0 {
		return nil, nil, fmt.Errorf("serve: bad X-Timeout-Ms %q", h)
	}
	ctx, cancel := context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

// readBody slurps the request payload under the configured cap.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return nil, err
	}
	s.met.BytesIn.Add(uint64(len(body)))
	return body, nil
}

// httpError writes a plain-text error with the right status code.
func httpError(w http.ResponseWriter, code int, err error) {
	http.Error(w, err.Error(), code)
}

// runJob submits a job through admission control and waits for its
// completion (or the request's disconnect/deadline). It is the unit of
// work the cache's singleflight leader executes: admission rejections
// and context deaths come back as errors for leaderSpecificErr to
// classify.
func (s *Server) runJob(ctx context.Context, j *Job) (Result, error) {
	if err := s.sched.Submit(j); err != nil {
		return Result{}, err
	}
	select {
	case <-j.Done():
	case <-ctx.Done():
		// Client gone or deadline hit: poison the job's network and wait
		// for it to unwind so its admission space is released in order.
		j.Cancel()
		<-j.Done()
	}
	return j.Result()
}

// DrainingHeader marks 503 responses emitted because the server is
// draining, so a gateway can distinguish "going away soon, reroute me"
// from a plain overload and stop routing here before the listener
// closes.
const DrainingHeader = "X-Eclipse-Draining"

// writeJobError maps a job failure to its HTTP status.
func writeJobError(w http.ResponseWriter, err error) {
	var qf *QueueFullError
	switch {
	case errors.As(err, &qf):
		w.Header().Set("Retry-After", strconv.Itoa(int(qf.RetryAfter.Seconds())))
		httpError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		w.Header().Set(DrainingHeader, "1")
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		// Client disconnected; the status code is for the log only.
		httpError(w, 499, err)
	case errors.Is(err, media.ErrBitstream):
		httpError(w, http.StatusBadRequest, err)
	default:
		httpError(w, http.StatusInternalServerError, err)
	}
}

// writeResult sends a successful result body. Callers set any
// path-specific headers (ETag, X-Cache, X-Job-Preempts) first.
func (s *Server) writeResult(w http.ResponseWriter, res Result) {
	for k, v := range res.Meta {
		w.Header().Set(k, v)
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(res.Body)))
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(res.Body)
	s.met.BytesOut.Add(uint64(n))
}

// submitAndWait is the uncached tail of a media endpoint. It is the
// sole owner of the result body here (no cache copy, no singleflight
// sharing), so decode bodies go back to the response-buffer pool after
// the write — the cached tail must never do this, see bufpool.go.
func (s *Server) submitAndWait(w http.ResponseWriter, r *http.Request, ctx context.Context, j *Job) {
	res, err := s.runJob(ctx, j)
	if err != nil {
		writeJobError(w, err)
		return
	}
	w.Header().Set("X-Cache", CacheBypass.String())
	w.Header().Set("X-Job-Preempts", strconv.Itoa(j.Preempts()))
	s.writeResult(w, res)
	if j.Kind == KindDecode {
		putRespBuf(res.Body)
	}
}

// serveCached is the cached tail: revalidate against the content
// address, then serve from the cache, a collapsed flight, or a fresh
// decode as leader. The prebuilt job j runs only if this request ends
// up leading its key's flight.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, ctx context.Context, tenant string, key CacheKey, j *Job) {
	start := time.Now()
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, key) {
		// The ETag is the content address, so a match proves the client
		// already holds the exact bytes — no cache entry or decode needed.
		s.cache.recordNotModified(tenant)
		w.Header().Set("ETag", key.ETag())
		w.Header().Set("Cache-Control", s.cacheControl())
		w.Header().Set("X-Cache", CacheRevalidated.String())
		w.WriteHeader(http.StatusNotModified)
		return
	}
	res, release, outcome, err := s.cache.Fetch(ctx, key, tenant, func() (Result, error) {
		return s.runJob(ctx, j)
	})
	if err != nil {
		writeJobError(w, err)
		return
	}
	defer release()
	if outcome == CacheHit {
		s.cache.ObserveHit(time.Since(start))
	} else {
		// Collapsed followers waited on a real decode; their latency
		// belongs to the miss path so the hit histogram stays honest.
		s.cache.ObserveMiss(time.Since(start))
	}
	w.Header().Set("ETag", key.ETag())
	w.Header().Set("Cache-Control", s.cacheControl())
	w.Header().Set("X-Cache", outcome.String())
	if outcome == CacheMiss {
		w.Header().Set("X-Job-Preempts", strconv.Itoa(j.Preempts()))
	}
	s.writeResult(w, res)
}

// cacheControl renders the freshness window the cached tail advertises
// to downstream tiers (the gateway L1 keys its revalidation cadence off
// this; it may shorten the window but never extends it).
func (s *Server) cacheControl() string {
	return "max-age=" + strconv.Itoa(int(s.cfg.CacheMaxAge/time.Second))
}

// dispatch routes a built job through the cached or uncached tail
// according to the tenant's cache mode.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, ctx context.Context, tenant string, key CacheKey, j *Job) {
	if s.cache != nil && s.sched.CacheEnabledFor(tenant) && s.sched.Running() {
		s.serveCached(w, r, ctx, tenant, key, j)
		return
	}
	s.submitAndWait(w, r, ctx, j)
}

// handleDecode serves POST /v1/decode: body is an ECL1 bitstream, the
// response is the concatenated raw display-order luma planes.
func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestCtx(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	body, err := s.readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tenant := tenantOf(r)
	j, err := NewDecodeJob(ctx, tenant, body, s.pool, s.sched.DecodeWorkersFor(tenant))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.dispatch(w, r, ctx, tenant, DecodeKey(body), j)
}

// EncodeConfigFromQuery parses the encode query parameters into a codec
// config. Unset parameters fall back to the codec defaults for the
// given size. Exported because the gateway tier must derive the exact
// same canonical config (and therefore the same content-address routing
// key) that the backend will cache under.
func EncodeConfigFromQuery(q url.Values) (media.CodecConfig, error) {
	geti := func(key string, def int) (int, error) {
		v := q.Get(key)
		if v == "" {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("serve: bad %s=%q", key, v)
		}
		return n, nil
	}
	w, err := geti("w", 0)
	if err != nil {
		return media.CodecConfig{}, err
	}
	h, err := geti("h", 0)
	if err != nil {
		return media.CodecConfig{}, err
	}
	if w <= 0 || h <= 0 {
		return media.CodecConfig{}, fmt.Errorf("serve: encode requires w and h query parameters")
	}
	cfg := media.DefaultCodec(w, h)
	if cfg.Q, err = geti("q", cfg.Q); err != nil {
		return media.CodecConfig{}, err
	}
	if cfg.GOPN, err = geti("gopn", cfg.GOPN); err != nil {
		return media.CodecConfig{}, err
	}
	if cfg.GOPM, err = geti("gopm", cfg.GOPM); err != nil {
		return media.CodecConfig{}, err
	}
	if cfg.SearchRange, err = geti("search", cfg.SearchRange); err != nil {
		return media.CodecConfig{}, err
	}
	switch q.Get("halfpel") {
	case "", "0", "false":
	case "1", "true":
		cfg.HalfPel = true
	default:
		return media.CodecConfig{}, fmt.Errorf("serve: bad halfpel=%q", q.Get("halfpel"))
	}
	return cfg, nil
}

// handleEncode serves POST /v1/encode?w=&h=[&q=&gopn=&gopm=&search=&halfpel=]:
// body is frames×w×h bytes of raw luma, the response is an ECL1 bitstream.
func (s *Server) handleEncode(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestCtx(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	cfg, err := EncodeConfigFromQuery(r.URL.Query())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tenant := tenantOf(r)
	j, err := NewEncodeJob(ctx, tenant, cfg, body, s.pool, s.sched.EncodeWorkers())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.dispatch(w, r, ctx, tenant, EncodeKey(cfg, body), j)
}

// handleTranscode serves POST /v1/transcode?q=: body is an ECL1
// bitstream, the response is the same sequence re-encoded at quantizer q.
func (s *Server) handleTranscode(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestCtx(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	defer cancel()
	qs := r.URL.Query().Get("q")
	if qs == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: transcode requires the q query parameter"))
		return
	}
	q, err := strconv.Atoi(qs)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("serve: bad q=%q", qs))
		return
	}
	body, err := s.readBody(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	tenant := tenantOf(r)
	j, err := NewTranscodeJobSegmented(ctx, tenant, body, q, s.pool,
		s.sched.DecodeWorkersFor(tenant), s.sched.EncodeWorkers(),
		s.sched.TranscodeSegmentsFor(tenant), s.met)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.dispatch(w, r, ctx, tenant, TranscodeKey(q, body), j)
}

// handleHealthz reports liveness: 200 as long as the process can answer
// at all, even while draining. Restart-or-not decisions key off this;
// routing decisions key off /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintf(w, "alive (%s)\n", s.sched.StateString())
}

// handleReadyz reports readiness: 200 while the scheduler admits work,
// 503 with the X-Eclipse-Draining marker once Drain begins — so a
// gateway stops routing here before the listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	state := s.sched.StateString()
	if state != "running" {
		w.Header().Set(DrainingHeader, "1")
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintln(w, state)
}

// varz assembles the JSON status document.
func (s *Server) varz() Snapshot {
	var cs *CacheSnapshot
	if s.cache != nil {
		snap := s.cache.Snapshot()
		cs = &snap
	}
	return Snapshot{
		Cache:       cs,
		State:       s.sched.StateString(),
		UptimeSec:   time.Since(s.met.Start).Seconds(),
		Workers:     s.cfg.Workers,
		BaseSliceMs: ms(s.cfg.BaseSlice),
		Admitted:    s.sched.Admitted(),
		Rejects:     s.met.Rejects.Load(),
		Preemptions: s.met.Preemptions.Load(),
		BytesIn:     s.met.BytesIn.Load(),
		BytesOut:    s.met.BytesOut.Load(),
		Kinds:       s.met.kindSnapshots(),
		Tenants:     s.sched.SnapshotTenants(),
		PooledFrame: s.pool.Retained(),

		XcodePeakFrames: s.met.XcodePeakFrames.Load(),
		XcodePushStalls: s.met.XcodePushStalls.Load(),
		XcodePullStalls: s.met.XcodePullStalls.Load(),

		XcodeSegJobs:     s.met.XcodeSegJobs.Load(),
		XcodeSegments:    s.met.XcodeSegments.Load(),
		XcodeStitchBytes: s.met.XcodeStitchBytes.Load(),
		XcodeSegSkewMs:   float64(s.met.XcodeSegSkewNs.Load()) / 1e6,
	}
}

// handleVarz serves the JSON status document.
func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.varz())
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.WritePrometheus(w, s.sched, s.pool.Retained(), s.cache)
}
