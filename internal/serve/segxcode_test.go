package serve

// Segment-parallel transcode coverage: byte-identity against the fused
// pipeline and the batch reference for every segment count, fallback
// behaviour on clips without usable cuts, the K×O(GOP) in-flight bound,
// lifecycle (cancel / preempt) leak checks, and the parity fuzzer.

import (
	"bytes"
	"context"
	"strconv"
	"testing"
	"time"

	"eclipse/internal/media"
)

// segClip returns a clip whose GOP structure has interior closed cuts:
// N=13, M=3 satisfies (N-1)%M == 0, so every GOP boundary is decode-
// and encode-closed (see media.EncodeClosedCuts).
func segClip(t *testing.T, frames int) ([]byte, media.CodecConfig) {
	t.Helper()
	stream, cfg, _ := testStream(t, 64, 48, frames, func(c *media.CodecConfig) {
		c.GOPN = 13
		c.GOPM = 3
		c.HalfPel = true
	})
	return stream, cfg
}

// batchTranscode computes the offline reference output.
func batchTranscode(t *testing.T, stream []byte, q int) []byte {
	t.Helper()
	ref, err := media.Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := media.Encode(TranscodeConfig(ref.Seq, q), ref.DisplayFrames())
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestTranscodeSegmentedParity sweeps segments 1..8 × decode workers
// {1,4} on a clip with interior closed-GOP cuts and requires every
// configuration's output to be byte-identical to the batch reference,
// with the pool drained and the segment-count header truthful.
func TestTranscodeSegmentedParity(t *testing.T) {
	const frames, q = 39, 9
	stream, _ := segClip(t, frames)
	want := batchTranscode(t, stream, q)
	s := xcodeSched(t)
	for segs := 1; segs <= 8; segs++ {
		for _, dw := range []int{1, 4} {
			t.Run("k"+strconv.Itoa(segs)+"-dw"+strconv.Itoa(dw), func(t *testing.T) {
				pool := media.NewSyncFramePool(128)
				met := NewMetrics()
				j, err := NewTranscodeJobSegmented(context.Background(), "t", stream, q, pool, dw, 2, segs, met)
				if err != nil {
					t.Fatal(err)
				}
				res, err := runSync(t, s, j)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(res.Body, want) {
					t.Errorf("segmented output (k=%d) differs from batch reference (%d vs %d bytes)", segs, len(res.Body), len(want))
				}
				got, err := strconv.Atoi(res.Meta["X-Transcode-Segments"])
				if err != nil || got < 1 || got > segs {
					t.Errorf("X-Transcode-Segments = %q, want 1..%d", res.Meta["X-Transcode-Segments"], segs)
				}
				if segs >= 2 && got >= 2 {
					if met.XcodeSegJobs.Load() != 1 {
						t.Errorf("XcodeSegJobs = %d, want 1", met.XcodeSegJobs.Load())
					}
					if int(met.XcodeSegments.Load()) != got {
						t.Errorf("XcodeSegments = %d, want %d", met.XcodeSegments.Load(), got)
					}
					if int(met.XcodeStitchBytes.Load()) != len(res.Body) {
						t.Errorf("XcodeStitchBytes = %d, want %d", met.XcodeStitchBytes.Load(), len(res.Body))
					}
				}
				if n := pool.Outstanding(); n != 0 {
					t.Errorf("pool leak: %d frames outstanding", n)
				}
			})
		}
	}
}

// TestTranscodeSegmentedFallback checks the three fallback conditions —
// segments <= 1, a clip shorter than segMinFrames, and an open-GOP clip
// with no interior closed cut — all serve the fused pipeline, report
// X-Transcode-Segments: 1, and still match the batch reference.
func TestTranscodeSegmentedFallback(t *testing.T) {
	const q = 9
	short, _ := segClip(t, segMinFrames-1)
	// The codec default N=12, M=3 has (N-1)%M != 0: every GOP boundary
	// is preceded by B frames coded after the next I — no closed cuts.
	open, _, _ := testStream(t, 64, 48, 36, func(c *media.CodecConfig) { c.GOPM = 3 })
	long, _ := segClip(t, 39)
	s := xcodeSched(t)
	for _, tc := range []struct {
		name   string
		stream []byte
		segs   int
	}{
		{"segments-1", long, 1},
		{"short-clip", short, 4},
		{"open-gop", open, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := batchTranscode(t, tc.stream, q)
			pool := media.NewSyncFramePool(128)
			met := NewMetrics()
			j, err := NewTranscodeJobSegmented(context.Background(), "t", tc.stream, q, pool, 4, 2, tc.segs, met)
			if err != nil {
				t.Fatal(err)
			}
			res, err := runSync(t, s, j)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Body, want) {
				t.Errorf("fallback output differs from batch reference (%d vs %d bytes)", len(res.Body), len(want))
			}
			if got := res.Meta["X-Transcode-Segments"]; got != "1" {
				t.Errorf("X-Transcode-Segments = %q, want 1", got)
			}
			if met.XcodeSegJobs.Load() != 0 {
				t.Errorf("fallback incremented XcodeSegJobs")
			}
			if n := pool.Outstanding(); n != 0 {
				t.Errorf("pool leak: %d frames outstanding", n)
			}
		})
	}
}

// TestTranscodeSegmentedBoundedInflight runs a long clip at K=4 and
// asserts the peak in-flight frame count stays under K × (2·GOPM + 6):
// each segment pipeline holds at most its parser window (GOPM+2), its
// encoder reorder ring (GOPM+1), and small constant slack — the
// segmented engine's K×O(GOP) memory claim, far below the clip length.
func TestTranscodeSegmentedBoundedInflight(t *testing.T) {
	const frames, segs = 78, 4
	stream, cfg := segClip(t, frames)
	pool := media.NewSyncFramePool(256)
	met := NewMetrics()
	s := xcodeSched(t)
	j, err := NewTranscodeJobSegmented(context.Background(), "t", stream, 9, pool, 2, 2, segs, met)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runSync(t, s, j)
	if err != nil {
		t.Fatal(err)
	}
	nseg, err := strconv.Atoi(res.Meta["X-Transcode-Segments"])
	if err != nil || nseg < 2 {
		t.Fatalf("expected a segmented run, got X-Transcode-Segments=%q", res.Meta["X-Transcode-Segments"])
	}
	peak, err := strconv.Atoi(res.Meta["X-Transcode-Peak-Frames"])
	if err != nil {
		t.Fatalf("bad X-Transcode-Peak-Frames %q", res.Meta["X-Transcode-Peak-Frames"])
	}
	bound := nseg * (2*cfg.GOPM + 6)
	if peak <= 0 || peak > bound {
		t.Errorf("peak in-flight frames = %d, want 0 < peak <= %d (K=%d × (2·%d+6))", peak, bound, nseg, cfg.GOPM)
	}
	if peak >= frames {
		t.Errorf("peak %d reached the clip length %d; segmentation regressed to batch memory", peak, frames)
	}
}

// TestTranscodeSegmentedCancelNoLeak cancels segmented transcodes at a
// spread of points — during indexing, mid-segments, after completion —
// and requires every pooled frame back on every unwind path.
func TestTranscodeSegmentedCancelNoLeak(t *testing.T) {
	stream, _ := segClip(t, 39)
	s := xcodeSched(t)
	for _, delay := range []time.Duration{0, time.Millisecond, 3 * time.Millisecond,
		8 * time.Millisecond, 20 * time.Millisecond} {
		t.Run(delay.String(), func(t *testing.T) {
			pool := media.NewSyncFramePool(256)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			j, err := NewTranscodeJobSegmented(ctx, "t", stream, 9, pool, 2, 2, 4, NewMetrics())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Submit(j); err != nil {
				t.Fatal(err)
			}
			time.Sleep(delay)
			j.Cancel()
			<-j.Done()
			if n := pool.Outstanding(); n != 0 {
				t.Fatalf("pool leak after cancel at %v: %d frames outstanding", delay, n)
			}
		})
	}
}

// TestTranscodeSegmentedPreemptParity runs the segmented job under a
// 1ms slice so the scheduler preempts the whole K-segment network at
// frame boundaries repeatedly; output must stay byte-identical and the
// pool must drain.
func TestTranscodeSegmentedPreemptParity(t *testing.T) {
	const q = 9
	stream, _ := segClip(t, 39)
	want := batchTranscode(t, stream, q)
	s := NewScheduler(Config{Workers: 1, BaseSlice: time.Millisecond, QueueCap: 8}, NewMetrics())
	defer s.Drain(context.Background())
	pool := media.NewSyncFramePool(256)
	j, err := NewTranscodeJobSegmented(context.Background(), "t", stream, q, pool, 2, 2, 4, NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	res, err := runSync(t, s, j)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Body, want) {
		t.Errorf("preempted segmented output differs from reference (%d vs %d bytes)", len(res.Body), len(want))
	}
	if j.Preempts() == 0 {
		t.Log("no preemptions observed (machine too fast for the 1ms slice); parity still checked")
	}
	if n := pool.Outstanding(); n != 0 {
		t.Errorf("pool leak after preempted run: %d frames outstanding", n)
	}
}

// TestTranscodeSegmentedBadStream truncates the bitstream mid-frame:
// the indexing pass must reject it (ErrBitstream for the 400 mapping)
// before any pixel work, and nothing may leak.
func TestTranscodeSegmentedBadStream(t *testing.T) {
	stream, _ := segClip(t, 39)
	bad := stream[:len(stream)*2/3]
	s := xcodeSched(t)
	pool := media.NewSyncFramePool(64)
	j, err := NewTranscodeJobSegmented(context.Background(), "t", bad, 9, pool, 2, 2, 4, NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runSync(t, s, j); err == nil {
		t.Fatal("truncated stream transcoded successfully")
	}
	if n := pool.Outstanding(); n != 0 {
		t.Errorf("pool leak on bad stream: %d frames outstanding", n)
	}
}

// FuzzTranscodeSegmentedParity fuzzes clip shape, GOP structure,
// quantizer, worker counts, and segment fan-out, and requires the
// segmented engine's output to match the fused pipeline byte for byte
// (whether it segmented or fell back), with a drained pool every time.
func FuzzTranscodeSegmentedParity(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(30), uint8(9), uint8(13), uint8(3), true, int64(7), uint8(2), uint8(4))
	f.Add(uint8(2), uint8(1), uint8(26), uint8(6), uint8(13), uint8(1), false, int64(1), uint8(1), uint8(8))
	f.Add(uint8(1), uint8(2), uint8(12), uint8(4), uint8(12), uint8(3), true, int64(3), uint8(4), uint8(2))
	f.Fuzz(func(t *testing.T, wmb, hmb, frames, q, gopn, gopm uint8, halfPel bool, seed int64, dw, segs uint8) {
		w := 16 * (1 + int(wmb)%3)
		h := 16 * (1 + int(hmb)%3)
		nf := 1 + int(frames)%40
		src := media.DefaultSource(w, h)
		src.Seed = seed
		fr := media.NewSource(src).Frames(nf)
		cfg := media.DefaultCodec(w, h)
		cfg.GOPN = 1 + int(gopn)%30
		cfg.GOPM = 1 + int(gopm)%15
		cfg.HalfPel = halfPel
		if cfg.Validate() != nil {
			return // e.g. GOPM > GOPN: not an encodable shape
		}
		stream, _, _, err := media.Encode(cfg, fr)
		if err != nil {
			t.Fatal(err)
		}
		xq := 1 + int(q)%30
		pool := media.NewSyncFramePool(256)
		s := xcodeSched(t)
		sj, err := NewTranscodeJobSegmented(context.Background(), "t", stream, xq, pool,
			1+int(dw)%4, 2, 1+int(segs)%8, NewMetrics())
		if err != nil {
			t.Fatal(err)
		}
		seg, err := runSync(t, s, sj)
		if err != nil {
			t.Fatal(err)
		}
		fj, err := NewTranscodeJob(context.Background(), "t", stream, xq, pool, 1+int(dw)%4, 2, NewMetrics())
		if err != nil {
			t.Fatal(err)
		}
		fused, err := runSync(t, s, fj)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seg.Body, fused.Body) {
			t.Fatalf("segmented (k=%s) and fused outputs differ (%d vs %d bytes)",
				seg.Meta["X-Transcode-Segments"], len(seg.Body), len(fused.Body))
		}
		if n := pool.Outstanding(); n != 0 {
			t.Fatalf("pool leak: %d frames outstanding", n)
		}
	})
}
