package serve

// Fused streaming transcode coverage: byte-identity against the
// two-phase reference across the decode×encode worker grid, lifecycle
// tests proving cancellation and preemption mid-pipeline leak no frames
// from the shared pool, and the benchmark pair the bounded-memory claim
// is measured with.

import (
	"bytes"
	"context"
	"strconv"
	"testing"
	"time"

	"eclipse/internal/media"
)

// xcodeSched builds a scheduler that runs jobs without interference:
// one worker, a slice long enough that nothing preempts.
func xcodeSched(t testing.TB) *Scheduler {
	s := NewScheduler(Config{Workers: 1, BaseSlice: time.Minute, QueueCap: 64}, NewMetrics())
	t.Cleanup(func() { s.Drain(context.Background()) })
	return s
}

func runSync(t testing.TB, s *Scheduler, j *Job) (Result, error) {
	t.Helper()
	if err := s.Submit(j); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-j.Done()
	return j.Result()
}

// TestTranscodeFusedParity sweeps decode workers 1..8 × encode workers
// 1..4 and requires the fused pipeline's output to be byte-identical to
// both the two-phase job and the offline batch re-encode.
func TestTranscodeFusedParity(t *testing.T) {
	stream, _, _ := testStream(t, 64, 48, 9, func(c *media.CodecConfig) {
		c.GOPM = 3
		c.HalfPel = true
	})
	const q = 9
	ref, err := media.Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := media.Encode(TranscodeConfig(ref.Seq, q), ref.DisplayFrames())
	if err != nil {
		t.Fatal(err)
	}

	s := xcodeSched(t)
	for dw := 1; dw <= 8; dw++ {
		for ew := 1; ew <= 4; ew++ {
			t.Run("dw"+strconv.Itoa(dw)+"-ew"+strconv.Itoa(ew), func(t *testing.T) {
				pool := media.NewSyncFramePool(64)
				met := NewMetrics()
				fj, err := NewTranscodeJob(context.Background(), "t", stream, q, pool, dw, ew, met)
				if err != nil {
					t.Fatal(err)
				}
				fused, err := runSync(t, s, fj)
				if err != nil {
					t.Fatalf("fused: %v", err)
				}
				tj, err := NewTranscodeJobTwoPhase(context.Background(), "t", stream, q, pool, dw, ew)
				if err != nil {
					t.Fatal(err)
				}
				two, err := runSync(t, s, tj)
				if err != nil {
					t.Fatalf("two-phase: %v", err)
				}
				if !bytes.Equal(fused.Body, want) {
					t.Errorf("fused output differs from batch reference (%d vs %d bytes)", len(fused.Body), len(want))
				}
				if !bytes.Equal(fused.Body, two.Body) {
					t.Errorf("fused output differs from two-phase (%d vs %d bytes)", len(fused.Body), len(two.Body))
				}
				if n := pool.Outstanding(); n != 0 {
					t.Errorf("pool leak: %d frames outstanding", n)
				}
				if fused.Meta["X-Transcode-Peak-Frames"] == "" {
					t.Error("fused result missing X-Transcode-Peak-Frames")
				}
			})
		}
	}
}

// TestTranscodeFusedBoundedInflight checks the point of the fusion: on
// a long clip the fused pipeline's peak in-flight frame count stays
// bounded by the GOP reorder window, far below the clip length.
func TestTranscodeFusedBoundedInflight(t *testing.T) {
	const frames = 36
	stream, _, _ := testStream(t, 64, 48, frames, func(c *media.CodecConfig) { c.GOPM = 3 })
	pool := media.NewSyncFramePool(64)
	met := NewMetrics()
	s := xcodeSched(t)
	j, err := NewTranscodeJob(context.Background(), "t", stream, 9, pool, 4, 2, met)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runSync(t, s, j)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := strconv.Atoi(res.Meta["X-Transcode-Peak-Frames"])
	if err != nil {
		t.Fatalf("bad X-Transcode-Peak-Frames %q", res.Meta["X-Transcode-Peak-Frames"])
	}
	// GOP M (3) + parser window (M+2) + handoff depth + encoder pending:
	// anything close to `frames` means the fusion regressed to batch.
	if peak <= 0 || peak >= frames/2 {
		t.Errorf("peak in-flight frames = %d for a %d-frame clip; want a small GOP-bounded value", peak, frames)
	}
	if got := met.XcodePeakFrames.Load(); got != int64(peak) {
		t.Errorf("metrics peak %d != job peak %d", got, peak)
	}
}

// TestTranscodeFusedCancelNoLeak cancels fused transcodes at a spread
// of points mid-pipeline and requires every pooled frame back (the
// joint-ownership accounting must drain on every unwind path).
func TestTranscodeFusedCancelNoLeak(t *testing.T) {
	stream, _, _ := testStream(t, 96, 80, 18, func(c *media.CodecConfig) {
		c.GOPM = 3
		c.HalfPel = true
	})
	s := xcodeSched(t)
	for _, delay := range []time.Duration{0, time.Millisecond, 3 * time.Millisecond,
		8 * time.Millisecond, 20 * time.Millisecond} {
		t.Run(delay.String(), func(t *testing.T) {
			pool := media.NewSyncFramePool(128)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			j, err := NewTranscodeJob(ctx, "t", stream, 9, pool, 4, 2, NewMetrics())
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Submit(j); err != nil {
				t.Fatal(err)
			}
			time.Sleep(delay)
			j.Cancel()
			<-j.Done()
			// Whether the cancel landed mid-flight or after completion,
			// every frame must be back in the pool.
			if n := pool.Outstanding(); n != 0 {
				t.Fatalf("pool leak after cancel at %v: %d frames outstanding", delay, n)
			}
			if _, err := j.Result(); err != nil && !errorsIsCanceled(err) {
				t.Fatalf("unexpected error class: %v", err)
			}
		})
	}
}

func errorsIsCanceled(err error) bool {
	return err != nil && (context.Canceled == err || contains(err.Error(), "canceled"))
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

// TestTranscodeFusedPreemptNoLeak runs a fused transcode under a 1ms
// slice so the scheduler preempts it repeatedly at frame boundaries;
// the output must still be bit-identical and the pool must drain.
func TestTranscodeFusedPreemptNoLeak(t *testing.T) {
	stream, _, _ := testStream(t, 96, 80, 12, func(c *media.CodecConfig) { c.GOPM = 3 })
	const q = 9
	ref, err := media.Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _, err := media.Encode(TranscodeConfig(ref.Seq, q), ref.DisplayFrames())
	if err != nil {
		t.Fatal(err)
	}

	s := NewScheduler(Config{Workers: 1, BaseSlice: time.Millisecond, QueueCap: 8}, NewMetrics())
	defer s.Drain(context.Background())
	pool := media.NewSyncFramePool(64)
	j, err := NewTranscodeJob(context.Background(), "t", stream, q, pool, 4, 2, NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	res, err := runSync(t, s, j)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Body, want) {
		t.Errorf("preempted fused output differs from reference (%d vs %d bytes)", len(res.Body), len(want))
	}
	if j.Preempts() == 0 {
		t.Log("no preemptions observed (machine too fast for the 1ms slice); parity still checked")
	}
	if n := pool.Outstanding(); n != 0 {
		t.Errorf("pool leak after preempted run: %d frames outstanding", n)
	}
}

// TestTranscodeFusedBadStream truncates the bitstream mid-frame: the
// fused job must fail with ErrBitstream (for the 400 mapping) and leak
// nothing, for both decode engines.
func TestTranscodeFusedBadStream(t *testing.T) {
	stream, _, _ := testStream(t, 64, 48, 8, func(c *media.CodecConfig) { c.GOPM = 3 })
	bad := stream[:len(stream)*2/3]
	s := xcodeSched(t)
	for _, dw := range []int{1, 4} {
		pool := media.NewSyncFramePool(64)
		j, err := NewTranscodeJob(context.Background(), "t", bad, 9, pool, dw, 2, NewMetrics())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := runSync(t, s, j); err == nil {
			t.Fatalf("dw=%d: truncated stream transcoded successfully", dw)
		}
		if n := pool.Outstanding(); n != 0 {
			t.Errorf("dw=%d: pool leak on bad stream: %d frames outstanding", dw, n)
		}
	}
}

// FuzzTranscodeFusedParity fuzzes clip shape, GOP structure, quantizer,
// and worker counts, and requires fused == two-phase byte identity plus
// a drained pool on every input (valid or not).
func FuzzTranscodeFusedParity(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(6), uint8(9), uint8(12), uint8(3), false, int64(7), uint8(2), uint8(2))
	f.Add(uint8(2), uint8(1), uint8(9), uint8(12), uint8(6), uint8(1), true, int64(1), uint8(4), uint8(1))
	f.Add(uint8(1), uint8(2), uint8(4), uint8(20), uint8(8), uint8(4), true, int64(3), uint8(1), uint8(3))
	f.Fuzz(func(t *testing.T, wmb, hmb, frames, q, gopn, gopm uint8, halfPel bool, seed int64, dw, ew uint8) {
		w := 16 * (1 + int(wmb)%4)
		h := 16 * (1 + int(hmb)%4)
		nf := 1 + int(frames)%12
		src := media.DefaultSource(w, h)
		src.Seed = seed
		fr := media.NewSource(src).Frames(nf)
		cfg := media.DefaultCodec(w, h)
		cfg.GOPN = 1 + int(gopn)%30
		cfg.GOPM = 1 + int(gopm)%15
		cfg.HalfPel = halfPel
		if cfg.Validate() != nil {
			return // e.g. GOPM > GOPN: not an encodable shape
		}
		stream, _, _, err := media.Encode(cfg, fr)
		if err != nil {
			t.Fatal(err)
		}
		xq := 1 + int(q)%30
		pool := media.NewSyncFramePool(64)
		s := xcodeSched(t)
		fj, err := NewTranscodeJob(context.Background(), "t", stream, xq, pool, 1+int(dw)%8, 1+int(ew)%4, NewMetrics())
		if err != nil {
			t.Fatal(err)
		}
		fused, err := runSync(t, s, fj)
		if err != nil {
			t.Fatal(err)
		}
		tj, err := NewTranscodeJobTwoPhase(context.Background(), "t", stream, xq, pool, 1+int(dw)%8, 1+int(ew)%4)
		if err != nil {
			t.Fatal(err)
		}
		two, err := runSync(t, s, tj)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fused.Body, two.Body) {
			t.Fatalf("fused and two-phase outputs differ (%d vs %d bytes)", len(fused.Body), len(two.Body))
		}
		if n := pool.Outstanding(); n != 0 {
			t.Fatalf("pool leak: %d frames outstanding", n)
		}
	})
}

// benchClip is the workload BenchmarkTranscode runs: long enough that
// O(frames) vs O(GOP M) in-flight memory is visible in bytes/op.
func benchClip(b *testing.B) []byte {
	src := media.DefaultSource(176, 144)
	src.Seed = 1
	fr := media.NewSource(src).Frames(24)
	cfg := media.DefaultCodec(176, 144)
	cfg.GOPM = 3
	stream, _, _, err := media.Encode(cfg, fr)
	if err != nil {
		b.Fatal(err)
	}
	return stream
}

// BenchmarkTranscode compares the fused pipeline against the two-phase
// reference on the same clip, scheduler, and pool: wall time per op,
// allocated bytes per op, and (fused) the peak in-flight frame gauge.
func BenchmarkTranscode(b *testing.B) {
	stream := benchClip(b)
	const q = 9
	b.Run("fused", func(b *testing.B) {
		s := xcodeSched(b)
		pool := media.NewSyncFramePool(64)
		met := NewMetrics()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, err := NewTranscodeJob(context.Background(), "t", stream, q, pool, 4, 0, met)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := runSync(b, s, j); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(met.XcodePeakFrames.Load()), "peak-frames")
	})
	b.Run("two-phase", func(b *testing.B) {
		s := xcodeSched(b)
		pool := media.NewSyncFramePool(64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j, err := NewTranscodeJobTwoPhase(context.Background(), "t", stream, q, pool, 4, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := runSync(b, s, j); err != nil {
				b.Fatal(err)
			}
		}
	})
}
