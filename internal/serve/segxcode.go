package serve

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"eclipse/internal/kpn"
	"eclipse/internal/media"
)

// segMinFrames is the clip length below which segmented transcode is
// not worth its indexing pass: the fused pipeline already overlaps
// decode and encode, and short clips rarely contain more than one
// closed GOP anyway.
const segMinFrames = 24

// NewTranscodeJobSegmented builds a transcode job that splits the clip
// at closed-GOP boundaries and runs up to `segments` independent fused
// decode→encode pipelines in parallel, splicing their headerless
// bitstreams back together (media.StitchSegments) into output
// byte-identical to the serial fused path. Each segment pipeline is its
// own checkpointed Kahn task, so scheduler preemption and cancellation
// land at frame boundaries in every segment at once; frames stay
// jointly owned (frameRefs) and pooled, so peak in-flight memory is
// bounded by segments × O(GOP M), never O(frames).
//
// Clips shorter than segMinFrames, requests with segments <= 1, and
// clips whose GOP structure yields no usable interior cut (open GOPs:
// any N, M with (N-1)%M != 0 and M > 1) fall back to the single fused
// pipeline; the X-Transcode-Segments response header reports the
// parallelism actually used.
func NewTranscodeJobSegmented(ctx context.Context, tenant string, stream []byte, q int, pool *media.SyncFramePool, workers, encWorkers, segments int, met *Metrics) (*Job, error) {
	seq, err := media.ParseSeqHeader(media.NewBitReader(stream))
	if err != nil {
		return nil, err
	}
	cfg := TranscodeConfig(seq, q)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fused := fusedTranscodeBody(stream, seq, cfg, q, pool, workers, encWorkers, met)
	body := func(ctx context.Context, gate *kpn.Gate) (Result, error) {
		if segments <= 1 || seq.Frames < segMinFrames {
			return runFusedFallback(ctx, gate, fused)
		}
		// Phase A: one checkpointed scan of the bitstream builds the GOP
		// index (frame bit offsets + closed-cut set) and validates the
		// stream's structure before any pixel work starts.
		var ix *media.GOPIndex
		ig := kpn.NewGraph("gopindex")
		ig.AddTask("ix", "index")
		ifuncs := map[string]kpn.TaskFunc{
			"index": func(c *kpn.TaskCtx) error {
				var err error
				ix, err = media.IndexGOPs(stream, func(int) error { return c.Checkpoint() })
				return err
			},
		}
		if err := kpn.RunContext(ctx, ig, ifuncs, kpn.WithGate(gate)); err != nil {
			return Result{}, err
		}
		cuts := ix.TranscodeCuts(cfg.GOPN, cfg.GOPM)
		spans := media.PartitionSegments(seq.Frames, segments, cuts)
		if len(spans) <= 1 {
			return runFusedFallback(ctx, gate, fused)
		}

		// Phase B: one fused decode→encode pipeline per span, all under
		// the job gate. The spans are claimed atomically by K copies of a
		// single task body; a failure in any segment poisons the gate, so
		// sibling segments unwind at their next frame checkpoint.
		nseg := len(spans)
		track := &inflightFrames{pool: pool}
		refs := &frameRefs{n: make(map[*media.Frame]int)}
		release := func(f *media.Frame) { refs.release(f, track.put) }
		writers := make([]*media.BitWriter, nseg)
		segStats := make([]*media.EncodeStats, nseg)
		wall := make([]time.Duration, nseg)
		var claim atomic.Int64

		g := kpn.NewGraph("segxcode")
		for i := 0; i < nseg; i++ {
			g.AddTask(fmt.Sprintf("seg%d", i), "segment")
		}
		funcs := map[string]kpn.TaskFunc{
			"segment": func(c *kpn.TaskCtx) error {
				i := int(claim.Add(1)) - 1
				lo, hi := spans[i][0], spans[i][1]
				enc, err := media.NewStreamEncoderSegment(cfg, seq.Frames, lo, hi)
				if err != nil {
					return err
				}
				enc.Workers = encWorkers
				enc.Recycle = release
				start := time.Now()
				_, err = media.DecodeSegment(stream, ix.FrameBit(lo), lo, hi, media.DecodeOptions{
					Workers:  workers,
					NewFrame: track.get,
					Recycle:  track.put, // undelivered frames: decoder is sole owner
					OnFrame:  func(int) error { return c.Checkpoint() },
					OnDisplayFrame: func(di int, f *media.Frame) error {
						// Two stakes: the decoder keeps reading the frame as
						// a prediction reference until Retire; the encoder's
						// stake drops via enc.Recycle once coded. Fusion is
						// synchronous here — the segments themselves are the
						// parallelism, so no handoff channel per segment.
						refs.add(f, 2)
						if err := enc.Push(f); err != nil {
							release(f) // encoder stake; Retire covers the decoder's
							return err
						}
						return nil
					},
					Retire: release,
				})
				if err != nil {
					enc.Abort()
					return err
				}
				w, stats, err := enc.CloseRaw()
				if err != nil {
					return err
				}
				writers[i] = w
				segStats[i] = stats
				wall[i] = time.Since(start)
				return nil
			},
		}
		err := kpn.RunContext(ctx, g, funcs, kpn.WithGate(gate))
		if met != nil {
			met.recordXcodePeak(track.peak.Load())
		}
		if err != nil {
			return Result{}, err
		}

		out, err := media.StitchSegments(cfg, seq.Frames, writers)
		if err != nil {
			return Result{}, err
		}
		totalBits := 0
		for _, st := range segStats {
			totalBits += st.TotalBits()
		}
		minW, maxW := wall[0], wall[0]
		for _, d := range wall[1:] {
			if d < minW {
				minW = d
			}
			if d > maxW {
				maxW = d
			}
		}
		if met != nil {
			met.XcodeSegJobs.Add(1)
			met.XcodeSegments.Add(uint64(nseg))
			met.XcodeStitchBytes.Add(uint64(len(out)))
			met.recordXcodeSegSkew(int64(maxW - minW))
		}
		meta := seqMeta(seq, seq.Frames)
		meta["X-Seq-Q"] = strconv.Itoa(q)
		meta["X-Seq-Bits"] = strconv.Itoa(totalBits)
		meta["X-Transcode-Peak-Frames"] = strconv.FormatInt(track.peak.Load(), 10)
		meta["X-Transcode-Segments"] = strconv.Itoa(nseg)
		return Result{Body: out, Meta: meta}, nil
	}
	return NewJob(tenant, KindTranscode, ctx, body), nil
}

// runFusedFallback runs the single fused pipeline under the same gate
// and stamps the response as unsegmented.
func runFusedFallback(ctx context.Context, gate *kpn.Gate,
	fused func(ctx context.Context, gate *kpn.Gate) (Result, error)) (Result, error) {
	res, err := fused(ctx, gate)
	if err != nil {
		return Result{}, err
	}
	res.Meta["X-Transcode-Segments"] = "1"
	return res, nil
}
