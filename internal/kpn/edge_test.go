package kpn

import (
	"bytes"
	"context"
	"errors"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fanoutGraph builds src.out -> {a.in, b.in} with one broadcast stream.
func fanoutGraph(buf int) *Graph {
	g := NewGraph("fanout")
	g.AddTask("src", "source").AddOut("out")
	g.AddTask("a", "sink").AddIn("in")
	g.AddTask("b", "sink").AddIn("in")
	g.MustConnect("src.out", buf, "a.in", "b.in")
	return g
}

// TestMultiConsumerEOFAfterDrain checks the broadcast-FIFO edge case the
// serving path leans on: after the producer closes, a consumer that has
// not yet read anything must still drain every buffered byte and only
// then see io.EOF — and a consumer that already drained must not block
// the laggard's access to the buffered data.
func TestMultiConsumerEOFAfterDrain(t *testing.T) {
	const total = 1000
	payload := make([]byte, total)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	fastDone := make(chan struct{})
	var gotA, gotB []byte
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error {
			// Write in awkward chunk sizes, then return (closing the stream).
			for off := 0; off < total; {
				n := 37
				if off+n > total {
					n = total - off
				}
				if err := c.Write("out", payload[off:off+n]); err != nil {
					return err
				}
				off += n
			}
			return nil
		},
		"a": func(c *TaskCtx) error {
			defer close(fastDone)
			buf := make([]byte, 64)
			for {
				n, err := c.ReadSome("in", buf)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				gotA = append(gotA, buf[:n]...)
			}
		},
		"b": func(c *TaskCtx) error {
			// Start draining only after the fast consumer saw EOF, i.e.
			// strictly after the stream closed: every byte must still be
			// there.
			<-fastDone
			buf := make([]byte, 11)
			for {
				n, err := c.ReadSome("in", buf)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				gotB = append(gotB, buf[:n]...)
			}
		},
	}
	if err := Run(fanoutGraph(2*total), funcs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, payload) {
		t.Fatalf("fast consumer: got %d bytes, mismatch with payload", len(gotA))
	}
	if !bytes.Equal(gotB, payload) {
		t.Fatalf("slow consumer: got %d bytes after close, want all %d", len(gotB), total)
	}
}

// TestEOFMidRecordAfterDrain checks that a ReadFull spanning the close
// point drains the remaining bytes and reports io.ErrUnexpectedEOF, not
// a clean EOF.
func TestEOFMidRecordAfterDrain(t *testing.T) {
	var gotErr error
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error {
			return c.Write("out", make([]byte, 10))
		},
		"a": func(c *TaskCtx) error {
			if err := c.Read("in", make([]byte, 7)); err != nil {
				return err
			}
			gotErr = c.Read("in", make([]byte, 8)) // only 3 bytes remain
			return nil
		},
		"b": func(c *TaskCtx) error { // second consumer drains cleanly
			if err := c.Read("in", make([]byte, 10)); err != nil {
				return err
			}
			if err := c.Read("in", make([]byte, 1)); err != io.EOF {
				return errors.New("want io.EOF at record boundary")
			}
			return nil
		},
	}
	if err := Run(fanoutGraph(64), funcs); err != nil {
		t.Fatal(err)
	}
	if gotErr != io.ErrUnexpectedEOF {
		t.Fatalf("mid-record close: got %v, want io.ErrUnexpectedEOF", gotErr)
	}
}

// TestMidStreamProducerAbort checks that a producer returning a non-nil
// error mid-stream poisons the network: every consumer observes the
// failure (never a clean EOF), and Run reports it.
func TestMidStreamProducerAbort(t *testing.T) {
	boom := errors.New("boom")
	var sawEOF atomic.Int32
	consumer := func(c *TaskCtx) error {
		buf := make([]byte, 16)
		for {
			_, err := c.ReadSome("in", buf)
			if err == io.EOF {
				sawEOF.Add(1)
				return nil
			}
			if err != nil {
				return nil // expected poison; swallow so Run reports the producer's error
			}
		}
	}
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error {
			if err := c.Write("out", make([]byte, 100)); err != nil {
				return err
			}
			return boom
		},
		"a": consumer,
		"b": consumer,
	}
	err := Run(fanoutGraph(32), funcs)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Run = %v, want the producer's abort error", err)
	}
	if n := sawEOF.Load(); n != 0 {
		t.Fatalf("%d consumers saw clean EOF after a producer abort", n)
	}
}

// TestRunContextCancel checks that cancelling the run context poisons an
// otherwise endless network and RunContext returns the context error.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once atomic.Bool
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error {
			buf := make([]byte, 8)
			for {
				if err := c.Write("out", buf); err != nil {
					return nil
				}
			}
		},
		"sink": func(c *TaskCtx) error {
			buf := make([]byte, 8)
			for {
				if _, err := c.ReadSome("in", buf); err != nil {
					return nil
				}
				if once.CompareAndSwap(false, true) {
					close(started)
				}
			}
		},
	}
	g := NewGraph("cancel")
	g.AddTask("src", "source").AddOut("out")
	g.AddTask("dst", "sink").AddIn("in")
	g.MustConnect("src.out", 64, "dst.in")
	go func() {
		<-started
		cancel()
	}()
	errc := make(chan error, 1)
	go func() { errc <- RunContext(ctx, g, funcs) }()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after cancel")
	}
}

// TestGatePauseResume checks time-sliced stepping: closing the gate
// parks the network at stream-operation boundaries (no further
// progress), reopening resumes it to completion.
func TestGatePauseResume(t *testing.T) {
	const total = 4096
	var moved atomic.Int64
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error {
			buf := make([]byte, 16)
			for off := 0; off < total; off += len(buf) {
				if err := c.Write("out", buf); err != nil {
					return err
				}
			}
			return nil
		},
		"sink": func(c *TaskCtx) error {
			buf := make([]byte, 16)
			for {
				n, err := c.ReadSome("in", buf)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				moved.Add(int64(n))
				// Pace the drain so the test reliably pauses mid-stream.
				time.Sleep(time.Millisecond)
			}
		},
	}
	g := NewGraph("gated")
	g.AddTask("src", "source").AddOut("out")
	g.AddTask("dst", "sink").AddIn("in")
	g.MustConnect("src.out", 32, "dst.in")

	gate := NewGate(true)
	errc := make(chan error, 1)
	go func() { errc <- RunContext(context.Background(), g, funcs, WithGate(gate)) }()

	// Let it run a little, then pause.
	for moved.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	gate.Close()
	time.Sleep(20 * time.Millisecond) // settle: in-flight ops finish
	before := moved.Load()
	time.Sleep(50 * time.Millisecond)
	if after := moved.Load(); after != before {
		t.Fatalf("network progressed while gate closed: %d -> %d bytes", before, after)
	}
	if before == total {
		t.Fatal("network finished before the pause; pause untested")
	}
	gate.Open()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("network did not finish after gate reopened")
	}
	if moved.Load() != total {
		t.Fatalf("moved %d bytes, want %d", moved.Load(), total)
	}
}

// TestCancelWhilePaused checks that a network paused by its gate still
// unwinds when the run context is cancelled — the gate is poisoned by
// the failure, so parked tasks wake with the error.
func TestCancelWhilePaused(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	gate := NewGate(true)
	started := make(chan struct{})
	var once atomic.Bool
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error {
			buf := make([]byte, 8)
			for {
				if err := c.Write("out", buf); err != nil {
					return nil
				}
				if once.CompareAndSwap(false, true) {
					close(started)
				}
			}
		},
		"sink": func(c *TaskCtx) error {
			buf := make([]byte, 8)
			for {
				if _, err := c.ReadSome("in", buf); err != nil {
					return nil
				}
			}
		},
	}
	g := NewGraph("paused-cancel")
	g.AddTask("src", "source").AddOut("out")
	g.AddTask("dst", "sink").AddIn("in")
	g.MustConnect("src.out", 64, "dst.in")

	errc := make(chan error, 1)
	go func() { errc <- RunContext(ctx, g, funcs, WithGate(gate)) }()
	<-started
	gate.Close()
	time.Sleep(10 * time.Millisecond) // let tasks park at the gate
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("paused network did not unwind on cancel")
	}
}
