package kpn

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// TaskFunc is the body of a software Kahn task: it reads records from its
// input ports and writes records to its output ports until done. A nil
// error return closes the task's output streams (consumers see EOF after
// draining); a non-nil return aborts the whole network.
type TaskFunc func(c *TaskCtx) error

// TaskCtx gives a task blocking access to its ports, following Kahn
// semantics: Read blocks until the requested bytes are available, Write
// blocks while the FIFO is full.
type TaskCtx struct {
	task *Task
	exec *Executor
	ins  map[string]*fifoReader
	outs map[string]*fifoWriter
}

// Name returns the task's name.
func (c *TaskCtx) Name() string { return c.task.Name }

// Info returns the task's configuration parameter (the value GetTask
// delivers in the Eclipse mapping).
func (c *TaskCtx) Info() uint32 { return c.task.Info }

// Context returns the context the network was started with (from
// RunContext), so task bodies can thread request-scoped deadlines and
// cancellation into work they do between stream operations.
func (c *TaskCtx) Context() context.Context {
	if c.exec == nil || c.exec.ctx == nil {
		return context.Background()
	}
	return c.exec.ctx
}

// Checkpoint marks a task-switch boundary: it parks while the network's
// gate (if any) is closed and returns a non-nil error when the run
// context was cancelled or the gate was poisoned. Read, ReadSome, and
// Write checkpoint implicitly; bodies that compute for a long time
// between stream operations should call Checkpoint at natural step
// boundaries (e.g. once per frame) to stay preemptible.
func (c *TaskCtx) Checkpoint() error {
	if c.exec == nil {
		return nil
	}
	return c.exec.checkpoint()
}

// Read fills buf from the named input port, blocking as needed. It
// returns io.EOF when the stream ended cleanly before any byte, or
// io.ErrUnexpectedEOF when it ended mid-request.
func (c *TaskCtx) Read(port string, buf []byte) error {
	r, ok := c.ins[port]
	if !ok {
		return fmt.Errorf("kpn: task %s: no input port %q", c.task.Name, port)
	}
	if err := c.Checkpoint(); err != nil {
		return err
	}
	return r.ReadFull(buf)
}

// ReadSome reads between 1 and len(buf) bytes from the named input port,
// blocking until at least one byte is available; it returns io.EOF at a
// cleanly ended stream. Use it for data-dependent input where the
// remaining stream length is unknown (e.g. a bit-stream tail).
func (c *TaskCtx) ReadSome(port string, buf []byte) (int, error) {
	r, ok := c.ins[port]
	if !ok {
		return 0, fmt.Errorf("kpn: task %s: no input port %q", c.task.Name, port)
	}
	if err := c.Checkpoint(); err != nil {
		return 0, err
	}
	return r.ReadSome(buf)
}

// Write sends data to the named output port, blocking as needed.
func (c *TaskCtx) Write(port string, data []byte) error {
	w, ok := c.outs[port]
	if !ok {
		return fmt.Errorf("kpn: task %s: no output port %q", c.task.Name, port)
	}
	if err := c.Checkpoint(); err != nil {
		return err
	}
	return w.Write(data)
}

// Executor runs a graph functionally: one goroutine per task, FIFO per
// stream. It detects whole-network deadlock (every live task blocked on a
// stream) and reports it instead of hanging — the functional analogue of
// the cycle simulator's DeadlockError.
type Executor struct {
	g     *Graph
	funcs map[string]TaskFunc
	fifos map[*Stream]*fifo

	ctx  context.Context // run context; cancellation poisons the network
	gate *Gate           // optional pause/resume throttle (nil = always open)

	epoch atomic.Uint64 // bumped on every FIFO state mutation

	mu      sync.Mutex
	live    int
	blocked map[*blockedEntry]struct{}
	failure error
}

// checkpoint implements the task-switch boundary: park while the gate is
// closed, then observe cancellation.
func (e *Executor) checkpoint() error {
	if e.gate != nil {
		if err := e.gate.Wait(); err != nil {
			return err
		}
	}
	if e.ctx != nil {
		select {
		case <-e.ctx.Done():
			return e.ctx.Err()
		default:
		}
	}
	return nil
}

// blockedEntry describes one parked task: the FIFO it waits on and its
// wait condition (to be evaluated with that FIFO's lock held).
type blockedEntry struct {
	f     *fifo
	check func() bool
}

// DeadlockError reports that the functional network stalled.
type DeadlockError struct {
	Live int
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("kpn: network deadlock (%d live tasks all blocked)", e.Live)
}

// RunOption customizes a RunContext execution.
type RunOption func(*Executor)

// WithGate installs a pause/resume gate on the network: every task
// checkpoints against it at each stream operation. The same gate may be
// reused across sequential RunContext calls of one logical job.
func WithGate(gate *Gate) RunOption {
	return func(e *Executor) { e.gate = gate }
}

// Run validates the graph, binds each task to funcs[task.Name] (falling
// back to funcs[task.Fn]), executes the network, and returns the first
// failure (task error or deadlock) or nil when all tasks finish.
func Run(g *Graph, funcs map[string]TaskFunc) error {
	return RunContext(context.Background(), g, funcs)
}

// RunContext is Run with request-scoped cancellation: when ctx is
// cancelled the network is poisoned (blocked tasks wake with the context
// error, the gate — if any — fails) and RunContext returns the context
// error once all task goroutines have unwound. Options install a Gate
// for time-sliced scheduling of the whole network.
func RunContext(ctx context.Context, g *Graph, funcs map[string]TaskFunc, opts ...RunOption) error {
	if err := g.Validate(); err != nil {
		return err
	}
	e := &Executor{g: g, funcs: funcs, ctx: ctx, fifos: map[*Stream]*fifo{}, blocked: map[*blockedEntry]struct{}{}}
	for _, opt := range opts {
		opt(e)
	}
	if ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				e.fail(ctx.Err())
			case <-stop:
			}
		}()
	}
	for _, t := range g.Tasks {
		if e.fn(t) == nil {
			return fmt.Errorf("kpn: no function for task %s (fn %s)", t.Name, t.Fn)
		}
	}
	for _, s := range g.Streams {
		if err := checkCapacity(s); err != nil {
			return err
		}
		e.fifos[s] = newFIFO(s.BufBytes, len(s.To), e)
	}
	var wg sync.WaitGroup
	e.live = len(g.Tasks)
	for _, t := range g.Tasks {
		ctx := e.bind(t)
		fn := e.fn(t)
		wg.Add(1)
		go func(t *Task) {
			defer wg.Done()
			err := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("kpn: task %s panicked: %v", t.Name, r)
					}
				}()
				return fn(ctx)
			}()
			if err != nil {
				e.fail(fmt.Errorf("kpn: task %s: %w", t.Name, err))
			}
			// Close this task's output streams so consumers can drain.
			for _, w := range ctx.outs {
				w.Close()
			}
			e.taskDone()
		}(t)
	}
	wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failure
}

// fn resolves the function for a task: by task name first, then by Kahn
// function name.
func (e *Executor) fn(t *Task) TaskFunc {
	if f, ok := e.funcs[t.Name]; ok {
		return f
	}
	return e.funcs[t.Fn]
}

// bind builds a task's port endpoints.
func (e *Executor) bind(t *Task) *TaskCtx {
	ctx := &TaskCtx{task: t, exec: e, ins: map[string]*fifoReader{}, outs: map[string]*fifoWriter{}}
	for _, p := range t.Ports {
		ref := PortRef{Task: t.Name, Port: p.Name}
		s := e.g.StreamFor(ref)
		f := e.fifos[s]
		if p.Dir == Out {
			ctx.outs[p.Name] = &fifoWriter{f: f, name: ref.String()}
			continue
		}
		for i, c := range s.To {
			if c == ref {
				ctx.ins[p.Name] = &fifoReader{f: f, idx: i, name: ref.String()}
			}
		}
	}
	return ctx
}

// taskBlocked is called (with the fifo's lock held) before a task parks.
// When every live task is parked it triggers asynchronous deadlock
// verification; the verdict is only reached if every parked task's wait
// condition is false and no FIFO mutates meanwhile, which excludes the
// transient "woken but not yet scheduled" state.
func (e *Executor) taskBlocked(f *fifo, check func() bool) *blockedEntry {
	ent := &blockedEntry{f: f, check: check}
	e.mu.Lock()
	e.blocked[ent] = struct{}{}
	trigger := len(e.blocked) == e.live && e.failure == nil
	e.mu.Unlock()
	if trigger {
		go e.verifyDeadlock()
	}
	return ent
}

// taskUnblocked is called after a task resumes.
func (e *Executor) taskUnblocked(ent *blockedEntry) {
	e.mu.Lock()
	delete(e.blocked, ent)
	e.mu.Unlock()
}

// taskDone retires a live task and re-checks for deadlock among the rest.
func (e *Executor) taskDone() {
	e.mu.Lock()
	e.live--
	trigger := e.live > 0 && len(e.blocked) == e.live && e.failure == nil
	e.mu.Unlock()
	if trigger {
		go e.verifyDeadlock()
	}
}

// verifyDeadlock confirms that every live task is hopelessly blocked. A
// parked task whose wait condition holds has a pending wakeup (its waker
// mutated state, and hence bumped the epoch, before broadcasting), so any
// true condition or epoch movement vetoes the verdict.
func (e *Executor) verifyDeadlock() {
	ep := e.epoch.Load()
	e.mu.Lock()
	if e.failure != nil || e.live == 0 || len(e.blocked) != e.live {
		e.mu.Unlock()
		return
	}
	ents := make([]*blockedEntry, 0, len(e.blocked))
	for ent := range e.blocked {
		ents = append(ents, ent)
	}
	live := e.live
	e.mu.Unlock()

	for _, ent := range ents {
		ent.f.mu.Lock()
		ok := ent.check()
		ent.f.mu.Unlock()
		if ok {
			return // pending wakeup: not a deadlock
		}
	}
	e.mu.Lock()
	dead := e.failure == nil && e.epoch.Load() == ep && e.live == live && len(e.blocked) == live
	if dead {
		e.failure = &DeadlockError{Live: live}
	}
	e.mu.Unlock()
	if dead {
		e.poisonAll()
	}
}

// fail records the first failure and poisons the network, including the
// gate — so a paused (descheduled) network still unwinds on failure.
func (e *Executor) fail(err error) {
	e.mu.Lock()
	if e.failure == nil {
		e.failure = err
	}
	e.mu.Unlock()
	if e.gate != nil {
		e.gate.Fail(err)
	}
	e.poisonAll()
}

func (e *Executor) poisonAll() {
	e.mu.Lock()
	err := e.failure
	e.mu.Unlock()
	for _, f := range e.fifos {
		f.fail(err)
	}
}
