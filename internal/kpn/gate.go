package kpn

import "sync"

// Gate is a pause/resume throttle for a running network. Task bodies
// check it at every stream operation (Read/ReadSome/Write) and at
// explicit Checkpoint calls — the software analogue of the coprocessor
// processing-step boundary (paper Section 4.2): an Eclipse coprocessor
// can be switched to another task only between processing steps, and a
// Kahn task can be descheduled only between stream operations. Closing
// the gate parks every task of the network at its next step boundary
// without unwinding the goroutines; reopening resumes them in place.
//
// A single Gate may be shared by several sequential RunContext calls
// (e.g. the decode and encode phases of a transcode job), so pausing
// and resuming act on the whole job regardless of which phase is
// active. Fail poisons the gate permanently: parked and future waiters
// return the error, letting a cancelled network unwind even while it
// is descheduled.
type Gate struct {
	mu   sync.Mutex
	cond *sync.Cond
	open bool
	err  error
}

// NewGate returns a gate in the given initial state.
func NewGate(open bool) *Gate {
	g := &Gate{open: open}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Open resumes the network: parked tasks continue from their step
// boundary.
func (g *Gate) Open() {
	g.mu.Lock()
	g.open = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Close pauses the network at the next step boundary of each task.
// Tasks already blocked inside a FIFO operation stay blocked there and
// hit the gate on their next operation.
func (g *Gate) Close() {
	g.mu.Lock()
	g.open = false
	g.mu.Unlock()
}

// Fail poisons the gate: every current and future Wait returns err.
// The first error wins. Fail(nil) is a no-op.
func (g *Gate) Fail(err error) {
	if err == nil {
		return
	}
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Wait blocks while the gate is closed. It returns nil when the gate is
// (or becomes) open, or the poison error if the gate failed.
func (g *Gate) Wait() error {
	g.mu.Lock()
	for !g.open && g.err == nil {
		g.cond.Wait()
	}
	err := g.err
	g.mu.Unlock()
	return err
}
