package kpn

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// fifo is a bounded byte FIFO with one producer and one or more
// consumers. Multi-consumer streams broadcast: every consumer sees every
// byte, and the producer's writable space is limited by the slowest
// consumer (the same semantics the Eclipse shells implement with one
// space counter per remote access point, Section 5.1).
type fifo struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    []byte   // ring buffer, len(buf) == capacity
	wtotal uint64   // total bytes ever written
	rtotal []uint64 // per-consumer total bytes ever read
	closed bool
	err    error

	// blocked-task accounting for network-level deadlock detection
	exec *Executor
}

func newFIFO(capacity, consumers int, exec *Executor) *fifo {
	f := &fifo{
		buf:    make([]byte, capacity),
		rtotal: make([]uint64, consumers),
		exec:   exec,
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// minRead returns the slowest consumer's total.
func (f *fifo) minRead() uint64 {
	m := f.rtotal[0]
	for _, r := range f.rtotal[1:] {
		if r < m {
			m = r
		}
	}
	return m
}

// space returns the bytes the producer may currently write.
func (f *fifo) space() int {
	return len(f.buf) - int(f.wtotal-f.minRead())
}

// available returns the bytes consumer i may currently read.
func (f *fifo) available(i int) int {
	return int(f.wtotal - f.rtotal[i])
}

// wait blocks on the condition variable with executor-level deadlock
// accounting. check re-evaluates the caller's wait condition (under f.mu)
// so the executor's deadlock verifier can distinguish a genuinely stuck
// task from one with a pending wakeup.
func (f *fifo) wait(check func() bool) {
	if f.exec != nil {
		ent := f.exec.taskBlocked(f, check)
		f.cond.Wait()
		f.exec.taskUnblocked(ent)
		return
	}
	f.cond.Wait()
}

// bump records a state mutation for the deadlock verifier's epoch check.
func (f *fifo) bump() {
	if f.exec != nil {
		f.exec.epoch.Add(1)
	}
}

// write appends all of data, blocking while the buffer is full. It
// returns the executor error if the network failed or deadlocked.
func (f *fifo) write(data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(data) > 0 {
		if f.err != nil {
			return f.err
		}
		if f.closed {
			return errors.New("kpn: write on closed stream")
		}
		n := f.space()
		if n == 0 {
			f.wait(func() bool { return f.err != nil || f.closed || f.space() > 0 })
			continue
		}
		if n > len(data) {
			n = len(data)
		}
		pos := int(f.wtotal % uint64(len(f.buf)))
		c := copy(f.buf[pos:], data[:n])
		copy(f.buf, data[c:n])
		f.wtotal += uint64(n)
		data = data[n:]
		f.bump()
		f.cond.Broadcast()
	}
	return nil
}

// readFull fills buf for consumer i, blocking until enough data arrives.
// At a closed stream it returns io.EOF if no bytes were available, or
// io.ErrUnexpectedEOF if the stream ended mid-record.
func (f *fifo) readFull(i int, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	got := 0
	for got < len(buf) {
		if f.err != nil {
			return f.err
		}
		n := f.available(i)
		if n == 0 {
			if f.closed {
				if got == 0 {
					return io.EOF
				}
				return io.ErrUnexpectedEOF
			}
			f.wait(func() bool { return f.err != nil || f.closed || f.available(i) > 0 })
			continue
		}
		if n > len(buf)-got {
			n = len(buf) - got
		}
		pos := int(f.rtotal[i] % uint64(len(f.buf)))
		c := copy(buf[got:got+n], f.buf[pos:])
		copy(buf[got+c:got+n], f.buf)
		f.rtotal[i] += uint64(n)
		got += n
		f.bump()
		f.cond.Broadcast()
	}
	return nil
}

// readSome reads between 1 and len(buf) bytes for consumer i, blocking
// until at least one byte is available. It returns io.EOF at a cleanly
// ended stream.
func (f *fifo) readSome(i int, buf []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.err != nil {
			return 0, f.err
		}
		n := f.available(i)
		if n == 0 {
			if f.closed {
				return 0, io.EOF
			}
			f.wait(func() bool { return f.err != nil || f.closed || f.available(i) > 0 })
			continue
		}
		if n > len(buf) {
			n = len(buf)
		}
		pos := int(f.rtotal[i] % uint64(len(f.buf)))
		c := copy(buf[:n], f.buf[pos:])
		copy(buf[c:n], f.buf)
		f.rtotal[i] += uint64(n)
		f.bump()
		f.cond.Broadcast()
		return n, nil
	}
}

// close marks end of stream; blocked readers drain and then see EOF.
func (f *fifo) close() {
	f.mu.Lock()
	f.closed = true
	f.bump()
	f.cond.Broadcast()
	f.mu.Unlock()
}

// fail poisons the FIFO, waking everyone with err.
func (f *fifo) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.bump()
	f.cond.Broadcast()
	f.mu.Unlock()
}

// endpoints used by TaskCtx

type fifoWriter struct {
	f    *fifo
	name string
}

func (w *fifoWriter) Write(data []byte) error { return w.f.write(data) }
func (w *fifoWriter) Close()                  { w.f.close() }

type fifoReader struct {
	f    *fifo
	idx  int
	name string
}

func (r *fifoReader) ReadFull(buf []byte) error { return r.f.readFull(r.idx, buf) }

func (r *fifoReader) ReadSome(buf []byte) (int, error) { return r.f.readSome(r.idx, buf) }

// sanity check during construction
func checkCapacity(s *Stream) error {
	if s.BufBytes <= 0 {
		return fmt.Errorf("kpn: stream %s: capacity %d", s.Name, s.BufBytes)
	}
	return nil
}
