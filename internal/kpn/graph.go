// Package kpn models Kahn Process Network applications: task graphs whose
// nodes communicate exclusively through unidirectional FIFO-buffered
// streams (paper Section 2.1). A Graph is a declarative structure shared
// by two execution engines:
//
//   - the functional executor in this package (one goroutine per task,
//     blocking reads/writes — the untimed Kahn reference semantics), and
//   - the cycle-accurate Eclipse model (packages shell/coproc/copro),
//     which maps tasks onto multi-tasking coprocessors.
//
// Kahn's theorem guarantees the sequence of bytes on every stream is
// independent of scheduling, which is what makes outputs of the two
// engines comparable byte for byte.
package kpn

import (
	"fmt"
	"sort"
	"strings"
)

// Direction tells whether a port consumes or produces data.
type Direction uint8

const (
	// In marks a consuming port.
	In Direction = iota
	// Out marks a producing port.
	Out
)

// String returns "in" or "out".
func (d Direction) String() string {
	if d == In {
		return "in"
	}
	return "out"
}

// Port is a named, directed connection point of a task.
type Port struct {
	Name string
	Dir  Direction
}

// Task is a node of the application graph. Fn names the Kahn function the
// task performs (e.g. "vld", "idct"); the mapping phase uses it to select
// a coprocessor or a software implementation. Info is the task_info
// parameter delivered by GetTask (e.g. forward-vs-inverse DCT selection).
type Task struct {
	Name  string
	Fn    string
	Info  uint32
	Ports []Port
}

// AddIn declares a consuming port and returns the task for chaining.
func (t *Task) AddIn(name string) *Task {
	t.Ports = append(t.Ports, Port{Name: name, Dir: In})
	return t
}

// AddOut declares a producing port and returns the task for chaining.
func (t *Task) AddOut(name string) *Task {
	t.Ports = append(t.Ports, Port{Name: name, Dir: Out})
	return t
}

// Port returns the named port, or nil.
func (t *Task) Port(name string) *Port {
	for i := range t.Ports {
		if t.Ports[i].Name == name {
			return &t.Ports[i]
		}
	}
	return nil
}

// PortRef identifies a task port as "task.port".
type PortRef struct {
	Task, Port string
}

// String formats the reference as "task.port".
func (r PortRef) String() string { return r.Task + "." + r.Port }

// parsePortRef splits "task.port".
func parsePortRef(s string) (PortRef, error) {
	i := strings.IndexByte(s, '.')
	if i <= 0 || i == len(s)-1 {
		return PortRef{}, fmt.Errorf("kpn: bad port reference %q (want task.port)", s)
	}
	return PortRef{Task: s[:i], Port: s[i+1:]}, nil
}

// Stream is an edge of the graph: one producer port, one or more consumer
// ports (a multi-consumer stream broadcasts every byte to each consumer),
// and a finite FIFO buffer.
type Stream struct {
	Name     string
	From     PortRef
	To       []PortRef
	BufBytes int
}

// Graph is a Kahn process network application.
type Graph struct {
	Name    string
	Tasks   []*Task
	Streams []*Stream
}

// NewGraph creates an empty application graph.
func NewGraph(name string) *Graph { return &Graph{Name: name} }

// AddTask declares a task; fn names its Kahn function for mapping.
func (g *Graph) AddTask(name, fn string) *Task {
	t := &Task{Name: name, Fn: fn}
	g.Tasks = append(g.Tasks, t)
	return t
}

// Task returns the named task, or nil.
func (g *Graph) Task(name string) *Task {
	for _, t := range g.Tasks {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Connect adds a stream from a producer port to one or more consumer
// ports, each given as "task.port", with the given FIFO capacity in
// bytes. It returns the stream so callers can adjust it.
func (g *Graph) Connect(from string, to []string, bufBytes int) (*Stream, error) {
	f, err := parsePortRef(from)
	if err != nil {
		return nil, err
	}
	s := &Stream{Name: from, From: f, BufBytes: bufBytes}
	for _, c := range to {
		r, err := parsePortRef(c)
		if err != nil {
			return nil, err
		}
		s.To = append(s.To, r)
	}
	g.Streams = append(g.Streams, s)
	return s, nil
}

// MustConnect is Connect that panics on malformed references; for use in
// statically-known graph builders.
func (g *Graph) MustConnect(from string, bufBytes int, to ...string) *Stream {
	s, err := g.Connect(from, to, bufBytes)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks structural well-formedness: unique task names, unique
// port names per task, every stream endpoint resolves to a port of the
// right direction, every port has exactly one incident stream, and
// positive buffer sizes.
func (g *Graph) Validate() error {
	taskSeen := map[string]bool{}
	for _, t := range g.Tasks {
		if t.Name == "" || strings.ContainsAny(t.Name, ". \t") {
			return fmt.Errorf("kpn: invalid task name %q", t.Name)
		}
		if taskSeen[t.Name] {
			return fmt.Errorf("kpn: duplicate task %q", t.Name)
		}
		taskSeen[t.Name] = true
		portSeen := map[string]bool{}
		for _, p := range t.Ports {
			if p.Name == "" || portSeen[p.Name] {
				return fmt.Errorf("kpn: task %q: invalid or duplicate port %q", t.Name, p.Name)
			}
			portSeen[p.Name] = true
		}
	}
	incident := map[PortRef]int{}
	resolve := func(r PortRef, want Direction) error {
		t := g.Task(r.Task)
		if t == nil {
			return fmt.Errorf("kpn: stream endpoint %s: no such task", r)
		}
		p := t.Port(r.Port)
		if p == nil {
			return fmt.Errorf("kpn: stream endpoint %s: no such port", r)
		}
		if p.Dir != want {
			return fmt.Errorf("kpn: stream endpoint %s: is an %s port, need %s", r, p.Dir, want)
		}
		incident[r]++
		return nil
	}
	for _, s := range g.Streams {
		if s.BufBytes <= 0 {
			return fmt.Errorf("kpn: stream %s: buffer size %d", s.Name, s.BufBytes)
		}
		if len(s.To) == 0 {
			return fmt.Errorf("kpn: stream %s has no consumers", s.Name)
		}
		if err := resolve(s.From, Out); err != nil {
			return err
		}
		for _, c := range s.To {
			if err := resolve(c, In); err != nil {
				return err
			}
		}
	}
	for _, t := range g.Tasks {
		for _, p := range t.Ports {
			ref := PortRef{Task: t.Name, Port: p.Name}
			switch n := incident[ref]; {
			case n == 0:
				return fmt.Errorf("kpn: port %s is unconnected", ref)
			case n > 1:
				return fmt.Errorf("kpn: port %s has %d incident streams", ref, n)
			}
		}
	}
	return nil
}

// StreamFor returns the stream incident with the given port reference
// (producing or consuming), or nil.
func (g *Graph) StreamFor(ref PortRef) *Stream {
	for _, s := range g.Streams {
		if s.From == ref {
			return s
		}
		for _, c := range s.To {
			if c == ref {
				return s
			}
		}
	}
	return nil
}

// String renders a compact description of the graph for diagnostics.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graph %s\n", g.Name)
	names := make([]string, 0, len(g.Tasks))
	for _, t := range g.Tasks {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		t := g.Task(n)
		fmt.Fprintf(&sb, "  task %s (%s)\n", t.Name, t.Fn)
	}
	for _, s := range g.Streams {
		tos := make([]string, len(s.To))
		for i, c := range s.To {
			tos[i] = c.String()
		}
		fmt.Fprintf(&sb, "  stream %s -> %s [%dB]\n", s.From, strings.Join(tos, ","), s.BufBytes)
	}
	return sb.String()
}
