package kpn

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"testing/quick"
)

func pipelineGraph(buf int) *Graph {
	g := NewGraph("pipe")
	g.AddTask("src", "source").AddOut("out")
	g.AddTask("mid", "double").AddIn("in").AddOut("out")
	g.AddTask("dst", "sink").AddIn("in")
	g.MustConnect("src.out", buf, "mid.in")
	g.MustConnect("mid.out", buf, "dst.in")
	return g
}

func TestGraphValidateOK(t *testing.T) {
	if err := pipelineGraph(16).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Graph
	}{
		{"duplicate task", func() *Graph {
			g := NewGraph("g")
			g.AddTask("a", "f").AddOut("o")
			g.AddTask("a", "f").AddIn("i")
			g.MustConnect("a.o", 4, "a.i")
			return g
		}},
		{"unconnected port", func() *Graph {
			g := NewGraph("g")
			g.AddTask("a", "f").AddOut("o")
			return g
		}},
		{"missing task endpoint", func() *Graph {
			g := pipelineGraph(8)
			g.MustConnect("ghost.x", 4, "mid.in")
			return g
		}},
		{"wrong direction", func() *Graph {
			g := NewGraph("g")
			g.AddTask("a", "f").AddOut("o").AddOut("o2")
			g.AddTask("b", "f").AddIn("i")
			g.MustConnect("a.o", 4, "b.i")
			g.MustConnect("a.o2", 4, "a.o") // consumer is an out port
			return g
		}},
		{"zero buffer", func() *Graph {
			g := NewGraph("g")
			g.AddTask("a", "f").AddOut("o")
			g.AddTask("b", "f").AddIn("i")
			g.MustConnect("a.o", 0, "b.i")
			return g
		}},
		{"double connection", func() *Graph {
			g := NewGraph("g")
			g.AddTask("a", "f").AddOut("o")
			g.AddTask("b", "f").AddIn("i")
			g.MustConnect("a.o", 4, "b.i")
			g.MustConnect("a.o", 4, "b.i")
			return g
		}},
		{"duplicate port", func() *Graph {
			g := NewGraph("g")
			g.AddTask("a", "f").AddOut("o").AddOut("o")
			g.AddTask("b", "f").AddIn("i")
			g.MustConnect("a.o", 4, "b.i")
			return g
		}},
	}
	for _, c := range cases {
		if err := c.build().Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestConnectBadRef(t *testing.T) {
	g := NewGraph("g")
	if _, err := g.Connect("noport", []string{"a.b"}, 4); err == nil {
		t.Fatal("bad from accepted")
	}
	if _, err := g.Connect("a.b", []string{"nope"}, 4); err == nil {
		t.Fatal("bad to accepted")
	}
}

func TestStreamFor(t *testing.T) {
	g := pipelineGraph(8)
	s := g.StreamFor(PortRef{"mid", "in"})
	if s == nil || s.From != (PortRef{"src", "out"}) {
		t.Fatalf("stream = %+v", s)
	}
	if g.StreamFor(PortRef{"nobody", "x"}) != nil {
		t.Fatal("phantom stream")
	}
}

// runPipeline executes src→mid→dst where mid doubles each byte.
func runPipeline(t *testing.T, buf, n int) []byte {
	t.Helper()
	g := pipelineGraph(buf)
	var out bytes.Buffer
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error {
			for i := 0; i < n; i++ {
				if err := c.Write("out", []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		},
		"mid": func(c *TaskCtx) error {
			b := make([]byte, 1)
			for {
				err := c.Read("in", b)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if err := c.Write("out", []byte{b[0] * 2}); err != nil {
					return err
				}
			}
		},
		"dst": func(c *TaskCtx) error {
			b := make([]byte, 1)
			for {
				err := c.Read("in", b)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				out.WriteByte(b[0])
			}
		},
	}
	if err := Run(g, funcs); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestPipelineRuns(t *testing.T) {
	got := runPipeline(t, 16, 100)
	if len(got) != 100 {
		t.Fatalf("got %d bytes", len(got))
	}
	for i, b := range got {
		if b != byte(i)*2 {
			t.Fatalf("byte %d = %d", i, b)
		}
	}
}

func TestKahnDeterminismAcrossBufferSizes(t *testing.T) {
	// Kahn's theorem: stream contents are independent of scheduling, and
	// buffer size only affects scheduling. Outputs must be identical.
	want := runPipeline(t, 1024, 300)
	for _, buf := range []int{1, 2, 3, 7, 64} {
		got := runPipeline(t, buf, 300)
		if !bytes.Equal(got, want) {
			t.Fatalf("buffer %d changed the output", buf)
		}
	}
}

func TestMultiConsumerBroadcast(t *testing.T) {
	g := NewGraph("bcast")
	g.AddTask("src", "f").AddOut("out")
	g.AddTask("a", "f").AddIn("in")
	g.AddTask("b", "f").AddIn("in")
	g.MustConnect("src.out", 4, "a.in", "b.in")
	var ga, gb []byte
	collect := func(dst *[]byte) TaskFunc {
		return func(c *TaskCtx) error {
			b := make([]byte, 1)
			for {
				err := c.Read("in", b)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				*dst = append(*dst, b[0])
			}
		}
	}
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error {
			return c.Write("out", []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
		},
		"a": collect(&ga),
		"b": collect(&gb),
	}
	if err := Run(g, funcs); err != nil {
		t.Fatal(err)
	}
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !bytes.Equal(ga, want) || !bytes.Equal(gb, want) {
		t.Fatalf("a=%v b=%v", ga, gb)
	}
}

func TestMultiConsumerSlowestGates(t *testing.T) {
	// With a 4-byte buffer and consumer b reading nothing until a has
	// read everything, the producer must stall on b; then b drains.
	g := NewGraph("gate")
	g.AddTask("src", "f").AddOut("out")
	g.AddTask("a", "f").AddIn("in")
	g.AddTask("b", "f").AddIn("in")
	g.MustConnect("src.out", 4, "a.in", "b.in")
	var mu sync.Mutex
	var order []string
	record := func(s string) {
		mu.Lock()
		order = append(order, s)
		mu.Unlock()
	}
	release := make(chan struct{})
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error {
			data := make([]byte, 16)
			err := c.Write("out", data)
			record("src-done")
			return err
		},
		"a": func(c *TaskCtx) error {
			b := make([]byte, 4)
			if err := c.Read("in", b); err != nil {
				return err
			}
			record("a4")
			close(release) // only now may b start reading
			return c.Read("in", make([]byte, 12))
		},
		"b": func(c *TaskCtx) error {
			<-release
			record("b-read")
			return c.Read("in", make([]byte, 16))
		},
	}
	if err := Run(g, funcs); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	// Causality through the 4-byte buffer: src can complete its 16-byte
	// write only after the slowest consumer (b) has read at least 12
	// bytes, and b starts only after a read its first 4. So the order
	// must be a4, b-read, src-done.
	idx := map[string]int{}
	for i, s := range order {
		idx[s] = i
	}
	if !(idx["a4"] < idx["b-read"] && idx["b-read"] < idx["src-done"]) {
		t.Fatalf("order = %v", order)
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Two tasks each waiting for the other's data: classic deadlock.
	g := NewGraph("dl")
	g.AddTask("a", "f").AddIn("in").AddOut("out")
	g.AddTask("b", "f").AddIn("in").AddOut("out")
	g.MustConnect("a.out", 4, "b.in")
	g.MustConnect("b.out", 4, "a.in")
	readFirst := func(c *TaskCtx) error {
		b := make([]byte, 1)
		if err := c.Read("in", b); err != nil && err != io.EOF {
			return err
		}
		return nil
	}
	err := Run(g, map[string]TaskFunc{"a": readFirst, "b": readFirst})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestUndersizedBufferDeadlocks(t *testing.T) {
	// Two tasks that each write 8 bytes to the other before reading.
	// With 8-byte buffers both writes land and the network completes;
	// with 4-byte buffers both writers stall forever — the buffer-sizing
	// sensitivity the paper's Section 2.2 coupling discussion is about.
	run := func(buf int) error {
		g := NewGraph("small")
		g.AddTask("a", "f").AddIn("in").AddOut("out")
		g.AddTask("b", "f").AddIn("in").AddOut("out")
		g.MustConnect("a.out", buf, "b.in")
		g.MustConnect("b.out", buf, "a.in")
		writeThenRead := func(c *TaskCtx) error {
			if err := c.Write("out", make([]byte, 8)); err != nil {
				return err
			}
			return c.Read("in", make([]byte, 8))
		}
		return Run(g, map[string]TaskFunc{"a": writeThenRead, "b": writeThenRead})
	}
	if err := run(8); err != nil {
		t.Fatalf("8-byte buffers must succeed, got %v", err)
	}
	err := run(4)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	g := pipelineGraph(8)
	boom := errors.New("boom")
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error { return c.Write("out", make([]byte, 100)) },
		"mid": func(c *TaskCtx) error { return boom },
		"dst": func(c *TaskCtx) error {
			b := make([]byte, 1)
			for {
				if err := c.Read("in", b); err != nil {
					if err == io.EOF {
						return nil
					}
					return err
				}
			}
		},
	}
	if err := Run(g, funcs); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestTaskPanicBecomesError(t *testing.T) {
	g := pipelineGraph(8)
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error { panic("ouch") },
		"mid": func(c *TaskCtx) error {
			err := c.Read("in", make([]byte, 1))
			if err == io.EOF {
				return nil
			}
			return err
		},
		"dst": func(c *TaskCtx) error {
			err := c.Read("in", make([]byte, 1))
			if err == io.EOF {
				return nil
			}
			return err
		},
	}
	err := Run(g, funcs)
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestMissingFunctionRejected(t *testing.T) {
	g := pipelineGraph(8)
	err := Run(g, map[string]TaskFunc{"src": nil})
	if err == nil {
		t.Fatal("expected missing-function error")
	}
}

func TestFnFallback(t *testing.T) {
	// Task "mid" has Fn "double"; binding by Fn name must work.
	g := pipelineGraph(8)
	done := false
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error { return c.Write("out", []byte{21}) },
		"double": func(c *TaskCtx) error {
			b := make([]byte, 1)
			if err := c.Read("in", b); err != nil {
				return err
			}
			return c.Write("out", []byte{b[0] * 2})
		},
		"sink": func(c *TaskCtx) error {
			b := make([]byte, 1)
			if err := c.Read("in", b); err != nil {
				return err
			}
			done = b[0] == 42
			return nil
		},
	}
	if err := Run(g, funcs); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("fn fallback did not run")
	}
}

func TestEOFMidRecord(t *testing.T) {
	g := NewGraph("eof")
	g.AddTask("src", "f").AddOut("out")
	g.AddTask("dst", "f").AddIn("in")
	g.MustConnect("src.out", 8, "dst.in")
	var got error
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error { return c.Write("out", []byte{1, 2, 3}) },
		"dst": func(c *TaskCtx) error {
			got = c.Read("in", make([]byte, 5))
			return nil
		},
	}
	if err := Run(g, funcs); err != nil {
		t.Fatal(err)
	}
	if got != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v", got)
	}
}

func TestQuickFIFOPreservesByteSequences(t *testing.T) {
	// Property: arbitrary chunkings of writes and reads through a small
	// FIFO deliver exactly the written byte sequence.
	f := func(data []byte, chunks []uint8) bool {
		if len(data) == 0 {
			return true
		}
		g := NewGraph("q")
		g.AddTask("src", "f").AddOut("out")
		g.AddTask("dst", "f").AddIn("in")
		g.MustConnect("src.out", 5, "dst.in")
		var out []byte
		funcs := map[string]TaskFunc{
			"src": func(c *TaskCtx) error {
				rest := data
				ci := 0
				for len(rest) > 0 {
					n := 1
					if len(chunks) > 0 {
						n = int(chunks[ci%len(chunks)])%3 + 1
						ci++
					}
					if n > len(rest) {
						n = len(rest)
					}
					if err := c.Write("out", rest[:n]); err != nil {
						return err
					}
					rest = rest[n:]
				}
				return nil
			},
			"dst": func(c *TaskCtx) error {
				b := make([]byte, 1)
				for {
					err := c.Read("in", b)
					if err == io.EOF {
						return nil
					}
					if err != nil {
						return err
					}
					out = append(out, b[0])
				}
			},
		}
		if err := Run(g, funcs); err != nil {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphString(t *testing.T) {
	s := pipelineGraph(8).String()
	for _, want := range []string{"graph pipe", "task src", "stream src.out"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Fatalf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestLargeFanPipeline(t *testing.T) {
	// A 10-stage chain moving 10 kB stresses handoff and close ordering.
	g := NewGraph("chain")
	const stages = 10
	g.AddTask("t0", "src").AddOut("out")
	for i := 1; i < stages; i++ {
		g.AddTask(fmt.Sprintf("t%d", i), "relay").AddIn("in").AddOut("out")
		g.MustConnect(fmt.Sprintf("t%d.out", i-1), 7, fmt.Sprintf("t%d.in", i))
	}
	g.AddTask("sink", "sink").AddIn("in")
	g.MustConnect(fmt.Sprintf("t%d.out", stages-1), 7, "sink.in")
	var n int
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error {
			buf := make([]byte, 10000)
			for i := range buf {
				buf[i] = byte(i)
			}
			return c.Write("out", buf)
		},
		"relay": func(c *TaskCtx) error {
			b := make([]byte, 3)
			for {
				err := c.Read("in", b)
				if err == io.EOF {
					return nil
				}
				if err == io.ErrUnexpectedEOF {
					return nil // tail shorter than 3
				}
				if err != nil {
					return err
				}
				if err := c.Write("out", b); err != nil {
					return err
				}
			}
		},
		"sink": func(c *TaskCtx) error {
			b := make([]byte, 1)
			for {
				err := c.Read("in", b)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				n++
			}
		},
	}
	if err := Run(g, funcs); err != nil {
		t.Fatal(err)
	}
	if n < 9999-2 || n > 10000 {
		t.Fatalf("sank %d bytes", n)
	}
}

func TestReadSome(t *testing.T) {
	g := NewGraph("rs")
	g.AddTask("src", "f").AddOut("out")
	g.AddTask("dst", "f").AddIn("in")
	g.MustConnect("src.out", 8, "dst.in")
	var got []byte
	funcs := map[string]TaskFunc{
		"src": func(c *TaskCtx) error {
			for i := 0; i < 5; i++ {
				if err := c.Write("out", []byte{byte(i), byte(i), byte(i)}); err != nil {
					return err
				}
			}
			return nil
		},
		"dst": func(c *TaskCtx) error {
			buf := make([]byte, 4)
			for {
				n, err := c.ReadSome("in", buf)
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if n < 1 || n > 4 {
					return fmt.Errorf("n = %d", n)
				}
				got = append(got, buf[:n]...)
			}
		},
	}
	if err := Run(g, funcs); err != nil {
		t.Fatal(err)
	}
	if len(got) != 15 {
		t.Fatalf("got %d bytes", len(got))
	}
	for i, b := range got {
		if b != byte(i/3) {
			t.Fatalf("byte %d = %d", i, b)
		}
	}
	// Unknown port errors.
	g2 := NewGraph("bad")
	g2.AddTask("src", "f").AddOut("out")
	g2.AddTask("dst", "f").AddIn("in")
	g2.MustConnect("src.out", 8, "dst.in")
	err := Run(g2, map[string]TaskFunc{
		"src": func(c *TaskCtx) error { return c.Write("out", []byte{1}) },
		"dst": func(c *TaskCtx) error {
			_, err := c.ReadSome("nope", make([]byte, 1))
			if err == nil {
				return fmt.Errorf("unknown port accepted")
			}
			// Drain so src can finish.
			return c.Read("in", make([]byte, 1))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}
