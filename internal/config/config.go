// Package config parses Eclipse setup files: the textual descriptions of
// architectural parameters and applications that the paper's simulator
// consumed ("the simulator parses a setup file that contains these
// architectural parameters", Section 7).
//
// Format: INI-like sections with `key = value` lines and '#' comments.
//
//	[arch]                 # memories and sampling
//	[shell]                # shell template parameters
//	[shell dct]            # per-coprocessor shell override
//	[costs]                # coprocessor cost calibration
//	[app decode NAME]      # a decode application (workload is generated
//	                       # from the width/height/frames/... keys)
//	[app encode NAME]      # an encode application
//
// See Example for a complete file.
package config

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Section is one parsed [header] block.
type Section struct {
	Kind string   // first word of the header, e.g. "arch", "shell", "app"
	Args []string // remaining header words
	Keys map[string]string
	Line int // line number of the header
}

// File is a parsed setup file.
type File struct {
	Sections []Section
}

// Parse reads a setup file.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	line := 0
	var cur *Section
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "[") {
			if !strings.HasSuffix(text, "]") {
				return nil, fmt.Errorf("config: line %d: unterminated section header", line)
			}
			words := strings.Fields(text[1 : len(text)-1])
			if len(words) == 0 {
				return nil, fmt.Errorf("config: line %d: empty section header", line)
			}
			f.Sections = append(f.Sections, Section{
				Kind: words[0], Args: words[1:], Keys: map[string]string{}, Line: line,
			})
			cur = &f.Sections[len(f.Sections)-1]
			continue
		}
		eq := strings.IndexByte(text, '=')
		if eq < 0 {
			return nil, fmt.Errorf("config: line %d: expected key = value", line)
		}
		if cur == nil {
			return nil, fmt.Errorf("config: line %d: key outside any section", line)
		}
		key := strings.TrimSpace(text[:eq])
		val := strings.TrimSpace(text[eq+1:])
		if key == "" {
			return nil, fmt.Errorf("config: line %d: empty key", line)
		}
		if _, dup := cur.Keys[key]; dup {
			return nil, fmt.Errorf("config: line %d: duplicate key %q", line, key)
		}
		cur.Keys[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

// Find returns the sections of a kind.
func (f *File) Find(kind string) []Section {
	var out []Section
	for _, s := range f.Sections {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// Decoder reads typed values from a section, accumulating the first error
// and tracking which keys were consumed so unknown keys can be rejected.
type Decoder struct {
	s    *Section
	used map[string]bool
	err  error
}

// NewDecoder wraps a section.
func NewDecoder(s *Section) *Decoder {
	return &Decoder{s: s, used: map[string]bool{}}
}

// Err returns the first decoding error.
func (d *Decoder) Err() error { return d.err }

func (d *Decoder) raw(key string) (string, bool) {
	v, ok := d.s.Keys[key]
	if ok {
		d.used[key] = true
	}
	return v, ok
}

func (d *Decoder) fail(key, val, want string) {
	if d.err == nil {
		d.err = fmt.Errorf("config: section [%s] line %d: key %q = %q: want %s",
			strings.Join(append([]string{d.s.Kind}, d.s.Args...), " "), d.s.Line, key, val, want)
	}
}

// Int reads an integer key into dst if present.
func (d *Decoder) Int(key string, dst *int) {
	if v, ok := d.raw(key); ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			d.fail(key, v, "integer")
			return
		}
		*dst = n
	}
}

// Uint64 reads an unsigned integer key into dst if present.
func (d *Decoder) Uint64(key string, dst *uint64) {
	if v, ok := d.raw(key); ok {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			d.fail(key, v, "unsigned integer")
			return
		}
		*dst = n
	}
}

// Int64 reads a signed 64-bit integer key into dst if present.
func (d *Decoder) Int64(key string, dst *int64) {
	if v, ok := d.raw(key); ok {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			d.fail(key, v, "integer")
			return
		}
		*dst = n
	}
}

// Bool reads a boolean key ("true"/"false") into dst if present.
func (d *Decoder) Bool(key string, dst *bool) {
	if v, ok := d.raw(key); ok {
		b, err := strconv.ParseBool(v)
		if err != nil {
			d.fail(key, v, "boolean")
			return
		}
		*dst = b
	}
}

// Finish reports unknown keys as an error (typo protection).
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	for k := range d.s.Keys {
		if !d.used[k] {
			return fmt.Errorf("config: section [%s] line %d: unknown key %q",
				strings.Join(append([]string{d.s.Kind}, d.s.Args...), " "), d.s.Line, k)
		}
	}
	return nil
}

// Example is a complete annotated setup file, used by documentation and
// round-trip tests.
const Example = `# Eclipse instance: Figure 8 defaults with a deeper DCT cache.
[arch]
sram_kb            = 32
sram_width         = 16
sram_read_latency  = 2
sram_write_latency = 1
dram_read_latency  = 80
dram_write_latency = 20
sample_interval    = 256

[shell]
read_cache_lines  = 16
write_cache_lines = 16
prefetch_depth    = 2
msg_latency       = 3
gettask_cycles    = 2
getspace_cycles   = 1
putspace_cycles   = 1
switch_cycles     = 8
access_cycles     = 1
naive_scheduler   = false

[shell dct]
read_cache_lines = 32

[costs]
vld_base         = 8
vld_per_bit      = 1
rlsq_base        = 16
rlsq_per_token   = 5
rlsq_per_block   = 8
dct_per_block    = 64
dct_pipelined    = false
mc_recon         = 64
mc_bi_extra      = 64
me_per_candidate = 4
sw_chunk         = 16
sw_per_mb        = 40

[app decode dec0]
width  = 96
height = 80
frames = 8
q      = 6
gop_n  = 12
gop_m  = 3
seed   = 1
probes = true
budget = 2000

[app encode enc0]
width  = 48
height = 32
frames = 5
q      = 6
gop_n  = 12
gop_m  = 3
seed   = 2
budget = 2000
`
