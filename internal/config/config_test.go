package config

import (
	"strings"
	"testing"
)

func TestParseExample(t *testing.T) {
	f, err := Parse(strings.NewReader(Example))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Find("arch")) != 1 {
		t.Fatal("missing [arch]")
	}
	shells := f.Find("shell")
	if len(shells) != 2 {
		t.Fatalf("%d shell sections", len(shells))
	}
	if len(shells[1].Args) != 1 || shells[1].Args[0] != "dct" {
		t.Fatalf("override args %v", shells[1].Args)
	}
	apps := f.Find("app")
	if len(apps) != 2 {
		t.Fatalf("%d apps", len(apps))
	}
	if apps[0].Keys["width"] != "96" {
		t.Fatalf("keys %v", apps[0].Keys)
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	text := `
# leading comment
[a]   # trailing comment
x = 1 # value comment

y = hello world
`
	f, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	s := f.Sections[0]
	if s.Keys["x"] != "1" || s.Keys["y"] != "hello world" {
		t.Fatalf("keys %v", s.Keys)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"key outside section": "x = 1\n",
		"unterminated header": "[abc\n",
		"empty header":        "[]\n",
		"missing equals":      "[a]\nnoequals\n",
		"empty key":           "[a]\n= 3\n",
		"duplicate key":       "[a]\nx=1\nx=2\n",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecoderTypes(t *testing.T) {
	f, err := Parse(strings.NewReader("[a]\ni = -3\nu = 42\nb = true\ns64 = -7\n"))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(&f.Sections[0])
	var i int
	var u uint64
	var b bool
	var s64 int64
	d.Int("i", &i)
	d.Uint64("u", &u)
	d.Bool("b", &b)
	d.Int64("s64", &s64)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if i != -3 || u != 42 || !b || s64 != -7 {
		t.Fatalf("decoded %d %d %v %d", i, u, b, s64)
	}
}

func TestDecoderMissingKeysKeepDefaults(t *testing.T) {
	f, _ := Parse(strings.NewReader("[a]\n"))
	d := NewDecoder(&f.Sections[0])
	x := 9
	d.Int("absent", &x)
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	if x != 9 {
		t.Fatal("default overwritten")
	}
}

func TestDecoderBadValue(t *testing.T) {
	f, _ := Parse(strings.NewReader("[a]\nx = banana\n"))
	d := NewDecoder(&f.Sections[0])
	var x int
	d.Int("x", &x)
	if d.Finish() == nil {
		t.Fatal("bad int accepted")
	}
}

func TestDecoderUnknownKeyRejected(t *testing.T) {
	f, _ := Parse(strings.NewReader("[a]\nx = 1\ntypo = 2\n"))
	d := NewDecoder(&f.Sections[0])
	var x int
	d.Int("x", &x)
	err := d.Finish()
	if err == nil || !strings.Contains(err.Error(), "typo") {
		t.Fatalf("err = %v", err)
	}
}

func TestDecoderNegativeUintRejected(t *testing.T) {
	f, _ := Parse(strings.NewReader("[a]\nu = -1\n"))
	d := NewDecoder(&f.Sections[0])
	var u uint64
	d.Uint64("u", &u)
	if d.Finish() == nil {
		t.Fatal("negative uint accepted")
	}
}
