// Package par provides the bounded worker pool shared by the design-space
// sweep engine (eclipse.ParallelMap) and the media encoder's parallel
// macroblock pass. It lives below both so internal/media can use it
// without importing the root package (which imports internal/media).
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run executes fn(i) for i in [0, n) on a worker pool of at most
// `workers` goroutines (<=0 means runtime.NumCPU()).
//
// Cancellation is first-error-wins with deterministic reporting: when an
// index fails, no *new* indices are started, in-flight indices run to
// completion, and the error returned is the one from the lowest failing
// index — independent of goroutine timing. (Indices are handed out in
// order, so every index below a failing one has already been dispatched
// and finishes; the minimum over recorded errors is therefore stable
// across runs and worker counts.)
func Run(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Sequential fast path: no goroutines, same semantics.
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64 // next index to dispatch
		failed atomic.Bool  // set on first error: stop dispatching
		wg     sync.WaitGroup
		errs   = make([]error, n)
	)
	next.Store(-1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs fn(i, items[i]) for every item on a Run pool and returns the
// results in input order, with Run's deterministic error semantics.
func Map[T, R any](items []T, workers int, fn func(i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, nil
	}
	results := make([]R, n)
	err := Run(n, workers, func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
