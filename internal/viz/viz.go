// Package viz renders trace series as ASCII charts: the textual analogue
// of the Eclipse performance visualization tool (paper Figure 9, and the
// stream-buffer filling plots of Figure 10). The viewer is deliberately
// separate from the simulation (Section 7): it consumes trace.Series
// regardless of whether they came from a simulation run or from CSV.
package viz

import (
	"fmt"
	"strings"

	"eclipse/internal/trace"
)

// Chart renders one series as a fixed-size ASCII line chart with axes.
type Chart struct {
	Width  int // plot columns (excluding the axis gutter)
	Height int // plot rows
}

// DefaultChart returns a chart sized for 100-column terminals.
func DefaultChart() Chart { return Chart{Width: 72, Height: 12} }

// Render draws the series. Samples are bucketed onto columns by cycle;
// each column shows the bucket mean, with '█'-style fill below the curve
// rendered as '*' markers and ':' fill for readability in plain ASCII.
func (c Chart) Render(s *trace.Series, annot string) string {
	var sb strings.Builder
	if len(s.X) == 0 {
		fmt.Fprintf(&sb, "%s (no samples)\n", s.Name)
		return sb.String()
	}
	w, h := c.Width, c.Height
	if w < 8 {
		w = 8
	}
	if h < 3 {
		h = 3
	}
	x0, x1 := s.X[0], s.X[len(s.X)-1]
	span := x1 - x0
	if span == 0 {
		span = 1
	}
	// Bucket samples to columns.
	sum := make([]float64, w)
	cnt := make([]int, w)
	for i := range s.X {
		col := int(uint64(w-1) * (s.X[i] - x0) / span)
		sum[col] += s.Y[i]
		cnt[col]++
	}
	col := make([]float64, w)
	prev := 0.0
	maxV := 0.0
	for i := 0; i < w; i++ {
		if cnt[i] > 0 {
			prev = sum[i] / float64(cnt[i])
		}
		col[i] = prev
		if prev > maxV {
			maxV = prev
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	fmt.Fprintf(&sb, "%s  (max %.0f, mean %.0f)\n", s.Name, s.Max(), s.Mean())
	if annot != "" {
		fmt.Fprintf(&sb, "%9s %s\n", "", clip(annot, w))
	}
	for row := h - 1; row >= 0; row-- {
		lo := float64(row) / float64(h) * maxV
		mid := (float64(row) + 0.5) / float64(h) * maxV
		label := "        "
		if row == h-1 {
			label = fmt.Sprintf("%8.0f", maxV)
		} else if row == 0 {
			label = fmt.Sprintf("%8.0f", 0.0)
		}
		sb.WriteString(label)
		sb.WriteByte('|')
		for i := 0; i < w; i++ {
			switch {
			case col[i] >= mid && col[i] < mid+maxV/float64(h):
				sb.WriteByte('*')
			case col[i] >= mid:
				sb.WriteByte(':')
			case col[i] > lo:
				sb.WriteByte('*')
			default:
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%8s+%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&sb, "%9s%-*d%*d cycles\n", "", w/2, x0, w-w/2, x1)
	return sb.String()
}

// clip truncates a string to width characters.
func clip(s string, w int) string {
	if len(s) <= w {
		return s
	}
	return s[:w]
}

// Panel renders several series stacked vertically (the Figure 10 layout:
// one buffer-filling plot per coprocessor input stream, sharing the time
// axis), with an optional annotation line on the first chart.
func Panel(c Chart, annot string, series ...*trace.Series) string {
	var sb strings.Builder
	for i, s := range series {
		a := ""
		if i == 0 {
			a = annot
		}
		sb.WriteString(c.Render(s, a))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Bars renders a labeled horizontal bar chart (for utilization summaries,
// the "architecture view" of Figure 9). Values are fractions in [0, 1].
type BarItem struct {
	Label string
	Value float64
}

// RenderBars draws one bar per item, 50 columns full scale.
func RenderBars(items []BarItem) string {
	var sb strings.Builder
	width := 0
	for _, it := range items {
		if len(it.Label) > width {
			width = len(it.Label)
		}
	}
	for _, it := range items {
		v := it.Value
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		n := int(v*50 + 0.5)
		fmt.Fprintf(&sb, "%-*s |%-50s| %5.1f%%\n", width, it.Label,
			strings.Repeat("#", n), v*100)
	}
	return sb.String()
}
