package viz

import (
	"strings"
	"testing"

	"eclipse/internal/trace"
)

func ramp(n int) *trace.Series {
	s := &trace.Series{Name: "ramp"}
	for i := 0; i < n; i++ {
		s.X = append(s.X, uint64(i*10))
		s.Y = append(s.Y, float64(i))
	}
	return s
}

func TestRenderBasics(t *testing.T) {
	out := DefaultChart().Render(ramp(100), "IPB")
	if !strings.Contains(out, "ramp") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "IPB") {
		t.Fatal("missing annotation")
	}
	if !strings.Contains(out, "cycles") {
		t.Fatal("missing axis label")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + annotation + height rows + axis + labels
	if len(lines) != 2+12+2 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	// Rising ramp: last column painted near the top row, first not.
	top := lines[2]
	if !strings.ContainsAny(top, "*:") {
		t.Fatalf("top row empty:\n%s", out)
	}
}

func TestRenderEmptySeries(t *testing.T) {
	out := DefaultChart().Render(&trace.Series{Name: "void"}, "")
	if !strings.Contains(out, "no samples") {
		t.Fatalf("out = %q", out)
	}
}

func TestRenderConstantZero(t *testing.T) {
	s := &trace.Series{Name: "zero", X: []uint64{0, 1, 2}, Y: []float64{0, 0, 0}}
	out := DefaultChart().Render(s, "")
	if !strings.Contains(out, "zero") {
		t.Fatal("missing title")
	}
}

func TestRenderSingleSample(t *testing.T) {
	s := &trace.Series{Name: "one", X: []uint64{5}, Y: []float64{3}}
	out := DefaultChart().Render(s, "")
	if !strings.Contains(out, "one") {
		t.Fatal("missing title")
	}
}

func TestTinyChartClamps(t *testing.T) {
	out := Chart{Width: 1, Height: 1}.Render(ramp(5), "")
	if out == "" {
		t.Fatal("no output")
	}
}

func TestPanelStacksSeries(t *testing.T) {
	out := Panel(DefaultChart(), "GOP", ramp(10), ramp(10))
	if strings.Count(out, "ramp") != 2 {
		t.Fatal("panel must render both series")
	}
	if strings.Count(out, "GOP") != 1 {
		t.Fatal("annotation only on the first chart")
	}
}

func TestRenderBars(t *testing.T) {
	out := RenderBars([]BarItem{
		{Label: "vld", Value: 0.5},
		{Label: "dct", Value: 1.2},  // clamps to 100%
		{Label: "mc", Value: -0.25}, // clamps to 0%
	})
	if !strings.Contains(out, "vld") || !strings.Contains(out, "50.0%") {
		t.Fatalf("out:\n%s", out)
	}
	if !strings.Contains(out, "100.0%") {
		t.Fatal("over-unity not clamped in label")
	}
	if !strings.Contains(out, "0.0%") {
		t.Fatal("negative not clamped")
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if len(line) == 0 {
			t.Fatal("empty line")
		}
	}
}

func TestClip(t *testing.T) {
	if clip("hello", 3) != "hel" || clip("hi", 5) != "hi" {
		t.Fatal("clip broken")
	}
}
