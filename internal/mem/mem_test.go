package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"eclipse/internal/sim"
)

func testCfg() Config {
	return Config{Name: "m", Size: 4096, Width: 16, ReadLatency: 2, WriteLatency: 1, DualPort: true}
}

func TestPeekPoke(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testCfg())
	want := []byte{1, 2, 3, 4, 5}
	m.Poke(100, want)
	got := make([]byte, 5)
	m.Peek(100, got)
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestBeatsAlignment(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testCfg())
	pt := m.ReadPort()
	cases := []struct {
		addr uint32
		n    int
		want uint64
	}{
		{0, 16, 1},   // exactly one aligned word
		{0, 17, 2},   // spills into second word
		{15, 2, 2},   // crosses a word boundary
		{15, 1, 1},   // last byte of a word
		{16, 16, 1},  // aligned
		{8, 16, 2},   // misaligned full word
		{0, 1, 1},    // single byte
		{0, 0, 0},    // empty
		{3, 64, 5},   // 3+64=67 -> 5 words
		{0, 256, 16}, // long burst
	}
	for _, c := range cases {
		if got := pt.Beats(c.addr, c.n); got != c.want {
			t.Errorf("Beats(%d,%d) = %d, want %d", c.addr, c.n, got, c.want)
		}
	}
}

func TestQuickBeatsBounds(t *testing.T) {
	// Property: for n>0, beats is within [ceil(n/width), ceil(n/width)+1]
	// and covers at least n bytes of bus capacity.
	k := sim.NewKernel()
	m := New(k, testCfg())
	pt := m.ReadPort()
	f := func(addr uint16, n uint16) bool {
		nn := int(n%1024) + 1
		b := pt.Beats(uint32(addr), nn)
		lo := uint64((nn + 15) / 16)
		return b >= lo && b <= lo+1 && b*16 >= uint64(nn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimedReadLatency(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testCfg())
	m.Poke(0, []byte{0xAA})
	var took uint64
	buf := make([]byte, 16)
	k.NewProc("r", 0, func(p *sim.Proc) {
		t0 := p.Now()
		m.ReadAccess(p, 0, buf) // 1 beat + 2 latency = 3 cycles
		took = p.Now() - t0
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if took != 3 {
		t.Fatalf("read took %d cycles, want 3", took)
	}
	if buf[0] != 0xAA {
		t.Fatalf("data not transferred")
	}
}

func TestPortSerializesContendingRequests(t *testing.T) {
	// Two processes reading 4 words each at cycle 0 must queue behind one
	// another on the shared read bus: second finishes 4 beats later.
	k := sim.NewKernel()
	m := New(k, testCfg())
	var end [2]uint64
	for i := 0; i < 2; i++ {
		i := i
		k.NewProc("r", 0, func(p *sim.Proc) {
			buf := make([]byte, 64)
			m.ReadAccess(p, 0, buf)
			end[i] = p.Now()
		})
	}
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// first: 4 beats + 2 lat = 6; second starts at 4: 8 beats total + 2 = 10
	if end[0] != 6 || end[1] != 10 {
		t.Fatalf("ends = %v, want [6 10]", end)
	}
}

func TestDualPortReadsAndWritesDoNotContend(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testCfg())
	var rEnd, wEnd uint64
	k.NewProc("r", 0, func(p *sim.Proc) {
		buf := make([]byte, 16)
		m.ReadAccess(p, 0, buf)
		rEnd = p.Now()
	})
	k.NewProc("w", 0, func(p *sim.Proc) {
		m.WriteAccess(p, 256, make([]byte, 16))
		wEnd = p.Now()
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rEnd != 3 || wEnd != 2 {
		t.Fatalf("rEnd=%d wEnd=%d, want 3 and 2", rEnd, wEnd)
	}
}

func TestSinglePortSharedContention(t *testing.T) {
	cfg := testCfg()
	cfg.DualPort = false
	k := sim.NewKernel()
	m := New(k, cfg)
	if m.ReadPort() != m.WritePort() {
		t.Fatal("single-port memory must share one bus")
	}
	var rEnd, wEnd uint64
	k.NewProc("r", 0, func(p *sim.Proc) {
		buf := make([]byte, 16)
		m.ReadAccess(p, 0, buf)
		rEnd = p.Now()
	})
	k.NewProc("w", 0, func(p *sim.Proc) {
		m.WriteAccess(p, 256, make([]byte, 16))
		wEnd = p.Now()
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// r books beat 0 (done 0+1+2=3); w books beat 1 (done 1+1+1=3).
	if rEnd != 3 || wEnd != 3 {
		t.Fatalf("rEnd=%d wEnd=%d, want 3 and 3", rEnd, wEnd)
	}
}

func TestAsyncReadCompletesWithData(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testCfg())
	m.Poke(32, []byte{7, 8, 9})
	buf := make([]byte, 3)
	var doneAt uint64
	k.Schedule(5, func() {
		m.ReadAsync(32, buf, func() { doneAt = k.Now() })
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if doneAt != 8 { // 5 + 1 beat + 2 latency
		t.Fatalf("doneAt = %d, want 8", doneAt)
	}
	if !bytes.Equal(buf, []byte{7, 8, 9}) {
		t.Fatalf("buf = %v", buf)
	}
}

func TestAsyncWriteCapturesDataAtIssue(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testCfg())
	data := []byte{1, 2, 3}
	k.Schedule(0, func() {
		m.WriteAsync(0, data, nil)
		data[0] = 99 // mutation after issue must not affect the write
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := make([]byte, 3)
	m.Peek(0, got)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}

func TestStatsAndUtilization(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testCfg())
	k.NewProc("r", 0, func(p *sim.Proc) {
		buf := make([]byte, 32)
		m.ReadAccess(p, 0, buf) // 2 beats
		m.ReadAccess(p, 0, buf) // 2 beats
		p.Delay(16)
	})
	if err := k.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := m.ReadPort().Stats()
	if st.Requests != 2 || st.Bytes != 64 || st.BusyBeats != 4 {
		t.Fatalf("stats = %+v", st)
	}
	u := m.ReadPort().Utilization()
	if u <= 0 || u >= 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestNarrowBusTakesLonger(t *testing.T) {
	run := func(width int) uint64 {
		cfg := testCfg()
		cfg.Width = width
		k := sim.NewKernel()
		m := New(k, cfg)
		var end uint64
		k.NewProc("r", 0, func(p *sim.Proc) {
			buf := make([]byte, 128)
			m.ReadAccess(p, 0, buf)
			end = p.Now()
		})
		if err := k.Run(0); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return end
	}
	if w4, w16 := run(4), run(16); w4 <= w16 {
		t.Fatalf("4-byte bus (%d) should be slower than 16-byte bus (%d)", w4, w16)
	}
}

func TestFig8Presets(t *testing.T) {
	s, d := Fig8SRAM(), Fig8DRAM()
	if s.Size != 32*1024 || s.Width != 16 || !s.DualPort {
		t.Fatalf("Fig8SRAM = %+v", s)
	}
	if d.DualPort || d.ReadLatency <= s.ReadLatency {
		t.Fatalf("Fig8DRAM = %+v", d)
	}
}
