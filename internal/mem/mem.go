// Package mem models the Eclipse communication memories and buses.
//
// The paper's first instance (Section 6) uses a centralized wide on-chip
// SRAM for stream buffers: a 32 kB memory with a 128-bit data path,
// clocked at 300 MHz so it can serve separate read and write buses that
// each run at the 150 MHz coprocessor clock. Off-chip memory (for MPEG
// reference frames and incoming bit-streams) sits behind a system bus
// with much higher latency.
//
// A Memory couples byte-addressable backing storage with one or two Ports
// that model bus timing: bandwidth (bytes per cycle), transfer
// granularity (bus word width), and access latency. Functional content
// and timing are deliberately separate so that callers can move bytes
// exactly when the modeled transfer completes.
package mem

import (
	"fmt"

	"eclipse/internal/sim"
)

// Config parameterizes a Memory. It covers both the on-chip stream SRAM
// (dual-port: separate read and write buses) and off-chip DRAM behind the
// system bus (single shared port, high latency).
type Config struct {
	Name         string
	Size         int    // backing storage size in bytes
	Width        int    // bus word width in bytes (paper: 16 = 128 bit)
	ReadLatency  uint64 // cycles from last beat of a read to data valid
	WriteLatency uint64 // cycles from last beat of a write to completion
	DualPort     bool   // separate read and write buses (on-chip SRAM)
}

// Fig8SRAM returns the configuration of the paper's first-instance
// communication memory: 32 kB, 128-bit data path, separate read and
// write buses. Latencies are in 150 MHz coprocessor cycles.
func Fig8SRAM() Config {
	return Config{
		Name:         "sram",
		Size:         32 * 1024,
		Width:        16,
		ReadLatency:  2,
		WriteLatency: 1,
		DualPort:     true,
	}
}

// Fig8DRAM returns a configuration for the off-chip memory reached over
// the system bus, used by the MC/ME coprocessor for reference frames and
// by the VLD for compressed input (Section 6).
func Fig8DRAM() Config {
	return Config{
		Name:         "dram",
		Size:         16 * 1024 * 1024,
		Width:        16,
		ReadLatency:  80,
		WriteLatency: 20,
		DualPort:     false,
	}
}

// Memory is byte-addressable storage behind one or two bandwidth- and
// latency-modeled ports.
type Memory struct {
	cfg   Config
	k     *sim.Kernel
	data  []byte
	read  *Port
	write *Port
}

// New creates a memory attached to the kernel.
func New(k *sim.Kernel, cfg Config) *Memory {
	if cfg.Size <= 0 || cfg.Width <= 0 {
		panic(fmt.Sprintf("mem: invalid config %+v", cfg))
	}
	m := &Memory{cfg: cfg, k: k, data: make([]byte, cfg.Size)}
	m.read = newPort(k, cfg.Name+".rd", cfg.Width, cfg.ReadLatency)
	if cfg.DualPort {
		m.write = newPort(k, cfg.Name+".wr", cfg.Width, cfg.WriteLatency)
	} else {
		m.write = m.read // single shared bus: reads and writes contend
	}
	return m
}

// Size returns the backing storage size in bytes.
func (m *Memory) Size() int { return m.cfg.Size }

// Width returns the bus word width in bytes.
func (m *Memory) Width() int { return m.cfg.Width }

// ReadPort returns the port serving read transfers.
func (m *Memory) ReadPort() *Port { return m.read }

// WritePort returns the port serving write transfers. For single-port
// memories this is the same port as ReadPort.
func (m *Memory) WritePort() *Port { return m.write }

// Peek copies memory content without consuming simulated time. It is
// meant for test assertions and zero-time initialization.
func (m *Memory) Peek(addr uint32, buf []byte) {
	copy(buf, m.data[addr:int(addr)+len(buf)])
}

// Poke stores memory content without consuming simulated time.
func (m *Memory) Poke(addr uint32, data []byte) {
	copy(m.data[addr:int(addr)+len(data)], data)
}

// ReadAccess performs a timed read: it blocks the calling process for the
// queueing, transfer, and latency delays of the read port and then copies
// the data into buf.
func (m *Memory) ReadAccess(p *sim.Proc, addr uint32, buf []byte) {
	m.read.Access(p, addr, len(buf), m.cfg.ReadLatency)
	m.Peek(addr, buf)
}

// WriteAccess performs a timed write: it blocks the calling process for
// the queueing, transfer, and latency delays of the write port and then
// stores the data.
func (m *Memory) WriteAccess(p *sim.Proc, addr uint32, data []byte) {
	m.write.Access(p, addr, len(data), m.cfg.WriteLatency)
	m.Poke(addr, data)
}

// ReadAsync starts a read without blocking the caller; done runs (with
// the data copied into buf) when the modeled transfer completes. It is
// used by the shells' prefetch engines.
//
// Buffer ownership: the memory owns buf from this call until done runs —
// the caller must neither reuse nor recycle it earlier, and done is the
// single point where ownership returns to the caller (the shells recycle
// pooled scratch buffers there).
func (m *Memory) ReadAsync(addr uint32, buf []byte, done func()) {
	m.read.AccessAsync(addr, len(buf), m.cfg.ReadLatency, func() {
		m.Peek(addr, buf)
		if done != nil {
			done()
		}
	})
}

// WriteAsync starts a write without blocking the caller; done (optional)
// runs when the modeled transfer completes. The data is captured
// immediately and stored at completion time, so the caller may reuse data
// as soon as the call returns (at the cost of an allocation per call —
// hot paths with stable buffers should use WriteAsyncOwned).
func (m *Memory) WriteAsync(addr uint32, data []byte, done func()) {
	cp := make([]byte, len(data))
	copy(cp, data)
	m.WriteAsyncOwned(addr, cp, done)
}

// WriteAsyncOwned starts a write without blocking the caller and without
// copying: ownership of data transfers to the memory until done runs.
// The caller must not mutate, reuse, or recycle data before then; done is
// where ownership returns (the shells' flush path hands over a pooled
// buffer and recycles it in done). The bytes are stored at the modeled
// completion time, matching WriteAsync's semantics.
func (m *Memory) WriteAsyncOwned(addr uint32, data []byte, done func()) {
	m.write.AccessAsync(addr, len(data), m.cfg.WriteLatency, func() {
		m.Poke(addr, data)
		if done != nil {
			done()
		}
	})
}

// ScheduleRead books an asynchronous read transfer of n bytes at addr on
// the read port and runs done at the modeled completion cycle. Unlike
// ReadAsync it moves no bytes: done itself must Peek the data it wants.
// This zero-closure variant exists for hot paths that reuse a pre-bound
// completion callback (the shells' pooled fetch requests) — the package's
// functional-content/timing split makes the caller-side copy safe.
func (m *Memory) ScheduleRead(addr uint32, n int, done func()) {
	m.read.AccessAsync(addr, n, m.cfg.ReadLatency, done)
}

// ScheduleWrite books an asynchronous write transfer of n bytes at addr
// on the write port and runs done at the modeled completion cycle. Unlike
// WriteAsync it moves no bytes: done itself must Poke the data, which by
// the package's content/timing split is exactly equivalent to storing at
// completion time. Zero-closure counterpart of ScheduleRead.
func (m *Memory) ScheduleWrite(addr uint32, n int, done func()) {
	m.write.AccessAsync(addr, n, m.cfg.WriteLatency, done)
}

// Port models one bus: a serializing server with a given transfer width.
// A request of n bytes starting at address a occupies the bus for as many
// beats (cycles) as the number of width-aligned bus words the transfer
// touches; the requester additionally waits the port latency after the
// last beat. Requests are served in arrival order, which the
// deterministic kernel makes reproducible.
type Port struct {
	k       *sim.Kernel
	name    string
	width   int
	latency uint64

	nextFree uint64 // first cycle at which a new transfer may start

	// statistics
	requests  uint64
	bytes     uint64
	busyBeats uint64
	waitSum   uint64 // total queueing wait across requests
}

func newPort(k *sim.Kernel, name string, width int, latency uint64) *Port {
	return &Port{k: k, name: name, width: width, latency: latency}
}

// Name returns the port name, e.g. "sram.rd".
func (pt *Port) Name() string { return pt.name }

// Beats returns the number of bus occupancy cycles for a transfer of n
// bytes starting at addr, accounting for alignment to the bus width.
func (pt *Port) Beats(addr uint32, n int) uint64 {
	if n <= 0 {
		return 0
	}
	first := int(addr) % pt.width
	return uint64((first + n + pt.width - 1) / pt.width)
}

// schedule books the transfer on the bus and returns its completion cycle.
func (pt *Port) schedule(addr uint32, n int, latency uint64) uint64 {
	now := pt.k.Now()
	start := now
	if pt.nextFree > start {
		start = pt.nextFree
	}
	beats := pt.Beats(addr, n)
	if beats == 0 {
		beats = 1 // even an empty request occupies an arbitration slot
	}
	pt.nextFree = start + beats
	pt.requests++
	pt.bytes += uint64(n)
	pt.busyBeats += beats
	pt.waitSum += start - now
	return start + beats + latency
}

// Access blocks the calling process until a transfer of n bytes at addr
// completes.
func (pt *Port) Access(p *sim.Proc, addr uint32, n int, latency uint64) {
	done := pt.schedule(addr, n, latency)
	p.Delay(done - pt.k.Now())
}

// AccessAsync books a transfer and runs done at its completion cycle.
func (pt *Port) AccessAsync(addr uint32, n int, latency uint64, done func()) {
	at := pt.schedule(addr, n, latency)
	pt.k.Schedule(at-pt.k.Now(), done)
}

// Stats is a snapshot of port activity counters.
type Stats struct {
	Requests  uint64 // transfers served
	Bytes     uint64 // payload bytes moved
	BusyBeats uint64 // cycles the bus was occupied
	WaitSum   uint64 // total cycles requests spent queueing
}

// Stats returns the port's activity counters.
func (pt *Port) Stats() Stats {
	return Stats{Requests: pt.requests, Bytes: pt.bytes, BusyBeats: pt.busyBeats, WaitSum: pt.waitSum}
}

// Utilization returns the fraction of cycles in [0, now] during which the
// bus was occupied.
func (pt *Port) Utilization() float64 {
	now := pt.k.Now()
	if now == 0 {
		return 0
	}
	return float64(pt.busyBeats) / float64(now)
}
