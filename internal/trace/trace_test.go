package trace

import (
	"bytes"
	"strings"
	"testing"

	"eclipse/internal/sim"
)

func TestCollectorSamples(t *testing.T) {
	k := sim.NewKernel()
	c := NewCollector(k, 10)
	v := 0.0
	c.Add("x", func() float64 { v++; return v })
	c.Start()
	// The sampler reschedules forever (real runs are stopped by the
	// fabric); stop explicitly after the window of interest.
	k.Schedule(96, k.Stop)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	s := c.Series("x")
	if s == nil {
		t.Fatal("missing series")
	}
	// Samples at 0,10,...,90 plus possibly one more at the tail.
	if len(s.X) < 10 || len(s.X) > 11 {
		t.Fatalf("%d samples", len(s.X))
	}
	if s.X[0] != 0 || s.X[1] != 10 {
		t.Fatalf("sample cycles %v", s.X[:2])
	}
	if s.Y[0] != 1 || s.Y[9] != 10 {
		t.Fatalf("sample values %v", s.Y)
	}
}

func TestSeriesStats(t *testing.T) {
	s := &Series{Name: "s", X: []uint64{0, 1, 2}, Y: []float64{1, 5, 3}}
	if s.Max() != 5 {
		t.Fatalf("max %v", s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean %v", s.Mean())
	}
	empty := &Series{}
	if empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty series stats")
	}
}

func TestCollectorNamesSorted(t *testing.T) {
	k := sim.NewKernel()
	c := NewCollector(k, 10)
	c.Add("zebra", func() float64 { return 0 })
	c.Add("alpha", func() float64 { return 0 })
	names := c.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zebra" {
		t.Fatalf("names %v", names)
	}
}

func TestWriteCSV(t *testing.T) {
	k := sim.NewKernel()
	c := NewCollector(k, 5)
	c.Add("a", func() float64 { return 2.5 })
	c.Start()
	k.Schedule(9, k.Stop)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "cycle,series,value\n") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "0,a,2.5") || !strings.Contains(out, "5,a,2.5") {
		t.Fatalf("rows missing:\n%s", out)
	}
}

func TestDeltaProbe(t *testing.T) {
	counter := uint64(0)
	p := DeltaProbe(func() uint64 { return counter }, 0.5)
	if p() != 0 {
		t.Fatal("first delta")
	}
	counter = 10
	if got := p(); got != 5 {
		t.Fatalf("delta %v", got)
	}
	counter = 12
	if got := p(); got != 1 {
		t.Fatalf("delta %v", got)
	}
}

func TestZeroIntervalDefaults(t *testing.T) {
	k := sim.NewKernel()
	c := NewCollector(k, 0)
	if c.Interval() == 0 {
		t.Fatal("interval not defaulted")
	}
}

func TestStartWithoutProbesIsNoop(t *testing.T) {
	k := sim.NewKernel()
	c := NewCollector(k, 10)
	c.Start() // no probes: must not schedule the eternal ticker
	if err := k.Run(1000); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 0 {
		t.Fatalf("ticker ran: now %d", k.Now())
	}
}

func TestReadCSVRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	c := NewCollector(k, 5)
	v := 0.0
	c.Add("a", func() float64 { v += 1.5; return v })
	c.Add("b", func() float64 { return 7 })
	c.Start()
	k.Schedule(19, k.Stop)
	if err := k.Run(0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		got, want := series[name], c.Series(name)
		if got == nil || len(got.X) != len(want.X) {
			t.Fatalf("series %s: %v", name, got)
		}
		for i := range want.X {
			if got.X[i] != want.X[i] || got.Y[i] != want.Y[i] {
				t.Fatalf("series %s sample %d differs", name, i)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"malformed": "1,just-two\n",
		"bad cycle": "x,a,1\n",
		"bad value": "1,a,zebra\n",
	}
	for name, text := range cases {
		if _, err := ReadCSV(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
