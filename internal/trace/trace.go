// Package trace implements the performance-measurement side of Eclipse
// (paper Section 5.4): a sampling process that, at a configurable
// interval, reads probes registered against the shells' measurement
// counters (stream-buffer filling, coprocessor utilization, task stall
// time) and accumulates time series. The series feed the visualization
// tooling (package viz and cmd/eclipse-viz), reproducing the paper's
// Figure 9/10 views, and export to CSV for external tools.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"eclipse/internal/sim"
)

// Series is one sampled quantity over time.
type Series struct {
	Name string
	X    []uint64 // sample cycles
	Y    []float64
}

// Max returns the largest sample value (0 for an empty series).
func (s *Series) Max() float64 {
	m := 0.0
	for _, v := range s.Y {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the average sample value (0 for an empty series).
func (s *Series) Mean() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Y {
		sum += v
	}
	return sum / float64(len(s.Y))
}

// Collector samples registered probes at a fixed interval.
type Collector struct {
	k        *sim.Kernel
	interval uint64
	probes   []probe
	series   map[string]*Series
	running  bool
}

type probe struct {
	name string
	fn   func() float64
}

// NewCollector creates a collector sampling every interval cycles.
func NewCollector(k *sim.Kernel, interval uint64) *Collector {
	if interval == 0 {
		interval = 256
	}
	return &Collector{k: k, interval: interval, series: map[string]*Series{}}
}

// Add registers a probe; fn is called at every sample point.
func (c *Collector) Add(name string, fn func() float64) {
	c.probes = append(c.probes, probe{name: name, fn: fn})
	c.series[name] = &Series{Name: name}
}

// Start begins sampling. It must be called before the simulation runs;
// sampling continues until the kernel stops.
func (c *Collector) Start() {
	if c.running || len(c.probes) == 0 {
		return
	}
	c.running = true
	var tick func()
	tick = func() {
		c.sample()
		c.k.Schedule(c.interval, tick)
	}
	c.k.Schedule(0, tick)
}

func (c *Collector) sample() {
	now := c.k.Now()
	for _, p := range c.probes {
		s := c.series[p.name]
		s.X = append(s.X, now)
		s.Y = append(s.Y, p.fn())
	}
}

// Series returns the samples of a named probe, or nil.
func (c *Collector) Series(name string) *Series { return c.series[name] }

// Names returns the registered probe names, sorted.
func (c *Collector) Names() []string {
	names := make([]string, 0, len(c.series))
	for n := range c.series {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Interval returns the sampling interval in cycles.
func (c *Collector) Interval() uint64 { return c.interval }

// WriteCSV emits all series in long form: cycle,series,value.
func (c *Collector) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,series,value"); err != nil {
		return err
	}
	for _, name := range c.Names() {
		s := c.series[name]
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%d,%s,%g\n", s.X[i], name, s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadCSV parses series from the long-form CSV produced by WriteCSV
// (`cycle,series,value`, with an optional header line).
func ReadCSV(r io.Reader) (map[string]*Series, error) {
	out := map[string]*Series{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (line == 1 && strings.HasPrefix(text, "cycle,")) {
			continue
		}
		parts := strings.SplitN(text, ",", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: line %d: want cycle,series,value", line)
		}
		cyc, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad cycle %q", line, parts[0])
		}
		val, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad value %q", line, parts[2])
		}
		s := out[parts[1]]
		if s == nil {
			s = &Series{Name: parts[1]}
			out[parts[1]] = s
		}
		s.X = append(s.X, cyc)
		s.Y = append(s.Y, val)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trace: no series")
	}
	return out, nil
}

// DeltaProbe adapts a monotonically increasing counter into a per-
// interval rate probe (e.g. busy cycles → utilization per interval).
func DeltaProbe(counter func() uint64, scale float64) func() float64 {
	var last uint64
	return func() float64 {
		v := counter()
		d := v - last
		last = v
		return float64(d) * scale
	}
}
