package media

// Bit-exactness guard for the media kernel rewrites.
//
// The fast paths introduced by the PR3 kernel work (64-bit bitstream
// accumulator, LUT-driven VLD, event arenas, unrolled SAD/DCT, parallel
// mode decision) must all be perf-only: every encoded bit and every
// decoded pixel has to stay identical. This test pins SHA-256 hashes of
// the Figure 10 QCIF GOP — the encoder's bitstream and the decoder's
// display-order pixels — so any semantic drift in the kernels fails
// loudly here instead of silently moving downstream cycle counts.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"
)

// goldenFig10 describes the canonical Fig. 10 workload: QCIF, 12 frames,
// Q=6, source seed 1 (identical to the eclipse-bench / BenchmarkFig10
// stream builder in the root package).
const (
	goldenW      = 176
	goldenH      = 144
	goldenFrames = 12
	goldenQ      = 6
	goldenSeed   = 1

	// Pinned on the pre-rewrite kernels; must never change.
	goldenBitstreamSHA = "bb9425621f4fdd6dce27e13fe5171e5ff78f452ac6b23263f4411e60a71e432d"
	goldenFramesSHA    = "7805f16ee1e31e83adab959261b11cf23418e5668bf840126c8577864960c60b"
)

// goldenStream encodes the canonical workload once.
func goldenStream(t testing.TB) []byte {
	t.Helper()
	src := DefaultSource(goldenW, goldenH)
	src.Seed = goldenSeed
	frames := NewSource(src).Frames(goldenFrames)
	cfg := DefaultCodec(goldenW, goldenH)
	cfg.Q = goldenQ
	stream, _, _, err := Encode(cfg, frames)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return stream
}

// hashFrames folds every display-order frame (dimensions + pixels) into
// one SHA-256 so a drift in any single pixel of any frame is caught.
func hashFrames(t testing.TB, frames []*Frame) string {
	t.Helper()
	h := sha256.New()
	var dims [8]byte
	for i, f := range frames {
		if f == nil {
			t.Fatalf("display frame %d missing", i)
		}
		binary.BigEndian.PutUint32(dims[0:], uint32(f.W))
		binary.BigEndian.PutUint32(dims[4:], uint32(f.H))
		h.Write(dims[:])
		h.Write(f.Pix)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGoldenFig10Hashes is the bit-exactness guard: encode -> bitstream
// SHA and decode -> frame SHA for the Fig. 10 QCIF GOP.
func TestGoldenFig10Hashes(t *testing.T) {
	stream := goldenStream(t)
	if got := hex.EncodeToString(sumSHA(stream)); got != goldenBitstreamSHA {
		t.Errorf("encoded bitstream hash drifted:\n  got  %s\n  want %s", got, goldenBitstreamSHA)
	}
	res, err := Decode(stream)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(res.Coded) != goldenFrames {
		t.Fatalf("decoded %d frames, want %d", len(res.Coded), goldenFrames)
	}
	if got := hashFrames(t, res.DisplayFrames()); got != goldenFramesSHA {
		t.Errorf("decoded frame hash drifted:\n  got  %s\n  want %s", got, goldenFramesSHA)
	}

	// The pipeline-parallel decoder must reproduce the pinned hash for
	// every worker count: parallelism is perf-only.
	for workers := 1; workers <= 8; workers++ {
		res, err := DecodeWithOptions(stream, DecodeOptions{Workers: workers})
		if err != nil {
			t.Fatalf("decode workers=%d: %v", workers, err)
		}
		if got := hashFrames(t, res.DisplayFrames()); got != goldenFramesSHA {
			t.Errorf("workers=%d: decoded frame hash drifted:\n  got  %s\n  want %s", workers, got, goldenFramesSHA)
		}
	}

	// Streaming delivery must also be perf-only: hashing the frames as
	// OnDisplayFrame hands them out — at delivery time, in display order
	// — must reproduce the same pinned hash for every worker count.
	for workers := 1; workers <= 8; workers++ {
		h := sha256.New()
		var dims [8]byte
		nextDi := 0
		_, err := DecodeWithOptions(stream, DecodeOptions{
			Workers: workers,
			OnDisplayFrame: func(di int, f *Frame) error {
				if di != nextDi {
					t.Errorf("workers=%d: delivered display index %d, want %d", workers, di, nextDi)
				}
				nextDi++
				binary.BigEndian.PutUint32(dims[0:], uint32(f.W))
				binary.BigEndian.PutUint32(dims[4:], uint32(f.H))
				h.Write(dims[:])
				h.Write(f.Pix)
				return nil
			},
		})
		if err != nil {
			t.Fatalf("streaming decode workers=%d: %v", workers, err)
		}
		if got := hex.EncodeToString(h.Sum(nil)); got != goldenFramesSHA {
			t.Errorf("workers=%d: streaming-delivery frame hash drifted:\n  got  %s\n  want %s", workers, got, goldenFramesSHA)
		}
	}
}

func sumSHA(b []byte) []byte {
	h := sha256.Sum256(b)
	return h[:]
}
