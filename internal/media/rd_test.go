package media

import "testing"

// TestRateDistortionMonotonic checks the codec's fundamental R-D
// behaviour: coarser quantizers must shrink the bitstream and (broadly)
// lower reconstruction quality, while finer quantizers cost bits and buy
// PSNR. The workload substrate is only credible if this shape holds.
func TestRateDistortionMonotonic(t *testing.T) {
	src := NewSource(DefaultSource(64, 48))
	frames := src.Frames(6)
	type point struct {
		q    int
		bits int
		psnr float64
	}
	var pts []point
	for _, q := range []int{2, 6, 16, 40} {
		cfg := DefaultCodec(64, 48)
		cfg.Q = q
		stream, recon, stats, err := Encode(cfg, frames)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Decode(stream)
		if err != nil {
			t.Fatal(err)
		}
		disp := res.DisplayFrames()
		sum := 0.0
		for i := range disp {
			if !disp[i].Equal(recon[i]) {
				t.Fatalf("q=%d: decode mismatch", q)
			}
			sum += frames[i].PSNR(disp[i])
		}
		pts = append(pts, point{q: q, bits: stats.TotalBits(), psnr: sum / float64(len(disp))})
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].bits >= pts[i-1].bits {
			t.Errorf("q=%d bits %d not below q=%d bits %d",
				pts[i].q, pts[i].bits, pts[i-1].q, pts[i-1].bits)
		}
		if pts[i].psnr >= pts[i-1].psnr {
			t.Errorf("q=%d psnr %.1f not below q=%d psnr %.1f",
				pts[i].q, pts[i].psnr, pts[i-1].q, pts[i-1].psnr)
		}
	}
	if pts[0].psnr < 30 {
		t.Errorf("fine quantizer PSNR %.1f too low", pts[0].psnr)
	}
	if last := pts[len(pts)-1]; last.psnr > pts[0].psnr-5 {
		t.Errorf("R-D range too flat: %.1f .. %.1f", pts[0].psnr, last.psnr)
	}
}

// TestGOPStructureAffectsRate checks the per-frame-type rate ordering
// inside an IBBP encode: B frames (bi-directional prediction, deadzone
// quantization) must cost fewer bits than P frames, which must cost fewer
// than I frames — the data dependence Figure 10 rides on.
func TestGOPStructureAffectsRate(t *testing.T) {
	cfgSrc := DefaultSource(64, 48)
	cfgSrc.Speed = 1
	cfgSrc.Noise = 3
	src := NewSource(cfgSrc)
	frames := src.Frames(12)
	cfg := DefaultCodec(64, 48)
	_, _, stats, err := Encode(cfg, frames)
	if err != nil {
		t.Fatal(err)
	}
	sum := map[FrameType]int{}
	cnt := map[FrameType]int{}
	for _, f := range stats.Frames {
		sum[f.Type] += f.Bits
		cnt[f.Type]++
	}
	avg := func(t FrameType) int { return sum[t] / cnt[t] }
	if cnt[FrameI] == 0 || cnt[FrameP] == 0 || cnt[FrameB] == 0 {
		t.Fatal("missing frame types")
	}
	if !(avg(FrameB) < avg(FrameP) && avg(FrameP) < avg(FrameI)) {
		t.Errorf("bits/frame ordering violated: I=%d P=%d B=%d",
			avg(FrameI), avg(FrameP), avg(FrameB))
	}
}

// TestIntraOnlyIsLargest checks that disabling temporal prediction
// entirely (GOP of 1) costs the most bits.
func TestIntraOnlyIsLargest(t *testing.T) {
	src := NewSource(DefaultSource(48, 32))
	frames := src.Frames(6)
	size := func(gopN, gopM int) int {
		cfg := DefaultCodec(48, 32)
		cfg.GOPN = gopN
		cfg.GOPM = gopM
		_, _, stats, err := Encode(cfg, frames)
		if err != nil {
			t.Fatal(err)
		}
		return stats.TotalBits()
	}
	intra, inter := size(1, 1), size(12, 3)
	if intra <= inter {
		t.Errorf("intra-only (%d bits) not larger than IBBP (%d bits)", intra, inter)
	}
}
