package media

// Pipeline-parallel decoder: a serial entropy front-end overlapped with a
// pool of reconstruction workers.
//
// The bitstream is inherently sequential — every macroblock's syntax
// position depends on every bit before it — but once a macroblock's
// tokens and coding decision are recovered, its reconstruction
// (RLSQ → IDCT → Predict → Reconstruct) depends only on the reference
// frames, not on its neighbours. The decoder therefore splits along the
// same line as the PR-3 encoder (parallel analysis + serial entropy),
// mirrored: the parser runs on the calling goroutine, publishing one
// bounded-queue batch per macroblock row, and `workers` goroutines
// reconstruct rows concurrently.
//
// Cross-frame pipelining falls out of the same mechanism: the parser
// moves on to frame N+1's entropy layer while frame N's rows are still
// being reconstructed. Reference safety is per-row: each batch records
// how many completed rows of its forward/backward reference its motion
// vectors can reach (conservatively for half-pel, which needs one extra
// support row), and workers block on the reference's row-completion
// prefix before reconstructing. Deadlock-freedom argument: batches are
// consumed FIFO and every reference row batch is enqueued strictly
// before any batch that depends on it (a frame is fully parsed before it
// can become a reference), so the oldest in-flight batch always has its
// dependencies completed.
//
// Error parity with the serial decoder is exact: the parser re-validates
// each macroblock's run/level expansion inline (the only failure mode of
// the reconstruction half), so any malformed stream fails on the parser
// goroutine at the same macroblock, with the same wrapped error chain,
// as the serial decoder — and workers can never fail.
//
// Allocation discipline: the batch set (and the TokenMB arenas inside
// it) is fixed at decode start and recycled through a free-list channel,
// so steady-state row reconstruction allocates nothing; frames come from
// the NewFrame hook (a FramePool in the serving path).

import (
	"fmt"
	"runtime"
	"sync"
)

// DecodeWorkers is the default number of reconstruction workers used by
// Decode: GOMAXPROCS-scaled so multi-core machines overlap entropy parse
// with per-row reconstruction out of the box. At 1 the decoder is the
// serial reference path (no goroutines, no queues). Output is
// bit-identical for every worker count.
var DecodeWorkers = runtime.GOMAXPROCS(0)

// DecodeOptions parameterizes DecodeWithOptions. The zero value decodes
// with DecodeWorkers workers and plain NewFrame allocation.
type DecodeOptions struct {
	// Workers is the reconstruction worker count: 0 means the
	// DecodeWorkers default; values <= 1 select the serial path.
	Workers int
	// NewFrame, when non-nil, supplies reconstruction frames (e.g. from
	// a FramePool). It must return a zeroed w×h frame.
	NewFrame func(w, h int) *Frame
	// Recycle, when non-nil, is called for every frame the decoder
	// created once it is certain the frame will not be returned (error
	// and cancellation paths), so pooled frames are not leaked.
	Recycle func(*Frame)
	// OnFrame, when non-nil, is called before each coded frame's header
	// is parsed (in both the serial and parallel paths). Returning a
	// non-nil error aborts the decode with that error: the serving
	// layer's preemption/cancellation checkpoint.
	OnFrame func(coded int) error
	// OnDisplayFrame, when non-nil, switches the decode into streaming
	// mode: it is called once per frame, in strictly increasing display
	// order, as soon as the frame's last row is reconstructed AND every
	// earlier display index has been delivered. The frame stays valid at
	// least until Retire is called for it; the decoder may keep reading
	// it as a motion-compensation reference in the meantime, so the
	// consumer must not mutate or recycle it before its Retire. A
	// non-nil return aborts the decode with that error. In streaming
	// mode the returned DecodeResult carries frame headers only
	// (Coded[i].Frame is nil) — the decoder retains no frames, which is
	// what bounds its memory to the reorder window. Display indices are
	// validated to form a bijection with [0, Frames): streams that would
	// leave display holes fail with ErrBitstream at the parse point.
	OnDisplayFrame func(di int, f *Frame) error
	// Retire, in streaming mode, is called exactly once per delivered
	// frame when the decoder's own interest in it ends (its reference
	// window passed, the decode finished, or the decode aborted). After
	// a frame's Retire the consumer is its sole owner. Frames created
	// but never delivered (abort paths) go to Recycle instead, exactly
	// once. Delivery callbacks and Retire may run on different
	// goroutines, but never concurrently for the same frame.
	Retire func(f *Frame)
}

// DecodeWithOptions decodes with explicit worker-count, frame-allocation
// and checkpoint hooks. See Decode for the semantics; output and errors
// are identical for every option combination.
func DecodeWithOptions(stream []byte, opts DecodeOptions) (*DecodeResult, error) {
	workers := opts.Workers
	if workers == 0 {
		workers = DecodeWorkers
	}
	if workers <= 1 {
		return decodeSerial(stream, &opts)
	}
	return decodeParallel(stream, &opts, workers)
}

// decMB is one parsed macroblock awaiting reconstruction: the recovered
// coding decision plus the entropy-decoded tokens (arena-backed; owned
// by the enclosing batch and recycled with it).
type decMB struct {
	dec MBDecision
	tok TokenMB
}

// decRowBatch is the unit of work between the entropy front-end and the
// reconstruction workers: one fully parsed macroblock row.
type decRowBatch struct {
	fr       *decFrame // frame under reconstruction
	fwd, bwd *decFrame // references (nil when the row's frame type has none)
	needFwd  int       // completed-row prefix of fwd required (0 = none)
	needBwd  int       // completed-row prefix of bwd required (0 = none)
	mby      int
	n        int // macroblocks valid in mbs
	halfPel  bool
	q        int
	mbs      []decMB
}

// prep readies a recycled batch for a new row. Token arenas inside mbs
// survive (ParseMBSyntaxInto resets them), so steady-state reuse does
// not allocate.
func (b *decRowBatch) prep(fr, fwd, bwd *decFrame, seq *SeqHeader, mby int) {
	b.fr, b.fwd, b.bwd = fr, fwd, bwd
	b.needFwd, b.needBwd = 0, 0
	b.mby = mby
	b.n = 0
	b.halfPel = seq.HalfPel
	b.q = seq.Q
	if cap(b.mbs) < seq.MBCols {
		b.mbs = make([]decMB, seq.MBCols)
	}
	b.mbs = b.mbs[:seq.MBCols]
}

// computeNeeds records, per reference, the completed-row prefix the
// row's motion vectors can touch. Workers gate on these before
// reconstructing, which is what makes cross-frame pipelining safe.
func (b *decRowBatch) computeNeeds(seq *SeqHeader) {
	y := b.mby * MBSize
	h, rows := seq.H(), seq.MBRows
	needF, needB := 0, 0
	for i := 0; i < b.n; i++ {
		dec := &b.mbs[i].dec
		switch dec.Mode {
		case PredIntra:
			// no reference access
		case PredSkip:
			// forward reference at zero motion, always full-pel
			if p := refRowPrefix(y, 0, false, h, rows); p > needF {
				needF = p
			}
		case PredFwd:
			if p := refRowPrefix(y, int(dec.FMV.Y), b.halfPel, h, rows); p > needF {
				needF = p
			}
		case PredBwd:
			if p := refRowPrefix(y, int(dec.BMV.Y), b.halfPel, h, rows); p > needB {
				needB = p
			}
		case PredBi:
			if p := refRowPrefix(y, int(dec.FMV.Y), b.halfPel, h, rows); p > needF {
				needF = p
			}
			if p := refRowPrefix(y, int(dec.BMV.Y), b.halfPel, h, rows); p > needB {
				needB = p
			}
		}
	}
	b.needFwd, b.needBwd = needF, needB
}

// refRowPrefix returns how many completed macroblock rows of a reference
// frame are needed to predict a macroblock at pixel row y with vertical
// motion mvY (in half-pel units when halfPel). Half-pel is conservative:
// it always charges the extra bilinear support row below the integer
// position, so a worker never waits on too few rows. Vectors reaching
// past the bottom edge clamp onto the last pixel row, which requires the
// whole reference.
func refRowPrefix(y, mvY int, halfPel bool, h, rows int) int {
	var last int // bottom-most pixel row the fetch reads, pre-clamping
	if halfPel {
		last = ((2*y + mvY) >> 1) + MBSize
	} else {
		last = y + mvY + MBSize - 1
	}
	if last < 0 {
		last = 0 // clamped onto the top row
	}
	if last >= h {
		return rows // clamped onto the bottom row: need the full frame
	}
	return last/MBSize + 1
}

// run reconstructs the batch's row. All scratch is caller-owned
// (per-worker), so the steady state allocates nothing.
func (b *decRowBatch) run(coef, resid *[BlocksPerMB]Block, pred, out *MBPixels) {
	if b.fwd != nil && b.needFwd > 0 {
		b.fwd.waitRows(b.needFwd)
	}
	if b.bwd != nil && b.needBwd > 0 {
		b.bwd.waitRows(b.needBwd)
	}
	var fwdF, bwdF *Frame
	if b.fwd != nil {
		fwdF = b.fwd.f
	}
	if b.bwd != nil {
		bwdF = b.bwd.f
	}
	y := b.mby * MBSize
	for mbx := 0; mbx < b.n; mbx++ {
		mb := &b.mbs[mbx]
		// The parser validated the run/level expansion (the only failure
		// mode down here), so this cannot fail; the expansion itself is
		// deterministic, keeping output bit-identical with the serial path.
		_ = RLSQDecodeMB(&mb.tok, b.q, coef)
		IDCTMB(coef, mb.tok.CBP, resid)
		PredictHP(pred, mb.dec.Mode, fwdF, bwdF, mbx*MBSize, y, mb.dec.FMV, mb.dec.BMV, b.halfPel)
		Reconstruct(out, pred, resid)
		b.fr.f.SetMB(mbx, b.mby, out)
	}
	b.fr.markRow(b.mby)
}

// decFrame pairs a frame under reconstruction with its row-completion
// state: rows [0, done) are fully reconstructed. Workers reconstructing
// dependent frames block in waitRows until the prefix they need exists.
type decFrame struct {
	f            *Frame
	sink         *streamSink // streaming delivery, nil in batch mode
	di           int         // display index (valid when sink != nil)
	fwdDi, bwdDi int         // display indices of this frame's references (-1 = none)
	mu           sync.Mutex
	cond         sync.Cond
	done         int
	rowDone      []bool
}

func newDecFrame(f *Frame, rows int) *decFrame {
	d := &decFrame{f: f, fwdDi: -1, bwdDi: -1, rowDone: make([]bool, rows)}
	d.cond.L = &d.mu
	return d
}

// markRow records row as reconstructed and advances the contiguous
// completed prefix (rows finish out of order across workers).
func (d *decFrame) markRow(row int) {
	d.mu.Lock()
	d.rowDone[row] = true
	for d.done < len(d.rowDone) && d.rowDone[d.done] {
		d.done++
	}
	finished := d.done == len(d.rowDone)
	d.mu.Unlock()
	d.cond.Broadcast()
	// The contiguous prefix reaches the end exactly once (done is
	// monotone and each row is marked once), so this fires once per
	// frame — marking the frame complete AND ending its reads of its
	// references (all motion compensation from them has run).
	if finished && d.sink != nil {
		d.sink.frameComplete(d.di, d.fwdDi, d.bwdDi)
	}
}

// waitRows blocks until at least n rows are reconstructed.
func (d *decFrame) waitRows(n int) {
	d.mu.Lock()
	for d.done < n {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// validateMBTokens replays the run/level expansion on the parser
// goroutine so malformed token streams fail there — at the same
// macroblock, with the same error chain, as the serial decoder's
// RLSQDecodeMB — and the reconstruction workers cannot fail. zz is
// caller-owned scratch; only the expansion verdict matters.
func validateMBTokens(tok *TokenMB, zz *Block) error {
	for b := 0; b < BlocksPerMB; b++ {
		if tok.CBP&(1<<b) == 0 {
			continue
		}
		if !RunLengthExpand(tok.Events[b], zz) {
			return fmt.Errorf("%w: run/level overflow", ErrBitstream)
		}
	}
	return nil
}

// decodeParallel is the pipelined decoder: entropy parse on the calling
// goroutine, per-row reconstruction on `workers` goroutines, bounded by
// a batch free list (which also bounds the cross-frame lookahead).
func decodeParallel(stream []byte, opts *DecodeOptions, workers int) (*DecodeResult, error) {
	r := NewBitReader(stream)
	seq, err := ParseSeqHeader(r)
	if err != nil {
		return nil, err
	}
	return decodeParallelSpan(r, seq, 0, seq.Frames, opts, workers)
}

// decodeParallelSpan runs the pipelined decoder over coded frames
// [lo, hi) with r positioned at frame lo's header. Whole-stream decodes
// pass [0, Frames); segment decodes pass a closed sub-range, within
// which the reference chain is self-contained (the range starts with an
// I frame and no frame references outside it — IndexGOPs' closed-cut
// guarantee), so the loop body is identical.
func decodeParallelSpan(r *BitReader, seq SeqHeader, lo, hi int, opts *DecodeOptions, workers int) (*DecodeResult, error) {
	newFrame := opts.NewFrame
	if newFrame == nil {
		newFrame = NewFrame
	}
	rows := seq.MBRows

	// Batch budget: enough for every worker to hold one and the parser
	// to stay a row or two ahead; the free list is the backpressure that
	// keeps the parser's lookahead (and memory) bounded.
	nbatch := 2*workers + 2
	free := make(chan *decRowBatch, nbatch)
	for i := 0; i < nbatch; i++ {
		free <- &decRowBatch{mbs: make([]decMB, seq.MBCols)}
	}
	work := make(chan *decRowBatch, nbatch)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var coef, resid [BlocksPerMB]Block
			var pred, out MBPixels
			for b := range work {
				b.run(&coef, &resid, &pred, &out)
				free <- b
			}
		}()
	}

	res := &DecodeResult{Seq: seq}
	var refA, refB *decFrame // RefChain over frames-in-flight: A older, B newer
	var parseErr error
	var zz Block // validateMBTokens scratch

	// Streaming mode: a dedicated goroutine walks the display order and
	// fires OnDisplayFrame, while the parser throttles itself to a
	// bounded coded-frame window past the delivery cursor — GOPM covers
	// the worst-case reorder distance, +2 keeps the pipeline full
	// (window >= 2 is the deadlock-freedom floor, see waitWindow).
	streaming := opts.OnDisplayFrame != nil
	var sink *streamSink
	if streaming {
		sink = newStreamSink(opts, lo, hi, seq.GOPM+2)
		sink.join.Add(1)
		go sink.run()
	}

parse:
	for fi := lo; fi < hi; fi++ {
		if streaming {
			if err := sink.waitWindow(fi); err != nil {
				parseErr = err
				break
			}
		}
		if opts.OnFrame != nil {
			if err := opts.OnFrame(fi); err != nil {
				parseErr = err
				break
			}
		}
		hdr, err := ParseFrameHdr(r)
		if err != nil {
			parseErr = fmt.Errorf("frame %d: %w", fi, err)
			break
		}
		if hdr.Type != FrameI && refB == nil {
			parseErr = fmt.Errorf("frame %d: %w", fi,
				fmt.Errorf("%w: %v frame before first reference", ErrBitstream, hdr.Type))
			break
		}
		if hdr.Type == FrameB && refA == nil {
			parseErr = fmt.Errorf("frame %d: %w", fi,
				fmt.Errorf("%w: B frame with a single reference", ErrBitstream))
			break
		}
		df := newDecFrame(newFrame(seq.W(), seq.H()), rows)
		if streaming {
			df.sink, df.di = sink, int(hdr.TRef)
			if err := sink.frameParsed(df.di, df.f, hdr.Type != FrameB); err != nil {
				if opts.Recycle != nil {
					opts.Recycle(df.f) // never entered the sink's custody
				}
				parseErr = fmt.Errorf("frame %d: %w", fi, err)
				break
			}
			res.Coded = append(res.Coded, DecodedFrame{Hdr: hdr})
		} else {
			res.Coded = append(res.Coded, DecodedFrame{Hdr: hdr, Frame: df.f})
		}
		var fwd, bwd *decFrame
		switch hdr.Type {
		case FrameP:
			fwd = refB
		case FrameB:
			fwd, bwd = refA, refB
		}
		if streaming {
			// Stake out this frame's reads of its references before any of
			// its rows can run: the references' Retire must wait for them.
			if fwd != nil {
				df.fwdDi = fwd.di
				sink.addReader(fwd.di)
			}
			if bwd != nil {
				df.bwdDi = bwd.di
				sink.addReader(bwd.di)
			}
		}
		var mvp MVPredictor
		for mby := 0; mby < rows; mby++ {
			bat := <-free
			bat.prep(df, fwd, bwd, &seq, mby)
			mvp.RowStart()
			var rowErr error
			for mbx := 0; mbx < seq.MBCols; mbx++ {
				mb := &bat.mbs[mbx]
				dec, err := ParseMBSyntaxInto(r, hdr.Type, &mvp, &mb.tok)
				if err == nil {
					err = validateMBTokens(&mb.tok, &zz)
				}
				if err != nil {
					rowErr = fmt.Errorf("mb (%d,%d): %w", mbx, mby, err)
					break
				}
				mb.dec = dec
				bat.n++
			}
			if rowErr != nil {
				free <- bat // partial rows are never reconstructed
				parseErr = fmt.Errorf("frame %d: %w", fi, rowErr)
				break parse
			}
			bat.computeNeeds(&seq)
			work <- bat
		}
		if hdr.Type != FrameB {
			dropped := refA
			refA, refB = refB, df
			if streaming && dropped != nil {
				sink.chainDrop(dropped.di)
			}
		}
	}

	if streaming && parseErr != nil {
		sink.fail(parseErr) // stop deliveries promptly; workers still drain below
	}
	close(work)
	wg.Wait() // all enqueued rows reconstructed; no goroutine touches frames past here

	if streaming {
		if parseErr == nil {
			// Drop the final references so their Retire fires as soon as
			// each is delivered, then wait for the display order to finish.
			if refA != nil {
				sink.chainDrop(refA.di)
			}
			if refB != nil {
				sink.chainDrop(refB.di)
			}
			parseErr = sink.waitDelivered()
			if parseErr != nil {
				sink.fail(parseErr)
			}
		}
		sink.join.Wait()
		sink.cleanup() // release whatever delivery/chainDrop did not
		if parseErr != nil {
			return nil, parseErr
		}
		return res, nil
	}

	if parseErr != nil {
		if opts.Recycle != nil {
			for _, df := range res.Coded {
				opts.Recycle(df.Frame)
			}
		}
		return nil, parseErr
	}
	return res, nil
}

// decodeSerial is the reference path (workers <= 1): the exact PR-3
// decoder loop with the frame-allocation and checkpoint hooks threaded
// through.
func decodeSerial(stream []byte, opts *DecodeOptions) (*DecodeResult, error) {
	r := NewBitReader(stream)
	seq, err := ParseSeqHeader(r)
	if err != nil {
		return nil, err
	}
	return decodeSerialSpan(r, seq, 0, seq.Frames, opts)
}

// decodeSerialSpan is the serial loop over coded frames [lo, hi); see
// decodeParallelSpan for the span contract.
func decodeSerialSpan(r *BitReader, seq SeqHeader, lo, hi int, opts *DecodeOptions) (*DecodeResult, error) {
	newFrame := opts.NewFrame
	if newFrame == nil {
		newFrame = NewFrame
	}
	res := &DecodeResult{Seq: seq}
	// Streaming mode shares the parallel path's sink but delivers inline
	// on this goroutine after each decoded frame (no delivery goroutine,
	// no lookahead window), so delivery order and errors are identical
	// across worker counts.
	streaming := opts.OnDisplayFrame != nil
	var sink *streamSink
	if streaming {
		sink = newStreamSink(opts, lo, hi, 0)
	}
	fail := func(err error) (*DecodeResult, error) {
		if streaming {
			sink.cleanup()
		} else if opts.Recycle != nil {
			for _, df := range res.Coded {
				opts.Recycle(df.Frame)
			}
		}
		return nil, err
	}
	var refs RefChain
	var refDi [2]int // display indices shadowing refs.A, refs.B
	for fi := lo; fi < hi; fi++ {
		if opts.OnFrame != nil {
			if err := opts.OnFrame(fi); err != nil {
				return fail(err)
			}
		}
		hdr, err := ParseFrameHdr(r)
		if err != nil {
			return fail(fmt.Errorf("frame %d: %w", fi, err))
		}
		frame, err := decodeFrameBody(r, &seq, hdr, &refs, newFrame, opts.Recycle)
		if err != nil {
			return fail(fmt.Errorf("frame %d: %w", fi, err))
		}
		if streaming {
			if err := sink.frameParsed(int(hdr.TRef), frame, hdr.Type != FrameB); err != nil {
				if opts.Recycle != nil {
					opts.Recycle(frame) // never entered the sink's custody
				}
				return fail(fmt.Errorf("frame %d: %w", fi, err))
			}
			// decodeFrameBody read its references synchronously above, so no
			// reader stakes are needed on the serial path.
			sink.frameComplete(int(hdr.TRef), -1, -1)
			res.Coded = append(res.Coded, DecodedFrame{Hdr: hdr})
		} else {
			res.Coded = append(res.Coded, DecodedFrame{Hdr: hdr, Frame: frame})
		}
		if hdr.Type != FrameB {
			if streaming && refs.A != nil {
				sink.chainDrop(refDi[0])
			}
			refDi[0], refDi[1] = refDi[1], int(hdr.TRef)
		}
		refs.Advance(frame, hdr.Type)
		if streaming {
			if err := sink.deliverInline(); err != nil {
				return fail(err)
			}
		}
	}
	if streaming {
		if refs.A != nil {
			sink.chainDrop(refDi[0])
		}
		if refs.B != nil {
			sink.chainDrop(refDi[1])
		}
		sink.cleanup() // safety net; a valid stream has released everything
	}
	return res, nil
}
