package media

import "math"

// 8×8 integer DCT/IDCT with 12-bit fixed-point basis tables.
//
// The forward and inverse transforms share one basis table, so the
// encoder's local reconstruction (which feeds reference frames) is
// bit-exact with the decoder's output — the property that keeps P- and
// B-frame prediction drift-free across the whole pipeline.

// dctTab[u][x] = round( alpha(u)/2 * cos((2x+1)uπ/16) * 4096 ),
// alpha(0) = 1/sqrt2, alpha(u>0) = 1. dctTabT is its transpose
// (dctTabT[x][u] = dctTab[u][x]), so both transform passes can walk a
// contiguous table row whichever index the inner sum runs over.
var dctTab, dctTabT [8][8]int32

func init() {
	for u := 0; u < 8; u++ {
		alpha := 1.0
		if u == 0 {
			alpha = 1 / math.Sqrt2
		}
		for x := 0; x < 8; x++ {
			v := alpha / 2 * math.Cos(float64(2*x+1)*float64(u)*math.Pi/16)
			dctTab[u][x] = int32(math.Round(v * 4096))
			dctTabT[x][u] = dctTab[u][x]
		}
	}
}

// Block is an 8×8 array of 16-bit samples or coefficients in row-major
// order, the unit of work of the DCT and RLSQ coprocessors.
type Block = [64]int16

const fixRound = 1 << 11 // rounding constant for the 12-bit fixed point

// FDCT computes the forward 8×8 DCT of src into dst (row-major). Inputs
// are expected in roughly [-256, 255] (pixel residuals or level-shifted
// intra pixels); outputs fit comfortably in int16.
// The passes hoist each 8-sample input vector into registers and unroll
// the 8-tap dot product; int32 two's-complement sums are associative, so
// the unrolled accumulation is bit-identical to the scalar loop.
func FDCT(src, dst *Block) {
	var tmp [64]int32
	// rows: tmp[y][u] = sum_x src[y][x] * tab[u][x]
	for y := 0; y < 8; y++ {
		row := src[y*8 : y*8+8 : y*8+8]
		c0, c1, c2, c3 := int32(row[0]), int32(row[1]), int32(row[2]), int32(row[3])
		c4, c5, c6, c7 := int32(row[4]), int32(row[5]), int32(row[6]), int32(row[7])
		o := tmp[y*8 : y*8+8 : y*8+8]
		for u := 0; u < 8; u++ {
			t := &dctTab[u]
			s := c0*t[0] + c1*t[1] + c2*t[2] + c3*t[3] + c4*t[4] + c5*t[5] + c6*t[6] + c7*t[7]
			o[u] = (s + fixRound) >> 12
		}
	}
	// cols: dst[v][u] = sum_y tmp[y][u] * tab[v][y]
	for u := 0; u < 8; u++ {
		c0, c1, c2, c3 := tmp[u], tmp[8+u], tmp[16+u], tmp[24+u]
		c4, c5, c6, c7 := tmp[32+u], tmp[40+u], tmp[48+u], tmp[56+u]
		for v := 0; v < 8; v++ {
			t := &dctTab[v]
			s := c0*t[0] + c1*t[1] + c2*t[2] + c3*t[3] + c4*t[4] + c5*t[5] + c6*t[6] + c7*t[7]
			dst[v*8+u] = clamp16((s + fixRound) >> 12)
		}
	}
}

// IDCT computes the inverse 8×8 DCT of src into dst (row-major). It is
// the deterministic inverse used by both the encoder's reconstruction
// loop and the decoder, so the two stay bit-exact.
// Like FDCT, both passes run as unrolled 8-tap dot products; the inner
// sums index the transposed table so each tap walks a contiguous row.
func IDCT(src, dst *Block) {
	var tmp [64]int32
	// rows: tmp[v][x] = sum_u src[v][u] * tab[u][x] = sum_u c_u * tabT[x][u]
	for v := 0; v < 8; v++ {
		row := src[v*8 : v*8+8 : v*8+8]
		c0, c1, c2, c3 := int32(row[0]), int32(row[1]), int32(row[2]), int32(row[3])
		c4, c5, c6, c7 := int32(row[4]), int32(row[5]), int32(row[6]), int32(row[7])
		o := tmp[v*8 : v*8+8 : v*8+8]
		for x := 0; x < 8; x++ {
			t := &dctTabT[x]
			s := c0*t[0] + c1*t[1] + c2*t[2] + c3*t[3] + c4*t[4] + c5*t[5] + c6*t[6] + c7*t[7]
			o[x] = (s + fixRound) >> 12
		}
	}
	// cols: dst[y][x] = sum_v tmp[v][x] * tab[v][y] = sum_v c_v * tabT[y][v]
	for x := 0; x < 8; x++ {
		c0, c1, c2, c3 := tmp[x], tmp[8+x], tmp[16+x], tmp[24+x]
		c4, c5, c6, c7 := tmp[32+x], tmp[40+x], tmp[48+x], tmp[56+x]
		for y := 0; y < 8; y++ {
			t := &dctTabT[y]
			s := c0*t[0] + c1*t[1] + c2*t[2] + c3*t[3] + c4*t[4] + c5*t[5] + c6*t[6] + c7*t[7]
			dst[y*8+x] = clamp16((s + fixRound) >> 12)
		}
	}
}

func clamp16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// zigzag[i] gives the row-major index of the i-th coefficient in zigzag
// scan order (the standard 8×8 zigzag of MPEG/JPEG).
var zigzag = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// unzigzag is the inverse permutation: unzigzag[rowMajor] = zigzag index.
var unzigzag [64]int

func init() {
	for i, p := range zigzag {
		unzigzag[p] = i
	}
}

// ZigzagScan permutes a row-major coefficient block into zigzag order.
func ZigzagScan(src, dst *Block) {
	for i, p := range zigzag {
		dst[i] = src[p]
	}
}

// InverseZigzag permutes a zigzag-ordered block back to row-major order
// (the inverse-scan step of the RLSQ coprocessor).
func InverseZigzag(src, dst *Block) {
	for i, p := range zigzag {
		dst[p] = src[i]
	}
}

// QuantizeInter divides coefficients by 2q with truncation toward zero
// (a deadzone quantizer, as MPEG-2 uses for non-intra blocks). The
// deadzone keeps small prediction residuals — quantization-error
// oscillation and sensor noise — from producing coefficients, which is
// what makes skip macroblocks and cheap B frames possible.
func QuantizeInter(src, dst *Block, q int) {
	d := int32(2 * q)
	for i, c := range src {
		lvl := int32(c) / d
		if lvl > MaxLevel {
			lvl = MaxLevel
		}
		if lvl < -MaxLevel {
			lvl = -MaxLevel
		}
		dst[i] = int16(lvl)
	}
}

// Quantize divides coefficients by 2q with symmetric rounding (used for
// intra blocks) and clamps levels to the escape-codable range. q must be
// ≥ 1.
func Quantize(src, dst *Block, q int) {
	d := int32(2 * q)
	half := d / 2
	for i, c := range src {
		v := int32(c)
		var lvl int32
		if v >= 0 {
			lvl = (v + half) / d
		} else {
			lvl = -((-v + half) / d)
		}
		if lvl > MaxLevel {
			lvl = MaxLevel
		}
		if lvl < -MaxLevel {
			lvl = -MaxLevel
		}
		dst[i] = int16(lvl)
	}
}

// Dequantize multiplies levels by 2q (the inverse-quantization step of
// the RLSQ coprocessor).
func Dequantize(src, dst *Block, q int) {
	d := int32(2 * q)
	for i, l := range src {
		dst[i] = clamp16(int32(l) * d)
	}
}

// NonzeroCount returns the number of nonzero coefficients in the block, a
// proxy for entropy-coding work used in cost models and tests.
func NonzeroCount(b *Block) int {
	n := 0
	for _, c := range b {
		if c != 0 {
			n++
		}
	}
	return n
}
