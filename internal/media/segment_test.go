package media

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// segTestStream encodes a deterministic synthetic clip.
func segTestStream(t testing.TB, w, h, frames int, mut func(*CodecConfig)) ([]byte, CodecConfig) {
	t.Helper()
	src := DefaultSource(w, h)
	src.Seed = 11
	fr := NewSource(src).Frames(frames)
	cfg := DefaultCodec(w, h)
	if mut != nil {
		mut(&cfg)
	}
	stream, _, _, err := Encode(cfg, fr)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return stream, cfg
}

// TestEncodeClosedCuts pins the closure analysis on the structural cases
// that matter: IPPP GOPs cut at every GOP boundary, (N-1)%M==0 GOPs are
// closed, and the default open-GOP structure (N=12, M=3) has no interior
// cuts at all — its boundary B frames reference across the I.
func TestEncodeClosedCuts(t *testing.T) {
	cases := []struct {
		n, gopN, gopM int
		want          []int
	}{
		{12, 4, 1, []int{4, 8}},
		{26, 13, 3, []int{13}},
		{24, 12, 3, nil},           // open GOPs: B(10),B(11) reference I(12)
		{30, 10, 3, []int{10, 20}}, // (N-1)%M == 0: closed
		{5, 12, 3, nil},            // single GOP
	}
	for _, c := range cases {
		got := EncodeClosedCuts(c.n, c.gopN, c.gopM)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("EncodeClosedCuts(%d,%d,%d) = %v, want %v", c.n, c.gopN, c.gopM, got, c.want)
		}
	}
}

// TestIndexGOPs checks the scan against the encoder's own structure: the
// decode-side cuts of a stream we encoded must equal the encode-side
// closure of its GOP parameters, and every frame-bit offset must point
// at a frame marker.
func TestIndexGOPs(t *testing.T) {
	stream, cfg := segTestStream(t, 64, 48, 26, func(c *CodecConfig) { c.GOPN = 13; c.GOPM = 3 })
	var checkpoints int
	ix, err := IndexGOPs(stream, func(coded int) error {
		if coded != checkpoints {
			t.Errorf("checkpoint %d fired out of order (want %d)", coded, checkpoints)
		}
		checkpoints++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checkpoints != 26 {
		t.Errorf("checkpoints = %d, want 26", checkpoints)
	}
	want := EncodeClosedCuts(26, cfg.GOPN, cfg.GOPM)
	if fmt.Sprint(ix.Cuts()) != fmt.Sprint(want) {
		t.Errorf("decode-side cuts %v, want %v", ix.Cuts(), want)
	}
	if fmt.Sprint(ix.TranscodeCuts(cfg.GOPN, cfg.GOPM)) != fmt.Sprint(want) {
		t.Errorf("transcode cuts %v, want %v", ix.TranscodeCuts(cfg.GOPN, cfg.GOPM), want)
	}
	r := NewBitReader(stream)
	for c := 0; c < ix.Seq.Frames; c++ {
		r.Reset(readerMark{pos: ix.FrameBit(c)})
		if m := r.ReadBits(16); m != frameMarker {
			t.Errorf("FrameBit(%d): no frame marker at bit %d (got %#x)", c, ix.FrameBit(c), m)
		}
	}

	// The scan validates like the decoder: truncation and a broken TRef
	// bijection are ErrBitstream.
	if _, err := IndexGOPs(stream[:len(stream)/2], nil); !errors.Is(err, ErrBitstream) {
		t.Errorf("truncated stream: err = %v, want ErrBitstream", err)
	}
	// Corrupt frame 1's TRef to duplicate frame 0's (tref field sits 18
	// bits into the frame header).
	dup := append([]byte(nil), stream...)
	trefBit := ix.FrameBit(1) + 18
	hdr0 := uint32(0)
	for i := 0; i < 16; i++ {
		b := (dup[(trefBit+i)/8] >> (7 - (trefBit+i)%8)) & 1
		hdr0 = hdr0<<1 | uint32(b)
	}
	for i := 0; i < 16; i++ { // overwrite with 0 = frame 0's display index
		dup[(trefBit+i)/8] &^= 1 << (7 - (trefBit+i)%8)
	}
	if hdr0 == 0 {
		t.Fatal("frame 1 tref unexpectedly already 0")
	}
	if _, err := IndexGOPs(dup, nil); !errors.Is(err, ErrBitstream) {
		t.Errorf("duplicate tref: err = %v, want ErrBitstream", err)
	}

	// Checkpoint errors abort with the callback's error.
	abort := errors.New("parked")
	if _, err := IndexGOPs(stream, func(coded int) error {
		if coded == 3 {
			return abort
		}
		return nil
	}); !errors.Is(err, abort) {
		t.Errorf("checkpoint abort: err = %v, want %v", err, abort)
	}
}

func TestPartitionSegments(t *testing.T) {
	cuts := []int{4, 8, 12, 16, 20}
	spans := PartitionSegments(24, 3, cuts)
	if fmt.Sprint(spans) != "[[0 8] [8 16] [16 24]]" {
		t.Errorf("balanced partition = %v", spans)
	}
	if spans := PartitionSegments(24, 1, cuts); fmt.Sprint(spans) != "[[0 24]]" {
		t.Errorf("k=1 partition = %v", spans)
	}
	if spans := PartitionSegments(24, 4, nil); fmt.Sprint(spans) != "[[0 24]]" {
		t.Errorf("no-cuts partition = %v", spans)
	}
	// More requested segments than cuts: use them all.
	if spans := PartitionSegments(12, 8, []int{4, 8}); fmt.Sprint(spans) != "[[0 4] [4 8] [8 12]]" {
		t.Errorf("cut-starved partition = %v", spans)
	}
	// Spans must tile [0, n) cutting only at cut positions.
	spans = PartitionSegments(26, 5, []int{13})
	if fmt.Sprint(spans) != "[[0 13] [13 26]]" {
		t.Errorf("single-cut partition = %v", spans)
	}
}

// transcodeSegmented runs the full media-layer segment pipeline: index,
// partition into k spans, decode each span concurrently into its own
// headerless segment encoder, stitch. Returns the stitched bitstream.
func transcodeSegmented(t testing.TB, stream []byte, out CodecConfig, k, decWorkers int) []byte {
	t.Helper()
	ix, err := IndexGOPs(stream, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := ix.Seq.Frames
	spans := PartitionSegments(n, k, ix.TranscodeCuts(out.GOPN, out.GOPM))
	parts := make([]*BitWriter, len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	for si, sp := range spans {
		wg.Add(1)
		go func(si, lo, hi int) {
			defer wg.Done()
			enc, err := NewStreamEncoderSegment(out, n, lo, hi)
			if err != nil {
				errs[si] = err
				return
			}
			_, err = DecodeSegment(stream, ix.FrameBit(lo), lo, hi, DecodeOptions{
				Workers: decWorkers,
				OnDisplayFrame: func(di int, f *Frame) error {
					return enc.Push(f)
				},
			})
			if err != nil {
				enc.Abort()
				errs[si] = err
				return
			}
			parts[si], _, errs[si] = enc.CloseRaw()
		}(si, sp[0], sp[1])
	}
	wg.Wait()
	for si, err := range errs {
		if err != nil {
			t.Fatalf("segment %d: %v", si, err)
		}
	}
	stitched, err := StitchSegments(out, n, parts)
	if err != nil {
		t.Fatal(err)
	}
	return stitched
}

// TestSegmentTranscodeGoldenSweep is the tentpole's bit-identity guard:
// for segment counts 1..8 (and serial vs pipelined segment decodes) the
// stitched segment-parallel transcode must be byte-identical to the
// serial path — a whole-clip decode re-encoded by the batch encoder.
func TestSegmentTranscodeGoldenSweep(t *testing.T) {
	stream, cfg := segTestStream(t, 64, 48, 39, func(c *CodecConfig) { c.GOPN = 13; c.GOPM = 3 })
	out := cfg
	out.Q = 9 // actual re-quantization, not a passthrough

	res, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	golden, _, _, err := Encode(out, res.DisplayFrames())
	if err != nil {
		t.Fatal(err)
	}

	for k := 1; k <= 8; k++ {
		for _, dw := range []int{1, 4} {
			got := transcodeSegmented(t, stream, out, k, dw)
			if !bytes.Equal(got, golden) {
				t.Errorf("k=%d decWorkers=%d: stitched stream differs from serial path (%d vs %d bytes)",
					k, dw, len(got), len(golden))
			}
		}
	}

	// Open-GOP clips have no usable cuts: the pipeline must degrade to a
	// single segment and still match.
	openStream, openCfg := segTestStream(t, 64, 48, 24, nil) // N=12, M=3: open
	ix, err := IndexGOPs(openStream, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cuts := ix.TranscodeCuts(openCfg.GOPN, openCfg.GOPM); len(cuts) != 0 {
		t.Fatalf("open-GOP stream reported cuts %v", cuts)
	}
	openOut := openCfg
	openOut.Q = 9
	openRes, err := Decode(openStream)
	if err != nil {
		t.Fatal(err)
	}
	openGolden, _, _, err := Encode(openOut, openRes.DisplayFrames())
	if err != nil {
		t.Fatal(err)
	}
	if got := transcodeSegmented(t, openStream, openOut, 4, 2); !bytes.Equal(got, openGolden) {
		t.Error("open-GOP fallback stream differs from serial path")
	}
}

// TestDecodeSegmentPixels decodes each closed segment independently and
// checks delivered pixels (and display indices) against the whole-stream
// decode.
func TestDecodeSegmentPixels(t *testing.T) {
	stream, cfg := segTestStream(t, 64, 48, 26, func(c *CodecConfig) { c.GOPN = 13; c.GOPM = 3 })
	ix, err := IndexGOPs(stream, nil)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	wholeFrames := whole.DisplayFrames()
	spans := PartitionSegments(ix.Seq.Frames, 2, ix.TranscodeCuts(cfg.GOPN, cfg.GOPM))
	if len(spans) != 2 {
		t.Fatalf("spans = %v, want 2", spans)
	}
	for _, workers := range []int{1, 4} {
		for _, sp := range spans {
			next := sp[0]
			_, err := DecodeSegment(stream, ix.FrameBit(sp[0]), sp[0], sp[1], DecodeOptions{
				Workers: workers,
				OnDisplayFrame: func(di int, f *Frame) error {
					if di != next {
						t.Errorf("segment %v: delivered di %d, want %d", sp, di, next)
					}
					next++
					if !bytes.Equal(f.Pix, wholeFrames[di].Pix) {
						t.Errorf("segment %v workers=%d: frame %d pixels differ", sp, workers, di)
					}
					return nil
				},
			})
			if err != nil {
				t.Fatalf("segment %v workers=%d: %v", sp, workers, err)
			}
			if next != sp[1] {
				t.Errorf("segment %v: delivered up to %d, want %d", sp, next, sp[1])
			}
		}
	}

	// Guard rails: non-streaming use and bad ranges are rejected.
	if _, err := DecodeSegment(stream, ix.FrameBit(0), 0, 26, DecodeOptions{}); err == nil {
		t.Error("non-streaming DecodeSegment did not fail")
	}
	if _, err := DecodeSegment(stream, ix.FrameBit(0), 13, 40, DecodeOptions{
		OnDisplayFrame: func(int, *Frame) error { return nil },
	}); err == nil {
		t.Error("out-of-range segment did not fail")
	}
}

// TestAppendBits splices writers at unaligned bit positions and checks
// the result equals writing the same bits through one writer.
func TestAppendBits(t *testing.T) {
	one := NewBitWriter()
	a, b := NewBitWriter(), NewBitWriter()
	vals := []struct {
		v uint32
		n uint
	}{{0x5, 3}, {0x1FFFF, 17}, {0, 1}, {0xABCDEF, 24}, {0x3, 7}, {1, 1}}
	for i, x := range vals {
		one.WriteBits(x.v, x.n)
		if i < 3 {
			a.WriteBits(x.v, x.n)
		} else {
			b.WriteBits(x.v, x.n)
		}
	}
	w := NewBitWriter()
	w.AppendBits(a)
	w.AppendBits(b)
	if w.BitLen() != one.BitLen() {
		t.Fatalf("bit length %d, want %d", w.BitLen(), one.BitLen())
	}
	if !bytes.Equal(w.Bytes(), one.Bytes()) {
		t.Errorf("spliced bytes differ")
	}
}
