package media

import "testing"

// Regression tests for the stream-tail behavior of the two entropy fast
// paths: the BitReader's 8-byte refill window degrades to the byte-wise
// tail loop near the end of the buffer, and the Huffman LUT path must
// hand truncated input to the serial walk so the PastEnd/corrupt
// classification and bits-consumed accounting never depend on which
// path ran. The fuzz harnesses in fuzz_test.go explore the same
// properties randomly; these pin the exhaustive small cases in CI.

// TestBitReaderTailWindow checks ReadBits and PeekBits for every (bit
// position, width) pair over a short buffer, comparing against the
// bit-at-a-time reference. Positions in the last 8 bytes take the
// tailBits slow path; earlier ones take the 64-bit load, so the sweep
// covers both sides of the boundary at every alignment.
func TestBitReaderTailWindow(t *testing.T) {
	buf := []byte{0x8f, 0x01, 0xfe, 0x55, 0xaa, 0x33, 0xcc, 0x70, 0x0d, 0xb2, 0x41, 0xe7}
	total := len(buf) * 8
	for pos := 0; pos <= total; pos++ {
		for n := uint(0); n <= 32; n++ {
			r := NewBitReader(buf)
			r.Skip(uint(pos))
			if r.Err() != nil {
				t.Fatalf("Skip(%d): unexpected error %v", pos, r.Err())
			}
			if got, want := r.PeekBits(n), refBits(buf, pos, n, len(buf)); got != want {
				t.Fatalf("PeekBits(%d) at bit %d: got %#x, want %#x", n, pos, got, want)
			}
			got := r.ReadBits(n)
			if pos+int(n) > total {
				if r.Err() == nil || !r.PastEnd() {
					t.Fatalf("ReadBits(%d) at bit %d: want PastEnd, got value %#x err %v", n, pos, got, r.Err())
				}
				if r.BitPos() != pos {
					t.Fatalf("ReadBits(%d) at bit %d: failed read moved position to %d", n, pos, r.BitPos())
				}
				continue
			}
			if want := refBits(buf, pos, n, len(buf)); got != want {
				t.Fatalf("ReadBits(%d) at bit %d: got %#x, want %#x", n, pos, got, want)
			}
			if r.Err() != nil || r.BitPos() != pos+int(n) {
				t.Fatalf("ReadBits(%d) at bit %d: err %v, pos %d", n, pos, r.Err(), r.BitPos())
			}
		}
	}
}

// TestHuffDecodeTruncatedParity encodes every symbol of the production
// run/level table (all code lengths, including ones past the LUT span
// when present), then decodes every byte-truncated prefix with both the
// LUT-accelerated Decode and the serial walk. Each step must agree on
// symbol, bits consumed, reader position, and — at the point of failure
// — the PastEnd-vs-corrupt classification and the error text.
func TestHuffDecodeTruncatedParity(t *testing.T) {
	tab := coefTable
	w := NewBitWriter()
	var want []int
	for sym := range tab.codes {
		if tab.codes[sym].Len == 0 {
			continue
		}
		tab.Encode(w, sym)
		want = append(want, sym)
	}
	enc := w.Bytes()
	if len(want) < 3 {
		t.Fatalf("production table has only %d coded symbols", len(want))
	}
	for cut := 0; cut <= len(enc); cut++ {
		r1 := NewBitReader(enc[:cut])
		r2 := NewBitReader(enc[:cut])
		for step := 0; ; step++ {
			s1, b1 := tab.Decode(r1)
			s2, b2 := tab.decodeSerial(r2)
			if s1 != s2 || b1 != b2 {
				t.Fatalf("cut %d step %d: LUT (%d, %d) != serial (%d, %d)", cut, step, s1, b1, s2, b2)
			}
			if r1.BitPos() != r2.BitPos() {
				t.Fatalf("cut %d step %d: LUT pos %d != serial pos %d", cut, step, r1.BitPos(), r2.BitPos())
			}
			e1, e2 := r1.Err(), r2.Err()
			if (e1 == nil) != (e2 == nil) || r1.PastEnd() != r2.PastEnd() {
				t.Fatalf("cut %d step %d: LUT err %v (pastEnd %v) != serial err %v (pastEnd %v)",
					cut, step, e1, r1.PastEnd(), e2, r2.PastEnd())
			}
			if e1 != nil {
				if e1.Error() != e2.Error() {
					t.Fatalf("cut %d step %d: error text diverged: %q vs %q", cut, step, e1, e2)
				}
				break
			}
			if step < len(want) && cut == len(enc) {
				if s1 != want[step] {
					t.Fatalf("full stream step %d: decoded %d, want %d", step, s1, want[step])
				}
			}
			if step > len(want)+2 {
				break // trailing Align padding decoded as extra symbols
			}
		}
	}
}

// TestHuffDecodeLongCodes verifies the overflow route explicitly: when
// the table has codes longer than the LUT span, the sentinel must send
// them to the serial walk and still decode correctly.
func TestHuffDecodeLongCodes(t *testing.T) {
	// Exponential frequencies force a maximally skewed (deep) tree.
	freq := make([]uint64, 20)
	for i := range freq {
		freq[i] = 1 << uint(i)
	}
	lengths := HuffCodeLengths(freq)
	tab, errT := NewHuffTable(lengths)
	if errT != nil {
		t.Fatal(errT)
	}
	if uint(tab.MaxLen()) <= tab.lutBits {
		t.Fatalf("want codes longer than the %d-bit LUT, max is %d", tab.lutBits, tab.MaxLen())
	}
	w := NewBitWriter()
	for sym := range freq {
		tab.Encode(w, sym)
	}
	r := NewBitReader(w.Bytes())
	for sym := range freq {
		got, bits := tab.Decode(r)
		if got != sym || bits != uint(lengths[sym]) || r.Err() != nil {
			t.Fatalf("symbol %d: got (%d, %d bits, err %v), want length %d", sym, got, bits, r.Err(), lengths[sym])
		}
	}
}
