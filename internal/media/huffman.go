package media

import (
	"container/heap"
	"fmt"
	"sort"
)

// This file implements canonical Huffman coding: code construction from
// symbol frequencies with deterministic tie-breaking, plus an encoder
// table and a length-indexed canonical decoder. It is the entropy-coding
// substrate for the run/level VLC of the codec (vlc.go), standing in for
// the fixed MPEG-2 VLC tables.

// huffNode is a node of the Huffman construction forest.
type huffNode struct {
	weight      uint64
	seq         int // creation order: deterministic tie-break
	symbol      int // leaf symbol, -1 for internal
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].seq < h[j].seq
}
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// HuffCode is one symbol's canonical code.
type HuffCode struct {
	Bits uint32 // code value, MSB-aligned to Len
	Len  uint8  // code length in bits; 0 means the symbol is unused
}

// huffLUTBits bounds the first-level decode table: codes no longer than
// min(maxLen, huffLUTBits) bits resolve with one peek + one table load.
const huffLUTBits = 12

// HuffTable holds canonical Huffman codes for symbols 0..n-1 and supports
// encoding and decoding. Build tables with NewHuffTable.
type HuffTable struct {
	codes  []HuffCode
	maxLen uint8
	// canonical decode structures, indexed by code length:
	// firstCode[l] is the value of the first (smallest) code of length l,
	// firstIdx[l] the index into symByCode of that code's symbol.
	firstCode []uint32
	firstIdx  []int
	count     []int // number of codes of each length
	symByCode []int // symbols sorted by (length, code)

	// First-level decode LUT, indexed by the next lutBits bits of the
	// stream. Each entry packs sym<<8 | len; entry 0 is the overflow
	// sentinel (code longer than lutBits, or invalid prefix) that routes
	// decode to the bit-serial canonical walk. Valid because real code
	// lengths are ≥ 1, so a packed entry is never all-zero.
	lut     []uint32
	lutBits uint
}

// HuffCodeLengths computes canonical Huffman code lengths for the given
// symbol frequencies. Symbols with zero frequency get length 0 (unused).
// Construction is deterministic: ties are broken by symbol index. The
// resulting lengths satisfy the Kraft equality over used symbols.
func HuffCodeLengths(freq []uint64) []uint8 {
	lengths := make([]uint8, len(freq))
	var h huffHeap
	seq := 0
	for s, f := range freq {
		if f == 0 {
			continue
		}
		heap.Push(&h, &huffNode{weight: f, seq: seq, symbol: s})
		seq++
	}
	switch h.Len() {
	case 0:
		return lengths
	case 1:
		lengths[h[0].symbol] = 1
		return lengths
	}
	for h.Len() > 1 {
		a := heap.Pop(&h).(*huffNode)
		b := heap.Pop(&h).(*huffNode)
		heap.Push(&h, &huffNode{weight: a.weight + b.weight, seq: seq, symbol: -1, left: a, right: b})
		seq++
	}
	root := h[0]
	var walk func(n *huffNode, depth uint8)
	walk = func(n *huffNode, depth uint8) {
		if n.symbol >= 0 {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// NewHuffTable builds a canonical Huffman table from per-symbol code
// lengths (as produced by HuffCodeLengths). Length 0 marks an unused
// symbol. Codes are assigned canonically: shorter codes first, ties by
// symbol index, each code numerically one more than the previous code of
// the same length (shifted when the length increases).
func NewHuffTable(lengths []uint8) (*HuffTable, error) {
	t := &HuffTable{codes: make([]HuffCode, len(lengths))}
	type entry struct {
		sym int
		len uint8
	}
	var used []entry
	for s, l := range lengths {
		if l == 0 {
			continue
		}
		if l > 32 {
			return nil, fmt.Errorf("media: huffman code length %d > 32", l)
		}
		if l > t.maxLen {
			t.maxLen = l
		}
		used = append(used, entry{s, l})
	}
	if len(used) == 0 {
		return t, nil
	}
	sort.Slice(used, func(i, j int) bool {
		if used[i].len != used[j].len {
			return used[i].len < used[j].len
		}
		return used[i].sym < used[j].sym
	})
	t.count = make([]int, t.maxLen+1)
	for _, e := range used {
		t.count[e.len]++
	}
	// Kraft check.
	var kraft uint64
	for l := uint8(1); l <= t.maxLen; l++ {
		kraft += uint64(t.count[l]) << (t.maxLen - l)
	}
	if kraft > 1<<t.maxLen {
		return nil, fmt.Errorf("media: code lengths oversubscribed (kraft %d > %d)", kraft, uint64(1)<<t.maxLen)
	}
	t.firstCode = make([]uint32, t.maxLen+2)
	t.firstIdx = make([]int, t.maxLen+2)
	t.symByCode = make([]int, 0, len(used))
	code := uint32(0)
	idx := 0
	for l := uint8(1); l <= t.maxLen; l++ {
		t.firstCode[l] = code
		t.firstIdx[l] = idx
		for _, e := range used {
			if e.len != l {
				continue
			}
			t.codes[e.sym] = HuffCode{Bits: code, Len: l}
			t.symByCode = append(t.symByCode, e.sym)
			code++
			idx++
		}
		code <<= 1
	}
	t.buildLUT()
	return t, nil
}

// buildLUT fills the first-level decode table. Every index whose top
// c.Len bits equal a code's bits maps to that code's packed {sym, len};
// codes are prefix-free, so each index has at most one such code and the
// fill never conflicts. Indexes with no code prefix ≤ lutBits stay 0
// (the overflow sentinel).
func (t *HuffTable) buildLUT() {
	lb := uint(t.maxLen)
	if lb > huffLUTBits {
		lb = huffLUTBits
	}
	if lb == 0 {
		return
	}
	t.lutBits = lb
	t.lut = make([]uint32, 1<<lb)
	for sym, c := range t.codes {
		if c.Len == 0 || uint(c.Len) > lb || sym >= 1<<24 {
			continue // longer than the LUT covers (or unpackable): serial walk
		}
		span := uint32(1) << (lb - uint(c.Len))
		base := c.Bits << (lb - uint(c.Len))
		e := uint32(sym)<<8 | uint32(c.Len)
		for i := uint32(0); i < span; i++ {
			t.lut[base+i] = e
		}
	}
}

// Code returns the code for a symbol. A zero-length code means the symbol
// cannot be encoded with this table.
func (t *HuffTable) Code(sym int) HuffCode { return t.codes[sym] }

// MaxLen returns the longest code length in bits.
func (t *HuffTable) MaxLen() uint8 { return t.maxLen }

// Encode appends the symbol's code to the bit writer.
func (t *HuffTable) Encode(w *BitWriter, sym int) {
	c := t.codes[sym]
	if c.Len == 0 {
		panic(fmt.Sprintf("media: encoding symbol %d with no code", sym))
	}
	w.WriteBits(c.Bits, uint(c.Len))
}

// Decode reads one symbol from the bit reader using canonical decoding.
// It returns the symbol and the number of bits consumed. On malformed
// input it returns -1 and sets the reader's error.
//
// Fast path: peek lutBits, one table load, advance by the matched
// length. The serial walk remains authoritative for long codes (len >
// lutBits), invalid prefixes, entry errors, and the stream tail — the
// `int(l) <= avail` guard rejects LUT matches that would rely on the
// zero padding PeekBits fabricates past the end, so truncated input
// reports exactly the same bits-consumed and PastEnd error as the
// serial walk always has.
func (t *HuffTable) Decode(r *BitReader) (sym int, bits uint) {
	if t.maxLen == 0 {
		r.failCorrupt("decode with empty huffman table")
		return -1, 0
	}
	if r.err == nil && t.lut != nil {
		if avail := len(r.buf)*8 - r.pos; avail > 0 {
			e := t.lut[r.PeekBits(t.lutBits)]
			if l := uint(e & 0xff); l != 0 && int(l) <= avail {
				r.pos += int(l)
				return int(e >> 8), l
			}
		}
	}
	return t.decodeSerial(r)
}

// decodeSerial is the bit-serial canonical walk: one ReadBits(1) per
// code bit, checking the length-indexed firstCode/count tables at every
// depth. It is the reference semantics the LUT path must match.
func (t *HuffTable) decodeSerial(r *BitReader) (sym int, bits uint) {
	if t.maxLen == 0 {
		r.failCorrupt("decode with empty huffman table")
		return -1, 0
	}
	code := uint32(0)
	for l := uint8(1); l <= t.maxLen; l++ {
		code = code<<1 | r.ReadBits(1)
		if r.err != nil {
			return -1, uint(l)
		}
		if t.count[l] == 0 {
			continue
		}
		offset := int(code) - int(t.firstCode[l])
		if offset >= 0 && offset < t.count[l] {
			return t.symByCode[t.firstIdx[l]+offset], uint(l)
		}
	}
	r.failCorrupt("invalid huffman code at bit %d", r.pos)
	return -1, uint(t.maxLen)
}
