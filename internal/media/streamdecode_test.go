package media

// Streaming-delivery decoder tests: the OnDisplayFrame hook must hand
// out frames in display order with pixels identical to the batch
// decoder, for every worker count, and the Retire/Recycle accounting
// must return every frame exactly once on success and on abort.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func streamTestClip(t testing.TB, w, h, frames, gopn, gopm int, halfPel bool) ([]byte, []*Frame) {
	t.Helper()
	src := DefaultSource(w, h)
	src.Seed = 7
	in := NewSource(src).Frames(frames)
	cfg := DefaultCodec(w, h)
	cfg.GOPN = gopn
	cfg.GOPM = gopm
	cfg.HalfPel = halfPel
	stream, _, _, err := Encode(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	return stream, in
}

// TestStreamingDecodeParity checks display-order delivery with pixel
// content identical to the batch decode, across worker counts and GOP
// shapes, with exact Retire accounting.
func TestStreamingDecodeParity(t *testing.T) {
	for _, tc := range []struct {
		frames, gopn, gopm int
		halfPel            bool
	}{
		{9, 12, 3, true},
		{8, 8, 1, false},
		{14, 6, 5, true},
		{5, 255, 15, false},
	} {
		stream, _ := streamTestClip(t, 64, 48, tc.frames, tc.gopn, tc.gopm, tc.halfPel)
		ref, err := Decode(stream)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.DisplayFrames()
		for workers := 1; workers <= 8; workers++ {
			t.Run(fmt.Sprintf("m%d-w%d", tc.gopm, workers), func(t *testing.T) {
				var got []*Frame
				// Retire may fire on the parser, worker, or delivery
				// goroutine (only same-frame concurrency is excluded),
				// so the accounting needs its own lock.
				var mu sync.Mutex
				retired := map[*Frame]int{}
				recycled := 0
				res, err := DecodeWithOptions(stream, DecodeOptions{
					Workers: workers,
					OnDisplayFrame: func(di int, f *Frame) error {
						if di != len(got) {
							return fmt.Errorf("delivered display index %d, want %d", di, len(got))
						}
						// Snapshot pixels at delivery time: mutation after
						// delivery (but before Retire) would break the
						// fused consumer even if the frame is "eventually"
						// correct.
						c := NewFrame(f.W, f.H)
						copy(c.Pix, f.Pix)
						got = append(got, c)
						return nil
					},
					Retire: func(f *Frame) {
						mu.Lock()
						retired[f]++
						mu.Unlock()
					},
					Recycle: func(f *Frame) {
						mu.Lock()
						recycled++
						mu.Unlock()
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != tc.frames {
					t.Fatalf("delivered %d frames, want %d", len(got), tc.frames)
				}
				for di, f := range got {
					if !bytes.Equal(f.Pix, want[di].Pix) {
						t.Errorf("display frame %d pixels differ from batch decode", di)
					}
				}
				if len(retired) != tc.frames {
					t.Errorf("retired %d distinct frames, want %d", len(retired), tc.frames)
				}
				for f, n := range retired {
					if n != 1 {
						t.Errorf("frame %p retired %d times", f, n)
					}
				}
				if recycled != 0 {
					t.Errorf("%d frames recycled on success; all should be retired", recycled)
				}
				// Streaming mode returns header-only coded entries.
				for i, cf := range res.Coded {
					if cf.Frame != nil {
						t.Fatalf("coded[%d].Frame non-nil in streaming mode", i)
					}
				}
			})
		}
	}
}

// TestStreamingDecodeCallbackError aborts delivery from the hook and
// checks the error surfaces and every frame is handed back exactly once
// (Retire for delivered, Recycle for the rest).
func TestStreamingDecodeCallbackError(t *testing.T) {
	stream, _ := streamTestClip(t, 64, 48, 10, 12, 3, true)
	sentinel := errors.New("consumer full")
	for workers := 1; workers <= 4; workers++ {
		for _, stopAt := range []int{0, 1, 4} {
			t.Run(fmt.Sprintf("w%d-stop%d", workers, stopAt), func(t *testing.T) {
				var mu sync.Mutex
				handedBack := map[*Frame]int{}
				issued := map[*Frame]bool{}
				back := func(f *Frame) {
					mu.Lock()
					handedBack[f]++
					mu.Unlock()
				}
				delivered := 0
				_, err := DecodeWithOptions(stream, DecodeOptions{
					Workers: workers,
					NewFrame: func(w, h int) *Frame {
						f := NewFrame(w, h)
						mu.Lock()
						issued[f] = true
						mu.Unlock()
						return f
					},
					OnDisplayFrame: func(di int, f *Frame) error {
						if di == stopAt {
							return sentinel
						}
						delivered++
						return nil
					},
					Retire:  back,
					Recycle: back,
				})
				if !errors.Is(err, sentinel) {
					t.Fatalf("err = %v, want %v", err, sentinel)
				}
				for f := range issued {
					if handedBack[f] != 1 {
						t.Errorf("frame %p handed back %d times, want exactly 1", f, handedBack[f])
					}
				}
				for f := range handedBack {
					if !issued[f] {
						t.Errorf("unknown frame %p handed back", f)
					}
				}
			})
		}
	}
}

// TestStreamingDecodeWindowEdges exercises the parser-window boundary
// shapes: a single-GOP clip (the whole stream is one window span), a
// GOPM=1 clip (no B frames, so the reorder window never holds more than
// one frame), and a one-frame clip. Every engine (serial and 1..4
// parallel workers) must deliver batch-identical pixels with symmetric
// pool traffic.
func TestStreamingDecodeWindowEdges(t *testing.T) {
	for _, tc := range []struct {
		name               string
		frames, gopn, gopm int
	}{
		{"single-gop", 7, 255, 3},
		{"gopm-1", 9, 6, 1},
		{"single-frame", 1, 12, 3},
		{"gop-equals-clip", 8, 8, 2},
	} {
		stream, _ := streamTestClip(t, 64, 48, tc.frames, tc.gopn, tc.gopm, false)
		ref, err := Decode(stream)
		if err != nil {
			t.Fatal(err)
		}
		want := ref.DisplayFrames()
		for workers := 1; workers <= 4; workers++ {
			t.Run(fmt.Sprintf("%s-w%d", tc.name, workers), func(t *testing.T) {
				pool := NewSyncFramePool(64)
				delivered := 0
				_, err := DecodeWithOptions(stream, DecodeOptions{
					Workers:  workers,
					NewFrame: pool.Get,
					Recycle:  pool.Put,
					OnDisplayFrame: func(di int, f *Frame) error {
						if di != delivered {
							return fmt.Errorf("delivered display index %d, want %d", di, delivered)
						}
						if !bytes.Equal(f.Pix, want[di].Pix) {
							return fmt.Errorf("display frame %d pixels differ from batch decode", di)
						}
						delivered++
						return nil
					},
					Retire: pool.Put,
				})
				if err != nil {
					t.Fatal(err)
				}
				if delivered != tc.frames {
					t.Errorf("delivered %d frames, want %d", delivered, tc.frames)
				}
				if n := pool.Outstanding(); n != 0 {
					t.Errorf("pool leak: %d frames outstanding", n)
				}
				if n := pool.DoublePuts(); n != 0 {
					t.Errorf("%d double Puts: frame handed back twice", n)
				}
			})
		}
	}
}

// TestStreamingDecodeTruncatedLastGOP cuts the bitstream inside its
// final GOP at a spread of depths: every engine must fail with
// ErrBitstream (not hang at the parser window waiting for frames that
// never arrive) and hand every pooled frame back.
func TestStreamingDecodeTruncatedLastGOP(t *testing.T) {
	stream, _ := streamTestClip(t, 64, 48, 13, 13, 3, false)
	for _, cut := range []int{1, 3, 7, 20} {
		bad := stream[:len(stream)-cut]
		for workers := 1; workers <= 4; workers++ {
			t.Run(fmt.Sprintf("cut%d-w%d", cut, workers), func(t *testing.T) {
				pool := NewSyncFramePool(64)
				_, err := DecodeWithOptions(bad, DecodeOptions{
					Workers:        workers,
					NewFrame:       pool.Get,
					Recycle:        pool.Put,
					OnDisplayFrame: func(int, *Frame) error { return nil },
					Retire:         pool.Put,
				})
				if !errors.Is(err, ErrBitstream) {
					t.Fatalf("err = %v, want ErrBitstream", err)
				}
				if n := pool.Outstanding(); n != 0 {
					t.Errorf("pool leak on truncated stream: %d frames outstanding", n)
				}
				if n := pool.DoublePuts(); n != 0 {
					t.Errorf("%d double Puts on unwind", n)
				}
			})
		}
	}
}

// TestStreamSinkBadTRef feeds the sink out-of-range and duplicate
// display indices directly and expects ErrBitstream from both.
func TestStreamSinkBadTRef(t *testing.T) {
	mk := func() *streamSink {
		return newStreamSink(&DecodeOptions{
			OnDisplayFrame: func(int, *Frame) error { return nil },
		}, 0, 4, 6)
	}
	s := mk()
	if err := s.frameParsed(4, NewFrame(16, 16), true); !errors.Is(err, ErrBitstream) {
		t.Errorf("out-of-range TRef: err = %v, want ErrBitstream", err)
	}
	s = mk()
	if err := s.frameParsed(-1, NewFrame(16, 16), true); !errors.Is(err, ErrBitstream) {
		t.Errorf("negative TRef: err = %v, want ErrBitstream", err)
	}
	s = mk()
	if err := s.frameParsed(2, NewFrame(16, 16), true); err != nil {
		t.Fatal(err)
	}
	if err := s.frameParsed(2, NewFrame(16, 16), false); !errors.Is(err, ErrBitstream) {
		t.Errorf("duplicate TRef: err = %v, want ErrBitstream", err)
	}
}
