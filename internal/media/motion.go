package media

// Motion estimation and compensation on 16×16 macroblocks with full-pel
// vectors. These are the kernels of the MC/ME coprocessor; prediction
// uses edge-clamped reference access so vectors may point outside the
// picture.

// MV is a full-pel motion vector.
type MV struct {
	X, Y int16
}

// PredMode selects how a macroblock is predicted.
type PredMode uint8

const (
	PredIntra PredMode = iota // no prediction: intra coded
	PredFwd                   // forward prediction (P and B frames)
	PredBwd                   // backward prediction (B frames only)
	PredBi                    // averaged bi-directional prediction (B frames)
	PredSkip                  // copy of the forward reference at zero motion
)

// String names the prediction mode.
func (m PredMode) String() string {
	switch m {
	case PredIntra:
		return "intra"
	case PredFwd:
		return "fwd"
	case PredBwd:
		return "bwd"
	case PredBi:
		return "bi"
	case PredSkip:
		return "skip"
	}
	return "?"
}

// MBPixels is a 16×16 block of samples.
type MBPixels = [MBSize * MBSize]byte

// SAD returns the sum of absolute differences between cur and the 16×16
// region of ref at pixel position (x, y) displaced by mv, with edge
// clamping. earlyOut stops accumulating once the sum exceeds the given
// bound (pass a large bound to disable); the return value is then only
// guaranteed to be ≥ earlyOut.
func SAD(cur *MBPixels, ref *Frame, x, y int, mv MV, earlyOut int) int {
	sum := 0
	rx, ry := x+int(mv.X), y+int(mv.Y)
	inside := rx >= 0 && ry >= 0 && rx+MBSize <= ref.W && ry+MBSize <= ref.H
	if inside {
		// Hot path of the full search: full-capacity row slices hoist the
		// bounds checks out of the pixel loop, and the shift trick makes
		// the absolute difference branch-free. The per-row early-out is
		// unchanged, so the returned (possibly partial) sums are
		// bit-identical with the scalar loop.
		base := ry*ref.W + rx
		for j := 0; j < MBSize; j++ {
			row := ref.Pix[base : base+MBSize : base+MBSize]
			crow := cur[j*MBSize : j*MBSize+MBSize : j*MBSize+MBSize]
			for i := 0; i < MBSize; i++ {
				d := int(crow[i]) - int(row[i])
				m := d >> 63 // 0 or -1
				sum += (d ^ m) - m
			}
			if sum > earlyOut {
				return sum
			}
			base += ref.W
		}
		return sum
	}
	for j := 0; j < MBSize; j++ {
		for i := 0; i < MBSize; i++ {
			d := int(cur[j*MBSize+i]) - int(ref.At(rx+i, ry+j))
			if d < 0 {
				d = -d
			}
			sum += d
		}
		if sum > earlyOut {
			return sum
		}
	}
	return sum
}

// SearchResult reports the outcome of a motion search.
type SearchResult struct {
	MV  MV
	SAD int
	Ops int // candidate positions evaluated (cost-model input)
}

// MotionSearch performs a full search over ±r full-pel displacements for
// the best match of cur (the macroblock at pixel position (x, y)) in ref.
// The zero vector is evaluated first and wins ties, which biases P-frames
// toward cheap skip macroblocks exactly as real encoders do.
func MotionSearch(cur *MBPixels, ref *Frame, x, y, r int) SearchResult {
	best := SearchResult{MV: MV{}, SAD: SAD(cur, ref, x, y, MV{}, 1<<30), Ops: 1}
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			mv := MV{int16(dx), int16(dy)}
			s := SAD(cur, ref, x, y, mv, best.SAD)
			best.Ops++
			if s < best.SAD {
				best.SAD = s
				best.MV = mv
			}
		}
	}
	return best
}

// Predict fills pred with the motion-compensated prediction for the
// macroblock at pixel position (x, y): fwd/bwd single prediction or their
// rounding average for bi-directional mode. For PredSkip the forward
// reference at zero motion is used. PredIntra fills a mid-gray constant
// (128), so that "prediction + residual" is uniform across modes.
// Motion vectors are in full-pel units; see PredictHP for half-pel.
func Predict(pred *MBPixels, mode PredMode, fwd, bwd *Frame, x, y int, fmv, bmv MV) {
	PredictHP(pred, mode, fwd, bwd, x, y, fmv, bmv, false)
}

// PredictHP is Predict with selectable motion-vector precision: with
// halfPel set, vector units are half pixels and fractional positions are
// bilinearly interpolated (the MPEG-2 MC mode).
func PredictHP(pred *MBPixels, mode PredMode, fwd, bwd *Frame, x, y int, fmv, bmv MV, halfPel bool) {
	grab := func(dst *MBPixels, ref *Frame, mv MV) {
		if halfPel {
			fetchHalf(dst, ref, 2*x+int(mv.X), 2*y+int(mv.Y))
		} else {
			fetch(dst, ref, x+int(mv.X), y+int(mv.Y))
		}
	}
	switch mode {
	case PredIntra:
		for i := range pred {
			pred[i] = 128
		}
	case PredFwd:
		grab(pred, fwd, fmv)
	case PredSkip:
		fetch(pred, fwd, x, y)
	case PredBwd:
		grab(pred, bwd, bmv)
	case PredBi:
		var a, b MBPixels
		grab(&a, fwd, fmv)
		grab(&b, bwd, bmv)
		for i := range pred {
			pred[i] = byte((int(a[i]) + int(b[i]) + 1) / 2)
		}
	}
}

// RefineHalfPel improves a full-pel motion vector by evaluating the eight
// surrounding half-pel candidates; it returns the best vector in half-pel
// units, its SAD, and the number of candidates evaluated.
func RefineHalfPel(cur *MBPixels, ref *Frame, x, y int, full MV, fullSAD int) (MV, int, int) {
	best := MV{full.X * 2, full.Y * 2}
	bestSAD := fullSAD
	ops := 0
	var pred MBPixels
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			cand := MV{full.X*2 + int16(dx), full.Y*2 + int16(dy)}
			fetchHalf(&pred, ref, 2*x+int(cand.X), 2*y+int(cand.Y))
			ops++
			sad := 0
			for i := range pred {
				d := int(cur[i]) - int(pred[i])
				m := d >> 63
				sad += (d ^ m) - m
			}
			if sad < bestSAD {
				bestSAD, best = sad, cand
			}
		}
	}
	return best, bestSAD, ops
}

// fetchHalf copies a 16×16 region at half-pel position (hx, hy) — i.e.
// pixel position (hx/2, hy/2) with bilinear interpolation at fractional
// positions — with edge clamping. Rounding follows the MPEG convention:
// (a+b+1)/2 for one fractional axis, (a+b+c+d+2)/4 for both.
func fetchHalf(dst *MBPixels, ref *Frame, hx, hy int) {
	ix, iy := hx>>1, hy>>1
	fx, fy := hx&1, hy&1
	if fx == 0 && fy == 0 {
		fetch(dst, ref, ix, iy)
		return
	}
	// Interior fast paths: when the (MBSize+1)×(MBSize+1) interpolation
	// support is fully inside the frame, every At() would hit the direct
	// case, so the clamping accessor and the per-pixel fractional switch
	// can be hoisted out of the loops. Identical arithmetic either way.
	if ix >= 0 && iy >= 0 && ix+MBSize+1 <= ref.W && iy+MBSize+1 <= ref.H {
		w := ref.W
		base := iy*w + ix
		switch {
		case fx == 1 && fy == 0:
			for j := 0; j < MBSize; j++ {
				row := ref.Pix[base : base+MBSize+1 : base+MBSize+1]
				d := dst[j*MBSize : j*MBSize+MBSize : j*MBSize+MBSize]
				for i := 0; i < MBSize; i++ {
					d[i] = byte((int(row[i]) + int(row[i+1]) + 1) / 2)
				}
				base += w
			}
		case fx == 0 && fy == 1:
			for j := 0; j < MBSize; j++ {
				row := ref.Pix[base : base+MBSize : base+MBSize]
				below := ref.Pix[base+w : base+w+MBSize : base+w+MBSize]
				d := dst[j*MBSize : j*MBSize+MBSize : j*MBSize+MBSize]
				for i := 0; i < MBSize; i++ {
					d[i] = byte((int(row[i]) + int(below[i]) + 1) / 2)
				}
				base += w
			}
		default:
			for j := 0; j < MBSize; j++ {
				row := ref.Pix[base : base+MBSize+1 : base+MBSize+1]
				below := ref.Pix[base+w : base+w+MBSize+1 : base+w+MBSize+1]
				d := dst[j*MBSize : j*MBSize+MBSize : j*MBSize+MBSize]
				for i := 0; i < MBSize; i++ {
					d[i] = byte((int(row[i]) + int(row[i+1]) + int(below[i]) + int(below[i+1]) + 2) / 4)
				}
				base += w
			}
		}
		return
	}
	for j := 0; j < MBSize; j++ {
		for i := 0; i < MBSize; i++ {
			a := int(ref.At(ix+i, iy+j))
			switch {
			case fx == 1 && fy == 0:
				b := int(ref.At(ix+i+1, iy+j))
				dst[j*MBSize+i] = byte((a + b + 1) / 2)
			case fx == 0 && fy == 1:
				b := int(ref.At(ix+i, iy+j+1))
				dst[j*MBSize+i] = byte((a + b + 1) / 2)
			default:
				b := int(ref.At(ix+i+1, iy+j))
				c := int(ref.At(ix+i, iy+j+1))
				d := int(ref.At(ix+i+1, iy+j+1))
				dst[j*MBSize+i] = byte((a + b + c + d + 2) / 4)
			}
		}
	}
}

// fetch copies a 16×16 region at pixel position (x, y) with edge clamping.
func fetch(dst *MBPixels, ref *Frame, x, y int) {
	if x >= 0 && y >= 0 && x+MBSize <= ref.W && y+MBSize <= ref.H {
		for j := 0; j < MBSize; j++ {
			copy(dst[j*MBSize:(j+1)*MBSize], ref.Pix[(y+j)*ref.W+x:])
		}
		return
	}
	for j := 0; j < MBSize; j++ {
		for i := 0; i < MBSize; i++ {
			dst[j*MBSize+i] = ref.At(x+i, y+j)
		}
	}
}

// FetchMB exposes clamped reference fetching for the MC coprocessor model.
func FetchMB(dst *MBPixels, ref *Frame, x, y int) { fetch(dst, ref, x, y) }

// Residual computes cur − pred into four 8×8 blocks in macroblock block
// order (top-left, top-right, bottom-left, bottom-right).
func Residual(cur, pred *MBPixels, blocks *[BlocksPerMB]Block) {
	for b := 0; b < BlocksPerMB; b++ {
		bx, by := (b%2)*8, (b/2)*8
		blk := &blocks[b]
		for j := 0; j < 8; j++ {
			p := (by+j)*MBSize + bx
			cr := cur[p : p+8 : p+8]
			pr := pred[p : p+8 : p+8]
			br := blk[j*8 : j*8+8 : j*8+8]
			for i := 0; i < 8; i++ {
				br[i] = int16(int(cr[i]) - int(pr[i]))
			}
		}
	}
}

// Reconstruct computes clamp(pred + residual) into dst for the four 8×8
// blocks of a macroblock. It is the final step of both the decoder's MC
// stage and the encoder's reference reconstruction loop.
func Reconstruct(dst, pred *MBPixels, blocks *[BlocksPerMB]Block) {
	for b := 0; b < BlocksPerMB; b++ {
		bx, by := (b%2)*8, (b/2)*8
		blk := &blocks[b]
		for j := 0; j < 8; j++ {
			p := (by+j)*MBSize + bx
			pr := pred[p : p+8 : p+8]
			dr := dst[p : p+8 : p+8]
			br := blk[j*8 : j*8+8 : j*8+8]
			for i := 0; i < 8; i++ {
				dr[i] = clampByte(int(pr[i]) + int(br[i]))
			}
		}
	}
}

// IntraActivity is a cheap texture measure (sum of absolute deviations
// from the macroblock mean) used for the intra/inter mode decision: when
// the best inter SAD exceeds the activity, intra coding is cheaper.
func IntraActivity(cur *MBPixels) int {
	sum := 0
	for _, p := range cur {
		sum += int(p)
	}
	mean := sum / len(cur)
	act := 0
	for _, p := range cur {
		d := int(p) - mean
		if d < 0 {
			d = -d
		}
		act += d
	}
	return act
}
