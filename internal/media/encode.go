package media

import "fmt"

// FrameStats summarizes one coded frame, used by tests and by the
// benchmark harness to characterize workload data dependence.
type FrameStats struct {
	Type      FrameType
	TRef      int
	Bits      int // coded size
	Nonzero   int // nonzero quantized coefficients
	IntraMBs  int
	SkipMBs   int
	SearchOps int // motion-search candidate evaluations
}

// EncodeStats summarizes an encode run.
type EncodeStats struct {
	Frames []FrameStats
}

// TotalBits returns the coded sequence size in bits.
func (s *EncodeStats) TotalBits() int {
	n := 0
	for _, f := range s.Frames {
		n += f.Bits
	}
	return n
}

// Encoder compresses frames into the package bitstream format. It keeps
// the reconstruction loop (dequantize → IDCT → motion compensate) so its
// reference frames match the decoder's output bit-exactly. The encoder is
// composed from the same stage kernels (DecideMB, TransformMB,
// EncodeMBSyntax, ...) that the Eclipse coprocessor models execute.
type Encoder struct {
	cfg   CodecConfig
	seq   SeqHeader
	w     *BitWriter
	refs  RefChain
	stats EncodeStats
}

// Encode compresses frames (display order) and returns the bitstream, the
// reconstructed frames in display order (what a decoder will produce),
// and statistics.
func Encode(cfg CodecConfig, frames []*Frame) ([]byte, []*Frame, *EncodeStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, nil, err
	}
	if len(frames) == 0 || len(frames) > 0xFFFF {
		return nil, nil, nil, fmt.Errorf("media: frame count %d out of range", len(frames))
	}
	for i, f := range frames {
		if f.W != cfg.W || f.H != cfg.H {
			return nil, nil, nil, fmt.Errorf("media: frame %d is %dx%d, want %dx%d", i, f.W, f.H, cfg.W, cfg.H)
		}
	}
	e := &Encoder{
		cfg: cfg,
		seq: SeqHeader{
			MBCols: cfg.W / MBSize, MBRows: cfg.H / MBSize,
			Q: cfg.Q, GOPN: cfg.GOPN, GOPM: cfg.GOPM, Frames: len(frames),
			HalfPel: cfg.HalfPel,
		},
		w: NewBitWriter(),
	}
	WriteSeqHeader(e.w, &e.seq)

	types := GOPTypes(len(frames), cfg.GOPN, cfg.GOPM)
	order := CodedOrder(types)
	recon := make([]*Frame, len(frames))
	for _, di := range order {
		recon[di] = e.encodeFrame(frames[di], types[di], di)
	}
	return e.w.Bytes(), recon, &e.stats, nil
}

// encodeFrame codes one frame and returns its reconstruction, updating
// the reference chain when the frame is a reference.
func (e *Encoder) encodeFrame(cur *Frame, ftype FrameType, tref int) *Frame {
	startBits := e.w.BitLen()
	fs := FrameStats{Type: ftype, TRef: tref}
	WriteFrameHdr(e.w, FrameHdr{Type: ftype, TRef: uint16(tref)})
	recon := NewFrame(cur.W, cur.H)

	var mvp MVPredictor
	for mby := 0; mby < e.seq.MBRows; mby++ {
		mvp.RowStart()
		for mbx := 0; mbx < e.seq.MBCols; mbx++ {
			e.encodeMB(cur, recon, ftype, mbx, mby, &mvp, &fs)
		}
	}
	fs.Bits = e.w.BitLen() - startBits
	e.stats.Frames = append(e.stats.Frames, fs)
	e.refs.Advance(recon, ftype)
	return recon
}

// encodeMB codes one macroblock and writes its reconstruction.
func (e *Encoder) encodeMB(cur, recon *Frame, ftype FrameType, mbx, mby int, mvp *MVPredictor, fs *FrameStats) {
	x, y := mbx*MBSize, mby*MBSize
	var mb MBPixels
	cur.GetMB(mbx, mby, &mb)

	fwdRef, bwdRef := e.refs.Refs(ftype)
	dec, ops := DecideMB(&mb, ftype, x, y, fwdRef, bwdRef, e.cfg.SearchRange, e.cfg.HalfPel)
	fs.SearchOps += ops

	var predPix MBPixels
	PredictHP(&predPix, dec.Mode, fwdRef, bwdRef, x, y, dec.FMV, dec.BMV, e.cfg.HalfPel)
	var resid [BlocksPerMB]Block
	Residual(&mb, &predPix, &resid)
	qzz, cbp, nz := TransformMB(&resid, dec.Mode == PredIntra, e.cfg.Q)
	fs.Nonzero += nz

	if IsSkipMB(ftype, dec, cbp) {
		dec = MBDecision{Mode: PredSkip}
		fs.SkipMBs++
		// Skip reconstruction is the forward reference at zero motion.
		Predict(&predPix, PredSkip, fwdRef, nil, x, y, MV{}, MV{})
	}
	if dec.Mode == PredIntra {
		fs.IntraMBs++
	}
	EncodeMBSyntax(e.w, ftype, dec, mvp, cbp, &qzz)

	// Local reconstruction via the decoder's inverse path.
	var coef, deq [BlocksPerMB]Block
	tok := TokenMB{CBP: cbp}
	if dec.Mode == PredSkip {
		tok.CBP = 0
	}
	for b := 0; b < BlocksPerMB; b++ {
		if tok.CBP&(1<<b) != 0 {
			tok.Events[b] = RunLength(&qzz[b])
		}
	}
	if err := RLSQDecodeMB(&tok, e.cfg.Q, &coef); err != nil {
		panic(err) // encoder-produced tokens are always valid
	}
	IDCTMB(&coef, tok.CBP, &deq)
	var out MBPixels
	Reconstruct(&out, &predPix, &deq)
	recon.SetMB(mbx, mby, &out)
}
