package media

import (
	"fmt"
	"runtime"

	"eclipse/internal/par"
)

// EncodeWorkers bounds the number of macroblock rows the encoder's
// analysis pass (mode decision, motion search, transform, local
// reconstruction) processes concurrently. It defaults to
// runtime.NumCPU(); set it to 1 to force sequential encoding. The coded
// bitstream is bit-identical for every worker count: per-macroblock
// analysis within a frame depends only on the previous frames'
// reconstructions, and the serially-dependent entropy pass (bit writer
// plus motion-vector predictor) always runs afterwards in raster order.
// It must not be changed while an encode is running.
var EncodeWorkers = runtime.NumCPU()

// FrameStats summarizes one coded frame, used by tests and by the
// benchmark harness to characterize workload data dependence.
type FrameStats struct {
	Type      FrameType
	TRef      int
	Bits      int // coded size
	Nonzero   int // nonzero quantized coefficients
	IntraMBs  int
	SkipMBs   int
	SearchOps int // motion-search candidate evaluations
}

// EncodeStats summarizes an encode run.
type EncodeStats struct {
	Frames []FrameStats
}

// TotalBits returns the coded sequence size in bits.
func (s *EncodeStats) TotalBits() int {
	n := 0
	for _, f := range s.Frames {
		n += f.Bits
	}
	return n
}

// Encoder compresses frames into the package bitstream format. It keeps
// the reconstruction loop (dequantize → IDCT → motion compensate) so its
// reference frames match the decoder's output bit-exactly. The encoder is
// composed from the same stage kernels (DecideMB, TransformMB,
// EncodeMBSyntax, ...) that the Eclipse coprocessor models execute.
type Encoder struct {
	cfg     CodecConfig
	seq     SeqHeader
	w       *BitWriter
	refs    RefChain
	stats   EncodeStats
	rows    []encRow // per-row analysis state, reused across frames
	workers int      // analysis fan-out override; <= 0 → EncodeWorkers
}

// mbEnc is one macroblock's analysis-pass output, buffered between the
// parallel analysis phase and the serial entropy phase.
type mbEnc struct {
	dec   MBDecision
	cbp   byte
	skip  bool
	intra bool
	qzz   [BlocksPerMB]Block
	ops   int // motion-search candidates evaluated
	nz    int // nonzero quantized coefficients
}

// encRow is the per-macroblock-row working set of the analysis phase.
// Each row is processed by exactly one worker, so the row's token arena
// and result slots need no synchronization.
type encRow struct {
	mbs []mbEnc
	tok TokenMB // event arena for the local reconstruction
}

// Encode compresses frames (display order) and returns the bitstream, the
// reconstructed frames in display order (what a decoder will produce),
// and statistics.
func Encode(cfg CodecConfig, frames []*Frame) ([]byte, []*Frame, *EncodeStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, nil, err
	}
	if len(frames) == 0 || len(frames) > 0xFFFF {
		return nil, nil, nil, fmt.Errorf("media: frame count %d out of range", len(frames))
	}
	for i, f := range frames {
		if f.W != cfg.W || f.H != cfg.H {
			return nil, nil, nil, fmt.Errorf("media: frame %d is %dx%d, want %dx%d", i, f.W, f.H, cfg.W, cfg.H)
		}
	}
	e := newEncoder(cfg, len(frames))

	types := GOPTypes(len(frames), cfg.GOPN, cfg.GOPM)
	order := CodedOrder(types)
	recon := make([]*Frame, len(frames))
	for _, di := range order {
		recon[di] = e.encodeFrame(frames[di], types[di], di)
	}
	return e.w.Bytes(), recon, &e.stats, nil
}

// seqHeaderFor derives the sequence header an encode of `frames` frames
// under cfg writes; shared so the segment stitcher reproduces it
// bit-exactly.
func seqHeaderFor(cfg CodecConfig, frames int) SeqHeader {
	return SeqHeader{
		MBCols: cfg.W / MBSize, MBRows: cfg.H / MBSize,
		Q: cfg.Q, GOPN: cfg.GOPN, GOPM: cfg.GOPM, Frames: frames,
		HalfPel: cfg.HalfPel,
	}
}

// newEncoder builds an Encoder for a declared frame count and writes the
// sequence header. Shared by the batch Encode and the push-based
// StreamEncoder so both produce bit-identical streams.
func newEncoder(cfg CodecConfig, frames int) *Encoder {
	e := newEncoderRaw(cfg, frames)
	WriteSeqHeader(e.w, &e.seq)
	return e
}

// newEncoderRaw builds an Encoder without writing the sequence header:
// the segment-parallel transcoder's per-segment writers stay headerless
// so StitchSegments can splice them under one header.
func newEncoderRaw(cfg CodecConfig, frames int) *Encoder {
	return &Encoder{cfg: cfg, seq: seqHeaderFor(cfg, frames), w: NewBitWriter()}
}

// encodeFrame codes one frame and returns its reconstruction, updating
// the reference chain when the frame is a reference.
//
// Encoding is split into two phases. The analysis phase (mode decision,
// motion search, transform, quantization, local reconstruction) has no
// dependence between macroblocks of the same frame — it reads only the
// input frame and the previous frames' reconstructions — so it fans the
// macroblock rows out over the EncodeWorkers pool, each row writing a
// disjoint stripe of the reconstruction and its own result slots. The
// entropy phase (bit writer, motion-vector predictor) is serially
// dependent and replays the buffered decisions in raster order, so the
// bitstream is bit-identical for every worker count.
func (e *Encoder) encodeFrame(cur *Frame, ftype FrameType, tref int) *Frame {
	startBits := e.w.BitLen()
	fs := FrameStats{Type: ftype, TRef: tref}
	WriteFrameHdr(e.w, FrameHdr{Type: ftype, TRef: uint16(tref)})
	recon := NewFrame(cur.W, cur.H)

	if e.rows == nil {
		e.rows = make([]encRow, e.seq.MBRows)
		for i := range e.rows {
			e.rows[i].mbs = make([]mbEnc, e.seq.MBCols)
		}
	}

	// Phase 1: parallel per-row analysis.
	workers := e.workers
	if workers <= 0 {
		workers = EncodeWorkers
	}
	fwdRef, bwdRef := e.refs.Refs(ftype)
	if err := par.Run(e.seq.MBRows, workers, func(mby int) error {
		e.analyzeRow(cur, recon, ftype, mby, fwdRef, bwdRef)
		return nil
	}); err != nil {
		panic(err) // analyzeRow never fails
	}

	// Phase 2: serial entropy coding over the buffered decisions.
	var mvp MVPredictor
	for mby := 0; mby < e.seq.MBRows; mby++ {
		mvp.RowStart()
		row := e.rows[mby].mbs
		for mbx := range row {
			r := &row[mbx]
			fs.SearchOps += r.ops
			fs.Nonzero += r.nz
			if r.skip {
				fs.SkipMBs++
			}
			if r.intra {
				fs.IntraMBs++
			}
			EncodeMBSyntax(e.w, ftype, r.dec, &mvp, r.cbp, &r.qzz)
		}
	}
	fs.Bits = e.w.BitLen() - startBits
	e.stats.Frames = append(e.stats.Frames, fs)
	e.refs.Advance(recon, ftype)
	return recon
}

// analyzeRow runs the analysis phase for one macroblock row: decisions
// and quantized coefficients go to the row's result slots, pixel
// reconstructions to the row's stripe of recon.
func (e *Encoder) analyzeRow(cur, recon *Frame, ftype FrameType, mby int, fwdRef, bwdRef *Frame) {
	row := &e.rows[mby]
	for mbx := range row.mbs {
		r := &row.mbs[mbx]
		x, y := mbx*MBSize, mby*MBSize
		var mb MBPixels
		cur.GetMB(mbx, mby, &mb)

		dec, ops := DecideMB(&mb, ftype, x, y, fwdRef, bwdRef, e.cfg.SearchRange, e.cfg.HalfPel)
		r.ops = ops

		var predPix MBPixels
		PredictHP(&predPix, dec.Mode, fwdRef, bwdRef, x, y, dec.FMV, dec.BMV, e.cfg.HalfPel)
		var resid [BlocksPerMB]Block
		Residual(&mb, &predPix, &resid)
		qzz, cbp, nz := TransformMB(&resid, dec.Mode == PredIntra, e.cfg.Q)
		r.nz = nz

		r.skip = false
		if IsSkipMB(ftype, dec, cbp) {
			dec = MBDecision{Mode: PredSkip}
			r.skip = true
			// Skip reconstruction is the forward reference at zero motion.
			Predict(&predPix, PredSkip, fwdRef, nil, x, y, MV{}, MV{})
		}
		r.intra = dec.Mode == PredIntra
		r.dec, r.cbp, r.qzz = dec, cbp, qzz

		// Local reconstruction via the decoder's inverse path.
		var coef, deq [BlocksPerMB]Block
		tok := &row.tok
		tok.Reset()
		tok.CBP = cbp
		if dec.Mode == PredSkip {
			tok.CBP = 0
		}
		for b := 0; b < BlocksPerMB; b++ {
			if tok.CBP&(1<<b) != 0 {
				tok.SetBlockRunLength(b, &qzz[b])
			}
		}
		if err := RLSQDecodeMB(tok, e.cfg.Q, &coef); err != nil {
			panic(err) // encoder-produced tokens are always valid
		}
		IDCTMB(&coef, tok.CBP, &deq)
		var out MBPixels
		Reconstruct(&out, &predPix, &deq)
		recon.SetMB(mbx, mby, &out)
	}
}
