package media

import (
	"strings"
	"testing"
)

func TestGOPTypes(t *testing.T) {
	types := GOPTypes(13, 12, 3)
	want := "IBBPBBPBBPBBI"
	var sb strings.Builder
	for _, ty := range types {
		sb.WriteString(ty.String())
	}
	if sb.String() != want {
		t.Fatalf("types = %s, want %s", sb.String(), want)
	}
}

func TestGOPTypesTrailingBPromoted(t *testing.T) {
	types := GOPTypes(5, 12, 3)
	if types[4] != FrameP {
		t.Fatalf("trailing frame = %v, want P", types[4])
	}
}

func TestGOPTypesNoBFrames(t *testing.T) {
	types := GOPTypes(6, 4, 1)
	var sb strings.Builder
	for _, ty := range types {
		sb.WriteString(ty.String())
	}
	if sb.String() != "IPPPIP" {
		t.Fatalf("types = %s", sb.String())
	}
}

func TestCodedOrder(t *testing.T) {
	// display I B B P B B P  ->  coded I P B B P B B
	types := []FrameType{FrameI, FrameB, FrameB, FrameP, FrameB, FrameB, FrameP}
	order := CodedOrder(types)
	want := []int{0, 3, 1, 2, 6, 4, 5}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCodedOrderIsPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 7, 12, 25, 48} {
		types := GOPTypes(n, 12, 3)
		order := CodedOrder(types)
		seen := make([]bool, n)
		for _, i := range order {
			if i < 0 || i >= n || seen[i] {
				t.Fatalf("n=%d: order %v not a permutation", n, order)
			}
			seen[i] = true
		}
		// Every B frame must appear after its backward reference.
		pos := make([]int, n)
		for p, i := range order {
			pos[i] = p
		}
		for i, ty := range types {
			if ty != FrameB {
				continue
			}
			// find next reference in display order
			for j := i + 1; j < n; j++ {
				if types[j] != FrameB {
					if pos[i] < pos[j] {
						t.Fatalf("n=%d: B frame %d coded before its backward ref %d", n, i, j)
					}
					break
				}
			}
		}
	}
}

func TestSeqHeaderRoundTrip(t *testing.T) {
	h := SeqHeader{MBCols: 11, MBRows: 9, Q: 13, GOPN: 12, GOPM: 3, Frames: 250}
	w := NewBitWriter()
	WriteSeqHeader(w, &h)
	r := NewBitReader(w.Bytes())
	got, err := ParseSeqHeader(r)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("got %+v want %+v", got, h)
	}
	if got.W() != 176 || got.H() != 144 || got.MBCount() != 99 {
		t.Fatalf("derived dims wrong: %dx%d", got.W(), got.H())
	}
}

func TestSeqHeaderBadMagic(t *testing.T) {
	r := NewBitReader([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if _, err := ParseSeqHeader(r); err == nil {
		t.Fatal("expected error")
	}
}

func TestFrameHdrRoundTrip(t *testing.T) {
	for _, ty := range []FrameType{FrameI, FrameP, FrameB} {
		w := NewBitWriter()
		WriteFrameHdr(w, FrameHdr{Type: ty, TRef: 777})
		r := NewBitReader(w.Bytes())
		got, err := ParseFrameHdr(r)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != ty || got.TRef != 777 {
			t.Fatalf("got %+v", got)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []CodecConfig{
		{W: 17, H: 16, Q: 4, GOPN: 4, GOPM: 1, SearchRange: 4},  // width not multiple
		{W: 16, H: 16, Q: 0, GOPN: 4, GOPM: 1, SearchRange: 4},  // q too small
		{W: 16, H: 16, Q: 64, GOPN: 4, GOPM: 1, SearchRange: 4}, // q too big
		{W: 16, H: 16, Q: 4, GOPN: 0, GOPM: 1, SearchRange: 4},  // bad gop
		{W: 16, H: 16, Q: 4, GOPN: 4, GOPM: 5, SearchRange: 4},  // M > N
		{W: 16, H: 16, Q: 4, GOPN: 4, GOPM: 1, SearchRange: 99}, // range
	}
	for i, cfg := range bad {
		if err := cfg.validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	good := DefaultCodec(64, 48)
	if err := good.validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

// encodeTestSequence compresses a small synthetic sequence and returns
// everything needed by round-trip assertions.
func encodeTestSequence(t *testing.T, cfg CodecConfig, n int) ([]byte, []*Frame, []*Frame, *EncodeStats) {
	t.Helper()
	src := NewSource(DefaultSource(cfg.W, cfg.H))
	frames := src.Frames(n)
	stream, recon, stats, err := Encode(cfg, frames)
	if err != nil {
		t.Fatal(err)
	}
	return stream, frames, recon, stats
}

func TestEncodeDecodeBitExact(t *testing.T) {
	cfg := DefaultCodec(64, 48)
	stream, _, recon, _ := encodeTestSequence(t, cfg, 9)
	res, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	disp := res.DisplayFrames()
	if len(disp) != 9 {
		t.Fatalf("decoded %d frames", len(disp))
	}
	for i := range disp {
		if disp[i] == nil {
			t.Fatalf("frame %d missing", i)
		}
		if !disp[i].Equal(recon[i]) {
			t.Fatalf("frame %d: decoder output differs from encoder reconstruction", i)
		}
	}
}

func TestEncodeDecodeQualityReasonable(t *testing.T) {
	cfg := DefaultCodec(64, 48)
	cfg.Q = 4
	stream, frames, _, _ := encodeTestSequence(t, cfg, 7)
	res, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	disp := res.DisplayFrames()
	for i := range disp {
		p := frames[i].PSNR(disp[i])
		if p < 24 {
			t.Fatalf("frame %d PSNR = %.1f dB, want ≥ 24", i, p)
		}
	}
}

func TestEncodeDecodeIPPPOnly(t *testing.T) {
	cfg := DefaultCodec(48, 32)
	cfg.GOPM = 1
	cfg.GOPN = 4
	stream, _, recon, stats := encodeTestSequence(t, cfg, 8)
	for _, f := range stats.Frames {
		if f.Type == FrameB {
			t.Fatal("IPPP stream must not contain B frames")
		}
	}
	res, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range res.DisplayFrames() {
		if !f.Equal(recon[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestEncodeSingleFrame(t *testing.T) {
	cfg := DefaultCodec(32, 32)
	stream, _, recon, stats := encodeTestSequence(t, cfg, 1)
	if stats.Frames[0].Type != FrameI {
		t.Fatal("single frame must be I")
	}
	res, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Coded[0].Frame.Equal(recon[0]) {
		t.Fatal("mismatch")
	}
}

func TestEncodeStatsShape(t *testing.T) {
	cfg := DefaultCodec(64, 48)
	_, _, _, stats := encodeTestSequence(t, cfg, 13)
	if len(stats.Frames) != 13 {
		t.Fatalf("stats for %d frames", len(stats.Frames))
	}
	// I-frames must carry more coefficients than B-frames on average —
	// this is the data dependence behind Figure 10.
	var iNZ, iCount, bNZ, bCount int
	var pSearch, bSearch int
	for _, f := range stats.Frames {
		switch f.Type {
		case FrameI:
			iNZ += f.Nonzero
			iCount++
			if f.SearchOps != 0 {
				t.Fatal("I-frames must not search")
			}
		case FrameB:
			bNZ += f.Nonzero
			bCount++
			bSearch += f.SearchOps
		case FrameP:
			pSearch += f.SearchOps
		}
	}
	if iCount == 0 || bCount == 0 {
		t.Fatal("sequence lacks I or B frames")
	}
	if iNZ/iCount <= bNZ/bCount {
		t.Fatalf("I nz/frame %d not above B nz/frame %d", iNZ/iCount, bNZ/bCount)
	}
	// B frames search two references.
	if bSearch == 0 || pSearch == 0 {
		t.Fatal("missing search ops")
	}
	if stats.TotalBits() == 0 {
		t.Fatal("no bits")
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	cfg := DefaultCodec(32, 32)
	if _, _, _, err := Encode(cfg, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, _, err := Encode(cfg, []*Frame{NewFrame(64, 64)}); err == nil {
		t.Fatal("wrong-size frame accepted")
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	cfg := DefaultCodec(32, 32)
	stream, _, _, _ := encodeTestSequence(t, cfg, 4)
	for _, cut := range []int{0, 3, len(stream) / 2, len(stream) - 2} {
		if _, err := Decode(stream[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestDecodeCorruptedStream(t *testing.T) {
	cfg := DefaultCodec(32, 32)
	stream, _, _, _ := encodeTestSequence(t, cfg, 4)
	// Corrupt the frame marker of the second frame: find it crudely by
	// flipping bytes early in the stream; decode must either error or at
	// minimum not panic.
	for pos := 8; pos < 24 && pos < len(stream); pos++ {
		cp := make([]byte, len(stream))
		copy(cp, stream)
		cp[pos] ^= 0xFF
		_, _ = Decode(cp) // must not panic
	}
}

func TestSkipMacroblocksOccur(t *testing.T) {
	// Static content under P coding must produce skip macroblocks.
	cfg := DefaultCodec(64, 48)
	cfg.GOPM = 1
	cfg.GOPN = 8
	f := NewFrame(64, 48)
	for i := range f.Pix {
		f.Pix[i] = byte(i % 251)
	}
	frames := []*Frame{f.Clone(), f.Clone(), f.Clone()}
	_, _, stats, err := Encode(cfg, frames)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames[1].SkipMBs == 0 {
		t.Fatal("static P frame produced no skip macroblocks")
	}
}

func TestSceneCutForcesIntraMBs(t *testing.T) {
	cfg := DefaultCodec(64, 48)
	cfg.GOPM = 1
	cfg.GOPN = 100 // only one I frame; the cut lands on a P frame
	scfg := DefaultSource(64, 48)
	scfg.SceneCut = 3
	frames := NewSource(scfg).Frames(6)
	_, _, stats, err := Encode(cfg, frames)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames[3].IntraMBs == 0 {
		t.Fatal("scene cut produced no intra macroblocks in P frame")
	}
}
