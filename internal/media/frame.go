package media

import (
	"fmt"
	"math"
	"math/rand"
)

// FrameType classifies a coded frame in the MPEG sense.
type FrameType uint8

const (
	FrameI FrameType = iota // intra coded
	FrameP                  // predicted from the previous reference
	FrameB                  // bi-directionally predicted
)

// String returns "I", "P", or "B".
func (t FrameType) String() string {
	switch t {
	case FrameI:
		return "I"
	case FrameP:
		return "P"
	case FrameB:
		return "B"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// MBSize is the macroblock edge in pixels. A macroblock is 16×16 luma
// samples, i.e. four 8×8 DCT blocks (chroma is omitted; see DESIGN.md).
const MBSize = 16

// BlocksPerMB is the number of 8×8 blocks in a macroblock.
const BlocksPerMB = 4

// Frame is a single-component (luma) picture.
type Frame struct {
	W, H int
	Pix  []byte // row-major, len = W*H
}

// NewFrame allocates a zeroed frame. Width and height must be positive
// multiples of MBSize.
func NewFrame(w, h int) *Frame {
	if w <= 0 || h <= 0 || w%MBSize != 0 || h%MBSize != 0 {
		panic(fmt.Sprintf("media: frame size %dx%d not a positive multiple of %d", w, h, MBSize))
	}
	return &Frame{W: w, H: h, Pix: make([]byte, w*h)}
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	g := &Frame{W: f.W, H: f.H, Pix: make([]byte, len(f.Pix))}
	copy(g.Pix, f.Pix)
	return g
}

// MBCols returns the number of macroblock columns.
func (f *Frame) MBCols() int { return f.W / MBSize }

// MBRows returns the number of macroblock rows.
func (f *Frame) MBRows() int { return f.H / MBSize }

// MBCount returns the number of macroblocks in the frame.
func (f *Frame) MBCount() int { return f.MBCols() * f.MBRows() }

// At returns the pixel at (x, y) with edge clamping, which implements the
// unrestricted-motion-vector padding used by motion compensation.
func (f *Frame) At(x, y int) byte {
	if x < 0 {
		x = 0
	} else if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= f.H {
		y = f.H - 1
	}
	return f.Pix[y*f.W+x]
}

// GetMB copies the 16×16 macroblock at macroblock coordinates (mbx, mby)
// into dst (row-major, 256 bytes).
func (f *Frame) GetMB(mbx, mby int, dst *[MBSize * MBSize]byte) {
	x0, y0 := mbx*MBSize, mby*MBSize
	for y := 0; y < MBSize; y++ {
		copy(dst[y*MBSize:(y+1)*MBSize], f.Pix[(y0+y)*f.W+x0:(y0+y)*f.W+x0+MBSize])
	}
}

// SetMB stores a 16×16 macroblock at macroblock coordinates (mbx, mby).
func (f *Frame) SetMB(mbx, mby int, src *[MBSize * MBSize]byte) {
	x0, y0 := mbx*MBSize, mby*MBSize
	for y := 0; y < MBSize; y++ {
		copy(f.Pix[(y0+y)*f.W+x0:(y0+y)*f.W+x0+MBSize], src[y*MBSize:(y+1)*MBSize])
	}
}

// Equal reports whether two frames have identical dimensions and pixels.
func (f *Frame) Equal(g *Frame) bool {
	if f.W != g.W || f.H != g.H {
		return false
	}
	for i := range f.Pix {
		if f.Pix[i] != g.Pix[i] {
			return false
		}
	}
	return true
}

// PSNR returns the peak signal-to-noise ratio of g against reference f in
// dB, or +Inf for identical frames. Frames must have equal dimensions.
func (f *Frame) PSNR(g *Frame) float64 {
	var sse float64
	for i := range f.Pix {
		d := float64(int(f.Pix[i]) - int(g.Pix[i]))
		sse += d * d
	}
	if sse == 0 {
		return math.Inf(1)
	}
	mse := sse / float64(len(f.Pix))
	return 10 * math.Log10(255*255/mse)
}

// SourceConfig parameterizes the synthetic video generator.
type SourceConfig struct {
	W, H     int
	Seed     int64
	Objects  int     // number of moving rectangles
	Noise    int     // amplitude of per-pixel noise (texture detail)
	Speed    int     // max object velocity in pixels/frame
	Detail   float64 // spatial frequency of the background gradient
	SceneCut int     // if > 0, frame index at which the scene changes
}

// DefaultSource returns a source configuration producing content with
// trackable motion and enough texture that I-frames are coefficient-dense
// relative to P/B frames, as in natural video.
func DefaultSource(w, h int) SourceConfig {
	return SourceConfig{W: w, H: h, Seed: 1, Objects: 4, Noise: 6, Speed: 3, Detail: 0.15}
}

type object struct {
	x, y, w, h int
	dx, dy     int
	shade      byte
}

// Source generates a deterministic synthetic video sequence: a textured
// background with moving rectangles and low-amplitude noise. Successive
// frames have genuine inter-frame motion so motion estimation finds real
// vectors, and scene cuts (optional) force intra decisions.
type Source struct {
	cfg  SourceConfig
	rng  *rand.Rand
	objs []object
	n    int // frames generated so far
	bg   []byte
}

// NewSource creates a generator for the given configuration.
func NewSource(cfg SourceConfig) *Source {
	s := &Source{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	s.buildBackground()
	for i := 0; i < cfg.Objects; i++ {
		s.objs = append(s.objs, s.randObject())
	}
	return s
}

func (s *Source) buildBackground() {
	w, h := s.cfg.W, s.cfg.H
	s.bg = make([]byte, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 110 +
				60*math.Sin(s.cfg.Detail*float64(x)) +
				40*math.Sin(s.cfg.Detail*1.37*float64(y)+1.1) +
				20*math.Sin(s.cfg.Detail*0.61*float64(x+y))
			s.bg[y*w+x] = clampByte(int(v))
		}
	}
}

func (s *Source) randObject() object {
	w := 16 + s.rng.Intn(48)
	h := 16 + s.rng.Intn(48)
	sp := s.cfg.Speed
	if sp < 1 {
		sp = 1
	}
	dx, dy := 0, 0
	for dx == 0 && dy == 0 {
		dx = s.rng.Intn(2*sp+1) - sp
		dy = s.rng.Intn(2*sp+1) - sp
	}
	return object{
		x: s.rng.Intn(s.cfg.W), y: s.rng.Intn(s.cfg.H),
		w: w, h: h, dx: dx, dy: dy,
		shade: byte(40 + s.rng.Intn(180)),
	}
}

// Next generates the next frame of the sequence.
func (s *Source) Next() *Frame {
	if s.cfg.SceneCut > 0 && s.n == s.cfg.SceneCut {
		s.cfg.Seed += 7919
		s.cfg.Detail *= 1.9
		s.buildBackground()
		for i := range s.objs {
			s.objs[i] = s.randObject()
		}
	}
	w, h := s.cfg.W, s.cfg.H
	f := NewFrame(w, h)
	copy(f.Pix, s.bg)
	for i := range s.objs {
		o := &s.objs[i]
		for y := o.y; y < o.y+o.h; y++ {
			yy := ((y % h) + h) % h
			for x := o.x; x < o.x+o.w; x++ {
				xx := ((x % w) + w) % w
				f.Pix[yy*w+xx] = o.shade
			}
		}
		o.x += o.dx
		o.y += o.dy
	}
	if s.cfg.Noise > 0 {
		for i := range f.Pix {
			n := s.rng.Intn(2*s.cfg.Noise+1) - s.cfg.Noise
			f.Pix[i] = clampByte(int(f.Pix[i]) + n)
		}
	}
	s.n++
	return f
}

// Frames generates n successive frames.
func (s *Source) Frames(n int) []*Frame {
	out := make([]*Frame, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

func clampByte(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
