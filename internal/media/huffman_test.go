package media

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHuffLengthsSimple(t *testing.T) {
	// Classic example: weights 1,1,2,4 yield lengths 3,3,2,1.
	lengths := HuffCodeLengths([]uint64{1, 1, 2, 4})
	want := []uint8{3, 3, 2, 1}
	for i := range want {
		if lengths[i] != want[i] {
			t.Fatalf("lengths = %v, want %v", lengths, want)
		}
	}
}

func TestHuffSingleSymbol(t *testing.T) {
	lengths := HuffCodeLengths([]uint64{0, 5, 0})
	if lengths[1] != 1 || lengths[0] != 0 || lengths[2] != 0 {
		t.Fatalf("lengths = %v", lengths)
	}
	tab, err := NewHuffTable(lengths)
	if err != nil {
		t.Fatal(err)
	}
	w := NewBitWriter()
	tab.Encode(w, 1)
	r := NewBitReader(w.Bytes())
	if sym, _ := tab.Decode(r); sym != 1 {
		t.Fatalf("sym = %d", sym)
	}
}

func TestHuffEmpty(t *testing.T) {
	tab, err := NewHuffTable(HuffCodeLengths(nil))
	if err != nil {
		t.Fatal(err)
	}
	r := NewBitReader([]byte{0xFF})
	if sym, _ := tab.Decode(r); sym != -1 || r.Err() == nil {
		t.Fatal("decoding with empty table must fail")
	}
}

func TestHuffKraftViolationRejected(t *testing.T) {
	// Three codes of length 1 violate Kraft.
	if _, err := NewHuffTable([]uint8{1, 1, 1}); err == nil {
		t.Fatal("expected oversubscription error")
	}
}

func TestHuffCanonicalOrdering(t *testing.T) {
	// Codes of equal length must be consecutive, ordered by symbol index,
	// and lexicographically after all shorter codes.
	tab, err := NewHuffTable([]uint8{2, 2, 2, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	c0, c1, c2 := tab.Code(0), tab.Code(1), tab.Code(2)
	if c0.Bits != 0 || c1.Bits != 1 || c2.Bits != 2 {
		t.Fatalf("codes: %+v %+v %+v", c0, c1, c2)
	}
	c3, c4 := tab.Code(3), tab.Code(4)
	if c3.Bits != 6 || c4.Bits != 7 { // (2+1)<<1 = 6
		t.Fatalf("len-3 codes: %+v %+v", c3, c4)
	}
}

func TestHuffDeterministic(t *testing.T) {
	freq := []uint64{7, 7, 7, 7, 3, 3, 1}
	a := HuffCodeLengths(freq)
	b := HuffCodeLengths(freq)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic lengths: %v vs %v", a, b)
		}
	}
}

func TestHuffRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		nsym := 2 + rng.Intn(200)
		freq := make([]uint64, nsym)
		for i := range freq {
			if rng.Intn(5) > 0 { // some symbols unused
				freq[i] = uint64(rng.Intn(1000) + 1)
			}
		}
		// Ensure at least two used symbols.
		freq[0], freq[1] = 1000, 1
		tab, err := NewHuffTable(HuffCodeLengths(freq))
		if err != nil {
			t.Fatal(err)
		}
		var msg []int
		w := NewBitWriter()
		for i := 0; i < 500; i++ {
			s := rng.Intn(nsym)
			if freq[s] == 0 {
				continue
			}
			msg = append(msg, s)
			tab.Encode(w, s)
		}
		r := NewBitReader(w.Bytes())
		for i, s := range msg {
			got, _ := tab.Decode(r)
			if got != s {
				t.Fatalf("trial %d sym %d: got %d want %d", trial, i, got, s)
			}
		}
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
	}
}

func TestQuickHuffPrefixFree(t *testing.T) {
	// Property: generated code sets are prefix-free.
	f := func(rawFreq []uint16) bool {
		if len(rawFreq) < 2 {
			return true
		}
		if len(rawFreq) > 64 {
			rawFreq = rawFreq[:64]
		}
		freq := make([]uint64, len(rawFreq))
		used := 0
		for i, v := range rawFreq {
			freq[i] = uint64(v)
			if v > 0 {
				used++
			}
		}
		if used < 2 {
			return true
		}
		tab, err := NewHuffTable(HuffCodeLengths(freq))
		if err != nil {
			return false
		}
		var codes []HuffCode
		for s := range freq {
			if c := tab.Code(s); c.Len > 0 {
				codes = append(codes, c)
			}
		}
		for i := range codes {
			for j := range codes {
				if i == j {
					continue
				}
				a, b := codes[i], codes[j]
				if a.Len > b.Len {
					a, b = b, a
				}
				if b.Bits>>(b.Len-a.Len) == a.Bits && a.Len == b.Len && a.Bits == b.Bits {
					return false // duplicate code
				}
				if a.Len < b.Len && b.Bits>>(b.Len-a.Len) == a.Bits {
					return false // prefix
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffDecodeGarbage(t *testing.T) {
	// With a complete code (Kraft equality) every bit pattern decodes to
	// some symbol until the stream runs out; a truncated stream errors.
	tab, err := NewHuffTable(HuffCodeLengths([]uint64{10, 5, 3, 1}))
	if err != nil {
		t.Fatal(err)
	}
	r := NewBitReader([]byte{})
	if sym, _ := tab.Decode(r); sym != -1 {
		t.Fatalf("empty stream decoded to %d", sym)
	}
	if r.Err() == nil {
		t.Fatal("expected error")
	}
}
