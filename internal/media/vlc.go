package media

// Run/level variable-length coding of quantized DCT coefficients.
//
// Quantized 8×8 blocks are zigzag-scanned into (run, level) events: `run`
// zero coefficients followed by a nonzero coefficient `level`, terminated
// by an end-of-block event. Common events are coded with a canonical
// Huffman table built at package initialization from a fixed synthetic
// frequency model (standing in for MPEG-2's hand-designed table B-14);
// rare events use an escape code with fixed-length run and level fields.
// This gives the decoder genuinely data-dependent work per block, which
// is what makes the VLD coprocessor's load irregular (paper Section 2.2).

const (
	vlcMaxRun   = 15 // runs 0..15 have Huffman-coded events
	vlcMaxLevel = 8  // |level| 1..8 have Huffman-coded events
	// escape field widths
	escRunBits   = 6
	escLevelBits = 12
	// MaxLevel is the largest |level| the escape code can represent.
	MaxLevel = 1<<(escLevelBits-1) - 1
	// MaxRun is the largest run the escape code can represent.
	MaxRun = 1<<escRunBits - 1
)

// Symbol space: 0 = EOB, 1 = ESC, 2.. = (run, |level|) pairs.
const (
	symEOB = 0
	symESC = 1
)

func pairSym(run int, absLevel int32) int {
	return 2 + run*vlcMaxLevel + int(absLevel) - 1
}

var coefTable *HuffTable

func init() {
	// Synthetic frequency model: short runs and small levels dominate, as
	// in real DCT statistics. EOB occurs once per block; escapes are rare.
	nsym := 2 + (vlcMaxRun+1)*vlcMaxLevel
	freq := make([]uint64, nsym)
	freq[symEOB] = 1 << 22
	freq[symESC] = 1 << 8
	for run := 0; run <= vlcMaxRun; run++ {
		for lvl := 1; lvl <= vlcMaxLevel; lvl++ {
			freq[pairSym(run, int32(lvl))] = uint64(1<<24) / uint64((run+2)*(run+2)*lvl*lvl)
		}
	}
	t, err := NewHuffTable(HuffCodeLengths(freq))
	if err != nil {
		panic(err)
	}
	coefTable = t
}

// RunLevel is one entropy-coding event: Run zero coefficients followed by
// a nonzero coefficient Level. Level 0 never occurs in a valid event.
type RunLevel struct {
	Run   int
	Level int32
}

// EncodeRunLevel appends the VLC for one run/level event.
func EncodeRunLevel(w *BitWriter, rl RunLevel) {
	abs := rl.Level
	if abs < 0 {
		abs = -abs
	}
	if rl.Run <= vlcMaxRun && abs >= 1 && abs <= vlcMaxLevel {
		coefTable.Encode(w, pairSym(rl.Run, abs))
		if rl.Level < 0 {
			w.WriteBit(1)
		} else {
			w.WriteBit(0)
		}
		return
	}
	// Escape: ESC, run, signed level in two's complement.
	coefTable.Encode(w, symESC)
	w.WriteBits(uint32(rl.Run), escRunBits)
	w.WriteBits(uint32(rl.Level)&(1<<escLevelBits-1), escLevelBits)
}

// EncodeEOB appends the end-of-block code.
func EncodeEOB(w *BitWriter) { coefTable.Encode(w, symEOB) }

// DecodeRunLevel reads one event. eob is true when the event was
// end-of-block (rl is then the zero value). bits is the number of
// bitstream bits consumed, which the VLD coprocessor model uses for its
// cycle cost. On bitstream errors the reader's sticky error is set.
func DecodeRunLevel(r *BitReader) (rl RunLevel, eob bool, bits uint) {
	sym, n := coefTable.Decode(r)
	bits = n
	switch {
	case sym < 0:
		return RunLevel{}, true, bits // reader error is set
	case sym == symEOB:
		return RunLevel{}, true, bits
	case sym == symESC:
		run := int(r.ReadBits(escRunBits))
		raw := r.ReadBits(escLevelBits)
		lvl := int32(raw<<(32-escLevelBits)) >> (32 - escLevelBits) // sign-extend
		bits += escRunBits + escLevelBits
		return RunLevel{Run: run, Level: lvl}, false, bits
	default:
		s := sym - 2
		run := s / vlcMaxLevel
		abs := int32(s%vlcMaxLevel) + 1
		sign := r.ReadBit()
		bits++
		if sign == 1 {
			abs = -abs
		}
		return RunLevel{Run: run, Level: abs}, false, bits
	}
}

// AppendRunLength appends the run/level events of a zigzag-ordered
// coefficient block (without the trailing EOB) to dst and returns the
// extended slice, allocating only if dst lacks capacity.
func AppendRunLength(dst []RunLevel, zz *[64]int16) []RunLevel {
	run := 0
	for _, c := range zz {
		if c == 0 {
			run++
			continue
		}
		dst = append(dst, RunLevel{Run: run, Level: int32(c)})
		run = 0
	}
	return dst
}

// RunLength converts a zigzag-ordered coefficient block into run/level
// events (without the trailing EOB), allocating a fresh slice.
func RunLength(zz *[64]int16) []RunLevel { return AppendRunLength(nil, zz) }

// RunLengthExpand reconstructs a zigzag-ordered coefficient block from
// run/level events. It reports false if the events overflow 64
// coefficients or contain an invalid zero level.
func RunLengthExpand(events []RunLevel, zz *[64]int16) bool {
	*zz = [64]int16{}
	pos := 0
	for _, e := range events {
		pos += e.Run
		if pos >= 64 || e.Level == 0 || e.Run < 0 {
			return false
		}
		zz[pos] = int16(e.Level)
		pos++
	}
	return true
}
