package media

import "fmt"

// StreamEncoder is a push-based incremental encoder: callers feed frames
// one at a time in display order and receive the coded bitstream at
// Close. It reorders internally (buffering B frames until their backward
// reference arrives) and drives the exact same per-frame encoding path
// as Encode, so for the same configuration and frames the bitstream is
// bit-identical to Encode's — the contract the serving path's
// correctness checks rely on.
//
// The total frame count must be declared up front (the sequence header
// carries it, and the GOP structure depends on it).
type StreamEncoder struct {
	// Recycle, when non-nil, is called with each source frame as soon as
	// the encoder is done reading it (its macroblocks are coded and it
	// will never be referenced again) — the hook a serving path uses to
	// return request frames to a shared pool.
	Recycle func(*Frame)

	enc     *Encoder
	types   []FrameType // display order
	order   []int       // coded order (display indices)
	pushed  int         // frames received so far (display order)
	coded   int         // prefix of order already encoded
	pending map[int]*Frame
	closed  bool
}

// NewStreamEncoder validates the configuration and prepares an encoder
// for exactly `frames` pushes.
func NewStreamEncoder(cfg CodecConfig, frames int) (*StreamEncoder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if frames <= 0 || frames > 0xFFFF {
		return nil, fmt.Errorf("media: frame count %d out of range", frames)
	}
	types := GOPTypes(frames, cfg.GOPN, cfg.GOPM)
	return &StreamEncoder{
		enc:     newEncoder(cfg, frames),
		types:   types,
		order:   CodedOrder(types),
		pending: map[int]*Frame{},
	}, nil
}

// Push feeds the next display-order frame. Frames whose references are
// not yet complete are buffered; everything codeable is coded eagerly,
// so peak buffering is bounded by the GOP's M parameter.
func (e *StreamEncoder) Push(f *Frame) error {
	if e.closed {
		return fmt.Errorf("media: push on closed StreamEncoder")
	}
	if e.pushed >= len(e.types) {
		return fmt.Errorf("media: more than the declared %d frames pushed", len(e.types))
	}
	if f.W != e.enc.cfg.W || f.H != e.enc.cfg.H {
		return fmt.Errorf("media: frame %d is %dx%d, want %dx%d", e.pushed, f.W, f.H, e.enc.cfg.W, e.enc.cfg.H)
	}
	e.pending[e.pushed] = f
	e.pushed++
	// Encode the coded-order prefix that is now available.
	for e.coded < len(e.order) {
		di := e.order[e.coded]
		src, ok := e.pending[di]
		if !ok {
			break
		}
		delete(e.pending, di)
		e.enc.encodeFrame(src, e.types[di], di)
		e.coded++
		if e.Recycle != nil {
			e.Recycle(src)
		}
	}
	return nil
}

// Close finalizes the stream after all declared frames were pushed and
// returns the bitstream and the per-frame statistics.
func (e *StreamEncoder) Close() ([]byte, *EncodeStats, error) {
	if e.closed {
		return nil, nil, fmt.Errorf("media: StreamEncoder closed twice")
	}
	e.closed = true
	if e.pushed != len(e.types) {
		return nil, nil, fmt.Errorf("media: closed after %d of %d declared frames", e.pushed, len(e.types))
	}
	if e.coded != len(e.order) {
		return nil, nil, fmt.Errorf("media: internal reorder stall at coded frame %d", e.coded)
	}
	return e.enc.w.Bytes(), &e.enc.stats, nil
}
