package media

import "fmt"

// StreamEncoder is a push-based incremental encoder: callers feed frames
// one at a time in display order and receive the coded bitstream at
// Close. It reorders internally (buffering B frames until their backward
// reference arrives) and drives the exact same per-frame encoding path
// as Encode, so for the same configuration and frames the bitstream is
// bit-identical to Encode's — the contract the serving path's
// correctness checks rely on.
//
// The total frame count must be declared up front (the sequence header
// carries it, and the GOP structure depends on it).
type StreamEncoder struct {
	// Recycle, when non-nil, is called with each source frame as soon as
	// the encoder is done reading it (its macroblocks are coded and it
	// will never be referenced again) — the hook a serving path uses to
	// return request frames to a shared pool. Abort also routes the
	// still-buffered frames through it.
	Recycle func(*Frame)

	// Workers bounds the per-frame analysis parallelism (the par.Run
	// fan-out over macroblock rows). 0 falls back to the process-wide
	// EncodeWorkers default. The bitstream is bit-identical for every
	// value — only the entropy pass is serially dependent, and it always
	// replays in raster order.
	Workers int

	enc    *Encoder
	types  []FrameType // whole-sequence frame types, indexed by display index
	order  []int       // coded order restricted to this encoder's range (global display indices)
	lo     int         // first display index this encoder covers
	count  int         // frames this encoder covers ([lo, lo+count))
	pushed int         // frames received so far (display order)
	coded  int         // prefix of order already encoded
	// Reorder window: pending frames indexed (di-lo) % len(ring). The
	// display indices simultaneously buffered span at most GOPM
	// consecutive values (a run of B frames plus the reference that
	// releases them), so GOPM+1 slots can never collide; ringDi guards
	// the invariant.
	ring   []*Frame
	ringDi []int // display index occupying each slot; -1 = empty
	closed bool
}

// NewStreamEncoder validates the configuration and prepares an encoder
// for exactly `frames` pushes.
func NewStreamEncoder(cfg CodecConfig, frames int) (*StreamEncoder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if frames <= 0 || frames > 0xFFFF {
		return nil, fmt.Errorf("media: frame count %d out of range", frames)
	}
	types := GOPTypes(frames, cfg.GOPN, cfg.GOPM)
	e := &StreamEncoder{
		enc:   newEncoder(cfg, frames),
		types: types,
		order: CodedOrder(types),
		count: frames,
	}
	e.initRing(cfg.GOPM)
	return e, nil
}

// NewStreamEncoderSegment prepares a headerless encoder for display
// frames [lo, hi) of a totalFrames-frame sequence: the segment-parallel
// transcoder runs one per segment and splices their CloseRaw outputs
// with StitchSegments. lo and hi must be encode-closed cuts of the
// whole-sequence GOP structure (EncodeClosedCuts; 0 and totalFrames
// always qualify) — closure is what makes the global coded order
// restricted to [lo, hi) contiguous and the segment's reference chain
// self-contained, so the spliced bits match a single whole-sequence
// encode exactly. Frame types and TRefs are taken from the *global*
// structure (including the last-frame B→P promotion), never recomputed
// per segment.
func NewStreamEncoderSegment(cfg CodecConfig, totalFrames, lo, hi int) (*StreamEncoder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if totalFrames <= 0 || totalFrames > 0xFFFF {
		return nil, fmt.Errorf("media: frame count %d out of range", totalFrames)
	}
	if lo < 0 || hi > totalFrames || lo >= hi {
		return nil, fmt.Errorf("media: segment [%d,%d) out of range [0,%d)", lo, hi, totalFrames)
	}
	cuts := EncodeClosedCuts(totalFrames, cfg.GOPN, cfg.GOPM)
	for _, c := range [2]int{lo, hi} {
		if c == 0 || c == totalFrames {
			continue
		}
		ok := false
		for _, v := range cuts {
			if v == c {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("media: %d is not an encode-closed cut for N=%d M=%d", c, cfg.GOPN, cfg.GOPM)
		}
	}
	types := GOPTypes(totalFrames, cfg.GOPN, cfg.GOPM)
	e := &StreamEncoder{
		enc:   newEncoderRaw(cfg, totalFrames),
		types: types,
		order: CodedOrder(types)[lo:hi],
		lo:    lo,
		count: hi - lo,
	}
	e.initRing(cfg.GOPM)
	return e, nil
}

func (e *StreamEncoder) initRing(gopM int) {
	window := gopM + 1
	if window > e.count {
		window = e.count
	}
	e.ring = make([]*Frame, window)
	e.ringDi = make([]int, window)
	for i := range e.ringDi {
		e.ringDi[i] = -1
	}
}

// Push feeds the next display-order frame. Frames whose references are
// not yet complete are buffered; everything codeable is coded eagerly,
// so peak buffering is bounded by the GOP's M parameter.
func (e *StreamEncoder) Push(f *Frame) error {
	if e.closed {
		return fmt.Errorf("media: push on closed StreamEncoder")
	}
	if e.pushed >= e.count {
		return fmt.Errorf("media: more than the declared %d frames pushed", e.count)
	}
	if f.W != e.enc.cfg.W || f.H != e.enc.cfg.H {
		return fmt.Errorf("media: frame %d is %dx%d, want %dx%d", e.pushed, f.W, f.H, e.enc.cfg.W, e.enc.cfg.H)
	}
	di := e.lo + e.pushed
	slot := e.pushed % len(e.ring)
	if e.ringDi[slot] != -1 {
		return fmt.Errorf("media: internal reorder window overflow at frame %d", e.pushed)
	}
	e.ring[slot] = f
	e.ringDi[slot] = di
	e.pushed++
	e.enc.workers = e.Workers
	// Encode the coded-order prefix that is now available.
	for e.coded < len(e.order) {
		di := e.order[e.coded]
		s := (di - e.lo) % len(e.ring)
		if e.ringDi[s] != di {
			break // not pushed yet
		}
		src := e.ring[s]
		e.ring[s] = nil
		e.ringDi[s] = -1
		e.enc.encodeFrame(src, e.types[di], di)
		e.coded++
		if e.Recycle != nil {
			e.Recycle(src)
		}
	}
	return nil
}

// Close finalizes the stream after all declared frames were pushed and
// returns the bitstream and the per-frame statistics.
func (e *StreamEncoder) Close() ([]byte, *EncodeStats, error) {
	w, stats, err := e.CloseRaw()
	if err != nil {
		return nil, nil, err
	}
	return w.Bytes(), stats, nil
}

// CloseRaw finalizes like Close but returns the underlying bit writer
// without byte-aligning it. For segment encoders this is the stitchable
// artifact: the segment's frames as a headerless, unaligned bit run that
// StitchSegments splices at exact bit positions. The writer must not be
// written to further.
func (e *StreamEncoder) CloseRaw() (*BitWriter, *EncodeStats, error) {
	if e.closed {
		return nil, nil, fmt.Errorf("media: StreamEncoder closed twice")
	}
	e.closed = true
	if e.pushed != e.count {
		return nil, nil, fmt.Errorf("media: closed after %d of %d declared frames", e.pushed, e.count)
	}
	if e.coded != len(e.order) {
		return nil, nil, fmt.Errorf("media: internal reorder stall at coded frame %d", e.coded)
	}
	return e.enc.w, &e.enc.stats, nil
}

// StitchSegments assembles the final bitstream from headerless segment
// writers (CloseRaw results) in segment order: the sequence header, then
// each segment's bits appended at the bit level, byte-aligned exactly
// once at the very end. Because per-frame entropy state resets at every
// frame (the MV predictor restarts per macroblock row, and no DC or VLC
// state crosses frames), a frame's encoded bits are independent of its
// bit position, so the result is bit-identical to a single-writer encode
// of the whole sequence under the same cfg and frame count.
func StitchSegments(cfg CodecConfig, totalFrames int, parts []*BitWriter) ([]byte, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if totalFrames <= 0 || totalFrames > 0xFFFF {
		return nil, fmt.Errorf("media: frame count %d out of range", totalFrames)
	}
	w := NewBitWriter()
	seq := seqHeaderFor(cfg, totalFrames)
	WriteSeqHeader(w, &seq)
	for _, p := range parts {
		w.AppendBits(p)
	}
	return w.Bytes(), nil
}

// Abort abandons the stream mid-flight: every frame still buffered in
// the reorder window is handed to Recycle and further Push/Close calls
// fail. The hook error-unwinding paths use so pooled frames pushed but
// not yet coded are not leaked. No-op on an already closed or aborted
// encoder.
func (e *StreamEncoder) Abort() {
	if e.closed {
		return
	}
	e.closed = true
	for i, f := range e.ring {
		if f == nil {
			continue
		}
		e.ring[i] = nil
		e.ringDi[i] = -1
		if e.Recycle != nil {
			e.Recycle(f)
		}
	}
}
