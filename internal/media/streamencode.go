package media

import "fmt"

// StreamEncoder is a push-based incremental encoder: callers feed frames
// one at a time in display order and receive the coded bitstream at
// Close. It reorders internally (buffering B frames until their backward
// reference arrives) and drives the exact same per-frame encoding path
// as Encode, so for the same configuration and frames the bitstream is
// bit-identical to Encode's — the contract the serving path's
// correctness checks rely on.
//
// The total frame count must be declared up front (the sequence header
// carries it, and the GOP structure depends on it).
type StreamEncoder struct {
	// Recycle, when non-nil, is called with each source frame as soon as
	// the encoder is done reading it (its macroblocks are coded and it
	// will never be referenced again) — the hook a serving path uses to
	// return request frames to a shared pool. Abort also routes the
	// still-buffered frames through it.
	Recycle func(*Frame)

	// Workers bounds the per-frame analysis parallelism (the par.Run
	// fan-out over macroblock rows). 0 falls back to the process-wide
	// EncodeWorkers default. The bitstream is bit-identical for every
	// value — only the entropy pass is serially dependent, and it always
	// replays in raster order.
	Workers int

	enc    *Encoder
	types  []FrameType // display order
	order  []int       // coded order (display indices)
	pushed int         // frames received so far (display order)
	coded  int         // prefix of order already encoded
	// Reorder window: pending frames indexed di % len(ring). The display
	// indices simultaneously buffered span at most GOPM consecutive
	// values (a run of B frames plus the reference that releases them),
	// so GOPM+1 slots can never collide; ringDi guards the invariant.
	ring   []*Frame
	ringDi []int // display index occupying each slot; -1 = empty
	closed bool
}

// NewStreamEncoder validates the configuration and prepares an encoder
// for exactly `frames` pushes.
func NewStreamEncoder(cfg CodecConfig, frames int) (*StreamEncoder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if frames <= 0 || frames > 0xFFFF {
		return nil, fmt.Errorf("media: frame count %d out of range", frames)
	}
	types := GOPTypes(frames, cfg.GOPN, cfg.GOPM)
	window := cfg.GOPM + 1
	if window > frames {
		window = frames
	}
	ringDi := make([]int, window)
	for i := range ringDi {
		ringDi[i] = -1
	}
	return &StreamEncoder{
		enc:    newEncoder(cfg, frames),
		types:  types,
		order:  CodedOrder(types),
		ring:   make([]*Frame, window),
		ringDi: ringDi,
	}, nil
}

// Push feeds the next display-order frame. Frames whose references are
// not yet complete are buffered; everything codeable is coded eagerly,
// so peak buffering is bounded by the GOP's M parameter.
func (e *StreamEncoder) Push(f *Frame) error {
	if e.closed {
		return fmt.Errorf("media: push on closed StreamEncoder")
	}
	if e.pushed >= len(e.types) {
		return fmt.Errorf("media: more than the declared %d frames pushed", len(e.types))
	}
	if f.W != e.enc.cfg.W || f.H != e.enc.cfg.H {
		return fmt.Errorf("media: frame %d is %dx%d, want %dx%d", e.pushed, f.W, f.H, e.enc.cfg.W, e.enc.cfg.H)
	}
	slot := e.pushed % len(e.ring)
	if e.ringDi[slot] != -1 {
		return fmt.Errorf("media: internal reorder window overflow at frame %d", e.pushed)
	}
	e.ring[slot] = f
	e.ringDi[slot] = e.pushed
	e.pushed++
	e.enc.workers = e.Workers
	// Encode the coded-order prefix that is now available.
	for e.coded < len(e.order) {
		di := e.order[e.coded]
		s := di % len(e.ring)
		if e.ringDi[s] != di {
			break // not pushed yet
		}
		src := e.ring[s]
		e.ring[s] = nil
		e.ringDi[s] = -1
		e.enc.encodeFrame(src, e.types[di], di)
		e.coded++
		if e.Recycle != nil {
			e.Recycle(src)
		}
	}
	return nil
}

// Close finalizes the stream after all declared frames were pushed and
// returns the bitstream and the per-frame statistics.
func (e *StreamEncoder) Close() ([]byte, *EncodeStats, error) {
	if e.closed {
		return nil, nil, fmt.Errorf("media: StreamEncoder closed twice")
	}
	e.closed = true
	if e.pushed != len(e.types) {
		return nil, nil, fmt.Errorf("media: closed after %d of %d declared frames", e.pushed, len(e.types))
	}
	if e.coded != len(e.order) {
		return nil, nil, fmt.Errorf("media: internal reorder stall at coded frame %d", e.coded)
	}
	return e.enc.w.Bytes(), &e.enc.stats, nil
}

// Abort abandons the stream mid-flight: every frame still buffered in
// the reorder window is handed to Recycle and further Push/Close calls
// fail. The hook error-unwinding paths use so pooled frames pushed but
// not yet coded are not leaked. No-op on an already closed or aborted
// encoder.
func (e *StreamEncoder) Abort() {
	if e.closed {
		return
	}
	e.closed = true
	for i, f := range e.ring {
		if f == nil {
			continue
		}
		e.ring[i] = nil
		e.ringDi[i] = -1
		if e.Recycle != nil {
			e.Recycle(f)
		}
	}
}
