package media

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFrameRecRoundTrip(t *testing.T) {
	for _, tag := range []byte{FrameRecHdr, FrameRecTok} {
		h := FrameHdr{Type: FrameB, TRef: 1234}
		buf := AppendFrameRec(nil, tag, h)
		if len(buf) != FrameRecSize {
			t.Fatalf("size = %d", len(buf))
		}
		got, err := ParseFrameRec(buf, tag)
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("got %+v", got)
		}
	}
}

func TestFrameRecErrors(t *testing.T) {
	if _, err := ParseFrameRec([]byte{FrameRecHdr, 0}, FrameRecHdr); err == nil {
		t.Fatal("short record accepted")
	}
	buf := AppendFrameRec(nil, FrameRecHdr, FrameHdr{})
	if _, err := ParseFrameRec(buf, FrameRecTok); err == nil {
		t.Fatal("wrong tag accepted")
	}
	buf[1] = 9 // invalid type
	if _, err := ParseFrameRec(buf, FrameRecHdr); err == nil {
		t.Fatal("bad type accepted")
	}
}

func TestQuickMBHeaderRoundTrip(t *testing.T) {
	f := func(mode uint8, fx, fy, bx, by int16) bool {
		dec := MBDecision{
			Mode: PredMode(mode % 5),
			FMV:  MV{fx, fy},
			BMV:  MV{bx, by},
		}
		buf := AppendMBHeader(nil, dec)
		if len(buf) != MBHeaderSize {
			return false
		}
		got, err := ParseMBHeader(buf)
		return err == nil && got == dec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMBHeaderBadMode(t *testing.T) {
	buf := AppendMBHeader(nil, MBDecision{Mode: PredIntra})
	buf[0] = 99
	if _, err := ParseMBHeader(buf); err == nil {
		t.Fatal("bad mode accepted")
	}
}

func randomTokenMB(rng *rand.Rand) TokenMB {
	var tok TokenMB
	for b := 0; b < BlocksPerMB; b++ {
		if rng.Intn(3) == 0 {
			continue
		}
		n := rng.Intn(20)
		pos := 0
		for k := 0; k < n && pos < 63; k++ {
			run := rng.Intn(4)
			if pos+run >= 64 {
				break
			}
			lvl := int32(rng.Intn(2*MaxLevel+1) - MaxLevel)
			if lvl == 0 {
				lvl = 1
			}
			tok.Events[b] = append(tok.Events[b], RunLevel{Run: run, Level: lvl})
			pos += run + 1
		}
		if len(tok.Events[b]) > 0 {
			tok.CBP |= 1 << b
		}
	}
	return tok
}

func TestTokenMBRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		tok := randomTokenMB(rng)
		buf := AppendTokenMB(nil, &tok)
		if len(buf) != TokenMBSize(&tok) {
			t.Fatalf("size mismatch: %d vs %d", len(buf), TokenMBSize(&tok))
		}
		got, n, err := ParseTokenMB(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d", n, len(buf))
		}
		if got.CBP != tok.CBP {
			t.Fatalf("cbp %x vs %x", got.CBP, tok.CBP)
		}
		for b := range tok.Events {
			if len(got.Events[b]) != len(tok.Events[b]) {
				t.Fatalf("block %d count", b)
			}
			for k := range tok.Events[b] {
				if got.Events[b][k] != tok.Events[b][k] {
					t.Fatalf("block %d event %d", b, k)
				}
			}
		}
	}
}

func TestTokenMBEmptyCBP(t *testing.T) {
	tok := TokenMB{}
	buf := AppendTokenMB(nil, &tok)
	if len(buf) != TokenLenSize+1 {
		t.Fatalf("len = %d", len(buf))
	}
	got, n, err := ParseTokenMB(buf)
	if err != nil || n != TokenLenSize+1 || got.CBP != 0 {
		t.Fatalf("got %+v n=%d err=%v", got, n, err)
	}
}

func TestTokenMBLongRecordLength(t *testing.T) {
	// A dense record exceeds 255 body bytes, exercising the second
	// length-prefix byte.
	var tok TokenMB
	tok.CBP = 0x0F
	for b := 0; b < BlocksPerMB; b++ {
		for i := 0; i < 40; i++ {
			tok.Events[b] = append(tok.Events[b], RunLevel{Run: 0, Level: int32(i + 1)})
		}
	}
	buf := AppendTokenMB(nil, &tok)
	if len(buf) <= TokenLenSize+255 {
		t.Fatalf("record unexpectedly small: %d", len(buf))
	}
	got, n, err := ParseTokenMB(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if got.TokenCount() != tok.TokenCount() {
		t.Fatal("token count mismatch")
	}
}

func TestTokenMBTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tok := randomTokenMB(rng)
	for tok.CBP == 0 {
		tok = randomTokenMB(rng)
	}
	buf := AppendTokenMB(nil, &tok)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := ParseTokenMB(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestQuickBlockRoundTrip(t *testing.T) {
	f := func(vals [64]int16) bool {
		b := Block(vals)
		buf := AppendBlock(nil, &b)
		if len(buf) != BlockBytes {
			return false
		}
		var got Block
		if err := ParseBlock(buf, &got); err != nil {
			return false
		}
		return got == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMBBlocksRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var blocks [BlocksPerMB]Block
	for b := range blocks {
		for i := range blocks[b] {
			blocks[b][i] = int16(rng.Intn(65536) - 32768)
		}
	}
	buf := AppendMBBlocks(nil, &blocks)
	if len(buf) != MBCoefBytes {
		t.Fatalf("len = %d", len(buf))
	}
	var got [BlocksPerMB]Block
	if err := ParseMBBlocks(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got != blocks {
		t.Fatal("mismatch")
	}
	if err := ParseMBBlocks(buf[:100], &got); err == nil {
		t.Fatal("short buffer accepted")
	}
}
