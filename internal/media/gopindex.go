package media

// GOP indexing: one VLD-only pass over a bitstream that recovers, per
// coded frame, its bit offset, display index, and reference display
// indices — enough to find the closed cut points where the stream splits
// into independently decodable segments.
//
// A display cut at position c is decode-closed iff
//
//	(a) the coded prefix before the cut covers exactly displays
//	    {0..c-1} (prefix max tref == c-1 at coded position c), and
//	(b) no coded frame at or after the cut depends — through its own
//	    tref or either reference — on a display index < c (suffix
//	    dependency minimum >= c).
//
// (a) alone is not enough: with open GOPs (N=12, M=3) the prefix {0..9}
// is display-contiguous and the frame at the cut is the next GOP's I,
// yet the B frames coded after that I still reference P(9) across the
// cut. (b) catches exactly those. Together they imply the frame at the
// cut is an I frame and each segment starts with an empty reference
// chain, which is what DecodeSegment relies on.
//
// The same analysis applies to the re-encode side of a transcode: the
// output GOP structure is GOPTypes of the *output* configuration, which
// need not match the source's, so a transcode may only split where both
// sides are closed (TranscodeCuts intersects the two).

import "fmt"

// frameDep is one coded frame's display-index dependencies.
type frameDep struct {
	tref     int
	fwd, bwd int // reference display indices; -1 = none
}

// GOPIndex is the product of IndexGOPs: per-coded-frame bit offsets and
// the decode-side closed cut positions of a validated bitstream.
type GOPIndex struct {
	Seq      SeqHeader
	frameBit []int // bit offset of coded frame i's header (frame marker)
	deps     []frameDep
	cuts     []int // decode-closed cuts, ascending, exclusive of 0 and Frames
}

// Cuts returns the decode-side closed cut positions (display == coded
// positions, by closure), ascending, excluding the trivial 0 and Frames.
func (ix *GOPIndex) Cuts() []int { return ix.cuts }

// FrameBit returns the bit offset of coded frame c's header. At a closed
// cut c this is where the suffix segment's decode starts.
func (ix *GOPIndex) FrameBit(c int) int { return ix.frameBit[c] }

// TranscodeCuts returns the cut positions usable by a segment-parallel
// transcode into a (gopN, gopM) output structure: positions closed on
// both the decode side (this index) and the re-encode side (the output
// GOP structure over the same frame count).
func (ix *GOPIndex) TranscodeCuts(gopN, gopM int) []int {
	enc := EncodeClosedCuts(ix.Seq.Frames, gopN, gopM)
	var out []int
	i, j := 0, 0
	for i < len(ix.cuts) && j < len(enc) {
		switch {
		case ix.cuts[i] < enc[j]:
			i++
		case ix.cuts[i] > enc[j]:
			j++
		default:
			out = append(out, ix.cuts[i])
			i++
			j++
		}
	}
	return out
}

// IndexGOPs scans a bitstream once — entropy layer only, no
// reconstruction — and returns its GOP index. The scan validates the
// frame structure exactly as the decoder does (reference preconditions,
// TRef bijection with [0, Frames)), so a stream that indexes cleanly
// also decodes cleanly through the frame layer. onFrame, when non-nil,
// is called before each coded frame's header is parsed — the serving
// layer's preemption checkpoint, mirroring DecodeOptions.OnFrame; a
// non-nil return aborts the scan with that error.
func IndexGOPs(stream []byte, onFrame func(coded int) error) (*GOPIndex, error) {
	r := NewBitReader(stream)
	seq, err := ParseSeqHeader(r)
	if err != nil {
		return nil, err
	}
	ix := &GOPIndex{
		Seq:      seq,
		frameBit: make([]int, seq.Frames),
		deps:     make([]frameDep, seq.Frames),
	}
	seen := make([]bool, seq.Frames)
	refA, refB := -1, -1 // reference chain over display indices
	var mvp MVPredictor
	var tok TokenMB // arena reused across every macroblock of the scan
	for fi := 0; fi < seq.Frames; fi++ {
		if onFrame != nil {
			if err := onFrame(fi); err != nil {
				return nil, err
			}
		}
		ix.frameBit[fi] = r.BitPos()
		hdr, err := ParseFrameHdr(r)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", fi, err)
		}
		if hdr.Type != FrameI && refB < 0 {
			return nil, fmt.Errorf("frame %d: %w: %v frame before first reference", fi, ErrBitstream, hdr.Type)
		}
		if hdr.Type == FrameB && refA < 0 {
			return nil, fmt.Errorf("frame %d: %w: B frame with a single reference", fi, ErrBitstream)
		}
		di := int(hdr.TRef)
		if di >= seq.Frames {
			return nil, fmt.Errorf("frame %d: %w: display index %d out of range [0,%d)", fi, ErrBitstream, di, seq.Frames)
		}
		if seen[di] {
			return nil, fmt.Errorf("frame %d: %w: duplicate display index %d", fi, ErrBitstream, di)
		}
		seen[di] = true
		d := frameDep{tref: di, fwd: -1, bwd: -1}
		switch hdr.Type {
		case FrameP:
			d.fwd = refB
		case FrameB:
			d.fwd, d.bwd = refA, refB
		}
		ix.deps[fi] = d
		if hdr.Type != FrameB {
			refA, refB = refB, di
		}
		// Entropy-only frame body walk: the macroblock layer is
		// variable-length, so finding the next frame header requires the
		// full syntax parse — but none of the reconstruction.
		for mby := 0; mby < seq.MBRows; mby++ {
			mvp.RowStart()
			for mbx := 0; mbx < seq.MBCols; mbx++ {
				if _, err := ParseMBSyntaxInto(r, hdr.Type, &mvp, &tok); err != nil {
					return nil, fmt.Errorf("frame %d: mb (%d,%d): %w", fi, mbx, mby, err)
				}
			}
		}
	}
	ix.cuts = closedCuts(ix.deps)
	return ix, nil
}

// EncodeClosedCuts returns the closed cut positions of the GOP structure
// an encoder produces for n display frames with the given parameters:
// the positions where a segment encoder can start with an empty
// reference chain and still produce the bits a single whole-sequence
// encoder would. Computed by the same prefix/suffix dependency analysis
// as the decode side, over a simulated reference chain in coded order.
func EncodeClosedCuts(n, gopN, gopM int) []int {
	types := GOPTypes(n, gopN, gopM)
	order := CodedOrder(types)
	deps := make([]frameDep, n)
	refA, refB := -1, -1
	for c, di := range order {
		d := frameDep{tref: di, fwd: -1, bwd: -1}
		switch types[di] {
		case FrameP:
			d.fwd = refB
		case FrameB:
			d.fwd, d.bwd = refA, refB
		}
		deps[c] = d
		if types[di] != FrameB {
			refA, refB = refB, di
		}
	}
	return closedCuts(deps)
}

// closedCuts computes the closed cut positions of a coded-order
// dependency sequence: positions c with prefixMaxTref(c-1) == c-1 and
// suffix dependency minimum >= c.
func closedCuts(deps []frameDep) []int {
	n := len(deps)
	if n == 0 {
		return nil
	}
	// sufMin[c]: minimum display index that any coded frame in [c, n)
	// touches (its own tref or either reference).
	sufMin := make([]int, n+1)
	sufMin[n] = n
	for c := n - 1; c >= 0; c-- {
		m := deps[c].tref
		if f := deps[c].fwd; f >= 0 && f < m {
			m = f
		}
		if b := deps[c].bwd; b >= 0 && b < m {
			m = b
		}
		if sufMin[c+1] < m {
			m = sufMin[c+1]
		}
		sufMin[c] = m
	}
	var cuts []int
	prefixMax := -1
	for c := 1; c < n; c++ {
		if t := deps[c-1].tref; t > prefixMax {
			prefixMax = t
		}
		if prefixMax == c-1 && sufMin[c] >= c {
			cuts = append(cuts, c)
		}
	}
	return cuts
}

// PartitionSegments splits the display range [0, n) into at most k
// spans, cutting only at the given closed cut positions (ascending,
// within (0, n)) and aiming for balanced span lengths. Always returns at
// least one span; returns fewer than k when too few cuts exist.
func PartitionSegments(n, k int, cuts []int) [][2]int {
	spans := [][2]int{}
	prev := 0
	if k > 1 && len(cuts) > 0 {
		ci := 0
		for i := 1; i < k; i++ {
			target := i * n / k
			for ci < len(cuts) && cuts[ci] <= prev {
				ci++
			}
			if ci >= len(cuts) {
				break
			}
			// cuts ascend, so distance to target decreases then increases:
			// take the last cut that improves on its predecessor.
			best := ci
			for j := ci + 1; j < len(cuts); j++ {
				if absInt(cuts[j]-target) <= absInt(cuts[best]-target) {
					best = j
				} else {
					break
				}
			}
			spans = append(spans, [2]int{prev, cuts[best]})
			prev = cuts[best]
			ci = best + 1
		}
	}
	return append(spans, [2]int{prev, n})
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
