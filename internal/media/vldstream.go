package media

import (
	"errors"
	"fmt"
)

// ErrNeedData is returned by StreamVLD.Next when the available input
// bytes end in the middle of a syntax element. The caller extends the
// input (Extend) and retries; the parser position is unchanged. This is
// the software analogue of the Eclipse VLD coprocessor's data-dependent
// input behaviour: it cannot know how many input bytes a macroblock needs
// before parsing it (paper Section 4.2).
var ErrNeedData = errors.New("media: need more input data")

// VLDEventKind discriminates StreamVLD events.
type VLDEventKind uint8

const (
	// EventSeq reports the parsed sequence header (first event).
	EventSeq VLDEventKind = iota
	// EventFrame reports a frame header; macroblock events follow.
	EventFrame
	// EventMB reports one parsed macroblock (decision + tokens).
	EventMB
	// EventEnd reports the end of the sequence (all frames parsed).
	EventEnd
)

// VLDEvent is one unit of streaming VLD output.
type VLDEvent struct {
	Kind  VLDEventKind
	Seq   SeqHeader  // EventSeq
	Frame FrameHdr   // EventFrame
	MB    MBDecision // EventMB
	Tok   TokenMB    // EventMB
	Bits  int        // bitstream bits consumed by this event
}

// StreamVLD is an incremental variable-length decoder over a bitstream
// that arrives in chunks. Each Next call parses exactly one syntax unit
// (sequence header, frame header, or macroblock); if the input runs dry
// mid-unit, Next returns ErrNeedData with all parser state rolled back so
// the unit can be re-parsed after more input arrives — mirroring the
// Eclipse coprocessor pattern of aborting a processing step on a denied
// GetSpace and re-executing it later.
type StreamVLD struct {
	r        *BitReader
	seqDone  bool
	seq      SeqHeader
	frameIdx int // coded frames completed
	mbIdx    int // macroblocks parsed in the current frame
	inFrame  bool
	hdr      FrameHdr
	mvp      MVPredictor
	done     bool
	tok      TokenMB // reused across macroblocks (event arena)
}

// NewStreamVLD returns a parser with no input yet.
func NewStreamVLD() *StreamVLD {
	return &StreamVLD{r: NewBitReader(nil)}
}

// Extend appends input bytes received from the bitstream port.
func (v *StreamVLD) Extend(data []byte) { v.r.Extend(data) }

// Compact discards fully consumed input bytes and returns the count,
// which the coprocessor model uses to commit (PutSpace) its input.
func (v *StreamVLD) Compact() int { return v.r.Compact() }

// Seq returns the sequence header; valid after the EventSeq event.
func (v *StreamVLD) Seq() SeqHeader { return v.seq }

// vldState snapshots everything Next mutates, for rollback.
type vldState struct {
	mark     readerMark
	seqDone  bool
	seq      SeqHeader
	frameIdx int
	mbIdx    int
	inFrame  bool
	hdr      FrameHdr
	mvp      MVPredictor
	done     bool
}

func (v *StreamVLD) save() vldState {
	return vldState{
		mark: v.r.Mark(), seqDone: v.seqDone, seq: v.seq,
		frameIdx: v.frameIdx, mbIdx: v.mbIdx, inFrame: v.inFrame,
		hdr: v.hdr, mvp: v.mvp, done: v.done,
	}
}

func (v *StreamVLD) restore(s vldState) {
	v.r.Reset(s.mark)
	v.seqDone, v.seq = s.seqDone, s.seq
	v.frameIdx, v.mbIdx, v.inFrame = s.frameIdx, s.mbIdx, s.inFrame
	v.hdr, v.mvp, v.done = s.hdr, s.mvp, s.done
}

// Next parses and returns the next event. It returns ErrNeedData (with
// state rolled back) when more input is required, or a wrapped
// ErrBitstream on corruption.
func (v *StreamVLD) Next() (VLDEvent, error) {
	if v.done {
		return VLDEvent{Kind: EventEnd}, nil
	}
	saved := v.save()
	ev, err := v.parseOne()
	if err != nil {
		pastEnd := v.r.PastEnd() // check before rollback clears it
		v.restore(saved)
		if pastEnd {
			return VLDEvent{}, ErrNeedData
		}
		return VLDEvent{}, err
	}
	return ev, nil
}

func (v *StreamVLD) parseOne() (VLDEvent, error) {
	start := v.r.BitPos()
	if !v.seqDone {
		seq, err := ParseSeqHeader(v.r)
		if err != nil {
			return VLDEvent{}, err
		}
		v.seq = seq
		v.seqDone = true
		if seq.Frames == 0 {
			v.done = true
		}
		return VLDEvent{Kind: EventSeq, Seq: seq, Bits: v.r.BitPos() - start}, nil
	}
	if !v.inFrame {
		hdr, err := ParseFrameHdr(v.r)
		if err != nil {
			return VLDEvent{}, err
		}
		v.hdr = hdr
		v.inFrame = true
		v.mbIdx = 0
		v.mvp = MVPredictor{}
		return VLDEvent{Kind: EventFrame, Frame: hdr, Bits: v.r.BitPos() - start}, nil
	}
	if v.mbIdx%v.seq.MBCols == 0 {
		v.mvp.RowStart()
	}
	dec, err := ParseMBSyntaxInto(v.r, v.hdr.Type, &v.mvp, &v.tok)
	if err != nil {
		return VLDEvent{}, err
	}
	// ev.Tok's event views alias the parser-owned arena: valid until the
	// next Next call (consumers copy what they keep — see tokens.go).
	ev := VLDEvent{Kind: EventMB, MB: dec, Tok: v.tok, Frame: v.hdr, Bits: v.r.BitPos() - start}
	v.mbIdx++
	if v.mbIdx == v.seq.MBCount() {
		v.inFrame = false
		v.frameIdx++
		if v.frameIdx == v.seq.Frames {
			v.done = true
		}
	}
	return ev, nil
}

// Done reports whether the whole sequence has been parsed.
func (v *StreamVLD) Done() bool { return v.done }

// Progress describes the parser position for diagnostics.
func (v *StreamVLD) Progress() string {
	return fmt.Sprintf("frame %d/%d mb %d", v.frameIdx, v.seq.Frames, v.mbIdx)
}
