package media

import "fmt"

// This file decomposes the codec into the pipeline-stage kernels that the
// Eclipse coprocessor models execute (VLD, RLSQ, DCT, MC/ME). The
// monolithic Encoder/Decoder are built from the same functions, so the
// reference codec, the Kahn-network codec, and the cycle-accurate
// Eclipse-mapped codec are bit-exact by construction.

// TokenMB is the entropy-decoded representation of one macroblock's
// coefficient data: the coded block pattern and, for each coded block,
// its run/level events in zigzag order. It is what the VLD sends to the
// RLSQ coprocessor.
//
// The per-block Events slices are views into a single flat arena owned
// by the TokenMB, so a reused token (Reset + one of the *Into parsers)
// decodes macroblocks without allocating. Ownership rule: the Events
// views are valid until the owning token's next Reset; consumers that
// need the events past that point must copy them.
type TokenMB struct {
	CBP    byte
	Events [BlocksPerMB][]RunLevel

	// arena is the flat backing store for the Events views. One backing
	// array, per-block offsets realized as full-capacity-clamped slices.
	arena []RunLevel
}

// TokenCount returns the total number of run/level events, the main cost
// driver for the RLSQ coprocessor.
func (t *TokenMB) TokenCount() int {
	n := 0
	for b := range t.Events {
		n += len(t.Events[b])
	}
	return n
}

// DecideMB performs the encoder's mode decision for the macroblock mb at
// pixel position (x, y): motion search against the frame-type-appropriate
// references and the intra/inter choice. ops reports search candidate
// evaluations (the ME coprocessor cost driver).
func DecideMB(mb *MBPixels, ftype FrameType, x, y int, fwdRef, bwdRef *Frame, searchRange int, halfPel bool) (dec MBDecision, ops int) {
	if ftype == FrameI {
		return MBDecision{Mode: PredIntra}, 0
	}
	search := func(ref *Frame) SearchResult {
		res := MotionSearch(mb, ref, x, y, searchRange)
		if halfPel {
			mv, sad, extra := RefineHalfPel(mb, ref, x, y, res.MV, res.SAD)
			res.MV, res.SAD = mv, sad
			res.Ops += extra
		}
		return res
	}
	act := IntraActivity(mb)
	if ftype == FrameP {
		res := search(fwdRef)
		if res.SAD > act {
			return MBDecision{Mode: PredIntra}, res.Ops
		}
		return MBDecision{Mode: PredFwd, FMV: res.MV}, res.Ops
	}
	f := search(fwdRef)
	b := search(bwdRef)
	ops = f.Ops + b.Ops
	var bi MBPixels
	PredictHP(&bi, PredBi, fwdRef, bwdRef, x, y, f.MV, b.MV, halfPel)
	biSAD := 0
	for i := range bi {
		d := int(mb[i]) - int(bi[i])
		if d < 0 {
			d = -d
		}
		biSAD += d
	}
	best, mode := f.SAD, PredFwd
	if b.SAD < best {
		best, mode = b.SAD, PredBwd
	}
	if biSAD < best {
		best, mode = biSAD, PredBi
	}
	if best > act {
		return MBDecision{Mode: PredIntra}, ops
	}
	return MBDecision{Mode: mode, FMV: f.MV, BMV: b.MV}, ops
}

// TransformMB is the forward transform-and-quantize path for one
// macroblock's residual blocks (FDCT → zigzag → quantize): the work the
// DCT and RLSQ coprocessors perform in the encode direction. It returns
// the quantized zigzag-ordered blocks, the coded block pattern, and the
// nonzero coefficient count.
func TransformMB(resid *[BlocksPerMB]Block, intra bool, q int) (qzz [BlocksPerMB]Block, cbp byte, nz int) {
	for b := 0; b < BlocksPerMB; b++ {
		var coef, zz Block
		FDCT(&resid[b], &coef)
		ZigzagScan(&coef, &zz)
		if intra {
			Quantize(&zz, &qzz[b], q)
		} else {
			QuantizeInter(&zz, &qzz[b], q)
		}
		if n := NonzeroCount(&qzz[b]); n > 0 {
			cbp |= 1 << b
			nz += n
		}
	}
	return qzz, cbp, nz
}

// RLSQTokensToCoef is the decode-direction RLSQ kernel for one block:
// run/level expansion, inverse zigzag scan, and inverse quantization.
func RLSQTokensToCoef(events []RunLevel, q int, out *Block) error {
	var zz, dzz Block
	if !RunLengthExpand(events, &zz) {
		return fmt.Errorf("%w: run/level overflow", ErrBitstream)
	}
	Dequantize(&zz, &dzz, q)
	InverseZigzag(&dzz, out)
	return nil
}

// RLSQDecodeMB applies RLSQTokensToCoef to every coded block of a
// macroblock; uncoded blocks come out zero.
func RLSQDecodeMB(tok *TokenMB, q int, out *[BlocksPerMB]Block) error {
	for b := 0; b < BlocksPerMB; b++ {
		if tok.CBP&(1<<b) == 0 {
			out[b] = Block{}
			continue
		}
		if err := RLSQTokensToCoef(tok.Events[b], q, &out[b]); err != nil {
			return err
		}
	}
	return nil
}

// RLSQEncodeBlockInto is the encode-direction RLSQ kernel for one block:
// zigzag scan and quantization producing run/level events published as
// block b of the caller-owned token (zero-alloc on token reuse). It also
// returns the quantized zigzag block, which feeds the encoder's local
// reconstruction path.
func RLSQEncodeBlockInto(coef *Block, intra bool, q int, tok *TokenMB, b int) (qzz Block) {
	var zz Block
	ZigzagScan(coef, &zz)
	if intra {
		Quantize(&zz, &qzz, q)
	} else {
		QuantizeInter(&zz, &qzz, q)
	}
	tok.SetBlockRunLength(b, &qzz)
	return qzz
}

// RLSQEncodeBlock is the allocating convenience form of
// RLSQEncodeBlockInto, returning a freshly allocated event slice.
func RLSQEncodeBlock(coef *Block, intra bool, q int) (qzz Block, events []RunLevel) {
	var zz Block
	ZigzagScan(coef, &zz)
	if intra {
		Quantize(&zz, &qzz, q)
	} else {
		QuantizeInter(&zz, &qzz, q)
	}
	return qzz, RunLength(&qzz)
}

// IDCTMB applies the inverse DCT to each block of a macroblock. Passing
// cbp lets the DCT coprocessor skip (and not charge cycles for) uncoded
// blocks, which stay zero.
func IDCTMB(coef *[BlocksPerMB]Block, cbp byte, out *[BlocksPerMB]Block) {
	for b := 0; b < BlocksPerMB; b++ {
		if cbp&(1<<b) == 0 {
			out[b] = Block{}
			continue
		}
		IDCT(&coef[b], &out[b])
	}
}

// IsSkipMB implements the P-frame skip rule: forward prediction at zero
// motion with no coded residual.
func IsSkipMB(ftype FrameType, dec MBDecision, cbp byte) bool {
	return ftype == FrameP && dec.Mode == PredFwd && dec.FMV == (MV{}) && cbp == 0
}

// EncodeMBSyntax writes one macroblock's syntax: mode/skip bits, motion
// vector differences against mvp, the coded block pattern, and the
// run/level VLCs. A dec.Mode of PredSkip emits a P-frame skip macroblock
// (qzz is then ignored). The predictor is updated in place.
func EncodeMBSyntax(w *BitWriter, ftype FrameType, dec MBDecision, mvp *MVPredictor, cbp byte, qzz *[BlocksPerMB]Block) {
	if dec.Mode == PredSkip {
		if ftype != FrameP {
			panic("media: skip macroblock outside P frame")
		}
		w.WriteBit(1)
		mvp.Update(PredSkip, MV{}, MV{})
		return
	}
	switch ftype {
	case FrameI:
		if dec.Mode != PredIntra {
			panic("media: non-intra macroblock in I frame")
		}
	case FrameP:
		w.WriteBit(0) // not skipped
		if dec.Mode == PredIntra {
			w.WriteBit(1)
		} else {
			w.WriteBit(0)
			w.WriteSE(int32(dec.FMV.X - mvp.Fwd.X))
			w.WriteSE(int32(dec.FMV.Y - mvp.Fwd.Y))
		}
	case FrameB:
		w.WriteBits(uint32(bModeCode(dec.Mode)), 2)
		if dec.Mode == PredFwd || dec.Mode == PredBi {
			w.WriteSE(int32(dec.FMV.X - mvp.Fwd.X))
			w.WriteSE(int32(dec.FMV.Y - mvp.Fwd.Y))
		}
		if dec.Mode == PredBwd || dec.Mode == PredBi {
			w.WriteSE(int32(dec.BMV.X - mvp.Bwd.X))
			w.WriteSE(int32(dec.BMV.Y - mvp.Bwd.Y))
		}
	}
	mvp.Update(dec.Mode, dec.FMV, dec.BMV)
	w.WriteBits(uint32(cbp), 4)
	for b := 0; b < BlocksPerMB; b++ {
		if cbp&(1<<b) == 0 {
			continue
		}
		// Emit the run/level VLCs directly from the zigzag scan instead
		// of materializing an intermediate []RunLevel: bit-identical to
		// encoding RunLength(&qzz[b]), without the allocation.
		run := 0
		for _, c := range qzz[b] {
			if c == 0 {
				run++
				continue
			}
			EncodeRunLevel(w, RunLevel{Run: run, Level: int32(c)})
			run = 0
		}
		EncodeEOB(w)
	}
}

// ParseMBSyntaxInto reads one macroblock's syntax (the VLD kernel) into
// a caller-owned token: the recovered coding decision (with absolute
// motion vectors) and the coefficient tokens. Skipped macroblocks return
// Mode PredSkip with an empty token. The predictor is updated in place.
// tok is Reset first; reusing one token across macroblocks makes the
// entropy-decode path allocation-free (see the arena ownership rules in
// tokens.go).
func ParseMBSyntaxInto(r *BitReader, ftype FrameType, mvp *MVPredictor, tok *TokenMB) (MBDecision, error) {
	tok.Reset()
	dec := MBDecision{Mode: PredIntra}
	switch ftype {
	case FrameI:
		// always intra
	case FrameP:
		if r.ReadBit() == 1 {
			mvp.Update(PredSkip, MV{}, MV{})
			return MBDecision{Mode: PredSkip}, r.Err()
		}
		if r.ReadBit() == 1 {
			dec.Mode = PredIntra
		} else {
			dec.Mode = PredFwd
			dec.FMV.X = mvp.Fwd.X + int16(r.ReadSE())
			dec.FMV.Y = mvp.Fwd.Y + int16(r.ReadSE())
		}
	case FrameB:
		dec.Mode = bModeFromCode(r.ReadBits(2))
		if dec.Mode == PredFwd || dec.Mode == PredBi {
			dec.FMV.X = mvp.Fwd.X + int16(r.ReadSE())
			dec.FMV.Y = mvp.Fwd.Y + int16(r.ReadSE())
		}
		if dec.Mode == PredBwd || dec.Mode == PredBi {
			dec.BMV.X = mvp.Bwd.X + int16(r.ReadSE())
			dec.BMV.Y = mvp.Bwd.Y + int16(r.ReadSE())
		}
	}
	mvp.Update(dec.Mode, dec.FMV, dec.BMV)

	tok.CBP = byte(r.ReadBits(4))
	for b := 0; b < BlocksPerMB; b++ {
		if tok.CBP&(1<<b) == 0 {
			continue
		}
		if err := parseBlockEventsInto(r, tok, b); err != nil {
			return dec, err
		}
	}
	return dec, r.Err()
}

// ParseMBSyntax is the allocating convenience form of ParseMBSyntaxInto:
// each call returns a token with its own backing storage.
func ParseMBSyntax(r *BitReader, ftype FrameType, mvp *MVPredictor) (MBDecision, TokenMB, error) {
	var tok TokenMB
	dec, err := ParseMBSyntaxInto(r, ftype, mvp, &tok)
	return dec, tok, err
}

// RefChain tracks the decoder's (or encoder's) last two reference frames
// and selects the prediction references per frame type: P frames predict
// from the newest reference, B frames forward from the older and backward
// from the newer.
type RefChain struct {
	A, B *Frame // A older, B newer
}

// Refs returns the forward and backward reference for a frame type.
func (rc *RefChain) Refs(ftype FrameType) (fwd, bwd *Frame) {
	if ftype == FrameB {
		return rc.A, rc.B
	}
	return rc.B, nil
}

// Advance records a newly reconstructed frame as the newest reference if
// it is a reference frame (I or P); B frames do not become references.
func (rc *RefChain) Advance(recon *Frame, ftype FrameType) {
	if ftype != FrameB {
		rc.A, rc.B = rc.B, recon
	}
}
