package media

// Parity, lifecycle, and steady-state allocation guards for the
// pipeline-parallel decoder. The contract under test: for ANY stream
// (valid, truncated, corrupted) and ANY worker count, DecodeWithOptions
// returns byte-identical frames and an identical error chain to the
// serial reference path, never leaks a pooled frame, and reconstructs
// rows without allocating.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// parityStreams builds a family of streams covering every prediction
// mode: IBBP with half-pel motion, IPPP full-pel, a single-MB clip, and
// the canonical Fig. 10 GOP.
func parityStreams(t testing.TB) map[string][]byte {
	t.Helper()
	build := func(w, h, frames, gopM, q int, halfPel bool) []byte {
		src := DefaultSource(w, h)
		clip := NewSource(src).Frames(frames)
		cfg := DefaultCodec(w, h)
		cfg.Q = q
		cfg.GOPM = gopM
		cfg.HalfPel = halfPel
		stream, _, _, err := Encode(cfg, clip)
		if err != nil {
			t.Fatalf("encode %dx%d: %v", w, h, err)
		}
		return stream
	}
	return map[string][]byte{
		"fig10-ibbp":  goldenStream(t),
		"halfpel":     build(64, 48, 8, 3, 4, true),
		"ippp":        build(48, 32, 6, 1, 8, false),
		"single-mb":   build(16, 16, 3, 1, 6, false),
		"tall-motion": build(32, 96, 7, 3, 3, true),
	}
}

// decodeBoth decodes with 1 worker and with `workers`, asserting full
// parity: identical Seq, frame headers, pixels, and error text.
func decodeBoth(t *testing.T, stream []byte, workers int) {
	t.Helper()
	want, wantErr := DecodeWithOptions(stream, DecodeOptions{Workers: 1})
	got, gotErr := DecodeWithOptions(stream, DecodeOptions{Workers: workers})
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("workers=%d: error presence diverged: serial %v, parallel %v", workers, wantErr, gotErr)
	}
	if wantErr != nil {
		if wantErr.Error() != gotErr.Error() {
			t.Fatalf("workers=%d: error text diverged:\n  serial   %q\n  parallel %q", workers, wantErr, gotErr)
		}
		if errors.Is(wantErr, ErrBitstream) != errors.Is(gotErr, ErrBitstream) {
			t.Fatalf("workers=%d: ErrBitstream classification diverged", workers)
		}
		if got != nil {
			t.Fatalf("workers=%d: non-nil result alongside error", workers)
		}
		return
	}
	if want.Seq != got.Seq {
		t.Fatalf("workers=%d: sequence header diverged: %+v vs %+v", workers, want.Seq, got.Seq)
	}
	if len(want.Coded) != len(got.Coded) {
		t.Fatalf("workers=%d: %d coded frames, want %d", workers, len(got.Coded), len(want.Coded))
	}
	for i := range want.Coded {
		if want.Coded[i].Hdr != got.Coded[i].Hdr {
			t.Fatalf("workers=%d: frame %d header diverged", workers, i)
		}
		if !want.Coded[i].Frame.Equal(got.Coded[i].Frame) {
			t.Fatalf("workers=%d: frame %d pixels diverged", workers, i)
		}
	}
}

// TestDecodeParallelParity sweeps worker counts 1..8 over the stream
// family: the acceptance gate for requirement (a) of the pipeline split.
func TestDecodeParallelParity(t *testing.T) {
	for name, stream := range parityStreams(t) {
		t.Run(name, func(t *testing.T) {
			for workers := 1; workers <= 8; workers++ {
				decodeBoth(t, stream, workers)
			}
		})
	}
}

// TestDecodeParallelParityCorrupt checks error parity on malformed
// inputs: dense truncation over a small stream, sparse truncation over
// the Fig. 10 stream, and byte corruption (which trips run/level
// overflows, bad markers, and reference-order violations mid-stream).
func TestDecodeParallelParityCorrupt(t *testing.T) {
	streams := parityStreams(t)
	small := streams["single-mb"]
	for cut := 0; cut <= len(small); cut++ {
		decodeBoth(t, small[:cut], 4)
	}
	big := streams["fig10-ibbp"]
	for cut := 0; cut < len(big); cut += len(big)/61 + 1 {
		decodeBoth(t, big[:cut], 3)
	}
	corrupt := make([]byte, len(small))
	for i := 0; i < len(small); i++ {
		copy(corrupt, small)
		corrupt[i] ^= 0xA5
		decodeBoth(t, corrupt, 4)
	}
}

// TestDecodeOptionsLifecycle pins the frame-ownership contract of the
// hooks: on success every created frame is returned and none recycled;
// on parse errors and OnFrame cancellation every created frame is
// recycled, for both the serial and parallel paths.
func TestDecodeOptionsLifecycle(t *testing.T) {
	stream := parityStreams(t)["halfpel"]
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			counted := func() (*DecodeOptions, *int, *int) {
				created, recycled := new(int), new(int)
				return &DecodeOptions{
					Workers:  workers,
					NewFrame: func(w, h int) *Frame { *created++; return NewFrame(w, h) },
					Recycle:  func(*Frame) { *recycled++ },
				}, created, recycled
			}

			opts, created, recycled := counted()
			res, err := DecodeWithOptions(stream, *opts)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if *created != len(res.Coded) || *recycled != 0 {
				t.Fatalf("success path: created %d, recycled %d, returned %d", *created, *recycled, len(res.Coded))
			}

			opts, created, recycled = counted()
			if _, err := DecodeWithOptions(stream[:len(stream)*3/4], *opts); err == nil {
				t.Fatal("truncated stream decoded without error")
			}
			if *created == 0 || *created != *recycled {
				t.Fatalf("error path: created %d but recycled %d", *created, *recycled)
			}

			opts, created, recycled = counted()
			cancel := errors.New("preempted")
			opts.OnFrame = func(coded int) error {
				if coded == 3 {
					return cancel
				}
				return nil
			}
			if _, err := DecodeWithOptions(stream, *opts); !errors.Is(err, cancel) {
				t.Fatalf("cancellation returned %v, want %v", err, cancel)
			}
			if *created != 3 || *recycled != 3 {
				t.Fatalf("cancel path: created %d, recycled %d, want 3/3", *created, *recycled)
			}
		})
	}
}

// TestDecodeWorkersDefault checks that Decode honors the DecodeWorkers
// knob (the serving layer overrides per tenant via DecodeOptions).
func TestDecodeWorkersDefault(t *testing.T) {
	stream := parityStreams(t)["ippp"]
	old := DecodeWorkers
	defer func() { DecodeWorkers = old }()
	want, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	DecodeWorkers = 5
	got, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Coded {
		if !want.Coded[i].Frame.Equal(got.Coded[i].Frame) {
			t.Fatalf("frame %d diverged under DecodeWorkers=5", i)
		}
	}
}

// TestDisplayFramesInto covers the caller-provided-slice variant: slice
// reuse without reallocation, clearing of stale entries, growth, and
// equivalence with DisplayFrames.
func TestDisplayFramesInto(t *testing.T) {
	res, err := Decode(parityStreams(t)["ippp"])
	if err != nil {
		t.Fatal(err)
	}
	want := res.DisplayFrames()

	scratch := make([]*Frame, 0, len(want)+4)
	got := res.DisplayFramesInto(scratch)
	if &got[0] != &scratch[:1][0] {
		t.Fatal("DisplayFramesInto reallocated despite sufficient capacity")
	}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d differs from DisplayFrames", i)
		}
	}
	// Stale entries beyond this decode's frames must be cleared.
	stale := NewFrame(MBSize, MBSize)
	for i := range got {
		got[i] = stale
	}
	got = res.DisplayFramesInto(got)
	for i := range got {
		if got[i] == stale {
			t.Fatalf("entry %d not cleared before reuse", i)
		}
	}
	// Growth path: undersized slice is replaced, not written out of range.
	tiny := make([]*Frame, 1)
	grown := res.DisplayFramesInto(tiny)
	if len(grown) != len(want) {
		t.Fatalf("grown len %d, want %d", len(grown), len(want))
	}
	if n := testing.AllocsPerRun(100, func() { scratch = res.DisplayFramesInto(scratch) }); n != 0 {
		t.Fatalf("DisplayFramesInto allocates %.1f per call on a warm slice", n)
	}
}

// FuzzDecodeParallelParity is the adversarial form of the parity sweep:
// arbitrary byte streams must decode to byte-identical frames and
// identical errors at workers=4 vs the serial path.
func FuzzDecodeParallelParity(f *testing.F) {
	streams := parityStreams(f)
	f.Add([]byte{})
	f.Add(streams["single-mb"])
	f.Add(streams["ippp"])
	f.Add(streams["halfpel"][:len(streams["halfpel"])/2])
	f.Add(streams["fig10-ibbp"][:512])
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			return // bound per-input work; coverage lives in the syntax, not the length
		}
		decodeBoth(t, data, 4)
	})
}

// BenchmarkDecodeReconstructRow measures the steady-state reconstruction
// worker body (RLSQ + IDCT + Predict + Reconstruct + SetMB for one
// macroblock row of the Fig. 10 I frame) — the requirement-(b) guard:
// it must not allocate.
func BenchmarkDecodeReconstructRow(b *testing.B) {
	stream := goldenStream(b)
	r := NewBitReader(stream)
	seq, err := ParseSeqHeader(r)
	if err != nil {
		b.Fatal(err)
	}
	hdr, err := ParseFrameHdr(r)
	if err != nil {
		b.Fatal(err)
	}
	df := newDecFrame(NewFrame(seq.W(), seq.H()), seq.MBRows)
	bat := &decRowBatch{mbs: make([]decMB, seq.MBCols)}
	bat.prep(df, nil, nil, &seq, 0)
	var mvp MVPredictor
	mvp.RowStart()
	for mbx := 0; mbx < seq.MBCols; mbx++ {
		mb := &bat.mbs[mbx]
		dec, err := ParseMBSyntaxInto(r, hdr.Type, &mvp, &mb.tok)
		if err != nil {
			b.Fatal(err)
		}
		mb.dec = dec
		bat.n++
	}
	bat.computeNeeds(&seq)
	var coef, resid [BlocksPerMB]Block
	var pred, out MBPixels
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		df.done = 0
		df.rowDone[0] = false
		bat.run(&coef, &resid, &pred, &out)
	}
	b.ReportMetric(float64(bat.n), "mb/op")
}

// BenchmarkDecodeGOPWorkers decodes the Fig. 10 stream end to end at
// several worker counts. On multi-core runners workers>1 overlaps the
// entropy parse with reconstruction; on a single hardware thread the
// parallel path's queueing overhead is visible instead (recorded
// honestly — the default worker count tracks GOMAXPROCS).
func BenchmarkDecodeGOPWorkers(b *testing.B) {
	stream := goldenStream(b)
	seq, err := Decode(stream)
	if err != nil {
		b.Fatal(err)
	}
	mbs := seq.Seq.MBCount() * seq.Seq.Frames
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var sink atomic.Uint32
			for i := 0; i < b.N; i++ {
				res, err := DecodeWithOptions(stream, DecodeOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				sink.Add(uint32(res.Coded[0].Frame.Pix[0]))
			}
			b.ReportMetric(float64(mbs), "mb/op")
		})
	}
}
