package media

import "sync"

// FramePool is a free list for per-GOP temporary frames. Decoder loops
// that assemble frames only to use them as motion-compensation
// references (and then drop them when the reference chain advances) can
// recycle the pixel storage instead of allocating a fresh frame per
// coded frame.
//
// Ownership rule: a frame handed to Put must have no other live
// references — the pool will hand it back from a future Get with its
// pixels zeroed, exactly like a fresh NewFrame.
//
// FramePool is not safe for concurrent use; give each goroutine its
// own pool.
type FramePool struct {
	free []*Frame
}

// NewFramePool returns an empty pool.
func NewFramePool() *FramePool { return &FramePool{} }

// Get returns a zeroed w×h frame, reusing pooled storage of matching
// dimensions when available.
func (p *FramePool) Get(w, h int) *Frame {
	for i := len(p.free) - 1; i >= 0; i-- {
		f := p.free[i]
		if f.W != w || f.H != h {
			continue
		}
		p.free[i] = p.free[len(p.free)-1]
		p.free[len(p.free)-1] = nil
		p.free = p.free[:len(p.free)-1]
		for j := range f.Pix {
			f.Pix[j] = 0
		}
		return f
	}
	return NewFrame(w, h)
}

// Put returns a frame to the pool. Put(nil) is a no-op, so callers can
// unconditionally recycle possibly-absent references.
func (p *FramePool) Put(f *Frame) {
	if f == nil {
		return
	}
	p.free = append(p.free, f)
}

// SyncFramePool is a FramePool safe for concurrent use: a process-wide
// frame free list shared across requests, so a long-running server
// reuses pixel storage between jobs instead of allocating fresh frames
// per request. The same ownership rule as FramePool applies: a frame
// handed to Put must have no other live references.
type SyncFramePool struct {
	mu   sync.Mutex
	pool FramePool
	max  int // bound on retained frames; 0 = unbounded
	out  int // frames handed out via Get and not yet returned via Put

	// resident marks frames currently on the free list. A second Put of
	// a resident frame would enter it on the free list twice, and two
	// later Gets would hand the same *Frame to two owners — silent pixel
	// corruption. The guard makes the duplicate Put a counted no-op.
	resident   map[*Frame]struct{}
	doublePuts uint64
}

// NewSyncFramePool returns a concurrency-safe pool retaining at most
// maxRetained frames (0 for no bound).
func NewSyncFramePool(maxRetained int) *SyncFramePool {
	return &SyncFramePool{max: maxRetained}
}

// Get returns a zeroed w×h frame, reusing pooled storage when available.
func (p *SyncFramePool) Get(w, h int) *Frame {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.out++
	f := p.pool.Get(w, h)
	delete(p.resident, f)
	return f
}

// Put returns a frame (or nil, a no-op) to the pool, dropping it when
// the retention bound is reached. Putting a frame that is already
// resident is a broken-ownership bug in the caller; instead of
// corrupting the free list (the same frame handed to two future Gets)
// the duplicate is dropped and counted — see DoublePuts.
func (p *SyncFramePool) Put(f *Frame) {
	if f == nil {
		return
	}
	p.mu.Lock()
	if _, dup := p.resident[f]; dup {
		p.doublePuts++
		p.mu.Unlock()
		return
	}
	p.out--
	if p.max == 0 || len(p.pool.free) < p.max {
		p.pool.Put(f)
		if p.resident == nil {
			p.resident = make(map[*Frame]struct{})
		}
		p.resident[f] = struct{}{}
	}
	p.mu.Unlock()
}

// DoublePuts reports how many Put calls were rejected because the frame
// was already on the free list. Nonzero means a caller released a frame
// it no longer owned; tests assert it stays zero.
func (p *SyncFramePool) DoublePuts() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.doublePuts
}

// PutAll recycles a batch of frames, ignoring nils.
func (p *SyncFramePool) PutAll(frames []*Frame) {
	for _, f := range frames {
		p.Put(f)
	}
}

// Retained reports how many frames the pool currently holds.
func (p *SyncFramePool) Retained() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pool.free)
}

// Outstanding reports Get calls minus Put calls: the frames currently
// checked out of the pool. Leak detectors (lifecycle tests that cancel
// or preempt jobs mid-pipeline) assert this returns to zero once every
// job using the pool has unwound. Frames allocated elsewhere and handed
// to Put make the count go negative, so keep pool traffic symmetric.
func (p *SyncFramePool) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out
}
