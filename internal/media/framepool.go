package media

// FramePool is a free list for per-GOP temporary frames. Decoder loops
// that assemble frames only to use them as motion-compensation
// references (and then drop them when the reference chain advances) can
// recycle the pixel storage instead of allocating a fresh frame per
// coded frame.
//
// Ownership rule: a frame handed to Put must have no other live
// references — the pool will hand it back from a future Get with its
// pixels zeroed, exactly like a fresh NewFrame.
//
// FramePool is not safe for concurrent use; give each goroutine its
// own pool.
type FramePool struct {
	free []*Frame
}

// NewFramePool returns an empty pool.
func NewFramePool() *FramePool { return &FramePool{} }

// Get returns a zeroed w×h frame, reusing pooled storage of matching
// dimensions when available.
func (p *FramePool) Get(w, h int) *Frame {
	for i := len(p.free) - 1; i >= 0; i-- {
		f := p.free[i]
		if f.W != w || f.H != h {
			continue
		}
		p.free[i] = p.free[len(p.free)-1]
		p.free[len(p.free)-1] = nil
		p.free = p.free[:len(p.free)-1]
		for j := range f.Pix {
			f.Pix[j] = 0
		}
		return f
	}
	return NewFrame(w, h)
}

// Put returns a frame to the pool. Put(nil) is a no-op, so callers can
// unconditionally recycle possibly-absent references.
func (p *FramePool) Put(f *Frame) {
	if f == nil {
		return
	}
	p.free = append(p.free, f)
}
