package media

// Flat per-macroblock event arena.
//
// The decode paths used to allocate a fresh []RunLevel per coded block
// (4 per macroblock, every macroblock of every frame). A TokenMB now
// owns one flat arena; the parsers append events there and publish each
// block's events as a sub-slice view. Reusing one TokenMB across
// macroblocks (Reset between them) makes steady-state entropy decode
// allocation-free.
//
// Sizing invariant: the parse paths tolerate at most 64 events per
// block and append the 65th before declaring overflow, so the arena
// reserves 65 slots per block. Appends therefore NEVER reallocate the
// backing array — earlier blocks' Events views stay valid even on the
// overflow error path.

const (
	// maxBlockEvents is the parser's per-block event limit (one event
	// per coefficient of an 8×8 block).
	maxBlockEvents = 64
	// tokenArenaCap is the worst-case arena occupancy: 64 events plus
	// the transient 65th overflow-detection slot, per block.
	tokenArenaCap = BlocksPerMB * (maxBlockEvents + 1)
)

// Reset clears the token for reuse, retaining the arena's capacity so
// steady-state reuse does not allocate. The previously published Events
// views become invalid (they alias the arena being recycled).
func (t *TokenMB) Reset() {
	t.CBP = 0
	t.Events = [BlocksPerMB][]RunLevel{}
	t.arena = t.arena[:0]
}

// ensureArena lazily allocates the worst-case backing array. Lazy so a
// zero-value TokenMB (skip macroblocks, error returns) stays allocation
// free and deep-equal to TokenMB{}.
func (t *TokenMB) ensureArena() {
	if t.arena == nil {
		t.arena = make([]RunLevel, 0, tokenArenaCap)
	}
}

// sealBlock publishes arena[start:] as block b's events. Empty blocks
// publish nil (matching the historical per-block allocation behavior);
// non-empty blocks publish a full-capacity-clamped view so an append on
// the published slice can never clobber later arena contents.
func (t *TokenMB) sealBlock(b, start int) {
	if start == len(t.arena) {
		t.Events[b] = nil
		return
	}
	t.Events[b] = t.arena[start:len(t.arena):len(t.arena)]
}

// SetBlockRunLength run-length encodes the zigzag-ordered block zz into
// the token's arena and publishes it as block b's events: the zero-alloc
// replacement for `tok.Events[b] = RunLength(&zz)`.
func (t *TokenMB) SetBlockRunLength(b int, zz *Block) {
	t.ensureArena()
	start := len(t.arena)
	t.arena = AppendRunLength(t.arena, zz)
	t.sealBlock(b, start)
}
