package media

import (
	"bytes"
	"testing"
)

// TestStreamEncoderBitIdentical proves the push-based encoder emits the
// exact bytes of the batch encoder for B-frame GOPs (reordering) and
// IPPP GOPs (no reordering), including the half-pel mode.
func TestStreamEncoderBitIdentical(t *testing.T) {
	cases := []struct {
		name   string
		frames int
		mut    func(*CodecConfig)
	}{
		{"ibbp", 10, func(c *CodecConfig) {}},
		{"ippp", 7, func(c *CodecConfig) { c.GOPM = 1 }},
		{"halfpel", 9, func(c *CodecConfig) { c.HalfPel = true }},
		{"single", 1, func(c *CodecConfig) {}},
		{"tail-b-promoted", 6, func(c *CodecConfig) { c.GOPN = 12; c.GOPM = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := DefaultSource(96, 80)
			src.Seed = 11
			frames := NewSource(src).Frames(tc.frames)
			cfg := DefaultCodec(96, 80)
			tc.mut(&cfg)

			want, _, wantStats, err := Encode(cfg, frames)
			if err != nil {
				t.Fatal(err)
			}
			se, err := NewStreamEncoder(cfg, len(frames))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range frames {
				if err := se.Push(f); err != nil {
					t.Fatal(err)
				}
			}
			got, gotStats, err := se.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("stream encoder bitstream differs: %d vs %d bytes", len(got), len(want))
			}
			if gotStats.TotalBits() != wantStats.TotalBits() {
				t.Fatalf("stats differ: %d vs %d bits", gotStats.TotalBits(), wantStats.TotalBits())
			}
		})
	}
}

// TestStreamEncoderMisuse covers the declared-count contract.
func TestStreamEncoderMisuse(t *testing.T) {
	cfg := DefaultCodec(32, 32)
	frames := NewSource(DefaultSource(32, 32)).Frames(3)

	se, err := NewStreamEncoder(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Push(frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := se.Close(); err == nil {
		t.Fatal("Close after 1 of 2 frames should fail")
	}

	se, _ = NewStreamEncoder(cfg, 2)
	se.Push(frames[0])
	se.Push(frames[1])
	if err := se.Push(frames[2]); err == nil {
		t.Fatal("Push beyond the declared count should fail")
	}

	if _, err := NewStreamEncoder(cfg, 0); err == nil {
		t.Fatal("zero declared frames should fail")
	}

	se, _ = NewStreamEncoder(cfg, 1)
	if err := se.Push(NewFrame(64, 32)); err == nil {
		t.Fatal("wrong-size frame should fail")
	}
}

// TestSyncFramePool checks reuse, the retention bound, and zeroing.
func TestSyncFramePool(t *testing.T) {
	p := NewSyncFramePool(2)
	a := p.Get(32, 32)
	a.Pix[0] = 99
	b := p.Get(32, 32)
	p.Put(a)
	p.Put(b)
	p.Put(p.Get(32, 32)) // at bound: third Put drops
	if got := p.Retained(); got != 2 {
		t.Fatalf("retained %d frames, want 2 (bound)", got)
	}
	c := p.Get(32, 32)
	if c.Pix[0] != 0 {
		t.Fatal("pooled frame not zeroed on Get")
	}
	if d := p.Get(16, 16); d == nil || d.W != 16 {
		t.Fatal("size-mismatched Get must allocate fresh")
	}
	p.Put(nil) // no-op
	p.PutAll([]*Frame{nil, c})
}
