package media

import (
	"bytes"
	"testing"
)

// TestStreamEncoderBitIdentical proves the push-based encoder emits the
// exact bytes of the batch encoder for B-frame GOPs (reordering) and
// IPPP GOPs (no reordering), including the half-pel mode.
func TestStreamEncoderBitIdentical(t *testing.T) {
	cases := []struct {
		name   string
		frames int
		mut    func(*CodecConfig)
	}{
		{"ibbp", 10, func(c *CodecConfig) {}},
		{"ippp", 7, func(c *CodecConfig) { c.GOPM = 1 }},
		{"halfpel", 9, func(c *CodecConfig) { c.HalfPel = true }},
		{"single", 1, func(c *CodecConfig) {}},
		{"tail-b-promoted", 6, func(c *CodecConfig) { c.GOPN = 12; c.GOPM = 3 }},
		{"deep-reorder", 13, func(c *CodecConfig) { c.GOPN = 10; c.GOPM = 5 }},
		{"gop-m4-halfpel", 11, func(c *CodecConfig) { c.GOPN = 8; c.GOPM = 4; c.HalfPel = true }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := DefaultSource(96, 80)
			src.Seed = 11
			frames := NewSource(src).Frames(tc.frames)
			cfg := DefaultCodec(96, 80)
			tc.mut(&cfg)

			want, _, wantStats, err := Encode(cfg, frames)
			if err != nil {
				t.Fatal(err)
			}
			se, err := NewStreamEncoder(cfg, len(frames))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range frames {
				if err := se.Push(f); err != nil {
					t.Fatal(err)
				}
			}
			got, gotStats, err := se.Close()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("stream encoder bitstream differs: %d vs %d bytes", len(got), len(want))
			}
			if gotStats.TotalBits() != wantStats.TotalBits() {
				t.Fatalf("stats differ: %d vs %d bits", gotStats.TotalBits(), wantStats.TotalBits())
			}
		})
	}
}

// TestStreamEncoderWorkers proves the per-encoder analysis fan-out
// override is perf-only: any Workers value (including mid-stream
// changes) emits the exact batch-encoder bytes.
func TestStreamEncoderWorkers(t *testing.T) {
	src := DefaultSource(96, 80)
	src.Seed = 11
	frames := NewSource(src).Frames(9)
	cfg := DefaultCodec(96, 80)
	cfg.HalfPel = true
	want, _, _, err := Encode(cfg, frames)
	if err != nil {
		t.Fatal(err)
	}
	for workers := 0; workers <= 4; workers++ {
		se, err := NewStreamEncoder(cfg, len(frames))
		if err != nil {
			t.Fatal(err)
		}
		se.Workers = workers
		for i, f := range frames {
			if i == len(frames)/2 {
				se.Workers = workers + 1 // mid-stream change must be safe too
			}
			if err := se.Push(f); err != nil {
				t.Fatal(err)
			}
		}
		got, _, err := se.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d: bitstream differs from batch encoder", workers)
		}
	}
}

// TestStreamEncoderAbort checks that aborting mid-stream recycles every
// frame buffered in the reorder ring exactly once and nothing else.
func TestStreamEncoderAbort(t *testing.T) {
	cfg := DefaultCodec(96, 80)
	cfg.GOPN = 9
	cfg.GOPM = 3
	src := DefaultSource(96, 80)
	src.Seed = 3
	frames := NewSource(src).Frames(8)

	for stopAt := 1; stopAt <= len(frames); stopAt++ {
		recycled := map[*Frame]int{}
		se, err := NewStreamEncoder(cfg, len(frames))
		if err != nil {
			t.Fatal(err)
		}
		se.Recycle = func(f *Frame) { recycled[f]++ }
		for i := 0; i < stopAt; i++ {
			if err := se.Push(frames[i]); err != nil {
				t.Fatal(err)
			}
		}
		se.Abort()
		se.Abort() // idempotent
		for f, n := range recycled {
			if n != 1 {
				t.Errorf("stopAt=%d: frame %p recycled %d times", stopAt, f, n)
			}
		}
		// Every pushed frame is recycled exactly once: either when coded
		// (Push drains the ring) or by Abort for the still-pending ones.
		total := 0
		for _, n := range recycled {
			total += n
		}
		if total != stopAt {
			t.Errorf("stopAt=%d: %d recycles, want %d", stopAt, total, stopAt)
		}
		if err := se.Push(frames[0]); err == nil {
			t.Errorf("stopAt=%d: Push after Abort should fail", stopAt)
		}
	}
}

// TestStreamEncoderMisuse covers the declared-count contract.
func TestStreamEncoderMisuse(t *testing.T) {
	cfg := DefaultCodec(32, 32)
	frames := NewSource(DefaultSource(32, 32)).Frames(3)

	se, err := NewStreamEncoder(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Push(frames[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := se.Close(); err == nil {
		t.Fatal("Close after 1 of 2 frames should fail")
	}

	se, _ = NewStreamEncoder(cfg, 2)
	se.Push(frames[0])
	se.Push(frames[1])
	if err := se.Push(frames[2]); err == nil {
		t.Fatal("Push beyond the declared count should fail")
	}

	if _, err := NewStreamEncoder(cfg, 0); err == nil {
		t.Fatal("zero declared frames should fail")
	}

	se, _ = NewStreamEncoder(cfg, 1)
	if err := se.Push(NewFrame(64, 32)); err == nil {
		t.Fatal("wrong-size frame should fail")
	}
}

// TestSyncFramePool checks reuse, the retention bound, and zeroing.
func TestSyncFramePool(t *testing.T) {
	p := NewSyncFramePool(2)
	a := p.Get(32, 32)
	a.Pix[0] = 99
	b := p.Get(32, 32)
	p.Put(a)
	p.Put(b)
	p.Put(p.Get(32, 32)) // at bound: third Put drops
	if got := p.Retained(); got != 2 {
		t.Fatalf("retained %d frames, want 2 (bound)", got)
	}
	c := p.Get(32, 32)
	if c.Pix[0] != 0 {
		t.Fatal("pooled frame not zeroed on Get")
	}
	if d := p.Get(16, 16); d == nil || d.W != 16 {
		t.Fatal("size-mismatched Get must allocate fresh")
	}
	p.Put(nil) // no-op
	p.PutAll([]*Frame{nil, c})
}

// TestSyncFramePoolOutstanding checks the leak-detection counter: Gets
// minus Puts, unaffected by the retention bound or size classes.
func TestSyncFramePoolOutstanding(t *testing.T) {
	p := NewSyncFramePool(1)
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("fresh pool outstanding = %d, want 0", got)
	}
	a, b := p.Get(32, 32), p.Get(16, 16)
	if got := p.Outstanding(); got != 2 {
		t.Fatalf("outstanding = %d after 2 Gets, want 2", got)
	}
	p.Put(a)
	p.Put(b) // beyond retention bound: dropped, but still accounted
	p.Put(nil)
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d after returning all, want 0", got)
	}
}

// TestSyncFramePoolDoublePut checks the free-list corruption guard: a
// second Put of a resident frame must be a counted no-op — without it,
// the frame would sit on the free list twice and two later Gets would
// hand the same *Frame to two owners.
func TestSyncFramePoolDoublePut(t *testing.T) {
	p := NewSyncFramePool(8)
	a := p.Get(32, 32)
	p.Put(a)
	p.Put(a) // caller bug: released a frame it no longer owns
	if got := p.DoublePuts(); got != 1 {
		t.Fatalf("DoublePuts = %d, want 1", got)
	}
	if got := p.Retained(); got != 1 {
		t.Fatalf("retained %d frames after double Put, want 1", got)
	}
	if got := p.Outstanding(); got != 0 {
		t.Fatalf("outstanding = %d, want 0 (duplicate Put must not double-decrement)", got)
	}
	// The two next Gets must be distinct frames (the corruption the
	// guard prevents: one pooled, one fresh).
	b, c := p.Get(32, 32), p.Get(32, 32)
	if b == c {
		t.Fatal("double Put corrupted the free list: same frame handed out twice")
	}
	// Once re-issued, the frame can be Put again without tripping the
	// guard — it only flags Puts of currently-resident frames.
	p.Put(b)
	p.Put(c)
	if got := p.DoublePuts(); got != 1 {
		t.Fatalf("DoublePuts = %d after legitimate reuse, want still 1", got)
	}
}
