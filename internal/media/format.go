package media

import (
	"encoding/binary"
	"fmt"
)

// Inter-stage stream formats.
//
// The Eclipse pipeline stages exchange data through byte streams (Kahn
// channels / stream buffers); this file defines the packed record formats
// on those streams. All multi-byte integers are little endian.
//
//	header stream (VLD → MC), per frame:
//	    frame record:  0xFA type tref[2]                      (4 bytes)
//	    per MB:        mode fmvx[2] fmvy[2] bmvx[2] bmvy[2]   (9 bytes)
//	token stream (VLD → RLSQ), per frame:
//	    frame record:  0xFB type tref[2]                      (4 bytes)
//	    per MB:        len[2] cbp, then per coded block (ascending):
//	                   events (run, level[2])*, EOB = 0xFF 00 00
//	    (len counts the bytes after the length field, so the consumer
//	     can acquire the whole variable-size record with two GetSpace
//	     requests instead of one per event)
//	coefficient / residual streams (RLSQ → DCT → MC):
//	    per block: 64 × int16                                 (128 bytes)
//	    per MB:    4 blocks                                   (512 bytes)
//	pixel stream (MC → sink):
//	    per MB: 256 bytes, macroblocks in raster order
//
// The token records are variable length, so the consuming coprocessor
// cannot know a macroblock's size before reading it — the data-dependent
// communication the Eclipse shell interface is designed for.

const (
	// FrameRecHdr tags a frame record on the header stream.
	FrameRecHdr = 0xFA
	// FrameRecTok tags a frame record on the token stream.
	FrameRecTok = 0xFB
	// TokEOB terminates a coded block's event list on the token stream.
	TokEOB = 0xFF

	// FrameRecSize is the byte size of a frame record.
	FrameRecSize = 4
	// MBHeaderSize is the byte size of a macroblock header record.
	MBHeaderSize = 9
	// TokenEventSize is the byte size of one run/level event (and of the
	// EOB terminator) on the token stream.
	TokenEventSize = 3
	// BlockBytes is the byte size of one 8×8 coefficient/residual block.
	BlockBytes = 128
	// MBCoefBytes is the byte size of a macroblock's four blocks.
	MBCoefBytes = BlocksPerMB * BlockBytes
	// MBPixBytes is the byte size of a reconstructed macroblock.
	MBPixBytes = MBSize * MBSize
)

// AppendFrameRec appends a frame record with the given tag.
func AppendFrameRec(dst []byte, tag byte, hdr FrameHdr) []byte {
	return append(dst, tag, byte(hdr.Type), byte(hdr.TRef), byte(hdr.TRef>>8))
}

// ParseFrameRec decodes a frame record, checking the tag.
func ParseFrameRec(src []byte, tag byte) (FrameHdr, error) {
	if len(src) < FrameRecSize {
		return FrameHdr{}, fmt.Errorf("%w: short frame record", ErrBitstream)
	}
	if src[0] != tag {
		return FrameHdr{}, fmt.Errorf("%w: frame record tag %#x, want %#x", ErrBitstream, src[0], tag)
	}
	t := FrameType(src[1])
	if t > FrameB {
		return FrameHdr{}, fmt.Errorf("%w: frame record type %d", ErrBitstream, src[1])
	}
	return FrameHdr{Type: t, TRef: binary.LittleEndian.Uint16(src[2:])}, nil
}

// AppendMBHeader appends a macroblock header record (header stream).
func AppendMBHeader(dst []byte, dec MBDecision) []byte {
	var b [MBHeaderSize]byte
	b[0] = byte(dec.Mode)
	binary.LittleEndian.PutUint16(b[1:], uint16(dec.FMV.X))
	binary.LittleEndian.PutUint16(b[3:], uint16(dec.FMV.Y))
	binary.LittleEndian.PutUint16(b[5:], uint16(dec.BMV.X))
	binary.LittleEndian.PutUint16(b[7:], uint16(dec.BMV.Y))
	return append(dst, b[:]...)
}

// ParseMBHeader decodes a macroblock header record.
func ParseMBHeader(src []byte) (MBDecision, error) {
	if len(src) < MBHeaderSize {
		return MBDecision{}, fmt.Errorf("%w: short mb header record", ErrBitstream)
	}
	if src[0] > byte(PredSkip) {
		return MBDecision{}, fmt.Errorf("%w: mb header mode %d", ErrBitstream, src[0])
	}
	return MBDecision{
		Mode: PredMode(src[0]),
		FMV: MV{int16(binary.LittleEndian.Uint16(src[1:])),
			int16(binary.LittleEndian.Uint16(src[3:]))},
		BMV: MV{int16(binary.LittleEndian.Uint16(src[5:])),
			int16(binary.LittleEndian.Uint16(src[7:]))},
	}, nil
}

// TokenLenSize is the byte size of the token record length prefix.
const TokenLenSize = 2

// AppendTokenMB appends a macroblock's token record (token stream): a
// 2-byte length prefix, the cbp byte, then per coded block the events and
// an EOB terminator.
func AppendTokenMB(dst []byte, tok *TokenMB) []byte {
	body := TokenMBSize(tok) - TokenLenSize
	dst = append(dst, byte(body), byte(body>>8))
	dst = append(dst, tok.CBP)
	for b := 0; b < BlocksPerMB; b++ {
		if tok.CBP&(1<<b) == 0 {
			continue
		}
		for _, e := range tok.Events[b] {
			if e.Run < 0 || e.Run > MaxRun {
				panic(fmt.Sprintf("media: token run %d out of range", e.Run))
			}
			dst = append(dst, byte(e.Run), byte(e.Level), byte(e.Level>>8))
		}
		dst = append(dst, TokEOB, 0, 0)
	}
	return dst
}

// TokenMBSize returns the encoded byte size of a token record, including
// the length prefix.
func TokenMBSize(tok *TokenMB) int {
	n := TokenLenSize + 1
	for b := 0; b < BlocksPerMB; b++ {
		if tok.CBP&(1<<b) == 0 {
			continue
		}
		n += (len(tok.Events[b]) + 1) * TokenEventSize
	}
	return n
}

// ParseTokenMBInto decodes a complete token record (including the length
// prefix) into a caller-owned token, returning the record's total byte
// size. tok is Reset first; reusing one token across records makes the
// consuming coprocessor model allocation-free (see tokens.go for the
// arena ownership rules). On error tok's contents are unspecified.
func ParseTokenMBInto(src []byte, tok *TokenMB) (int, error) {
	if len(src) < TokenLenSize+1 {
		return 0, fmt.Errorf("%w: short token record", ErrBitstream)
	}
	body := int(binary.LittleEndian.Uint16(src))
	if len(src) < TokenLenSize+body {
		return 0, fmt.Errorf("%w: truncated token record (%d of %d)", ErrBitstream, len(src), TokenLenSize+body)
	}
	n, err := parseTokenBodyInto(src[TokenLenSize:TokenLenSize+body], tok)
	if err != nil {
		return 0, err
	}
	if n != body {
		return 0, fmt.Errorf("%w: token record length %d, content %d", ErrBitstream, body, n)
	}
	return TokenLenSize + body, nil
}

// ParseTokenMB is the allocating convenience form of ParseTokenMBInto:
// each call returns a token with its own backing storage.
func ParseTokenMB(src []byte) (TokenMB, int, error) {
	var tok TokenMB
	n, err := ParseTokenMBInto(src, &tok)
	if err != nil {
		return TokenMB{}, 0, err
	}
	return tok, n, nil
}

// parseTokenBodyInto decodes the cbp+events portion of a token record
// into the token's arena.
func parseTokenBodyInto(src []byte, tok *TokenMB) (int, error) {
	tok.Reset()
	if len(src) < 1 {
		return 0, fmt.Errorf("%w: empty token body", ErrBitstream)
	}
	if src[0] > 0x0F {
		return 0, fmt.Errorf("%w: token cbp %#x", ErrBitstream, src[0])
	}
	tok.CBP = src[0] & 0x0F
	pos := 1
	for b := 0; b < BlocksPerMB; b++ {
		if tok.CBP&(1<<b) == 0 {
			continue
		}
		tok.ensureArena()
		start := len(tok.arena)
		for {
			if len(src) < pos+TokenEventSize {
				return 0, fmt.Errorf("%w: truncated token events", ErrBitstream)
			}
			run := src[pos]
			level := int32(int16(binary.LittleEndian.Uint16(src[pos+1:])))
			pos += TokenEventSize
			if run == TokEOB {
				tok.sealBlock(b, start)
				break
			}
			tok.arena = append(tok.arena, RunLevel{Run: int(run), Level: level})
			if len(tok.arena)-start > maxBlockEvents {
				return 0, fmt.Errorf("%w: token overflow", ErrBitstream)
			}
		}
	}
	return pos, nil
}

// AppendBlock appends one coefficient/residual block (128 bytes).
func AppendBlock(dst []byte, b *Block) []byte {
	var buf [BlockBytes]byte
	for i, v := range b {
		binary.LittleEndian.PutUint16(buf[i*2:], uint16(v))
	}
	return append(dst, buf[:]...)
}

// ParseBlock decodes one coefficient/residual block.
func ParseBlock(src []byte, b *Block) error {
	if len(src) < BlockBytes {
		return fmt.Errorf("%w: short block record", ErrBitstream)
	}
	for i := range b {
		b[i] = int16(binary.LittleEndian.Uint16(src[i*2:]))
	}
	return nil
}

// AppendMBBlocks appends a macroblock's four blocks (512 bytes).
func AppendMBBlocks(dst []byte, blocks *[BlocksPerMB]Block) []byte {
	for b := range blocks {
		dst = AppendBlock(dst, &blocks[b])
	}
	return dst
}

// ParseMBBlocks decodes a macroblock's four blocks.
func ParseMBBlocks(src []byte, blocks *[BlocksPerMB]Block) error {
	if len(src) < MBCoefBytes {
		return fmt.Errorf("%w: short mb blocks record", ErrBitstream)
	}
	for b := range blocks {
		if err := ParseBlock(src[b*BlockBytes:], &blocks[b]); err != nil {
			return err
		}
	}
	return nil
}
