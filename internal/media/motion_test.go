package media

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomFrame(w, h int, seed int64) *Frame {
	rng := rand.New(rand.NewSource(seed))
	f := NewFrame(w, h)
	for i := range f.Pix {
		f.Pix[i] = byte(rng.Intn(256))
	}
	return f
}

func TestSADIdenticalIsZero(t *testing.T) {
	f := randomFrame(64, 64, 1)
	var mb MBPixels
	f.GetMB(1, 1, &mb)
	if s := SAD(&mb, f, 16, 16, MV{}, 1<<30); s != 0 {
		t.Fatalf("SAD = %d", s)
	}
}

func TestSADEarlyOut(t *testing.T) {
	f := randomFrame(64, 64, 2)
	g := randomFrame(64, 64, 3)
	var mb MBPixels
	f.GetMB(0, 0, &mb)
	full := SAD(&mb, g, 0, 0, MV{}, 1<<30)
	early := SAD(&mb, g, 0, 0, MV{}, 10)
	if early <= 10 {
		t.Fatalf("early-out result %d not above bound", early)
	}
	if early > full {
		t.Fatalf("early %d > full %d", early, full)
	}
}

func TestSADEdgeClamping(t *testing.T) {
	f := randomFrame(32, 32, 4)
	var mb MBPixels
	f.GetMB(0, 0, &mb)
	// A vector pointing off-frame must still return a finite, clamped SAD.
	s := SAD(&mb, f, 0, 0, MV{-20, -20}, 1<<30)
	if s < 0 {
		t.Fatalf("SAD = %d", s)
	}
	// And match the explicit clamped computation.
	want := 0
	for j := 0; j < MBSize; j++ {
		for i := 0; i < MBSize; i++ {
			d := int(mb[j*MBSize+i]) - int(f.At(i-20, j-20))
			if d < 0 {
				d = -d
			}
			want += d
		}
	}
	if s != want {
		t.Fatalf("SAD = %d, want %d", s, want)
	}
}

func TestMotionSearchFindsTranslation(t *testing.T) {
	// Build a reference, then a current frame that is the reference
	// shifted by a known vector; the search must recover it.
	ref := NewFrame(96, 96)
	rng := rand.New(rand.NewSource(5))
	for i := range ref.Pix {
		ref.Pix[i] = byte(rng.Intn(256))
	}
	const dx, dy = 3, -2
	cur := NewFrame(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			cur.Pix[y*96+x] = ref.At(x+dx, y+dy)
		}
	}
	var mb MBPixels
	cur.GetMB(2, 2, &mb)
	res := MotionSearch(&mb, ref, 32, 32, 7)
	if res.MV != (MV{dx, dy}) || res.SAD != 0 {
		t.Fatalf("found %+v", res)
	}
	if res.Ops < 2 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

func TestMotionSearchZeroBiasOnTies(t *testing.T) {
	// On a constant frame every vector ties at SAD 0; zero must win so
	// P-frames produce skip macroblocks.
	ref := NewFrame(64, 64)
	for i := range ref.Pix {
		ref.Pix[i] = 128
	}
	var mb MBPixels
	for i := range mb {
		mb[i] = 128
	}
	res := MotionSearch(&mb, ref, 16, 16, 5)
	if res.MV != (MV{}) {
		t.Fatalf("tie broken to %+v, want zero vector", res.MV)
	}
}

func TestPredictModes(t *testing.T) {
	fwd := randomFrame(64, 64, 6)
	bwd := randomFrame(64, 64, 7)
	var p MBPixels

	Predict(&p, PredIntra, nil, nil, 0, 0, MV{}, MV{})
	for _, v := range p {
		if v != 128 {
			t.Fatal("intra prediction must be 128")
		}
	}

	Predict(&p, PredFwd, fwd, bwd, 16, 16, MV{2, 1}, MV{})
	var want MBPixels
	FetchMB(&want, fwd, 18, 17)
	if p != want {
		t.Fatal("fwd prediction mismatch")
	}

	Predict(&p, PredBwd, fwd, bwd, 16, 16, MV{}, MV{-1, 3})
	FetchMB(&want, bwd, 15, 19)
	if p != want {
		t.Fatal("bwd prediction mismatch")
	}

	Predict(&p, PredSkip, fwd, bwd, 32, 32, MV{5, 5}, MV{})
	FetchMB(&want, fwd, 32, 32) // skip ignores vectors
	if p != want {
		t.Fatal("skip prediction mismatch")
	}

	Predict(&p, PredBi, fwd, bwd, 16, 16, MV{1, 0}, MV{0, 1})
	var a, b MBPixels
	FetchMB(&a, fwd, 17, 16)
	FetchMB(&b, bwd, 16, 17)
	for i := range p {
		if int(p[i]) != (int(a[i])+int(b[i])+1)/2 {
			t.Fatal("bi prediction mismatch")
		}
	}
}

func TestQuickResidualReconstructInverse(t *testing.T) {
	// Property: Reconstruct(pred, Residual(cur, pred)) == cur for any
	// cur/pred (residuals fit in int16 and no clamping occurs on the way
	// back because cur is a valid byte).
	f := func(curRaw, predRaw [256]byte) bool {
		cur := MBPixels(curRaw)
		pred := MBPixels(predRaw)
		var blocks [BlocksPerMB]Block
		Residual(&cur, &pred, &blocks)
		var back MBPixels
		Reconstruct(&back, &pred, &blocks)
		return back == cur
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualBlockLayout(t *testing.T) {
	var cur, pred MBPixels
	// Mark one pixel in each quadrant.
	cur[0] = 10          // block 0 (top-left)
	cur[8] = 20          // block 1 (top-right)
	cur[8*MBSize] = 30   // block 2 (bottom-left)
	cur[8*MBSize+8] = 40 // block 3 (bottom-right)
	var blocks [BlocksPerMB]Block
	Residual(&cur, &pred, &blocks)
	if blocks[0][0] != 10 || blocks[1][0] != 20 || blocks[2][0] != 30 || blocks[3][0] != 40 {
		t.Fatalf("layout: %d %d %d %d", blocks[0][0], blocks[1][0], blocks[2][0], blocks[3][0])
	}
}

func TestIntraActivity(t *testing.T) {
	var flat MBPixels
	for i := range flat {
		flat[i] = 77
	}
	if IntraActivity(&flat) != 0 {
		t.Fatal("flat block must have zero activity")
	}
	var busy MBPixels
	for i := range busy {
		if i%2 == 0 {
			busy[i] = 255
		}
	}
	if IntraActivity(&busy) == 0 {
		t.Fatal("busy block must have nonzero activity")
	}
}

func TestFrameAtClamps(t *testing.T) {
	f := NewFrame(16, 16)
	f.Pix[0] = 9
	f.Pix[15] = 8
	f.Pix[15*16] = 7
	f.Pix[255] = 6
	if f.At(-5, -5) != 9 || f.At(100, -1) != 8 || f.At(-1, 100) != 7 || f.At(99, 99) != 6 {
		t.Fatal("clamping broken")
	}
}

func TestGetSetMBRoundTrip(t *testing.T) {
	f := randomFrame(48, 32, 8)
	var mb MBPixels
	f.GetMB(2, 1, &mb)
	g := NewFrame(48, 32)
	g.SetMB(2, 1, &mb)
	var back MBPixels
	g.GetMB(2, 1, &back)
	if back != mb {
		t.Fatal("roundtrip failed")
	}
}

func TestSourceDeterministicAndMoving(t *testing.T) {
	cfg := DefaultSource(64, 48)
	a := NewSource(cfg).Frames(5)
	b := NewSource(cfg).Frames(5)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("frame %d differs between identical sources", i)
		}
	}
	if a[0].Equal(a[4]) {
		t.Fatal("source produces static video")
	}
}

func TestSourceSceneCut(t *testing.T) {
	cfg := DefaultSource(64, 48)
	cfg.SceneCut = 3
	cfg.Noise = 0
	frames := NewSource(cfg).Frames(6)
	// Difference across the cut must exceed difference within a scene.
	diff := func(a, b *Frame) int {
		d := 0
		for i := range a.Pix {
			v := int(a.Pix[i]) - int(b.Pix[i])
			if v < 0 {
				v = -v
			}
			d += v
		}
		return d
	}
	within := diff(frames[1], frames[2])
	across := diff(frames[2], frames[3])
	if across <= within*2 {
		t.Fatalf("scene cut not visible: within=%d across=%d", within, across)
	}
}

func TestPSNR(t *testing.T) {
	f := randomFrame(32, 32, 10)
	if p := f.PSNR(f.Clone()); p < 1e300 {
		t.Fatalf("identical frames PSNR = %v", p)
	}
	g := f.Clone()
	for i := range g.Pix {
		g.Pix[i] = clampByte(int(g.Pix[i]) + 10)
	}
	p := f.PSNR(g)
	if p < 20 || p > 40 {
		t.Fatalf("PSNR = %v, want ≈28", p)
	}
}
