package media

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFDCTConstantBlock(t *testing.T) {
	// A constant block has all energy in DC: F[0,0] = 8*c/2 * ... with our
	// scaling, DC = c*8*alpha0^2/4 = 2c. Check AC terms are ~0.
	var src, dst Block
	for i := range src {
		src[i] = 100
	}
	FDCT(&src, &dst)
	if dst[0] < 780 || dst[0] > 820 { // 100*8 = 800 expected
		t.Fatalf("DC = %d, want ≈800", dst[0])
	}
	for i := 1; i < 64; i++ {
		if dst[i] < -2 || dst[i] > 2 {
			t.Fatalf("AC[%d] = %d, want ≈0", i, dst[i])
		}
	}
}

func TestIDCTInvertsFDCT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	maxErr := 0
	for trial := 0; trial < 200; trial++ {
		var src, coef, back Block
		for i := range src {
			src[i] = int16(rng.Intn(512) - 256) // residual range
		}
		FDCT(&src, &coef)
		IDCT(&coef, &back)
		for i := range src {
			d := int(src[i]) - int(back[i])
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
	}
	if maxErr > 2 {
		t.Fatalf("max reconstruction error %d > 2", maxErr)
	}
}

func TestFDCTEnergyCompaction(t *testing.T) {
	// Smooth content must concentrate energy in low frequencies.
	var src, coef Block
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			src[y*8+x] = int16(x*10 + y*5)
		}
	}
	FDCT(&src, &coef)
	var zz Block
	ZigzagScan(&coef, &zz)
	var low, high int
	for i := 0; i < 10; i++ {
		v := int(zz[i])
		if v < 0 {
			v = -v
		}
		low += v
	}
	for i := 32; i < 64; i++ {
		v := int(zz[i])
		if v < 0 {
			v = -v
		}
		high += v
	}
	if low <= high*4 {
		t.Fatalf("energy not compacted: low=%d high=%d", low, high)
	}
}

func TestZigzagBijection(t *testing.T) {
	seen := map[int]bool{}
	for _, p := range zigzag {
		if p < 0 || p > 63 || seen[p] {
			t.Fatalf("zigzag not a permutation: %v", zigzag)
		}
		seen[p] = true
	}
	// Spot-check the standard pattern.
	if zigzag[0] != 0 || zigzag[1] != 1 || zigzag[2] != 8 || zigzag[63] != 63 {
		t.Fatalf("zigzag prefix wrong: %v", zigzag[:4])
	}
}

func TestQuickZigzagRoundTrip(t *testing.T) {
	f := func(vals [64]int16) bool {
		src := Block(vals)
		var zz, back Block
		ZigzagScan(&src, &zz)
		InverseZigzag(&zz, &back)
		return back == src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeDequantize(t *testing.T) {
	var src, q, dq Block
	src[0], src[1], src[2] = 100, -100, 5
	Quantize(&src, &q, 10)
	if q[0] != 5 || q[1] != -5 { // (100+10)/20 = 5
		t.Fatalf("q = %v", q[:3])
	}
	Dequantize(&q, &dq, 10)
	if dq[0] != 100 || dq[1] != -100 {
		t.Fatalf("dq = %v", dq[:3])
	}
}

func TestQuickQuantErrorBound(t *testing.T) {
	// Property: |x - dequant(quant(x))| ≤ q for any coefficient (uniform
	// quantizer with step 2q and symmetric rounding).
	f := func(vals [64]int16, qRaw uint8) bool {
		q := int(qRaw%31) + 1
		src := Block(vals)
		for i := range src {
			// keep away from the clamp region
			if src[i] > 16000 {
				src[i] = 16000
			}
			if src[i] < -16000 {
				src[i] = -16000
			}
		}
		var qd, dq Block
		Quantize(&src, &qd, q)
		Dequantize(&qd, &dq, q)
		for i := range src {
			// levels that hit the escape clamp are exempt
			if qd[i] == MaxLevel || qd[i] == -MaxLevel {
				continue
			}
			d := int(src[i]) - int(dq[i])
			if d < 0 {
				d = -d
			}
			if d > q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeInterDeadzone(t *testing.T) {
	var src, q Block
	src[0], src[1], src[2], src[3] = 11, -11, 12, -25
	QuantizeInter(&src, &q, 6) // step 12
	if q[0] != 0 || q[1] != 0 {
		t.Fatalf("deadzone failed: %v", q[:2])
	}
	if q[2] != 1 || q[3] != -2 {
		t.Fatalf("q = %v", q[:4])
	}
}

func TestQuickQuantInterErrorBound(t *testing.T) {
	// Property: |x - dequant(quantInter(x))| < 2q (truncation toward 0).
	f := func(vals [64]int16, qRaw uint8) bool {
		q := int(qRaw%31) + 1
		src := Block(vals)
		for i := range src {
			if src[i] > 16000 {
				src[i] = 16000
			}
			if src[i] < -16000 {
				src[i] = -16000
			}
		}
		var qd, dq Block
		QuantizeInter(&src, &qd, q)
		Dequantize(&qd, &dq, q)
		for i := range src {
			if qd[i] == MaxLevel || qd[i] == -MaxLevel {
				continue
			}
			d := int(src[i]) - int(dq[i])
			if d < 0 {
				d = -d
			}
			if d >= 2*q {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeClampsToEscapeRange(t *testing.T) {
	var src, q Block
	src[0] = 32767
	Quantize(&src, &q, 1)
	if int32(q[0]) != MaxLevel {
		t.Fatalf("q[0] = %d, want %d", q[0], MaxLevel)
	}
	src[0] = -32768
	Quantize(&src, &q, 1)
	if int32(q[0]) != -MaxLevel {
		t.Fatalf("q[0] = %d, want %d", q[0], -MaxLevel)
	}
}

func TestCoarserQuantizerFewerCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var src, coef Block
	for i := range src {
		src[i] = int16(rng.Intn(256) - 128)
	}
	FDCT(&src, &coef)
	var zz Block
	ZigzagScan(&coef, &zz)
	var q1, q16 Block
	Quantize(&zz, &q1, 1)
	Quantize(&zz, &q16, 16)
	if NonzeroCount(&q16) >= NonzeroCount(&q1) {
		t.Fatalf("q16 nz %d >= q1 nz %d", NonzeroCount(&q16), NonzeroCount(&q1))
	}
}

func TestNonzeroCount(t *testing.T) {
	var b Block
	if NonzeroCount(&b) != 0 {
		t.Fatal("zero block")
	}
	b[3], b[63] = 1, -1
	if NonzeroCount(&b) != 2 {
		t.Fatal("count")
	}
}

func TestClamp16(t *testing.T) {
	if clamp16(40000) != 32767 || clamp16(-40000) != -32768 || clamp16(5) != 5 {
		t.Fatal("clamp16 broken")
	}
}
