package media

// Streaming decode delivery: display-order frame handoff while the
// decode is still running.
//
// When DecodeOptions.OnDisplayFrame is set, the decoder delivers each
// frame as soon as (a) its last macroblock row is reconstructed and
// (b) every earlier display index has already been delivered — so the
// consumer observes the exact display sequence incrementally instead of
// collecting everything through DisplayFramesInto at the end. Delivery
// does NOT transfer exclusive ownership: a delivered I or P frame can
// still be read by the decoder as a motion-compensation reference until
// the reference chain advances past it. The Retire hook marks the
// moment the decoder's interest ends; only after both delivery and
// retirement may the frame be recycled into a pool (pools zero pixels
// on Get, so recycling earlier would corrupt in-flight prediction).
//
// The streamSink below is the single piece of state shared by the
// parser, the reconstruction workers, and the delivery goroutine. Each
// display index owns one slot with a tiny monotone state machine
// (parsed → complete → delivered, with chainDone/released tracked
// independently), all transitions under one mutex. The serial decoder
// reuses the same slots but delivers inline on the calling goroutine —
// no extra goroutine, no lookahead window — so serial and parallel
// streaming decodes observe identical delivery sequences and errors.

import (
	"fmt"
	"sync"
)

// streamSlot is one display index's delivery state.
type streamSlot struct {
	f         *Frame
	present   bool // header parsed, frame allocated
	complete  bool // every macroblock row reconstructed
	delivered bool // OnDisplayFrame fired
	chainDone bool // parser's reference window advanced past the frame
	readers   int  // dependent frames still reconstructing from this one
	released  bool // final Retire/Recycle issued
}

// retirable reports whether the decoder's interest in a slot has fully
// ended: the frame was delivered, the parser's reference window moved
// past it, AND no in-flight reconstruction still reads it. chainDone
// alone is not enough — the parser evicts a reference as soon as it
// parses the next one, while row batches of earlier B frames may still
// be motion-compensating from it on the workers.
func (s *streamSlot) retirable() bool {
	return s.delivered && s.chainDone && s.readers == 0 && !s.released
}

// streamSink coordinates display-order delivery for streaming decodes.
// It covers the display range [lo, hi): whole-stream decodes use
// [0, Frames), segment decodes a closed sub-range — display indices stay
// global throughout, only slot storage is rebased.
type streamSink struct {
	opts   *DecodeOptions
	lo, hi int // display range [lo, hi)
	window int // parser lookahead over delivery, in coded frames (0 = unbounded)

	mu   sync.Mutex
	cond sync.Cond
	slot []streamSlot // indexed by di - lo
	next int          // next display index to deliver (global)
	err  error        // sticky abort: first callback/parse error
	join sync.WaitGroup
}

func newStreamSink(opts *DecodeOptions, lo, hi, window int) *streamSink {
	k := &streamSink{opts: opts, lo: lo, hi: hi, window: window,
		slot: make([]streamSlot, hi-lo), next: lo}
	k.cond.L = &k.mu
	return k
}

// frameParsed registers a parsed frame under its display index and
// validates the TRef bijection (in range, not yet used). Out-of-range
// or duplicate display indices are ErrBitstream: in the batch decoder
// they surface as nil display slots, but a streaming consumer has
// already acted on delivered frames, so the stream must be rejected at
// the parse point instead.
func (k *streamSink) frameParsed(di int, f *Frame, isRef bool) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	if di < k.lo || di >= k.hi {
		return fmt.Errorf("%w: display index %d out of range [%d,%d)", ErrBitstream, di, k.lo, k.hi)
	}
	s := &k.slot[di-k.lo]
	if s.present {
		return fmt.Errorf("%w: duplicate display index %d", ErrBitstream, di)
	}
	s.present = true
	s.f = f
	// B frames never become references: the decoder's interest ends the
	// moment the frame is reconstructed.
	s.chainDone = !isRef
	return nil
}

// addReader registers a dependent frame that will reconstruct from the
// reference at display index di. Called on the parser goroutine when
// the dependent is parsed — strictly before the reference's chainDrop
// (every dependent of a reference is parsed before the frame that
// evicts it), so a slot with chainDone set can never gain new readers.
func (k *streamSink) addReader(di int) {
	k.mu.Lock()
	k.slot[di-k.lo].readers++
	k.mu.Unlock()
}

// frameComplete marks a frame fully reconstructed, drops its reader
// stake on the references it was predicted from (fwdDi/bwdDi, -1 for
// none), and wakes the delivery side. Reader stakes released here may
// make a reference retirable; any due Retires fire on this goroutine.
func (k *streamSink) frameComplete(di, fwdDi, bwdDi int) {
	var retire []*Frame
	k.mu.Lock()
	k.slot[di-k.lo].complete = true
	for _, rdi := range [2]int{fwdDi, bwdDi} {
		if rdi < 0 {
			continue
		}
		s := &k.slot[rdi-k.lo]
		s.readers--
		if s.retirable() {
			s.released = true
			retire = append(retire, s.f)
		}
	}
	k.mu.Unlock()
	k.cond.Broadcast()
	if k.opts.Retire != nil {
		for _, f := range retire {
			k.opts.Retire(f)
		}
	}
}

// chainDrop records that the decoder's reference chain advanced past a
// frame. Retire fires here (the parser goroutine) only if the frame was
// already delivered and no reconstruction still reads it; otherwise the
// delivery side or the last reader's frameComplete fires it.
func (k *streamSink) chainDrop(di int) {
	k.mu.Lock()
	s := &k.slot[di-k.lo]
	s.chainDone = true
	retire := s.retirable()
	if retire {
		s.released = true
	}
	f := s.f
	k.mu.Unlock()
	if retire && k.opts.Retire != nil {
		k.opts.Retire(f)
	}
}

// markDelivered advances the delivery cursor past di and reports
// whether the decoder's interest has also ended (→ caller fires Retire).
func (k *streamSink) markDelivered(di int) (f *Frame, retire bool) {
	k.mu.Lock()
	s := &k.slot[di-k.lo]
	s.delivered = true
	k.next = di + 1
	retire = s.retirable()
	if retire {
		s.released = true
	}
	f = s.f
	k.mu.Unlock()
	k.cond.Broadcast()
	return f, retire
}

// fail records the first abort cause and wakes every waiter. Idempotent.
func (k *streamSink) fail(err error) {
	k.mu.Lock()
	if k.err == nil {
		k.err = err
	}
	k.mu.Unlock()
	k.cond.Broadcast()
}

// waitWindow blocks the parser until coded frame fi is within `window`
// coded positions of the delivery cursor, bounding how far parse-side
// memory can run ahead of the consumer. Deadlock-free for any window
// >= 2: delivering display index d requires only coded positions
// <= d+1 (the display prefix {0..d} occupies coded positions {0..d+1},
// at most one pending reference ahead). Returns the sticky abort error,
// if any.
func (k *streamSink) waitWindow(fi int) error {
	k.mu.Lock()
	defer k.mu.Unlock()
	for k.err == nil && fi >= k.next+k.window {
		k.cond.Wait()
	}
	return k.err
}

// waitDelivered blocks until every frame was delivered or the sink
// aborted, and returns the abort cause.
func (k *streamSink) waitDelivered() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	for k.err == nil && k.next < k.hi {
		k.cond.Wait()
	}
	return k.err
}

// run is the parallel decoder's delivery goroutine: it walks the
// display order, waiting for each next frame to complete, and fires
// OnDisplayFrame outside the sink lock (the callback may block on the
// consumer for arbitrarily long — e.g. a bounded handoff channel).
func (k *streamSink) run() {
	defer k.join.Done()
	for {
		k.mu.Lock()
		for k.err == nil && k.next < k.hi &&
			!(k.slot[k.next-k.lo].present && k.slot[k.next-k.lo].complete) {
			k.cond.Wait()
		}
		if k.err != nil || k.next >= k.hi {
			k.mu.Unlock()
			return
		}
		di := k.next
		f := k.slot[di-k.lo].f
		k.mu.Unlock()
		if err := k.opts.OnDisplayFrame(di, f); err != nil {
			k.fail(err)
			return
		}
		if f, retire := k.markDelivered(di); retire && k.opts.Retire != nil {
			k.opts.Retire(f)
		}
	}
}

// deliverInline is the serial decoder's delivery step: fire every ready
// delivery on the calling goroutine. Called after each decoded frame.
func (k *streamSink) deliverInline() error {
	for {
		k.mu.Lock()
		if k.err != nil {
			err := k.err
			k.mu.Unlock()
			return err
		}
		if k.next >= k.hi || !k.slot[k.next-k.lo].present || !k.slot[k.next-k.lo].complete {
			k.mu.Unlock()
			return nil
		}
		di := k.next
		f := k.slot[di-k.lo].f
		k.mu.Unlock()
		if err := k.opts.OnDisplayFrame(di, f); err != nil {
			k.fail(err)
			return err
		}
		if f, retire := k.markDelivered(di); retire && k.opts.Retire != nil {
			k.opts.Retire(f)
		}
	}
}

// cleanup releases every frame the decode still holds: Retire for
// delivered frames (the consumer's stake survives; the decoder's ends
// here) and Recycle for frames that were never delivered (the consumer
// never saw them, so the decoder is the sole owner). Callers must have
// joined the delivery goroutine first — after that the sink is
// single-threaded, but the lock is cheap and keeps the invariants
// checkable, so hold it anyway.
func (k *streamSink) cleanup() {
	k.mu.Lock()
	defer k.mu.Unlock()
	for di := range k.slot {
		s := &k.slot[di]
		if !s.present || s.released {
			continue
		}
		s.released = true
		if s.delivered {
			if k.opts.Retire != nil {
				k.opts.Retire(s.f)
			}
		} else if k.opts.Recycle != nil {
			k.opts.Recycle(s.f)
		}
	}
}
