package media

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 1)
	w.WriteBits(0x12345, 20)
	data := w.Bytes()
	r := NewBitReader(data)
	if v := r.ReadBits(3); v != 0b101 {
		t.Fatalf("got %b", v)
	}
	if v := r.ReadBits(8); v != 0xFF {
		t.Fatalf("got %x", v)
	}
	if v := r.ReadBits(1); v != 0 {
		t.Fatalf("got %d", v)
	}
	if v := r.ReadBits(20); v != 0x12345 {
		t.Fatalf("got %x", v)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestBitLenTracksWrites(t *testing.T) {
	w := NewBitWriter()
	if w.BitLen() != 0 {
		t.Fatal("empty writer BitLen != 0")
	}
	w.WriteBits(1, 5)
	if w.BitLen() != 5 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
	w.WriteBits(1, 11)
	if w.BitLen() != 16 {
		t.Fatalf("BitLen = %d", w.BitLen())
	}
}

func TestQuickBitsRoundTrip(t *testing.T) {
	f := func(vals []uint32, widths []uint8) bool {
		n := len(vals)
		if len(widths) < n {
			n = len(widths)
		}
		w := NewBitWriter()
		type pair struct {
			v uint32
			n uint
		}
		var pairs []pair
		for i := 0; i < n; i++ {
			width := uint(widths[i]%32) + 1
			v := vals[i] & (1<<width - 1)
			pairs = append(pairs, pair{v, width})
			w.WriteBits(v, width)
		}
		r := NewBitReader(w.Bytes())
		for _, p := range pairs {
			if got := r.ReadBits(p.n); got != p.v {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExpGolombKnownCodes(t *testing.T) {
	// ue(0) = "1", ue(1) = "010", ue(2) = "011", ue(3) = "00100"
	cases := []struct {
		v    uint32
		bits int
	}{{0, 1}, {1, 3}, {2, 3}, {3, 5}, {6, 5}, {7, 7}}
	for _, c := range cases {
		w := NewBitWriter()
		w.WriteUE(c.v)
		if w.BitLen() != c.bits {
			t.Errorf("ue(%d) length = %d, want %d", c.v, w.BitLen(), c.bits)
		}
		r := NewBitReader(w.Bytes())
		if got := r.ReadUE(); got != c.v {
			t.Errorf("ue(%d) decoded as %d", c.v, got)
		}
	}
}

func TestQuickExpGolombRoundTrip(t *testing.T) {
	fu := func(vs []uint32) bool {
		w := NewBitWriter()
		for _, v := range vs {
			v %= 1 << 24
			w.WriteUE(v)
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vs {
			if r.ReadUE() != v%(1<<24) {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(fu, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("unsigned: %v", err)
	}
	fs := func(vs []int32) bool {
		w := NewBitWriter()
		for _, v := range vs {
			v %= 1 << 20
			w.WriteSE(v)
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vs {
			if r.ReadSE() != v%(1<<20) {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(fs, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatalf("signed: %v", err)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(0xAB, 8)
	w.WriteBits(0xCD, 8)
	r := NewBitReader(w.Bytes())
	if v := r.PeekBits(8); v != 0xAB {
		t.Fatalf("peek = %x", v)
	}
	if r.BitPos() != 0 {
		t.Fatalf("pos moved to %d", r.BitPos())
	}
	if v := r.ReadBits(16); v != 0xABCD {
		t.Fatalf("read = %x", v)
	}
}

func TestPeekPastEndZeroPads(t *testing.T) {
	r := NewBitReader([]byte{0xF0})
	if v := r.PeekBits(16); v != 0xF000 {
		t.Fatalf("peek = %04x, want f000", v)
	}
	if r.Err() != nil {
		t.Fatal("peek must not set error")
	}
}

func TestReadPastEndIsStickyError(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	r.ReadBits(8)
	if r.Err() != nil {
		t.Fatal("unexpected early error")
	}
	if v := r.ReadBits(4); v != 0 {
		t.Fatalf("over-read returned %d", v)
	}
	if r.Err() == nil {
		t.Fatal("expected sticky error")
	}
	if v := r.ReadBits(1); v != 0 || r.Err() == nil {
		t.Fatal("error must stick")
	}
}

func TestAlignReadAndWrite(t *testing.T) {
	w := NewBitWriter()
	w.WriteBits(1, 3)
	w.Align()
	w.WriteBits(0x5A, 8)
	data := w.Bytes()
	if len(data) != 2 {
		t.Fatalf("len = %d", len(data))
	}
	r := NewBitReader(data)
	r.ReadBits(3)
	r.AlignRead()
	if v := r.ReadBits(8); v != 0x5A {
		t.Fatalf("got %x", v)
	}
}

func TestSkip(t *testing.T) {
	r := NewBitReader([]byte{0x00, 0xFF})
	r.Skip(8)
	if v := r.ReadBits(8); v != 0xFF {
		t.Fatalf("got %x", v)
	}
	r.Skip(1)
	if r.Err() == nil {
		t.Fatal("skip past end must error")
	}
}

func TestRemaining(t *testing.T) {
	r := NewBitReader(make([]byte, 4))
	if r.Remaining() != 32 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 27 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestUnaryLikeStress(t *testing.T) {
	// Long random mixed sequences exercise the accumulator boundaries.
	rng := rand.New(rand.NewSource(3))
	w := NewBitWriter()
	var vals []uint32
	var widths []uint
	for i := 0; i < 5000; i++ {
		width := uint(rng.Intn(32) + 1)
		v := rng.Uint32() & (1<<width - 1)
		vals = append(vals, v)
		widths = append(widths, width)
		w.WriteBits(v, width)
	}
	r := NewBitReader(w.Bytes())
	for i := range vals {
		if got := r.ReadBits(widths[i]); got != vals[i] {
			t.Fatalf("i=%d got %x want %x", i, got, vals[i])
		}
	}
}
