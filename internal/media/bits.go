// Package media implements a simplified MPEG-2-class video codec used as
// the workload substrate for the Eclipse architecture model.
//
// The paper's evaluation decodes and encodes MPEG-2; conformant MPEG-2 is
// out of scope here, but the phenomena Eclipse is designed around depend
// only on the *structure* of such codecs, which this package reproduces
// faithfully:
//
//   - variable-length entropy coding (canonical Huffman over run/level
//     events) so that the VLD workload is data dependent;
//   - 8×8 block DCT with quantization and zigzag scanning;
//   - macroblocks, motion estimation/compensation, and I/P/B frame types
//     in MPEG GOP structures, so per-frame-type workload shifts between
//     pipeline stages exactly as in Figure 10 of the paper;
//   - a closed reconstruction loop, so encoder and decoder reference
//     frames match bit-exactly and streams round-trip deterministically.
//
// The codec is organized both as a monolithic reference encoder/decoder
// and as the individual pipeline stages (VLD, RLSQ, DCT, MC) with defined
// inter-stage stream formats, which the Eclipse coprocessor models in
// package copro execute as Kahn tasks.
package media

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// BitWriter assembles a bitstream MSB first.
//
// Bits accumulate into a 64-bit register and are flushed to the byte
// buffer 32 bits at a time, so the per-call cost is one shift/or plus an
// occasional 4-byte append instead of a byte-loop on every write. The
// accumulator invariant: outside a call, nacc < 32 and the low nacc bits
// of acc are the pending (unflushed) bits; anything above them is stale
// and masked off by the uint32 truncation at flush time.
type BitWriter struct {
	buf  []byte
	acc  uint64
	nacc uint // bits currently pending in acc (invariant: < 32)
}

// NewBitWriter returns an empty bit writer.
func NewBitWriter() *BitWriter { return &BitWriter{} }

// WriteBits appends the low n bits of v, most significant first.
// n must be at most 32.
func (w *BitWriter) WriteBits(v uint32, n uint) {
	if n > 32 {
		panic("media: WriteBits n > 32")
	}
	w.acc = w.acc<<n | uint64(v)&((1<<n)-1)
	w.nacc += n
	if w.nacc >= 32 {
		w.nacc -= 32
		word := uint32(w.acc >> w.nacc)
		w.buf = append(w.buf, byte(word>>24), byte(word>>16), byte(word>>8), byte(word))
	}
}

// WriteBit appends a single bit.
func (w *BitWriter) WriteBit(b uint32) { w.WriteBits(b, 1) }

// WriteUE appends v in unsigned Exp-Golomb code.
func (w *BitWriter) WriteUE(v uint32) {
	vv := uint64(v) + 1
	n := uint(0)
	for t := vv; t > 1; t >>= 1 {
		n++
	}
	w.WriteBits(0, n)
	// vv has n+1 significant bits; write them all.
	w.WriteBits(uint32(vv>>n), 1)
	if n > 0 {
		w.WriteBits(uint32(vv&((1<<n)-1)), n)
	}
}

// WriteSE appends v in signed Exp-Golomb code (0, 1, -1, 2, -2, ...).
func (w *BitWriter) WriteSE(v int32) {
	if v <= 0 {
		w.WriteUE(uint32(-2 * v))
	} else {
		w.WriteUE(uint32(2*v - 1))
	}
}

// AppendBits appends every bit written to src so far — its flushed bytes
// plus its unaligned pending tail — onto w, preserving bit positions
// exactly. src is left unchanged, so it can be appended again or written
// to further. This is the bitstream stitcher's primitive: segment
// encoders write headerless, unaligned bit runs, and AppendBits splices
// them at arbitrary bit offsets so the concatenation is bit-identical to
// a single-writer encode.
func (w *BitWriter) AppendBits(src *BitWriter) {
	for _, b := range src.buf {
		w.WriteBits(uint32(b), 8)
	}
	// Invariant nacc < 32, so the pending tail fits one WriteBits call.
	if src.nacc > 0 {
		w.WriteBits(uint32(src.acc&(1<<src.nacc-1)), src.nacc)
	}
}

// Align pads with zero bits to the next byte boundary and drains the
// accumulator so buf holds every complete byte written so far.
func (w *BitWriter) Align() {
	if rem := w.nacc & 7; rem != 0 {
		w.WriteBits(0, 8-rem)
	}
	for w.nacc >= 8 {
		w.nacc -= 8
		w.buf = append(w.buf, byte(w.acc>>w.nacc))
	}
}

// BitLen returns the number of bits written so far.
func (w *BitWriter) BitLen() int { return len(w.buf)*8 + int(w.nacc) }

// Bytes flushes to a byte boundary and returns the accumulated stream.
func (w *BitWriter) Bytes() []byte {
	w.Align()
	return w.buf
}

// ErrBitstream reports a malformed or truncated bitstream.
var ErrBitstream = errors.New("media: malformed bitstream")

// BitReader consumes a bitstream MSB first. Read errors are sticky: after
// the first failure all subsequent reads return zero values and Err
// reports the failure. PastEnd distinguishes "ran out of bytes" (which a
// streaming consumer can cure by calling Extend and retrying from a saved
// position) from genuine corruption.
type BitReader struct {
	buf     []byte
	pos     int // bit position
	err     error
	pastEnd bool
}

// NewBitReader reads from data.
func NewBitReader(data []byte) *BitReader { return &BitReader{buf: data} }

// Err returns the sticky error, if any.
func (r *BitReader) Err() error { return r.err }

// BitPos returns the current position in bits from the stream start.
func (r *BitReader) BitPos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *BitReader) Remaining() int { return len(r.buf)*8 - r.pos }

func (r *BitReader) fail() uint32 {
	if r.err == nil {
		r.err = fmt.Errorf("%w: read past end at bit %d", ErrBitstream, r.pos)
		r.pastEnd = true
	}
	return 0
}

// failCorrupt records a non-recoverable stream error (one that more input
// bytes cannot cure).
func (r *BitReader) failCorrupt(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrBitstream, fmt.Sprintf(format, args...))
	}
}

// PastEnd reports whether the sticky error was caused by running out of
// input bytes (curable with Extend) rather than corruption.
func (r *BitReader) PastEnd() bool { return r.pastEnd }

// Extend appends more input bytes, for streaming consumers that receive
// the bitstream in chunks.
func (r *BitReader) Extend(data []byte) { r.buf = append(r.buf, data...) }

// readerMark is a saved reader position for retry-after-extend.
type readerMark struct {
	pos     int
	err     error
	pastEnd bool
}

// Mark saves the reader position and error state.
func (r *BitReader) Mark() readerMark { return readerMark{r.pos, r.err, r.pastEnd} }

// Reset restores a previously saved position and error state.
func (r *BitReader) Reset(m readerMark) { r.pos, r.err, r.pastEnd = m.pos, m.err, m.pastEnd }

// Compact discards fully consumed bytes from the front of the buffer and
// returns how many were dropped, bounding memory for streaming use.
func (r *BitReader) Compact() int {
	n := r.pos >> 3
	if n == 0 {
		return 0
	}
	r.buf = r.buf[n:]
	r.pos -= n * 8
	return n
}

// ReadBits reads n (≤ 32) bits MSB first.
//
// Fast path: when at least 8 bytes remain at the current byte offset, a
// single big-endian 64-bit load covers any ≤32-bit extraction regardless
// of bit alignment (offset ≤ 7 + n ≤ 32 ⇒ 39 bits ≤ 64). The tail slow
// path assembles the same 64-bit window byte-by-byte with zero padding;
// the padding never leaks into the result because the bounds check has
// already guaranteed pos+n ≤ len(buf)*8.
func (r *BitReader) ReadBits(n uint) uint32 {
	if n > 32 {
		panic("media: ReadBits n > 32")
	}
	if r.err != nil {
		return 0
	}
	pos := r.pos
	if pos+int(n) > len(r.buf)*8 {
		return r.fail()
	}
	r.pos = pos + int(n)
	if byteIdx := pos >> 3; byteIdx+8 <= len(r.buf) {
		w := binary.BigEndian.Uint64(r.buf[byteIdx:])
		return uint32(w << uint(pos&7) >> (64 - n))
	}
	return r.tailBits(pos, n)
}

// tailBits extracts n bits starting at bit position pos from the final
// <8 bytes of the buffer, zero-padding beyond the end. Shared by the
// ReadBits and PeekBits slow paths.
func (r *BitReader) tailBits(pos int, n uint) uint32 {
	base := pos >> 3
	var w uint64
	for i := 0; i < 8; i++ {
		w <<= 8
		if j := base + i; j < len(r.buf) {
			w |= uint64(r.buf[j])
		}
	}
	return uint32(w << uint(pos&7) >> (64 - n))
}

// ReadBit reads a single bit.
func (r *BitReader) ReadBit() uint32 { return r.ReadBits(1) }

// PeekBits returns up to n (≤ 32) upcoming bits without consuming them,
// zero-padded past the end of the stream (for VLC decode at stream tail).
func (r *BitReader) PeekBits(n uint) uint32 {
	if n > 32 {
		panic("media: PeekBits n > 32")
	}
	pos := r.pos
	if byteIdx := pos >> 3; byteIdx+8 <= len(r.buf) {
		w := binary.BigEndian.Uint64(r.buf[byteIdx:])
		return uint32(w << uint(pos&7) >> (64 - n))
	}
	return r.tailBits(pos, n)
}

// Skip advances the read position by n bits.
func (r *BitReader) Skip(n uint) {
	if r.err != nil {
		return
	}
	if r.pos+int(n) > len(r.buf)*8 {
		r.fail()
		return
	}
	r.pos += int(n)
}

// ReadUE reads an unsigned Exp-Golomb code.
func (r *BitReader) ReadUE() uint32 {
	if r.err != nil {
		return 0
	}
	n := uint(0)
	for r.ReadBits(1) == 0 {
		if r.err != nil {
			return 0
		}
		n++
		if n > 32 {
			r.failCorrupt("exp-golomb prefix longer than 32 at bit %d", r.pos)
			return 0
		}
	}
	if n == 0 {
		return 0
	}
	rest := r.ReadBits(n)
	return (1<<n | rest) - 1
}

// ReadSE reads a signed Exp-Golomb code.
func (r *BitReader) ReadSE() int32 {
	u := r.ReadUE()
	if u&1 == 1 {
		return int32(u/2) + 1
	}
	return -int32(u / 2)
}

// AlignRead advances to the next byte boundary.
func (r *BitReader) AlignRead() {
	if rem := r.pos & 7; rem != 0 {
		r.Skip(uint(8 - rem))
	}
}
