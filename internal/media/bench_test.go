package media

import "testing"

// Microbenchmarks for the hot kernels rewritten in the fast-kernels
// pass. The decode-side kernels (bit reads, VLC decode, SAD, IDCT) must
// report 0 allocs/op: the steady-state decode loop owns all its
// buffers. Run with `make bench-media`.

// benchStream builds a pseudo-random bitstream plus the (v, n) write
// schedule that produced it, shared by the reader benchmarks.
func benchStream(words int) ([]byte, []uint) {
	w := NewBitWriter()
	var widths []uint
	state := uint32(0x2545f491)
	for i := 0; i < words; i++ {
		state = state*1664525 + 1013904223
		n := uint(state>>27)%32 + 1
		w.WriteBits(state, n)
		widths = append(widths, n)
	}
	return w.Bytes(), widths
}

func BenchmarkReadBits(b *testing.B) {
	stream, widths := benchStream(4096)
	r := NewBitReader(stream)
	b.ReportAllocs()
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*r = BitReader{buf: stream}
		for _, n := range widths {
			r.ReadBits(n)
		}
		if r.Err() != nil {
			b.Fatal(r.Err())
		}
	}
}

func BenchmarkHuffDecode(b *testing.B) {
	// Encode every coded symbol of the production run/level table in a
	// round-robin, so the benchmark sees the real mix of code lengths.
	w := NewBitWriter()
	count := 0
	for rep := 0; rep < 64; rep++ {
		for sym := range coefTable.codes {
			if coefTable.codes[sym].Len == 0 {
				continue
			}
			coefTable.Encode(w, sym)
			count++
		}
	}
	enc := w.Bytes()
	r := NewBitReader(enc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*r = BitReader{buf: enc}
		for s := 0; s < count; s++ {
			if sym, _ := coefTable.Decode(r); sym < 0 {
				b.Fatal(r.Err())
			}
		}
	}
	b.ReportMetric(float64(count), "symbols/op")
}

// benchFrame builds a deterministic textured frame for the pixel-kernel
// benchmarks.
func benchFrame(w, h int) *Frame {
	f := NewFrame(w, h)
	state := uint32(12345)
	for i := range f.Pix {
		state = state*1664525 + 1013904223
		f.Pix[i] = byte(state >> 24)
	}
	return f
}

func BenchmarkSAD(b *testing.B) {
	ref := benchFrame(176, 144)
	var cur MBPixels
	ref.GetMB(3, 3, &cur)
	mvs := []MV{{0, 0}, {1, -1}, {-3, 2}, {7, 5}, {-8, -8}, {4, 0}}
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += SAD(&cur, ref, 48, 48, mvs[i%len(mvs)], 1<<30)
	}
	benchSink = sink
}

var benchSink int

func BenchmarkIDCT(b *testing.B) {
	var in, out Block
	state := uint32(7)
	for i := range in {
		state = state*1664525 + 1013904223
		in[i] = int16(int32(state>>20) - 2048)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IDCT(&in, &out)
	}
}

func BenchmarkFDCT(b *testing.B) {
	var in, out Block
	state := uint32(11)
	for i := range in {
		state = state*1664525 + 1013904223
		in[i] = int16(int32(state>>24) - 128)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FDCT(&in, &out)
	}
}

// BenchmarkEncodeMBRow measures the encoder's full per-frame pipeline
// (mode decision, motion search, transforms, entropy coding) on a
// small clip, normalized per macroblock row. EncodeWorkers applies, so
// this reflects the parallel analysis pass.
func BenchmarkEncodeMBRow(b *testing.B) {
	const w, h, frames = 176, 144, 4
	src := DefaultSource(w, h)
	clip := NewSource(src).Frames(frames)
	cfg := DefaultCodec(w, h)
	rows := (h / MBSize) * frames
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Encode(cfg, clip); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows), "mbrows/op")
}
