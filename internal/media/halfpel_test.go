package media

import (
	"math"
	"testing"
)

func TestFetchHalfIntegerPositionsMatchFetch(t *testing.T) {
	ref := randomFrame(64, 64, 41)
	var a, b MBPixels
	for _, pos := range [][2]int{{0, 0}, {16, 8}, {-4, 60}} {
		fetchHalf(&a, ref, 2*pos[0], 2*pos[1])
		FetchMB(&b, ref, pos[0], pos[1])
		if a != b {
			t.Fatalf("integer half-pel position %v differs from full-pel fetch", pos)
		}
	}
}

func TestFetchHalfInterpolation(t *testing.T) {
	// A horizontal gradient: half-pel x positions must land between the
	// neighboring integer samples with MPEG rounding.
	ref := NewFrame(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			ref.Pix[y*32+x] = byte(10 * x)
		}
	}
	var p MBPixels
	fetchHalf(&p, ref, 2*4+1, 2*4) // x = 4.5, y = 4
	if p[0] != 45 {                // (40+50+1)/2
		t.Fatalf("h interp = %d, want 45", p[0])
	}
	fetchHalf(&p, ref, 2*4, 2*4+1) // vertical half on a horizontal gradient
	if p[0] != 40 {                // rows identical: (40+40+1)/2
		t.Fatalf("v interp = %d, want 40", p[0])
	}
	fetchHalf(&p, ref, 2*4+1, 2*4+1) // both
	if p[0] != 45 {                  // (40+50+40+50+2)/4
		t.Fatalf("hv interp = %d, want 45", p[0])
	}
}

func TestRefineHalfPelFindsSubpelShift(t *testing.T) {
	// Current block = reference interpolated at a known half-pel offset;
	// refinement must recover exactly that vector.
	ref := NewFrame(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			ref.Pix[y*96+x] = byte((x*x + 3*y*y) % 251) // smooth-ish, unique
		}
	}
	var cur MBPixels
	const hx, hy = 2*3 + 1, 2 * 1 // (+3.5, +1.0) in pixels
	fetchHalf(&cur, ref, 2*32+hx, 2*32+hy)

	full := MotionSearch(&cur, ref, 32, 32, 7)
	mv, sad, ops := RefineHalfPel(&cur, ref, 32, 32, full.MV, full.SAD)
	if ops != 8 {
		t.Fatalf("ops = %d", ops)
	}
	if mv != (MV{hx, hy}) || sad != 0 {
		t.Fatalf("refined to %+v sad=%d, want {%d %d} sad=0", mv, sad, hx, hy)
	}
}

func TestHalfPelRoundTripBitExact(t *testing.T) {
	cfg := DefaultCodec(64, 48)
	cfg.HalfPel = true
	src := NewSource(DefaultSource(64, 48))
	frames := src.Frames(8)
	stream, recon, _, err := Encode(cfg, frames)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Seq.HalfPel {
		t.Fatal("half-pel flag lost in the sequence header")
	}
	for i, f := range res.DisplayFrames() {
		if !f.Equal(recon[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
}

func TestHalfPelImprovesPrediction(t *testing.T) {
	// Half-pel MC pays off on genuine sub-pixel motion, which the
	// integer-stepping synthetic Source cannot produce. Build frames by
	// sampling a smooth pattern translating half a pixel per frame: full-
	// pel prediction is then systematically half a sample off, and
	// half-pel compensation must cut the coded bits markedly.
	const w, h, n = 64, 48, 8
	frames := make([]*Frame, n)
	for k := 0; k < n; k++ {
		f := NewFrame(w, h)
		shift := 0.5 * float64(k)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := 110 +
					70*math.Sin(0.35*(float64(x)-shift)) +
					35*math.Sin(0.22*float64(y)+0.9)
				f.Pix[y*w+x] = clampByte(int(v))
			}
		}
		frames[k] = f
	}
	size := func(halfPel bool) int {
		cfg := DefaultCodec(w, h)
		cfg.GOPM = 1
		cfg.GOPN = n
		cfg.HalfPel = halfPel
		_, _, stats, err := Encode(cfg, frames)
		if err != nil {
			t.Fatal(err)
		}
		return stats.TotalBits()
	}
	full, half := size(false), size(true)
	if float64(half) > 0.9*float64(full) {
		t.Errorf("half-pel (%d bits) not clearly smaller than full-pel (%d bits)", half, full)
	}
	t.Logf("full-pel %d bits, half-pel %d bits (%.2fx)", full, half, float64(half)/float64(full))
}

func TestSeqHeaderHalfPelRoundTrip(t *testing.T) {
	for _, hp := range []bool{false, true} {
		h := SeqHeader{MBCols: 4, MBRows: 3, Q: 6, GOPN: 12, GOPM: 3, Frames: 5, HalfPel: hp}
		w := NewBitWriter()
		WriteSeqHeader(w, &h)
		got, err := ParseSeqHeader(NewBitReader(w.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("got %+v want %+v", got, h)
		}
	}
}
