package media

import "fmt"

// DecodedFrame is one frame out of the decoder, in coded order.
type DecodedFrame struct {
	Hdr   FrameHdr
	Frame *Frame
}

// DecodeResult is the full output of a reference decode.
type DecodeResult struct {
	Seq   SeqHeader
	Coded []DecodedFrame // coded order, as they appear in the stream
}

// DisplayFrames returns the decoded frames sorted into display order.
func (r *DecodeResult) DisplayFrames() []*Frame {
	out := make([]*Frame, len(r.Coded))
	for _, df := range r.Coded {
		if int(df.Hdr.TRef) >= len(out) {
			continue // malformed tref; keep what fits
		}
		out[df.Hdr.TRef] = df.Frame
	}
	return out
}

// Decode is the monolithic reference decoder, composed from the same
// stage kernels (ParseMBSyntax, RLSQDecodeMB, IDCTMB, Predict,
// Reconstruct) that the Eclipse coprocessor models run, so its output is
// the ground truth for the pipelined decoders.
func Decode(stream []byte) (*DecodeResult, error) {
	r := NewBitReader(stream)
	seq, err := ParseSeqHeader(r)
	if err != nil {
		return nil, err
	}
	res := &DecodeResult{Seq: seq}
	var refs RefChain
	for fi := 0; fi < seq.Frames; fi++ {
		hdr, err := ParseFrameHdr(r)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", fi, err)
		}
		frame, err := decodeFrameBody(r, &seq, hdr, &refs)
		if err != nil {
			return nil, fmt.Errorf("frame %d: %w", fi, err)
		}
		res.Coded = append(res.Coded, DecodedFrame{Hdr: hdr, Frame: frame})
		refs.Advance(frame, hdr.Type)
	}
	return res, nil
}

// decodeFrameBody decodes the macroblock layer of one frame.
func decodeFrameBody(r *BitReader, seq *SeqHeader, hdr FrameHdr, refs *RefChain) (*Frame, error) {
	if hdr.Type != FrameI && refs.B == nil {
		return nil, fmt.Errorf("%w: %v frame before first reference", ErrBitstream, hdr.Type)
	}
	if hdr.Type == FrameB && refs.A == nil {
		return nil, fmt.Errorf("%w: B frame with a single reference", ErrBitstream)
	}
	frame := NewFrame(seq.W(), seq.H())
	fwdRef, bwdRef := refs.Refs(hdr.Type)
	var (
		mvp         MVPredictor
		tok         TokenMB // reused across macroblocks (arena)
		coef, resid [BlocksPerMB]Block
		pred, out   MBPixels
	)
	for mby := 0; mby < seq.MBRows; mby++ {
		mvp.RowStart()
		for mbx := 0; mbx < seq.MBCols; mbx++ {
			dec, err := ParseMBSyntaxInto(r, hdr.Type, &mvp, &tok)
			if err != nil {
				return nil, fmt.Errorf("mb (%d,%d): %w", mbx, mby, err)
			}
			if err := RLSQDecodeMB(&tok, seq.Q, &coef); err != nil {
				return nil, fmt.Errorf("mb (%d,%d): %w", mbx, mby, err)
			}
			IDCTMB(&coef, tok.CBP, &resid)
			x, y := mbx*MBSize, mby*MBSize
			PredictHP(&pred, dec.Mode, fwdRef, bwdRef, x, y, dec.FMV, dec.BMV, seq.HalfPel)
			Reconstruct(&out, &pred, &resid)
			frame.SetMB(mbx, mby, &out)
		}
	}
	return frame, r.Err()
}

// parseBlockEventsInto reads one block's run/level events up to EOB into
// the token's arena, publishing them as block b's events.
func parseBlockEventsInto(r *BitReader, tok *TokenMB, b int) error {
	tok.ensureArena()
	start := len(tok.arena)
	for {
		rl, eob, _ := DecodeRunLevel(r)
		if err := r.Err(); err != nil {
			return err
		}
		if eob {
			tok.sealBlock(b, start)
			return nil
		}
		tok.arena = append(tok.arena, rl)
		if len(tok.arena)-start > maxBlockEvents {
			return fmt.Errorf("%w: more than 64 events in a block", ErrBitstream)
		}
	}
}
