package media

import "fmt"

// DecodedFrame is one frame out of the decoder, in coded order.
type DecodedFrame struct {
	Hdr   FrameHdr
	Frame *Frame
}

// DecodeResult is the full output of a reference decode.
type DecodeResult struct {
	Seq   SeqHeader
	Coded []DecodedFrame // coded order, as they appear in the stream
}

// DisplayFrames returns the decoded frames sorted into display order.
func (r *DecodeResult) DisplayFrames() []*Frame {
	return r.DisplayFramesInto(make([]*Frame, 0, len(r.Coded)))
}

// DisplayFramesInto fills dst with the decoded frames in display order,
// reusing dst's backing storage when its capacity suffices (the serving
// path calls this once per response with a recycled slice, so steady
// state allocates nothing). It returns the filled slice, which aliases
// dst when no growth was needed.
func (r *DecodeResult) DisplayFramesInto(dst []*Frame) []*Frame {
	n := len(r.Coded)
	if cap(dst) < n {
		dst = make([]*Frame, n)
	} else {
		dst = dst[:n]
		for i := range dst {
			dst[i] = nil
		}
	}
	for _, df := range r.Coded {
		if int(df.Hdr.TRef) >= n {
			continue // malformed tref; keep what fits
		}
		dst[df.Hdr.TRef] = df.Frame
	}
	return dst
}

// Decode is the reference decoder, composed from the same stage kernels
// (ParseMBSyntax, RLSQDecodeMB, IDCTMB, Predict, Reconstruct) that the
// Eclipse coprocessor models run, so its output is the ground truth for
// the pipelined decoders. With DecodeWorkers > 1 the entropy parse
// overlaps per-row reconstruction on a worker pool (see pardecode.go);
// output and errors are bit-identical for every worker count.
func Decode(stream []byte) (*DecodeResult, error) {
	return DecodeWithOptions(stream, DecodeOptions{})
}

// decodeFrameBody decodes the macroblock layer of one frame (the serial
// path). newFrame supplies the reconstruction frame; recycle, when
// non-nil, reclaims it on the error path.
func decodeFrameBody(r *BitReader, seq *SeqHeader, hdr FrameHdr, refs *RefChain, newFrame func(w, h int) *Frame, recycle func(*Frame)) (*Frame, error) {
	if hdr.Type != FrameI && refs.B == nil {
		return nil, fmt.Errorf("%w: %v frame before first reference", ErrBitstream, hdr.Type)
	}
	if hdr.Type == FrameB && refs.A == nil {
		return nil, fmt.Errorf("%w: B frame with a single reference", ErrBitstream)
	}
	frame := newFrame(seq.W(), seq.H())
	fail := func(err error) (*Frame, error) {
		if recycle != nil {
			recycle(frame)
		}
		return nil, err
	}
	fwdRef, bwdRef := refs.Refs(hdr.Type)
	var (
		mvp         MVPredictor
		tok         TokenMB // reused across macroblocks (arena)
		coef, resid [BlocksPerMB]Block
		pred, out   MBPixels
	)
	for mby := 0; mby < seq.MBRows; mby++ {
		mvp.RowStart()
		for mbx := 0; mbx < seq.MBCols; mbx++ {
			dec, err := ParseMBSyntaxInto(r, hdr.Type, &mvp, &tok)
			if err != nil {
				return fail(fmt.Errorf("mb (%d,%d): %w", mbx, mby, err))
			}
			if err := RLSQDecodeMB(&tok, seq.Q, &coef); err != nil {
				return fail(fmt.Errorf("mb (%d,%d): %w", mbx, mby, err))
			}
			IDCTMB(&coef, tok.CBP, &resid)
			x, y := mbx*MBSize, mby*MBSize
			PredictHP(&pred, dec.Mode, fwdRef, bwdRef, x, y, dec.FMV, dec.BMV, seq.HalfPel)
			Reconstruct(&out, &pred, &resid)
			frame.SetMB(mbx, mby, &out)
		}
	}
	return frame, r.Err()
}

// parseBlockEventsInto reads one block's run/level events up to EOB into
// the token's arena, publishing them as block b's events.
func parseBlockEventsInto(r *BitReader, tok *TokenMB, b int) error {
	tok.ensureArena()
	start := len(tok.arena)
	for {
		rl, eob, _ := DecodeRunLevel(r)
		if err := r.Err(); err != nil {
			return err
		}
		if eob {
			tok.sealBlock(b, start)
			return nil
		}
		tok.arena = append(tok.arena, rl)
		if len(tok.arena)-start > maxBlockEvents {
			return fmt.Errorf("%w: more than 64 events in a block", ErrBitstream)
		}
	}
}
