package media

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunLevelRoundTripTable(t *testing.T) {
	cases := []RunLevel{
		{0, 1}, {0, -1}, {0, 8}, {0, -8},
		{1, 1}, {15, 1}, {15, -8},
		{0, 9},  // escape: level beyond table
		{16, 1}, // escape: run beyond table
		{63, 100}, {5, -2047}, {0, 2047}, {40, -1},
	}
	for _, c := range cases {
		w := NewBitWriter()
		EncodeRunLevel(w, c)
		EncodeEOB(w)
		r := NewBitReader(w.Bytes())
		got, eob, bits := DecodeRunLevel(r)
		if eob || got != c {
			t.Errorf("roundtrip %+v: got %+v eob=%v", c, got, eob)
		}
		if bits == 0 {
			t.Errorf("bits consumed = 0 for %+v", c)
		}
		if _, eob, _ := DecodeRunLevel(r); !eob {
			t.Errorf("missing EOB after %+v", c)
		}
		if r.Err() != nil {
			t.Errorf("err: %v", r.Err())
		}
	}
}

func TestQuickRunLevelRoundTrip(t *testing.T) {
	f := func(runs []uint8, levels []int16) bool {
		n := len(runs)
		if len(levels) < n {
			n = len(levels)
		}
		w := NewBitWriter()
		var msg []RunLevel
		for i := 0; i < n; i++ {
			lvl := int32(levels[i])
			if lvl == 0 {
				lvl = 1
			}
			if lvl > MaxLevel {
				lvl = MaxLevel
			}
			if lvl < -MaxLevel {
				lvl = -MaxLevel
			}
			rl := RunLevel{Run: int(runs[i] % 64), Level: lvl}
			msg = append(msg, rl)
			EncodeRunLevel(w, rl)
		}
		EncodeEOB(w)
		r := NewBitReader(w.Bytes())
		for _, want := range msg {
			got, eob, _ := DecodeRunLevel(r)
			if eob || got != want {
				return false
			}
		}
		_, eob, _ := DecodeRunLevel(r)
		return eob && r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLengthRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		var zz Block
		for i := range zz {
			if rng.Intn(4) == 0 {
				zz[i] = int16(rng.Intn(401) - 200)
			}
		}
		events := RunLength(&zz)
		var back Block
		if !RunLengthExpand(events, &back) {
			t.Fatal("expand failed")
		}
		if back != zz {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

func TestRunLengthAllZero(t *testing.T) {
	var zz Block
	if events := RunLength(&zz); len(events) != 0 {
		t.Fatalf("events = %v", events)
	}
}

func TestRunLengthDense(t *testing.T) {
	var zz Block
	for i := range zz {
		zz[i] = int16(i + 1)
	}
	events := RunLength(&zz)
	if len(events) != 64 {
		t.Fatalf("len = %d", len(events))
	}
	for _, e := range events {
		if e.Run != 0 {
			t.Fatalf("dense block must have zero runs, got %+v", e)
		}
	}
}

func TestRunLengthExpandRejectsOverflow(t *testing.T) {
	var zz Block
	if RunLengthExpand([]RunLevel{{Run: 63, Level: 1}, {Run: 1, Level: 1}}, &zz) {
		t.Fatal("expected overflow rejection")
	}
	if RunLengthExpand([]RunLevel{{Run: 0, Level: 0}}, &zz) {
		t.Fatal("expected zero-level rejection")
	}
	if !RunLengthExpand([]RunLevel{{Run: 63, Level: 1}}, &zz) {
		t.Fatal("position 63 must be accepted")
	}
	if zz[63] != 1 {
		t.Fatal("wrong expansion")
	}
}

func TestVLCCompression(t *testing.T) {
	// Typical sparse statistics should code well below raw size. Raw is
	// 16 bits/coefficient; expect far less for a mostly-zero block.
	var zz Block
	zz[0], zz[1], zz[5], zz[20] = 30, -4, 2, 1
	w := NewBitWriter()
	for _, rl := range RunLength(&zz) {
		EncodeRunLevel(w, rl)
	}
	EncodeEOB(w)
	if w.BitLen() >= 128 {
		t.Fatalf("sparse block coded in %d bits", w.BitLen())
	}
}

func TestVLCBitsAreDataDependent(t *testing.T) {
	// A dense block must cost more bits than a sparse one — the property
	// that makes the VLD coprocessor's workload irregular.
	size := func(fill int) int {
		var zz Block
		for i := 0; i < fill; i++ {
			zz[i] = int16(1 + i%7)
		}
		w := NewBitWriter()
		for _, rl := range RunLength(&zz) {
			EncodeRunLevel(w, rl)
		}
		EncodeEOB(w)
		return w.BitLen()
	}
	if sparse, dense := size(2), size(50); dense <= sparse*3 {
		t.Fatalf("dense=%d sparse=%d: insufficient data dependence", dense, sparse)
	}
}
