package media

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestStagedDecodeMatchesReference rebuilds the decoder from the stage
// kernels via the streaming VLD and checks bit-exactness against the
// monolithic decoder — the correctness contract the Eclipse-mapped
// pipeline relies on.
func TestStagedDecodeMatchesReference(t *testing.T) {
	cfg := DefaultCodec(64, 48)
	stream, _, recon, _ := encodeTestSequence(t, cfg, 10)

	vld := NewStreamVLD()
	vld.Extend(stream)
	var (
		seq    SeqHeader
		refs   RefChain
		frame  *Frame
		hdr    FrameHdr
		mbIdx  int
		outSet []*Frame
	)
	for {
		ev, err := vld.Next()
		if err != nil {
			t.Fatalf("at %s: %v", vld.Progress(), err)
		}
		switch ev.Kind {
		case EventSeq:
			seq = ev.Seq
		case EventFrame:
			hdr = ev.Frame
			frame = NewFrame(seq.W(), seq.H())
			mbIdx = 0
		case EventMB:
			// RLSQ stage
			var coef, resid [BlocksPerMB]Block
			if err := RLSQDecodeMB(&ev.Tok, seq.Q, &coef); err != nil {
				t.Fatal(err)
			}
			// DCT stage
			IDCTMB(&coef, ev.Tok.CBP, &resid)
			// MC stage
			fwd, bwd := refs.Refs(hdr.Type)
			mbx, mby := mbIdx%seq.MBCols, mbIdx/seq.MBCols
			var pred, out MBPixels
			Predict(&pred, ev.MB.Mode, fwd, bwd, mbx*MBSize, mby*MBSize, ev.MB.FMV, ev.MB.BMV)
			Reconstruct(&out, &pred, &resid)
			frame.SetMB(mbx, mby, &out)
			mbIdx++
			if mbIdx == seq.MBCount() {
				refs.Advance(frame, hdr.Type)
				if int(hdr.TRef) >= len(outSet) {
					outSet = append(outSet, make([]*Frame, int(hdr.TRef)+1-len(outSet))...)
				}
				outSet[hdr.TRef] = frame
			}
		case EventEnd:
			for i, f := range outSet {
				if f == nil || !f.Equal(recon[i]) {
					t.Fatalf("frame %d: staged decode differs from encoder recon", i)
				}
			}
			return
		}
	}
}

// TestStreamVLDChunked feeds the bitstream one byte at a time, forcing
// ErrNeedData rollbacks mid-element, and checks the event sequence is
// identical to single-shot parsing.
func TestStreamVLDChunked(t *testing.T) {
	cfg := DefaultCodec(48, 32)
	stream, _, _, _ := encodeTestSequence(t, cfg, 6)

	collect := func(feed func(v *StreamVLD, fed *int)) []VLDEvent {
		v := NewStreamVLD()
		fed := 0
		var evs []VLDEvent
		retries := 0
		for {
			ev, err := v.Next()
			if errors.Is(err, ErrNeedData) {
				if fed >= len(stream) {
					t.Fatalf("needs data beyond stream end at %s", v.Progress())
				}
				feed(v, &fed)
				retries++
				if retries > len(stream)*8 {
					t.Fatal("no progress")
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			evs = append(evs, ev)
			if ev.Kind == EventEnd {
				return evs
			}
		}
	}

	oneShot := collect(func(v *StreamVLD, fed *int) {
		v.Extend(stream[*fed:])
		*fed = len(stream)
	})
	rng := rand.New(rand.NewSource(42))
	chunked := collect(func(v *StreamVLD, fed *int) {
		n := 1 + rng.Intn(7)
		if *fed+n > len(stream) {
			n = len(stream) - *fed
		}
		v.Extend(stream[*fed : *fed+n])
		*fed += n
	})

	if len(oneShot) != len(chunked) {
		t.Fatalf("event counts differ: %d vs %d", len(oneShot), len(chunked))
	}
	for i := range oneShot {
		a, b := oneShot[i], chunked[i]
		if a.Kind != b.Kind || a.MB != b.MB || a.Frame != b.Frame || a.Bits != b.Bits {
			t.Fatalf("event %d differs: %+v vs %+v", i, a, b)
		}
		if a.Tok.CBP != b.Tok.CBP || a.Tok.TokenCount() != b.Tok.TokenCount() {
			t.Fatalf("event %d tokens differ", i)
		}
	}
}

func TestStreamVLDCompact(t *testing.T) {
	cfg := DefaultCodec(48, 32)
	stream, _, _, _ := encodeTestSequence(t, cfg, 3)
	v := NewStreamVLD()
	v.Extend(stream)
	total := 0
	for {
		ev, err := v.Next()
		if err != nil {
			t.Fatal(err)
		}
		total += v.Compact()
		if ev.Kind == EventEnd {
			break
		}
	}
	if total > len(stream) || total < len(stream)-8 {
		t.Fatalf("compacted %d of %d bytes", total, len(stream))
	}
}

func TestStreamVLDCorruptionIsNotNeedData(t *testing.T) {
	cfg := DefaultCodec(32, 32)
	stream, _, _, _ := encodeTestSequence(t, cfg, 2)
	cp := make([]byte, len(stream))
	copy(cp, stream)
	cp[0] ^= 0xFF // destroy the magic
	v := NewStreamVLD()
	v.Extend(cp)
	_, err := v.Next()
	if err == nil || errors.Is(err, ErrNeedData) {
		t.Fatalf("err = %v, want corruption", err)
	}
}

func TestStreamVLDEventBitsSumToStream(t *testing.T) {
	cfg := DefaultCodec(32, 32)
	stream, _, _, _ := encodeTestSequence(t, cfg, 4)
	v := NewStreamVLD()
	v.Extend(stream)
	bits := 0
	for {
		ev, err := v.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Kind == EventEnd {
			break
		}
		bits += ev.Bits
	}
	if bits > len(stream)*8 || bits < (len(stream)-8)*8 {
		t.Fatalf("events account for %d bits of %d", bits, len(stream)*8)
	}
}

func TestRefChain(t *testing.T) {
	var rc RefChain
	i0, p1, b2 := NewFrame(16, 16), NewFrame(16, 16), NewFrame(16, 16)
	rc.Advance(i0, FrameI)
	if fwd, bwd := rc.Refs(FrameP); fwd != i0 || bwd != nil {
		t.Fatal("P refs after I")
	}
	rc.Advance(p1, FrameP)
	if fwd, bwd := rc.Refs(FrameB); fwd != i0 || bwd != p1 {
		t.Fatal("B refs after I,P")
	}
	rc.Advance(b2, FrameB) // B must not become a reference
	if fwd, bwd := rc.Refs(FrameB); fwd != i0 || bwd != p1 {
		t.Fatal("B frame polluted the reference chain")
	}
}

func TestMBSyntaxRoundTripAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mk := func(mode PredMode) (MBDecision, byte, [BlocksPerMB]Block) {
		dec := MBDecision{Mode: mode}
		if mode == PredFwd || mode == PredBi {
			dec.FMV = MV{int16(rng.Intn(15) - 7), int16(rng.Intn(15) - 7)}
		}
		if mode == PredBwd || mode == PredBi {
			dec.BMV = MV{int16(rng.Intn(15) - 7), int16(rng.Intn(15) - 7)}
		}
		var qzz [BlocksPerMB]Block
		cbp := byte(0)
		if mode != PredSkip {
			for b := 0; b < BlocksPerMB; b++ {
				if rng.Intn(2) == 0 {
					continue
				}
				for k := 0; k < 5; k++ {
					qzz[b][rng.Intn(64)] = int16(rng.Intn(9) - 4)
				}
				if NonzeroCount(&qzz[b]) > 0 {
					cbp |= 1 << b
				}
			}
		}
		return dec, cbp, qzz
	}
	cases := []struct {
		ftype FrameType
		modes []PredMode
	}{
		{FrameI, []PredMode{PredIntra}},
		{FrameP, []PredMode{PredIntra, PredFwd, PredSkip}},
		{FrameB, []PredMode{PredIntra, PredFwd, PredBwd, PredBi}},
	}
	for _, c := range cases {
		for trial := 0; trial < 30; trial++ {
			w := NewBitWriter()
			var emvp MVPredictor
			var want []MBDecision
			var wantTok []TokenMB
			for i := 0; i < 8; i++ {
				mode := c.modes[rng.Intn(len(c.modes))]
				dec, cbp, qzz := mk(mode)
				EncodeMBSyntax(w, c.ftype, dec, &emvp, cbp, &qzz)
				if mode == PredSkip {
					dec = MBDecision{Mode: PredSkip}
					cbp = 0
				}
				want = append(want, dec)
				tok := TokenMB{CBP: cbp}
				for b := 0; b < BlocksPerMB; b++ {
					if cbp&(1<<b) != 0 {
						tok.Events[b] = RunLength(&qzz[b])
					}
				}
				wantTok = append(wantTok, tok)
			}
			r := NewBitReader(w.Bytes())
			var dmvp MVPredictor
			for i := range want {
				dec, tok, err := ParseMBSyntax(r, c.ftype, &dmvp)
				if err != nil {
					t.Fatal(err)
				}
				if dec != want[i] {
					t.Fatalf("%v mb %d: dec %+v want %+v", c.ftype, i, dec, want[i])
				}
				if tok.CBP != wantTok[i].CBP {
					t.Fatalf("%v mb %d: cbp %x want %x", c.ftype, i, tok.CBP, wantTok[i].CBP)
				}
				for b := range tok.Events {
					if len(tok.Events[b]) != len(wantTok[i].Events[b]) {
						t.Fatalf("%v mb %d block %d: event count", c.ftype, i, b)
					}
					for k := range tok.Events[b] {
						if tok.Events[b][k] != wantTok[i].Events[b][k] {
							t.Fatalf("%v mb %d block %d ev %d", c.ftype, i, b, k)
						}
					}
				}
			}
		}
	}
}

func TestQuickTransformReconConsistent(t *testing.T) {
	// Property: TransformMB + RLSQDecodeMB + IDCTMB is the exact inverse
	// path the decoder runs, for any residual input.
	f := func(raw [256]int8, intra bool, qRaw uint8) bool {
		q := int(qRaw%20) + 1
		var resid [BlocksPerMB]Block
		for b := 0; b < BlocksPerMB; b++ {
			for i := 0; i < 64; i++ {
				resid[b][i] = int16(raw[b*64+i])
			}
		}
		qzz, cbp, _ := TransformMB(&resid, intra, q)
		tok := TokenMB{CBP: cbp}
		for b := 0; b < BlocksPerMB; b++ {
			if cbp&(1<<b) != 0 {
				tok.Events[b] = RunLength(&qzz[b])
			}
		}
		var coef, out [BlocksPerMB]Block
		if err := RLSQDecodeMB(&tok, q, &coef); err != nil {
			return false
		}
		IDCTMB(&coef, cbp, &out)
		// Independent check: direct dequantize + inverse-zigzag + IDCT.
		for b := 0; b < BlocksPerMB; b++ {
			var dzz, rm, want Block
			Dequantize(&qzz[b], &dzz, q)
			InverseZigzag(&dzz, &rm)
			if cbp&(1<<b) != 0 {
				IDCT(&rm, &want)
			}
			if out[b] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDecideMBIntraForUnpredictable(t *testing.T) {
	// Current content unrelated to the reference must go intra.
	ref := NewFrame(64, 64) // flat zero reference
	var mb MBPixels
	rng := rand.New(rand.NewSource(23))
	for i := range mb {
		mb[i] = byte(rng.Intn(256))
	}
	dec, ops := DecideMB(&mb, FrameP, 16, 16, ref, nil, 4, false)
	if dec.Mode != PredIntra {
		t.Fatalf("mode = %v, want intra", dec.Mode)
	}
	if ops == 0 {
		t.Fatal("no search ops reported")
	}
}

func TestDecideMBFwdForTranslation(t *testing.T) {
	ref := randomFrame(96, 96, 31)
	cur := NewFrame(96, 96)
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			cur.Pix[y*96+x] = ref.At(x+2, y+1)
		}
	}
	var mb MBPixels
	cur.GetMB(2, 2, &mb)
	dec, _ := DecideMB(&mb, FrameP, 32, 32, ref, nil, 4, false)
	if dec.Mode != PredFwd || dec.FMV != (MV{2, 1}) {
		t.Fatalf("dec = %+v", dec)
	}
}

func TestIsSkipMB(t *testing.T) {
	if !IsSkipMB(FrameP, MBDecision{Mode: PredFwd}, 0) {
		t.Fatal("skip expected")
	}
	if IsSkipMB(FrameP, MBDecision{Mode: PredFwd, FMV: MV{1, 0}}, 0) {
		t.Fatal("nonzero MV must not skip")
	}
	if IsSkipMB(FrameP, MBDecision{Mode: PredFwd}, 1) {
		t.Fatal("coded blocks must not skip")
	}
	if IsSkipMB(FrameB, MBDecision{Mode: PredFwd}, 0) {
		t.Fatal("B frames have no skip")
	}
	if IsSkipMB(FrameI, MBDecision{Mode: PredIntra}, 0) {
		t.Fatal("I frames have no skip")
	}
}
