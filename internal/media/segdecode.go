package media

import "fmt"

// DecodeSegment decodes coded frames [lo, hi) of a stream, starting at
// bit offset startBit — the GOPIndex.FrameBit of coded frame lo. The
// range must be bounded by closed cuts (IndexGOPs' guarantee): the
// segment then begins with an I frame, covers exactly display indices
// [lo, hi), and never references a frame outside the range, so it
// decodes with an empty initial reference chain, bit-identical to the
// same frames of a whole-stream decode.
//
// Streaming mode is required (opts.OnDisplayFrame must be set):
// delivered display indices are the global ones, and the returned
// result carries frame headers only. OnFrame checkpoints fire with
// global coded positions. All other DecodeOptions semantics match
// DecodeWithOptions.
func DecodeSegment(stream []byte, startBit, lo, hi int, opts DecodeOptions) (*DecodeResult, error) {
	if opts.OnDisplayFrame == nil {
		return nil, fmt.Errorf("media: DecodeSegment requires streaming mode (OnDisplayFrame)")
	}
	r := NewBitReader(stream)
	seq, err := ParseSeqHeader(r)
	if err != nil {
		return nil, err
	}
	if lo < 0 || hi > seq.Frames || lo >= hi {
		return nil, fmt.Errorf("media: segment [%d,%d) out of range [0,%d)", lo, hi, seq.Frames)
	}
	if startBit < r.BitPos() || startBit > len(stream)*8 {
		return nil, fmt.Errorf("media: segment start bit %d out of range", startBit)
	}
	r.Skip(uint(startBit - r.BitPos()))
	workers := opts.Workers
	if workers == 0 {
		workers = DecodeWorkers
	}
	if workers <= 1 {
		return decodeSerialSpan(r, seq, lo, hi, &opts)
	}
	return decodeParallelSpan(r, seq, lo, hi, &opts, workers)
}
