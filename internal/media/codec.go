package media

import (
	"fmt"
)

// Bitstream syntax (our own, documented here; see DESIGN.md for the
// substitution rationale):
//
//	sequence  := magic(32) mbCols(8) mbRows(8) q(6) gopN(8) gopM(4) frames(16) halfpel(1)
//	frame     := marker(16=0xFFA5) type(2) tref(16) mbdata...
//	mb (I)    := cbp(4) block*popcount(cbp)
//	mb (P)    := skip(1) | mode(1: 1=intra) [mvd_x(se) mvd_y(se)] cbp(4) blocks
//	mb (B)    := mode(2: 0=fwd 1=bwd 2=bi 3=intra) [mvds per used dir] cbp(4) blocks
//	block     := (runlevel-vlc)* eob
//
// Frames appear in coded order (references before the B frames that use
// them); the tref field carries the display index.

const (
	seqMagic    = 0x45434C31 // "ECL1"
	frameMarker = 0xFFA5
)

// SeqHeader carries the sequence-level parameters every pipeline stage
// needs. It is written once at the start of the bitstream.
type SeqHeader struct {
	MBCols, MBRows int
	Q              int  // quantizer, 1..63
	GOPN           int  // GOP length in display frames
	GOPM           int  // reference spacing (1 = no B frames, 3 = IBBP...)
	Frames         int  // total coded frames
	HalfPel        bool // motion vectors in half-pel units (MPEG-2 MC mode)
}

// W returns the picture width in pixels.
func (h *SeqHeader) W() int { return h.MBCols * MBSize }

// H returns the picture height in pixels.
func (h *SeqHeader) H() int { return h.MBRows * MBSize }

// MBCount returns macroblocks per frame.
func (h *SeqHeader) MBCount() int { return h.MBCols * h.MBRows }

// WriteSeqHeader serializes the sequence header.
func WriteSeqHeader(w *BitWriter, h *SeqHeader) {
	w.WriteBits(seqMagic, 32)
	w.WriteBits(uint32(h.MBCols), 8)
	w.WriteBits(uint32(h.MBRows), 8)
	w.WriteBits(uint32(h.Q), 6)
	w.WriteBits(uint32(h.GOPN), 8)
	w.WriteBits(uint32(h.GOPM), 4)
	w.WriteBits(uint32(h.Frames), 16)
	if h.HalfPel {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
}

// ParseSeqHeader reads and validates the sequence header.
func ParseSeqHeader(r *BitReader) (SeqHeader, error) {
	if m := r.ReadBits(32); m != seqMagic {
		return SeqHeader{}, fmt.Errorf("%w: bad magic %#x", ErrBitstream, m)
	}
	h := SeqHeader{
		MBCols: int(r.ReadBits(8)),
		MBRows: int(r.ReadBits(8)),
		Q:      int(r.ReadBits(6)),
		GOPN:   int(r.ReadBits(8)),
		GOPM:   int(r.ReadBits(4)),
		Frames: int(r.ReadBits(16)),
	}
	h.HalfPel = r.ReadBits(1) == 1
	if r.Err() != nil {
		return SeqHeader{}, r.Err()
	}
	if h.MBCols == 0 || h.MBRows == 0 || h.Q == 0 || h.GOPM == 0 {
		return SeqHeader{}, fmt.Errorf("%w: invalid sequence header %+v", ErrBitstream, h)
	}
	return h, nil
}

// FrameHdr is the per-frame header.
type FrameHdr struct {
	Type FrameType
	TRef uint16 // display index
}

// WriteFrameHdr serializes a frame header.
func WriteFrameHdr(w *BitWriter, h FrameHdr) {
	w.WriteBits(frameMarker, 16)
	w.WriteBits(uint32(h.Type), 2)
	w.WriteBits(uint32(h.TRef), 16)
}

// ParseFrameHdr reads and validates a frame header.
func ParseFrameHdr(r *BitReader) (FrameHdr, error) {
	if m := r.ReadBits(16); m != frameMarker {
		if r.Err() != nil {
			return FrameHdr{}, r.Err()
		}
		return FrameHdr{}, fmt.Errorf("%w: bad frame marker %#x at bit %d", ErrBitstream, m, r.BitPos())
	}
	h := FrameHdr{Type: FrameType(r.ReadBits(2)), TRef: uint16(r.ReadBits(16))}
	if r.Err() != nil {
		return FrameHdr{}, r.Err()
	}
	if h.Type > FrameB {
		return FrameHdr{}, fmt.Errorf("%w: bad frame type %d", ErrBitstream, h.Type)
	}
	return h, nil
}

// CodecConfig parameterizes the encoder.
type CodecConfig struct {
	W, H        int
	Q           int // quantizer, 1..63; higher = coarser
	GOPN        int // GOP length in display frames, e.g. 12
	GOPM        int // reference spacing: 1 = IPPP, 3 = IBBPBBP...
	SearchRange int // full-pel motion search radius
	// HalfPel enables half-pel motion vectors with bilinear
	// interpolation (the MPEG-2 MC mode); vectors in the bitstream are
	// then in half-pel units.
	HalfPel bool
}

// DefaultCodec returns encoder settings producing MPEG-like GOPs
// (IBBPBBP..., N=12, M=3) at a mid quantizer.
func DefaultCodec(w, h int) CodecConfig {
	return CodecConfig{W: w, H: h, Q: 6, GOPN: 12, GOPM: 3, SearchRange: 7}
}

// Validate checks the configuration for consistency.
func (c *CodecConfig) Validate() error { return c.validate() }

func (c *CodecConfig) validate() error {
	if c.W <= 0 || c.H <= 0 || c.W%MBSize != 0 || c.H%MBSize != 0 {
		return fmt.Errorf("media: bad dimensions %dx%d", c.W, c.H)
	}
	if c.Q < 1 || c.Q > 63 {
		return fmt.Errorf("media: quantizer %d out of range [1,63]", c.Q)
	}
	if c.GOPN < 1 || c.GOPN > 255 {
		return fmt.Errorf("media: GOP length %d out of range [1,255]", c.GOPN)
	}
	if c.GOPM < 1 || c.GOPM > 15 || c.GOPM > c.GOPN {
		return fmt.Errorf("media: GOP M %d invalid for N %d", c.GOPM, c.GOPN)
	}
	if c.SearchRange < 0 || c.SearchRange > 63 {
		return fmt.Errorf("media: search range %d out of range [0,63]", c.SearchRange)
	}
	return nil
}

// GOPTypes returns the frame types of a sequence of n frames in display
// order for the given GOP parameters. Frame 0 is always I; the last frame
// is promoted to a reference so no B frame lacks its backward reference.
func GOPTypes(n, gopN, gopM int) []FrameType {
	types := make([]FrameType, n)
	for i := 0; i < n; i++ {
		switch {
		case i%gopN == 0:
			types[i] = FrameI
		case (i%gopN)%gopM == 0:
			types[i] = FrameP
		default:
			types[i] = FrameB
		}
	}
	if n > 0 && types[n-1] == FrameB {
		types[n-1] = FrameP
	}
	return types
}

// CodedOrder converts display order to coded order: each reference frame
// precedes the B frames that reference it. It returns the display indices
// in coded order.
func CodedOrder(types []FrameType) []int {
	var order []int
	var pendingB []int
	for i, t := range types {
		if t == FrameB {
			pendingB = append(pendingB, i)
			continue
		}
		order = append(order, i)
		order = append(order, pendingB...)
		pendingB = nil
	}
	return append(order, pendingB...) // only non-empty for malformed inputs
}

// MVPredictor implements the MV prediction rule shared by encoder and
// decoder: per direction, the predictor is the previous macroblock's
// vector in that direction; it resets to zero at each macroblock-row
// start and after intra or skip macroblocks, and after macroblocks that
// do not use the direction.
type MVPredictor struct {
	Fwd, Bwd MV
}

// RowStart resets the predictor at the start of a macroblock row.
func (p *MVPredictor) RowStart() { *p = MVPredictor{} }

// Update advances the predictor past a coded macroblock.
func (p *MVPredictor) Update(mode PredMode, fmv, bmv MV) {
	switch mode {
	case PredFwd:
		p.Fwd, p.Bwd = fmv, MV{}
	case PredBwd:
		p.Fwd, p.Bwd = MV{}, bmv
	case PredBi:
		p.Fwd, p.Bwd = fmv, bmv
	default: // intra, skip
		*p = MVPredictor{}
	}
}

// MBDecision is the coding choice for one macroblock: prediction mode and
// motion vectors. It is produced by the encoder's mode decision (or the
// ME coprocessor) and recovered by the VLD when decoding.
type MBDecision struct {
	Mode     PredMode
	FMV, BMV MV
}

// bModeCode maps a B-frame prediction mode to its 2-bit code.
func bModeCode(m PredMode) int {
	switch m {
	case PredFwd:
		return 0
	case PredBwd:
		return 1
	case PredBi:
		return 2
	case PredIntra:
		return 3
	}
	panic("media: invalid B mode")
}

// bModeFromCode is the inverse of bModeCode.
func bModeFromCode(c uint32) PredMode {
	switch c {
	case 0:
		return PredFwd
	case 1:
		return PredBwd
	case 2:
		return PredBi
	default:
		return PredIntra
	}
}
