package media

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Fuzz harnesses for the two rewritten entropy-layer fast paths. Both
// compare the optimized implementation against a trivially-correct
// bit-at-a-time reference, so any divergence introduced by the 64-bit
// accumulator refill or the first-level decode LUT is caught directly.

// refBits reads n bits MSB first starting at absolute bit position pos,
// one bit at a time — the reference semantics of BitReader.ReadBits.
// Bits at or beyond endBytes*8 read as zero (PeekBits' tail padding).
func refBits(buf []byte, pos int, n uint, endBytes int) uint32 {
	var v uint32
	for i := 0; i < int(n); i++ {
		p := pos + i
		var b byte
		if p < endBytes*8 {
			b = (buf[p>>3] >> (7 - uint(p&7))) & 1
		}
		v = v<<1 | uint32(b)
	}
	return v
}

// FuzzBitReaderRoundTrip drives a write sequence through BitWriter,
// checks the serialized stream bit-for-bit against the reference, then
// reads it back through a BitReader exercising the streaming surface:
// a truncated initial buffer, Mark/Reset + Extend to cure PastEnd,
// PeekBits at arbitrary positions, and Compact mid-stream.
func FuzzBitReaderRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xff, 0x00, 0xab, 0xcd, 0x1f, 0x80, 0x80, 0x80, 0x80, 0x80})
	f.Add(bytes.Repeat([]byte{0x1f, 0xee, 0x55, 0xaa, 0x07}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		type wr struct {
			v uint32
			n uint
		}
		var writes []wr
		w := NewBitWriter()
		totalBits := 0
		for i := 0; i+5 <= len(data) && len(writes) < 256; i += 5 {
			n := uint(data[i]%32) + 1
			mask := ^uint32(0)
			if n < 32 {
				mask = 1<<n - 1
			}
			v := binary.LittleEndian.Uint32(data[i+1:]) & mask
			writes = append(writes, wr{v, n})
			w.WriteBits(v, n)
			totalBits += int(n)
			if got := w.BitLen(); got != totalBits {
				t.Fatalf("BitLen after %d writes = %d, want %d", len(writes), got, totalBits)
			}
		}
		stream := w.Bytes()
		if len(stream) != (totalBits+7)/8 {
			t.Fatalf("stream is %d bytes for %d bits", len(stream), totalBits)
		}

		// Writer check: the reference reader must reproduce every write.
		pos := 0
		for i, x := range writes {
			if got := refBits(stream, pos, x.n, len(stream)); got != x.v {
				t.Fatalf("write %d: stream holds %#x, wrote %#x (%d bits at bit %d)", i, got, x.v, x.n, pos)
			}
			pos += int(x.n)
		}

		// Reader check: start with a truncated buffer and cure PastEnd via
		// Mark/Reset + Extend, as the streaming VLD does.
		split := 0
		if len(data) > 0 {
			split = int(data[0]) % (len(stream) + 1)
		}
		r := NewBitReader(stream[:split])
		visible := split // bytes of stream the reader has been given
		dropped := 0     // bytes discarded by Compact
		pos = 0
		for i, x := range writes {
			m := r.Mark()
			got := r.ReadBits(x.n)
			if r.Err() != nil {
				if !r.PastEnd() {
					t.Fatalf("read %d: non-PastEnd error on truncation: %v", i, r.Err())
				}
				if visible == len(stream) {
					t.Fatalf("read %d: PastEnd with the full stream visible: %v", i, r.Err())
				}
				r.Reset(m)
				r.Extend(stream[visible:])
				visible = len(stream)
				got = r.ReadBits(x.n)
				if r.Err() != nil {
					t.Fatalf("read %d: error after Extend: %v", i, r.Err())
				}
			}
			if got != x.v {
				t.Fatalf("read %d: got %#x, want %#x (%d bits at bit %d)", i, got, x.v, x.n, pos)
			}
			pos += int(x.n)
			if abs := dropped*8 + r.BitPos(); abs != pos {
				t.Fatalf("read %d: absolute position %d, want %d", i, abs, pos)
			}
			// Peek with zero padding must match the padded reference over
			// the visible prefix, for any length including 0.
			pn := uint((i * 7) % 33)
			if got, want := r.PeekBits(pn), refBits(stream, pos, pn, visible); got != want {
				t.Fatalf("peek %d bits at bit %d: got %#x, want %#x", pn, pos, got, want)
			}
			if i%3 == 0 {
				dropped += r.Compact()
			}
		}
		if visible == len(stream) {
			if got, want := dropped*8+r.BitPos(), totalBits; got != want {
				t.Fatalf("final absolute position %d, want %d", got, want)
			}
		}
	})
}

// FuzzHuffDecode builds a Huffman table from fuzzed frequencies and
// checks that the LUT-accelerated Decode and the bit-serial canonical
// walk agree symbol-for-symbol — on a valid encoded sequence and on raw
// fuzz bytes (where invalid codes and truncation must produce the same
// symbol, bit count, position, and error classification).
func FuzzHuffDecode(f *testing.F) {
	f.Add([]byte{1, 1}, []byte{0x00})
	f.Add([]byte{9, 3, 3, 1, 1, 0, 200, 45}, []byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Add(bytes.Repeat([]byte{1}, 40), bytes.Repeat([]byte{0x5a}, 16))
	f.Fuzz(func(t *testing.T, freqData, stream []byte) {
		nsym := len(freqData)
		if nsym < 2 {
			return
		}
		if nsym > 64 {
			nsym = 64
		}
		freq := make([]uint64, nsym)
		for i := 0; i < nsym; i++ {
			// Skew so deep (> huffLUTBits) codes appear for larger nsym.
			freq[i] = uint64(freqData[i]) << (uint(i) % 24)
		}
		lengths := HuffCodeLengths(freq)
		tab, err := NewHuffTable(lengths)
		if err != nil {
			t.Fatalf("NewHuffTable: %v", err)
		}
		if tab.MaxLen() == 0 {
			return // all frequencies zero: nothing to decode
		}

		// Round trip: encode a symbol sequence, decode it back with the
		// LUT path, and cross-check every step against the serial walk.
		var coded []int
		for s, l := range lengths {
			if l > 0 {
				coded = append(coded, s)
			}
		}
		w := NewBitWriter()
		var seq []int
		for _, b := range stream {
			sym := coded[int(b)%len(coded)]
			seq = append(seq, sym)
			tab.Encode(w, sym)
		}
		enc := w.Bytes()
		r := NewBitReader(enc)
		rs := NewBitReader(enc)
		for i, want := range seq {
			sym, bits := tab.Decode(r)
			ssym, sbits := tab.decodeSerial(rs)
			if sym != want || bits != uint(lengths[want]) || r.Err() != nil {
				t.Fatalf("decode %d: got (%d, %d bits, err %v), want symbol %d in %d bits", i, sym, bits, r.Err(), want, lengths[want])
			}
			if sym != ssym || bits != sbits || r.BitPos() != rs.BitPos() {
				t.Fatalf("decode %d: LUT (%d, %d, pos %d) != serial (%d, %d, pos %d)", i, sym, bits, r.BitPos(), ssym, sbits, rs.BitPos())
			}
		}

		// Adversarial: decode the raw fuzz bytes with both paths until the
		// first error; every step must agree exactly, including how the
		// final failure is classified (PastEnd vs corruption).
		r1 := NewBitReader(freqData)
		r2 := NewBitReader(freqData)
		for step := 0; step < 8*len(freqData)+2; step++ {
			s1, b1 := tab.Decode(r1)
			s2, b2 := tab.decodeSerial(r2)
			if s1 != s2 || b1 != b2 {
				t.Fatalf("step %d: LUT (%d, %d) != serial (%d, %d)", step, s1, b1, s2, b2)
			}
			if r1.BitPos() != r2.BitPos() {
				t.Fatalf("step %d: LUT pos %d != serial pos %d", step, r1.BitPos(), r2.BitPos())
			}
			e1, e2 := r1.Err(), r2.Err()
			if (e1 == nil) != (e2 == nil) || r1.PastEnd() != r2.PastEnd() {
				t.Fatalf("step %d: LUT err %v (pastEnd %v) != serial err %v (pastEnd %v)", step, e1, r1.PastEnd(), e2, r2.PastEnd())
			}
			if e1 != nil {
				if e1.Error() != e2.Error() {
					t.Fatalf("step %d: error text diverged: %q vs %q", step, e1, e2)
				}
				break
			}
		}
	})
}
