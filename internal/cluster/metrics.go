package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"eclipse/internal/serve"
)

// nKinds mirrors the serve package's job kinds (decode/encode/transcode).
const nKinds = 3

// kinds enumerates them for metric rendering.
var kinds = [nKinds]serve.Kind{serve.KindDecode, serve.KindEncode, serve.KindTranscode}

// Metrics is the gateway's counter/histogram registry. Everything is
// atomic; the request path never takes a lock here.
type Metrics struct {
	Start time.Time

	Requests [nKinds]atomic.Uint64 // client requests by kind
	Errors   [nKinds]atomic.Uint64 // requests that ended non-2xx/3xx
	// Latency is end-to-end gateway latency (including retries and
	// hedge waits); AttemptLat is per-attempt upstream latency of
	// successful attempts only — the distribution that feeds the hedge
	// trigger, uncontaminated by the hedges it causes.
	Latency    [nKinds]serve.Hist
	AttemptLat [nKinds]serve.Hist
	Hedges     [nKinds]atomic.Uint64 // hedge attempts launched
	HedgeWins  [nKinds]atomic.Uint64 // requests won by the hedge attempt

	Retries     atomic.Uint64 // retry attempts launched (backoff path)
	RingChurn   atomic.Uint64 // backend state transitions (routable-set edits)
	NoBackend   atomic.Uint64 // requests refused: no routable backend
	MidStream   atomic.Uint64 // upstream died after headers: 502, no partial body
	BytesIn     atomic.Uint64
	BytesOut    atomic.Uint64
	Passthrough atomic.Uint64 // 429/503 pushback responses relayed verbatim
}

// NewMetrics returns a zeroed registry stamped with the start time.
func NewMetrics() *Metrics { return &Metrics{Start: time.Now()} }

// KindSnapshot is one kind's row in /varz.
type KindSnapshot struct {
	Kind      string  `json:"kind"`
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	Hedges    uint64  `json:"hedges"`
	HedgeWins uint64  `json:"hedge_wins"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
	HedgeMs   float64 `json:"hedge_after_ms"` // current hedge trigger delay
}

// Snapshot is the gateway /varz document.
type Snapshot struct {
	UptimeSec   float64           `json:"uptime_sec"`
	Routable    int               `json:"routable_backends"`
	Backends    []BackendSnapshot `json:"backends"`
	Kinds       []KindSnapshot    `json:"kinds"`
	RingChurn   uint64            `json:"ring_churn_total"`
	Retries     uint64            `json:"retries_total"`
	NoBackend   uint64            `json:"no_backend_total"`
	MidStream   uint64            `json:"mid_stream_502_total"`
	Passthrough uint64            `json:"pushback_passthrough_total"`
	BytesIn     uint64            `json:"bytes_in_total"`
	BytesOut    uint64            `json:"bytes_out_total"`
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// WritePrometheus renders the gateway metric families in the Prometheus
// text exposition format, dependency-free like the serve registry.
func (g *Gateway) WritePrometheus(w io.Writer) {
	m := g.met
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP eclipse_gateway_uptime_seconds Time since gateway start.\n")
	p("# TYPE eclipse_gateway_uptime_seconds gauge\n")
	p("eclipse_gateway_uptime_seconds %g\n", time.Since(m.Start).Seconds())

	p("# HELP eclipse_gateway_requests_total Client requests by kind.\n")
	p("# TYPE eclipse_gateway_requests_total counter\n")
	for _, k := range kinds {
		p("eclipse_gateway_requests_total{kind=%q} %d\n", k.String(), m.Requests[k].Load())
	}
	p("# HELP eclipse_gateway_errors_total Requests that ended non-2xx/3xx, by kind.\n")
	p("# TYPE eclipse_gateway_errors_total counter\n")
	for _, k := range kinds {
		p("eclipse_gateway_errors_total{kind=%q} %d\n", k.String(), m.Errors[k].Load())
	}
	p("# HELP eclipse_gateway_hedges_total Hedge attempts launched, by kind.\n")
	p("# TYPE eclipse_gateway_hedges_total counter\n")
	for _, k := range kinds {
		p("eclipse_gateway_hedges_total{kind=%q} %d\n", k.String(), m.Hedges[k].Load())
	}
	p("# HELP eclipse_gateway_hedge_wins_total Requests answered first by the hedge attempt, by kind.\n")
	p("# TYPE eclipse_gateway_hedge_wins_total counter\n")
	for _, k := range kinds {
		p("eclipse_gateway_hedge_wins_total{kind=%q} %d\n", k.String(), m.HedgeWins[k].Load())
	}

	p("# HELP eclipse_gateway_retries_total Retry attempts launched after safe failures.\n")
	p("# TYPE eclipse_gateway_retries_total counter\n")
	p("eclipse_gateway_retries_total %d\n", m.Retries.Load())
	p("# HELP eclipse_gateway_ring_churn_total Backend state transitions (edits to the routable set).\n")
	p("# TYPE eclipse_gateway_ring_churn_total counter\n")
	p("eclipse_gateway_ring_churn_total %d\n", m.RingChurn.Load())
	p("# HELP eclipse_gateway_no_backend_total Requests refused because no backend was routable.\n")
	p("# TYPE eclipse_gateway_no_backend_total counter\n")
	p("eclipse_gateway_no_backend_total %d\n", m.NoBackend.Load())
	p("# HELP eclipse_gateway_mid_stream_errors_total Upstream connections that died after the response headers (returned as 502, never a partial body).\n")
	p("# TYPE eclipse_gateway_mid_stream_errors_total counter\n")
	p("eclipse_gateway_mid_stream_errors_total %d\n", m.MidStream.Load())
	p("# HELP eclipse_gateway_pushback_passthrough_total 429/503 pushback responses relayed verbatim after retries were exhausted.\n")
	p("# TYPE eclipse_gateway_pushback_passthrough_total counter\n")
	p("eclipse_gateway_pushback_passthrough_total %d\n", m.Passthrough.Load())
	p("# HELP eclipse_gateway_bytes_in_total Request payload bytes accepted.\n")
	p("# TYPE eclipse_gateway_bytes_in_total counter\n")
	p("eclipse_gateway_bytes_in_total %d\n", m.BytesIn.Load())
	p("# HELP eclipse_gateway_bytes_out_total Response payload bytes sent.\n")
	p("# TYPE eclipse_gateway_bytes_out_total counter\n")
	p("eclipse_gateway_bytes_out_total %d\n", m.BytesOut.Load())

	p("# HELP eclipse_gateway_backend_state Backend routability (1 = in the named state).\n")
	p("# TYPE eclipse_gateway_backend_state gauge\n")
	for _, b := range g.backends {
		st := b.State()
		for _, s := range []BackendState{StateDown, StateUp, StateDraining} {
			v := 0
			if st == s {
				v = 1
			}
			p("eclipse_gateway_backend_state{backend=%q,state=%q} %d\n", b.name, s.String(), v)
		}
	}
	for _, fam := range []struct {
		name, help string
		val        func(*Backend) uint64
	}{
		{"backend_requests_total", "Proxied attempts per backend.", func(b *Backend) uint64 { return b.requests.Load() }},
		{"backend_errors_total", "Failed attempts per backend (transport errors and 5xx).", func(b *Backend) uint64 { return b.errors.Load() }},
		{"backend_hedges_total", "Hedge attempts per backend.", func(b *Backend) uint64 { return b.hedges.Load() }},
		{"backend_ejections_total", "Passive ejections (consecutive transport failures).", func(b *Backend) uint64 { return b.ejections.Load() }},
		{"backend_drains_total", "Transitions into the draining state.", func(b *Backend) uint64 { return b.drains.Load() }},
		{"backend_probe_failures_total", "Active health probes that failed.", func(b *Backend) uint64 { return b.probeFail.Load() }},
	} {
		p("# HELP eclipse_gateway_%s %s\n", fam.name, fam.help)
		p("# TYPE eclipse_gateway_%s counter\n", fam.name)
		for _, b := range g.backends {
			p("eclipse_gateway_%s{backend=%q} %d\n", fam.name, b.name, fam.val(b))
		}
	}

	p("# HELP eclipse_gateway_latency_seconds End-to-end request latency through the gateway (includes retries and hedge waits).\n")
	p("# TYPE eclipse_gateway_latency_seconds histogram\n")
	for _, k := range kinds {
		snap := m.Latency[k].Snapshot()
		var cum uint64
		for i := range snap.Buckets {
			cum += snap.Buckets[i]
			le := float64(serve.BucketUpperUS(i)) / 1e6
			p("eclipse_gateway_latency_seconds_bucket{kind=%q,le=%q} %d\n", k.String(), fmt.Sprintf("%g", le), cum)
		}
		p("eclipse_gateway_latency_seconds_bucket{kind=%q,le=\"+Inf\"} %d\n", k.String(), snap.Count)
		p("eclipse_gateway_latency_seconds_sum{kind=%q} %g\n", k.String(), float64(snap.SumNs)/1e9)
		p("eclipse_gateway_latency_seconds_count{kind=%q} %d\n", k.String(), snap.Count)
	}
}

// varz assembles the JSON status document.
func (g *Gateway) varz() Snapshot {
	m := g.met
	ks := make([]KindSnapshot, 0, nKinds)
	for _, k := range kinds {
		ks = append(ks, KindSnapshot{
			Kind:      k.String(),
			Requests:  m.Requests[k].Load(),
			Errors:    m.Errors[k].Load(),
			Hedges:    m.Hedges[k].Load(),
			HedgeWins: m.HedgeWins[k].Load(),
			P50Ms:     ms(m.Latency[k].Quantile(0.50)),
			P99Ms:     ms(m.Latency[k].Quantile(0.99)),
			MeanMs:    ms(m.Latency[k].Mean()),
			HedgeMs:   ms(g.hedgeDelay(k)),
		})
	}
	bs := make([]BackendSnapshot, 0, len(g.backends))
	for _, b := range g.backends {
		bs = append(bs, b.Snapshot())
	}
	return Snapshot{
		UptimeSec:   time.Since(m.Start).Seconds(),
		Routable:    g.ring.routable(),
		Backends:    bs,
		Kinds:       ks,
		RingChurn:   m.RingChurn.Load(),
		Retries:     m.Retries.Load(),
		NoBackend:   m.NoBackend.Load(),
		MidStream:   m.MidStream.Load(),
		Passthrough: m.Passthrough.Load(),
		BytesIn:     m.BytesIn.Load(),
		BytesOut:    m.BytesOut.Load(),
	}
}
