package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"eclipse/internal/serve"
)

// nKinds mirrors the serve package's job kinds (decode/encode/transcode).
const nKinds = 3

// kinds enumerates them for metric rendering.
var kinds = [nKinds]serve.Kind{serve.KindDecode, serve.KindEncode, serve.KindTranscode}

// Metrics is the gateway's counter/histogram registry. Everything is
// atomic; the request path never takes a lock here.
type Metrics struct {
	Start time.Time

	Requests [nKinds]atomic.Uint64 // client requests by kind
	Errors   [nKinds]atomic.Uint64 // requests that ended non-2xx/3xx
	// Latency is end-to-end gateway latency (including retries and
	// hedge waits); AttemptLat is per-attempt upstream latency of
	// successful attempts only — the distribution that feeds the hedge
	// trigger, uncontaminated by the hedges it causes.
	Latency    [nKinds]serve.Hist
	AttemptLat [nKinds]serve.Hist
	Hedges     [nKinds]atomic.Uint64 // hedge attempts launched
	HedgeWins  [nKinds]atomic.Uint64 // requests won by the hedge attempt

	Retries     atomic.Uint64 // retry attempts launched (backoff path)
	RingChurn   atomic.Uint64 // backend state transitions (routable-set edits)
	NoBackend   atomic.Uint64 // requests refused: no routable backend
	MidStream   atomic.Uint64 // upstream died after headers: 502, no partial body
	BytesIn     atomic.Uint64
	BytesOut    atomic.Uint64
	Passthrough atomic.Uint64 // 429/503 pushback responses relayed verbatim

	// L1 edge cache (cache.go). L1HitLat is a separate histogram so
	// sub-millisecond hits never enter Latency/AttemptLat — the hedge
	// trigger's p95 stays a proxied-work distribution by construction.
	L1Hits          atomic.Uint64 // served from a fresh resident entry
	L1Misses        atomic.Uint64 // no resident entry at lookup
	L1Stale         atomic.Uint64 // resident but past freshness: revalidation candidate
	L1Revalidations atomic.Uint64 // 304s that refreshed residency without a body
	L1ClientNotMod  atomic.Uint64 // client If-None-Match answered 304 locally
	L1Collapsed     atomic.Uint64 // followers served off another request's flight
	L1Fills         atomic.Uint64 // bodies copied into the L1
	L1Evictions     atomic.Uint64 // entries dropped for byte pressure
	L1TooLarge      atomic.Uint64 // fills skipped: entry exceeds a shard budget
	L1HitLat        serve.Hist    // L1 hit latency (kept out of Latency/AttemptLat)

	StreamThrough   atomic.Uint64 // over-cap responses streamed without buffering
	StreamTruncated atomic.Uint64 // stream relays that died mid-copy (connection severed)
}

// NewMetrics returns a zeroed registry stamped with the start time.
func NewMetrics() *Metrics { return &Metrics{Start: time.Now()} }

// KindSnapshot is one kind's row in /varz.
type KindSnapshot struct {
	Kind      string  `json:"kind"`
	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	Hedges    uint64  `json:"hedges"`
	HedgeWins uint64  `json:"hedge_wins"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MeanMs    float64 `json:"mean_ms"`
	HedgeMs   float64 `json:"hedge_after_ms"` // current hedge trigger delay
}

// L1Snapshot is the /varz view of the gateway's edge cache.
type L1Snapshot struct {
	Enabled       bool    `json:"enabled"`
	ResidentBytes int64   `json:"resident_bytes"`
	Entries       int     `json:"entries"`
	BudgetBytes   int64   `json:"budget_bytes"`
	Hits          uint64  `json:"hits_total"`
	Misses        uint64  `json:"misses_total"`
	Stale         uint64  `json:"stale_total"`
	Revalidations uint64  `json:"revalidations_total"`
	ClientNotMod  uint64  `json:"client_not_modified_total"`
	Collapsed     uint64  `json:"collapsed_total"`
	Fills         uint64  `json:"fills_total"`
	Evictions     uint64  `json:"evictions_total"`
	TooLarge      uint64  `json:"too_large_total"`
	HitP50Ms      float64 `json:"hit_p50_ms"`
	HitP99Ms      float64 `json:"hit_p99_ms"`
}

// Snapshot is the gateway /varz document.
type Snapshot struct {
	UptimeSec       float64           `json:"uptime_sec"`
	Routable        int               `json:"routable_backends"`
	Backends        []BackendSnapshot `json:"backends"`
	Kinds           []KindSnapshot    `json:"kinds"`
	L1              L1Snapshot        `json:"l1"`
	RingChurn       uint64            `json:"ring_churn_total"`
	Retries         uint64            `json:"retries_total"`
	NoBackend       uint64            `json:"no_backend_total"`
	MidStream       uint64            `json:"mid_stream_502_total"`
	Passthrough     uint64            `json:"pushback_passthrough_total"`
	StreamThrough   uint64            `json:"stream_through_total"`
	StreamTruncated uint64            `json:"stream_truncated_total"`
	BytesIn         uint64            `json:"bytes_in_total"`
	BytesOut        uint64            `json:"bytes_out_total"`
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// WritePrometheus renders the gateway metric families in the Prometheus
// text exposition format, dependency-free like the serve registry.
func (g *Gateway) WritePrometheus(w io.Writer) {
	m := g.met
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP eclipse_gateway_uptime_seconds Time since gateway start.\n")
	p("# TYPE eclipse_gateway_uptime_seconds gauge\n")
	p("eclipse_gateway_uptime_seconds %g\n", time.Since(m.Start).Seconds())

	p("# HELP eclipse_gateway_requests_total Client requests by kind.\n")
	p("# TYPE eclipse_gateway_requests_total counter\n")
	for _, k := range kinds {
		p("eclipse_gateway_requests_total{kind=%q} %d\n", k.String(), m.Requests[k].Load())
	}
	p("# HELP eclipse_gateway_errors_total Requests that ended non-2xx/3xx, by kind.\n")
	p("# TYPE eclipse_gateway_errors_total counter\n")
	for _, k := range kinds {
		p("eclipse_gateway_errors_total{kind=%q} %d\n", k.String(), m.Errors[k].Load())
	}
	p("# HELP eclipse_gateway_hedges_total Hedge attempts launched, by kind.\n")
	p("# TYPE eclipse_gateway_hedges_total counter\n")
	for _, k := range kinds {
		p("eclipse_gateway_hedges_total{kind=%q} %d\n", k.String(), m.Hedges[k].Load())
	}
	p("# HELP eclipse_gateway_hedge_wins_total Requests answered first by the hedge attempt, by kind.\n")
	p("# TYPE eclipse_gateway_hedge_wins_total counter\n")
	for _, k := range kinds {
		p("eclipse_gateway_hedge_wins_total{kind=%q} %d\n", k.String(), m.HedgeWins[k].Load())
	}

	p("# HELP eclipse_gateway_retries_total Retry attempts launched after safe failures.\n")
	p("# TYPE eclipse_gateway_retries_total counter\n")
	p("eclipse_gateway_retries_total %d\n", m.Retries.Load())
	p("# HELP eclipse_gateway_ring_churn_total Backend state transitions (edits to the routable set).\n")
	p("# TYPE eclipse_gateway_ring_churn_total counter\n")
	p("eclipse_gateway_ring_churn_total %d\n", m.RingChurn.Load())
	p("# HELP eclipse_gateway_no_backend_total Requests refused because no backend was routable.\n")
	p("# TYPE eclipse_gateway_no_backend_total counter\n")
	p("eclipse_gateway_no_backend_total %d\n", m.NoBackend.Load())
	p("# HELP eclipse_gateway_mid_stream_errors_total Upstream connections that died after the response headers (returned as 502, never a partial body).\n")
	p("# TYPE eclipse_gateway_mid_stream_errors_total counter\n")
	p("eclipse_gateway_mid_stream_errors_total %d\n", m.MidStream.Load())
	p("# HELP eclipse_gateway_pushback_passthrough_total 429/503 pushback responses relayed verbatim after retries were exhausted.\n")
	p("# TYPE eclipse_gateway_pushback_passthrough_total counter\n")
	p("eclipse_gateway_pushback_passthrough_total %d\n", m.Passthrough.Load())
	p("# HELP eclipse_gateway_stream_through_total Over-cap upstream responses streamed to the client without buffering.\n")
	p("# TYPE eclipse_gateway_stream_through_total counter\n")
	p("eclipse_gateway_stream_through_total %d\n", m.StreamThrough.Load())
	p("# HELP eclipse_gateway_stream_truncated_total Streamed relays that died mid-copy (client connection severed).\n")
	p("# TYPE eclipse_gateway_stream_truncated_total counter\n")
	p("eclipse_gateway_stream_truncated_total %d\n", m.StreamTruncated.Load())
	p("# HELP eclipse_gateway_bytes_in_total Request payload bytes accepted.\n")
	p("# TYPE eclipse_gateway_bytes_in_total counter\n")
	p("eclipse_gateway_bytes_in_total %d\n", m.BytesIn.Load())
	p("# HELP eclipse_gateway_bytes_out_total Response payload bytes sent.\n")
	p("# TYPE eclipse_gateway_bytes_out_total counter\n")
	p("eclipse_gateway_bytes_out_total %d\n", m.BytesOut.Load())

	for _, fam := range []struct {
		name, help string
		val        uint64
	}{
		{"l1_hits_total", "Requests served from a fresh resident L1 entry.", m.L1Hits.Load()},
		{"l1_misses_total", "Requests with no resident L1 entry at lookup.", m.L1Misses.Load()},
		{"l1_stale_total", "L1 lookups that found an entry past its freshness window.", m.L1Stale.Load()},
		{"l1_revalidations_total", "Stale entries refreshed by an upstream 304 without a body transfer.", m.L1Revalidations.Load()},
		{"l1_client_not_modified_total", "Client If-None-Match requests answered 304 at the gateway.", m.L1ClientNotMod.Load()},
		{"l1_collapsed_total", "Requests served off another request's in-flight fill.", m.L1Collapsed.Load()},
		{"l1_fills_total", "Response bodies copied into the L1.", m.L1Fills.Load()},
		{"l1_evictions_total", "L1 entries evicted for byte pressure.", m.L1Evictions.Load()},
		{"l1_too_large_total", "L1 fills skipped because the entry exceeds a shard budget.", m.L1TooLarge.Load()},
	} {
		p("# HELP eclipse_gateway_%s %s\n", fam.name, fam.help)
		p("# TYPE eclipse_gateway_%s counter\n", fam.name)
		p("eclipse_gateway_%s %d\n", fam.name, fam.val)
	}
	p("# HELP eclipse_gateway_l1_resident_bytes Bytes currently resident in the L1 edge cache.\n")
	p("# TYPE eclipse_gateway_l1_resident_bytes gauge\n")
	var l1Resident int64
	if g.l1 != nil {
		l1Resident = g.l1.ResidentBytes()
	}
	p("eclipse_gateway_l1_resident_bytes %d\n", l1Resident)

	p("# HELP eclipse_gateway_backend_state Backend routability (1 = in the named state).\n")
	p("# TYPE eclipse_gateway_backend_state gauge\n")
	for _, b := range g.backends {
		st := b.State()
		for _, s := range []BackendState{StateDown, StateUp, StateDraining} {
			v := 0
			if st == s {
				v = 1
			}
			p("eclipse_gateway_backend_state{backend=%q,state=%q} %d\n", b.name, s.String(), v)
		}
	}
	for _, fam := range []struct {
		name, help string
		val        func(*Backend) uint64
	}{
		{"backend_requests_total", "Proxied attempts per backend.", func(b *Backend) uint64 { return b.requests.Load() }},
		{"backend_errors_total", "Failed attempts per backend (transport errors and 5xx).", func(b *Backend) uint64 { return b.errors.Load() }},
		{"backend_hedges_total", "Hedge attempts per backend.", func(b *Backend) uint64 { return b.hedges.Load() }},
		{"backend_ejections_total", "Passive ejections (consecutive transport failures).", func(b *Backend) uint64 { return b.ejections.Load() }},
		{"backend_drains_total", "Transitions into the draining state.", func(b *Backend) uint64 { return b.drains.Load() }},
		{"backend_probe_failures_total", "Active health probes that failed.", func(b *Backend) uint64 { return b.probeFail.Load() }},
	} {
		p("# HELP eclipse_gateway_%s %s\n", fam.name, fam.help)
		p("# TYPE eclipse_gateway_%s counter\n", fam.name)
		for _, b := range g.backends {
			p("eclipse_gateway_%s{backend=%q} %d\n", fam.name, b.name, fam.val(b))
		}
	}

	p("# HELP eclipse_gateway_latency_seconds End-to-end request latency through the gateway (includes retries and hedge waits).\n")
	p("# TYPE eclipse_gateway_latency_seconds histogram\n")
	for _, k := range kinds {
		snap := m.Latency[k].Snapshot()
		var cum uint64
		for i := range snap.Buckets {
			cum += snap.Buckets[i]
			le := float64(serve.BucketUpperUS(i)) / 1e6
			p("eclipse_gateway_latency_seconds_bucket{kind=%q,le=%q} %d\n", k.String(), fmt.Sprintf("%g", le), cum)
		}
		p("eclipse_gateway_latency_seconds_bucket{kind=%q,le=\"+Inf\"} %d\n", k.String(), snap.Count)
		p("eclipse_gateway_latency_seconds_sum{kind=%q} %g\n", k.String(), float64(snap.SumNs)/1e9)
		p("eclipse_gateway_latency_seconds_count{kind=%q} %d\n", k.String(), snap.Count)
	}

	p("# HELP eclipse_gateway_l1_hit_latency_seconds L1 hit latency (excluded from the proxied latency and hedge-trigger histograms).\n")
	p("# TYPE eclipse_gateway_l1_hit_latency_seconds histogram\n")
	hsnap := m.L1HitLat.Snapshot()
	var hcum uint64
	for i := range hsnap.Buckets {
		hcum += hsnap.Buckets[i]
		le := float64(serve.BucketUpperUS(i)) / 1e6
		p("eclipse_gateway_l1_hit_latency_seconds_bucket{le=%q} %d\n", fmt.Sprintf("%g", le), hcum)
	}
	p("eclipse_gateway_l1_hit_latency_seconds_bucket{le=\"+Inf\"} %d\n", hsnap.Count)
	p("eclipse_gateway_l1_hit_latency_seconds_sum %g\n", float64(hsnap.SumNs)/1e9)
	p("eclipse_gateway_l1_hit_latency_seconds_count %d\n", hsnap.Count)
}

// varz assembles the JSON status document.
func (g *Gateway) varz() Snapshot {
	m := g.met
	ks := make([]KindSnapshot, 0, nKinds)
	for _, k := range kinds {
		ks = append(ks, KindSnapshot{
			Kind:      k.String(),
			Requests:  m.Requests[k].Load(),
			Errors:    m.Errors[k].Load(),
			Hedges:    m.Hedges[k].Load(),
			HedgeWins: m.HedgeWins[k].Load(),
			P50Ms:     ms(m.Latency[k].Quantile(0.50)),
			P99Ms:     ms(m.Latency[k].Quantile(0.99)),
			MeanMs:    ms(m.Latency[k].Mean()),
			HedgeMs:   ms(g.hedgeDelay(k)),
		})
	}
	bs := make([]BackendSnapshot, 0, len(g.backends))
	for _, b := range g.backends {
		bs = append(bs, b.Snapshot())
	}
	l1 := L1Snapshot{
		Hits:          m.L1Hits.Load(),
		Misses:        m.L1Misses.Load(),
		Stale:         m.L1Stale.Load(),
		Revalidations: m.L1Revalidations.Load(),
		ClientNotMod:  m.L1ClientNotMod.Load(),
		Collapsed:     m.L1Collapsed.Load(),
		Fills:         m.L1Fills.Load(),
		Evictions:     m.L1Evictions.Load(),
		TooLarge:      m.L1TooLarge.Load(),
		HitP50Ms:      ms(m.L1HitLat.Quantile(0.50)),
		HitP99Ms:      ms(m.L1HitLat.Quantile(0.99)),
	}
	if g.l1 != nil {
		l1.Enabled = true
		l1.ResidentBytes = g.l1.ResidentBytes()
		l1.Entries = g.l1.Len()
		l1.BudgetBytes = g.l1.budget
	}
	return Snapshot{
		UptimeSec:       time.Since(m.Start).Seconds(),
		Routable:        g.ring.routable(),
		Backends:        bs,
		Kinds:           ks,
		L1:              l1,
		RingChurn:       m.RingChurn.Load(),
		Retries:         m.Retries.Load(),
		NoBackend:       m.NoBackend.Load(),
		MidStream:       m.MidStream.Load(),
		Passthrough:     m.Passthrough.Load(),
		StreamThrough:   m.StreamThrough.Load(),
		StreamTruncated: m.StreamTruncated.Load(),
		BytesIn:         m.BytesIn.Load(),
		BytesOut:        m.BytesOut.Load(),
	}
}
