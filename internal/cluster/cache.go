package cluster

import (
	"math/bits"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eclipse/internal/serve"
)

// The gateway's L1 edge cache. The backends' content-addressed result
// caches (internal/serve, PR 6) are the far tier — the communication
// memory of the paper's hierarchy — and this is the near tier next to
// the client-facing port, the analogue of the coprocessor shell caches:
// small, private, and absorbing the traffic the shared tier would
// otherwise see as repeated round-trips. A warm hit costs one shard
// mutex and a memcpy instead of a proxied HTTP exchange; only misses,
// storms' leaders, and revalidations travel to the backends.
//
// Ownership follows the PR 6 slab/refcount discipline: an entry's body
// is an immutable snapshot in a slab-pooled buffer. The cache's
// residency holds one reference; every hit acquires another under the
// shard lock before eviction can unlink the entry, and the slab returns
// to the pool only at refcount zero — so eviction under byte pressure
// can never truncate or alias a response a client is still reading.
//
// Freshness is the coherency protocol of the hierarchy: an entry is
// served without any backend traffic while inside its freshness window
// (the smaller of the -l1-ttl knob and the backend's Cache-Control
// max-age). Past the window the entry is not dropped — it is
// revalidated with If-None-Match against the owning backend, and a 304
// refreshes residency without re-transferring the body. Because the
// ETag is the content address, a live backend always answers 304; the
// revalidation is a liveness/coherency check, not a data transfer.

// l1ShardCount is the number of independently locked shards; a power of
// two so the shard index is a bit mask over the key hash.
const l1ShardCount = 16

// l1EntryOverhead approximates an entry's bookkeeping bytes (struct,
// map header, header copy, LRU links) for budget accounting.
const l1EntryOverhead = 256

// l1Entry is one immutable cached response. prev/next are the intrusive
// LRU links of its shard (head = most recently used). The freshness
// stamps are atomics because a 304 refresh touches them without the
// shard lock.
type l1Entry struct {
	key     serve.CacheKey
	body    []byte // slab-backed; len is the exact body size
	header  http.Header
	backend string // the backend whose response filled the entry
	size    int64
	refs    atomic.Int32 // cache residency counts as 1
	filled  atomic.Int64 // UnixNano of the fill or last 304 refresh
	expires atomic.Int64 // UnixNano the freshness window closes
	prev    *l1Entry
	next    *l1Entry
}

// release drops one reference; the last one returns the slab.
func (e *l1Entry) release(c *l1Cache) {
	if e.refs.Add(-1) == 0 {
		c.slabs.put(e.body)
	}
}

// fresh reports whether the entry may be served without revalidation.
func (e *l1Entry) fresh(now time.Time) bool { return now.UnixNano() < e.expires.Load() }

// ageSeconds is the Age response header value: seconds of residency
// since the fill or the last successful revalidation.
func (e *l1Entry) ageSeconds(now time.Time) int {
	a := int(now.Sub(time.Unix(0, e.filled.Load())) / time.Second)
	if a < 0 {
		a = 0
	}
	return a
}

// l1Shard is one lock domain: a key map plus an intrusive LRU list
// under a byte budget.
type l1Shard struct {
	mu         sync.Mutex
	m          map[serve.CacheKey]*l1Entry
	head, tail *l1Entry
	bytes      int64
	budget     int64
}

func (s *l1Shard) pushFront(e *l1Entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *l1Shard) unlink(e *l1Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *l1Shard) moveToFront(e *l1Entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// l1Cache is the sharded, byte-budgeted L1 with its integrated flight
// table (fill.go). Counters live in the gateway's Metrics registry so
// /varz and /metrics render them alongside the proxy counters.
type l1Cache struct {
	shards  [l1ShardCount]l1Shard
	slabs   slabPool
	flights l1FlightTable
	budget  int64
	met     *Metrics
}

// newL1Cache builds an L1 with the given total byte budget, split
// evenly across the shards.
func newL1Cache(budgetBytes int64, met *Metrics) *l1Cache {
	if budgetBytes < l1ShardCount {
		budgetBytes = l1ShardCount
	}
	c := &l1Cache{budget: budgetBytes, met: met}
	for i := range c.shards {
		c.shards[i].m = map[serve.CacheKey]*l1Entry{}
		c.shards[i].budget = budgetBytes / l1ShardCount
	}
	c.flights.m = map[serve.CacheKey]*l1Flight{}
	return c
}

// shardOf maps a key to its shard by the hash's first byte.
func (c *l1Cache) shardOf(key serve.CacheKey) *l1Shard {
	return &c.shards[int(key[0])&(l1ShardCount-1)]
}

// lookup finds a resident entry (fresh or stale) and acquires a reader
// reference under the shard lock, so eviction cannot recycle the slab
// while the caller holds it. Freshness is the caller's decision — a
// stale entry is a revalidation candidate, not a miss.
func (c *l1Cache) lookup(key serve.CacheKey) (*l1Entry, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	e := sh.m[key]
	if e == nil {
		sh.mu.Unlock()
		return nil, false
	}
	sh.moveToFront(e)
	e.refs.Add(1)
	sh.mu.Unlock()
	return e, true
}

// put copies a 200 response into a slab-backed immutable entry and
// inserts it, replacing any resident entry for the key (a revalidation
// that came back 200 carries fresher bytes than the stale resident) and
// evicting from the LRU tail until the shard is back under budget.
// Oversized bodies were already diverted to the streaming path by the
// proxy's tee cap, but a shard budget smaller than one entry still
// skips the fill rather than wiping the shard.
func (c *l1Cache) put(key serve.CacheKey, backend string, header http.Header, body []byte, ttl time.Duration) bool {
	size := int64(len(body)) + l1EntryOverhead
	for k, vv := range header {
		for _, v := range vv {
			size += int64(len(k) + len(v))
		}
	}
	sh := c.shardOf(key)
	if size > sh.budget {
		c.met.L1TooLarge.Add(1)
		return false
	}
	slab := c.slabs.get(len(body))
	copy(slab, body)
	now := time.Now()
	e := &l1Entry{key: key, body: slab, header: header, backend: backend, size: size}
	e.refs.Store(1)
	e.filled.Store(now.UnixNano())
	e.expires.Store(now.Add(ttl).UnixNano())

	var dropped []*l1Entry
	sh.mu.Lock()
	if old := sh.m[key]; old != nil {
		sh.unlink(old)
		delete(sh.m, key)
		sh.bytes -= old.size
		dropped = append(dropped, old)
	}
	sh.m[key] = e
	sh.pushFront(e)
	sh.bytes += size
	evicted := 0
	for sh.bytes > sh.budget && sh.tail != e {
		t := sh.tail
		sh.unlink(t)
		delete(sh.m, t.key)
		sh.bytes -= t.size
		dropped = append(dropped, t)
		evicted++
	}
	sh.mu.Unlock()

	c.met.L1Fills.Add(1)
	c.met.L1Evictions.Add(uint64(evicted))
	for _, t := range dropped {
		t.release(c)
	}
	return true
}

// touch refreshes an entry's residency after a 304: the backend
// confirmed the bytes, so the freshness window restarts without a body
// transfer. Atomics only — the entry may even have been evicted
// concurrently, in which case the refresh is a harmless no-op on a
// dying entry.
func (c *l1Cache) touch(e *l1Entry, ttl time.Duration) {
	now := time.Now()
	e.filled.Store(now.UnixNano())
	e.expires.Store(now.Add(ttl).UnixNano())
}

// ResidentBytes reports the bytes held across all shards.
func (c *l1Cache) ResidentBytes() int64 {
	var n int64
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].bytes
		c.shards[i].mu.Unlock()
	}
	return n
}

// Len reports the number of resident entries.
func (c *l1Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].m)
		c.shards[i].mu.Unlock()
	}
	return n
}

// freshnessTTL derives an entry's freshness window: the gateway's
// -l1-ttl default, tightened by the backend's Cache-Control max-age
// when one is present. The backend advertises how long its
// content-addressed bytes may be served without a coherency check; the
// gateway never extends that, only shortens it.
func freshnessTTL(h http.Header, def time.Duration) time.Duration {
	for _, part := range strings.Split(h.Get("Cache-Control"), ",") {
		if v, ok := strings.CutPrefix(strings.TrimSpace(part), "max-age="); ok {
			if sec, err := strconv.Atoi(v); err == nil && sec >= 0 {
				if d := time.Duration(sec) * time.Second; d < def {
					return d
				}
			}
		}
	}
	return def
}

// slabPool recycles entry bodies in power-of-two size classes with a
// bounded free list per class — the L1 sibling of the serve cache's
// pool: fills under eviction churn reuse recycled slabs instead of
// allocating. Slabs above l1MaxPooledSlab go straight to the GC.
type slabPool struct {
	mu      sync.Mutex
	classes [l1SlabClasses][][]byte
}

const (
	l1SlabClasses      = 23      // classes up to 1<<22 = 4 MiB
	l1MaxPooledSlab    = 1 << 22 // bigger bodies are not worth retaining
	l1SlabsPerClassCap = 8
)

// slabClass returns the class whose capacity 1<<class fits n.
func slabClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// get returns a slab of length n (capacity rounded up to the class).
func (p *slabPool) get(n int) []byte {
	if n == 0 {
		return nil
	}
	cl := slabClass(n)
	if n <= l1MaxPooledSlab {
		p.mu.Lock()
		if l := p.classes[cl]; len(l) > 0 {
			s := l[len(l)-1]
			p.classes[cl] = l[:len(l)-1]
			p.mu.Unlock()
			return s[:n]
		}
		p.mu.Unlock()
	}
	return make([]byte, n, 1<<cl)
}

// put returns a slab to its class; mis-sized or surplus slabs are
// dropped for the GC.
func (p *slabPool) put(b []byte) {
	cp := cap(b)
	if cp == 0 || cp > l1MaxPooledSlab || cp&(cp-1) != 0 {
		return
	}
	cl := slabClass(cp)
	p.mu.Lock()
	if len(p.classes[cl]) < l1SlabsPerClassCap {
		p.classes[cl] = append(p.classes[cl], b[:0])
	}
	p.mu.Unlock()
}
