package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"eclipse/internal/serve"
)

// The proxy path. One client request becomes 1..N upstream attempts:
// the primary goes to the rendezvous-preferred backend; bounded retries
// with jittered exponential backoff follow safe failures (connect
// errors and 429/503 pushback — cases where the backend either never
// saw the request or explicitly refused it); one hedge may be launched
// at the next-preferred backend when the primary outlives the per-kind
// p95. Whatever attempt finishes first with a decisive response is
// relayed; the losers are cancelled. Upstream bodies are fully buffered
// so a backend dying mid-response yields a clean 502, never a partial
// body with a 200 status line.

const (
	// BackendHeader names the backend that served a proxied response.
	BackendHeader = "X-Backend"
	// HedgeWinHeader marks responses won by the hedge attempt.
	HedgeWinHeader = "X-Hedge-Win"
)

// hopHeaders are connection-scoped and must not cross the proxy
// (RFC 9110 §7.6.1). Content-Length is re-derived from the buffered
// body; X-Timeout-Ms is rewritten to the remaining budget per attempt.
var hopHeaders = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Proxy-Connection":    true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
	"Content-Length":      true,
	"X-Timeout-Ms":        true,
}

// attemptClass says what one upstream attempt produced.
type attemptClass int

const (
	// classFinal: a decisive response (2xx/3xx/4xx except 429, or a
	// non-pushback 5xx) — relay it verbatim, never retry. Retrying a
	// plain 500 would duplicate work the backend already admitted.
	classFinal attemptClass = iota
	// classPushback: 429 or 503 — the backend refused before doing the
	// work, so a retry elsewhere is safe. If retries run out the last
	// pushback is relayed verbatim, Retry-After and all, so the
	// scheduler's EWMA hint survives the gateway hop.
	classPushback
	// classTransport: no response at all (connect refused, reset before
	// headers). The backend never saw the request; retry is safe.
	classTransport
	// classMidStream: headers arrived, then the body died. The work may
	// have partially executed and the client must never see the partial
	// payload: 502, no retry.
	classMidStream
	// classCancelled: this attempt lost a race we already decided (or
	// the overall budget expired); its outcome is void.
	classCancelled
)

// attemptResp is one upstream attempt's outcome.
type attemptResp struct {
	b      *Backend
	class  attemptClass
	status int
	header http.Header
	body   []byte
	err    error
	hedge  bool
}

// handleMedia serves POST /v1/{decode,encode,transcode}.
func (g *Gateway) handleMedia(w http.ResponseWriter, r *http.Request) {
	kind, ok := kindOfPath(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		http.Error(w, "cluster: reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	// The routing key is the backend's own content-address cache key,
	// computed from the same bytes the backend will hash: affinity is
	// exact, not approximate.
	key, err := requestKey(kind, r, body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	ctx := r.Context()
	var deadline time.Time
	if h := r.Header.Get("X-Timeout-Ms"); h != "" {
		msv, perr := strconv.Atoi(h)
		if perr != nil || msv <= 0 {
			http.Error(w, fmt.Sprintf("cluster: bad X-Timeout-Ms %q", h), http.StatusBadRequest)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(msv)*time.Millisecond)
		defer cancel()
		deadline, _ = ctx.Deadline()
	}

	g.met.Requests[kind].Add(1)
	g.met.BytesIn.Add(uint64(len(body)))
	start := time.Now()
	g.do(ctx, w, r, kind, key, body, deadline)
	g.met.Latency[kind].Observe(time.Since(start))
}

// do orchestrates the attempts for one request and writes the response.
func (g *Gateway) do(ctx context.Context, w http.ResponseWriter, r *http.Request,
	kind serve.Kind, key serve.CacheKey, body []byte, deadline time.Time) {

	order := g.ring.order(key)
	if len(order) == 0 {
		g.met.NoBackend.Add(1)
		w.Header().Set("Retry-After", "1")
		g.writeError(w, kind, http.StatusServiceUnavailable, "cluster: no routable backend")
		return
	}

	maxAttempts := 1 + g.cfg.MaxRetries + 1 // primary + retries + hedge
	// Buffered to capacity: a cancelled loser can always deliver its
	// result and exit, even after do has returned. No goroutine leaks.
	results := make(chan *attemptResp, maxAttempts)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	next := 0     // cursor into the preference order (wraps)
	inflight := 0 // attempts whose outcome is still pending
	launch := func(hedge bool) {
		b := order[next%len(order)]
		for i := 0; i < len(order); i++ {
			if cand := order[(next+i)%len(order)]; cand.Routable() {
				b = cand
				next += i
				break
			}
		}
		next++
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		inflight++
		b.requests.Add(1)
		if hedge {
			b.hedges.Add(1)
		}
		go g.attempt(actx, results, b, kind, r, body, deadline, hedge)
	}
	launch(false)

	var hedgeC <-chan time.Time
	if !g.cfg.HedgeDisabled && len(order) > 1 {
		ht := time.NewTimer(g.hedgeDelay(kind))
		defer ht.Stop()
		hedgeC = ht.C
	}
	var retryTimer *time.Timer
	defer func() {
		if retryTimer != nil {
			retryTimer.Stop()
		}
	}()
	var retryC <-chan time.Time

	retries := 0
	var lastPush *attemptResp
	var lastErr error

	scheduleRetry := func() bool {
		if retries >= g.cfg.MaxRetries {
			return false
		}
		retries++
		g.met.Retries.Add(1)
		d := g.cfg.RetryBase << (retries - 1)
		if d > g.cfg.RetryMax {
			d = g.cfg.RetryMax
		}
		// ±50% jitter decorrelates retry bursts across clients.
		d = d/2 + time.Duration(rand.Int63n(int64(d)))
		retryTimer = time.NewTimer(d)
		retryC = retryTimer.C
		return true
	}

	// finish relays the terminal outcome once every avenue is spent.
	finish := func() {
		if lastPush != nil {
			// The satellite guarantee: the last pushback response —
			// including the scheduler's EWMA Retry-After — crosses the
			// gateway verbatim.
			g.met.Passthrough.Add(1)
			g.writeResponse(w, kind, lastPush)
			return
		}
		msg := "cluster: all upstream attempts failed"
		if lastErr != nil {
			msg += ": " + lastErr.Error()
		}
		g.writeError(w, kind, http.StatusBadGateway, msg)
	}
	budgetDone := func() {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			g.writeError(w, kind, http.StatusGatewayTimeout, "cluster: timeout budget exhausted")
		} else {
			// Client went away; 499 in the nginx tradition. Nobody is
			// reading, but the metrics row should say what happened.
			g.writeError(w, kind, 499, "client closed request")
		}
	}

	for {
		select {
		case <-ctx.Done():
			budgetDone()
			return

		case <-hedgeC:
			hedgeC = nil
			// Hedge only while the primary is still pending and there is
			// a second node to hedge to.
			if inflight > 0 && g.ring.routable() >= 2 {
				g.met.Hedges[kind].Add(1)
				launch(true)
			}

		case <-retryC:
			retryC = nil
			retryTimer = nil
			launch(false)

		case res := <-results:
			inflight--
			switch res.class {
			case classCancelled:
				if inflight == 0 && retryC == nil {
					if ctx.Err() != nil {
						budgetDone()
					} else {
						finish()
					}
					return
				}

			case classFinal:
				if res.hedge {
					g.met.HedgeWins[kind].Add(1)
				}
				g.writeResponse(w, kind, res)
				return

			case classMidStream:
				g.met.MidStream.Add(1)
				g.writeError(w, kind, http.StatusBadGateway,
					"cluster: upstream failed mid-response: "+res.err.Error())
				return

			case classPushback, classTransport:
				if res.class == classPushback {
					lastPush = res
				} else {
					lastErr = res.err
				}
				if retryC == nil && !scheduleRetry() && inflight == 0 {
					finish()
					return
				}
			}
		}
	}
}

// attempt runs one upstream try and accounts its passive health signal.
func (g *Gateway) attempt(ctx context.Context, results chan<- *attemptResp, b *Backend,
	kind serve.Kind, r *http.Request, body []byte, deadline time.Time, hedge bool) {

	res := g.roundTrip(ctx, b, kind, r, body, deadline)
	res.hedge = hedge
	switch res.class {
	case classFinal:
		if res.status < http.StatusInternalServerError {
			g.passiveSuccess(b)
		} else {
			b.errors.Add(1)
			g.passiveFailure(b)
		}
	case classPushback:
		// Load pushback is not node death: never ejects. But a draining
		// marker pulls the backend out of the ring immediately.
		if res.header.Get(serve.DrainingHeader) != "" {
			g.passiveDraining(b)
		}
	case classTransport, classMidStream:
		b.errors.Add(1)
		g.passiveFailure(b)
	}
	results <- res
}

// roundTrip performs the HTTP exchange for one attempt, fully buffering
// the upstream body, and classifies the outcome.
func (g *Gateway) roundTrip(ctx context.Context, b *Backend, kind serve.Kind,
	r *http.Request, body []byte, deadline time.Time) *attemptResp {

	res := &attemptResp{b: b}
	u := *b.url
	u.Path = b.url.Path + r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.String(), bytes.NewReader(body))
	if err != nil {
		res.class, res.err = classTransport, err
		return res
	}
	for k, vv := range r.Header {
		if hopHeaders[http.CanonicalHeaderKey(k)] {
			continue
		}
		req.Header[k] = vv
	}
	if !deadline.IsZero() {
		remaining := time.Until(deadline).Milliseconds()
		if remaining < 1 {
			remaining = 1
		}
		req.Header.Set("X-Timeout-Ms", strconv.FormatInt(remaining, 10))
	}

	start := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			res.class, res.err = classCancelled, ctx.Err()
		} else {
			res.class, res.err = classTransport, fmt.Errorf("%s: %v", b.name, err)
		}
		return res
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			res.class, res.err = classCancelled, ctx.Err()
			return res
		}
		res.class, res.err = classMidStream, fmt.Errorf("%s: %v", b.name, err)
		return res
	}

	res.status = resp.StatusCode
	res.header = resp.Header
	res.body = buf
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		res.class = classPushback
		return res
	}
	res.class = classFinal
	if resp.StatusCode < http.StatusMultipleChoices {
		// Successful attempts only: this is the distribution the hedge
		// trigger reads, kept clean of the tails hedging truncates.
		g.met.AttemptLat[kind].Observe(time.Since(start))
	}
	return res
}

// writeResponse relays an upstream response to the client verbatim,
// minus hop-by-hop headers, plus the gateway's provenance headers.
func (g *Gateway) writeResponse(w http.ResponseWriter, kind serve.Kind, res *attemptResp) {
	h := w.Header()
	for k, vv := range res.header {
		if hopHeaders[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	h.Set(BackendHeader, res.b.name)
	if res.hedge {
		h.Set(HedgeWinHeader, "1")
	}
	h.Set("Content-Length", strconv.Itoa(len(res.body)))
	if res.status >= http.StatusBadRequest {
		g.met.Errors[kind].Add(1)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
	g.met.BytesOut.Add(uint64(len(res.body)))
}

// writeError emits a gateway-originated error.
func (g *Gateway) writeError(w http.ResponseWriter, kind serve.Kind, code int, msg string) {
	g.met.Errors[kind].Add(1)
	http.Error(w, msg, code)
}

// kindOfPath maps the request path to a job kind.
func kindOfPath(path string) (serve.Kind, bool) {
	switch path {
	case "/v1/decode":
		return serve.KindDecode, true
	case "/v1/encode":
		return serve.KindEncode, true
	case "/v1/transcode":
		return serve.KindTranscode, true
	}
	return 0, false
}

// requestKey computes the backend's content-address cache key for the
// request — the routing key that makes cache affinity cluster-wide.
func requestKey(kind serve.Kind, r *http.Request, body []byte) (serve.CacheKey, error) {
	switch kind {
	case serve.KindEncode:
		cfg, err := serve.EncodeConfigFromQuery(r.URL.Query())
		if err != nil {
			return serve.CacheKey{}, err
		}
		return serve.EncodeKey(cfg, body), nil
	case serve.KindTranscode:
		qs := r.URL.Query().Get("q")
		if qs == "" {
			return serve.CacheKey{}, fmt.Errorf("cluster: transcode requires the q query parameter")
		}
		q, err := strconv.Atoi(qs)
		if err != nil {
			return serve.CacheKey{}, fmt.Errorf("cluster: bad q=%q", qs)
		}
		return serve.TranscodeKey(q, body), nil
	default:
		return serve.DecodeKey(body), nil
	}
}
