package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"eclipse/internal/serve"
)

// The proxy path. One client request becomes 0..N upstream attempts.
// With the L1 enabled, a fresh resident entry answers with zero
// attempts; a stale one costs a single If-None-Match revalidation; and
// a storm of identical misses collapses onto one leader's attempt
// (fill.go). When the request does go upstream: the primary goes to
// the rendezvous-preferred backend; bounded retries with jittered
// exponential backoff follow safe failures (connect errors and 429/503
// pushback — cases where the backend either never saw the request or
// explicitly refused it); one hedge may be launched at the
// next-preferred backend when the primary outlives the per-kind p95.
// Whatever attempt finishes first with a decisive response is relayed;
// the losers are cancelled.
//
// Upstream bodies are buffered only up to the per-object cap
// (Config.L1MaxObject). At or under the cap the old invariant holds
// exactly: a backend dying mid-response yields a clean 502, never a
// partial body with a 200 status line, and the buffered bytes are
// eligible for the L1 fill. Over the cap the response streams through
// without further buffering — gateway memory stays bounded by the cap
// regardless of response size — and a death mid-stream severs the
// client connection so truncation is never mistaken for a clean EOF.

const (
	// BackendHeader names the backend that served a proxied response.
	BackendHeader = "X-Backend"
	// HedgeWinHeader marks responses won by the hedge attempt.
	HedgeWinHeader = "X-Hedge-Win"
	// CacheHeader carries the cache outcome. Backends set it to their
	// own outcome (miss/hit/collapsed/...); the gateway overrides it on
	// L1-origin responses with the l1-* values below.
	CacheHeader = "X-Cache"

	// XCacheL1Hit marks a response served from a fresh L1 entry.
	XCacheL1Hit = "l1-hit"
	// XCacheL1Revalidated marks a stale L1 entry refreshed by a 304.
	XCacheL1Revalidated = "l1-revalidated"
	// XCacheL1Collapsed marks a follower served off another request's
	// in-flight fill.
	XCacheL1Collapsed = "l1-collapsed"
)

// hopHeaders are connection-scoped and must not cross the proxy
// (RFC 9110 §7.6.1). Content-Length is re-derived from the buffered
// body; X-Timeout-Ms is rewritten to the remaining budget per attempt.
var hopHeaders = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Proxy-Connection":    true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
	"Content-Length":      true,
	"X-Timeout-Ms":        true,
}

// uncacheableHeaders are response headers that describe one exchange,
// not the content: they are stripped from L1 entries and regenerated
// per hit (Age, X-Cache, X-Backend) or dropped (Date).
var uncacheableHeaders = map[string]bool{
	CacheHeader:    true,
	BackendHeader:  true,
	HedgeWinHeader: true,
	"Date":         true,
	"Age":          true,
}

// attemptClass says what one upstream attempt produced.
type attemptClass int

const (
	// classFinal: a decisive response (2xx/3xx/4xx except 429, or a
	// non-pushback 5xx) — relay it verbatim, never retry. Retrying a
	// plain 500 would duplicate work the backend already admitted.
	classFinal attemptClass = iota
	// classPushback: 429 or 503 — the backend refused before doing the
	// work, so a retry elsewhere is safe. If retries run out the last
	// pushback is relayed verbatim, Retry-After and all, so the
	// scheduler's EWMA hint survives the gateway hop.
	classPushback
	// classTransport: no response at all (connect refused, reset before
	// headers). The backend never saw the request; retry is safe.
	classTransport
	// classMidStream: headers arrived, then the body died within the
	// buffered cap. The work may have partially executed and the client
	// must never see the partial payload: 502, no retry.
	classMidStream
	// classCancelled: this attempt lost a race we already decided (or
	// the overall budget expired); its outcome is void.
	classCancelled
)

// attemptResp is one upstream attempt's outcome. When stream is
// non-nil the response exceeded the buffering cap: body holds exactly
// the cap's worth of prefix and stream is the still-open remainder,
// which the winner relays live and a loser's context cancel tears
// down.
type attemptResp struct {
	b             *Backend
	class         attemptClass
	status        int
	header        http.Header
	body          []byte
	stream        io.ReadCloser
	contentLength int64 // upstream Content-Length; -1 when unknown
	err           error
	hedge         bool
}

// doResult tells the L1 layer how a proxied exchange ended, so the
// flight table can decide what the followers do (fill.go).
type doResult struct {
	outcome    flightOutcome
	res        *attemptResp // flightShared with an upstream response
	gwStatus   int          // flightShared with a gateway-origin error
	gwMsg      string
	leaderSpec bool // budget expired / client gone: abdicate, don't broadcast
}

// handleMedia serves POST /v1/{decode,encode,transcode}.
func (g *Gateway) handleMedia(w http.ResponseWriter, r *http.Request) {
	kind, ok := kindOfPath(r.URL.Path)
	if !ok {
		http.NotFound(w, r)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		http.Error(w, "cluster: reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	// The routing key is the backend's own content-address cache key,
	// computed from the same bytes the backend will hash: affinity is
	// exact, not approximate — and it doubles as the L1 key and the
	// entity tag, so the whole hierarchy speaks one address space.
	key, err := requestKey(kind, r, body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	ctx := r.Context()
	var deadline time.Time
	if h := r.Header.Get("X-Timeout-Ms"); h != "" {
		msv, perr := strconv.Atoi(h)
		if perr != nil || msv <= 0 {
			http.Error(w, fmt.Sprintf("cluster: bad X-Timeout-Ms %q", h), http.StatusBadRequest)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(msv)*time.Millisecond)
		defer cancel()
		deadline, _ = ctx.Deadline()
	}

	g.met.Requests[kind].Add(1)
	g.met.BytesIn.Add(uint64(len(body)))
	if g.l1 != nil {
		g.serveL1(ctx, w, r, kind, key, body, deadline)
		return
	}
	start := time.Now()
	g.do(ctx, w, r, kind, key, body, deadline, false, nil)
	g.met.Latency[kind].Observe(time.Since(start))
}

// serveL1 is the request path with the L1 enabled: local 304s, fresh
// hits, collapsed followers, and — only when the near tier cannot
// answer — a proxied exchange that fills it.
//
// Latency bookkeeping: Latency[kind] is observed only around real
// proxied exchanges and the hedge trigger reads AttemptLat, which only
// successful upstream attempts feed — so sub-millisecond L1 hits can
// never drag the adaptive p95 down and make hedging fire on every
// proxied miss. Hits go to the separate L1HitLat histogram.
func (g *Gateway) serveL1(ctx context.Context, w http.ResponseWriter, r *http.Request,
	kind serve.Kind, key serve.CacheKey, body []byte, deadline time.Time) {

	// A client that already holds the bytes proves it with the content
	// address; the match is decidable locally, no lookup or backend
	// traffic needed.
	if inm := r.Header.Get("If-None-Match"); inm != "" && serve.ETagMatches(inm, key) {
		g.met.L1ClientNotMod.Add(1)
		h := w.Header()
		h.Set("ETag", key.ETag())
		h.Set(CacheHeader, XCacheL1Hit)
		w.WriteHeader(http.StatusNotModified)
		return
	}

	start := time.Now()
	collapsed := false // parked on another request's flight at least once
attempt:
	for {
		var reval *l1Entry // stale resident entry to revalidate, ref held
		if e, ok := g.l1.lookup(key); ok {
			if e.fresh(time.Now()) {
				xc := XCacheL1Hit
				if collapsed {
					g.met.L1Collapsed.Add(1)
					xc = XCacheL1Collapsed
				} else {
					g.met.L1Hits.Add(1)
				}
				g.serveL1Entry(w, kind, e, xc)
				e.release(g.l1)
				g.met.L1HitLat.Observe(time.Since(start))
				return
			}
			g.met.L1Stale.Add(1)
			reval = e
		} else if !collapsed {
			g.met.L1Misses.Add(1)
		}

		f, leader := g.l1.flights.join(key)
		if !leader && reval != nil {
			// A follower parks without the entry; the flight's leader is
			// already revalidating (or refilling) this key.
			reval.release(g.l1)
			reval = nil
		}
		for !leader {
			select {
			case <-f.doneCh:
				switch f.outcome {
				case flightFilled:
					// The key is resident now; serve it under our own
					// entry reference.
					collapsed = true
					continue attempt
				case flightShared:
					g.met.L1Collapsed.Add(1)
					if f.res != nil {
						g.writeShared(w, kind, f.res)
					} else {
						g.writeError(w, kind, f.gwStatus, f.gwMsg)
					}
					return
				default:
					// flightSolo: the leader's outcome was tied to its own
					// connection (over-cap stream, mid-stream 502). Proxy
					// independently.
					pstart := time.Now()
					g.do(ctx, w, r, kind, key, body, deadline, true, nil)
					g.met.Latency[kind].Observe(time.Since(pstart))
					return
				}
			case <-f.promoteCh:
				g.l1.flights.claim(f)
				leader = true
			case <-ctx.Done():
				g.l1.flights.leave(key, f)
				if errors.Is(ctx.Err(), context.DeadlineExceeded) {
					g.writeError(w, kind, http.StatusGatewayTimeout, "cluster: timeout budget exhausted")
				} else {
					g.writeError(w, kind, 499, "client closed request")
				}
				return
			}
		}

		// Leader. Re-check the cache first: a previous flight may have
		// filled or refreshed the key between our lookup and join, and a
		// promoted leader inherits that window too. This recheck is what
		// makes "32 identical requests, one backend round-trip" airtight.
		if reval == nil {
			if e, ok := g.l1.lookup(key); ok {
				if e.fresh(time.Now()) {
					g.l1.flights.complete(key, f, flightFilled, nil, 0, "")
					g.met.L1Hits.Add(1)
					g.serveL1Entry(w, kind, e, XCacheL1Hit)
					e.release(g.l1)
					g.met.L1HitLat.Observe(time.Since(start))
					return
				}
				g.met.L1Stale.Add(1)
				reval = e
			}
		}

		finished := false
		defer func() {
			// Panic safety: a leader that unwinds without completing
			// abdicates so followers are promoted, never stranded.
			if !finished {
				g.l1.flights.abdicate(key, f)
			}
		}()
		pstart := time.Now()
		dr := g.do(ctx, w, r, kind, key, body, deadline, true, reval)
		g.met.Latency[kind].Observe(time.Since(pstart))
		if reval != nil {
			reval.release(g.l1)
		}
		finished = true
		if dr.leaderSpec {
			// Our budget died or our client hung up — the key is fine.
			// Hand leadership to a parked follower.
			g.l1.flights.abdicate(key, f)
		} else {
			g.l1.flights.complete(key, f, dr.outcome, dr.res, dr.gwStatus, dr.gwMsg)
		}
		return
	}
}

// serveL1Entry writes a resident entry to the client. The caller holds
// an entry reference for the duration of the write, so concurrent
// eviction cannot recycle the slab mid-response.
func (g *Gateway) serveL1Entry(w http.ResponseWriter, kind serve.Kind, e *l1Entry, xcache string) {
	h := w.Header()
	for k, vv := range e.header {
		h[k] = vv
	}
	h.Set(BackendHeader, e.backend)
	h.Set(CacheHeader, xcache)
	h.Set("Age", strconv.Itoa(e.ageSeconds(time.Now())))
	h.Set("Content-Length", strconv.Itoa(len(e.body)))
	w.WriteHeader(http.StatusOK)
	w.Write(e.body)
	g.met.BytesOut.Add(uint64(len(e.body)))
}

// writeShared relays a flight leader's buffered response to a
// follower: same status, same bytes, marked as collapsed.
func (g *Gateway) writeShared(w http.ResponseWriter, kind serve.Kind, res *attemptResp) {
	h := w.Header()
	for k, vv := range res.header {
		if hopHeaders[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	h.Set(BackendHeader, res.b.name)
	h.Set(CacheHeader, XCacheL1Collapsed)
	h.Set("Content-Length", strconv.Itoa(len(res.body)))
	if res.status >= http.StatusBadRequest {
		g.met.Errors[kind].Add(1)
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
	g.met.BytesOut.Add(uint64(len(res.body)))
}

// do orchestrates the attempts for one request, writes the response,
// and reports how the exchange ended for the flight table. fill allows
// a 200 body to be copied into the L1; reval, when non-nil, is a stale
// resident entry whose content address is sent upstream as
// If-None-Match — a 304 then refreshes it without a body transfer.
func (g *Gateway) do(ctx context.Context, w http.ResponseWriter, r *http.Request,
	kind serve.Kind, key serve.CacheKey, body []byte, deadline time.Time,
	fill bool, reval *l1Entry) doResult {

	order := g.ring.order(key)
	if len(order) == 0 {
		g.met.NoBackend.Add(1)
		msg := "cluster: no routable backend"
		w.Header().Set("Retry-After", "1")
		g.writeError(w, kind, http.StatusServiceUnavailable, msg)
		return doResult{outcome: flightShared, gwStatus: http.StatusServiceUnavailable, gwMsg: msg}
	}

	inm := ""
	if reval != nil {
		inm = key.ETag()
	}

	maxAttempts := 1 + g.cfg.MaxRetries + 1 // primary + retries + hedge
	// Buffered to capacity: a cancelled loser can always deliver its
	// result and exit, even after do has returned. No goroutine leaks.
	results := make(chan *attemptResp, maxAttempts)
	var cancels []context.CancelFunc
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	next := 0     // cursor into the preference order (wraps)
	inflight := 0 // attempts whose outcome is still pending
	launch := func(hedge bool) {
		b := order[next%len(order)]
		for i := 0; i < len(order); i++ {
			if cand := order[(next+i)%len(order)]; cand.Routable() {
				b = cand
				next += i
				break
			}
		}
		next++
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		inflight++
		b.requests.Add(1)
		if hedge {
			b.hedges.Add(1)
		}
		go g.attempt(actx, results, b, kind, r, body, deadline, hedge, inm)
	}
	launch(false)

	var hedgeC <-chan time.Time
	if !g.cfg.HedgeDisabled && len(order) > 1 {
		ht := time.NewTimer(g.hedgeDelay(kind))
		defer ht.Stop()
		hedgeC = ht.C
	}
	var retryTimer *time.Timer
	defer func() {
		if retryTimer != nil {
			retryTimer.Stop()
		}
	}()
	var retryC <-chan time.Time

	retries := 0
	var lastPush *attemptResp
	var lastErr error

	scheduleRetry := func() bool {
		if retries >= g.cfg.MaxRetries {
			return false
		}
		retries++
		g.met.Retries.Add(1)
		d := g.cfg.RetryBase << (retries - 1)
		if d > g.cfg.RetryMax {
			d = g.cfg.RetryMax
		}
		// ±50% jitter decorrelates retry bursts across clients.
		d = d/2 + time.Duration(rand.Int63n(int64(d)))
		retryTimer = time.NewTimer(d)
		retryC = retryTimer.C
		return true
	}

	// finish relays the terminal outcome once every avenue is spent.
	finish := func() doResult {
		if lastPush != nil {
			// The satellite guarantee: the last pushback response —
			// including the scheduler's EWMA Retry-After — crosses the
			// gateway verbatim.
			g.met.Passthrough.Add(1)
			g.writeResponse(w, kind, key, lastPush, false)
			return doResult{outcome: flightShared, res: lastPush}
		}
		msg := "cluster: all upstream attempts failed"
		if lastErr != nil {
			msg += ": " + lastErr.Error()
		}
		g.writeError(w, kind, http.StatusBadGateway, msg)
		return doResult{outcome: flightShared, gwStatus: http.StatusBadGateway, gwMsg: msg}
	}
	budgetDone := func() doResult {
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			g.writeError(w, kind, http.StatusGatewayTimeout, "cluster: timeout budget exhausted")
		} else {
			// Client went away; 499 in the nginx tradition. Nobody is
			// reading, but the metrics row should say what happened.
			g.writeError(w, kind, 499, "client closed request")
		}
		return doResult{leaderSpec: true}
	}

	for {
		select {
		case <-ctx.Done():
			return budgetDone()

		case <-hedgeC:
			hedgeC = nil
			// Hedge only while the primary is still pending and there is
			// a second node to hedge to.
			if inflight > 0 && g.ring.routable() >= 2 {
				g.met.Hedges[kind].Add(1)
				launch(true)
			}

		case <-retryC:
			retryC = nil
			retryTimer = nil
			launch(false)

		case res := <-results:
			inflight--
			switch res.class {
			case classCancelled:
				if inflight == 0 && retryC == nil {
					if ctx.Err() != nil {
						return budgetDone()
					}
					return finish()
				}

			case classFinal:
				if res.hedge {
					g.met.HedgeWins[kind].Add(1)
				}
				if reval != nil && res.status == http.StatusNotModified {
					// The backend confirmed the entry's content address:
					// refresh residency, serve the resident bytes, and no
					// body ever crossed the wire.
					g.l1.touch(reval, freshnessTTL(res.header, g.cfg.L1TTL))
					g.met.L1Revalidations.Add(1)
					g.serveL1Entry(w, kind, reval, XCacheL1Revalidated)
					return doResult{outcome: flightFilled}
				}
				filled := g.writeResponse(w, kind, key, res, fill)
				switch {
				case res.stream != nil:
					return doResult{outcome: flightSolo}
				case filled:
					return doResult{outcome: flightFilled}
				default:
					return doResult{outcome: flightShared, res: res}
				}

			case classMidStream:
				g.met.MidStream.Add(1)
				g.writeError(w, kind, http.StatusBadGateway,
					"cluster: upstream failed mid-response: "+res.err.Error())
				return doResult{outcome: flightSolo}

			case classPushback, classTransport:
				if res.class == classPushback {
					lastPush = res
				} else {
					lastErr = res.err
				}
				if retryC == nil && !scheduleRetry() && inflight == 0 {
					return finish()
				}
			}
		}
	}
}

// attempt runs one upstream try and accounts its passive health signal.
func (g *Gateway) attempt(ctx context.Context, results chan<- *attemptResp, b *Backend,
	kind serve.Kind, r *http.Request, body []byte, deadline time.Time, hedge bool, inm string) {

	res := g.roundTrip(ctx, b, kind, r, body, deadline, inm)
	res.hedge = hedge
	switch res.class {
	case classFinal:
		if res.status < http.StatusInternalServerError {
			g.passiveSuccess(b)
		} else {
			b.errors.Add(1)
			g.passiveFailure(b)
		}
	case classPushback:
		// Load pushback is not node death: never ejects. But a draining
		// marker pulls the backend out of the ring immediately.
		if res.header.Get(serve.DrainingHeader) != "" {
			g.passiveDraining(b)
		}
	case classTransport, classMidStream:
		b.errors.Add(1)
		g.passiveFailure(b)
	}
	results <- res
}

// roundTrip performs the HTTP exchange for one attempt, buffering the
// upstream body up to the per-object cap, and classifies the outcome.
// inm, when set, is injected as If-None-Match (L1 revalidation).
func (g *Gateway) roundTrip(ctx context.Context, b *Backend, kind serve.Kind,
	r *http.Request, body []byte, deadline time.Time, inm string) *attemptResp {

	res := &attemptResp{b: b, contentLength: -1}
	u := *b.url
	u.Path = b.url.Path + r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u.String(), bytes.NewReader(body))
	if err != nil {
		res.class, res.err = classTransport, err
		return res
	}
	for k, vv := range r.Header {
		if hopHeaders[http.CanonicalHeaderKey(k)] {
			continue
		}
		req.Header[k] = vv
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	if !deadline.IsZero() {
		remaining := time.Until(deadline).Milliseconds()
		if remaining < 1 {
			remaining = 1
		}
		req.Header.Set("X-Timeout-Ms", strconv.FormatInt(remaining, 10))
	}

	start := time.Now()
	resp, err := g.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			res.class, res.err = classCancelled, ctx.Err()
		} else {
			res.class, res.err = classTransport, fmt.Errorf("%s: %v", b.name, err)
		}
		return res
	}
	// The response-side memory ceiling: never buffer more than the
	// per-object cap, no matter what the backend sends.
	buf, overflow, err := readCapped(resp.Body, g.cfg.L1MaxObject)
	if err != nil {
		resp.Body.Close()
		if ctx.Err() != nil {
			res.class, res.err = classCancelled, ctx.Err()
			return res
		}
		res.class, res.err = classMidStream, fmt.Errorf("%s: %v", b.name, err)
		return res
	}

	res.status = resp.StatusCode
	res.header = resp.Header
	res.body = buf
	res.contentLength = resp.ContentLength
	if overflow {
		// Over the cap: hold the body open and let the winner relay the
		// remainder live (a loser's context cancel tears it down). Even
		// an oversized pushback is final here — its body cannot be
		// replayed for a retry.
		res.stream = resp.Body
		res.class = classFinal
		return res
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		res.class = classPushback
		return res
	}
	res.class = classFinal
	if resp.StatusCode < http.StatusMultipleChoices {
		// Successful proxied attempts only: this is the distribution the
		// hedge trigger reads, kept clean of the tails hedging truncates
		// — and of L1 hits and 304 revalidations, which never get here.
		g.met.AttemptLat[kind].Observe(time.Since(start))
	}
	return res
}

// writeResponse relays an upstream response to the client verbatim,
// minus hop-by-hop headers, plus the gateway's provenance headers.
// Buffered 200s are tee-filled into the L1 when fill is set; the
// return value reports whether the key is now resident. An over-cap
// response streams its remainder after the buffered prefix.
func (g *Gateway) writeResponse(w http.ResponseWriter, kind serve.Kind, key serve.CacheKey,
	res *attemptResp, fill bool) bool {

	h := w.Header()
	for k, vv := range res.header {
		if hopHeaders[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vv {
			h.Add(k, v)
		}
	}
	h.Set(BackendHeader, res.b.name)
	if res.hedge {
		h.Set(HedgeWinHeader, "1")
	}
	if res.stream == nil {
		h.Set("Content-Length", strconv.Itoa(len(res.body)))
	} else if res.contentLength >= 0 {
		h.Set("Content-Length", strconv.FormatInt(res.contentLength, 10))
	}
	if res.status >= http.StatusBadRequest {
		g.met.Errors[kind].Add(1)
	}
	filled := false
	if fill && g.l1 != nil && res.stream == nil && res.status == http.StatusOK {
		// The tee: the same buffered bytes go to the client and (copied
		// into a slab) into the L1. Fill before the write so a follower
		// woken by flightFilled always finds the entry.
		filled = g.l1.put(key, res.b.name, cacheableHeader(res.header), res.body,
			freshnessTTL(res.header, g.cfg.L1TTL))
	}
	w.WriteHeader(res.status)
	w.Write(res.body)
	g.met.BytesOut.Add(uint64(len(res.body)))
	if res.stream != nil {
		g.met.StreamThrough.Add(1)
		n, err := io.Copy(w, res.stream)
		res.stream.Close()
		g.met.BytesOut.Add(uint64(n))
		if err != nil {
			// The buffered prefix is already on the wire under a 200
			// status line; the only honest exit is to sever the
			// connection so the client sees a truncated transfer, never
			// a clean EOF over partial bytes.
			g.met.StreamTruncated.Add(1)
			panic(http.ErrAbortHandler)
		}
	}
	return filled
}

// cacheableHeader extracts the content-describing headers of a
// response for an L1 entry: hop-by-hop and per-exchange headers out,
// everything else (ETag, Content-Type, Cache-Control, ...) copied.
func cacheableHeader(h http.Header) http.Header {
	out := make(http.Header, len(h))
	for k, vv := range h {
		ck := http.CanonicalHeaderKey(k)
		if hopHeaders[ck] || uncacheableHeaders[ck] {
			continue
		}
		out[ck] = append([]string(nil), vv...)
	}
	return out
}

// writeError emits a gateway-originated error.
func (g *Gateway) writeError(w http.ResponseWriter, kind serve.Kind, code int, msg string) {
	g.met.Errors[kind].Add(1)
	http.Error(w, msg, code)
}

// kindOfPath maps the request path to a job kind.
func kindOfPath(path string) (serve.Kind, bool) {
	switch path {
	case "/v1/decode":
		return serve.KindDecode, true
	case "/v1/encode":
		return serve.KindEncode, true
	case "/v1/transcode":
		return serve.KindTranscode, true
	}
	return 0, false
}

// requestKey computes the backend's content-address cache key for the
// request — the routing key that makes cache affinity cluster-wide.
func requestKey(kind serve.Kind, r *http.Request, body []byte) (serve.CacheKey, error) {
	switch kind {
	case serve.KindEncode:
		cfg, err := serve.EncodeConfigFromQuery(r.URL.Query())
		if err != nil {
			return serve.CacheKey{}, err
		}
		return serve.EncodeKey(cfg, body), nil
	case serve.KindTranscode:
		qs := r.URL.Query().Get("q")
		if qs == "" {
			return serve.CacheKey{}, fmt.Errorf("cluster: transcode requires the q query parameter")
		}
		q, err := strconv.Atoi(qs)
		if err != nil {
			return serve.CacheKey{}, fmt.Errorf("cluster: bad q=%q", qs)
		}
		return serve.TranscodeKey(q, body), nil
	default:
		return serve.DecodeKey(body), nil
	}
}
