package cluster

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"eclipse/internal/serve"
)

// l1Post sends one gateway request with optional extra headers.
func l1Post(t *testing.T, url, path string, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := readAllBody(resp)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func readAllBody(resp *http.Response) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestL1Lifecycle drives the full L1 state machine against real
// eclipse-serve backends: miss→fill, fresh hit, stale→revalidate(304),
// hit again, then backend death — a fresh entry still answers, and once
// it goes stale with the fleet dead the request fails cleanly. Every
// 200 is byte-identical to the offline codec, and the hit phase leaves
// the hedge trigger's attempt histogram untouched.
func TestL1Lifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster E2E in -short mode")
	}
	items := buildClusterCatalog(t, 1)
	const ttl = 300 * time.Millisecond
	c := newTestCluster(t, func(cfg *Config) {
		cfg.L1Bytes = 64 << 20
		cfg.L1TTL = ttl
	})
	met := c.gw.Metrics()

	// Miss → fill: the backend's own X-Cache crosses the gateway.
	resp, body := c.post(t, "/v1/decode", items[0].stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fill: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(CacheHeader); strings.HasPrefix(got, "l1-") {
		t.Fatalf("first request X-Cache %q, want a backend outcome", got)
	}
	if !bytes.Equal(body, items[0].wantRaw) {
		t.Fatal("fill: body differs from offline codec")
	}
	if met.L1Misses.Load() != 1 || met.L1Fills.Load() != 1 {
		t.Fatalf("after fill: misses=%d fills=%d, want 1/1", met.L1Misses.Load(), met.L1Fills.Load())
	}

	// Fresh hits: served locally, byte-identical, no upstream attempts —
	// the hedge trigger's AttemptLat distribution must not move.
	attemptBase := met.AttemptLat[serve.KindDecode].Snapshot().Count
	hedgeBase := met.Hedges[serve.KindDecode].Load()
	for i := 0; i < 3; i++ {
		resp, body = c.post(t, "/v1/decode", items[0].stream)
		if got := resp.Header.Get(CacheHeader); got != XCacheL1Hit {
			t.Fatalf("hit %d: X-Cache %q, want %q", i, got, XCacheL1Hit)
		}
		if resp.Header.Get("Age") == "" {
			t.Fatalf("hit %d: no Age header", i)
		}
		if !bytes.Equal(body, items[0].wantRaw) {
			t.Fatalf("hit %d: body differs from offline codec (L1 must be byte-identical to L2)", i)
		}
	}
	if n := met.AttemptLat[serve.KindDecode].Snapshot().Count; n != attemptBase {
		t.Fatalf("hit phase moved AttemptLat %d→%d: L1 hits are poisoning the hedge trigger", attemptBase, n)
	}
	if n := met.Hedges[serve.KindDecode].Load(); n != hedgeBase {
		t.Fatalf("hit phase launched %d hedges, want 0", n-hedgeBase)
	}
	if met.L1Hits.Load() != 3 {
		t.Fatalf("l1 hits %d, want 3", met.L1Hits.Load())
	}

	// Past the freshness window: the entry is revalidated with
	// If-None-Match, the backend answers 304, and the body never crosses
	// the wire again.
	time.Sleep(ttl + 50*time.Millisecond)
	resp, body = c.post(t, "/v1/decode", items[0].stream)
	if got := resp.Header.Get(CacheHeader); got != XCacheL1Revalidated {
		t.Fatalf("stale request: X-Cache %q, want %q", got, XCacheL1Revalidated)
	}
	if !bytes.Equal(body, items[0].wantRaw) {
		t.Fatal("revalidated response differs from offline codec")
	}
	if met.L1Revalidations.Load() != 1 || met.L1Stale.Load() != 1 {
		t.Fatalf("revalidations=%d stale=%d, want 1/1", met.L1Revalidations.Load(), met.L1Stale.Load())
	}

	// The 304 refreshed residency: kill the entire fleet and the fresh
	// entry still answers — the near tier outlives the far tier for one
	// freshness window.
	for i := range c.ts {
		c.ts[i].CloseClientConnections()
		c.ts[i].Close()
	}
	resp, body = c.post(t, "/v1/decode", items[0].stream)
	if resp.StatusCode != http.StatusOK || resp.Header.Get(CacheHeader) != XCacheL1Hit {
		t.Fatalf("post-kill fresh hit: status %d X-Cache %q", resp.StatusCode, resp.Header.Get(CacheHeader))
	}
	if !bytes.Equal(body, items[0].wantRaw) {
		t.Fatal("post-kill hit differs from offline codec")
	}

	// Once stale with the fleet dead, revalidation has nowhere to go:
	// the request fails cleanly (502 transport / 503 no backend), never
	// with stale bytes under a 200.
	time.Sleep(ttl + 50*time.Millisecond)
	resp, _ = c.post(t, "/v1/decode", items[0].stream)
	if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stale + dead fleet: status %d, want 502 or 503", resp.StatusCode)
	}
}

// TestL1StormSingleRoundTrip: 32 identical concurrent requests on a
// cold key reach the backend exactly once with the L1 on — the
// gateway-side singleflight collapses the storm before it ever leaves
// the gateway.
func TestL1StormSingleRoundTrip(t *testing.T) {
	f := newFakeBackend(t)
	f.delay.Store(int64(30 * time.Millisecond)) // hold the leader upstream so the storm piles up
	g := newTestGateway(t, Config{HedgeDisabled: true, L1Bytes: 1 << 20}, f.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	const stormN = 32
	payload := []byte("storm-payload")
	type res struct {
		status int
		xcache string
		body   []byte
	}
	results := make([]res, stormN)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < stormN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, body := l1Post(t, ts.URL, "/v1/decode", payload, nil)
			results[i] = res{status: resp.StatusCode, xcache: resp.Header.Get(CacheHeader), body: body}
		}(i)
	}
	close(start)
	wg.Wait()

	if got := f.hits.Load(); got != 1 {
		t.Fatalf("backend saw %d requests during the storm, want exactly 1", got)
	}
	l1Served := 0
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("storm request %d: status %d", i, r.status)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Fatalf("storm request %d: body differs", i)
		}
		if strings.HasPrefix(r.xcache, "l1-") {
			l1Served++
		}
	}
	if l1Served != stormN-1 {
		t.Fatalf("%d responses served by the L1, want %d (all but the leader)", l1Served, stormN-1)
	}
}

// TestL1EvictionAliasingStress hammers a tiny L1 budget with many
// distinct keys from concurrent clients. Constant eviction churn plus
// slab recycling must never alias one key's bytes into another's
// response — the refcount protocol under fire.
func TestL1EvictionAliasingStress(t *testing.T) {
	f := newFakeBackend(t)
	f.mode.Store("echo")
	// 64 KiB budget → 4 KiB per shard: a handful of resident entries,
	// everything else is eviction traffic.
	g := newTestGateway(t, Config{HedgeDisabled: true, L1Bytes: 64 << 10, L1TTL: time.Minute}, f.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	const nKeys = 48
	payloads := make([][]byte, nKeys)
	for i := range payloads {
		p := make([]byte, 2048)
		for j := range p {
			p[j] = byte(i + j*13)
		}
		payloads[i] = p
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 100; it++ {
				i := (w*31 + it*7) % nKeys
				resp, body := l1Post(t, ts.URL, "/v1/decode", payloads[i], nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("worker %d iter %d: status %d", w, it, resp.StatusCode)
					return
				}
				if !bytes.Equal(body, payloads[i]) {
					t.Errorf("worker %d iter %d: response aliased — got %d bytes of the wrong content", w, it, len(body))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if g.Metrics().L1Evictions.Load() == 0 {
		t.Fatal("no evictions under a 64 KiB budget — the stress did not stress")
	}
}

// TestL1RevalidateClientINM: a client that presents the content
// address in If-None-Match gets 304 straight from the gateway — no L1
// entry, no backend traffic.
func TestL1RevalidateClientINM(t *testing.T) {
	f := newFakeBackend(t)
	g := newTestGateway(t, Config{HedgeDisabled: true, L1Bytes: 1 << 20}, f.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	payload := []byte("inm-payload")
	etag := serve.DecodeKey(payload).ETag()
	resp, _ := l1Post(t, ts.URL, "/v1/decode", payload, map[string]string{"If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status %d, want 304", resp.StatusCode)
	}
	if got := resp.Header.Get("ETag"); got != etag {
		t.Fatalf("ETag %q, want %q", got, etag)
	}
	if f.hits.Load() != 0 {
		t.Fatalf("backend saw %d requests, want 0 — the content address decides locally", f.hits.Load())
	}
	if g.Metrics().L1ClientNotMod.Load() != 1 {
		t.Fatalf("client_not_modified %d, want 1", g.Metrics().L1ClientNotMod.Load())
	}

	// A non-matching tag proxies normally.
	resp, body := l1Post(t, ts.URL, "/v1/decode", payload, map[string]string{"If-None-Match": `"deadbeef"`})
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("non-matching INM: status %d body %d bytes", resp.StatusCode, len(body))
	}
	if f.hits.Load() != 1 {
		t.Fatalf("backend saw %d requests after non-matching INM, want 1", f.hits.Load())
	}
}

// TestL1StreamThroughOverCap: a response over the per-object cap
// reaches the client byte-complete but streams through the gateway —
// nothing is buffered beyond the cap and nothing enters the L1.
func TestL1StreamThroughOverCap(t *testing.T) {
	f := newFakeBackend(t)
	f.mode.Store("big")
	g := newTestGateway(t, Config{HedgeDisabled: true, L1Bytes: 1 << 20, L1MaxObject: 4096}, f.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	want := fakeBigBody()
	for i := 0; i < 2; i++ {
		resp, body := l1Post(t, ts.URL, "/v1/decode", []byte("big-one"), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if !bytes.Equal(body, want) {
			t.Fatalf("request %d: got %d bytes, want %d intact", i, len(body), len(want))
		}
	}
	met := g.Metrics()
	if met.StreamThrough.Load() != 2 {
		t.Fatalf("stream_through %d, want 2", met.StreamThrough.Load())
	}
	if met.L1Fills.Load() != 0 {
		t.Fatalf("an over-cap body was filled into the L1 (%d fills)", met.L1Fills.Load())
	}
	if f.hits.Load() != 2 {
		t.Fatalf("backend hits %d, want 2 — over-cap responses are never cached", f.hits.Load())
	}
}

// TestL1MidStreamKill502: with the L1 on, a backend dying mid-response
// under the cap still yields the buffered-path invariant — 502, zero
// partial bytes.
func TestL1MidStreamKill502(t *testing.T) {
	f := newFakeBackend(t)
	f.mode.Store("midstream")
	g := newTestGateway(t, Config{HedgeDisabled: true, L1Bytes: 1 << 20, MaxRetries: 1}, f.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp, body := l1Post(t, ts.URL, "/v1/decode", []byte("doomed"), nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if bytes.Contains(body, []byte("partial-payload")) {
		t.Fatal("partial upstream bytes leaked to the client")
	}
	if g.Metrics().MidStream.Load() == 0 {
		t.Fatal("mid-stream counter not incremented")
	}
	if g.Metrics().L1Fills.Load() != 0 {
		t.Fatal("a partial body was filled into the L1")
	}
}

// TestFreshnessTTL pins the Cache-Control tightening rule: the backend
// can shorten the gateway's window, never extend it.
func TestFreshnessTTL(t *testing.T) {
	def := 10 * time.Second
	cases := []struct {
		cc   string
		want time.Duration
	}{
		{"", def},
		{"max-age=60", def},            // longer than default: clamped
		{"max-age=2", 2 * time.Second}, // shorter: honored
		{"public, max-age=3", 3 * time.Second},
		{"max-age=bogus", def},
		{"no-store", def}, // unknown directives ignored (L1 policy is the gateway's)
	}
	for _, c := range cases {
		h := http.Header{}
		if c.cc != "" {
			h.Set("Cache-Control", c.cc)
		}
		if got := freshnessTTL(h, def); got != c.want {
			t.Errorf("freshnessTTL(%q) = %v, want %v", c.cc, got, c.want)
		}
	}
}

// TestReadCapped pins the bounded reader's three outcomes: under, at,
// and over the cap.
func TestReadCapped(t *testing.T) {
	data := fakeBigBody()[:10000]
	for _, c := range []struct {
		max      int64
		wantLen  int
		overflow bool
	}{
		{20000, 10000, false},
		{10000, 10000, false},
		{4096, 4097, true}, // overflow keeps the sentinel byte in the prefix
	} {
		buf, overflow, err := readCapped(bytes.NewReader(data), c.max)
		if err != nil {
			t.Fatal(err)
		}
		if overflow != c.overflow || len(buf) != c.wantLen {
			t.Errorf("readCapped(max=%d): len=%d overflow=%v, want len=%d overflow=%v",
				c.max, len(buf), overflow, c.wantLen, c.overflow)
		}
		if !bytes.Equal(buf, data[:c.wantLen]) {
			t.Errorf("readCapped(max=%d): prefix bytes differ", c.max)
		}
	}
}

// TestL1StormAfterWarm: identical requests arriving while the key is
// warm are all L1 hits; the Latency histogram (proxied work only)
// stays put while L1HitLat accumulates.
func TestL1StormAfterWarm(t *testing.T) {
	f := newFakeBackend(t)
	g := newTestGateway(t, Config{HedgeDisabled: true, L1Bytes: 1 << 20}, f.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	payload := []byte("warm-me")
	l1Post(t, ts.URL, "/v1/decode", payload, nil) // fill
	latBase := g.Metrics().Latency[serve.KindDecode].Snapshot().Count
	for i := 0; i < 5; i++ {
		resp, _ := l1Post(t, ts.URL, "/v1/decode", payload, nil)
		if got := resp.Header.Get(CacheHeader); got != XCacheL1Hit {
			t.Fatalf("warm request %d: X-Cache %q, want %q", i, got, XCacheL1Hit)
		}
	}
	if n := g.Metrics().Latency[serve.KindDecode].Snapshot().Count; n != latBase {
		t.Fatalf("L1 hits entered the proxied latency histogram (%d→%d)", latBase, n)
	}
	if n := g.Metrics().L1HitLat.Snapshot().Count; n != 5 {
		t.Fatalf("L1HitLat count %d, want 5", n)
	}
	if f.hits.Load() != 1 {
		t.Fatalf("backend hits %d, want 1", f.hits.Load())
	}
}
