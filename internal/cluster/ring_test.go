package cluster

import (
	"fmt"
	"testing"

	"eclipse/internal/serve"
)

// testRing builds a ring of n synthetic Up backends.
func testRing(t *testing.T, n int) ring {
	t.Helper()
	bs := make([]*Backend, n)
	for i := range bs {
		b, err := newBackend(fmt.Sprintf("node%d:9000", i))
		if err != nil {
			t.Fatal(err)
		}
		b.state.Store(int32(StateUp))
		bs[i] = b
	}
	return ring{backends: bs}
}

func testKeys(n int) []serve.CacheKey {
	keys := make([]serve.CacheKey, n)
	for i := range keys {
		keys[i] = serve.DecodeKey([]byte(fmt.Sprintf("stream-%d", i)))
	}
	return keys
}

// TestRingDeterministic: the preference order is a pure function of
// (membership, key) — identical across calls, and every routable
// backend appears exactly once.
func TestRingDeterministic(t *testing.T) {
	r := testRing(t, 5)
	for _, key := range testKeys(50) {
		a, b := r.order(key), r.order(key)
		if len(a) != 5 {
			t.Fatalf("order has %d backends, want 5", len(a))
		}
		seen := map[string]bool{}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("order not deterministic at %d: %s vs %s", i, a[i].Name(), b[i].Name())
			}
			if seen[a[i].Name()] {
				t.Fatalf("backend %s appears twice", a[i].Name())
			}
			seen[a[i].Name()] = true
		}
	}
}

// TestRingSpread: rendezvous hashing spreads keys across the fleet —
// no backend is starved or overwhelmingly preferred.
func TestRingSpread(t *testing.T) {
	r := testRing(t, 3)
	counts := map[string]int{}
	keys := testKeys(300)
	for _, key := range keys {
		counts[r.order(key)[0].Name()]++
	}
	for name, n := range counts {
		if n < len(keys)/6 || n > len(keys)/2+len(keys)/6 {
			t.Fatalf("backend %s preferred for %d/%d keys — outside plausible HRW spread %v", name, n, len(keys), counts)
		}
	}
}

// TestRingMinimalReshuffle is the property that makes HRW the right
// hash for cache affinity: removing one backend remaps only the keys it
// owned; every other key keeps its preferred backend (and the orphaned
// keys land on their previous runner-up, where hedges may have already
// warmed the cache).
func TestRingMinimalReshuffle(t *testing.T) {
	r := testRing(t, 3)
	keys := testKeys(300)
	before := make([][]*Backend, len(keys))
	for i, key := range keys {
		before[i] = r.order(key)
	}
	victim := r.backends[1]
	victim.state.Store(int32(StateDown))
	moved := 0
	for i, key := range keys {
		after := r.order(key)
		if len(after) != 2 {
			t.Fatalf("order has %d backends after removal, want 2", len(after))
		}
		if before[i][0] == victim {
			moved++
			if after[0] != before[i][1] {
				t.Fatalf("key %d: orphaned key went to %s, want previous runner-up %s",
					i, after[0].Name(), before[i][1].Name())
			}
		} else if after[0] != before[i][0] {
			t.Fatalf("key %d: reshuffled from %s to %s though its backend survived",
				i, before[i][0].Name(), after[0].Name())
		}
	}
	if moved == 0 {
		t.Fatal("victim owned zero keys; test proves nothing")
	}
}
