package cluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"eclipse/internal/serve"
)

// postMedia sends one decode POST through a handler-mounted gateway.
func postMedia(t *testing.T, url string, body string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/decode", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPushback429Passthrough is the Retry-After regression test: when
// retries are exhausted against a loaded fleet, the final 429 must
// cross the gateway verbatim — in particular the scheduler's EWMA
// Retry-After value, which clients use to pace their backoff.
func TestPushback429Passthrough(t *testing.T) {
	f := newFakeBackend(t)
	f.mode.Store("pushback")
	g := newTestGateway(t, Config{
		MaxRetries:    2,
		RetryBase:     time.Millisecond,
		HedgeDisabled: true,
	}, f.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp := postMedia(t, ts.URL, "stream-bytes", nil)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != fakeRetryAfter {
		t.Fatalf("Retry-After %q did not survive the gateway hop, want %q", got, fakeRetryAfter)
	}
	if !strings.Contains(body, "queue full") {
		t.Fatalf("backend error body %q not relayed", body)
	}
	if got := resp.Header.Get(BackendHeader); got != g.backends[0].Name() {
		t.Fatalf("X-Backend %q, want %q", got, g.backends[0].Name())
	}
	if got := g.met.Retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2 (bounded)", got)
	}
	if got := g.met.Passthrough.Load(); got != 1 {
		t.Fatalf("passthrough = %d, want 1", got)
	}
	// Pushback is load, not death: the backend must not be ejected.
	if g.backends[0].State() != StateUp {
		t.Fatalf("429s ejected the backend (state %v)", g.backends[0].State())
	}
}

// TestPushback503DrainingPassthrough: a draining backend's 503 is
// relayed verbatim (header and Retry-After intact) once no alternative
// exists, and the backend leaves the routable set immediately.
func TestPushback503DrainingPassthrough(t *testing.T) {
	f := newFakeBackend(t)
	f.mode.Store("drain")
	g := newTestGateway(t, Config{
		MaxRetries:    1,
		RetryBase:     time.Millisecond,
		HedgeDisabled: true,
	}, f.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp := postMedia(t, ts.URL, "stream-bytes", nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get(serve.DrainingHeader) == "" {
		t.Fatal("X-Eclipse-Draining did not survive the gateway hop")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("Retry-After did not survive the gateway hop")
	}
	// The passive drain signal removed the backend without a probe.
	if g.backends[0].State() != StateDraining {
		t.Fatalf("state %v, want draining", g.backends[0].State())
	}
}

// TestMidStreamKill: a backend that dies after sending its response
// headers yields a clean 502 — the client must never see a 200 status
// with a truncated body, and the partial payload must not leak.
func TestMidStreamKill(t *testing.T) {
	f := newFakeBackend(t)
	f.mode.Store("midstream")
	g := newTestGateway(t, Config{MaxRetries: -1, HedgeDisabled: true}, f.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp := postMedia(t, ts.URL, "stream-bytes", nil)
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if strings.Contains(body, "partial-payload") {
		t.Fatalf("partial upstream body leaked to the client: %q", body)
	}
	if got := g.met.MidStream.Load(); got != 1 {
		t.Fatalf("mid-stream counter = %d, want 1", got)
	}
}

// TestHedgeWinnerLoser: with the preferred backend stalled past the
// hedge delay, the duplicate attempt to the runner-up wins, exactly one
// response body reaches the client, the loser's request is cancelled,
// and no attempt goroutine outlives the request.
func TestHedgeWinnerLoser(t *testing.T) {
	f0, f1 := newFakeBackend(t), newFakeBackend(t)
	g := newTestGateway(t, Config{
		MaxRetries: -1,
		HedgeAfter: 15 * time.Millisecond,
	}, f0.addr(), f1.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	body := "stream-bytes"
	order := g.ring.order(serve.DecodeKey([]byte(body)))
	byAddr := map[string]*fakeBackend{f0.addr(): f0, f1.addr(): f1}
	slow, fast := byAddr[order[0].Name()], byAddr[order[1].Name()]
	slow.delay.Store(int64(2 * time.Second))

	before := runtime.NumGoroutine()
	resp := postMedia(t, ts.URL, body, nil)
	got := readAll(t, resp)

	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if want := "hello from " + fast.addr(); got != want {
		t.Fatalf("body %q, want exactly one response body %q", got, want)
	}
	if h := resp.Header.Get(BackendHeader); h != fast.addr() {
		t.Fatalf("X-Backend %q, want hedge target %q", h, fast.addr())
	}
	if resp.Header.Get(HedgeWinHeader) != "1" {
		t.Fatal("hedge win not marked")
	}
	k := serve.KindDecode
	if g.met.Hedges[k].Load() != 1 || g.met.HedgeWins[k].Load() != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", g.met.Hedges[k].Load(), g.met.HedgeWins[k].Load())
	}

	// The loser must observe cancellation well before its 2s stall ends.
	deadline := time.Now().Add(3 * time.Second)
	for slow.cancelled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("losing attempt was never cancelled")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// And the attempt goroutines must drain (buffered results channel —
	// nothing blocks forever on a send nobody receives). Idle keepalive
	// connections park two transport goroutines each; close them so the
	// count reflects attempt goroutines only.
	for {
		g.client.CloseIdleConnections()
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now vs %d before", runtime.NumGoroutine(), before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestHedgeNeedsSecondBackend: with a single routable backend the hedge
// timer must not duplicate the request onto the same node.
func TestHedgeNeedsSecondBackend(t *testing.T) {
	f := newFakeBackend(t)
	f.delay.Store(int64(40 * time.Millisecond))
	g := newTestGateway(t, Config{MaxRetries: -1, HedgeAfter: 5 * time.Millisecond}, f.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp := postMedia(t, ts.URL, "stream-bytes", nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := f.hits.Load(); got != 1 {
		t.Fatalf("backend saw %d requests, want 1 (no self-hedge)", got)
	}
	if got := g.met.Hedges[serve.KindDecode].Load(); got != 0 {
		t.Fatalf("hedges = %d, want 0", got)
	}
}

// TestTransportRetryFailover: a killed backend produces a connect
// error; the retry path moves the request to the survivor and the dead
// node accumulates passive failures.
func TestTransportRetryFailover(t *testing.T) {
	f0, f1 := newFakeBackend(t), newFakeBackend(t)
	g := newTestGateway(t, Config{
		MaxRetries:    2,
		RetryBase:     time.Millisecond,
		HedgeDisabled: true,
		PassiveFall:   1,
	}, f0.addr(), f1.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	body := "stream-bytes"
	order := g.ring.order(serve.DecodeKey([]byte(body)))
	dead := byName(t, []*fakeBackend{f0, f1}, order[0].Name())
	dead.ts.CloseClientConnections()
	dead.ts.Close()

	resp := postMedia(t, ts.URL, body, nil)
	got := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via failover", resp.StatusCode)
	}
	if want := "hello from " + order[1].Name(); got != want {
		t.Fatalf("body %q, want %q", got, want)
	}
	if order[0].State() != StateDown {
		t.Fatalf("dead backend state %v, want down (passive ejection)", order[0].State())
	}
	if g.met.Retries.Load() == 0 {
		t.Fatal("failover did not count a retry")
	}
}

func byName(t *testing.T, fs []*fakeBackend, name string) *fakeBackend {
	t.Helper()
	for _, f := range fs {
		if f.addr() == name {
			return f
		}
	}
	t.Fatalf("no fake backend named %s", name)
	return nil
}

// TestTimeoutBudget: X-Timeout-Ms bounds the whole request through the
// gateway; exhaustion is a 504, and a malformed header is a 400 before
// any upstream traffic.
func TestTimeoutBudget(t *testing.T) {
	f := newFakeBackend(t)
	f.delay.Store(int64(5 * time.Second))
	g := newTestGateway(t, Config{MaxRetries: -1, HedgeDisabled: true}, f.addr())
	forceUp(g)
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	start := time.Now()
	resp := postMedia(t, ts.URL, "stream-bytes", map[string]string{"X-Timeout-Ms": "50"})
	readAll(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("budget of 50ms took %v to enforce", el)
	}

	resp = postMedia(t, ts.URL, "stream-bytes", map[string]string{"X-Timeout-Ms": "bogus"})
	readAll(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d for bad X-Timeout-Ms, want 400", resp.StatusCode)
	}
	if got := f.hits.Load(); got != 1 {
		t.Fatalf("malformed budget reached the backend (hits=%d, want 1)", got)
	}
}

// TestNoRoutableBackend: with the whole fleet down the gateway sheds
// with 503 + Retry-After rather than queueing or connecting blindly.
func TestNoRoutableBackend(t *testing.T) {
	f := newFakeBackend(t)
	g := newTestGateway(t, Config{HedgeDisabled: true}, f.addr())
	ts := httptest.NewServer(g.Handler())
	defer ts.Close()

	resp := postMedia(t, ts.URL, "stream-bytes", nil)
	readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed without Retry-After")
	}
	if got := g.met.NoBackend.Load(); got != 1 {
		t.Fatalf("no-backend counter = %d, want 1", got)
	}
	if got := f.hits.Load(); got != 0 {
		t.Fatalf("request reached a non-routable backend (hits=%d)", got)
	}
}
