// Package cluster is the gateway tier: a reverse proxy that pools N
// eclipse-serve backends behind the single-node request interface. It
// is the software analogue of the Eclipse communication shell scaled to
// a fleet — placement, arbitration, and failure are hidden behind the
// same POST /v1/{decode,encode,transcode} surface the backends expose:
//
//   - routing ⇔ shell arbitration: rendezvous (HRW) hashing on the
//     content-address cache key picks the backend whose LRU already
//     holds the result, so the PR 6 singleflight storm-collapse
//     guarantee extends cluster-wide (identical requests converge on
//     one node, which admits exactly one decode);
//   - hedging ⇔ the shell's secondary port: when the preferred backend
//     stalls past the per-kind p95, the request is duplicated to the
//     next-preferred node and the first answer wins;
//   - drain ⇔ task-table eviction: a backend announcing
//     X-Eclipse-Draining is removed from the routable set before its
//     listener closes, and membership churn re-arbitrates its key range
//     (the mode-transition cost of rebalancing).
//
// See DESIGN.md §11 for the full mapping.
package cluster

import (
	"hash/fnv"
	"sort"

	"eclipse/internal/serve"
)

// ring orders backends by rendezvous (highest-random-weight) hashing:
// every (backend, key) pair gets an independent pseudo-random score and
// a key routes to the highest-scoring routable backend. Unlike a mod-N
// hash, removing one backend remaps only the keys that scored highest
// on it — the rest of the cluster's cache residency survives membership
// churn untouched.
type ring struct {
	backends []*Backend
}

// hrwScore is the weight of backend name for the given key.
func hrwScore(name string, key serve.CacheKey) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write(key[:])
	return h.Sum64()
}

// order returns the routable backends in preference order for the key:
// highest HRW score first, ties broken by name so the order is total.
// An empty result means no backend is currently routable.
func (r ring) order(key serve.CacheKey) []*Backend {
	type scored struct {
		b *Backend
		s uint64
	}
	eligible := make([]scored, 0, len(r.backends))
	for _, b := range r.backends {
		if b.Routable() {
			eligible = append(eligible, scored{b, hrwScore(b.name, key)})
		}
	}
	sort.Slice(eligible, func(i, j int) bool {
		if eligible[i].s != eligible[j].s {
			return eligible[i].s > eligible[j].s
		}
		return eligible[i].b.name < eligible[j].b.name
	})
	out := make([]*Backend, len(eligible))
	for i, e := range eligible {
		out[i] = e.b
	}
	return out
}

// routable counts backends currently accepting traffic.
func (r ring) routable() int {
	n := 0
	for _, b := range r.backends {
		if b.Routable() {
			n++
		}
	}
	return n
}
