package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"eclipse/internal/media"
	"eclipse/internal/serve"
)

// clusterItem is one catalog entry with its offline-computed truth.
type clusterItem struct {
	stream    []byte // ECL1 bitstream
	wantRaw   []byte // decode truth: concatenated display-order luma
	wantXcode []byte // transcode truth at xcodeQ
}

const xcodeQ = 8

// buildClusterCatalog encodes n synthetic clips and derives, with the
// offline codec, the exact bytes every backend must serve.
func buildClusterCatalog(t *testing.T, n int) []clusterItem {
	t.Helper()
	items := make([]clusterItem, n)
	for i := range items {
		src := media.DefaultSource(64, 48)
		src.Seed = int64(i + 1)
		fr := media.NewSource(src).Frames(4)
		cfg := media.DefaultCodec(64, 48)
		cfg.Q = 6
		stream, _, _, err := media.Encode(cfg, fr)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := media.Decode(stream)
		if err != nil {
			t.Fatal(err)
		}
		var raw []byte
		for _, f := range ref.DisplayFrames() {
			raw = append(raw, f.Pix...)
		}
		xcode, _, _, err := media.Encode(serve.TranscodeConfig(ref.Seq, xcodeQ), ref.DisplayFrames())
		if err != nil {
			t.Fatal(err)
		}
		items[i] = clusterItem{stream: stream, wantRaw: raw, wantXcode: xcode}
	}
	return items
}

// testCluster is 3 real eclipse-serve backends behind one gateway.
type testCluster struct {
	srvs []*serve.Server
	ts   []*httptest.Server
	gw   *Gateway
	gwTS *httptest.Server
}

func newTestCluster(t *testing.T, mut func(*Config)) *testCluster {
	t.Helper()
	c := &testCluster{}
	addrs := make([]string, 3)
	for i := 0; i < 3; i++ {
		srv := serve.New(serve.Config{Workers: 2, BaseSlice: 2 * time.Millisecond, QueueCap: 32})
		ts := httptest.NewServer(srv.Handler())
		c.srvs = append(c.srvs, srv)
		c.ts = append(c.ts, ts)
		addrs[i] = ts.Listener.Addr().String()
	}
	cfg := Config{
		ProbeInterval: 10 * time.Millisecond,
		Rise:          2,
		Fall:          2,
		PassiveFall:   2,
		MaxRetries:    2,
		RetryBase:     2 * time.Millisecond,
		Backends:      addrs,
	}
	if mut != nil {
		mut(&cfg)
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.gw = gw
	gw.Start()
	c.gwTS = httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		c.gwTS.Close()
		gw.Stop()
		for i := range c.srvs {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			c.srvs[i].Shutdown(ctx)
			cancel()
			c.ts[i].Close()
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := gw.WaitReady(ctx, 3); err != nil {
		t.Fatal(err)
	}
	return c
}

// post sends one media request through the gateway.
func (c *testCluster) post(t *testing.T, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(c.gwTS.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// verifyItem round-trips one catalog entry (decode + transcode) through
// the gateway and checks byte identity against the offline codec.
func (c *testCluster) verifyItem(t *testing.T, tag string, it clusterItem) {
	t.Helper()
	resp, got := c.post(t, "/v1/decode", it.stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s decode: status %d (backend %s): %s", tag, resp.StatusCode, resp.Header.Get(BackendHeader), got)
	}
	if !bytes.Equal(got, it.wantRaw) {
		t.Fatalf("%s decode via %s: %d bytes differ from offline codec (want %d bytes)",
			tag, resp.Header.Get(BackendHeader), len(got), len(it.wantRaw))
	}
	resp, got = c.post(t, fmt.Sprintf("/v1/transcode?q=%d", xcodeQ), it.stream)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s transcode: status %d (backend %s): %s", tag, resp.StatusCode, resp.Header.Get(BackendHeader), got)
	}
	if !bytes.Equal(got, it.wantXcode) {
		t.Fatalf("%s transcode via %s: output differs from offline codec", tag, resp.Header.Get(BackendHeader))
	}
}

// TestClusterE2E is the acceptance scenario: mixed decode/transcode
// load through the gateway stays byte-identical to the offline codec
// while one backend is gracefully drained and another is hard-killed
// mid-run. No client ever sees an error or a corrupt byte.
func TestClusterE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster E2E in -short mode")
	}
	items := buildClusterCatalog(t, 3)
	c := newTestCluster(t, nil)

	// Phase 1: full fleet. Every item verifies through the gateway.
	for i, it := range items {
		c.verifyItem(t, fmt.Sprintf("phase1-item%d", i), it)
	}

	// Phase 2: drain backend 1 gracefully while load continues. Its
	// 503 + X-Eclipse-Draining answers must be retried elsewhere, and
	// the prober must pull it from the ring.
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		drainDone <- c.srvs[1].Shutdown(ctx)
	}()
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, it := range items {
				c.verifyItem(t, fmt.Sprintf("phase2-w%d-item%d", w, i), it)
			}
		}(w)
	}
	wg.Wait()
	if err := <-drainDone; err != nil {
		t.Fatalf("backend drain: %v", err)
	}
	waitState(t, c.gw.backends[1], StateDraining)

	// Phase 3: hard-kill backend 2 (connections die mid-flight) and
	// keep serving. Retries and passive ejection route around it.
	c.ts[2].CloseClientConnections()
	c.ts[2].Close()
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, it := range items {
				c.verifyItem(t, fmt.Sprintf("phase3-w%d-item%d", w, i), it)
			}
		}(w)
	}
	wg.Wait()
	waitState(t, c.gw.backends[2], StateDown)

	// The gateway is still ready on the surviving backend, and the
	// failure handling left its fingerprints in the metrics.
	resp, err := http.Get(c.gwTS.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway readyz %d with one live backend, want 200", resp.StatusCode)
	}
	if c.gw.met.RingChurn.Load() < 2 {
		t.Fatalf("ring churn %d, want >= 2 (drain + kill)", c.gw.met.RingChurn.Load())
	}
}

// TestClusterStormCollapse: a storm of identical cold-key decodes
// arriving through the gateway lands on exactly one backend (rendezvous
// affinity) and admits exactly one decode there (singleflight) — the
// PR 6 single-node guarantee, now cluster-wide. Hedging is disabled:
// a hedge would deliberately duplicate onto a second node.
func TestClusterStormCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster E2E in -short mode")
	}
	items := buildClusterCatalog(t, 1)
	c := newTestCluster(t, func(cfg *Config) { cfg.HedgeDisabled = true })

	const stormN = 16
	type res struct {
		backend string
		outcome string
		status  int
		body    []byte
	}
	results := make([]res, stormN)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < stormN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, body := c.post(t, "/v1/decode", items[0].stream)
			results[i] = res{
				backend: resp.Header.Get(BackendHeader),
				outcome: resp.Header.Get("X-Cache"),
				status:  resp.StatusCode,
				body:    body,
			}
		}(i)
	}
	close(start)
	wg.Wait()

	misses := 0
	for i, r := range results {
		if r.status != http.StatusOK {
			t.Fatalf("storm request %d: status %d", i, r.status)
		}
		if !bytes.Equal(r.body, items[0].wantRaw) {
			t.Fatalf("storm request %d: body differs from offline codec", i)
		}
		if r.backend != results[0].backend {
			t.Fatalf("storm split across backends: %s and %s — affinity broken", results[0].backend, r.backend)
		}
		if r.outcome == serve.CacheMiss.String() {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d cache misses across the storm, want exactly 1 decode cluster-wide", misses)
	}

	// Direct backend check: the two non-preferred backends never saw a
	// decode at all.
	sawWork := 0
	for _, b := range c.gw.backends {
		if b.requests.Load() > 0 {
			sawWork++
		}
	}
	if sawWork != 1 {
		t.Fatalf("%d backends saw traffic during the storm, want 1", sawWork)
	}
}

// TestClusterAffinityAcrossRequests: repeating a request later (not a
// concurrent storm) still lands on the same backend and hits its cache.
func TestClusterAffinityAcrossRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster E2E in -short mode")
	}
	items := buildClusterCatalog(t, 2)
	c := newTestCluster(t, func(cfg *Config) { cfg.HedgeDisabled = true })

	first := make(map[int]string)
	for i, it := range items {
		resp, _ := c.post(t, "/v1/decode", it.stream)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("item %d: status %d", i, resp.StatusCode)
		}
		first[i] = resp.Header.Get(BackendHeader)
	}
	for i, it := range items {
		resp, body := c.post(t, "/v1/decode", it.stream)
		if got := resp.Header.Get(BackendHeader); got != first[i] {
			t.Fatalf("item %d moved from %s to %s between requests", i, first[i], got)
		}
		if got := resp.Header.Get("X-Cache"); got != serve.CacheHit.String() {
			t.Fatalf("item %d repeat: X-Cache %q, want hit (affinity should warm exactly one cache)", i, got)
		}
		if !bytes.Equal(body, items[i].wantRaw) {
			t.Fatalf("item %d repeat: body differs", i)
		}
	}
}
