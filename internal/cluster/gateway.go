package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Config parameterizes the gateway.
type Config struct {
	// Backends lists the eclipse-serve instances ("host:port" or full
	// URLs). Membership is static; routability is dynamic (health).
	Backends []string

	// ProbeInterval is the active health-check period per backend.
	// Default 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe. Default 1s.
	ProbeTimeout time.Duration
	// Rise is the consecutive successful probes required to admit a
	// backend into the routable set (also after ejection or restart).
	// Default 2.
	Rise int
	// Fall is the consecutive failed probes that remove an Up backend.
	// Default 2.
	Fall int
	// PassiveFall is the consecutive proxied transport failures that
	// eject a backend without waiting for the prober. Default 3.
	PassiveFall int

	// MaxRetries bounds additional attempts after a safe failure
	// (connect error, 429/503 pushback). Default 2.
	MaxRetries int
	// RetryBase is the first retry's backoff; it doubles per retry with
	// ±50% jitter, capped at RetryMax. Defaults 10ms / 250ms.
	RetryBase time.Duration
	RetryMax  time.Duration

	// HedgeDisabled turns tail hedging off.
	HedgeDisabled bool
	// HedgeAfter, when positive, is a fixed hedge trigger delay. Zero
	// selects the adaptive trigger: the per-kind p95 of successful
	// attempt latencies, once HedgeMinSamples have been observed
	// (HedgeColdDelay until then), floored at HedgeMinDelay.
	HedgeAfter      time.Duration
	HedgeColdDelay  time.Duration // default 100ms
	HedgeMinDelay   time.Duration // default 2ms
	HedgeMinSamples int           // default 32

	// MaxBodyBytes caps client request bodies. Default 64 MiB.
	MaxBodyBytes int64

	// L1Bytes is the byte budget of the gateway's L1 result cache — the
	// near tier of the L1/L2 hierarchy whose far tier is the backends'
	// content-addressed caches. Zero or negative disables the L1 (the
	// default for library users; cmd/eclipse-gateway enables it).
	L1Bytes int64
	// L1MaxObject caps how much of an upstream response body the proxy
	// will buffer. Bodies at or under the cap are fully buffered (and
	// L1-cacheable); larger bodies stream through without buffering.
	// This bound applies whether or not the L1 is enabled — it is the
	// gateway's response-side memory ceiling. Default 8 MiB.
	L1MaxObject int64
	// L1TTL is the default freshness window of an L1 entry; the
	// backend's Cache-Control max-age can only shorten it. A stale
	// entry is revalidated with If-None-Match rather than dropped.
	// Default 10s.
	L1TTL time.Duration

	// Transport overrides the upstream round tripper (tests).
	Transport http.RoundTripper
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.Rise <= 0 {
		c.Rise = 2
	}
	if c.Fall <= 0 {
		c.Fall = 2
	}
	if c.PassiveFall <= 0 {
		c.PassiveFall = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 250 * time.Millisecond
	}
	if c.HedgeColdDelay <= 0 {
		c.HedgeColdDelay = 100 * time.Millisecond
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 2 * time.Millisecond
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 32
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.L1MaxObject <= 0 {
		c.L1MaxObject = 8 << 20
	}
	if c.L1TTL <= 0 {
		c.L1TTL = 10 * time.Second
	}
	return c
}

// Gateway routes client requests across the backend fleet. One Gateway
// owns the health probers, the rendezvous ring, and the metrics
// registry; its Handler is the HTTP surface.
type Gateway struct {
	cfg      Config
	backends []*Backend
	ring     ring
	met      *Metrics
	l1       *l1Cache // nil when Config.L1Bytes <= 0
	client   *http.Client
	mux      *http.ServeMux

	probeCtx    context.Context
	probeCancel context.CancelFunc
	probeWG     sync.WaitGroup
	started     bool
}

// New builds a gateway over the configured backends. Backends start
// Down; call Start to launch the probers that admit them.
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	g := &Gateway{cfg: cfg, met: NewMetrics(), mux: http.NewServeMux()}
	seen := map[string]bool{}
	for _, addr := range cfg.Backends {
		b, err := newBackend(addr)
		if err != nil {
			return nil, err
		}
		if seen[b.name] {
			return nil, fmt.Errorf("cluster: duplicate backend %q", b.name)
		}
		seen[b.name] = true
		g.backends = append(g.backends, b)
	}
	g.ring = ring{backends: g.backends}
	if cfg.L1Bytes > 0 {
		g.l1 = newL1Cache(cfg.L1Bytes, g.met)
	}
	rt := cfg.Transport
	if rt == nil {
		rt = &http.Transport{MaxIdleConnsPerHost: 64, IdleConnTimeout: 90 * time.Second}
	}
	g.client = &http.Client{Transport: rt}
	g.probeCtx, g.probeCancel = context.WithCancel(context.Background())

	g.mux.HandleFunc("POST /v1/decode", g.handleMedia)
	g.mux.HandleFunc("POST /v1/encode", g.handleMedia)
	g.mux.HandleFunc("POST /v1/transcode", g.handleMedia)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
	g.mux.HandleFunc("GET /varz", g.handleVarz)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g, nil
}

// Handler returns the gateway's HTTP handler tree.
func (g *Gateway) Handler() http.Handler { return g.mux }

// Metrics exposes the registry for tests and the bench driver.
func (g *Gateway) Metrics() *Metrics { return g.met }

// Backends exposes the backend table for tests and the bench driver.
func (g *Gateway) Backends() []*Backend { return g.backends }

// Start launches one health prober per backend.
func (g *Gateway) Start() {
	if g.started {
		return
	}
	g.started = true
	for _, b := range g.backends {
		g.probeWG.Add(1)
		go g.probeLoop(b)
	}
}

// Stop cancels the probers and waits for them to exit. The request path
// keeps working (with frozen health state) until the caller tears the
// HTTP server down.
func (g *Gateway) Stop() {
	g.probeCancel()
	g.probeWG.Wait()
}

// WaitReady blocks until at least min backends are routable, polling at
// probe cadence, or until ctx expires.
func (g *Gateway) WaitReady(ctx context.Context, min int) error {
	tick := time.NewTicker(g.cfg.ProbeInterval / 4)
	defer tick.Stop()
	for {
		if g.ring.routable() >= min {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: %d/%d backends routable: %w", g.ring.routable(), min, ctx.Err())
		case <-tick.C:
		}
	}
}

// setState moves a backend to a new state, counting ring churn and the
// transition-specific counters. Safe from any goroutine.
func (g *Gateway) setState(b *Backend, to BackendState) {
	for {
		cur := b.state.Load()
		if BackendState(cur) == to {
			return
		}
		if b.state.CompareAndSwap(cur, int32(to)) {
			b.epoch.Add(1)
			g.met.RingChurn.Add(1)
			if to == StateDraining {
				b.drains.Add(1)
			}
			return
		}
	}
}

// handleHealthz is the gateway's own liveness probe.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, "alive")
}

// handleReadyz reports whether the gateway can do useful work: 200 when
// at least one backend is routable.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	n := g.ring.routable()
	if n == 0 {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintf(w, "%d/%d backends routable\n", n, len(g.backends))
}

// handleVarz serves the JSON status document.
func (g *Gateway) handleVarz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(g.varz())
}

// handleMetrics serves the Prometheus text exposition.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	g.WritePrometheus(w)
}
