package cluster

import (
	"time"

	"eclipse/internal/serve"
)

// Hedging ("tail at scale"): when the preferred backend has not
// answered within the per-kind hedge delay, the gateway duplicates the
// request to the next backend in rendezvous order and takes whichever
// response lands first, cancelling the loser. The delay is adaptive —
// the p95 of successful upstream attempt latencies for that kind — so
// roughly 5% of requests hedge, bounding the duplicate load while
// cutting the latency tail caused by one slow node.

// hedgeDelay returns the current hedge trigger delay for a kind.
func (g *Gateway) hedgeDelay(k serve.Kind) time.Duration {
	if g.cfg.HedgeAfter > 0 {
		return g.cfg.HedgeAfter
	}
	h := &g.met.AttemptLat[k]
	if h.Count() < uint64(g.cfg.HedgeMinSamples) {
		// Not enough signal yet: hedge conservatively so a cold gateway
		// never doubles its load on guesswork.
		return g.cfg.HedgeColdDelay
	}
	d := h.Quantile(0.95)
	if d < g.cfg.HedgeMinDelay {
		d = g.cfg.HedgeMinDelay
	}
	return d
}
