package cluster

import (
	"io"
	"sync"

	"eclipse/internal/serve"
)

// Gateway-side singleflight. With the L1 enabled, concurrent requests
// for the same content address collapse onto one leader: a 32-way storm
// on a cold key costs the cluster exactly one backend round-trip, and
// the followers are served from the fill (or from the leader's buffered
// response verbatim when the outcome was not cacheable). This is the
// near-tier twin of the backends' own flight table (internal/serve):
// the backend collapses a storm that reaches it into one decode; the
// gateway collapses it into one request that reaches the backend at
// all.
//
// The leadership discipline mirrors serve's: a leader whose failure is
// specific to its own request — budget expired, client hung up —
// abdicates, and one parked follower is promoted to lead a fresh
// attempt rather than the key being stranded.

// flightOutcome says how a finished flight's followers proceed.
type flightOutcome int

const (
	// flightFilled: the key is now resident in the L1 (a fill or a 304
	// refresh). Followers re-run the lookup, each acquiring its own
	// refcounted entry, and serve it as a collapsed hit.
	flightFilled flightOutcome = iota
	// flightShared: the leader holds a fully buffered terminal response
	// that was not cacheable (a non-200 final answer, an exhausted
	// pushback, a gateway-origin 502/503). Followers relay the same
	// bytes verbatim — the storm still cost one backend round-trip.
	flightShared
	// flightSolo: the leader's outcome cannot be replayed for anyone
	// else (an over-cap response that streamed through, or a mid-stream
	// failure whose 502 reflects one connection's fate). Followers
	// proxy independently.
	flightSolo
)

// l1Flight is one in-flight key. State transitions happen under the
// table mutex; doneCh/promoteCh carry the cross-goroutine signals. At
// most one promotion token is ever outstanding: only the current
// leader abdicates, and abdication clears hasLeader until a follower
// claims the token.
type l1Flight struct {
	doneCh    chan struct{} // closed on terminal completion
	promoteCh chan struct{} // cap 1; a token transfers leadership
	outcome   flightOutcome
	res       *attemptResp // flightShared with an upstream response
	gwStatus  int          // flightShared with a gateway-origin error
	gwMsg     string
	waiters   int
	hasLeader bool
}

// l1FlightTable maps keys to their in-flight state. One mutex is
// enough: it is touched only on L1 misses and revalidations, and a
// same-key storm serializes on its flight either way.
type l1FlightTable struct {
	mu sync.Mutex
	m  map[serve.CacheKey]*l1Flight
}

// join returns the key's flight and whether the caller leads it.
func (t *l1FlightTable) join(key serve.CacheKey) (*l1Flight, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if f, ok := t.m[key]; ok {
		f.waiters++
		return f, false
	}
	f := &l1Flight{
		doneCh:    make(chan struct{}),
		promoteCh: make(chan struct{}, 1),
		hasLeader: true,
	}
	t.m[key] = f
	return f, true
}

// complete publishes the terminal outcome, removes the flight, and
// wakes every follower.
func (t *l1FlightTable) complete(key serve.CacheKey, f *l1Flight, outcome flightOutcome, res *attemptResp, gwStatus int, gwMsg string) {
	t.mu.Lock()
	f.outcome, f.res, f.gwStatus, f.gwMsg = outcome, res, gwStatus, gwMsg
	if t.m[key] == f {
		delete(t.m, key)
	}
	t.mu.Unlock()
	close(f.doneCh)
}

// abdicate hands leadership to one parked follower, or retires the
// flight if nobody is waiting.
func (t *l1FlightTable) abdicate(key serve.CacheKey, f *l1Flight) {
	t.mu.Lock()
	f.hasLeader = false
	if f.waiters > 0 {
		// Buffered send cannot block: a token is outstanding only while
		// hasLeader is false, and we just cleared it.
		f.promoteCh <- struct{}{}
		t.mu.Unlock()
		return
	}
	if t.m[key] == f {
		delete(t.m, key)
	}
	t.mu.Unlock()
}

// claim records that a follower took the promotion token.
func (t *l1FlightTable) claim(f *l1Flight) {
	t.mu.Lock()
	f.waiters--
	f.hasLeader = true
	t.mu.Unlock()
}

// leave removes a follower whose own context died. The last leaver of
// a leaderless flight drains any unclaimed promotion token and retires
// the flight so the key is never stranded.
func (t *l1FlightTable) leave(key serve.CacheKey, f *l1Flight) {
	t.mu.Lock()
	f.waiters--
	if f.waiters == 0 && !f.hasLeader {
		select {
		case <-f.promoteCh:
		default:
		}
		if t.m[key] == f {
			delete(t.m, key)
		}
	}
	t.mu.Unlock()
}

// readCapped reads r into memory up to max bytes (plus one sentinel
// byte that detects overflow). If r ends within the cap it returns
// (body, false, nil) — the fully buffered case. If more than max bytes
// are available it returns (prefix, true, nil) with every byte read so
// far (max+1 of them) and the rest still unread in r — the caller must
// relay the prefix before streaming the remainder. A read error before
// the cap is the caller's mid-stream signal.
func readCapped(r io.Reader, max int64) ([]byte, bool, error) {
	buf := make([]byte, 0, 4096)
	limited := io.LimitReader(r, max+1)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := limited.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			return buf, false, err
		}
	}
	return buf, int64(len(buf)) > max, nil
}
