package cluster

import (
	"fmt"
	"net/url"
	"strings"
	"sync/atomic"
)

// BackendState is a backend's routability, as decided by the active
// prober (rise/fall thresholds over /readyz) and the passive signals
// riding on proxied traffic (consecutive transport failures eject,
// X-Eclipse-Draining marks a graceful drain).
type BackendState int32

const (
	// StateDown: not routable. The initial state of every backend (it
	// must pass Rise consecutive probes before taking traffic) and the
	// destination of both fall-threshold probe failures and passive
	// ejection. Only the active prober can bring a backend back up.
	StateDown BackendState = iota
	// StateUp: routable.
	StateUp
	// StateDraining: the backend answered with the X-Eclipse-Draining
	// marker — it is alive but refusing new work, so it is not routable;
	// the prober keeps watching in case the drain is cancelled.
	StateDraining
)

// String names the state for /varz and log lines.
func (s BackendState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDraining:
		return "draining"
	}
	return "down"
}

// Backend is one eclipse-serve instance the gateway can route to. The
// name (host:port) is the stable identity fed into the rendezvous hash,
// so a backend that flaps keeps its key range across down/up cycles —
// re-admission restores cache affinity instead of reshuffling the ring.
type Backend struct {
	name string
	url  *url.URL

	state atomic.Int32

	// epoch increments on every state transition. The prober owns the
	// rise/fall consecutive counters privately; it resets them whenever
	// it observes an epoch it did not cause (e.g. a passive ejection),
	// so re-admission after ejection always costs Rise fresh probes.
	epoch atomic.Uint64

	// passiveFails counts consecutive proxied transport failures (connect
	// errors, mid-stream truncation). Any proxied success resets it.
	passiveFails atomic.Int32

	// Counters for /varz and /metrics.
	requests  atomic.Uint64 // proxied attempts sent to this backend
	errors    atomic.Uint64 // attempts that failed (transport or 5xx)
	hedges    atomic.Uint64 // hedge attempts sent to this backend
	ejections atomic.Uint64 // passive Up->Down transitions
	drains    atomic.Uint64 // transitions into StateDraining
	probeOK   atomic.Uint64
	probeFail atomic.Uint64
}

// newBackend parses a backend address ("host:port" or a full URL).
func newBackend(addr string) (*Backend, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad backend %q: %v", addr, err)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("cluster: backend %q has no host", addr)
	}
	u.Path = strings.TrimSuffix(u.Path, "/")
	return &Backend{name: u.Host, url: u}, nil
}

// Name returns the backend's stable identity (the rendezvous-hash key).
func (b *Backend) Name() string { return b.name }

// URL returns the backend's base URL.
func (b *Backend) URL() *url.URL { return b.url }

// State returns the current routability state.
func (b *Backend) State() BackendState { return BackendState(b.state.Load()) }

// Routable reports whether new requests may be sent here.
func (b *Backend) Routable() bool { return b.State() == StateUp }

// BackendSnapshot is one backend's row in /varz.
type BackendSnapshot struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	State     string `json:"state"`
	Requests  uint64 `json:"requests_total"`
	Errors    uint64 `json:"errors_total"`
	Hedges    uint64 `json:"hedges_total"`
	Ejections uint64 `json:"ejections_total"`
	Drains    uint64 `json:"drains_total"`
	ProbeOK   uint64 `json:"probe_ok_total"`
	ProbeFail uint64 `json:"probe_fail_total"`
}

// Snapshot copies the backend's observable state.
func (b *Backend) Snapshot() BackendSnapshot {
	return BackendSnapshot{
		Name:      b.name,
		URL:       b.url.String(),
		State:     b.State().String(),
		Requests:  b.requests.Load(),
		Errors:    b.errors.Load(),
		Hedges:    b.hedges.Load(),
		Ejections: b.ejections.Load(),
		Drains:    b.drains.Load(),
		ProbeOK:   b.probeOK.Load(),
		ProbeFail: b.probeFail.Load(),
	}
}
