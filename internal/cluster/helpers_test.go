package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"eclipse/internal/serve"
)

// fakeBigBody is 256 KiB of deterministic bytes — large enough to
// overflow any small per-object cap a test configures.
func fakeBigBody() []byte {
	b := make([]byte, 256<<10)
	for i := range b {
		b[i] = byte(i*7 + 13)
	}
	return b
}

// fakeBackend is a scriptable stand-in for an eclipse-serve instance.
// Its mode selects the behaviour of both the /readyz probe and the
// media endpoints:
//
//	ok        200s everywhere
//	fail      500s everywhere (probe failure, non-retryable media 500)
//	drain     503 + X-Eclipse-Draining + Retry-After everywhere
//	pushback  readyz 200; media 429 with a scheduler-style Retry-After
//	midstream readyz 200; media sends headers then aborts the connection
//	echo      media reflects the request body (distinct keys, distinct
//	          bytes — the L1 aliasing stress backend)
//	big       media serves fakeBigBody deterministic bytes (over any
//	          small per-object cap: the stream-through backend)
type fakeBackend struct {
	ts        *httptest.Server
	mode      atomic.Value // string
	delay     atomic.Int64 // ns of sleep before answering media requests
	hits      atomic.Int64 // media requests received
	probes    atomic.Int64 // readyz probes received
	cancelled atomic.Int64 // media requests whose context died mid-delay
}

const fakeRetryAfter = "0.137"

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	f := &fakeBackend{}
	f.mode.Store("ok")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		switch f.mode.Load().(string) {
		case "flap":
			// Alternate ok/fail per probe: never Rise consecutive 200s.
			if f.probes.Add(1)%2 == 0 {
				w.WriteHeader(http.StatusInternalServerError)
			}
		case "drain":
			w.Header().Set(serve.DrainingHeader, "1")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		case "fail":
			w.WriteHeader(http.StatusInternalServerError)
		default:
			w.WriteHeader(http.StatusOK)
		}
	})
	media := func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		// Consume the body like a real backend: the server's client-abort
		// detection (background read) only arms once the body is drained.
		reqBody, _ := io.ReadAll(r.Body)
		if d := f.delay.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				f.cancelled.Add(1)
				return
			}
		}
		switch f.mode.Load().(string) {
		case "fail":
			http.Error(w, "internal", http.StatusInternalServerError)
		case "drain":
			w.Header().Set(serve.DrainingHeader, "1")
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case "pushback":
			w.Header().Set("Retry-After", fakeRetryAfter)
			http.Error(w, "queue full", http.StatusTooManyRequests)
		case "midstream":
			w.Header().Set("Content-Length", "1048576")
			w.WriteHeader(http.StatusOK)
			w.Write([]byte("partial-payload"))
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			panic(http.ErrAbortHandler)
		case "echo":
			w.Header().Set("Cache-Control", "max-age=60")
			w.Header().Set("Content-Length", strconv.Itoa(len(reqBody)))
			w.Write(reqBody)
		case "big":
			body := fakeBigBody()
			w.Header().Set("Content-Length", strconv.Itoa(len(body)))
			w.Write(body)
		default:
			fmt.Fprintf(w, "hello from %s", r.Host)
		}
	}
	mux.HandleFunc("POST /v1/decode", media)
	mux.HandleFunc("POST /v1/encode", media)
	mux.HandleFunc("POST /v1/transcode", media)
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// addr returns the backend's host:port — its gateway identity.
func (f *fakeBackend) addr() string { return f.ts.Listener.Addr().String() }

// newTestGateway builds a gateway over the addresses without starting
// the probers; tests drive backend state explicitly for determinism.
func newTestGateway(t *testing.T, cfg Config, addrs ...string) *Gateway {
	t.Helper()
	cfg.Backends = addrs
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// forceUp marks every backend routable, bypassing the prober.
func forceUp(g *Gateway) {
	for _, b := range g.backends {
		g.setState(b, StateUp)
	}
}

// waitState polls until the backend reaches the wanted state.
func waitState(t *testing.T, b *Backend, want BackendState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b.State() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("backend %s: state %v, want %v", b.Name(), b.State(), want)
}
