package cluster

import (
	"context"
	"testing"
	"time"
)

// TestHealthLifecycle walks one backend through the full state machine
// under the active prober: admitted after Rise probes, ejected after
// Fall failures, re-admitted after a "restart" (failures stop), pulled
// immediately on a draining announcement, and restored when the drain
// is cancelled.
func TestHealthLifecycle(t *testing.T) {
	f := newFakeBackend(t)
	g := newTestGateway(t, Config{
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Rise:          2,
		Fall:          2,
	}, f.addr())
	g.Start()
	defer g.Stop()
	b := g.backends[0]

	if b.State() != StateDown {
		t.Fatalf("initial state %v, want down (no traffic before Rise probes)", b.State())
	}
	waitState(t, b, StateUp)

	// Probe failures: Fall consecutive 500s eject.
	f.mode.Store("fail")
	waitState(t, b, StateDown)

	// "Restart": the same name:port answers again; Rise fresh probes
	// re-admit it with its rendezvous key range intact.
	f.mode.Store("ok")
	waitState(t, b, StateUp)
	if got := b.probeOK.Load(); got < 2 {
		t.Fatalf("re-admitted after %d ok probes, want >= Rise", got)
	}

	// Draining marker: removed without waiting for any threshold.
	f.mode.Store("drain")
	waitState(t, b, StateDraining)

	// Drain cancelled: Rise probes bring it back.
	f.mode.Store("ok")
	waitState(t, b, StateUp)

	if churn := g.met.RingChurn.Load(); churn < 5 {
		t.Fatalf("ring churn %d, want >= 5 transitions", churn)
	}
}

// TestHealthRiseThreshold: one good probe is not enough — a flapping
// backend (ok, fail, ok, fail...) with Rise=2 must never be admitted.
func TestHealthRiseThreshold(t *testing.T) {
	f := newFakeBackend(t)
	f.mode.Store("flap") // the fake alternates 200/500 per probe
	g := newTestGateway(t, Config{
		ProbeInterval: 3 * time.Millisecond,
		Rise:          2,
		Fall:          2,
	}, f.addr())
	g.Start()
	defer g.Stop()
	b := g.backends[0]

	for f.probes.Load() < 20 {
		if b.State() == StateUp {
			t.Fatal("flapping backend admitted with a single good probe")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPassiveEjection: consecutive proxied transport failures remove a
// backend without waiting for the prober, and re-admission afterwards
// still costs Rise fresh probes (the epoch reset).
func TestPassiveEjection(t *testing.T) {
	f := newFakeBackend(t)
	g := newTestGateway(t, Config{PassiveFall: 3, Rise: 2}, f.addr())
	forceUp(g)
	b := g.backends[0]

	epochBefore := b.epoch.Load()
	g.passiveFailure(b)
	g.passiveFailure(b)
	if b.State() != StateUp {
		t.Fatalf("ejected after 2 failures, want threshold 3")
	}
	g.passiveFailure(b)
	if b.State() != StateDown {
		t.Fatal("not ejected after PassiveFall consecutive failures")
	}
	if b.ejections.Load() != 1 {
		t.Fatalf("ejections = %d, want 1", b.ejections.Load())
	}
	if b.epoch.Load() == epochBefore {
		t.Fatal("ejection did not bump the epoch; the prober would keep a stale streak")
	}

	// A success streak interrupted by recovery never ejects.
	forceUp(g)
	g.passiveFailure(b)
	g.passiveFailure(b)
	g.passiveSuccess(b)
	g.passiveFailure(b)
	g.passiveFailure(b)
	if b.State() != StateUp {
		t.Fatal("ejected although the failure streak was broken by a success")
	}
}

// TestWaitReady times out cleanly when nothing comes up.
func TestWaitReady(t *testing.T) {
	f := newFakeBackend(t)
	f.mode.Store("fail")
	g := newTestGateway(t, Config{ProbeInterval: 5 * time.Millisecond}, f.addr())
	g.Start()
	defer g.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := g.WaitReady(ctx, 1); err == nil {
		t.Fatal("WaitReady succeeded with no healthy backend")
	}
}
