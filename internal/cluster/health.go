package cluster

import (
	"context"
	"io"
	"net/http"
	"time"

	"eclipse/internal/serve"
)

// Active health checking: one prober goroutine per backend GETs its
// /readyz on a fixed cadence and drives the rise/fall state machine.
//
//   - rise: a Down (or Draining) backend needs Rise consecutive 200s
//     before it takes traffic again — a restarted process must prove
//     itself stable, not just accept one connection;
//   - fall: an Up backend is removed after Fall consecutive failures
//     (connect error, timeout, or any non-200 without the draining
//     marker);
//   - drain: a 503 carrying X-Eclipse-Draining moves the backend to
//     Draining immediately, no threshold — the backend itself asserted
//     it is going away, which outranks any counting.
//
// The consecutive counters are prober-private. Passive transitions
// (ejection from the proxy path) bump the backend's epoch; the prober
// notices and zeroes its counters, so re-admission after an ejection
// always costs Rise fresh successes.

// probeResult classifies one health probe.
type probeResult int

const (
	probeOK probeResult = iota
	probeFail
	probeDraining
)

// probeOnce performs a single /readyz check.
func (g *Gateway) probeOnce(b *Backend) probeResult {
	ctx, cancel := context.WithTimeout(g.probeCtx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url.String()+"/readyz", nil)
	if err != nil {
		return probeFail
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return probeFail
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		return probeOK
	case resp.Header.Get(serve.DrainingHeader) != "":
		return probeDraining
	default:
		return probeFail
	}
}

// probeLoop drives one backend's health state until the gateway stops.
// The first probe fires immediately so cold starts admit backends after
// Rise×ProbeInterval rather than an extra tick.
func (g *Gateway) probeLoop(b *Backend) {
	defer g.probeWG.Done()
	var (
		consecOK, consecFail int
		lastEpoch            = b.epoch.Load()
	)
	tick := time.NewTicker(g.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		// A transition this prober did not make (passive ejection or
		// drain marking) invalidates its streak.
		if e := b.epoch.Load(); e != lastEpoch {
			consecOK, consecFail = 0, 0
			lastEpoch = e
		}
		switch g.probeOnce(b) {
		case probeOK:
			b.probeOK.Add(1)
			consecOK++
			consecFail = 0
			if b.State() != StateUp && consecOK >= g.cfg.Rise {
				b.passiveFails.Store(0)
				g.setState(b, StateUp)
				lastEpoch = b.epoch.Load()
			}
		case probeDraining:
			b.probeFail.Add(1)
			consecOK = 0
			consecFail = 0
			if b.State() != StateDraining {
				g.setState(b, StateDraining)
				lastEpoch = b.epoch.Load()
			}
		case probeFail:
			b.probeFail.Add(1)
			consecOK = 0
			consecFail++
			// A draining backend whose listener has since closed is just
			// down; either way Fall failures end in StateDown.
			if b.State() != StateDown && consecFail >= g.cfg.Fall {
				g.setState(b, StateDown)
				lastEpoch = b.epoch.Load()
			}
		}
		select {
		case <-g.probeCtx.Done():
			return
		case <-tick.C:
		}
	}
}

// passiveFailure records a proxied transport failure against a backend
// and ejects it after PassiveFall consecutive ones — faster than
// waiting Fall probe intervals when a node vanishes under load.
func (g *Gateway) passiveFailure(b *Backend) {
	if int(b.passiveFails.Add(1)) >= g.cfg.PassiveFall && b.State() == StateUp {
		b.passiveFails.Store(0)
		b.ejections.Add(1)
		g.setState(b, StateDown)
	}
}

// passiveSuccess clears the consecutive-failure streak.
func (g *Gateway) passiveSuccess(b *Backend) { b.passiveFails.Store(0) }

// passiveDraining marks a backend that answered with the draining
// header on a proxied response — no need to wait for the next probe.
func (g *Gateway) passiveDraining(b *Backend) {
	if b.State() != StateDraining {
		g.setState(b, StateDraining)
	}
}
