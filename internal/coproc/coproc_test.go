package coproc

import (
	"strings"
	"testing"

	"eclipse/internal/mem"
	"eclipse/internal/shell"
	"eclipse/internal/sim"
)

// chunkTask moves `total` bytes through its single port in fixed chunks,
// exercising the framework loop.
type chunkTask struct {
	out   bool
	total uint32
	chunk uint32
	moved uint32
	steps int
	fill  byte
	got   []byte
}

func (ct *chunkTask) Step(c *Ctx) bool {
	ct.steps++
	n := ct.chunk
	if ct.moved+n > ct.total {
		n = ct.total - ct.moved
	}
	if !c.GetSpace(0, n) {
		return false
	}
	buf := make([]byte, n)
	if ct.out {
		for i := range buf {
			buf[i] = ct.fill
		}
		c.Write(0, 0, buf)
	} else {
		c.Read(0, 0, buf)
		ct.got = append(ct.got, buf...)
	}
	c.Compute(5)
	c.PutSpace(0, n)
	ct.moved += n
	return ct.moved == ct.total
}

func TestCoprocessorFrameworkRunsTasks(t *testing.T) {
	k := sim.NewKernel()
	fab := shell.NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	pSh := fab.NewShell(shell.DefaultConfig("p"))
	cSh := fab.NewShell(shell.DefaultConfig("c"))
	prod := New(pSh)
	cons := New(cSh)
	pT := pSh.AddTask("prod", 0, 0)
	cT := cSh.AddTask("cons", 7, 0)
	if err := fab.Connect(shell.Endpoint{Shell: pSh, Task: pT, Port: 0},
		[]shell.Endpoint{{Shell: cSh, Task: cT, Port: 0}}, 128); err != nil {
		t.Fatal(err)
	}
	producer := &chunkTask{out: true, total: 1000, chunk: 50, fill: 0xAB}
	consumer := &chunkTask{total: 1000, chunk: 25}
	prod.Install(pT, producer)
	cons.Install(cT, consumer)
	prod.Start(k)
	cons.Start(k)
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if len(consumer.got) != 1000 {
		t.Fatalf("moved %d bytes", len(consumer.got))
	}
	for i, b := range consumer.got {
		if b != 0xAB {
			t.Fatalf("byte %d = %x", i, b)
		}
	}
	if producer.steps == 0 || consumer.steps == 0 {
		t.Fatal("no steps")
	}
}

func TestCtxInfoDelivery(t *testing.T) {
	k := sim.NewKernel()
	fab := shell.NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	sh := fab.NewShell(shell.DefaultConfig("x"))
	cp := New(sh)
	id := sh.AddTask("t", 42, 0)
	var seen uint32
	cp.Install(id, taskFunc(func(c *Ctx) bool {
		seen = c.Info
		if c.Now() != c.Sh.Now() {
			t.Error("Now mismatch")
		}
		return true
	}))
	cp.Start(k)
	if err := k.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if seen != 42 {
		t.Fatalf("info = %d", seen)
	}
}

// taskFunc adapts a function to the Task interface.
type taskFunc func(*Ctx) bool

func (f taskFunc) Step(c *Ctx) bool { return f(c) }

func TestDoubleInstallPanics(t *testing.T) {
	k := sim.NewKernel()
	fab := shell.NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	cp := New(fab.NewShell(shell.DefaultConfig("x")))
	id := cp.Shell().AddTask("t", 0, 0)
	cp.Install(id, taskFunc(func(*Ctx) bool { return true }))
	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "twice") {
			t.Fatalf("recover = %v", r)
		}
	}()
	cp.Install(id, taskFunc(func(*Ctx) bool { return true }))
}

func TestMissingImplementationFails(t *testing.T) {
	k := sim.NewKernel()
	fab := shell.NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	cp := New(fab.NewShell(shell.DefaultConfig("x")))
	cp.Shell().AddTask("ghost", 0, 0) // task in the table, no Install
	cp.Start(k)
	err := k.Run(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "no implementation") {
		t.Fatalf("err = %v", err)
	}
}
