// Package coproc is the framework for building Eclipse coprocessor
// models on top of the shell's task-level interface: the coprocessor
// control loop of paper Section 4 (an infinite loop over processing
// steps, each started by GetTask), and the per-task context used by the
// function-specific models in package copro.
//
// A coprocessor is a shell plus a set of installed Task implementations
// (one per task-table entry). The framework runs the top-level loop:
//
//	for {
//	    task, info = GetTask()
//	    step(task, info)     // may abort on denied GetSpace
//	}
//
// Multi-tasking, synchronization, and transport all happen through the
// five shell primitives; a Task aborts a processing step by returning
// from Step after a denied GetSpace without committing anything, and the
// scheduler will only re-dispatch it when the denial looks satisfiable.
package coproc

import (
	"fmt"

	"eclipse/internal/shell"
	"eclipse/internal/sim"
)

// Task is one Kahn task's implementation on a coprocessor: Step executes
// (or aborts) one processing step. Step returns true when the task has
// completed all of its work and must never be scheduled again.
type Task interface {
	Step(c *Ctx) (done bool)
}

// Ctx gives a Task access to the five primitives, bound to its task id.
type Ctx struct {
	Sh   *shell.Shell
	Task int
	Info uint32
}

// GetSpace asks for n bytes of data/room on the port.
func (c *Ctx) GetSpace(port int, n uint32) bool { return c.Sh.GetSpace(c.Task, port, n) }

// PutSpace commits n bytes on the port.
func (c *Ctx) PutSpace(port int, n uint32) { c.Sh.PutSpace(c.Task, port, n) }

// Read copies bytes from inside the granted window of an input port.
func (c *Ctx) Read(port int, offset uint32, buf []byte) { c.Sh.Read(c.Task, port, offset, buf) }

// Write stores bytes inside the granted window of an output port.
func (c *Ctx) Write(port int, offset uint32, data []byte) { c.Sh.Write(c.Task, port, offset, data) }

// Compute charges function-specific datapath time.
func (c *Ctx) Compute(cycles uint64) { c.Sh.Compute(cycles) }

// Proc returns the coprocessor's simulation process (for models with
// private memory connections, e.g. the MC/ME system-bus port).
func (c *Ctx) Proc() *sim.Proc { return c.Sh.Proc() }

// Now returns the current cycle.
func (c *Ctx) Now() uint64 { return c.Sh.Now() }

// Coprocessor couples a shell with the Task implementations installed in
// its task table.
type Coprocessor struct {
	sh    *shell.Shell
	tasks map[int]Task
}

// New creates a coprocessor wrapper for a shell.
func New(sh *shell.Shell) *Coprocessor {
	return &Coprocessor{sh: sh, tasks: map[int]Task{}}
}

// Shell returns the underlying shell.
func (cp *Coprocessor) Shell() *shell.Shell { return cp.sh }

// Install binds a Task implementation to a task-table entry.
func (cp *Coprocessor) Install(taskID int, t Task) {
	if _, dup := cp.tasks[taskID]; dup {
		panic(fmt.Sprintf("coproc: task %d installed twice on %s", taskID, cp.sh.Name()))
	}
	cp.tasks[taskID] = t
}

// Start launches the coprocessor's control loop as a simulation process.
func (cp *Coprocessor) Start(k *sim.Kernel) {
	k.NewProc(cp.sh.Name(), 0, func(p *sim.Proc) {
		cp.sh.Bind(p)
		for {
			task, info, ok := cp.sh.GetTask()
			if !ok {
				return
			}
			t := cp.tasks[task]
			if t == nil {
				panic(fmt.Sprintf("coproc: %s scheduled task %d with no implementation", cp.sh.Name(), task))
			}
			if t.Step(&Ctx{Sh: cp.sh, Task: task, Info: info}) {
				cp.sh.TaskDone(task)
			}
		}
	})
}
