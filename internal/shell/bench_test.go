package shell

// Microbenchmarks for the shell's data-transport hot paths: cache-hit
// reads and writes, demand-miss reads, and reads spanning the circular-
// buffer seam (two window segments per access). All report allocations —
// the steady-state transport is expected to allocate nothing per
// operation (see BENCH_kernel.json for the trajectory).

import (
	"testing"

	"eclipse/internal/mem"
	"eclipse/internal/sim"
)

// benchSelfLoop runs body on a single-shell self-loop stream (task port 0
// produces into the buffer its own port 1 consumes), the minimal fixture
// that exercises the full write-cache/flush/putspace/read-cache path.
func benchSelfLoop(b *testing.B, cfg Config, bufSize uint32, body func(sh *Shell, task int)) {
	b.Helper()
	k := sim.NewKernel()
	f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	sh := f.NewShell(cfg)
	task := sh.AddTask("bench", 0, 0)
	if err := f.Connect(
		Endpoint{Shell: sh, Task: task, Port: 0},
		[]Endpoint{{Shell: sh, Task: task, Port: 1}},
		bufSize,
	); err != nil {
		b.Fatal(err)
	}
	k.NewProc("bench", 0, func(p *sim.Proc) {
		sh.Bind(p)
		tk, _, _ := sh.GetTask()
		body(sh, tk)
		sh.TaskDone(task)
		sh.GetTask()
	})
	if err := k.Run(0); err != nil {
		b.Fatal(err)
	}
}

// fillWindow produces n bytes on port 0 and blocks until port 1 has them
// granted, leaving a granted read window of n bytes.
func fillWindow(b *testing.B, sh *Shell, tk int, n uint32) {
	b.Helper()
	for !sh.GetSpace(tk, 0, n) {
		tk, _, _ = sh.GetTask()
	}
	sh.Write(tk, 0, 0, make([]byte, n))
	sh.PutSpace(tk, 0, n)
	for !sh.GetSpace(tk, 1, n) {
		tk, _, _ = sh.GetTask()
	}
}

func BenchmarkShellRead(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		// Re-reading one resident line: pure lookup + copy.
		benchSelfLoop(b, DefaultConfig("b"), 1024, func(sh *Shell, tk int) {
			fillWindow(b, sh, tk, 256)
			buf := make([]byte, 64)
			sh.Read(tk, 1, 0, buf) // warm the cache
			b.ReportAllocs()
			b.SetBytes(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.Read(tk, 1, 0, buf)
			}
			b.StopTimer()
			sh.PutSpace(tk, 1, 256)
		})
	})
	b.Run("miss", func(b *testing.B) {
		// A one-line cache with alternating target lines: every read is a
		// demand miss with an eviction (prefetch off isolates the miss).
		cfg := DefaultConfig("b")
		cfg.ReadCacheLines = 1
		cfg.PrefetchDepth = 0
		benchSelfLoop(b, cfg, 1024, func(sh *Shell, tk int) {
			fillWindow(b, sh, tk, 256)
			buf := make([]byte, 16)
			b.ReportAllocs()
			b.SetBytes(16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.Read(tk, 1, uint32(i%2)*16, buf)
			}
			b.StopTimer()
			sh.PutSpace(tk, 1, 256)
		})
	})
	b.Run("wrap", func(b *testing.B) {
		// A granted window wrapped around the circular-buffer seam: each
		// read spans two window segments and a partial line at the seam.
		cfg := DefaultConfig("b")
		benchSelfLoop(b, cfg, 320, func(sh *Shell, tk int) {
			// First trip fills and drains [0,256); the second window then
			// wraps: [256,320) + [0,192).
			fillWindow(b, sh, tk, 256)
			sh.PutSpace(tk, 1, 256)
			fillWindow(b, sh, tk, 256)
			buf := make([]byte, 32)
			sh.Read(tk, 1, 48, buf) // warm: offsets 48..80 straddle the seam
			b.ReportAllocs()
			b.SetBytes(32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.Read(tk, 1, 48, buf)
			}
			b.StopTimer()
			sh.PutSpace(tk, 1, 256)
		})
	})
}

func BenchmarkShellWrite(b *testing.B) {
	b.Run("hit", func(b *testing.B) {
		// Rewriting resident dirty lines: lookup + copy + mask update.
		benchSelfLoop(b, DefaultConfig("b"), 1024, func(sh *Shell, tk int) {
			for !sh.GetSpace(tk, 0, 256) {
				tk, _, _ = sh.GetTask()
			}
			data := make([]byte, 64)
			sh.Write(tk, 0, 0, data) // allocate the lines
			b.ReportAllocs()
			b.SetBytes(64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.Write(tk, 0, 0, data)
			}
			b.StopTimer()
			sh.PutSpace(tk, 0, 256)
		})
	})
	b.Run("evict", func(b *testing.B) {
		// A one-line write cache with alternating target lines: every
		// write evicts and synchronously writes back the previous line.
		cfg := DefaultConfig("b")
		cfg.WriteCacheLines = 1
		benchSelfLoop(b, cfg, 1024, func(sh *Shell, tk int) {
			for !sh.GetSpace(tk, 0, 256) {
				tk, _, _ = sh.GetTask()
			}
			data := make([]byte, 16)
			b.ReportAllocs()
			b.SetBytes(16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sh.Write(tk, 0, uint32(i%2)*16, data)
			}
			b.StopTimer()
			sh.PutSpace(tk, 0, 256)
		})
	})
}

// BenchmarkShellStream measures the full producer/consumer round trip —
// GetSpace, Write, PutSpace, flush, putspace message, GetSpace, Read,
// PutSpace — per 64-byte chunk through a small buffer.
func BenchmarkShellStream(b *testing.B) {
	benchSelfLoop(b, DefaultConfig("b"), 256, func(sh *Shell, tk int) {
		data := make([]byte, 64)
		buf := make([]byte, 64)
		b.ReportAllocs()
		b.SetBytes(64)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for !sh.GetSpace(tk, 0, 64) {
				tk, _, _ = sh.GetTask()
			}
			sh.Write(tk, 0, 0, data)
			sh.PutSpace(tk, 0, 64)
			for !sh.GetSpace(tk, 1, 64) {
				tk, _, _ = sh.GetTask()
			}
			sh.Read(tk, 1, 0, buf)
			sh.PutSpace(tk, 1, 64)
		}
	})
}
