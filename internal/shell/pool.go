package shell

// Scratch-buffer pooling and in-flight fetch tracking for the shell's
// data-transport hot path. Every demand fetch, prefetch, paranoid truth
// check, and write-back flush used to allocate a fresh line-sized []byte
// (and the prefetch bookkeeping churned a map); at millions of line moves
// per simulation those allocations dominated the Go profile. A Shell now
// owns a free list of line-capacity buffers recycled at transfer
// completion, and a small open-addressed set tracks in-flight line
// fetches with a generation token so a stale asynchronous completion can
// never merge over a newer fetch of the same line.

// bufPool is a LIFO free list of scratch buffers with capacity for one
// cache line each. It is intentionally not synchronized: a Shell is
// confined to its kernel's deterministic event loop.
//
// Ownership contract: get hands the caller exclusive use of the buffer;
// the owner (or the completion callback of the async transfer the buffer
// was handed to) must put it back exactly once. Buffers handed to
// mem.ReadAsync / mem.WriteAsyncOwned remain owned by the transfer until
// its done callback runs.
type bufPool struct {
	lineBytes int
	free      [][]byte

	// statistics
	gets  uint64 // total get calls
	news  uint64 // gets that had to allocate (pool empty)
	peak  int    // high-water mark of simultaneously outstanding buffers
	inUse int
}

func newBufPool(lineBytes int) *bufPool {
	return &bufPool{lineBytes: lineBytes}
}

// get returns a buffer of length n (n <= lineBytes), recycled if possible.
func (bp *bufPool) get(n int) []byte {
	bp.gets++
	bp.inUse++
	if bp.inUse > bp.peak {
		bp.peak = bp.inUse
	}
	if n > bp.lineBytes {
		// Oversized request (e.g. a flush span on a misconfigured
		// geometry); serve it but do not pool it on return.
		bp.news++
		return make([]byte, n)
	}
	if k := len(bp.free); k > 0 {
		b := bp.free[k-1]
		bp.free = bp.free[:k-1]
		return b[:n]
	}
	bp.news++
	return make([]byte, n, bp.lineBytes)
}

// put recycles a buffer obtained from get.
func (bp *bufPool) put(b []byte) {
	bp.inUse--
	if cap(b) != bp.lineBytes {
		return // oversized one-off, let the GC have it
	}
	bp.free = append(bp.free, b[:cap(b)])
}

// PoolStats is a snapshot of scratch-buffer pool activity.
type PoolStats struct {
	Gets        uint64 // buffer requests served
	Allocations uint64 // requests that had to allocate
	Peak        int    // max buffers simultaneously in flight
	Outstanding int    // buffers currently in flight (0 after quiesce)
}

func (bp *bufPool) stats() PoolStats {
	return PoolStats{Gets: bp.gets, Allocations: bp.news, Peak: bp.peak, Outstanding: bp.inUse}
}

// ---------------------------------------------------------------------
// In-flight fetch set

// inflightSet tracks pending asynchronous line fetches, keyed by the
// absolute line address. It replaces a map[uint32]bool whose per-line
// insert/delete churn showed up in the transport profile: a small
// open-addressed table with linear probing and backward-shift deletion
// allocates only when it grows.
//
// Each entry carries a generation token. An asynchronous completion must
// present the token it was issued; if the entry has since been cancelled
// (GetSpace invalidation, demand fetch) or re-registered by a newer
// prefetch, the token no longer matches and the completion must drop its
// buffer instead of merging stale data (see prims.go).
type inflightSet struct {
	addrs []uint32
	toks  []uint32
	used  []bool
	n     int
	next  uint32 // token generator
}

func newInflightSet() *inflightSet {
	s := &inflightSet{}
	s.init(16)
	return s
}

func (s *inflightSet) init(capacity int) {
	s.addrs = make([]uint32, capacity)
	s.toks = make([]uint32, capacity)
	s.used = make([]bool, capacity)
	s.n = 0
}

// Len returns the number of pending fetches.
func (s *inflightSet) Len() int { return s.n }

func (s *inflightSet) home(addr uint32) uint32 {
	// Fibonacci hashing on the line address; lines are aligned so the
	// low bits carry no entropy on their own.
	return (addr * 2654435761) & uint32(len(s.addrs)-1)
}

// add registers addr as in flight and returns the generation token the
// completion must present. Re-adding an address invalidates the previous
// generation.
func (s *inflightSet) add(addr uint32) uint32 {
	if s.n*4 >= len(s.addrs)*3 {
		s.grow()
	}
	s.next++
	tok := s.next
	i := s.home(addr)
	mask := uint32(len(s.addrs) - 1)
	for s.used[i] {
		if s.addrs[i] == addr {
			s.toks[i] = tok
			return tok
		}
		i = (i + 1) & mask
	}
	s.addrs[i] = addr
	s.toks[i] = tok
	s.used[i] = true
	s.n++
	return tok
}

// contains reports whether addr has a pending fetch.
func (s *inflightSet) contains(addr uint32) bool {
	_, ok := s.find(addr)
	return ok
}

// matches reports whether addr is pending with exactly this generation.
func (s *inflightSet) matches(addr, tok uint32) bool {
	i, ok := s.find(addr)
	return ok && s.toks[i] == tok
}

func (s *inflightSet) find(addr uint32) (uint32, bool) {
	if s.n == 0 {
		return 0, false
	}
	i := s.home(addr)
	mask := uint32(len(s.addrs) - 1)
	for s.used[i] {
		if s.addrs[i] == addr {
			return i, true
		}
		i = (i + 1) & mask
	}
	return 0, false
}

// remove cancels the pending fetch for addr (no-op when absent), using
// backward-shift deletion so probe chains stay dense without tombstones.
func (s *inflightSet) remove(addr uint32) {
	i, ok := s.find(addr)
	if !ok {
		return
	}
	mask := uint32(len(s.addrs) - 1)
	s.used[i] = false
	s.n--
	j := i
	for {
		j = (j + 1) & mask
		if !s.used[j] {
			return
		}
		h := s.home(s.addrs[j])
		// j's entry may move into the hole at i only if its home
		// position does not lie strictly between the hole and j
		// (cyclically); otherwise the probe chain would break.
		if (j-h)&mask >= (j-i)&mask {
			s.addrs[i], s.toks[i] = s.addrs[j], s.toks[j]
			s.used[i] = true
			s.used[j] = false
			i = j
		}
	}
}

func (s *inflightSet) grow() {
	oldAddrs, oldToks, oldUsed := s.addrs, s.toks, s.used
	s.init(len(oldAddrs) * 2)
	mask := uint32(len(s.addrs) - 1)
	for i, u := range oldUsed {
		if !u {
			continue
		}
		j := s.home(oldAddrs[i])
		for s.used[j] {
			j = (j + 1) & mask
		}
		s.addrs[j] = oldAddrs[i]
		s.toks[j] = oldToks[i]
		s.used[j] = true
		s.n++
	}
}
