// Package shell implements the Eclipse coprocessor shell: the generic
// infrastructure block instantiated next to every coprocessor (paper
// Sections 3.1 and 5). A shell owns the local stream table and task
// table, answers the five task-level interface primitives (GetTask, Read,
// Write, GetSpace, PutSpace), synchronizes streams with remote shells
// through putspace messages, schedules tasks with a weighted round-robin
// "best guess" policy, moves stream data through read/write caches whose
// coherency is driven by the synchronization events, and accumulates
// per-task and per-stream performance measurements.
package shell

import (
	"fmt"

	"eclipse/internal/mem"
	"eclipse/internal/sim"
)

// Config parameterizes a shell instance, mirroring the paper's
// "parameterized shell template" whose instances are derived per
// coprocessor (Section 3.1).
type Config struct {
	Name string

	// Cache geometry. LineBytes 0 defaults to the memory bus width.
	ReadCacheLines  int
	WriteCacheLines int
	LineBytes       int

	// PrefetchDepth is how many lines ahead of a read the shell
	// prefetches inside the granted window; 0 disables prefetching.
	PrefetchDepth int

	// MsgLatency is the putspace-message network latency in cycles.
	MsgLatency uint64

	// NaiveScheduler disables the "best guess" runnability test: tasks
	// are dispatched round-robin even when their last GetSpace denial is
	// known to be unsatisfiable, wasting processing steps (the baseline
	// the paper's scheduler is compared against, [13]).
	NaiveScheduler bool

	// Primitive costs in coprocessor cycles.
	GetTaskCycles  uint64
	GetSpaceCycles uint64
	PutSpaceCycles uint64
	SwitchCycles   uint64 // additional GetTask cost on an actual task switch
	AccessCycles   uint64 // per cache-line touch on Read/Write hits
}

// DefaultConfig returns the shell parameters used by the paper's first
// instance experiments: small per-coprocessor caches, two-cycle
// synchronization primitives, and a few cycles of message latency.
func DefaultConfig(name string) Config {
	return Config{
		Name:            name,
		ReadCacheLines:  16,
		WriteCacheLines: 16,
		PrefetchDepth:   2,
		MsgLatency:      3,
		GetTaskCycles:   2,
		GetSpaceCycles:  1,
		PutSpaceCycles:  1,
		SwitchCycles:    8,
		AccessCycles:    1,
	}
}

// NoTask is returned by GetTask when every task mapped on the coprocessor
// has finished.
const NoTask = -1

// remoteRef addresses the counterpart access point of a stream: the row
// in a (possibly different) shell's stream table, and which credit slot
// of that row this side occupies.
type remoteRef struct {
	sh   *Shell
	row  int
	slot int
}

// pendingCommit is a PutSpace whose putspace messages are held back until
// its cache flushes complete, preserving the paper's ordering rule
// (Section 5.2, observation 3). Commits drain strictly in order.
type pendingCommit struct {
	bytes       uint32
	flushesLeft int
}

// StreamStats are the per-access-point measurement counters of the stream
// table (paper Section 5.4).
type StreamStats struct {
	GetSpaceCalls  uint64
	Denials        uint64
	PutSpaceCalls  uint64
	BytesCommitted uint64
	BytesRead      uint64
	BytesWritten   uint64
	MsgsSent       uint64
	MsgsReceived   uint64
}

// streamRow is one access point's row in the shell's stream table
// (Section 5.1): window state, space accounting, the remote access
// points, and measurement counters.
type streamRow struct {
	task, port int
	input      bool
	base, size uint32

	point   uint32 // committed point of access, offset within the buffer
	granted uint32 // access window size obtained via GetSpace

	// credit[i] is the known available space with respect to remote i.
	// Consumers have one producer (len 1); producers have one slot per
	// consumer and the effective space is the minimum (the slowest
	// consumer gates the producer).
	credit  []uint32
	remotes []remoteRef

	deniedActive bool
	denied       uint32 // byte count of the last denied GetSpace

	// commits is a head-indexed queue: entries [commitHead:] are pending,
	// the storage before commitHead is dead and reclaimed by resetting
	// both once the queue drains (so steady state never reallocates).
	commits    []pendingCommit
	commitHead int

	// Cached snapshot of segments(0, granted): the window segments are
	// recomputed only after GetSpace/PutSpace move the window, not on
	// every fetch-completion merge (see mergeWindow).
	wsegs  [2]seg
	wcnt   int
	wvalid bool

	stats StreamStats
}

// effSpace is the space value GetSpace compares against.
func (r *streamRow) effSpace() uint32 {
	m := r.credit[0]
	for _, c := range r.credit[1:] {
		if c < m {
			m = c
		}
	}
	return m
}

// seg is an absolute memory segment of a (possibly wrapping) window region.
type seg struct {
	addr uint32
	n    uint32
}

// windowSegs returns the absolute memory segments of the whole granted
// window, from the cached snapshot when it is still valid. The snapshot
// is invalidated by moveWindow whenever GetSpace or PutSpace changes the
// window, which is far rarer than the per-line merges that consume it.
func (r *streamRow) windowSegs() ([2]seg, int) {
	if !r.wvalid {
		r.wsegs, r.wcnt = r.segments(0, r.granted)
		r.wvalid = true
	}
	return r.wsegs, r.wcnt
}

// moveWindow invalidates the cached window-segment snapshot; it must be
// called whenever point or granted changes.
func (r *streamRow) moveWindow() { r.wvalid = false }

// segments maps the window region [off, off+n) (relative to the committed
// point) onto at most two absolute memory segments of the cyclic buffer.
func (r *streamRow) segments(off, n uint32) (out [2]seg, cnt int) {
	if n == 0 {
		return out, 0
	}
	start := (r.point + off) % r.size
	first := n
	if start+first > r.size {
		first = r.size - start
	}
	out[0] = seg{addr: r.base + start, n: first}
	cnt = 1
	if first < n {
		out[1] = seg{addr: r.base, n: n - first}
		cnt = 2
	}
	return out, cnt
}

// StepHistBuckets is the number of log2 buckets in the processing-step
// duration histogram: bucket i counts steps of duration [2^i, 2^(i+1)).
const StepHistBuckets = 16

// TaskStats are the per-task measurement counters of the task table.
type TaskStats struct {
	Steps       uint64 // processing steps (GetTask returns)
	Switches    uint64 // actual task switches
	RunCycles   uint64 // cycles the coprocessor spent on this task
	DeniedSteps uint64 // processing steps aborted by a denied GetSpace

	// StepHist is a log2 histogram of processing-step durations (the
	// interval between consecutive GetTask calls while this task held
	// the coprocessor), the paper's step-granularity measure (§5.3).
	StepHist [StepHistBuckets]uint64
}

// StepPercentile returns the approximate p-quantile (0..1) of the step
// duration distribution, as the upper bound of the bucket containing it.
func (s *TaskStats) StepPercentile(p float64) uint64 {
	var total uint64
	for _, c := range s.StepHist {
		total += c
	}
	if total == 0 {
		return 0
	}
	want := uint64(p * float64(total))
	var cum uint64
	for i, c := range s.StepHist {
		cum += c
		if cum > want {
			return 1 << (uint(i) + 1)
		}
	}
	return 1 << StepHistBuckets
}

// taskRow is one task's row in the shell's task table (Section 5.3).
type taskRow struct {
	name     string
	info     uint32
	budget   uint64 // guaranteed continuous execution cycles
	enabled  bool
	finished bool
	rows     []int // port id → stream table row index

	stats TaskStats
}

// Shell is one coprocessor's shell instance.
type Shell struct {
	cfg  Config
	k    *sim.Kernel
	fab  *Fabric
	rows []*streamRow
	tsks []*taskRow

	rcache *cache
	wcache *cache
	// inflight tracks pending line fetches by absolute line address with
	// generation tokens; invalidation and demand fetches cancel entries.
	inflight *inflightSet
	// pool recycles line-sized scratch buffers across demand fetches,
	// prefetches, flushes, and the Paranoid truth check.
	pool *bufPool
	// truth is the reusable Paranoid comparison buffer.
	truth []byte

	// Free lists of pre-bound asynchronous request objects (async.go).
	fetchPool []*fetchReq
	flushPool []*flushReq

	// Transport-layer counters (see TransportStats).
	prefIssued  uint64
	prefDropped uint64
	demandOverl uint64
	// flushRow/flushMem park the PutSpace flush target for issueFlushFn,
	// the pre-bound flushOverlapping callback.
	flushRow     *streamRow
	flushMem     *mem.Memory
	issueFlushFn func(addr uint32, data []byte)

	proc *sim.Proc
	wake *sim.Signal

	current   int // task occupying the coprocessor, NoTask if none
	slotStart uint64
	lastRet   uint64 // cycle at which GetTask last returned
	idle      uint64 // cycles spent blocked in GetTask with nothing runnable
	blocked   bool
	done      bool
}

// Fabric ties the shells of an Eclipse instance together: the shared
// stream memory, buffer allocation, the putspace message network, and
// completion/deadlock tracking.
//
// The fabric supports the two communication-memory organizations of the
// paper's Section 6 tradeoff: the default *centralized* organization
// allocates every stream buffer in the shared SRAM (flexible run-time
// allocation, but all traffic contends on one pair of buses), while the
// *distributed* organization (EnableDistributed) gives every stream its
// own dedicated memory bank (no cross-stream contention, but fixed
// per-stream capacity committed at design time).
type Fabric struct {
	K    *sim.Kernel
	SRAM *mem.Memory

	shells   []*Shell
	alloc    uint32
	total    int // tasks registered
	finished int // tasks finished

	inflightMsgs int // scheduled putspace deliveries + pending flushes

	msgPool        []*psMsg // recycled putspace messages (async.go)
	checkStalledFn func()   // pre-bound checkStalled, avoids method-value allocs

	distributed bool
	bankCfg     mem.Config
	regions     []region // address-space map: which memory serves an address
}

// region maps an address range to the memory bank serving it.
type region struct {
	base, size uint32
	m          *mem.Memory
}

// NewFabric creates an empty fabric over the given kernel and stream
// memory.
func NewFabric(k *sim.Kernel, sram *mem.Memory) *Fabric {
	f := &Fabric{K: k, SRAM: sram}
	f.checkStalledFn = f.checkStalled
	return f
}

// EnableDistributed switches the fabric to distributed stream memories:
// every subsequently connected stream gets a dedicated bank derived from
// bankCfg (Width defaulting to the central SRAM's). Must be called before
// any Connect.
func (f *Fabric) EnableDistributed(bankCfg mem.Config) {
	if len(f.regions) > 0 || f.alloc > 0 {
		panic("shell: EnableDistributed after streams were connected")
	}
	if bankCfg.Width == 0 {
		bankCfg.Width = f.SRAM.Width()
	}
	f.distributed = true
	f.bankCfg = bankCfg
}

// MemFor returns the memory bank serving an absolute stream address.
func (f *Fabric) MemFor(addr uint32) *mem.Memory {
	if !f.distributed {
		return f.SRAM
	}
	for i := range f.regions {
		r := &f.regions[i]
		if addr >= r.base && addr < r.base+r.size {
			return r.m
		}
	}
	panic(fmt.Sprintf("shell: address %d outside every stream bank", addr))
}

// NewShell instantiates a shell from the template configuration.
func (f *Fabric) NewShell(cfg Config) *Shell {
	if cfg.LineBytes == 0 {
		cfg.LineBytes = f.SRAM.Width()
	}
	if cfg.ReadCacheLines <= 0 || cfg.WriteCacheLines <= 0 {
		panic("shell: cache must have at least one line")
	}
	sh := &Shell{
		cfg:      cfg,
		k:        f.K,
		fab:      f,
		rcache:   newCache(cfg.ReadCacheLines, cfg.LineBytes, false),
		wcache:   newCache(cfg.WriteCacheLines, cfg.LineBytes, true),
		inflight: newInflightSet(),
		pool:     newBufPool(cfg.LineBytes),
		wake:     f.K.NewSignal(cfg.Name + ".wake"),
		current:  NoTask,
	}
	sh.issueFlushFn = sh.issueFlush
	f.shells = append(f.shells, sh)
	return sh
}

// Alloc reserves size bytes of stream address space, aligned to cache
// lines so no two buffers ever share a line (which keeps the sync-driven
// coherency free of false sharing). In the centralized organization it
// fails when the on-chip memory is exhausted — the architectural
// constraint that forces small buffers and fine-grained synchronization
// (Section 2.2). In the distributed organization a dedicated bank is
// created per allocation and capacity is bounded only by design-time
// instantiation.
func (f *Fabric) Alloc(size uint32) (uint32, error) {
	line := uint32(f.SRAM.Width())
	base := (f.alloc + line - 1) / line * line
	if f.distributed {
		cfg := f.bankCfg
		cfg.Name = fmt.Sprintf("bank%d", len(f.regions))
		// Banks share the fabric's single address space so cache tags
		// stay unambiguous; each bank's storage covers its own region.
		cfg.Size = int(base) + int(size)
		f.regions = append(f.regions, region{base: base, size: size, m: mem.New(f.K, cfg)})
		f.alloc = base + size
		return base, nil
	}
	if int(base)+int(size) > f.SRAM.Size() {
		return 0, fmt.Errorf("shell: stream memory exhausted: need %d at %d of %d",
			size, base, f.SRAM.Size())
	}
	f.alloc = base + size
	return base, nil
}

// Name returns the shell's configured name.
func (sh *Shell) Name() string { return sh.cfg.Name }

// Config returns the shell's parameters.
func (sh *Shell) Config() Config { return sh.cfg }

// AddTask appends a task to the shell's task table and returns its id.
// budget is the weighted-round-robin budget in cycles (Section 5.3).
func (sh *Shell) AddTask(name string, info uint32, budget uint64) int {
	if budget == 0 {
		budget = 2000
	}
	sh.tsks = append(sh.tsks, &taskRow{name: name, info: info, budget: budget, enabled: true})
	sh.fab.total++
	return len(sh.tsks) - 1
}

// Endpoint identifies one side of a stream during configuration.
type Endpoint struct {
	Shell *Shell
	Task  int
	Port  int
}

// Connect allocates a stream buffer of the given size and wires a
// producer access point to one or more consumer access points, creating
// the stream-table rows in the owning shells. Port ids must be dense and
// registered in order: a task's port p must be connected before port p+1.
func (f *Fabric) Connect(prod Endpoint, cons []Endpoint, size uint32) error {
	if size == 0 {
		return fmt.Errorf("shell: zero stream buffer")
	}
	if len(cons) == 0 {
		return fmt.Errorf("shell: stream without consumers")
	}
	base, err := f.Alloc(size)
	if err != nil {
		return err
	}
	pRow := prod.Shell.addRow(prod.Task, prod.Port, false, base, size, len(cons))
	for i := range pRow.credit {
		pRow.credit[i] = size // an empty buffer is all room for the producer
	}
	for i, c := range cons {
		cRow := c.Shell.addRow(c.Task, c.Port, true, base, size, 1)
		// Consumer's remote is the producer (credit slot i on that side);
		// producer's remote i is this consumer (its only slot).
		cRow.remotes = []remoteRef{{sh: prod.Shell, row: prod.Shell.rowIndex(pRow), slot: i}}
		pRow.remotes = append(pRow.remotes, remoteRef{sh: c.Shell, row: c.Shell.rowIndex(cRow), slot: 0})
	}
	return nil
}

// addRow appends a stream-table row and records it in the task table.
// Ports may be connected in any order; unconnected ports hold -1 and any
// use of one fails loudly.
func (sh *Shell) addRow(task, port int, input bool, base, size uint32, slots int) *streamRow {
	r := &streamRow{
		task: task, port: port, input: input,
		base: base, size: size,
		credit: make([]uint32, slots),
	}
	sh.rows = append(sh.rows, r)
	t := sh.tsks[task]
	for port >= len(t.rows) {
		t.rows = append(t.rows, -1)
	}
	if t.rows[port] != -1 {
		panic(fmt.Sprintf("shell %s: task %d port %d connected twice", sh.cfg.Name, task, port))
	}
	t.rows[port] = len(sh.rows) - 1
	return r
}

func (sh *Shell) rowIndex(r *streamRow) int {
	for i, x := range sh.rows {
		if x == r {
			return i
		}
	}
	panic("shell: row not found")
}

// row resolves a (task, port) pair, failing the simulation on misuse —
// the coprocessor is responsible for passing valid identifiers.
func (sh *Shell) row(task, port int) *streamRow {
	if task < 0 || task >= len(sh.tsks) {
		panic(fmt.Sprintf("shell %s: bad task id %d", sh.cfg.Name, task))
	}
	t := sh.tsks[task]
	if port < 0 || port >= len(t.rows) || t.rows[port] == -1 {
		panic(fmt.Sprintf("shell %s: task %s: bad or unconnected port id %d", sh.cfg.Name, t.name, port))
	}
	return sh.rows[t.rows[port]]
}

// TaskName returns the configured name of a task.
func (sh *Shell) TaskName(task int) string { return sh.tsks[task].name }

// TaskStats returns a snapshot of a task's measurement counters.
func (sh *Shell) TaskStats(task int) TaskStats { return sh.tsks[task].stats }

// StreamStats returns a snapshot of an access point's counters.
func (sh *Shell) StreamStats(task, port int) StreamStats { return sh.row(task, port).stats }

// Space returns the current effective space value of an access point:
// available data for an input port, available room for an output port.
// It is the quantity the paper's Figure 10 plots for input streams.
func (sh *Shell) Space(task, port int) uint32 { return sh.row(task, port).effSpace() }

// BufSize returns the stream buffer size behind an access point.
func (sh *Shell) BufSize(task, port int) uint32 { return sh.row(task, port).size }

// ReadCacheStats returns the read cache counters.
func (sh *Shell) ReadCacheStats() CacheStats { return sh.rcache.stats() }

// WriteCacheStats returns the write cache counters.
func (sh *Shell) WriteCacheStats() CacheStats { return sh.wcache.stats() }

// PoolStats returns the scratch-buffer pool counters of the transport
// layer (how often line moves recycled a buffer vs. allocated one).
func (sh *Shell) PoolStats() PoolStats { return sh.pool.stats() }

// InflightFetches returns the number of line fetches currently pending.
func (sh *Shell) InflightFetches() int { return sh.inflight.Len() }

// TransportStats are the asynchronous data-transport counters of a shell:
// how the prefetch engine, the demand-miss path, and the scratch-buffer
// pool interacted over the run.
type TransportStats struct {
	PrefetchesIssued    uint64 // asynchronous line fetches booked
	PrefetchesDropped   uint64 // completions cancelled/superseded before merge
	DemandWhileInflight uint64 // demand misses that overlapped a pending prefetch
	Pool                PoolStats
}

// TransportStats returns a snapshot of the transport counters.
func (sh *Shell) TransportStats() TransportStats {
	return TransportStats{
		PrefetchesIssued:    sh.prefIssued,
		PrefetchesDropped:   sh.prefDropped,
		DemandWhileInflight: sh.demandOverl,
		Pool:                sh.pool.stats(),
	}
}

// IdleCycles returns cycles the coprocessor spent with no runnable task.
func (sh *Shell) IdleCycles() uint64 { return sh.idle }

// Utilization returns the busy fraction of the coprocessor so far.
func (sh *Shell) Utilization() float64 {
	now := sh.k.Now()
	if now == 0 {
		return 0
	}
	return 1 - float64(sh.idle)/float64(now)
}

// Paranoid enables an expensive debugging check that compares every Read
// against the memory content and panics on stale cache data. Tests use it
// to pin coherency bugs to their first occurrence.
var Paranoid bool
