package shell

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"eclipse/internal/mem"
	"eclipse/internal/sim"
)

// TestRandomizedConfigurationsPreserveData drives the producer/consumer
// rig across randomized shell, buffer, and chunk configurations and
// checks end-to-end byte integrity plus the final space-accounting
// invariants. This is the shell's main property test: no combination of
// cache geometry, prefetching, latencies, or transfer sizes may ever
// corrupt stream contents or leak space.
func TestRandomizedConfigurationsPreserveData(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		bufSize := uint32(32 << rng.Intn(5)) // 32..512
		// Chunk sizes within half the buffer guarantee progress: larger
		// combinations can deadlock legitimately (producer needs more
		// room than the consumer can free at once — the Section 2.2
		// buffer-sizing hazard, tested separately).
		pChunk := 1 + rng.Intn(int(bufSize)/2)
		cChunk := 1 + rng.Intn(int(bufSize)/2)
		total := 500 + rng.Intn(3000)

		pCfg := DefaultConfig("p")
		cCfg := DefaultConfig("c")
		for _, cfg := range []*Config{&pCfg, &cCfg} {
			cfg.ReadCacheLines = 1 << rng.Intn(6)
			cfg.WriteCacheLines = 1 << rng.Intn(6)
			cfg.PrefetchDepth = rng.Intn(5)
			cfg.MsgLatency = uint64(rng.Intn(10))
			cfg.AccessCycles = uint64(rng.Intn(3))
			cfg.GetSpaceCycles = uint64(rng.Intn(3))
			cfg.PutSpaceCycles = uint64(rng.Intn(3))
		}
		desc := fmt.Sprintf("trial %d: buf=%d p=%d c=%d total=%d pCfg=%+v cCfg=%+v",
			trial, bufSize, pChunk, cChunk, total, pCfg, cCfg)

		k := sim.NewKernel()
		f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
		pSh := f.NewShell(pCfg)
		cSh := f.NewShell(cCfg)
		pT := pSh.AddTask("prod", 0, 0)
		cT := cSh.AddTask("cons", 0, 0)
		if err := f.Connect(Endpoint{pSh, pT, 0}, []Endpoint{{cSh, cT, 0}}, bufSize); err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		var got bytes.Buffer
		k.NewProc("prod", 0, func(p *sim.Proc) {
			pSh.Bind(p)
			sent := 0
			for sent < total {
				task, _, ok := pSh.GetTask()
				if !ok {
					return
				}
				n := pChunk
				if sent+n > total {
					n = total - sent
				}
				if !pSh.GetSpace(task, 0, uint32(n)) {
					continue
				}
				data := make([]byte, n)
				for i := range data {
					data[i] = byte((sent + i) * 13)
				}
				pSh.Write(task, 0, 0, data)
				pSh.PutSpace(task, 0, uint32(n))
				sent += n
			}
			pSh.TaskDone(pT)
			pSh.GetTask()
		})
		k.NewProc("cons", 0, func(p *sim.Proc) {
			cSh.Bind(p)
			rcv := 0
			for rcv < total {
				task, _, ok := cSh.GetTask()
				if !ok {
					return
				}
				n := cChunk
				if rcv+n > total {
					n = total - rcv
				}
				if !cSh.GetSpace(task, 0, uint32(n)) {
					continue
				}
				buf := make([]byte, n)
				cSh.Read(task, 0, 0, buf)
				cSh.PutSpace(task, 0, uint32(n))
				got.Write(buf)
				rcv += n
			}
			cSh.TaskDone(cT)
			cSh.GetTask()
		})
		if err := k.Run(100_000_000); err != nil {
			t.Fatalf("%s: %v", desc, err)
		}
		if got.Len() != total {
			t.Fatalf("%s: moved %d bytes", desc, got.Len())
		}
		for i, b := range got.Bytes() {
			if b != byte(i*13) {
				t.Fatalf("%s: byte %d corrupted", desc, i)
			}
		}
		// Space accounting at the end: the consumer has consumed every
		// delivered byte (its space is 0); the producer's space never
		// exceeds the buffer and accounts for putspace messages that were
		// still in flight when the simulation stopped.
		if s := cSh.Space(cT, 0); s != 0 {
			t.Fatalf("%s: consumer final space %d, want 0", desc, s)
		}
		if s := pSh.Space(pT, 0); s > bufSize {
			t.Fatalf("%s: producer final space %d exceeds buffer %d", desc, s, bufSize)
		}
		// Conservation: bytes committed on both sides match.
		ps, cs := pSh.StreamStats(pT, 0), cSh.StreamStats(cT, 0)
		if ps.BytesCommitted != uint64(total) || cs.BytesCommitted != uint64(total) {
			t.Fatalf("%s: committed %d/%d", desc, ps.BytesCommitted, cs.BytesCommitted)
		}
	}
}

// TestPartialLineValidityAcrossWrapAround pins the bitmask merge /
// invalidateRange edge cases at the circular-buffer seam. With a buffer
// size that is NOT a multiple of the cache-line size, the window regularly
// wraps mid-line: a granted window then intersects a line in two separate
// byte ranges across iterations, so merges must extend per-byte validity
// without resetting it, GetSpace invalidations must clear only the
// overlapped bytes, and odd-sized commits keep every span misaligned with
// the mask words. Line sizes above 64 bytes additionally force the
// multi-word (straddling) paths of the packed masks. Paranoid compares
// every Read against ground truth, so any validity-tracking slip is fatal.
func TestPartialLineValidityAcrossWrapAround(t *testing.T) {
	old := Paranoid
	Paranoid = true
	defer func() { Paranoid = old }()

	cases := []struct {
		bufSize        uint32
		lineBytes      int
		pChunk, cChunk int
	}{
		{uint32(80), 32, 13, 7},    // buffer = 2.5 lines, odd chunks
		{uint32(176), 64, 23, 11},  // buffer = 2.75 lines
		{uint32(200), 128, 31, 17}, // multi-word masks (128 B = 2 words)
		{uint32(96), 64, 5, 3},     // tiny odd chunks, 1.5-line buffer
	}
	for _, tc := range cases {
		name := fmt.Sprintf("buf=%d/line=%d/p=%d/c=%d", tc.bufSize, tc.lineBytes, tc.pChunk, tc.cChunk)
		if tc.bufSize%uint32(tc.lineBytes) == 0 {
			t.Fatalf("%s: case must not be line-aligned", name)
		}
		pCfg, cCfg := DefaultConfig("p"), DefaultConfig("c")
		for _, cfg := range []*Config{&pCfg, &cCfg} {
			cfg.LineBytes = tc.lineBytes
			cfg.ReadCacheLines = 4
			cfg.WriteCacheLines = 4
			cfg.PrefetchDepth = 2
		}
		k := sim.NewKernel()
		f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
		pSh := f.NewShell(pCfg)
		cSh := f.NewShell(cCfg)
		pT := pSh.AddTask("prod", 0, 0)
		cT := cSh.AddTask("cons", 0, 0)
		if err := f.Connect(Endpoint{pSh, pT, 0}, []Endpoint{{cSh, cT, 0}}, tc.bufSize); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Enough traffic for many full trips around the buffer.
		total := int(tc.bufSize) * 20
		var got bytes.Buffer
		k.NewProc("prod", 0, func(p *sim.Proc) {
			pSh.Bind(p)
			sent := 0
			for sent < total {
				task, _, ok := pSh.GetTask()
				if !ok {
					return
				}
				n := tc.pChunk
				if sent+n > total {
					n = total - sent
				}
				if !pSh.GetSpace(task, 0, uint32(n)) {
					continue
				}
				data := make([]byte, n)
				for i := range data {
					data[i] = byte((sent + i) * 131)
				}
				pSh.Write(task, 0, 0, data)
				pSh.PutSpace(task, 0, uint32(n))
				sent += n
			}
			pSh.TaskDone(pT)
			pSh.GetTask()
		})
		k.NewProc("cons", 0, func(p *sim.Proc) {
			cSh.Bind(p)
			rcv := 0
			for rcv < total {
				task, _, ok := cSh.GetTask()
				if !ok {
					return
				}
				n := tc.cChunk
				if rcv+n > total {
					n = total - rcv
				}
				if !cSh.GetSpace(task, 0, uint32(n)) {
					continue
				}
				buf := make([]byte, n)
				cSh.Read(task, 0, 0, buf)
				cSh.PutSpace(task, 0, uint32(n))
				got.Write(buf)
				rcv += n
			}
			cSh.TaskDone(cT)
			cSh.GetTask()
		})
		if err := k.Run(100_000_000); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Len() != total {
			t.Fatalf("%s: moved %d of %d bytes", name, got.Len(), total)
		}
		for i, b := range got.Bytes() {
			if b != byte(i*131) {
				t.Fatalf("%s: byte %d corrupted (got %#x want %#x)", name, i, b, byte(i*131))
			}
		}
		if out := cSh.TransportStats().Pool.Outstanding; out != 0 {
			t.Fatalf("%s: leaked %d scratch buffers", name, out)
		}
	}
}

// TestSelfLoopStream checks a task consuming its own output (a legal,
// if unusual, Kahn topology) through one shell.
func TestSelfLoopStream(t *testing.T) {
	k := sim.NewKernel()
	f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	sh := f.NewShell(DefaultConfig("loop"))
	task := sh.AddTask("t", 0, 0)
	if err := f.Connect(Endpoint{sh, task, 0}, []Endpoint{{sh, task, 1}}, 64); err != nil {
		t.Fatal(err)
	}
	var seen []byte
	k.NewProc("loop", 0, func(p *sim.Proc) {
		sh.Bind(p)
		// Seed the loop, then circulate an incrementing token 10 times.
		tk, _, _ := sh.GetTask()
		if !sh.GetSpace(tk, 0, 1) {
			t.Error("seed write denied")
			return
		}
		sh.Write(tk, 0, 0, []byte{1})
		sh.PutSpace(tk, 0, 1)
		for i := 0; i < 10; i++ {
			tk, _, _ = sh.GetTask()
			if !sh.GetSpace(tk, 1, 1) {
				continue
			}
			var b [1]byte
			sh.Read(tk, 1, 0, b[:])
			sh.PutSpace(tk, 1, 1)
			seen = append(seen, b[0])
			for !sh.GetSpace(tk, 0, 1) {
				tk, _, _ = sh.GetTask()
			}
			sh.Write(tk, 0, 0, []byte{b[0] + 1})
			sh.PutSpace(tk, 0, 1)
		}
		sh.TaskDone(task)
		sh.GetTask()
	})
	if err := k.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	for i, b := range seen {
		if b != byte(i+1) {
			t.Fatalf("token %d = %d", i, b)
		}
	}
}

// TestBudgetIsRespectedUnderContention checks the weighted-round-robin
// guarantee: with two always-runnable tasks, each occupies the
// coprocessor for about its budget before switching.
func TestBudgetIsRespectedUnderContention(t *testing.T) {
	k := sim.NewKernel()
	f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	workSh := f.NewShell(DefaultConfig("w"))
	sinkSh := f.NewShell(DefaultConfig("s"))
	// Two producer tasks on one coprocessor, one consumer task each on
	// another, with roomy buffers so both stay runnable.
	tA := workSh.AddTask("a", 0, 1000)
	tB := workSh.AddTask("b", 0, 4000)
	cA := sinkSh.AddTask("ca", 0, 0)
	cB := sinkSh.AddTask("cb", 0, 0)
	if err := f.Connect(Endpoint{workSh, tA, 0}, []Endpoint{{sinkSh, cA, 0}}, 4096); err != nil {
		t.Fatal(err)
	}
	if err := f.Connect(Endpoint{workSh, tB, 0}, []Endpoint{{sinkSh, cB, 0}}, 4096); err != nil {
		t.Fatal(err)
	}
	const steps = 200
	var runsA, runsB int
	k.NewProc("w", 0, func(p *sim.Proc) {
		workSh.Bind(p)
		done := map[int]int{}
		for done[tA] < steps || done[tB] < steps {
			task, _, ok := workSh.GetTask()
			if !ok {
				return
			}
			if done[task] >= steps {
				// Finished its quota: just mark done once.
				workSh.TaskDone(task)
				continue
			}
			if !workSh.GetSpace(task, 0, 16) {
				continue
			}
			workSh.Compute(50)
			workSh.Write(task, 0, 0, make([]byte, 16))
			workSh.PutSpace(task, 0, 16)
			done[task]++
			if task == tA {
				runsA++
			} else {
				runsB++
			}
			if done[tA] == steps && task == tA {
				workSh.TaskDone(tA)
			}
			if done[tB] == steps && task == tB {
				workSh.TaskDone(tB)
			}
		}
	})
	k.NewProc("s", 0, func(p *sim.Proc) {
		sinkSh.Bind(p)
		got := map[int]int{}
		for got[cA] < steps*16 || got[cB] < steps*16 {
			task, _, ok := sinkSh.GetTask()
			if !ok {
				return
			}
			if !sinkSh.GetSpace(task, 0, 16) {
				continue
			}
			buf := make([]byte, 16)
			sinkSh.Read(task, 0, 0, buf)
			sinkSh.PutSpace(task, 0, 16)
			got[task] += 16
			if got[cA] == steps*16 && task == cA {
				sinkSh.TaskDone(cA)
			}
			if got[cB] == steps*16 && task == cB {
				sinkSh.TaskDone(cB)
			}
		}
	})
	if err := k.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	// With budgets 1000 vs 4000 and ~60-cycle steps, task B should get
	// roughly 4x longer slots; both ran all their steps, so switch counts
	// differ: A switches about 4x as often per executed step.
	stA, stB := workSh.TaskStats(tA), workSh.TaskStats(tB)
	if stA.Switches == 0 || stB.Switches == 0 {
		t.Fatalf("no switching: %+v %+v", stA, stB)
	}
	if stA.Switches < stB.Switches {
		t.Fatalf("small-budget task switched less: %d vs %d", stA.Switches, stB.Switches)
	}
}

// TestIncommensurateChunksDeadlockDetected pins the genuine buffer-sizing
// deadlock of Section 2.2: a producer writing 47-byte units and a
// consumer reading 24-byte units cannot always make progress through a
// 64-byte buffer (after one write and one read, 23 bytes remain: too few
// to read, too little room to write). The fabric must detect the stall
// rather than hang.
func TestIncommensurateChunksDeadlockDetected(t *testing.T) {
	k := sim.NewKernel()
	f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	pSh := f.NewShell(DefaultConfig("p"))
	cSh := f.NewShell(DefaultConfig("c"))
	pT := pSh.AddTask("prod", 0, 0)
	cT := cSh.AddTask("cons", 0, 0)
	if err := f.Connect(Endpoint{pSh, pT, 0}, []Endpoint{{cSh, cT, 0}}, 64); err != nil {
		t.Fatal(err)
	}
	k.NewProc("prod", 0, func(p *sim.Proc) {
		pSh.Bind(p)
		for sent := 0; sent < 470; {
			task, _, ok := pSh.GetTask()
			if !ok {
				return
			}
			if !pSh.GetSpace(task, 0, 47) {
				continue
			}
			pSh.Write(task, 0, 0, make([]byte, 47))
			pSh.PutSpace(task, 0, 47)
			sent += 47
		}
		pSh.TaskDone(pT)
		pSh.GetTask()
	})
	k.NewProc("cons", 0, func(p *sim.Proc) {
		cSh.Bind(p)
		for rcv := 0; rcv < 470; {
			task, _, ok := cSh.GetTask()
			if !ok {
				return
			}
			if !cSh.GetSpace(task, 0, 24) {
				continue
			}
			buf := make([]byte, 24)
			cSh.Read(task, 0, 0, buf)
			cSh.PutSpace(task, 0, 24)
			rcv += 24
		}
		cSh.TaskDone(cT)
		cSh.GetTask()
	})
	err := k.Run(10_000_000)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v, want application deadlock", err)
	}
}

func TestStepHistogramRecords(t *testing.T) {
	st := TaskStats{}
	st.StepHist[stepBucket(1)]++   // bucket 0
	st.StepHist[stepBucket(100)]++ // ~bucket 6
	st.StepHist[stepBucket(1<<20)]++
	if stepBucket(1) != 0 || stepBucket(3) != 1 || stepBucket(100) != 6 {
		t.Fatalf("buckets: %d %d %d", stepBucket(1), stepBucket(3), stepBucket(100))
	}
	if stepBucket(1<<20) != StepHistBuckets-1 {
		t.Fatal("overflow bucket")
	}
	if p := st.StepPercentile(0.5); p != 128 {
		t.Fatalf("p50 = %d", p)
	}
	empty := TaskStats{}
	if empty.StepPercentile(0.5) != 0 {
		t.Fatal("empty percentile")
	}
}
