package shell

import (
	"math/rand"
	"testing"
)

// TestMaskOpsMatchBoolModel cross-checks every packed-bitmask operation
// against a straightforward []bool reference model over randomized
// ranges, including multi-word lines (up to 192 bytes = 3 words) and the
// word-boundary edges (lo/hi at 0, 63, 64, 65, 127, 128).
func TestMaskOpsMatchBoolModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, nbits := range []int{1, 7, 16, 63, 64, 65, 100, 128, 129, 192} {
		mask := make([]uint64, maskWordsFor(nbits))
		model := make([]bool, nbits)
		randRange := func() (uint32, uint32) {
			a := uint32(rng.Intn(nbits + 1))
			b := uint32(rng.Intn(nbits + 1))
			if a > b {
				a, b = b, a
			}
			return a, b
		}
		for step := 0; step < 2000; step++ {
			lo, hi := randRange()
			switch rng.Intn(3) {
			case 0:
				maskSetRange(mask, lo, hi)
				for i := lo; i < hi; i++ {
					model[i] = true
				}
			case 1:
				maskClearRange(mask, lo, hi)
				for i := lo; i < hi; i++ {
					model[i] = false
				}
			case 2:
				got := maskCoversRange(mask, lo, hi)
				want := true
				for i := lo; i < hi; i++ {
					if !model[i] {
						want = false
						break
					}
				}
				if got != want {
					t.Fatalf("nbits=%d step=%d covers[%d,%d) = %v, model %v (mask %x)",
						nbits, step, lo, hi, got, want, mask)
				}
			}
			// Invariants checked every step.
			anyWant := false
			for _, v := range model {
				if v {
					anyWant = true
					break
				}
			}
			if got := maskAny(mask); got != anyWant {
				t.Fatalf("nbits=%d step=%d any = %v, model %v", nbits, step, got, anyWant)
			}
			elo, ehi, eok := maskExtent(mask)
			wlo, whi, wok := uint32(0), uint32(0), false
			for i, v := range model {
				if v {
					if !wok {
						wlo = uint32(i)
						wok = true
					}
					whi = uint32(i) + 1
				}
			}
			if eok != wok || elo != wlo || ehi != whi {
				t.Fatalf("nbits=%d step=%d extent = (%d,%d,%v), model (%d,%d,%v)",
					nbits, step, elo, ehi, eok, wlo, whi, wok)
			}
			// High bits beyond nbits must never be set.
			if top := nbits % 64; top != 0 {
				if mask[len(mask)-1]&^(uint64(1)<<top-1) != 0 {
					t.Fatalf("nbits=%d step=%d: bits set beyond line end: %x", nbits, step, mask)
				}
			}
		}
	}
}

// TestMaskWordBoundaryEdges pins the exact word-straddling edge cases of
// the packed-range helpers.
func TestMaskWordBoundaryEdges(t *testing.T) {
	mask := make([]uint64, 2)
	maskSetRange(mask, 60, 68) // straddles the word boundary
	if mask[0] != 0xF000000000000000 || mask[1] != 0xF {
		t.Fatalf("straddle set: %x", mask)
	}
	if !maskCoversRange(mask, 60, 68) || maskCoversRange(mask, 59, 68) || maskCoversRange(mask, 60, 69) {
		t.Fatal("straddle covers")
	}
	if lo, hi, ok := maskExtent(mask); !ok || lo != 60 || hi != 68 {
		t.Fatalf("straddle extent %d %d %v", lo, hi, ok)
	}
	maskClearRange(mask, 63, 65)
	if mask[0] != 0x7000000000000000 || mask[1] != 0xE {
		t.Fatalf("straddle clear: %x", mask)
	}
	maskSetRange(mask, 0, 128)
	if mask[0] != ^uint64(0) || mask[1] != ^uint64(0) {
		t.Fatalf("full set: %x", mask)
	}
	if !maskCoversRange(mask, 0, 128) {
		t.Fatal("full covers")
	}
	maskClearRange(mask, 0, 128)
	if maskAny(mask) {
		t.Fatalf("full clear: %x", mask)
	}
	if !maskCoversRange(mask, 5, 5) {
		t.Fatal("empty range must cover")
	}
}

// TestInflightSetMatchesMapModel drives the open-addressed in-flight set
// against a map reference through random add/remove/lookup mixes, forcing
// growth and the backward-shift deletion paths.
func TestInflightSetMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := newInflightSet()
	model := map[uint32]uint32{}
	// Line addresses: aligned multiples of 16, a small range to force
	// collisions and long probe chains.
	addrOf := func() uint32 { return uint32(rng.Intn(64)) * 16 }
	for step := 0; step < 20000; step++ {
		a := addrOf()
		switch rng.Intn(4) {
		case 0, 1:
			tok := s.add(a)
			model[a] = tok
		case 2:
			s.remove(a)
			delete(model, a)
		case 3:
			if got := s.contains(a); got != (model[a] != 0) {
				_, ok := model[a]
				if got != ok {
					t.Fatalf("step %d: contains(%d) = %v, model %v", step, a, got, ok)
				}
			}
			if tok, ok := model[a]; ok {
				if !s.matches(a, tok) {
					t.Fatalf("step %d: matches(%d, %d) = false", step, a, tok)
				}
				if s.matches(a, tok+1) {
					t.Fatalf("step %d: stale token matched", step)
				}
			}
		}
		if s.Len() != len(model) {
			t.Fatalf("step %d: len %d, model %d", step, s.Len(), len(model))
		}
	}
	// Drain and verify emptiness.
	for a := range model {
		s.remove(a)
	}
	if s.Len() != 0 {
		t.Fatalf("drained len %d", s.Len())
	}
	for a := uint32(0); a < 64*16; a += 16 {
		if s.contains(a) {
			t.Fatalf("ghost entry %d after drain", a)
		}
	}
}

// TestInflightSetReAddBumpsGeneration pins the aliasing defense: re-
// registering an address must invalidate the token handed to the earlier
// fetch, so its completion cannot merge.
func TestInflightSetReAddBumpsGeneration(t *testing.T) {
	s := newInflightSet()
	t1 := s.add(256)
	t2 := s.add(256)
	if t1 == t2 {
		t.Fatal("re-add did not change generation")
	}
	if s.matches(256, t1) {
		t.Fatal("stale generation still matches")
	}
	if !s.matches(256, t2) {
		t.Fatal("current generation must match")
	}
	if s.Len() != 1 {
		t.Fatalf("len %d after re-add", s.Len())
	}
}

// TestBufPoolRecycles checks the free-list behavior and statistics of the
// scratch-buffer pool.
func TestBufPoolRecycles(t *testing.T) {
	bp := newBufPool(64)
	a := bp.get(64)
	b := bp.get(16)
	if len(a) != 64 || len(b) != 16 || cap(b) != 64 {
		t.Fatalf("sizes: %d/%d cap %d", len(a), len(b), cap(b))
	}
	bp.put(a)
	c := bp.get(32)
	if &c[0] != &a[0] {
		t.Fatal("pool did not recycle the freed buffer")
	}
	bp.put(b)
	bp.put(c)
	st := bp.stats()
	if st.Gets != 3 || st.Allocations != 2 || st.Outstanding != 0 || st.Peak != 2 {
		t.Fatalf("stats %+v", st)
	}
	// Oversized one-offs are served but not pooled.
	big := bp.get(1000)
	if len(big) != 1000 {
		t.Fatal("oversized get")
	}
	bp.put(big)
	if len(bp.free) != 2 {
		t.Fatalf("oversized buffer was pooled (%d)", len(bp.free))
	}
}

// TestCacheMergePartialLineValidity exercises the sector-validity rules
// directly on a cache: merges bounded to window intersections, partial
// invalidation, and the line dropping only when its last valid byte goes.
func TestCacheMergePartialLineValidity(t *testing.T) {
	c := newCache(4, 16, false)
	data := make([]byte, 16)
	for i := range data {
		data[i] = byte(i)
	}
	ln := c.merge(32, data, 4, 12)
	if ln.covers(4, 12) != true || ln.covers(3, 12) || ln.covers(4, 13) {
		t.Fatal("window-bounded validity wrong")
	}
	// A second merge of the same line extends validity without resetting.
	c.merge(32, data, 0, 4)
	if !ln.covers(0, 12) || ln.covers(0, 13) {
		t.Fatal("merge extension wrong")
	}
	// Partial invalidation keeps the line while any byte stays valid.
	c.invalidateRange(32, 36)
	if ln.covers(0, 4) || !ln.covers(4, 12) || !ln.valid {
		t.Fatal("partial invalidation wrong")
	}
	c.invalidateRange(36, 48)
	if ln.valid {
		t.Fatal("line must drop when its last valid byte is invalidated")
	}
}
