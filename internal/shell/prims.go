package shell

import (
	"fmt"

	"eclipse/internal/sim"
)

// This file implements the five task-level interface primitives (paper
// Section 3.2) and the shell-side machinery behind them: the distributed
// GetSpace/PutSpace synchronization with putspace messages (Section 5.1),
// cached data transport with sync-driven coherency and prefetching
// (Section 5.2), and the weighted round-robin "best guess" task scheduler
// (Section 5.3). All primitives must be called from the bound coprocessor
// process; they consume simulated time on that process.

// Bind attaches the coprocessor process that will issue the primitives.
func (sh *Shell) Bind(p *sim.Proc) { sh.proc = p }

// Proc returns the bound coprocessor process.
func (sh *Shell) Proc() *sim.Proc { return sh.proc }

// Compute charges function-specific computation time to the coprocessor —
// the stand-in for the hardwired datapath doing actual work.
func (sh *Shell) Compute(cycles uint64) {
	if cycles > 0 {
		sh.proc.Delay(cycles)
	}
}

// Now returns the current cycle.
func (sh *Shell) Now() uint64 { return sh.k.Now() }

// ---------------------------------------------------------------------
// Task scheduling (GetTask)

// runnable applies the scheduler's "best guess" (Section 5.3): a task is
// worth dispatching unless its most recent GetSpace denial still cannot
// be satisfied with the locally known space values.
func (sh *Shell) runnable(task int) bool {
	t := sh.tsks[task]
	if !t.enabled || t.finished {
		return false
	}
	if sh.cfg.NaiveScheduler {
		return true
	}
	for _, ri := range t.rows {
		if ri == -1 {
			continue
		}
		r := sh.rows[ri]
		if r.deniedActive && r.effSpace() < r.denied {
			return false
		}
	}
	return true
}

// GetTask returns the next task the coprocessor should execute, blocking
// while no task is runnable. ok is false once every task mapped on this
// coprocessor has finished, upon which the coprocessor process should
// terminate. The scheduler is weighted round-robin: the current task
// keeps the coprocessor while it is runnable and within its cycle budget;
// otherwise the scan resumes after the current task.
func (sh *Shell) GetTask() (task int, info uint32, ok bool) {
	now := sh.k.Now()
	if sh.current != NoTask {
		t := sh.tsks[sh.current]
		t.stats.RunCycles += now - sh.lastRet
		t.stats.StepHist[stepBucket(now-sh.lastRet)]++
	}
	sh.proc.Delay(sh.cfg.GetTaskCycles)

	for {
		if sh.allFinished() {
			sh.done = true
			sh.current = NoTask
			return NoTask, 0, false
		}
		// Current task continues while runnable and within budget.
		if sh.current != NoTask && sh.runnable(sh.current) {
			t := sh.tsks[sh.current]
			if sh.k.Now()-sh.slotStart < t.budget || !sh.anyOtherRunnable(sh.current) {
				if sh.k.Now()-sh.slotStart >= t.budget {
					sh.slotStart = sh.k.Now() // work-conserving budget refresh
				}
				t.stats.Steps++
				sh.lastRet = sh.k.Now()
				return sh.current, t.info, true
			}
		}
		// Round-robin scan for the next runnable task.
		n := len(sh.tsks)
		start := sh.current + 1
		if sh.current == NoTask {
			start = 0
		}
		picked := NoTask
		for i := 0; i < n; i++ {
			cand := (start + i) % n
			if sh.runnable(cand) {
				picked = cand
				break
			}
		}
		if picked != NoTask {
			if picked != sh.current {
				sh.proc.Delay(sh.cfg.SwitchCycles)
				sh.tsks[picked].stats.Switches++
			}
			sh.current = picked
			sh.slotStart = sh.k.Now()
			t := sh.tsks[picked]
			t.stats.Steps++
			sh.lastRet = sh.k.Now()
			return picked, t.info, true
		}
		// Nothing runnable: idle until a putspace message arrives.
		idleFrom := sh.k.Now()
		sh.blocked = true
		sh.fab.checkStalled()
		sh.proc.Wait(sh.wake)
		sh.blocked = false
		sh.idle += sh.k.Now() - idleFrom
	}
}

// stepBucket maps a step duration onto its log2 histogram bucket.
func stepBucket(d uint64) int {
	b := 0
	for d > 1 && b < StepHistBuckets-1 {
		d >>= 1
		b++
	}
	return b
}

// anyOtherRunnable reports whether a task other than cur could run.
func (sh *Shell) anyOtherRunnable(cur int) bool {
	for i := range sh.tsks {
		if i != cur && sh.runnable(i) {
			return true
		}
	}
	return false
}

// allFinished reports whether every task on this shell has finished.
func (sh *Shell) allFinished() bool {
	for _, t := range sh.tsks {
		if !t.finished {
			return false
		}
	}
	return true
}

// TaskDone marks a task finished (it will never be scheduled again). The
// fabric stops the simulation once every task of every shell is done.
func (sh *Shell) TaskDone(task int) {
	t := sh.tsks[task]
	if t.finished {
		return
	}
	t.finished = true
	sh.fab.finished++
	if sh.fab.finished == sh.fab.total {
		sh.k.Stop()
	}
}

// ---------------------------------------------------------------------
// Stream synchronization (GetSpace / PutSpace)

// GetSpace asks whether n bytes of data (input port) or room (output
// port) are available ahead of the access point. On success the access
// window is extended to at least n bytes and, for input ports, cached
// lines covering the window extension are invalidated so subsequent reads
// observe fresh data (Section 5.2, observation 2).
func (sh *Shell) GetSpace(task, port int, n uint32) bool {
	sh.proc.Delay(sh.cfg.GetSpaceCycles)
	r := sh.row(task, port)
	if r.task != task {
		panic("shell: stream table corrupted")
	}
	r.stats.GetSpaceCalls++
	if n > r.size {
		// Can never succeed: treat as a configuration error, since the
		// coprocessor would spin forever.
		sh.k.Fail(fmt.Errorf("shell %s: task %s port %d: GetSpace(%d) exceeds buffer size %d",
			sh.cfg.Name, sh.tsks[task].name, port, n, r.size))
		return false
	}
	if n > r.effSpace() {
		r.stats.Denials++
		r.deniedActive = true
		r.denied = n
		sh.tsks[task].stats.DeniedSteps++
		return false
	}
	r.deniedActive = false
	if n > r.granted {
		ext := r.granted
		r.granted = n
		r.moveWindow()
		if r.input {
			// Invalidate the window extension in the read cache and
			// cancel any stale prefetch still in flight there (its data
			// may predate the producer's flush; the generation token
			// makes its completion drop the buffer unmerged).
			segs, cnt := r.segments(ext, n-ext)
			for i := 0; i < cnt; i++ {
				lo, hi := segs[i].addr, segs[i].addr+segs[i].n
				sh.rcache.invalidateRange(lo, hi)
				for a := sh.rcache.lineAddr(lo); a < hi; a += uint32(sh.cfg.LineBytes) {
					sh.inflight.remove(a)
				}
			}
			if sh.cfg.PrefetchDepth > 0 {
				sh.prefetch(r, ext, n-ext)
			}
		}
	}
	return true
}

// PutSpace commits n bytes: consumed data on an input port (freeing room
// for the producer) or produced data on an output port (making it
// available to consumers). The access point moves ahead by n. For output
// ports, dirty cache lines covering the committed region are flushed
// first, and the putspace messages to the remote shells are held until
// the flush completes so a consumer can never observe the space before
// the data (Section 5.2, observation 3).
func (sh *Shell) PutSpace(task, port int, n uint32) {
	sh.proc.Delay(sh.cfg.PutSpaceCycles)
	r := sh.row(task, port)
	if n > r.granted {
		sh.k.Fail(fmt.Errorf("shell %s: task %s port %d: PutSpace(%d) beyond granted window %d",
			sh.cfg.Name, sh.tsks[task].name, port, n, r.granted))
		return
	}
	r.stats.PutSpaceCalls++
	r.stats.BytesCommitted += uint64(n)

	flushes := 0
	if !r.input && n > 0 {
		segs, cnt := r.segments(0, n)
		// Park the flush target for the pre-bound issueFlush callback
		// (see async.go); flushOverlapping is synchronous, so the parked
		// state cannot be observed across PutSpace calls.
		sh.flushRow = r
		for i := 0; i < cnt; i++ {
			sh.flushMem = sh.fab.MemFor(segs[i].addr)
			flushes += sh.wcache.flushOverlapping(segs[i].addr, segs[i].addr+segs[i].n, sh.issueFlushFn)
		}
		sh.flushRow, sh.flushMem = nil, nil
		sh.fab.inflightMsgs += flushes
	}

	// Advance the access point and reduce local space.
	r.point = (r.point + n) % r.size
	r.granted -= n
	r.moveWindow()
	for i := range r.credit {
		r.credit[i] -= n
	}
	if r.commitHead > 0 && r.commitHead == len(r.commits) {
		r.commits = r.commits[:0]
		r.commitHead = 0
	}
	r.commits = append(r.commits, pendingCommit{bytes: n, flushesLeft: flushes})
	sh.drainCommits(r)
}

// commitFlushed notes one completed flush write for the oldest pending
// commit that still waits on flushes, then sends any newly released
// putspace messages (strictly in commit order).
func (sh *Shell) commitFlushed(r *streamRow) {
	for i := r.commitHead; i < len(r.commits); i++ {
		if r.commits[i].flushesLeft > 0 {
			r.commits[i].flushesLeft--
			break
		}
	}
	sh.drainCommits(r)
}

// drainCommits sends putspace messages for every leading commit whose
// flushes have completed.
func (sh *Shell) drainCommits(r *streamRow) {
	for r.commitHead < len(r.commits) && r.commits[r.commitHead].flushesLeft == 0 {
		n := r.commits[r.commitHead].bytes
		r.commitHead++
		if n == 0 {
			continue
		}
		for _, rem := range r.remotes {
			r.stats.MsgsSent++
			sh.fab.inflightMsgs++
			m := sh.fab.newMsg()
			m.dst, m.row, m.slot, m.n = rem.sh, rem.row, rem.slot, n
			sh.k.Schedule(sh.cfg.MsgLatency, m.fire)
		}
	}
	if r.commitHead > 0 && r.commitHead == len(r.commits) {
		r.commits = r.commits[:0]
		r.commitHead = 0
	}
}

// recvPutSpace handles an incoming putspace message: credit the local
// space value and wake the coprocessor in case it was blocked on this
// space (Section 5.1, Figure 7).
func (sh *Shell) recvPutSpace(row, slot int, n uint32) {
	r := sh.rows[row]
	r.credit[slot] += n
	r.stats.MsgsReceived++
	if r.credit[slot] > r.size {
		sh.k.Fail(fmt.Errorf("shell %s: space overflow on row %d (%d > %d)",
			sh.cfg.Name, row, r.credit[slot], r.size))
		return
	}
	sh.wake.Fire()
	// The woken coprocessor is guaranteed to run later in this cycle;
	// mark it unblocked immediately so a sibling that blocks in the same
	// cycle cannot observe a stale "everyone is blocked" state (it will
	// re-block, and re-trigger the stall check, if it finds nothing
	// runnable). Then re-check for a stall this message failed to
	// resolve, after the wakeups have settled.
	sh.blocked = false
	sh.k.Schedule(0, sh.fab.checkStalledFn)
}

// ---------------------------------------------------------------------
// Data transport (Read / Write)

// Read copies n bytes at the given offset inside the granted window of an
// input port into buf, moving data through the read cache: hits cost
// AccessCycles per line, misses fetch the line over the read bus.
func (sh *Shell) Read(task, port int, offset uint32, buf []byte) {
	r := sh.row(task, port)
	if !r.input {
		sh.k.Fail(fmt.Errorf("shell %s: Read on output port %d of task %s", sh.cfg.Name, port, sh.tsks[task].name))
		return
	}
	n := uint32(len(buf))
	if offset+n > r.granted {
		sh.k.Fail(fmt.Errorf("shell %s: task %s port %d: Read [%d,%d) outside granted window %d",
			sh.cfg.Name, sh.tsks[task].name, port, offset, offset+n, r.granted))
		return
	}
	r.stats.BytesRead += uint64(n)
	segs, cnt := r.segments(offset, n)
	got := 0
	for i := 0; i < cnt; i++ {
		sh.readSeg(r, segs[i], buf[got:got+int(segs[i].n)])
		got += int(segs[i].n)
	}
	if Paranoid {
		got = 0
		for i := 0; i < cnt; i++ {
			truth := sh.truthBuf(int(segs[i].n))
			sh.fab.MemFor(segs[i].addr).Peek(segs[i].addr, truth)
			for j := range truth {
				if truth[j] != buf[got+j] {
					panic(fmt.Sprintf("shell %s task %s port %d: stale read at abs %d (cache %#x, sram %#x) cycle %d",
						sh.cfg.Name, sh.tsks[task].name, port, segs[i].addr+uint32(j), buf[got+j], truth[j], sh.k.Now()))
				}
			}
			got += int(segs[i].n)
		}
	}
	if sh.cfg.PrefetchDepth > 0 {
		sh.prefetch(r, offset+n, uint32(sh.cfg.PrefetchDepth*sh.cfg.LineBytes))
	}
}

// truthBuf returns the reusable Paranoid comparison buffer, grown to at
// least n bytes. Read is not reentrant per shell, so one buffer suffices.
func (sh *Shell) truthBuf(n int) []byte {
	if cap(sh.truth) < n {
		sh.truth = make([]byte, n)
	}
	return sh.truth[:n]
}

// mergeWindow installs fetched line data, marking valid exactly the bytes
// inside the row's current granted window (bytes outside the window may
// have been fetched mid-update by the producer). The window segments come
// from the row's cached snapshot: they change only on GetSpace/PutSpace,
// while this merge runs once per fetched line.
func (sh *Shell) mergeWindow(r *streamRow, base uint32, data []byte) *cacheLine {
	line := uint32(len(data))
	wsegs, wcnt := r.windowSegs()
	var ln *cacheLine
	merged := false
	for i := 0; i < wcnt; i++ {
		lo, hi := wsegs[i].addr, wsegs[i].addr+wsegs[i].n
		if lo < base {
			lo = base
		}
		if hi > base+line {
			hi = base + line
		}
		if lo >= hi {
			continue
		}
		ln = sh.rcache.merge(base, data, lo-base, hi-base)
		merged = true
	}
	if !merged {
		ln = sh.rcache.merge(base, data, 0, 0)
	}
	return ln
}

// readSeg serves one contiguous absolute segment through the read cache.
// The segment is always inside the granted window, so a full per-byte
// valid cover is a hit; otherwise the line is (re)fetched over the read
// bus and merged with window-bounded validity.
func (sh *Shell) readSeg(r *streamRow, s seg, buf []byte) {
	line := uint32(sh.cfg.LineBytes)
	addr := s.addr
	remaining := s.n
	for remaining > 0 {
		base := sh.rcache.lineAddr(addr)
		inLine := base + line - addr
		if inLine > remaining {
			inLine = remaining
		}
		ln := sh.rcache.lookup(addr)
		if ln == nil || !ln.covers(addr-base, addr-base+inLine) {
			// Miss: fetch the whole line over the read bus (blocking).
			sh.rcache.misses++
			if sh.inflight.contains(base) {
				sh.demandOverl++
			}
			m := sh.fab.MemFor(base)
			end := base + line
			if int(end) > m.Size() {
				end = uint32(m.Size())
			}
			tmp := sh.pool.get(int(end - base))
			m.ReadAccess(sh.proc, base, tmp)
			// Cancel any prefetch still in flight for this line only now,
			// after the blocking fetch completed: a prefetch completion
			// firing while we were blocked merged with its own (still
			// valid) token and removed itself, and cancelling before the
			// fetch would let a later re-registered prefetch generation
			// alias this address and double-merge a stale pooled buffer.
			sh.inflight.remove(base)
			sh.rcache.evict(addr, nil)
			ln = sh.mergeWindow(r, base, tmp)
			copy(buf[:inLine], ln.data[addr-base:addr-base+inLine])
			sh.pool.put(tmp)
		} else {
			sh.rcache.hits++
			// Latch the data before charging the access time: while the
			// coprocessor is delayed, an aliasing prefetch completion may
			// replace this slot, and the value delivered must be the one
			// that was valid at access time (as a hardware latch would).
			copy(buf[:inLine], ln.data[addr-base:addr-base+inLine])
			sh.proc.Delay(sh.cfg.AccessCycles)
		}
		buf = buf[inLine:]
		addr += inLine
		remaining -= inLine
	}
}

// prefetch issues asynchronous line fetches for the window region
// [from, from+span) of an input row, clipped to the granted window, so
// later reads hit in the cache (Section 5.2 "stream prefetches"). The
// fetched data is merged with the validity bounds of the window as it
// stands at completion time.
func (sh *Shell) prefetch(r *streamRow, from, span uint32) {
	if from >= r.granted {
		return
	}
	if from+span > r.granted {
		span = r.granted - from
	}
	segs, cnt := r.segments(from, span)
	line := uint32(sh.cfg.LineBytes)
	for i := 0; i < cnt; i++ {
		lo := sh.rcache.lineAddr(segs[i].addr)
		hi := segs[i].addr + segs[i].n
		for a := lo; a < hi; a += line {
			if sh.inflight.contains(a) {
				continue
			}
			if ln := sh.rcache.lookup(a); ln != nil && ln.covers(0, line) {
				continue
			}
			m := sh.fab.MemFor(a)
			end := a + line
			if int(end) > m.Size() {
				end = uint32(m.Size())
			}
			// Book the transfer with a pooled, pre-bound fetch request:
			// fr.complete Peeks the bytes at the modeled completion cycle
			// and merges them iff generation tok is still wanted.
			fr := sh.newFetch()
			fr.r, fr.m, fr.addr = r, m, a
			fr.tok = sh.inflight.add(a)
			fr.buf = sh.pool.get(int(end - a))
			sh.prefIssued++
			m.ScheduleRead(a, len(fr.buf), fr.fire)
		}
	}
}

// Write stores data at the given offset inside the granted window of an
// output port through the write cache: lines are allocated without
// fetching (per-byte dirty masks), so a write costs AccessCycles per line
// unless it evicts a dirty line.
func (sh *Shell) Write(task, port int, offset uint32, data []byte) {
	r := sh.row(task, port)
	if r.input {
		sh.k.Fail(fmt.Errorf("shell %s: Write on input port %d of task %s", sh.cfg.Name, port, sh.tsks[task].name))
		return
	}
	n := uint32(len(data))
	if offset+n > r.granted {
		sh.k.Fail(fmt.Errorf("shell %s: task %s port %d: Write [%d,%d) outside granted window %d",
			sh.cfg.Name, sh.tsks[task].name, port, offset, offset+n, r.granted))
		return
	}
	r.stats.BytesWritten += uint64(n)
	segs, cnt := r.segments(offset, n)
	used := 0
	for i := 0; i < cnt; i++ {
		sh.writeSeg(segs[i], data[used:used+int(segs[i].n)])
		used += int(segs[i].n)
	}
}

// writeSeg stores one contiguous absolute segment into the write cache.
func (sh *Shell) writeSeg(s seg, data []byte) {
	line := uint32(sh.cfg.LineBytes)
	addr := s.addr
	remaining := s.n
	for remaining > 0 {
		base := sh.wcache.lineAddr(addr)
		inLine := base + line - addr
		if inLine > remaining {
			inLine = remaining
		}
		ln := sh.wcache.lookup(addr)
		if ln == nil {
			// Allocate without fetch; evict a conflicting dirty line
			// synchronously (the coprocessor pays, like a full write
			// buffer in hardware).
			sh.wcache.evict(addr, func(a uint32, d []byte) {
				sh.fab.MemFor(a).WriteAccess(sh.proc, a, d)
			})
			ln = sh.wcache.slot(addr)
			ln.valid = true
			ln.tag = base
			maskClear(ln.mask)
		}
		sh.proc.Delay(sh.cfg.AccessCycles)
		off := addr - base
		copy(ln.data[off:off+inLine], data[:inLine])
		ln.markDirty(off, off+inLine)
		data = data[inLine:]
		addr += inLine
		remaining -= inLine
	}
}

// ---------------------------------------------------------------------
// Fabric-level stall detection

// checkStalled fails the simulation when every coprocessor is blocked in
// GetTask, no putspace messages or flushes are in flight, and tasks
// remain unfinished: the modeled application has deadlocked (e.g. a
// stream buffer too small for its communication pattern).
func (f *Fabric) checkStalled() {
	if f.finished == f.total || f.inflightMsgs > 0 {
		return
	}
	for _, sh := range f.shells {
		if !sh.blocked && !sh.done {
			return
		}
	}
	f.K.Fail(fmt.Errorf("shell: all %d coprocessors stalled with %d/%d tasks finished (application deadlock)",
		len(f.shells), f.finished, f.total))
}
