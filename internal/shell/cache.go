package shell

// Read and write caches of the coprocessor shell (paper Section 5.2).
//
// Coherency is not snooped: it is driven entirely by the synchronization
// events, exploiting that a granted access window is private:
//
//  1. Read/Write inside the window never needs coherency traffic.
//  2. GetSpace extends the window; cached lines overlapping the
//     extension are invalidated so later reads fetch fresh data.
//  3. PutSpace shrinks the window; dirty write-cache lines overlapping
//     the committed region are flushed, and the putspace message is
//     held back until the flush has completed.
//
// Caches are direct mapped on the absolute memory line address. The
// write cache keeps a per-byte dirty mask so partial-line writes never
// require a fetch (no write-allocate-read), matching a hardware design
// with byte enables.

import "eclipse/internal/mem"

type cacheLine struct {
	valid bool
	tag   uint32 // absolute address of the line's first byte
	data  []byte
	dirty []bool // write cache only: bytes to be flushed
	ok    []bool // read cache only: per-byte validity (sector cache)
}

// anyOK reports whether any byte of the line is valid.
func (ln *cacheLine) anyOK() bool {
	for _, v := range ln.ok {
		if v {
			return true
		}
	}
	return false
}

type cache struct {
	lineBytes int
	lines     []cacheLine
	write     bool // write cache (keeps dirty masks)

	// statistics
	hits, misses, evictions, invalidations, flushes uint64
}

func newCache(nLines, lineBytes int, write bool) *cache {
	c := &cache{lineBytes: lineBytes, lines: make([]cacheLine, nLines), write: write}
	for i := range c.lines {
		c.lines[i].data = make([]byte, lineBytes)
		if write {
			c.lines[i].dirty = make([]bool, lineBytes)
		} else {
			c.lines[i].ok = make([]bool, lineBytes)
		}
	}
	return c
}

// slot returns the direct-mapped line for an absolute address.
func (c *cache) slot(addr uint32) *cacheLine {
	idx := (addr / uint32(c.lineBytes)) % uint32(len(c.lines))
	return &c.lines[idx]
}

// lineAddr returns the line-aligned base of addr.
func (c *cache) lineAddr(addr uint32) uint32 {
	return addr - addr%uint32(c.lineBytes)
}

// lookup returns the cached line holding addr, or nil on miss.
func (c *cache) lookup(addr uint32) *cacheLine {
	ln := c.slot(addr)
	if ln.valid && ln.tag == c.lineAddr(addr) {
		return ln
	}
	return nil
}

// covers reports whether the line holds valid data for the whole byte
// range [lo, hi) of offsets within the line (read cache only).
func (ln *cacheLine) covers(lo, hi uint32) bool {
	for i := lo; i < hi; i++ {
		if !ln.ok[i] {
			return false
		}
	}
	return true
}

// merge installs freshly fetched line data, marking valid only the byte
// offsets [vlo, vhi) — the intersection of the line with the task's
// granted window. Bytes outside the window may have been fetched mid-
// update by the producer and stay invalid. If the slot holds a different
// line the caller must have evicted it first.
func (c *cache) merge(addr uint32, data []byte, vlo, vhi uint32) *cacheLine {
	ln := c.slot(addr)
	base := c.lineAddr(addr)
	if !ln.valid || ln.tag != base {
		ln.valid = true
		ln.tag = base
		for i := range ln.ok {
			ln.ok[i] = false
		}
	}
	copy(ln.data, data)
	for i := vlo; i < vhi && int(i) < len(ln.ok); i++ {
		ln.ok[i] = true
	}
	return ln
}

// invalidateRange clears per-byte validity overlapping the absolute
// address range [lo, hi) — the GetSpace window-extension rule (read cache
// only). Valid bytes outside the range survive, so fine-grained
// synchronization does not destroy whole lines.
func (c *cache) invalidateRange(lo, hi uint32) {
	if lo >= hi {
		return
	}
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid || c.write {
			continue
		}
		end := ln.tag + uint32(c.lineBytes)
		if ln.tag >= hi || end <= lo {
			continue
		}
		a, b := lo, hi
		if a < ln.tag {
			a = ln.tag
		}
		if b > end {
			b = end
		}
		for j := a - ln.tag; j < b-ln.tag; j++ {
			ln.ok[j] = false
		}
		if !ln.anyOK() {
			ln.valid = false
		}
		c.invalidations++
	}
}

// dirtyExtent returns the smallest [lo, hi) byte span of the line that is
// dirty, or ok=false if the line is clean.
func (ln *cacheLine) dirtyExtent() (lo, hi int, ok bool) {
	lo, hi = -1, -1
	for i, d := range ln.dirty {
		if d {
			if lo < 0 {
				lo = i
			}
			hi = i + 1
		}
	}
	if lo < 0 {
		return 0, 0, false
	}
	return lo, hi, true
}

// flushOverlapping writes back every dirty line overlapping [lo, hi) via
// async memory writes and returns the number of writes issued; each
// write's completion invokes done. Flushed lines stay valid but clean.
func (c *cache) flushOverlapping(m *mem.Memory, lo, hi uint32, done func()) int {
	issued := 0
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid || !c.write {
			continue
		}
		if ln.tag >= hi || ln.tag+uint32(c.lineBytes) <= lo {
			continue
		}
		dlo, dhi, ok := ln.dirtyExtent()
		if !ok {
			continue
		}
		m.WriteAsync(ln.tag+uint32(dlo), ln.data[dlo:dhi], done)
		for j := dlo; j < dhi; j++ {
			ln.dirty[j] = false
		}
		c.flushes++
		issued++
	}
	return issued
}

// evict disposes the current occupant of addr's slot so a new line can be
// installed. Dirty occupants are written back synchronously through the
// calling process (the coprocessor pays the eviction, as a blocking
// hardware write buffer would).
func (c *cache) evict(addr uint32, sync func(a uint32, data []byte)) {
	ln := c.slot(addr)
	if !ln.valid || ln.tag == c.lineAddr(addr) {
		return
	}
	if c.write {
		if lo, hi, ok := ln.dirtyExtent(); ok {
			sync(ln.tag+uint32(lo), ln.data[lo:hi])
			for j := lo; j < hi; j++ {
				ln.dirty[j] = false
			}
		}
	}
	ln.valid = false
	c.evictions++
}

// CacheStats is a snapshot of cache activity.
type CacheStats struct {
	Hits, Misses, Evictions, Invalidations, Flushes uint64
}

func (c *cache) stats() CacheStats {
	return CacheStats{c.hits, c.misses, c.evictions, c.invalidations, c.flushes}
}
