package shell

// Read and write caches of the coprocessor shell (paper Section 5.2).
//
// Coherency is not snooped: it is driven entirely by the synchronization
// events, exploiting that a granted access window is private:
//
//  1. Read/Write inside the window never needs coherency traffic.
//  2. GetSpace extends the window; cached lines overlapping the
//     extension are invalidated so later reads fetch fresh data.
//  3. PutSpace shrinks the window; dirty write-cache lines overlapping
//     the committed region are flushed, and the putspace message is
//     held back until the flush has completed.
//
// Caches are direct mapped on the absolute memory line address. The
// write cache keeps a per-byte dirty mask so partial-line writes never
// require a fetch (no write-allocate-read), matching a hardware design
// with byte enables. Per-byte masks (the read cache's sector-validity
// mask and the write cache's dirty mask) are packed into uint64 words —
// one bit per byte, so a 16..64-byte line is a single word — and every
// mask operation (cover test, merge, invalidate, dirty-extent scan) is
// word-wise AND/OR/shift arithmetic instead of a byte loop.

import "math/bits"

// ---------------------------------------------------------------------
// Packed per-byte bit masks
//
// Bit i of word i/64 corresponds to byte offset i within a cache line.
// All range arguments are byte offsets with lo <= hi; the bit range
// [lo, hi) is operated on. Lines are 16–64 bytes in every configuration
// the paper sweeps, so the fast path is a single word.

// maskWordsFor returns the number of 64-bit words covering n per-byte bits.
func maskWordsFor(n int) int { return (n + 63) / 64 }

// wordBits returns the mask of bits [lo, hi) within one word, where
// 0 <= lo < hi <= 64.
func wordBits(lo, hi uint32) uint64 {
	m := ^uint64(0) << lo
	if hi < 64 {
		m &= (uint64(1) << hi) - 1
	}
	return m
}

// maskSetRange sets bits [lo, hi).
func maskSetRange(mask []uint64, lo, hi uint32) {
	if lo >= hi {
		return
	}
	w0, w1 := lo>>6, (hi-1)>>6
	if w0 == w1 {
		mask[w0] |= wordBits(lo&63, (hi-1)&63+1)
		return
	}
	mask[w0] |= wordBits(lo&63, 64)
	for w := w0 + 1; w < w1; w++ {
		mask[w] = ^uint64(0)
	}
	mask[w1] |= wordBits(0, (hi-1)&63+1)
}

// maskClearRange clears bits [lo, hi).
func maskClearRange(mask []uint64, lo, hi uint32) {
	if lo >= hi {
		return
	}
	w0, w1 := lo>>6, (hi-1)>>6
	if w0 == w1 {
		mask[w0] &^= wordBits(lo&63, (hi-1)&63+1)
		return
	}
	mask[w0] &^= wordBits(lo&63, 64)
	for w := w0 + 1; w < w1; w++ {
		mask[w] = 0
	}
	mask[w1] &^= wordBits(0, (hi-1)&63+1)
}

// maskCoversRange reports whether every bit of [lo, hi) is set.
func maskCoversRange(mask []uint64, lo, hi uint32) bool {
	if lo >= hi {
		return true
	}
	w0, w1 := lo>>6, (hi-1)>>6
	if w0 == w1 {
		m := wordBits(lo&63, (hi-1)&63+1)
		return mask[w0]&m == m
	}
	if m := wordBits(lo&63, 64); mask[w0]&m != m {
		return false
	}
	for w := w0 + 1; w < w1; w++ {
		if mask[w] != ^uint64(0) {
			return false
		}
	}
	m := wordBits(0, (hi-1)&63+1)
	return mask[w1]&m == m
}

// maskAny reports whether any bit is set.
func maskAny(mask []uint64) bool {
	for _, w := range mask {
		if w != 0 {
			return true
		}
	}
	return false
}

// maskClear clears every bit.
func maskClear(mask []uint64) {
	for i := range mask {
		mask[i] = 0
	}
}

// maskExtent returns the smallest [lo, hi) bit span containing every set
// bit, or ok=false when the mask is empty.
func maskExtent(mask []uint64) (lo, hi uint32, ok bool) {
	first := -1
	last := -1
	for i, w := range mask {
		if w == 0 {
			continue
		}
		if first < 0 {
			first = i
			lo = uint32(i*64 + bits.TrailingZeros64(w))
		}
		last = i
	}
	if first < 0 {
		return 0, 0, false
	}
	hi = uint32(last*64 + bits.Len64(mask[last]))
	return lo, hi, true
}

// ---------------------------------------------------------------------
// Cache lines

// cacheLine is one direct-mapped slot. mask packs the per-byte state one
// bit per byte: validity for read-cache lines (sector cache), dirtiness
// for write-cache lines.
type cacheLine struct {
	valid bool
	tag   uint32 // absolute address of the line's first byte
	data  []byte
	mask  []uint64
}

// anyOK reports whether any byte of the line is valid (read cache).
func (ln *cacheLine) anyOK() bool { return maskAny(ln.mask) }

// covers reports whether the line holds valid data for the whole byte
// range [lo, hi) of offsets within the line (read cache only).
func (ln *cacheLine) covers(lo, hi uint32) bool { return maskCoversRange(ln.mask, lo, hi) }

// dirtyExtent returns the smallest [lo, hi) byte span of the line that is
// dirty, or ok=false if the line is clean (write cache only).
func (ln *cacheLine) dirtyExtent() (lo, hi uint32, ok bool) { return maskExtent(ln.mask) }

// markDirty flags the byte offsets [lo, hi) as dirty (write cache only).
func (ln *cacheLine) markDirty(lo, hi uint32) { maskSetRange(ln.mask, lo, hi) }

type cache struct {
	lineBytes int
	words     int // mask words per line
	lines     []cacheLine
	write     bool // write cache (keeps dirty masks)

	// statistics
	hits, misses, evictions, invalidations, flushes uint64
}

func newCache(nLines, lineBytes int, write bool) *cache {
	c := &cache{
		lineBytes: lineBytes,
		words:     maskWordsFor(lineBytes),
		lines:     make([]cacheLine, nLines),
		write:     write,
	}
	// One backing array for all data, one for all masks: fewer objects
	// and better locality than a slice pair per line.
	data := make([]byte, nLines*lineBytes)
	masks := make([]uint64, nLines*c.words)
	for i := range c.lines {
		c.lines[i].data = data[i*lineBytes : (i+1)*lineBytes : (i+1)*lineBytes]
		c.lines[i].mask = masks[i*c.words : (i+1)*c.words : (i+1)*c.words]
	}
	return c
}

// slot returns the direct-mapped line for an absolute address.
func (c *cache) slot(addr uint32) *cacheLine {
	idx := (addr / uint32(c.lineBytes)) % uint32(len(c.lines))
	return &c.lines[idx]
}

// lineAddr returns the line-aligned base of addr.
func (c *cache) lineAddr(addr uint32) uint32 {
	return addr - addr%uint32(c.lineBytes)
}

// lookup returns the cached line holding addr, or nil on miss.
func (c *cache) lookup(addr uint32) *cacheLine {
	ln := c.slot(addr)
	if ln.valid && ln.tag == c.lineAddr(addr) {
		return ln
	}
	return nil
}

// merge installs freshly fetched line data, marking valid only the byte
// offsets [vlo, vhi) — the intersection of the line with the task's
// granted window. Bytes outside the window may have been fetched mid-
// update by the producer and stay invalid. If the slot holds a different
// line the caller must have evicted it first.
func (c *cache) merge(addr uint32, data []byte, vlo, vhi uint32) *cacheLine {
	ln := c.slot(addr)
	base := c.lineAddr(addr)
	if !ln.valid || ln.tag != base {
		ln.valid = true
		ln.tag = base
		maskClear(ln.mask)
	}
	copy(ln.data, data)
	if vhi > uint32(c.lineBytes) {
		vhi = uint32(c.lineBytes)
	}
	maskSetRange(ln.mask, vlo, vhi)
	return ln
}

// invalidateRange clears per-byte validity overlapping the absolute
// address range [lo, hi) — the GetSpace window-extension rule (read cache
// only). Valid bytes outside the range survive, so fine-grained
// synchronization does not destroy whole lines.
func (c *cache) invalidateRange(lo, hi uint32) {
	if lo >= hi {
		return
	}
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid || c.write {
			continue
		}
		end := ln.tag + uint32(c.lineBytes)
		if ln.tag >= hi || end <= lo {
			continue
		}
		a, b := lo, hi
		if a < ln.tag {
			a = ln.tag
		}
		if b > end {
			b = end
		}
		maskClearRange(ln.mask, a-ln.tag, b-ln.tag)
		if !ln.anyOK() {
			ln.valid = false
		}
		c.invalidations++
	}
}

// flushOverlapping scans every dirty line overlapping [lo, hi), hands
// each dirty span to issue (which must stage the bytes immediately — the
// line may be re-dirtied before the modeled write completes), marks the
// span clean, and returns the number of spans issued. The shell's issue
// implementation books the asynchronous write-back (see prims.go).
func (c *cache) flushOverlapping(lo, hi uint32, issue func(addr uint32, data []byte)) int {
	issued := 0
	for i := range c.lines {
		ln := &c.lines[i]
		if !ln.valid || !c.write {
			continue
		}
		if ln.tag >= hi || ln.tag+uint32(c.lineBytes) <= lo {
			continue
		}
		dlo, dhi, ok := ln.dirtyExtent()
		if !ok {
			continue
		}
		issue(ln.tag+dlo, ln.data[dlo:dhi])
		maskClearRange(ln.mask, dlo, dhi)
		c.flushes++
		issued++
	}
	return issued
}

// evict disposes the current occupant of addr's slot so a new line can be
// installed. Dirty occupants are written back synchronously through the
// calling process (the coprocessor pays the eviction, as a blocking
// hardware write buffer would).
func (c *cache) evict(addr uint32, sync func(a uint32, data []byte)) {
	ln := c.slot(addr)
	if !ln.valid || ln.tag == c.lineAddr(addr) {
		return
	}
	if c.write {
		if lo, hi, ok := ln.dirtyExtent(); ok {
			sync(ln.tag+lo, ln.data[lo:hi])
			maskClearRange(ln.mask, lo, hi)
		}
	}
	ln.valid = false
	c.evictions++
}

// CacheStats is a snapshot of cache activity.
type CacheStats struct {
	Hits, Misses, Evictions, Invalidations, Flushes uint64
}

// Accesses returns the total lookup count.
func (s CacheStats) Accesses() uint64 { return s.Hits + s.Misses }

// HitRate returns the hit fraction of all lookups (0 when idle).
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (c *cache) stats() CacheStats {
	return CacheStats{c.hits, c.misses, c.evictions, c.invalidations, c.flushes}
}
