package shell

import (
	"fmt"

	"eclipse/internal/sim"
)

// PIBus models the control bus of Section 5.4: all shell tables are
// memory mapped, and the main CPU reads measurement registers over a
// (slow, shared) peripheral bus. Reads are serialized with a fixed
// per-access occupancy, so heavy measurement traffic has a visible cost —
// the reason the paper samples in hardware and lets the CPU collect at
// coarse intervals.
type PIBus struct {
	k        *sim.Kernel
	cycles   uint64 // bus occupancy per register access
	nextFree uint64
	reads    uint64
	busy     uint64
}

// NewPIBus creates a control bus with the given per-access cost.
func NewPIBus(k *sim.Kernel, cyclesPerAccess uint64) *PIBus {
	if cyclesPerAccess == 0 {
		cyclesPerAccess = 4
	}
	return &PIBus{k: k, cycles: cyclesPerAccess}
}

// ReadReg charges one register access to the calling (CPU) process and
// returns the register value produced by fetch, evaluated at completion
// time.
func (b *PIBus) ReadReg(p *sim.Proc, fetch func() uint64) uint64 {
	start := b.k.Now()
	if b.nextFree > start {
		start = b.nextFree
	}
	b.nextFree = start + b.cycles
	b.reads++
	b.busy += b.cycles
	p.Delay(b.nextFree - b.k.Now())
	return fetch()
}

// Stats returns total register reads and bus-busy cycles.
func (b *PIBus) Stats() (reads, busyCycles uint64) { return b.reads, b.busy }

// Utilization returns the fraction of elapsed cycles the bus was busy.
func (b *PIBus) Utilization() float64 {
	if b.k.Now() == 0 {
		return 0
	}
	return float64(b.busy) / float64(b.k.Now())
}

// RegSnapshot is one CPU-collected measurement sample (Section 5.4's
// "collect measurement data at regular time intervals").
type RegSnapshot struct {
	Cycle  uint64
	Values map[string]uint64
}

// Monitor is a CPU process that periodically reads a set of shell
// measurement registers over the PI bus.
type Monitor struct {
	Bus      *PIBus
	Interval uint64
	Regs     []MonitorReg
	Samples  []RegSnapshot

	stop bool
}

// MonitorReg names one memory-mapped measurement register.
type MonitorReg struct {
	Name  string
	Fetch func() uint64
}

// Start launches the monitor process. It samples until the simulation
// ends.
func (m *Monitor) Start(k *sim.Kernel) {
	if m.Interval == 0 {
		m.Interval = 4096
	}
	k.NewProc("pi-monitor", 0, func(p *sim.Proc) {
		for !m.stop {
			snap := RegSnapshot{Cycle: p.Now(), Values: map[string]uint64{}}
			for _, r := range m.Regs {
				snap.Values[r.Name] = m.Bus.ReadReg(p, r.Fetch)
			}
			m.Samples = append(m.Samples, snap)
			p.Delay(m.Interval)
		}
	})
}

// Stop ends sampling after the current interval. (The monitor process
// would otherwise keep the kernel from quiescing; the fabric's Stop on
// application completion also ends it.)
func (m *Monitor) Stop() { m.stop = true }

// Reg helpers for the measurement counters shells expose.

// TaskStepsReg returns a register reading a task's processing-step count.
func TaskStepsReg(sh *Shell, task int) MonitorReg {
	return MonitorReg{
		Name:  fmt.Sprintf("%s.task%d.steps", sh.Name(), task),
		Fetch: func() uint64 { return sh.tsks[task].stats.Steps },
	}
}

// StreamSpaceReg returns a register reading an access point's current
// space value (buffer filling for input ports).
func StreamSpaceReg(sh *Shell, task, port int) MonitorReg {
	return MonitorReg{
		Name:  fmt.Sprintf("%s.task%d.port%d.space", sh.Name(), task, port),
		Fetch: func() uint64 { return uint64(sh.Space(task, port)) },
	}
}

// IdleCyclesReg returns a register reading a shell's idle-cycle counter.
func IdleCyclesReg(sh *Shell) MonitorReg {
	return MonitorReg{
		Name:  sh.Name() + ".idle",
		Fetch: func() uint64 { return sh.IdleCycles() },
	}
}
