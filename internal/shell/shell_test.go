package shell

import (
	"bytes"
	"strings"
	"testing"

	"eclipse/internal/mem"
	"eclipse/internal/sim"
)

// rig is a two-shell producer/consumer test fixture.
type rig struct {
	k      *sim.Kernel
	f      *Fabric
	pSh    *Shell
	cSh    *Shell
	pTask  int
	cTask  int
	outBuf bytes.Buffer
}

func newRig(t *testing.T, bufSize uint32, pCfg, cCfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	r := &rig{k: k, f: f}
	r.pSh = f.NewShell(pCfg)
	r.cSh = f.NewShell(cCfg)
	r.pTask = r.pSh.AddTask("prod", 0, 0)
	r.cTask = r.cSh.AddTask("cons", 0, 0)
	err := f.Connect(
		Endpoint{Shell: r.pSh, Task: r.pTask, Port: 0},
		[]Endpoint{{Shell: r.cSh, Task: r.cTask, Port: 0}},
		bufSize,
	)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// produce runs a producer coprocessor writing total bytes in chunks.
func (r *rig) produce(total, chunk int, fill func(i int) byte) {
	r.k.NewProc("prod", 0, func(p *sim.Proc) {
		sh := r.pSh
		sh.Bind(p)
		sent := 0
		for sent < total {
			task, _, ok := sh.GetTask()
			if !ok {
				return
			}
			n := chunk
			if sent+n > total {
				n = total - sent
			}
			if !sh.GetSpace(task, 0, uint32(n)) {
				continue
			}
			data := make([]byte, n)
			for i := range data {
				data[i] = fill(sent + i)
			}
			sh.Write(task, 0, 0, data)
			sh.PutSpace(task, 0, uint32(n))
			sent += n
		}
		sh.TaskDone(r.pTask)
		sh.GetTask() // drains scheduling state; returns ok=false
	})
}

// consume runs a consumer coprocessor reading total bytes in chunks into
// r.outBuf.
func (r *rig) consume(total, chunk int) {
	r.k.NewProc("cons", 0, func(p *sim.Proc) {
		sh := r.cSh
		sh.Bind(p)
		got := 0
		for got < total {
			task, _, ok := sh.GetTask()
			if !ok {
				return
			}
			n := chunk
			if got+n > total {
				n = total - got
			}
			if !sh.GetSpace(task, 0, uint32(n)) {
				continue
			}
			buf := make([]byte, n)
			sh.Read(task, 0, 0, buf)
			sh.PutSpace(task, 0, uint32(n))
			r.outBuf.Write(buf)
			got += n
		}
		sh.TaskDone(r.cTask)
		sh.GetTask()
	})
}

func pattern(i int) byte { return byte(i*7 + 3) }

func checkPattern(t *testing.T, got []byte, total int) {
	t.Helper()
	if len(got) != total {
		t.Fatalf("received %d of %d bytes", len(got), total)
	}
	for i, b := range got {
		if b != pattern(i) {
			t.Fatalf("byte %d = %#x, want %#x", i, b, pattern(i))
		}
	}
}

func TestProducerConsumerBasic(t *testing.T) {
	r := newRig(t, 256, DefaultConfig("p"), DefaultConfig("c"))
	const total = 4096
	r.produce(total, 64, pattern)
	r.consume(total, 64)
	if err := r.k.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkPattern(t, r.outBuf.Bytes(), total)
}

func TestProducerConsumerTinyBufferManyChunks(t *testing.T) {
	// A 32-byte buffer forces constant back-pressure; data must still
	// arrive intact and in order.
	r := newRig(t, 32, DefaultConfig("p"), DefaultConfig("c"))
	const total = 2000
	r.produce(total, 13, pattern)
	r.consume(total, 7)
	if err := r.k.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkPattern(t, r.outBuf.Bytes(), total)
}

func TestMismatchedSyncGranularity(t *testing.T) {
	// Producer commits in 100-byte units, consumer in 256-byte units
	// (sync granularity decoupled from transport, Section 2.2).
	r := newRig(t, 512, DefaultConfig("p"), DefaultConfig("c"))
	const total = 4000 // not a multiple of either chunk
	r.produce(total, 100, pattern)
	r.consume(total, 256)
	if err := r.k.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkPattern(t, r.outBuf.Bytes(), total)
}

func TestPrefetchOffStillCorrect(t *testing.T) {
	pCfg, cCfg := DefaultConfig("p"), DefaultConfig("c")
	pCfg.PrefetchDepth = 0
	cCfg.PrefetchDepth = 0
	r := newRig(t, 128, pCfg, cCfg)
	const total = 1500
	r.produce(total, 50, pattern)
	r.consume(total, 30)
	if err := r.k.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkPattern(t, r.outBuf.Bytes(), total)
}

func TestSingleLineCachesStillCorrect(t *testing.T) {
	// Degenerate caches maximize evictions and misses; correctness must
	// not depend on cache capacity.
	pCfg, cCfg := DefaultConfig("p"), DefaultConfig("c")
	pCfg.WriteCacheLines, pCfg.ReadCacheLines = 1, 1
	cCfg.WriteCacheLines, cCfg.ReadCacheLines = 1, 1
	r := newRig(t, 128, pCfg, cCfg)
	const total = 1200
	r.produce(total, 40, pattern)
	r.consume(total, 24)
	if err := r.k.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkPattern(t, r.outBuf.Bytes(), total)
}

func TestPrefetchImprovesReadLatency(t *testing.T) {
	// A consumer that acquires a 256-byte window and then reads it in 32-
	// byte pieces with computation in between gives the prefetcher lead
	// time, so later pieces hit in the cache.
	run := func(depth int) uint64 {
		pCfg, cCfg := DefaultConfig("p"), DefaultConfig("c")
		cCfg.PrefetchDepth = depth
		cCfg.ReadCacheLines = 32
		r := newRig(t, 1024, pCfg, cCfg)
		const total = 8192
		r.produce(total, 256, pattern)
		r.k.NewProc("cons", 0, func(p *sim.Proc) {
			sh := r.cSh
			sh.Bind(p)
			got := 0
			for got < total {
				task, _, ok := sh.GetTask()
				if !ok {
					return
				}
				if !sh.GetSpace(task, 0, 256) {
					continue
				}
				buf := make([]byte, 32)
				for off := uint32(0); off < 256; off += 32 {
					sh.Read(task, 0, off, buf)
					sh.Compute(10)
					r.outBuf.Write(buf)
				}
				sh.PutSpace(task, 0, 256)
				got += 256
			}
			sh.TaskDone(r.cTask)
			sh.GetTask()
		})
		if err := r.k.Run(50_000_000); err != nil {
			t.Fatalf("Run: %v", err)
		}
		checkPattern(t, r.outBuf.Bytes(), total)
		return r.k.Now()
	}
	with, without := run(4), run(0)
	if with >= without {
		t.Fatalf("prefetch did not help: %d >= %d cycles", with, without)
	}
}

func TestCacheHitsDominateSequentialReads(t *testing.T) {
	// A consumer that acquires 64-byte windows and reads them in 4-byte
	// pieces touches each 16-byte line four times: one miss, three hits.
	r := newRig(t, 1024, DefaultConfig("p"), DefaultConfig("c"))
	const total = 8192
	r.produce(total, 256, pattern)
	r.k.NewProc("cons", 0, func(p *sim.Proc) {
		sh := r.cSh
		sh.Bind(p)
		got := 0
		for got < total {
			task, _, ok := sh.GetTask()
			if !ok {
				return
			}
			if !sh.GetSpace(task, 0, 64) {
				continue
			}
			buf := make([]byte, 4)
			for off := uint32(0); off < 64; off += 4 {
				sh.Read(task, 0, off, buf)
				r.outBuf.Write(buf)
			}
			sh.PutSpace(task, 0, 64)
			got += 64
		}
		sh.TaskDone(r.cTask)
		sh.GetTask()
	})
	if err := r.k.Run(50_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkPattern(t, r.outBuf.Bytes(), total)
	st := r.cSh.ReadCacheStats()
	if st.Hits == 0 || st.Hits+st.Misses == 0 {
		t.Fatalf("cache stats %+v", st)
	}
	hitRate := float64(st.Hits) / float64(st.Hits+st.Misses)
	if hitRate < 0.5 {
		t.Fatalf("sequential read hit rate %.2f too low (%+v)", hitRate, st)
	}
}

func TestStatsAccounting(t *testing.T) {
	r := newRig(t, 256, DefaultConfig("p"), DefaultConfig("c"))
	const total = 2048
	r.produce(total, 64, pattern)
	r.consume(total, 64)
	if err := r.k.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	ps := r.pSh.StreamStats(r.pTask, 0)
	cs := r.cSh.StreamStats(r.cTask, 0)
	if ps.BytesCommitted != total || cs.BytesCommitted != total {
		t.Fatalf("committed p=%d c=%d", ps.BytesCommitted, cs.BytesCommitted)
	}
	if ps.BytesWritten != total || cs.BytesRead != total {
		t.Fatalf("moved p=%d c=%d", ps.BytesWritten, cs.BytesRead)
	}
	if ps.MsgsSent != ps.PutSpaceCalls || ps.MsgsSent == 0 {
		t.Fatalf("producer messages %d, putspaces %d", ps.MsgsSent, ps.PutSpaceCalls)
	}
	if cs.MsgsReceived != ps.MsgsSent {
		t.Fatalf("consumer received %d, producer sent %d", cs.MsgsReceived, ps.MsgsSent)
	}
	pt := r.pSh.TaskStats(r.pTask)
	if pt.Steps == 0 || pt.RunCycles == 0 {
		t.Fatalf("task stats %+v", pt)
	}
}

func TestDeniedGetSpaceIsCountedAndRecovers(t *testing.T) {
	// A consumer ahead of the producer must see denials, then recover.
	r := newRig(t, 64, DefaultConfig("p"), DefaultConfig("c"))
	const total = 512
	r.consume(total, 64) // started first: immediately denied
	r.produce(total, 32, pattern)
	if err := r.k.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkPattern(t, r.outBuf.Bytes(), total)
	cs := r.cSh.StreamStats(r.cTask, 0)
	if cs.Denials == 0 {
		t.Fatal("expected GetSpace denials")
	}
	if r.cSh.IdleCycles() == 0 {
		t.Fatal("expected consumer idle cycles while blocked")
	}
}

func TestApplicationDeadlockDetected(t *testing.T) {
	// Consumer demands 128 bytes at once from a 64-byte stream buffer
	// that the producer can never fill beyond 64: GetSpace(128) exceeds
	// the buffer and the simulation must fail fast.
	r := newRig(t, 64, DefaultConfig("p"), DefaultConfig("c"))
	r.produce(32, 32, pattern)
	r.consume(128, 128)
	err := r.k.Run(10_000_000)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !strings.Contains(err.Error(), "exceeds buffer size") {
		t.Fatalf("err = %v", err)
	}
}

func TestStalledApplicationDetected(t *testing.T) {
	// The producer finishes early; the consumer still waits for bytes
	// that will never come. The fabric must detect the stall.
	r := newRig(t, 64, DefaultConfig("p"), DefaultConfig("c"))
	r.produce(32, 32, pattern)
	r.consume(64, 32) // wants 64, only 32 ever produced
	err := r.k.Run(10_000_000)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v", err)
	}
}

func TestPutSpaceBeyondWindowFails(t *testing.T) {
	k := sim.NewKernel()
	f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	pSh := f.NewShell(DefaultConfig("p"))
	cSh := f.NewShell(DefaultConfig("c"))
	pT := pSh.AddTask("prod", 0, 0)
	cT := cSh.AddTask("cons", 0, 0)
	if err := f.Connect(Endpoint{pSh, pT, 0}, []Endpoint{{cSh, cT, 0}}, 64); err != nil {
		t.Fatal(err)
	}
	k.NewProc("prod", 0, func(p *sim.Proc) {
		pSh.Bind(p)
		task, _, _ := pSh.GetTask()
		pSh.PutSpace(task, 0, 16) // nothing granted
	})
	err := k.Run(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "beyond granted window") {
		t.Fatalf("err = %v", err)
	}
}

func TestReadOutsideWindowFails(t *testing.T) {
	k := sim.NewKernel()
	f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	pSh := f.NewShell(DefaultConfig("p"))
	cSh := f.NewShell(DefaultConfig("c"))
	pT := pSh.AddTask("prod", 0, 0)
	cT := cSh.AddTask("cons", 0, 0)
	if err := f.Connect(Endpoint{pSh, pT, 0}, []Endpoint{{cSh, cT, 0}}, 64); err != nil {
		t.Fatal(err)
	}
	k.NewProc("prod", 0, func(p *sim.Proc) {
		pSh.Bind(p)
		task, _, _ := pSh.GetTask()
		if pSh.GetSpace(task, 0, 32) {
			pSh.Write(task, 0, 0, make([]byte, 32))
			pSh.PutSpace(task, 0, 32)
		}
		pSh.TaskDone(task)
		pSh.GetTask()
	})
	k.NewProc("cons", 0, func(p *sim.Proc) {
		cSh.Bind(p)
		for {
			task, _, ok := cSh.GetTask()
			if !ok {
				return
			}
			if !cSh.GetSpace(task, 0, 8) {
				continue
			}
			buf := make([]byte, 16)
			cSh.Read(task, 0, 0, buf) // reads 16 with only 8 granted
			return
		}
	})
	err := k.Run(1_000_000)
	if err == nil || !strings.Contains(err.Error(), "outside granted window") {
		t.Fatalf("err = %v", err)
	}
}

func TestSRAMExhaustion(t *testing.T) {
	k := sim.NewKernel()
	f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	sh := f.NewShell(DefaultConfig("s"))
	a := sh.AddTask("a", 0, 0)
	b := sh.AddTask("b", 0, 0)
	if err := f.Connect(Endpoint{sh, a, 0}, []Endpoint{{sh, b, 0}}, 30*1024); err != nil {
		t.Fatal(err)
	}
	err := f.Connect(Endpoint{sh, a, 1}, []Endpoint{{sh, b, 1}}, 4*1024)
	if err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiConsumerStream(t *testing.T) {
	// One producer, two consumers on different shells; both must see all
	// bytes, and the producer must be gated by the slower one.
	k := sim.NewKernel()
	f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	pSh := f.NewShell(DefaultConfig("p"))
	aSh := f.NewShell(DefaultConfig("a"))
	bSh := f.NewShell(DefaultConfig("b"))
	pT := pSh.AddTask("prod", 0, 0)
	aT := aSh.AddTask("fast", 0, 0)
	bT := bSh.AddTask("slow", 0, 0)
	if err := f.Connect(Endpoint{pSh, pT, 0},
		[]Endpoint{{aSh, aT, 0}, {bSh, bT, 0}}, 128); err != nil {
		t.Fatal(err)
	}
	const total = 2048
	k.NewProc("prod", 0, func(p *sim.Proc) {
		pSh.Bind(p)
		sent := 0
		for sent < total {
			task, _, ok := pSh.GetTask()
			if !ok {
				return
			}
			if !pSh.GetSpace(task, 0, 64) {
				continue
			}
			data := make([]byte, 64)
			for i := range data {
				data[i] = pattern(sent + i)
			}
			pSh.Write(task, 0, 0, data)
			pSh.PutSpace(task, 0, 64)
			sent += 64
		}
		pSh.TaskDone(pT)
		pSh.GetTask()
	})
	var gotA, gotB bytes.Buffer
	mkCons := func(sh *Shell, taskID int, out *bytes.Buffer, extraDelay uint64) func(*sim.Proc) {
		return func(p *sim.Proc) {
			sh.Bind(p)
			got := 0
			for got < total {
				task, _, ok := sh.GetTask()
				if !ok {
					return
				}
				if !sh.GetSpace(task, 0, 32) {
					continue
				}
				buf := make([]byte, 32)
				sh.Read(task, 0, 0, buf)
				sh.Compute(extraDelay)
				sh.PutSpace(task, 0, 32)
				out.Write(buf)
				got += 32
			}
			sh.TaskDone(taskID)
			sh.GetTask()
		}
	}
	k.NewProc("fast", 0, mkCons(aSh, aT, &gotA, 0))
	k.NewProc("slow", 0, mkCons(bSh, bT, &gotB, 50))
	if err := k.Run(50_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkPattern(t, gotA.Bytes(), total)
	checkPattern(t, gotB.Bytes(), total)
}

func TestDeterministicCycleCounts(t *testing.T) {
	run := func() uint64 {
		r := newRig(t, 256, DefaultConfig("p"), DefaultConfig("c"))
		r.produce(4096, 96, pattern)
		r.consume(4096, 48)
		if err := r.k.Run(10_000_000); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return r.k.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d cycles", a, b)
	}
}

func TestWindowReadBeforeCommitIsRepeatable(t *testing.T) {
	// The paper's two-exit processing step (Section 4.2): reading data,
	// not committing, and re-reading later must deliver identical bytes.
	r := newRig(t, 128, DefaultConfig("p"), DefaultConfig("c"))
	r.produce(64, 64, pattern)
	var first, second [16]byte
	r.k.NewProc("cons", 0, func(p *sim.Proc) {
		sh := r.cSh
		sh.Bind(p)
		for {
			task, _, ok := sh.GetTask()
			if !ok {
				return
			}
			if !sh.GetSpace(task, 0, 16) {
				continue
			}
			sh.Read(task, 0, 0, first[:])
			// Abort the step without PutSpace; re-execute.
			task2, _, _ := sh.GetTask()
			if !sh.GetSpace(task2, 0, 16) {
				continue
			}
			sh.Read(task2, 0, 0, second[:])
			sh.PutSpace(task2, 0, 16)
			sh.TaskDone(task2)
			sh.GetTask()
			return
		}
	})
	if err := r.k.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if first != second {
		t.Fatalf("re-read differs: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != pattern(i) {
			t.Fatalf("data wrong at %d", i)
		}
	}
}

func TestRandomOffsetAccessWithinWindow(t *testing.T) {
	// Read/Write support random access inside the granted window.
	k := sim.NewKernel()
	f := NewFabric(k, mem.New(k, mem.Fig8SRAM()))
	pSh := f.NewShell(DefaultConfig("p"))
	cSh := f.NewShell(DefaultConfig("c"))
	pT := pSh.AddTask("prod", 0, 0)
	cT := cSh.AddTask("cons", 0, 0)
	if err := f.Connect(Endpoint{pSh, pT, 0}, []Endpoint{{cSh, cT, 0}}, 128); err != nil {
		t.Fatal(err)
	}
	k.NewProc("prod", 0, func(p *sim.Proc) {
		pSh.Bind(p)
		task, _, _ := pSh.GetTask()
		for !pSh.GetSpace(task, 0, 64) {
			task, _, _ = pSh.GetTask()
		}
		// Write out of order: second half first.
		half := make([]byte, 32)
		for i := range half {
			half[i] = pattern(32 + i)
		}
		pSh.Write(task, 0, 32, half)
		for i := range half {
			half[i] = pattern(i)
		}
		pSh.Write(task, 0, 0, half)
		pSh.PutSpace(task, 0, 64)
		pSh.TaskDone(pT)
		pSh.GetTask()
	})
	var got [64]byte
	k.NewProc("cons", 0, func(p *sim.Proc) {
		cSh.Bind(p)
		for {
			task, _, ok := cSh.GetTask()
			if !ok {
				return
			}
			if !cSh.GetSpace(task, 0, 64) {
				continue
			}
			// Read back-to-front in 8-byte pieces.
			for off := 56; off >= 0; off -= 8 {
				cSh.Read(task, 0, uint32(off), got[off:off+8])
			}
			cSh.PutSpace(task, 0, 64)
			cSh.TaskDone(cT)
			cSh.GetTask()
			return
		}
	})
	if err := k.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkPattern(t, got[:], 64)
}

func TestDemandFetchPrefetchAliasing(t *testing.T) {
	// Regression test for the demand-miss/prefetch aliasing race. A slow
	// memory keeps prefetched line fetches in flight long enough that the
	// consumer's next demand miss overlaps a pending prefetch of the very
	// same line. The demand path must cancel the pending prefetch only
	// AFTER its own blocking fetch completes: cancelling first would let
	// a newer prefetch re-register the line while the coprocessor is
	// blocked, and the earlier (stale) completion could then merge
	// recycled buffer contents over fresh data. Paranoid compares every
	// Read against ground truth, so any stale merge fails loudly.
	old := Paranoid
	Paranoid = true
	defer func() { Paranoid = old }()

	slow := mem.Fig8SRAM()
	slow.ReadLatency = 300 // line fetches stay in flight across many reads

	k := sim.NewKernel()
	f := NewFabric(k, mem.New(k, slow))
	pCfg, cCfg := DefaultConfig("p"), DefaultConfig("c")
	cCfg.PrefetchDepth = 4
	cCfg.ReadCacheLines = 32
	pSh := f.NewShell(pCfg)
	cSh := f.NewShell(cCfg)
	pT := pSh.AddTask("prod", 0, 0)
	cT := cSh.AddTask("cons", 0, 0)
	if err := f.Connect(Endpoint{pSh, pT, 0}, []Endpoint{{cSh, cT, 0}}, 1024); err != nil {
		t.Fatal(err)
	}
	const total = 8192
	k.NewProc("prod", 0, func(p *sim.Proc) {
		pSh.Bind(p)
		sent := 0
		for sent < total {
			task, _, ok := pSh.GetTask()
			if !ok {
				return
			}
			if !pSh.GetSpace(task, 0, 256) {
				continue
			}
			data := make([]byte, 256)
			for i := range data {
				data[i] = pattern(sent + i)
			}
			pSh.Write(task, 0, 0, data)
			pSh.PutSpace(task, 0, 256)
			sent += 256
		}
		pSh.TaskDone(pT)
		pSh.GetTask()
	})
	var got bytes.Buffer
	k.NewProc("cons", 0, func(p *sim.Proc) {
		cSh.Bind(p)
		rcv := 0
		for rcv < total {
			task, _, ok := cSh.GetTask()
			if !ok {
				return
			}
			if !cSh.GetSpace(task, 0, 256) {
				continue
			}
			// Back-to-back line-sized reads with no compute gap: each
			// miss overlaps the prefetches issued by the previous read.
			buf := make([]byte, 16)
			for off := uint32(0); off < 256; off += 16 {
				cSh.Read(task, 0, off, buf)
				got.Write(buf)
			}
			cSh.PutSpace(task, 0, 256)
			rcv += 256
		}
		cSh.TaskDone(cT)
		cSh.GetTask()
	})
	if err := k.Run(100_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	checkPattern(t, got.Bytes(), total)
	ts := cSh.TransportStats()
	if ts.PrefetchesIssued == 0 {
		t.Fatalf("no prefetches issued: %+v", ts)
	}
	if ts.DemandWhileInflight == 0 {
		t.Fatalf("scenario never overlapped a demand miss with an in-flight prefetch: %+v", ts)
	}
	if ts.Pool.Outstanding != 0 {
		t.Fatalf("leaked %d scratch buffers: %+v", ts.Pool.Outstanding, ts)
	}
}

func TestUtilizationBounds(t *testing.T) {
	r := newRig(t, 256, DefaultConfig("p"), DefaultConfig("c"))
	r.produce(2048, 64, pattern)
	r.consume(2048, 64)
	if err := r.k.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, sh := range []*Shell{r.pSh, r.cSh} {
		u := sh.Utilization()
		if u < 0 || u > 1 {
			t.Fatalf("%s utilization %v", sh.Name(), u)
		}
	}
}
