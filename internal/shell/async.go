package shell

// Pooled asynchronous request objects for the data-transport hot path.
//
// Every asynchronous interaction of a shell with the rest of the fabric —
// prefetch line fetches, write-back flushes, and putspace messages — ends
// in a callback scheduled on the kernel. Building that callback as a
// fresh closure per event was a dominant allocation source (hundreds of
// thousands of closures per simulated GOP). Instead, each request kind is
// a small struct with a `fire func()` bound ONCE at construction to its
// own complete method; the structs are recycled through per-shell (or
// per-fabric) free lists, so steady-state transport schedules zero
// allocations per event.
//
// Reentrancy rule: complete() copies every field it needs into locals (or
// finishes using the struct) before releasing it back to the free list,
// because a downstream call may pop the same object for a new request in
// the same cycle.

import "eclipse/internal/mem"

// ---------------------------------------------------------------------
// Prefetch fetch requests

// fetchReq is one in-flight asynchronous line fetch issued by the
// prefetcher. The memory's ScheduleRead books only timing; complete moves
// the bytes (Peek) at the modeled completion cycle, then merges them into
// the read cache iff the fetch generation is still wanted.
type fetchReq struct {
	sh   *Shell
	r    *streamRow
	m    *mem.Memory
	addr uint32
	tok  uint32
	buf  []byte
	fire func() // bound once to complete
}

func (sh *Shell) newFetch() *fetchReq {
	if k := len(sh.fetchPool); k > 0 {
		fr := sh.fetchPool[k-1]
		sh.fetchPool = sh.fetchPool[:k-1]
		return fr
	}
	fr := &fetchReq{sh: sh}
	fr.fire = fr.complete
	return fr
}

func (fr *fetchReq) complete() {
	sh := fr.sh
	fr.m.Peek(fr.addr, fr.buf)
	// Merge only if this exact fetch generation is still wanted: a
	// GetSpace invalidation, a demand fetch, or a newer prefetch of the
	// same line has since cancelled or re-registered the address, and
	// merging would install stale pre-flush data.
	if sh.inflight.matches(fr.addr, fr.tok) {
		sh.inflight.remove(fr.addr)
		sh.rcache.evict(fr.addr, nil)
		sh.mergeWindow(fr.r, fr.addr, fr.buf)
	} else {
		sh.prefDropped++
	}
	sh.pool.put(fr.buf)
	fr.r, fr.m, fr.buf = nil, nil, nil
	sh.fetchPool = append(sh.fetchPool, fr)
}

// ---------------------------------------------------------------------
// Write-back flush requests

// flushReq is one asynchronous write-back of a dirty span, staged into a
// pooled buffer at issue time (the cache line may be re-dirtied before
// the modeled write completes). complete stores the bytes (Poke) at the
// completion cycle and then releases the putspace commit waiting on it.
type flushReq struct {
	sh   *Shell
	r    *streamRow
	m    *mem.Memory
	addr uint32
	buf  []byte
	fire func() // bound once to complete
}

func (sh *Shell) newFlush() *flushReq {
	if k := len(sh.flushPool); k > 0 {
		fl := sh.flushPool[k-1]
		sh.flushPool = sh.flushPool[:k-1]
		return fl
	}
	fl := &flushReq{sh: sh}
	fl.fire = fl.complete
	return fl
}

func (fl *flushReq) complete() {
	sh := fl.sh
	r := fl.r
	fl.m.Poke(fl.addr, fl.buf)
	sh.pool.put(fl.buf)
	fl.r, fl.m, fl.buf = nil, nil, nil
	sh.flushPool = append(sh.flushPool, fl)
	sh.fab.inflightMsgs--
	sh.commitFlushed(r)
}

// issueFlush stages one dirty span for write-back. It is the cache's
// flushOverlapping issue callback, pre-bound in NewShell; the target row
// and memory are parked on the shell (flushRow/flushMem) by PutSpace
// right before the scan, which keeps the hot path closure-free.
func (sh *Shell) issueFlush(addr uint32, data []byte) {
	fl := sh.newFlush()
	fl.r = sh.flushRow
	fl.m = sh.flushMem
	fl.addr = addr
	fl.buf = sh.pool.get(len(data))
	copy(fl.buf, data)
	fl.m.ScheduleWrite(addr, len(data), fl.fire)
}

// ---------------------------------------------------------------------
// Putspace messages

// psMsg is one putspace message in flight on the synchronization network
// (paper Section 5.1). Pooled on the fabric, since messages cross shells.
type psMsg struct {
	f    *Fabric
	dst  *Shell
	row  int
	slot int
	n    uint32
	fire func() // bound once to deliver
}

func (f *Fabric) newMsg() *psMsg {
	if k := len(f.msgPool); k > 0 {
		m := f.msgPool[k-1]
		f.msgPool = f.msgPool[:k-1]
		return m
	}
	m := &psMsg{f: f}
	m.fire = m.deliver
	return m
}

func (m *psMsg) deliver() {
	f, dst, row, slot, n := m.f, m.dst, m.row, m.slot, m.n
	m.dst = nil
	f.msgPool = append(f.msgPool, m)
	f.inflightMsgs--
	dst.recvPutSpace(row, slot, n)
}
