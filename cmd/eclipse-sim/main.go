// Command eclipse-sim runs an Eclipse instance described by a setup file:
// it assembles the architecture, generates and maps the described
// applications, simulates to completion, verifies every application's
// output against its reference implementation, and prints the Figure 9
// style performance report.
//
// Usage:
//
//	eclipse-sim [-setup file] [-limit cycles] [-charts] [-csv file] [-print-example]
//
// Without -setup the built-in example configuration is used.
package main

import (
	"flag"
	"fmt"
	"os"

	"eclipse"
)

func main() {
	setupPath := flag.String("setup", "", "setup file (default: built-in example)")
	limit := flag.Uint64("limit", 0, "cycle limit (0 = unlimited)")
	charts := flag.Bool("charts", false, "render ASCII charts of all trace series")
	csvPath := flag.String("csv", "", "write trace series to a CSV file")
	printExample := flag.Bool("print-example", false, "print the example setup file and exit")
	flag.Parse()

	if *printExample {
		fmt.Print(eclipse.ExampleSetup)
		return
	}

	var src *os.File
	if *setupPath == "" {
		fmt.Fprintln(os.Stderr, "eclipse-sim: using built-in example setup (see -print-example)")
	} else {
		f, err := os.Open(*setupPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = f
	}

	var sys *eclipse.System
	var apps []*eclipse.SetupApp
	var err error
	if src != nil {
		sys, apps, err = eclipse.LoadSetup(src)
	} else {
		sys, apps, err = eclipse.LoadSetupString(eclipse.ExampleSetup)
	}
	if err != nil {
		fail(err)
	}

	cycles, err := sys.Run(*limit)
	if err != nil {
		fail(fmt.Errorf("simulation failed at cycle %d: %w", cycles, err))
	}
	fmt.Printf("simulation finished at cycle %d (%.3f ms at 150 MHz)\n\n",
		cycles, float64(cycles)/150e6*1e3)

	for _, app := range apps {
		if err := app.Verify(); err != nil {
			fail(fmt.Errorf("app %s: output verification failed: %w", app.Name, err))
		}
		fmt.Printf("app %-8s (%s): output verified against reference\n", app.Name, app.Kind)
	}
	fmt.Println()
	sys.WriteReport(os.Stdout)

	if *charts {
		fmt.Println()
		sys.WriteCharts(os.Stdout)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		if err := sys.WriteTraceCSV(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("\ntrace series written to %s\n", *csvPath)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "eclipse-sim:", err)
	os.Exit(1)
}
